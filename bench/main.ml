(* Benchmark harness.

   Regenerates every table and figure of the paper's evaluation (Section 5.2,
   Figure 15) plus the comparison/ablation experiments from DESIGN.md, then
   runs Bechamel microbenchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 -- everything, default scale
     dune exec bench/main.exe -- fig15a       -- only that section
     dune exec bench/main.exe -- --full ...   -- paper-scale router topology
     dune exec bench/main.exe -- --smoke ...  -- tiny parameters (CI smoke)
     dune exec bench/main.exe -- --jobs 4 ... -- fan independent runs out to
                                                 4 domains (0 = all cores;
                                                 NTCU_JOBS works too)

   Sections: fig15a fig15b avg-vs-bound theorem3 theorem4 baseline msgsize
             census latency-ablation optimize churn churn-steady serve scale
             arena assumption resilience fault perf micro

   Every independent-run sweep (the four fig15b setups, the 300-run Theorem 4
   estimator, the size-mode and latency-model ablations, the fault-injection
   loss x crash grid) goes through Ntcu_std.Parallel.map, which returns
   results in submission order — so all tables and JSON artifacts are
   byte-identical across --jobs values; --jobs 1 (the default) is exactly
   the serial path.

   The perf section writes BENCH_perf.json (see EXPERIMENTS.md for the
   schema) in the current directory. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Experiment = Ntcu_harness.Experiment
module Report = Ntcu_harness.Report
module Join_cost = Ntcu_analysis.Join_cost
module Stats = Ntcu_std.Stats

let pf = Format.printf

let section name = pf "@.=== %s ===@." name

let mean_int a = Stats.mean (Stats.of_ints a)

(* The worker pool for independent-run sweeps; set once in [main] from
   --jobs / NTCU_JOBS before any section runs. [pmap] preserves submission
   order, so every consumer below can treat it as List.map. *)
let pool : Ntcu_std.Parallel.t option ref = ref None

let pmap f xs =
  match !pool with Some p -> Ntcu_std.Parallel.map p f xs | None -> List.map f xs

let pool_jobs () = match !pool with Some p -> Ntcu_std.Parallel.jobs p | None -> 1

(* Sections that run without loss or churn claim consistency in their
   tables; [claim] records a broken claim so [main] exits non-zero instead
   of burying a "NO" in a wall of text. Crash regimes (the fault grid, the
   steady-state churn engine) claim the Best_effort contract instead —
   liveness and quiescence, with consistency reported but not gated (see
   Experiment.claim). Only the assumption ablation, whose whole point is to
   exhibit violations, bypasses [claim] entirely. *)
let failed = ref false

let claim name cond =
  if not cond then begin
    failed := true;
    pf "CLAIM FAILED: %s@." name
  end;
  cond

(* ---- Figure 15(a): theoretical upper bound of E(J) ---- *)

let fig15a () =
  section "Figure 15(a): upper bound of E(J) vs n (Theorem 5), b = 16";
  let ns = List.init 10 (fun i -> 10_000 * (i + 1)) in
  List.iter
    (fun (m, d) ->
      let label = Printf.sprintf "m=%d, b=16, d=%d" m d in
      let series = Experiment.fig15a_series ~b:16 ~d ~m ~ns in
      pf "%a" (Report.pp_fig15a_curve ~label) series)
    [ (500, 40); (1000, 40); (500, 8); (1000, 8) ]

(* ---- Figure 15(b): simulated CDF of JoinNotiMsg per joining node ---- *)

let paper_measured = [ 6.117; 6.051; 5.026; 5.399 ]

let fig15b_runs ~routers () =
  (* Each run builds its own topology, latency model, network and RNGs
     inside the thunk, so the four setups are free to run on four domains. *)
  pmap
    (fun (i, setup) -> (setup, Experiment.fig15b ~routers ~seed:(100 + i) setup))
    (List.mapi (fun i setup -> (i, setup)) Experiment.paper_setups)

let fig15b ~routers () =
  section "Figure 15(b): CDF of # JoinNotiMsg sent by a joining node";
  pf "router topology: %d routers@." (Ntcu_topology.Transit_stub.router_count routers);
  let runs = fig15b_runs ~routers () in
  List.iter
    (fun ((setup : Experiment.fig15b_setup), (run : Experiment.join_run)) ->
      let label =
        Printf.sprintf "n=%d, m=%d, b=16, d=%d%s" setup.n setup.m setup.d
          (if
             claim
               (Printf.sprintf "fig15b n=%d d=%d consistent" setup.n setup.d)
               (Experiment.ok run)
           then ""
           else "  [INCONSISTENT!]")
      in
      pf "%a" (Report.pp_cdf ~label) (Experiment.cdf_points run.join_noti))
    runs;
  runs

let avg_vs_bound runs =
  section "Section 5.2 in-text: average JoinNotiMsg vs Theorem-5 bound";
  let rows =
    List.map2
      (fun ((setup : Experiment.fig15b_setup), (run : Experiment.join_run)) paper_avg ->
        let label = Printf.sprintf "n=%d d=%d" setup.n setup.d in
        ( label,
          mean_int run.join_noti,
          Join_cost.theorem5_bound (Params.make ~b:16 ~d:setup.d) ~n:setup.n ~m:setup.m,
          paper_avg ))
      runs paper_measured
  in
  pf "%a" Report.pp_avg_vs_bound rows

(* ---- Theorem 3: CpRst + JoinWait <= d + 1 ---- *)

let theorem3 runs =
  section "Theorem 3: CpRstMsg + JoinWaitMsg per join <= d + 1";
  List.iter
    (fun ((setup : Experiment.fig15b_setup), (run : Experiment.join_run)) ->
      let worst = Array.fold_left max 0 run.cp_wait in
      pf "n=%d d=%d: mean %.3f, max %d, bound %d  %s@." setup.n setup.d
        (mean_int run.cp_wait) worst (setup.d + 1)
        (if
           claim
             (Printf.sprintf "theorem3 n=%d d=%d" setup.n setup.d)
             (worst <= setup.d + 1)
         then "OK"
         else "VIOLATED"))
    runs

(* ---- Theorem 4: exact E(J) for a single join vs simulation ---- *)

let theorem4 () =
  section "Theorem 4: E(J) for a single join, closed form vs simulation";
  (* J is heavy-tailed (a rare low notification level makes the set, and
     hence J, an order of magnitude larger), so the standard error matters. *)
  let p = Params.make ~b:16 ~d:8 in
  List.iter
    (fun n ->
      let expected = Join_cost.expected_join_noti p ~n in
      let runs = 300 in
      let samples =
        Array.of_list
          (pmap
             (fun seed ->
               let run = Experiment.concurrent_joins p ~seed:((seed + 1) * 7) ~n ~m:1 () in
               float_of_int run.join_noti.(0))
             (List.init runs Fun.id))
      in
      let avg = Stats.mean samples in
      let stderr = Stats.stddev samples /. sqrt (float_of_int runs) in
      pf "n=%5d: closed form %.3f, simulated %.3f +/- %.3f (%d joins)@." n expected avg
        stderr runs)
    [ 200; 500; 1000 ]

(* ---- Baseline comparison: state placement and concurrency safety ---- *)

let baseline () =
  section "Baseline: multicast join (Tapestry-style) vs this paper's protocol";
  let p = Params.make ~b:16 ~d:8 in
  let n = 500 and m = 200 in
  let ours = Experiment.concurrent_joins p ~seed:11 ~n ~m () in
  let base_seq = Experiment.baseline_run p ~seed:11 ~n ~m ~concurrent:false in
  let base_con = Experiment.baseline_run p ~seed:11 ~n ~m ~concurrent:true in
  pf "%a"
    (Report.table
       ~header:[ "protocol"; "workload"; "consistent"; "peak state@existing"; "state slots" ])
    [
      [
        "this paper";
        "concurrent";
        (if claim "baseline: this paper consistent" (Experiment.ok ours) then "yes"
         else "NO");
        "0";
        "0";
      ];
      [
        "multicast";
        "sequential";
        (if base_seq.base_consistent then "yes" else "NO");
        string_of_int base_seq.peak_pending;
        string_of_int base_seq.pending_slots;
      ];
      [
        "multicast";
        "concurrent";
        (if base_con.base_consistent then "yes"
         else Printf.sprintf "NO (%d violations)" base_con.base_violations);
        string_of_int base_con.peak_pending;
        string_of_int base_con.pending_slots;
      ];
    ]

(* ---- Section 6.2 ablation: message-size reduction ---- *)

let msgsize () =
  section "Section 6.2 ablation: bytes sent per size mode";
  let p = Params.make ~b:16 ~d:8 in
  let n = 500 and m = 200 in
  let results =
    pmap
      (fun (mode, name) ->
        let run = Experiment.concurrent_joins ~size_mode:mode p ~seed:21 ~n ~m () in
        let bytes = Ntcu_core.Stats.bytes_sent (Ntcu_core.Network.global_stats run.net) in
        (name, Experiment.ok run, bytes))
      [
        (Ntcu_core.Message.Full, "full tables");
        (Ntcu_core.Message.Level_range, "level range");
        (Ntcu_core.Message.Bit_vector, "level range + bit vector");
      ]
  in
  let rows =
    List.map
      (fun (name, ok, bytes) ->
        [
          name;
          (if claim ("msgsize: " ^ name) ok then "yes" else "NO");
          string_of_int bytes;
          Printf.sprintf "%.1f" (float_of_int bytes /. float_of_int m /. 1024.);
        ])
      results
  in
  pf "%a" (Report.table ~header:[ "mode"; "consistent"; "total bytes"; "KiB per join" ]) rows

(* ---- Message census: big vs small messages (Section 5.2's distinction) ---- *)

let census () =
  section "Message census per join (big = table-carrying, small = rest)";
  let p = Params.make ~b:16 ~d:8 in
  let n = 1000 and m = 400 in
  let run = Experiment.concurrent_joins p ~seed:81 ~n ~m () in
  ignore (claim "census: setup run ok" (Experiment.ok run) : bool);
  let g = Ntcu_core.Network.global_stats run.net in
  let per_join k =
    float_of_int (Ntcu_core.Stats.sent g k) /. float_of_int m
  in
  let big =
    [
      Ntcu_core.Message.K_cp_rst;
      K_cp_rly;
      K_join_wait;
      K_join_wait_rly;
      K_join_noti;
      K_join_noti_rly;
    ]
  in
  let small =
    [
      Ntcu_core.Message.K_in_sys_noti;
      K_spe_noti;
      K_spe_noti_rly;
      K_rv_ngh_noti;
      K_rv_ngh_noti_rly;
    ]
  in
  let rows =
    List.map
      (fun k ->
        [
          Ntcu_core.Message.kind_name k;
          Printf.sprintf "%.3f" (per_join k);
          (if List.mem k big then "big (request/reply)" else "small");
        ])
      (big @ small)
  in
  pf "%a" (Report.table ~header:[ "message"; "sent per join"; "class" ]) rows;
  pf
    "(replies mirror requests one-for-one; the paper analyzes CpRst/JoinWait — Theorem 3 \
     — and JoinNoti — Theorems 4-5; small-message counts were deferred to the technical \
     report)@."

(* ---- Latency-model ablation ---- *)

let latency_ablation () =
  section "Ablation: latency model vs join cost (consistency must hold in all)";
  let p = Params.make ~b:16 ~d:8 in
  let n = 500 and m = 200 in
  (* Latency models are built inside the thunk: the transit-stub one owns a
     Distances cache, which is single-domain state and must belong to the
     domain that runs its simulation. *)
  let results =
    pmap
      (fun (make_latency, name) ->
        let run = Experiment.concurrent_joins ~latency:(make_latency ()) p ~seed:31 ~n ~m () in
        (name, Experiment.ok run, mean_int run.join_noti, run.events))
      [
        ((fun () -> Ntcu_sim.Latency.constant 1.0), "constant 1ms");
        ((fun () -> Ntcu_sim.Latency.uniform ~seed:1 ~lo:1. ~hi:100.), "uniform 1-100ms");
        ( (fun () ->
            let topo =
              Ntcu_topology.Transit_stub.generate ~seed:2
                Ntcu_topology.Transit_stub.default_config
            in
            let hosts = Ntcu_topology.Endhosts.attach ~seed:3 topo ~n:(n + m) in
            Ntcu_topology.Endhosts.latency ~seed:4 hosts),
          "transit-stub" );
      ]
  in
  let rows =
    List.map
      (fun (name, ok, avg_j, events) ->
        [
          name;
          (if claim ("latency-ablation: " ^ name) ok then "yes" else "NO");
          Printf.sprintf "%.3f" avg_j;
          string_of_int events;
        ])
      results
  in
  pf "%a" (Report.table ~header:[ "latency model"; "consistent"; "avg J"; "messages" ]) rows

(* ---- Optimization extension: route stretch before/after ---- *)

let optimize () =
  section "Extension: neighbor-table optimization (route stretch)";
  let n = 300 and m = 100 in
  let routers = Ntcu_topology.Transit_stub.default_config in
  let topo = Ntcu_topology.Transit_stub.generate ~seed:42 routers in
  let hosts = Ntcu_topology.Endhosts.attach ~seed:43 topo ~n:(n + m) in
  let p = Params.make ~b:16 ~d:8 in
  let rng = Ntcu_std.Rng.create 44 in
  let seeds = Ntcu_harness.Workload.distinct_ids rng p ~n in
  let joiners =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:m
  in
  let net =
    Ntcu_core.Network.create ~latency:(Ntcu_topology.Endhosts.latency ~seed:45 hosts) p
  in
  Ntcu_core.Network.seed_consistent net ~seed:46 seeds;
  List.iter
    (fun id -> Ntcu_core.Network.start_join net ~id ~gateway:(List.hd seeds) ())
    joiners;
  Ntcu_core.Network.run net;
  ignore
    (claim "optimize: setup consistent"
       (List.is_empty (Ntcu_core.Network.check_consistent net))
      : bool);
  (* Host index = registration order, matching the attach order. *)
  let host_index = Id.Tbl.create 512 in
  List.iteri (fun i id -> Id.Tbl.replace host_index id i) (Ntcu_core.Network.ids net);
  let dist a b =
    Ntcu_topology.Endhosts.distance hosts (Id.Tbl.find host_index a)
      (Id.Tbl.find host_index b)
  in
  let before =
    Ntcu_extensions.Optimize.average_route_stretch net ~dist ~seed:5 ~samples:500
  in
  let improved = Ntcu_extensions.Optimize.optimize ~max_passes:5 net ~dist in
  let after =
    Ntcu_extensions.Optimize.average_route_stretch net ~dist ~seed:5 ~samples:500
  in
  pf "entries improved: %d@." improved;
  pf "average route stretch: %.3f before, %.3f after@." before after;
  pf "still consistent: %b@."
    (claim "optimize: consistent after optimization"
       (List.is_empty (Ntcu_core.Network.check_consistent net)))

(* ---- Assumption ablation: what the paper's assumptions buy ---- *)

let assumption () =
  section "Assumption ablation: reliable delivery (iii) and no deletion during joins (iv)";
  let p = Params.make ~b:16 ~d:8 in
  let n = 300 and m = 150 in
  (* (iii): message loss wedges joins (liveness), it does not corrupt tables
     of nodes that did complete. *)
  pf "-- assumption (iii): in-transit message loss@.";
  let rows =
    List.map
      (fun loss ->
        let rng = Ntcu_std.Rng.create 51 in
        let seeds = Ntcu_harness.Workload.distinct_ids rng p ~n in
        let joiners =
          Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:m
        in
        let net =
          Ntcu_core.Network.create ~loss:(loss, 52)
            ~latency:(Ntcu_sim.Latency.uniform ~seed:53 ~lo:1. ~hi:100.)
            p
        in
        Ntcu_core.Network.seed_consistent net ~seed:54 seeds;
        let gateways = Array.of_list seeds in
        List.iter
          (fun id ->
            Ntcu_core.Network.start_join net ~id
              ~gateway:(Ntcu_std.Rng.pick rng gateways) ())
          joiners;
        Ntcu_core.Network.run net;
        [
          Printf.sprintf "%.1f%%" (100. *. loss);
          string_of_int (Ntcu_core.Network.messages_lost net);
          string_of_int (List.length (Ntcu_core.Network.stuck_joiners net));
        ])
      [ 0.0; 0.001; 0.01; 0.05; 0.2 ]
  in
  pf "%a" (Report.table ~header:[ "loss rate"; "messages lost"; "wedged joiners" ]) rows;
  (* (iv): leaves DURING the join window can strand joiners and leave
     dangling references; epoch-separated churn (the theorem's regime) never
     does. *)
  pf "-- assumption (iv): node deletion during the join window@.";
  let mixed_run ~interleave seed =
    let rng = Ntcu_std.Rng.create seed in
    let seeds_ids = Ntcu_harness.Workload.distinct_ids rng p ~n in
    let joiners =
      Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds_ids) rng p ~n:m
    in
    let net =
      Ntcu_core.Network.create
        ~latency:(Ntcu_sim.Latency.uniform ~seed:(seed + 1) ~lo:1. ~hi:100.)
        p
    in
    Ntcu_core.Network.seed_consistent net ~seed:(seed + 2) seeds_ids;
    let gateways = Array.of_list seeds_ids in
    List.iter
      (fun id ->
        Ntcu_core.Network.start_join net ~id ~gateway:(Ntcu_std.Rng.pick rng gateways) ())
      joiners;
    let lp = Ntcu_extensions.Leave_protocol.create net in
    let victims = Array.of_list seeds_ids in
    Ntcu_std.Rng.shuffle rng victims;
    let victims = Array.sub victims 0 30 in
    if interleave then
      (* Leaves fire inside the join window. *)
      Array.iter
        (fun id ->
          Ntcu_extensions.Leave_protocol.request_leave lp
            ~at:(Ntcu_std.Rng.float rng 150.) id)
        victims
    else begin
      (* Epoch-separated: joins first, then leaves. *)
      Ntcu_core.Network.run net;
      Array.iter (fun id -> Ntcu_extensions.Leave_protocol.request_leave lp id) victims
    end;
    Ntcu_core.Network.run net;
    let wedged = List.length (Ntcu_core.Network.stuck_joiners net) in
    let violations =
      List.length (Ntcu_table.Check.violations (Ntcu_core.Network.tables net))
    in
    (wedged, violations)
  in
  let rows =
    List.concat_map
      (fun (interleave, label) ->
        List.map
          (fun seed ->
            let wedged, violations = mixed_run ~interleave seed in
            [ label; string_of_int seed; string_of_int wedged; string_of_int violations ])
          [ 61; 62; 63 ])
      [ (false, "epoch-separated"); (true, "interleaved") ]
  in
  pf "%a"
    (Report.table ~header:[ "schedule"; "seed"; "wedged joiners"; "violations" ])
    rows

(* ---- Churn extensions: leaves and failure recovery ---- *)

let churn () =
  section "Extensions: message-level leaves and failure recovery under churn";
  let p = Params.make ~b:16 ~d:8 in
  let run = Experiment.concurrent_joins p ~seed:41 ~n:600 ~m:200 () in
  ignore (claim "churn: setup run ok" (Experiment.ok run) : bool);
  let net = run.net in
  (* A quarter of the network leaves concurrently. *)
  let lp = Ntcu_extensions.Leave_protocol.create net in
  let leavers = fst (Ntcu_harness.Workload.split 200 (Ntcu_core.Network.ids net)) in
  List.iter (fun id -> Ntcu_extensions.Leave_protocol.request_leave lp id) leavers;
  Ntcu_extensions.Leave_protocol.run lp;
  let lr = Ntcu_extensions.Leave_protocol.report lp in
  pf "concurrent leaves: %a@." Ntcu_extensions.Leave_protocol.pp_report lr;
  pf "consistent after leaves: %b@."
    (claim "churn: consistent after leaves"
       (List.is_empty (Ntcu_table.Check.violations (Ntcu_core.Network.tables net))));
  (* Then crash fractions of the survivors and repair. *)
  List.iter
    (fun fraction ->
      let run = Experiment.concurrent_joins p ~seed:42 ~n:600 ~m:200 () in
      ignore (claim "churn: pre-crash run ok" (Experiment.ok run) : bool);
      ignore (Ntcu_extensions.Recovery.fail_random run.net ~seed:43 ~fraction);
      let report = Ntcu_extensions.Recovery.repair run.net in
      (* Crashes here are epoch-separated (the network was quiescent), so
         repair must restore full consistency — unlike the crash-over-join
         grids in [fault], where it is best-effort. *)
      pf "fail %2.0f%%: %a; consistent: %b@." (100. *. fraction)
        Ntcu_extensions.Recovery.pp_report report
        (claim
           (Printf.sprintf "churn: consistent after repair at %.0f%%"
              (100. *. fraction))
           (List.is_empty
              (Ntcu_table.Check.violations (Ntcu_core.Network.tables run.net)))))
    [ 0.05; 0.15; 0.30; 0.50 ]

(* ---- Continuous churn: steady-state engine + half-life sweep ---- *)

(* Unlike [churn] above (epoch-separated leave/crash batches on a quiescent
   network), this drives lib/churn's open system: Poisson arrivals against
   expiring sessions at the target size, sampled over virtual hours, then a
   downward half-life sweep to locate the measured churn tolerance. The
   claim is Best_effort — under crash churn, consistency is one of the
   measured series, not a guarantee. Writes BENCH_churn.json
   (ntcu-bench-churn/1; same schema as `ntcu churn`). *)
let churn_steady ~smoke () =
  section "Continuous churn: steady state + half-life sweep (writes BENCH_churn.json)";
  let module Churn = Ntcu_churn.Churn in
  let base =
    if smoke then Churn.smoke
    else
      {
        Churn.default with
        n = 250;
        duration = 1_200_000.;
        (* 20 virtual minutes at a 10-minute half-life: ~2.4 population
           turnovers, enough for the tail window to be steady state. *)
        half_life = 600_000.;
        sample_every = 30_000.;
      }
  in
  let result = Churn.run base in
  pf "%a@." Churn.pp_result result;
  ignore
    (claim "churn-steady: sustained and drained (best-effort)"
       (Churn.ok ~claim:Experiment.Best_effort result)
      : bool);
  (* The smoke config deliberately sits below its predicted tolerance (a
     1-minute half-life against a ~2-minute prediction), so only the default
     scale claims a clean bill of health at the base half-life. *)
  if not smoke then
    ignore
      (claim "churn-steady: healthy at base half-life"
         (List.is_empty (Churn.health base result.Churn.summary))
        : bool);
  let points = if smoke then 2 else 3 in
  let sweep =
    match !pool with
    | Some p -> Churn.sweep p ~base ~points
    | None -> assert false
  in
  pf "%a@." Churn.pp_sweep sweep;
  Report.Json.to_file "BENCH_churn.json" (Churn.bench_json ~sweep result);
  pf "wrote BENCH_churn.json@."

(* ---- Heavy-traffic object-location serving ---- *)

(* The PRR-style directory under a production-shaped workload: Zipf-popular
   replicated objects, sustained lookups from random clients, the LRU
   hop-pointer cache ablated off and on, and the same workload composed with
   the continuous-churn driver (incremental directory maintenance +
   re-replication each serve tick). The static correctness claim is strict —
   every lookup must return the complete replica set, cache or not; the
   under-churn tail-success claim is gated at the churn bench's base
   half-life. Writes BENCH_serve.json (ntcu-bench-serve/1; same schema as
   `ntcu serve`). *)
let serve ~smoke () =
  section "Object-location serving: Zipf workload + cache ablation (writes BENCH_serve.json)";
  let module Serve = Ntcu_serve.Serve in
  let module Churn = Ntcu_churn.Churn in
  let cfg = if smoke then Serve.smoke else Serve.default in
  let churn_cfg =
    if smoke then Churn.smoke
    else
      (* The churn bench's base point (churn_steady above): n = 250, 20
         virtual minutes at a 10-minute half-life. *)
      {
        Churn.default with
        n = 250;
        duration = 1_200_000.;
        half_life = 600_000.;
        sample_every = 30_000.;
      }
  in
  let abl, churn =
    match !pool with
    | Some p -> Serve.run_all p cfg churn_cfg
    | None -> assert false
  in
  pf "static, cache off:@.%a@.@." Serve.pp_summary abl.Serve.nocache;
  pf "static, cache %d:@.%a@.@." cfg.Serve.cache Serve.pp_summary abl.Serve.cached;
  pf "under churn (n=%d, half-life %gs):@.%a@." churn_cfg.Churn.n
    (churn_cfg.Churn.half_life /. 1000.)
    Serve.pp_churn_run churn;
  ignore
    (claim "serve: every static lookup finds the complete replica set (cache off)"
       (Serve.static_ok abl.Serve.nocache)
      : bool);
  ignore
    (claim "serve: every static lookup finds the complete replica set (cache on)"
       (Serve.static_ok abl.Serve.cached)
      : bool);
  ignore
    (claim "serve: hop-pointer cache lowers mean pointer-hit depth"
       (Serve.cache_improves ~nocache:abl.Serve.nocache ~cached:abl.Serve.cached)
      : bool);
  (* As for churn-steady: the smoke config deliberately churns past its
     predicted tolerance, so only the default scale claims the serving SLO. *)
  if not smoke then
    ignore
      (claim "serve: tail lookup resolution >= 0.99 under churn at base half-life"
         (Serve.churn_ok churn)
        : bool);
  Report.Json.to_file "BENCH_serve.json" (Serve.bench_json cfg abl churn);
  pf "wrote BENCH_serve.json@."

(* ---- Sharded scale engine: packed ids + arena storage at 10^5 nodes ---- *)

(* Drives lib/scale's sharded epoch engine over a population curve and writes
   BENCH_scale.json. The payload section of each run is a deterministic
   function of the configuration (byte-identical for every --jobs value), so
   the artifact is diffable across machines; wall time, events/s and GC peak
   live in the host section. The memory claim compares the arena's
   deterministic bytes/node at the largest population against a record-backed
   consistent network measured at 10k nodes — the scale-up must at least
   halve per-node state. *)
let scale ~smoke () =
  section "Scale: sharded epoch engine, packed ids + arena storage (writes BENCH_scale.json)";
  let module Scale_bench = Ntcu_harness.Scale_bench in
  let jobs = pool_jobs () in
  let configs =
    if smoke then [ Scale_bench.smoke_config ]
    else
      List.map
        (fun n -> Scale_bench.default_config ~n ())
        [ 10_000; 50_000; 100_000 ]
  in
  let runs =
    List.map
      (fun cfg ->
        let r = Scale_bench.measure ~jobs cfg in
        pf "%a@." Scale_bench.pp_run r;
        ignore
          (claim
             (Printf.sprintf "scale: n=%d complete and consistent" cfg.Scale_bench.Scale.n)
             (Scale_bench.ok r)
            : bool);
        r)
      configs
  in
  let control = Scale_bench.control_bytes_per_node Ntcu_id.Params.paper_sim_d8 in
  pf "record-backed control at 10k nodes: %.1f bytes/node@." control;
  if not smoke then begin
    let last = List.nth runs (List.length runs - 1) in
    ignore
      (claim "scale: arena bytes/node at 100k <= half the record control at 10k"
         (Scale_bench.bytes_per_node last.Scale_bench.summary <= control /. 2.)
        : bool)
  end;
  Report.Json.to_file "BENCH_scale.json"
    (Scale_bench.bench_json ~control_bytes_per_node:control runs);
  pf "wrote BENCH_scale.json@."

(* ---- Protocol arena: paper vs Chord vs baseline, head to head ---- *)

(* Runs every arm of the pluggable-protocol arena — the paper's protocol,
   corrected Chord, the multicast baseline and naive Chord — on the identical
   seeded topology, join/leave schedule and lookup pairs, and writes the
   paired report to BENCH_arena.json (byte-identical across --jobs values).
   The production arms (paper, corrected Chord) must pass their own
   invariants; the naive-Chord arm is the designed differential and must NOT
   — silent departures break its ring where successor redundancy and the
   paper's repair survive. The baseline column is comparison data only: its
   concurrency unsafety is already claimed by the [baseline] section, and
   whether the races fire here depends on the scale. *)
let arena ~smoke () =
  section "Protocol arena: paper vs Chord vs baseline (writes BENCH_arena.json)";
  let module Arena = Ntcu_harness.Arena in
  let base = if smoke then Arena.smoke else Arena.default in
  let cfg =
    { base with
      Arena.arms = [ Arena.Paper; Arena.Chord; Arena.Baseline; Arena.Chord_naive ] }
  in
  let report = Arena.run ~jobs:(pool_jobs ()) cfg in
  pf "%a@." Arena.pp_report report;
  List.iter
    (fun (r : Arena.arm_result) ->
      let name = Arena.arm_name r.Arena.arm in
      match r.Arena.arm with
      | Arena.Chord_naive ->
        ignore
          (claim "arena: naive chord exhibits the differential (violations expected)"
             (not (Arena.arm_ok r))
            : bool)
      | Arena.Baseline -> ()
      | Arena.Paper | Arena.Chord ->
        ignore (claim (Printf.sprintf "arena: %s arm invariants" name) (Arena.arm_ok r) : bool);
        ignore
          (claim
             (Printf.sprintf "arena: %s arm answers every lookup" name)
             (r.Arena.lookups_attempted > 0
             && r.Arena.lookups_ok = r.Arena.lookups_attempted)
            : bool))
    report.Arena.results;
  Arena.write ~path:"BENCH_arena.json" report;
  pf "wrote BENCH_arena.json@."

(* ---- Backup neighbors: routing resilience before repair ---- *)

let resilience () =
  section "Backup neighbors (Section 2.1): routing success right after crashes, before repair";
  let p = Params.make ~b:16 ~d:8 in
  let rows =
    List.map
      (fun fraction ->
        let run = Experiment.concurrent_joins p ~seed:71 ~n:400 ~m:400 () in
        ignore (claim "resilience: setup run ok" (Experiment.ok run) : bool);
        let net = run.net in
        ignore (Ntcu_extensions.Recovery.fail_random net ~seed:72 ~fraction);
        let alive x =
          Ntcu_core.Network.mem net x && not (Ntcu_core.Network.is_failed net x)
        in
        let lookup x = Option.map Ntcu_core.Node.table (Ntcu_core.Network.node net x) in
        let live = Array.of_list (Ntcu_core.Network.live_ids net) in
        let rng = Ntcu_std.Rng.create 73 in
        let plain = ref 0 and resilient = ref 0 in
        let total = 2000 in
        for _ = 1 to total do
          let src = Ntcu_std.Rng.pick rng live and dst = Ntcu_std.Rng.pick rng live in
          (match Ntcu_routing.Route.route ~lookup ~src ~dst with
          | Ok path when List.for_all alive path -> incr plain
          | Ok _ | Error _ -> ());
          match Ntcu_routing.Route.route_resilient ~lookup ~alive ~src ~dst with
          | Ok _ -> incr resilient
          | Error _ -> ()
        done;
        let pct x = Printf.sprintf "%.1f%%" (100. *. float_of_int x /. float_of_int total) in
        [ Printf.sprintf "%.0f%%" (100. *. fraction); pct !plain; pct !resilient ])
      [ 0.05; 0.1; 0.2; 0.3 ]
  in
  pf "%a"
    (Report.table
       ~header:[ "crashed"; "primaries only"; "with backup neighbors" ])
    rows

(* ---- Fault injection: the reliability layer vs loss and crashes ---- *)

let fault ~smoke () =
  section "Fault injection: ack/retransmit + suspicion + online repair vs loss and crashes";
  let p = Params.make ~b:16 ~d:8 in
  let n = if smoke then 60 else 300 in
  let m = if smoke then 8 else 100 in
  let cell (f : Experiment.fault_run) =
    Printf.sprintf "%s/%s%s"
      (if f.run.all_in_system then "live" else Printf.sprintf "%d stuck" f.stuck)
      (if Experiment.consistent f.run then "ok"
       else Printf.sprintf "%d viol" (List.length (Lazy.force f.run.violations)))
      (if f.retransmissions > 0 then Printf.sprintf " (%d rtx)" f.retransmissions else "")
  in
  let losses = if smoke then [ 0.02 ] else [ 0.01; 0.02; 0.05 ] in
  let crashes = if smoke then [ 0.0; 0.02 ] else [ 0.0; 0.01; 0.03 ] in
  (* The loss x crash grid is flattened into one batch of independent cells
     (each with its own network, loss RNG and crash schedule), then folded
     back into rows — the ordered map keeps the table identical to the
     serial nesting. *)
  let grid = List.concat_map (fun loss -> List.map (fun c -> (loss, c)) crashes) losses in
  let cells =
    pmap
      (fun (loss, crash_fraction) ->
        Experiment.fault_injection ~loss ~crash_fraction p ~seed:91 ~n ~m ())
      grid
  in
  (* The defended claim in this regime is Best_effort: every cell must end
     live and quiescent; residual holes are reported in the table but not
     gated (crash-over-join repair is legitimately best-effort). *)
  List.iter2
    (fun (loss, crash_fraction) (f : Experiment.fault_run) ->
      ignore
        (claim
           (Printf.sprintf "fault: loss=%.2f crash=%.2f live (best-effort)" loss
              crash_fraction)
           (Experiment.ok ~claim:Experiment.Best_effort f.run)
          : bool))
    grid cells;
  let rows =
    List.mapi
      (fun i loss ->
        Printf.sprintf "%.0f%%" (100. *. loss)
        :: List.mapi
             (fun j _ -> cell (List.nth cells ((i * List.length crashes) + j)))
             crashes)
      losses
  in
  let header =
    "loss \\ crash"
    :: List.map (fun c -> Printf.sprintf "%.0f%% crash" (100. *. c)) crashes
  in
  pf "n=%d, m=%d, retransmit ON:@." n m;
  pf "%a" (Report.table ~header) rows;
  (* Control: the same workload with the transport disabled reproduces the
     undefended wedge (assumption-(iii) ablation). *)
  let off =
    Experiment.fault_injection ~reliable:false ~loss:0.02 ~crash_fraction:0. p ~seed:91 ~n
      ~m ()
  in
  pf "retransmit OFF control (2%% loss, no crash): %d stuck joiners, %d lost@." off.stuck
    off.lost;
  let detail =
    Experiment.fault_injection ~loss:0.02
      ~crash_fraction:(if smoke then 0.02 else 0.01)
      p ~seed:92 ~n ~m ()
  in
  pf "detail (2%% loss + crash): %a" Report.pp_fault_run detail

(* ---- Performance regression bench: fig15b-style runs, timed ---- *)

(* Times the simulation hot path (event queue, shortest-path latencies,
   codec-backed size accounting) on fig15b-style workloads and writes the
   measurements to BENCH_perf.json so CI can archive them and a reviewer can
   diff runs. Wall time is the regression signal; events/sec normalizes it
   across scales; top_heap_words and the Dijkstra cache counters explain
   regressions (allocation blow-up vs cache thrash). *)
let perf ~full ~smoke () =
  section "Performance: fig15b-style runs (writes BENCH_perf.json)";
  let scale, routers, setups =
    if smoke then
      ("smoke", Ntcu_topology.Transit_stub.default_config, [ { Experiment.d = 8; n = 150; m = 50 } ])
    else if full then ("full", Ntcu_topology.Transit_stub.paper_config, Experiment.paper_setups)
    else
      ( "default",
        Ntcu_topology.Transit_stub.scaled_config,
        [ { Experiment.d = 8; n = 3096; m = 1000 }; { Experiment.d = 40; n = 3096; m = 1000 } ] )
  in
  let jobs = pool_jobs () in
  pf "scale: %s, %d routers, jobs %d@." scale
    (Ntcu_topology.Transit_stub.router_count routers)
    jobs;
  let module J = Report.Json in
  let run_one (i, (setup : Experiment.fig15b_setup)) =
    let t0 = Unix.gettimeofday () in
    let run, hosts = Experiment.fig15b_instrumented ~routers ~seed:(100 + i) setup in
    let wall = Unix.gettimeofday () -. t0 in
    let gc = Gc.quick_stat () in
    let dist = Ntcu_topology.Endhosts.distances hosts in
    let ds = Ntcu_topology.Distances.stats dist in
    let events_per_s = float_of_int run.events /. wall in
    let row =
      [
        Printf.sprintf "n=%d m=%d d=%d" setup.n setup.m setup.d;
        Printf.sprintf "%.2f" wall;
        string_of_int run.events;
        Printf.sprintf "%.0f" events_per_s;
        string_of_int gc.top_heap_words;
        Printf.sprintf "%.4f" (Ntcu_topology.Distances.hit_rate dist);
        (if Experiment.ok run then "yes" else "NO");
      ]
    in
    let json =
      J.Obj
        [
          ("d", J.Int setup.d);
          ("n", J.Int setup.n);
          ("m", J.Int setup.m);
          ("seed", J.Int (100 + i));
          ("wall_s", J.Float wall);
          ("cpu_s", J.Float run.elapsed_cpu);
          ("events", J.Int run.events);
          ("events_per_s", J.Float events_per_s);
          ("top_heap_words", J.Int gc.top_heap_words);
          ("minor_collections", J.Int gc.minor_collections);
          ("major_collections", J.Int gc.major_collections);
          ( "dijkstra",
            J.Obj
              [
                ("queries", J.Int ds.queries);
                ("settled_hits", J.Int ds.settled_hits);
                ("state_hits", J.Int ds.state_hits);
                ("state_misses", J.Int ds.state_misses);
                ("evictions", J.Int ds.evictions);
                ("pops", J.Int ds.pops);
                ("hit_rate", J.Float (Ntcu_topology.Distances.hit_rate dist));
              ] );
          ("consistent", J.Bool (Experiment.consistent run));
          ("all_in_system", J.Bool run.all_in_system);
        ]
    in
    (row, json, wall, Experiment.ok run, setup)
  in
  (* Aggregate wall is elapsed time around the whole fan-out; the sum of
     per-run walls is what a serial execution would have cost (measured
     in-run, so it slightly inflates under core contention), making
     [speedup_vs_serial] a conservative estimate at --jobs 1 and an
     optimistic one beyond the physical core count. *)
  let t_all = Unix.gettimeofday () in
  let results = pmap run_one (List.mapi (fun i setup -> (i, setup)) setups) in
  let total_wall = Unix.gettimeofday () -. t_all in
  List.iter
    (fun (_, _, _, ok, (setup : Experiment.fig15b_setup)) ->
      ignore
        (claim (Printf.sprintf "perf: n=%d m=%d d=%d ok" setup.n setup.m setup.d) ok
          : bool))
    results;
  let rows = List.map (fun (r, _, _, _, _) -> r) results in
  let serial_wall =
    List.fold_left (fun acc (_, _, w, _, _) -> acc +. w) 0. results
  in
  let speedup = if total_wall > 0. then serial_wall /. total_wall else 1. in
  pf "%a"
    (Report.table
       ~header:
         [ "setup"; "wall s"; "events"; "events/s"; "top heap w"; "dijkstra hit"; "ok" ])
    rows;
  pf "total wall: %.2fs (per-run sum %.2fs, %.2fx vs serial at %d jobs)@." total_wall
    serial_wall speedup jobs;
  let doc =
    J.Obj
      [
        ("schema", J.String "ntcu-bench-perf/2");
        ("scale", J.String scale);
        ("routers", J.Int (Ntcu_topology.Transit_stub.router_count routers));
        ("jobs", J.Int jobs);
        ("total_wall_s", J.Float total_wall);
        ("serial_wall_s", J.Float serial_wall);
        ("speedup_vs_serial", J.Float speedup);
        ("runs", J.List (List.map (fun (_, j, _, _, _) -> j) results));
      ]
  in
  J.to_file "BENCH_perf.json" doc;
  pf "wrote BENCH_perf.json@."

(* ---- Bechamel microbenchmarks ---- *)

let micro () =
  section "Bechamel microbenchmarks";
  let open Bechamel in
  let p = Params.make ~b:16 ~d:8 in
  let run = Experiment.concurrent_joins p ~seed:3 ~n:200 ~m:100 () in
  let ids = Array.of_list (Ntcu_core.Network.ids run.net) in
  let lookup id = Option.map Ntcu_core.Node.table (Ntcu_core.Network.node run.net id) in
  let rng = Ntcu_std.Rng.create 9 in
  let tables = Ntcu_core.Network.tables run.net in
  let bench_route =
    Test.make ~name:"route"
      (Staged.stage (fun () ->
           let src = Ntcu_std.Rng.pick rng ids and dst = Ntcu_std.Rng.pick rng ids in
           ignore (Ntcu_routing.Route.route ~lookup ~src ~dst)))
  in
  let bench_check =
    Test.make ~name:"consistency-check-300-nodes"
      (Staged.stage (fun () -> ignore (Ntcu_table.Check.violations ~limit:1 tables)))
  in
  let bench_join =
    Test.make ~name:"join-into-50-node-network"
      (Staged.stage
         (let counter = ref 0 in
          fun () ->
            incr counter;
            ignore (Experiment.concurrent_joins p ~seed:!counter ~n:50 ~m:1 ())))
  in
  let bench_bound =
    Test.make ~name:"theorem5-bound-n100k-d40"
      (Staged.stage (fun () ->
           ignore (Join_cost.theorem5_bound (Params.make ~b:16 ~d:40) ~n:100_000 ~m:1000)))
  in
  let benchmarks = [ bench_route; bench_check; bench_join; bench_bound ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      (* Print in name order; Hashtbl.iter order would vary run to run. *)
      let rows =
        (Hashtbl.fold [@ntcu.allow "D002"])
          (fun name result acc -> (name, result) :: acc)
          results []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> pf "%-40s %14.1f ns/run@." name est
          | Some _ | None -> pf "%-40s (no estimate)@." name)
        rows)
    benchmarks

(* Pull "--jobs N" / "--jobs=N" out of the argument list (so N is not
   mistaken for a section name) and return (jobs value, remaining args). *)
let extract_jobs args =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | Some _ | None -> failwith (Printf.sprintf "--jobs %s: expected a nonnegative integer" s)
  in
  let rec go acc jobs = function
    | [] -> (jobs, List.rev acc)
    | "--jobs" :: v :: rest -> go acc (Some (parse v)) rest
    | "--jobs" :: [] -> failwith "--jobs: missing value"
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
      go acc (Some (parse (String.sub a 7 (String.length a - 7)))) rest
    | a :: rest -> go (a :: acc) jobs rest
  in
  go [] None args

let () =
  let jobs_opt, args = extract_jobs (Array.to_list Sys.argv) in
  let jobs = Ntcu_std.Parallel.resolve_jobs jobs_opt in
  pool := Some (Ntcu_std.Parallel.create ~jobs);
  let full = List.exists (( = ) "--full") args in
  let smoke = List.exists (( = ) "--smoke") args in
  let routers =
    if full then Ntcu_topology.Transit_stub.paper_config
    else Ntcu_topology.Transit_stub.scaled_config
  in
  let sections =
    List.filter
      (fun a ->
        not (String.length a = 0 || a.[0] = '-' || Filename.check_suffix a ".exe"))
      (List.tl args)
  in
  let want name = sections = [] || List.mem name sections in
  if want "fig15a" then fig15a ();
  if want "fig15b" || want "avg-vs-bound" || want "theorem3" then begin
    let runs = fig15b ~routers () in
    if want "avg-vs-bound" then avg_vs_bound runs;
    if want "theorem3" then theorem3 runs
  end;
  if want "theorem4" then theorem4 ();
  if want "baseline" then baseline ();
  if want "msgsize" then msgsize ();
  if want "census" then census ();
  if want "latency-ablation" then latency_ablation ();
  if want "optimize" then optimize ();
  if want "assumption" then assumption ();
  if want "resilience" then resilience ();
  if want "churn" then churn ();
  if want "churn-steady" then churn_steady ~smoke ();
  if want "serve" then serve ~smoke ();
  if want "scale" then scale ~smoke ();
  if want "arena" then arena ~smoke ();
  if want "fault" then fault ~smoke ();
  if want "perf" then perf ~full ~smoke ();
  if want "micro" then micro ();
  (match !pool with Some p -> Ntcu_std.Parallel.shutdown p | None -> ());
  if !failed then begin
    pf "@.FAILED: a consistency claim above did not hold.@.";
    exit 1
  end;
  pf "@.done.@."
