(* Command-line interface to the reproduction: run joins, regenerate the
   paper's figures, validate consistency across seeds, and query the
   analytic model. *)

open Cmdliner

module Params = Ntcu_id.Params
module Experiment = Ntcu_harness.Experiment
module Report = Ntcu_harness.Report
module Join_cost = Ntcu_analysis.Join_cost

(* ---- common arguments ---- *)

let n_arg =
  Arg.(value & opt int 500 & info [ "n" ] ~docv:"N" ~doc:"Size of the initial network $(docv).")

let m_arg =
  Arg.(value & opt int 200 & info [ "m" ] ~docv:"M" ~doc:"Number of joining nodes $(docv).")

let b_arg = Arg.(value & opt int 16 & info [ "b" ] ~docv:"B" ~doc:"Digit base $(docv).")
let d_arg = Arg.(value & opt int 8 & info [ "d" ] ~docv:"D" ~doc:"Digits per ID $(docv).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed $(docv).")

let suffix_arg =
  Arg.(
    value & opt string ""
    & info [ "suffix" ] ~docv:"SUFFIX"
        ~doc:"Force all joiner IDs to end with $(docv) (adversarial dependent joins).")

let parse_suffix b s =
  if s = "" then [||]
  else begin
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'z' -> Char.code c - Char.code 'a' + 10
      | _ -> failwith "bad suffix digit"
    in
    let k = String.length s in
    Array.init k (fun i ->
        let v = digit s.[k - 1 - i] in
        if v >= b then failwith "suffix digit out of base";
        v)
  end

(* ---- join ---- *)

let join_cmd =
  let run n m b d seed suffix sequential =
    let p = Params.make ~b ~d in
    let suffix = parse_suffix b suffix in
    let result =
      if sequential then Experiment.sequential_joins p ~seed ~n ~m ()
      else Experiment.concurrent_joins p ~suffix ~seed ~n ~m ()
    in
    Format.printf "%a" Report.pp_join_run result;
    if Experiment.consistent result then 0 else 1
  in
  let sequential =
    Arg.(value & flag & info [ "sequential" ] ~doc:"Join one node at a time.")
  in
  Cmd.v
    (Cmd.info "join" ~doc:"Run m joins into an n-node consistent network and verify.")
    Term.(const run $ n_arg $ m_arg $ b_arg $ d_arg $ seed_arg $ suffix_arg $ sequential)

(* ---- validate ---- *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"J"
        ~doc:
          "Fan independent runs out to $(docv) domains (0 = one per core). Defaults to \
           the NTCU_JOBS environment variable, then to 1 (serial). Results are \
           collected in submission order, so the output is identical for every value.")

let validate_cmd =
  let run trials jobs =
    let jobs = Ntcu_std.Parallel.resolve_jobs jobs in
    let ok_run (run : Experiment.join_run) =
      Experiment.ok run
      && Array.for_all
           (fun c -> c <= (Ntcu_core.Network.params run.net).d + 1)
           run.cp_wait
    in
    (* Every (scenario, seed) pair is an independent simulation; fan them
       out and print in submission order, byte-identical to the serial loop. *)
    let scenarios =
      List.concat_map
        (fun seed ->
          [
            ( Printf.sprintf "concurrent b=4 d=6 n=20 m=30 seed=%d" seed,
              fun () ->
                Experiment.concurrent_joins (Params.make ~b:4 ~d:6) ~seed ~n:20 ~m:30 () );
            ( Printf.sprintf "dependent  b=8 d=5 n=30 m=20 seed=%d" seed,
              fun () ->
                Experiment.concurrent_joins
                  (Params.make ~b:8 ~d:5)
                  ~suffix:[| 3; 1 |] ~seed ~n:30 ~m:20 () );
            ( Printf.sprintf "init       b=4 d=6 n=30       seed=%d" seed,
              fun () -> Experiment.network_init (Params.make ~b:4 ~d:6) ~seed ~n:30 );
          ])
        (List.init trials (fun i -> i + 1))
    in
    let results =
      Ntcu_std.Parallel.with_pool ~jobs (fun pool ->
          Ntcu_std.Parallel.map pool (fun (label, thunk) -> (label, ok_run (thunk ()))) scenarios)
    in
    let failures = ref 0 in
    List.iter
      (fun (label, ok) ->
        if not ok then incr failures;
        Format.printf "%-50s %s@." label (if ok then "ok" else "FAILED"))
      results;
    Format.printf "@.%d scenario(s) failed@." !failures;
    if !failures = 0 then 0 else 1
  in
  let trials =
    Arg.(value & opt int 5 & info [ "trials" ] ~docv:"K" ~doc:"Seeds per scenario.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Run a battery of join scenarios across seeds and check every invariant.")
    Term.(const run $ trials $ jobs_arg)

(* ---- fig15a ---- *)

let fig15a_cmd =
  let run b d m =
    let ns = List.init 10 (fun i -> 10_000 * (i + 1)) in
    let series = Experiment.fig15a_series ~b ~d ~m ~ns in
    Format.printf "%a"
      (Report.pp_fig15a_curve ~label:(Printf.sprintf "m=%d, b=%d, d=%d" m b d))
      series;
    0
  in
  Cmd.v
    (Cmd.info "fig15a" ~doc:"Print one Figure 15(a) curve (Theorem 5 bound vs n).")
    Term.(const run $ b_arg $ d_arg $ m_arg)

(* ---- fig15b ---- *)

let fig15b_cmd =
  let run n m d seed full =
    let routers =
      if full then Ntcu_topology.Transit_stub.paper_config
      else Ntcu_topology.Transit_stub.scaled_config
    in
    let result = Experiment.fig15b ~routers ~seed { Experiment.d; n; m } in
    Format.printf "%a@." Report.pp_join_run result;
    Format.printf "%a"
      (Report.pp_cdf ~label:(Printf.sprintf "n=%d, m=%d, b=16, d=%d" n m d))
      (Experiment.cdf_points result.join_noti);
    if Experiment.consistent result then 0 else 1
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's 8320-router topology.")
  in
  Cmd.v
    (Cmd.info "fig15b"
       ~doc:"Run one Figure 15(b) setup over a transit-stub topology and print the CDF.")
    Term.(const run $ n_arg $ m_arg $ d_arg $ seed_arg $ full)

(* ---- bound ---- *)

let bound_cmd =
  let run n m b d =
    let p = Params.make ~b ~d in
    Format.printf "P_i(n) (Theorem 4):@.";
    Array.iteri
      (fun i prob -> if prob > 1e-12 then Format.printf "  P_%d = %.6f@." i prob)
      (Join_cost.level_probabilities p ~n);
    Format.printf "E(J) single join (Theorem 4): %.3f@." (Join_cost.expected_join_noti p ~n);
    Format.printf "E(J) upper bound, m=%d concurrent (Theorem 5): %.3f@." m
      (Join_cost.theorem5_bound p ~n ~m);
    Format.printf "CpRst+JoinWait bound (Theorem 3): %d@." (Join_cost.theorem3_bound p);
    0
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"Evaluate the analytic model (Theorems 3-5).")
    Term.(const run $ n_arg $ m_arg $ b_arg $ d_arg)

(* ---- baseline ---- *)

let baseline_cmd =
  let run n m b d seed concurrent =
    let p = Params.make ~b ~d in
    let r = Experiment.baseline_run p ~seed ~n ~m ~concurrent in
    Format.printf
      "multicast-join baseline (%s): done=%b consistent=%b violations=%d@.\
       peak pending state at existing nodes: %d; total pending slots: %d; messages: %d@."
      (if concurrent then "concurrent" else "sequential")
      r.base_done r.base_consistent r.base_violations r.peak_pending r.pending_slots
      r.base_messages;
    0
  in
  let concurrent =
    Arg.(value & flag & info [ "concurrent" ] ~doc:"Start all joins at time zero.")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run the Tapestry-style multicast-join baseline.")
    Term.(const run $ n_arg $ m_arg $ b_arg $ d_arg $ seed_arg $ concurrent)

(* ---- leave ---- *)

let leave_cmd =
  let run n m b d seed leavers =
    let p = Params.make ~b ~d in
    let result = Experiment.concurrent_joins p ~seed ~n ~m () in
    if not (Experiment.consistent result) then begin
      Format.printf "setup inconsistent@.";
      1
    end
    else begin
      let lp = Ntcu_extensions.Leave_protocol.create result.net in
      let victims =
        fst (Ntcu_harness.Workload.split leavers (Ntcu_core.Network.ids result.net))
      in
      List.iter (fun id -> Ntcu_extensions.Leave_protocol.request_leave lp id) victims;
      Ntcu_extensions.Leave_protocol.run lp;
      Format.printf "%a@." Ntcu_extensions.Leave_protocol.pp_report
        (Ntcu_extensions.Leave_protocol.report lp);
      let consistent = List.is_empty (Ntcu_core.Network.check_consistent result.net) in
      Format.printf "consistent after leaves: %b@." consistent;
      if consistent then 0 else 1
    end
  in
  let leavers =
    Arg.(value & opt int 50 & info [ "leavers" ] ~docv:"K" ~doc:"Concurrent leavers.")
  in
  Cmd.v
    (Cmd.info "leave"
       ~doc:"Build a network, run K concurrent message-level leaves, verify consistency.")
    Term.(const run $ n_arg $ m_arg $ b_arg $ d_arg $ seed_arg $ leavers)

(* ---- recovery ---- *)

let recovery_cmd =
  let run n m b d seed fraction =
    let p = Params.make ~b ~d in
    let result = Experiment.concurrent_joins p ~seed ~n ~m () in
    if not (Experiment.consistent result) then begin
      Format.printf "setup inconsistent@.";
      1
    end
    else begin
      let victims =
        Ntcu_extensions.Recovery.fail_random result.net ~seed:(seed + 1) ~fraction
      in
      Format.printf "crashed %d of %d nodes@." (List.length victims) (n + m);
      let report = Ntcu_extensions.Recovery.repair result.net in
      Format.printf "%a@." Ntcu_extensions.Recovery.pp_report report;
      let consistent = List.is_empty (Ntcu_core.Network.check_consistent result.net) in
      Format.printf "survivors consistent: %b@." consistent;
      if consistent then 0 else 1
    end
  in
  let fraction =
    Arg.(
      value & opt float 0.2
      & info [ "fraction" ] ~docv:"F" ~doc:"Fraction of nodes to crash (0 <= F < 1).")
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:"Build a network, crash a fraction of it, repair, verify consistency.")
    Term.(const run $ n_arg $ m_arg $ b_arg $ d_arg $ seed_arg $ fraction)

(* ---- fault ---- *)

let fault_cmd =
  let run n m b d seed loss crash unreliable =
    let p = Params.make ~b ~d in
    let f =
      Experiment.fault_injection ~reliable:(not unreliable) ~loss ~crash_fraction:crash p
        ~seed ~n ~m ()
    in
    Format.printf "%a" Report.pp_fault_run f;
    (* Best-effort claim: crash-over-join repair can legitimately leave a
       residual hole (the pinned Experiment.residual_hole fixture), so
       consistency is reported above but only liveness and quiescence gate
       the exit status. *)
    if Experiment.ok ~claim:Experiment.Best_effort f.run then 0 else 1
  in
  let loss =
    Arg.(
      value & opt float 0.02
      & info [ "loss" ] ~docv:"P" ~doc:"In-transit loss probability per message copy.")
  in
  let crash =
    Arg.(
      value & opt float 0.01
      & info [ "crash" ] ~docv:"F"
          ~doc:"Fraction of (non-gateway) seed nodes that fail-stop mid-join.")
  in
  let unreliable =
    Arg.(
      value & flag
      & info [ "unreliable" ]
          ~doc:"Disable the ack/retransmit transport (reproduces the undefended wedge).")
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Run concurrent joins under message loss and mid-join crashes with the \
          reliability layer (ack/retransmit, failure suspicion, online repair).")
    Term.(const run $ n_arg $ m_arg $ b_arg $ d_arg $ seed_arg $ loss $ crash $ unreliable)

(* ---- churn ---- *)

let churn_cmd =
  let module Churn = Ntcu_churn.Churn in
  let module Session = Ntcu_churn.Session in
  let run smoke n b d seed duration half_life dist crash loss sample_every
      maintenance_every lookups sweep_points jobs out =
    let base = if smoke then Churn.smoke else Churn.default in
    let pick o dflt = Option.value o ~default:dflt in
    let secs o dflt = match o with None -> dflt | Some s -> s *. 1000. in
    match
      let dist =
        match dist with
        | None -> base.Churn.dist
        | Some s -> (
          match Session.kind_of_name s with
          | Some k -> k
          | None -> failwith (Printf.sprintf "unknown session distribution %S" s))
      in
      {
        base with
        Churn.n = pick n base.Churn.n;
        b = pick b base.Churn.b;
        d = pick d base.Churn.d;
        seed;
        duration = secs duration base.Churn.duration;
        half_life = secs half_life base.Churn.half_life;
        dist;
        crash_fraction = pick crash base.Churn.crash_fraction;
        loss = pick loss base.Churn.loss;
        sample_every = secs sample_every base.Churn.sample_every;
        maintenance_every = secs maintenance_every base.Churn.maintenance_every;
        lookups_per_sample = pick lookups base.Churn.lookups_per_sample;
      }
    with
    | exception Failure e ->
      Format.eprintf "%s@." e;
      2
    | cfg ->
      let result = Churn.run cfg in
      Format.printf "%a@." Churn.pp_result result;
      let sweep =
        if sweep_points = 0 then None
        else begin
          let jobs = Ntcu_std.Parallel.resolve_jobs jobs in
          let w =
            Ntcu_std.Parallel.with_pool ~jobs (fun pool ->
                Churn.sweep pool ~base:cfg ~points:sweep_points)
          in
          Format.printf "%a@." Churn.pp_sweep w;
          Some w
        end
      in
      Ntcu_harness.Report.Json.to_file out (Churn.bench_json ?sweep result);
      Format.printf "wrote %s@." out;
      (* Best-effort claim, as for the fault command: under crash churn the
         final consistency is a measurement, not a guarantee. *)
      if Churn.ok ~claim:Experiment.Best_effort result then 0 else 1
  in
  let opt_int names doc = Arg.(value & opt (some int) None & info names ~docv:"N" ~doc) in
  let opt_float names docv doc =
    Arg.(value & opt (some float) None & info names ~docv ~doc)
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"CI-sized run: 60 nodes, 2 min virtual.")
  in
  let duration =
    opt_float [ "duration" ] "SECONDS" "Steady-state window in virtual seconds."
  in
  let half_life =
    opt_float [ "half-life" ] "SECONDS" "Population half-life in virtual seconds."
  in
  let dist =
    Arg.(
      value
      & opt (some string) None
      & info [ "dist" ] ~docv:"D"
          ~doc:"Session-time distribution: $(b,exponential), $(b,pareto) or $(b,fixed).")
  in
  let crash =
    opt_float [ "crash-fraction" ] "F" "Fraction of departures that crash (0 <= F <= 1)."
  in
  let loss = opt_float [ "loss" ] "P" "In-transit loss probability per message copy." in
  let sample_every =
    opt_float [ "sample-every" ] "SECONDS" "Time-series sampling period, virtual seconds."
  in
  let maintenance_every =
    opt_float [ "maintenance-every" ] "SECONDS"
      "Maintenance (dead-reference probe + reap) period, virtual seconds."
  in
  let lookups = opt_int [ "lookups" ] "Routed lookups measured per sample." in
  let sweep_points =
    Arg.(
      value & opt int 0
      & info [ "sweep" ] ~docv:"K"
          ~doc:
            "After the main run, sweep $(docv) half-life points (halved at each \
             step from the configured half-life) and report the measured churn \
             tolerance against the stochastic-analysis prediction. 0 disables.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_churn.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON artifact to $(docv).")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Run the network at a target size under continuous Poisson join/leave/crash \
          churn for hours of virtual time, sampling consistency violations, repair \
          debt, lookup success and message overhead; optionally sweep the half-life \
          down to the graceful-degradation boundary. Deterministic in --seed; \
          --jobs only fans out sweep points and never changes any output.")
    Term.(
      const run $ smoke
      $ opt_int [ "n" ] "Target steady-state network size."
      $ opt_int [ "b" ] "Digit base."
      $ opt_int [ "d" ] "Digits per ID."
      $ seed_arg $ duration $ half_life $ dist $ crash $ loss $ sample_every
      $ maintenance_every $ lookups $ sweep_points $ jobs_arg $ out)

(* ---- serve ---- *)

let serve_cmd =
  let module Serve = Ntcu_serve.Serve in
  let module Churn = Ntcu_churn.Churn in
  let run smoke n b d seed objects replicas zipf lookups cache full_maintain serve_every
      lookups_per_tick churn_n duration half_life jobs out =
    let base = if smoke then Serve.smoke else Serve.default in
    let pick o dflt = Option.value o ~default:dflt in
    let secs o dflt = match o with None -> dflt | Some s -> s *. 1000. in
    let cfg =
      {
        Serve.n = pick n base.Serve.n;
        b = pick b base.Serve.b;
        d = pick d base.Serve.d;
        seed;
        objects = pick objects base.Serve.objects;
        replicas = pick replicas base.Serve.replicas;
        zipf_s = pick zipf base.Serve.zipf_s;
        lookups = pick lookups base.Serve.lookups;
        cache = pick cache base.Serve.cache;
        incremental = not full_maintain;
        serve_every = secs serve_every base.Serve.serve_every;
        lookups_per_tick = pick lookups_per_tick base.Serve.lookups_per_tick;
      }
    in
    (* The churn side runs at the churn bench's base point (n = 250, 20 min
       at a 10 min half-life) — the scale the tail-success claim is gated
       at — or the churn smoke config under --smoke. *)
    let churn_base =
      if smoke then Churn.smoke
      else
        {
          Churn.default with
          n = 250;
          duration = 1_200_000.;
          half_life = 600_000.;
          sample_every = 30_000.;
        }
    in
    let churn_cfg =
      {
        churn_base with
        Churn.b = cfg.Serve.b;
        d = cfg.Serve.d;
        seed;
        n = pick churn_n churn_base.Churn.n;
        duration = secs duration churn_base.Churn.duration;
        half_life = secs half_life churn_base.Churn.half_life;
      }
    in
    match
      let jobs = Ntcu_std.Parallel.resolve_jobs jobs in
      Ntcu_std.Parallel.with_pool ~jobs (fun pool -> Serve.run_all pool cfg churn_cfg)
    with
    | exception Invalid_argument e ->
      Format.eprintf "%s@." e;
      2
    | abl, churn ->
      Format.printf "static serving, cache off:@.%a@.@." Serve.pp_summary
        abl.Serve.nocache;
      Format.printf "static serving, cache %d:@.%a@.@." cfg.Serve.cache Serve.pp_summary
        abl.Serve.cached;
      Format.printf "serving under churn (n=%d, half-life %gs, %s maintain):@.%a@."
        churn_cfg.Churn.n
        (churn_cfg.Churn.half_life /. 1000.)
        (if cfg.Serve.incremental then "incremental" else "full")
        Serve.pp_churn_run churn;
      Ntcu_harness.Report.Json.to_file out (Serve.bench_json cfg abl churn);
      Format.printf "wrote %s@." out;
      if Serve.ok ~smoke cfg abl churn then 0 else 1
  in
  let opt_int names doc = Arg.(value & opt (some int) None & info names ~docv:"N" ~doc) in
  let opt_float names docv doc =
    Arg.(value & opt (some float) None & info names ~docv ~doc)
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"CI-sized run: 60 nodes, 400 objects, churn smoke window.")
  in
  let full_maintain =
    Arg.(
      value & flag
      & info [ "full-maintain" ]
          ~doc:
            "Rebuild the whole directory at each serve tick instead of incremental \
             trail revalidation.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON artifact to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Heavy-traffic object location: publish Zipf-popular replicated objects and \
          serve sustained lookups over the PRR-style directory — a static run with the \
          hop-pointer cache ablated off and on, plus a run composed with the \
          continuous-churn driver (periodic maintenance, re-replication, lookup \
          success gating). Deterministic in --seed; --jobs only fans out the \
          independent runs and never changes any output.")
    Term.(
      const run $ smoke
      $ opt_int [ "n" ] "Static-run network size."
      $ opt_int [ "b" ] "Digit base."
      $ opt_int [ "d" ] "Digits per ID."
      $ seed_arg
      $ opt_int [ "objects" ] "Number of published objects."
      $ opt_int [ "replicas" ] "Storers per object."
      $ opt_float [ "zipf" ] "S" "Zipf popularity exponent (0 = uniform)."
      $ opt_int [ "lookups" ] "Static-run total lookups."
      $ opt_int [ "cache" ] "LRU hop-pointer cache capacity (0 disables)."
      $ full_maintain
      $ opt_float [ "serve-every" ] "SECONDS" "Serve-tick period under churn, virtual seconds."
      $ opt_int [ "lookups-per-tick" ] "Lookups issued at each serve tick."
      $ opt_int [ "churn-n" ] "Churn-run target network size."
      $ opt_float [ "duration" ] "SECONDS" "Churn window in virtual seconds."
      $ opt_float [ "half-life" ] "SECONDS" "Churn population half-life in virtual seconds."
      $ jobs_arg $ out)

(* ---- scale ---- *)

let scale_cmd =
  let module Scale = Ntcu_scale.Scale in
  let module Scale_bench = Ntcu_harness.Scale_bench in
  let run smoke n seeds b d seed shards inject max_epochs jobs no_control out
      payload_out =
    match
      let jobs = Ntcu_std.Parallel.resolve_jobs jobs in
      let base =
        if smoke then { Scale_bench.smoke_config with Scale.seed }
        else Scale_bench.default_config ~seed ~n ()
      in
      let pick o dflt = Option.value o ~default:dflt in
      let cfg =
        {
          base with
          Scale.params = Params.make ~b:(pick b base.Scale.params.b) ~d:(pick d base.Scale.params.d);
          n = (if smoke then base.Scale.n else n);
          seeds = pick seeds base.Scale.seeds;
          shards = pick shards base.Scale.shards;
          inject_per_epoch = pick inject base.Scale.inject_per_epoch;
          max_epochs = pick max_epochs base.Scale.max_epochs;
        }
      in
      (jobs, cfg)
    with
    | exception Invalid_argument e ->
      Format.eprintf "%s@." e;
      2
    | jobs, cfg -> (
      match Scale_bench.measure ~jobs cfg with
      | exception Invalid_argument e ->
        Format.eprintf "%s@." e;
        2
      | r ->
        Format.printf "%a@." Scale_bench.pp_run r;
        let control =
          if no_control then None
          else
            Some
              (Scale_bench.control_bytes_per_node
                 ~n:(min 10_000 cfg.Scale.n)
                 ~seed:cfg.Scale.seed cfg.Scale.params)
        in
        Option.iter
          (fun c ->
            Format.printf "record-backed control: %.1f bytes/node (arena %.1f)@." c
              (Scale_bench.bytes_per_node r.Scale_bench.summary))
          control;
        Ntcu_harness.Report.Json.to_file out
          (Scale_bench.bench_json ?control_bytes_per_node:control [ r ]);
        Format.printf "wrote %s@." out;
        Option.iter
          (fun path ->
            Ntcu_harness.Report.Json.to_file path (Scale_bench.payload_json r);
            Format.printf "wrote %s@." path)
          payload_out;
        if Scale_bench.ok r then 0 else 1)
  in
  let opt_int names doc = Arg.(value & opt (some int) None & info names ~docv:"N" ~doc) in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"CI-sized run: 2000 nodes over 16 shards.")
  in
  let n =
    Arg.(
      value & opt int 100_000
      & info [ "n" ] ~docv:"N" ~doc:"Total population, seeds included.")
  in
  let no_control =
    Arg.(
      value & flag
      & info [ "no-control" ]
          ~doc:"Skip the record-backed memory control (GC-measured, host-side).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_scale.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON artifact to $(docv).")
  in
  let payload_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "payload-out" ] ~docv:"FILE"
          ~doc:
            "Also write the deterministic payload section alone to $(docv) — \
             byte-identical for every --jobs value, so two such files can be \
             compared directly.")
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run one very large join-and-stabilize simulation on the sharded \
          struct-of-arrays engine (packed ids, epoch lockstep, batched cross-shard \
          wire traffic). Deterministic in --seed; --jobs accelerates the single run \
          without changing its payload.")
    Term.(
      const run $ smoke $ n
      $ opt_int [ "seeds" ] "Initially in-system nodes."
      $ opt_int [ "b" ] "Digit base."
      $ opt_int [ "d" ] "Digits per ID."
      $ seed_arg
      $ opt_int [ "shards" ] "Logical shard count (power of two)."
      $ opt_int [ "inject" ] "Joiners started per epoch."
      $ opt_int [ "max-epochs" ] "Safety bound on the epoch loop."
      $ jobs_arg $ no_control $ out $ payload_out)

(* ---- explore ---- *)

let explore_cmd =
  let module Explore = Ntcu_explore.Explore in
  let module Episode = Ntcu_explore.Episode in
  let module Scheduler = Ntcu_explore.Scheduler in
  let module Repro = Ntcu_explore.Repro in
  let run budget seed scheduler scenario n m b d jobs smoke inject_fault chord_naive
      no_midflight out max_shrinks replay =
    match replay with
    | Some path -> (
      match Repro.load path with
      | Error e ->
        Format.eprintf "cannot load repro: %s@." e;
        2
      | Ok repro ->
        let r = Repro.replay repro in
        Format.printf "replaying %a@.expected %s@." Episode.pp_config repro.Repro.config
          (Ntcu_explore.Invariants.signature repro.Repro.violation);
        List.iter
          (fun v ->
            Format.printf "observed %s@." (Ntcu_explore.Invariants.signature v))
          r.Repro.outcome.Episode.violations;
        Format.printf "digest %s (expected %s)@." r.Repro.outcome.Episode.digest
          repro.Repro.digest;
        Format.printf "%s@." (if r.Repro.reproduced then "REPRODUCED" else "NOT REPRODUCED");
        if r.Repro.reproduced then 0 else 1)
    | None -> (
      match
        let base = if smoke then Explore.smoke_settings else Explore.default_settings in
        let pick opt dflt = Option.value opt ~default:dflt in
        let schedulers =
          match scheduler with
          | "all" -> base.Explore.schedulers
          | "random" -> [ Scheduler.Random_delay { scale = 16. } ]
          | "pct" -> [ Scheduler.Pct { bands = 4; invert = 0.05 } ]
          | "targeted" -> [ Scheduler.Targeted { probability = 0.25; stretch = 32. } ]
          | "nop" -> [ Scheduler.Nop ]
          | s -> failwith (Printf.sprintf "unknown scheduler %S" s)
        in
        let scenarios =
          match scenario with
          | "all" -> base.Explore.scenarios
          | s -> (
            match Episode.scenario_of_name s with
            | Some sc -> [ sc ]
            | None -> failwith (Printf.sprintf "unknown scenario %S" s))
        in
        let fault =
          match inject_fault with
          | None -> None
          | Some name -> (
            match Episode.fault_of_name name with
            | Some f -> Some f
            | None -> failwith (Printf.sprintf "unknown fault %S" name))
        in
        ({
            Explore.base_seed = seed;
            budget = pick budget base.Explore.budget;
            schedulers;
            scenarios;
            n = pick n base.Explore.n;
            m = pick m base.Explore.m;
            b = pick b base.Explore.b;
            d = pick d base.Explore.d;
            fault;
            chord_naive;
            midflight = not no_midflight;
            jobs = Ntcu_std.Parallel.resolve_jobs jobs;
            max_shrinks = pick max_shrinks base.Explore.max_shrinks;
          }
          : Explore.settings)
      with
      | exception Failure e ->
        Format.eprintf "%s@." e;
        2
      | settings ->
        let report = Explore.run settings in
        Format.printf "%a" Explore.pp_report report;
        (match out with
        | None -> ()
        | Some dir ->
          (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
          Ntcu_harness.Report.Json.to_file
            (Filename.concat dir "explore_report.json")
            (Explore.report_json report);
          List.iteri
            (fun i (f : Explore.found) ->
              match f.Explore.repro with
              | Some r ->
                Repro.save (Filename.concat dir (Printf.sprintf "repro_%d.txt" i)) r
              | None -> ())
            report.Explore.found;
          Format.printf "report and repros written to %s@." dir);
        if report.Explore.failures = 0 then 0 else 1)
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"K" ~doc:"Episodes per (scenario, scheduler) pair.")
  in
  let scheduler =
    Arg.(
      value & opt string "all"
      & info [ "scheduler" ] ~docv:"S"
          ~doc:"Scheduler: $(b,random), $(b,pct), $(b,targeted), $(b,nop) or $(b,all).")
  in
  let scenario =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ] ~docv:"S"
          ~doc:
            "Scenario: $(b,concurrent), $(b,dependent), $(b,fault), $(b,churn), \
             $(b,chord) or $(b,all).")
  in
  let opt_int names doc =
    Arg.(value & opt (some int) None & info names ~docv:"N" ~doc)
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"CI-sized run: tiny budget and workloads, no fault scenario.")
  in
  let inject_fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-fault" ] ~docv:"F"
          ~doc:
            "Inject a test-only protocol bug into every node: \
             $(b,drop-queued-join-waits) or $(b,forget-negative-forward). The hunt is \
             then expected to find (and exit 1 on) its violations.")
  in
  let chord_naive =
    Arg.(
      value & flag
      & info [ "chord-naive" ]
          ~doc:
            "Run $(b,chord) episodes with the classic incorrect stabilize (no liveness \
             checks, single successor pointer). The hunt is then expected to find (and \
             exit 1 on) ring violations that the corrected protocol does not exhibit.")
  in
  let no_midflight =
    Arg.(value & flag & info [ "no-midflight" ] ~doc:"Disable the mid-flight monitors.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write explore_report.json and repro_$(i).txt files to $(docv).")
  in
  let max_shrinks =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-shrinks" ] ~docv:"K"
          ~doc:"Delta-debug at most $(docv) violations to minimal repros.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a repro file instead of exploring; exit 0 iff the recorded \
             violation and trace digest reproduce exactly.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Hunt for schedule-dependent protocol violations: run seeded episodes under \
          adversarial schedulers, check invariants, delta-debug any violation to a \
          minimal replayable repro.")
    Term.(
      const run $ budget $ seed_arg $ scheduler $ scenario
      $ opt_int [ "n" ] "Size of the initial network."
      $ opt_int [ "m" ] "Number of joining nodes."
      $ opt_int [ "b" ] "Digit base."
      $ opt_int [ "d" ] "Digits per ID."
      $ jobs_arg $ smoke $ inject_fault $ chord_naive $ no_midflight $ out $ max_shrinks
      $ replay)

(* ---- arena ---- *)

let arena_cmd =
  let module Arena = Ntcu_harness.Arena in
  let run seed n m leavers lookups b d jobs smoke naive arms_s out =
    match
      let base = if smoke then Arena.smoke else Arena.default in
      let pick opt dflt = Option.value opt ~default:dflt in
      let arms =
        match arms_s with
        | None -> base.Arena.arms @ (if naive then [ Arena.Chord_naive ] else [])
        | Some s ->
          List.map
            (fun name ->
              match Arena.arm_of_name name with
              | Some a -> a
              | None -> failwith (Printf.sprintf "unknown arm %S" name))
            (String.split_on_char ',' s)
      in
      ({
          Arena.b = pick b base.Arena.b;
          d = pick d base.Arena.d;
          n = pick n base.Arena.n;
          m = pick m base.Arena.m;
          leavers = pick leavers base.Arena.leavers;
          lookups = pick lookups base.Arena.lookups;
          seed;
          maintain_every = base.Arena.maintain_every;
          rounds = base.Arena.rounds;
          arms;
        }
        : Arena.config)
    with
    | exception Failure e ->
      Format.eprintf "%s@." e;
      2
    | cfg ->
      let report = Arena.run ~jobs:(Ntcu_std.Parallel.resolve_jobs jobs) cfg in
      Format.printf "%a" Arena.pp_report report;
      Arena.write ~path:out report;
      Format.printf "arena report written to %s@." out;
      if Arena.ok report then 0 else 1
  in
  let opt_int names doc =
    Arg.(value & opt (some int) None & info names ~docv:"N" ~doc)
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"CI-sized run: small population and workload.")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Also run the classic incorrect Chord stabilize as an extra arm; its \
             invariant violations (if any) fail the run.")
  in
  let arms =
    Arg.(
      value
      & opt (some string) None
      & info [ "arms" ] ~docv:"A,B,.."
          ~doc:
            "Comma-separated arms to run ($(b,paper), $(b,chord), $(b,chord-naive), \
             $(b,baseline)); overrides the default set and $(b,--naive).")
  in
  let out =
    Arg.(
      value & opt string "BENCH_arena.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the arena artifact to $(docv).")
  in
  Cmd.v
    (Cmd.info "arena"
       ~doc:
         "Run the protocol arena: the paper protocol and corrected Chord \
          head-to-head on identical seeded topologies, join/leave schedules and lookup \
          workloads (add the multicast baseline or naive Chord with $(b,--arms) / \
          $(b,--naive)), with a paired report of traffic, consistency windows, lookup \
          success and stretch. Exits non-zero if any arm violates its own invariants.")
    Term.(
      const run $ seed_arg
      $ opt_int [ "n" ] "Initial members."
      $ opt_int [ "m" ] "Joiners."
      $ opt_int [ "leavers" ] "Graceful departures."
      $ opt_int [ "lookups" ] "Lookup pairs."
      $ opt_int [ "b" ] "Digit base."
      $ opt_int [ "d" ] "Digits per ID."
      $ jobs_arg $ smoke $ naive $ arms $ out)

let main =
  Cmd.group
    (Cmd.info "ntcu" ~version:"1.0.0"
       ~doc:
         "Neighbor table construction and update in a dynamic peer-to-peer network \
          (Liu & Lam, ICDCS 2003) - reproduction toolkit.")
    [
      join_cmd;
      validate_cmd;
      fig15a_cmd;
      fig15b_cmd;
      bound_cmd;
      baseline_cmd;
      leave_cmd;
      recovery_cmd;
      fault_cmd;
      churn_cmd;
      serve_cmd;
      scale_cmd;
      explore_cmd;
      arena_cmd;
    ]

let () = exit (Cmd.eval' main)
