(* ntcu-lint: determinism & domain-safety static analyzer for the simulator.

   Two-phase: loads the .cmt typed trees dune produced for the target dirs,
   then evaluates the intraprocedural rules (D001-D005) per unit and the
   interprocedural families (P00x protocol soundness, T00x determinism
   taint, C00x domain escape) over a shared cross-module call graph — see
   lib/lint/*.mli. Exit code 1 on any finding not covered by the checked-in
   baseline or a per-site [@ntcu.allow "CODE"] annotation; exit code 2 when
   clean but --strict-baseline found stale baseline entries. *)

module Lint = Ntcu_lint

let () =
  let json = ref false in
  let out = ref "" in
  let root = ref "." in
  let dirs = ref "lib,bin,bench" in
  let baseline_path = ref "lint_baseline.txt" in
  let no_baseline = ref false in
  let update_baseline = ref false in
  let report_suppressions = ref false in
  let suppressions_out = ref "" in
  let strict_baseline = ref false in
  let spec =
    [
      ("--json", Arg.Set json, " emit the report as JSON (schema ntcu-lint/2)");
      ("--out", Arg.Set_string out, "FILE write the report to FILE instead of stdout");
      ("--root", Arg.Set_string root, "DIR repo or build-context root (default .)");
      ( "--dirs",
        Arg.Set_string dirs,
        "D1,D2 comma-separated dirs to analyze (default lib,bin,bench)" );
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE baseline of grandfathered findings (default lint_baseline.txt)" );
      ("--no-baseline", Arg.Set no_baseline, " ignore the baseline file");
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline to cover every current finding, keeping notes" );
      ( "--report-suppressions",
        Arg.Set report_suppressions,
        " emit the suppression-debt JSON ([@ntcu.allow] regions, stale baseline)" );
      ( "--suppressions-out",
        Arg.Set_string suppressions_out,
        "FILE write the suppression-debt JSON to FILE (implies --report-suppressions)" );
      ( "--strict-baseline",
        Arg.Set strict_baseline,
        " fail (exit 2) when the baseline has stale entries" );
    ]
  in
  let usage =
    "ntcu-lint [options]\n\
     Determinism & domain-safety lint over dune-produced .cmt files.\n"
  in
  Arg.parse (Arg.align spec)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let baseline_file =
    if Filename.is_relative !baseline_path then Filename.concat !root !baseline_path
    else !baseline_path
  in
  let baseline =
    if !no_baseline then Lint.Baseline.empty else Lint.Baseline.load baseline_file
  in
  let dirs =
    String.split_on_char ',' !dirs |> List.map String.trim
    |> List.filter (fun d -> d <> "")
  in
  let report = Lint.Engine.run ~dirs ~baseline ~root:!root () in
  if !update_baseline then begin
    let old = Lint.Baseline.load baseline_file in
    let oc = open_out baseline_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          "# ntcu-lint baseline: grandfathered findings, one per line as `CODE file:line`.\n\
           # Each entry should carry a one-line justification after `#`.\n\
           # Regenerate with `ntcu-lint --update-baseline` (notes on surviving lines are kept).\n";
        List.iter
          (fun (f : Lint.Finding.t) ->
            let note =
              List.find_map
                (fun (e : Lint.Baseline.entry) ->
                  if
                    String.equal e.code f.code
                    && String.equal e.file f.file
                    && e.line = f.line
                    && not (String.equal e.note "")
                  then Some e.note
                  else None)
                (Lint.Baseline.unused old [])
            in
            let line = Lint.Baseline.line_of_finding f in
            match note with
            | Some note -> Printf.fprintf oc "%s  # %s\n" line note
            | None -> Printf.fprintf oc "%s  # TODO justify\n" line)
          (List.sort Lint.Finding.compare (report.fresh @ report.baselined)))
  end;
  if !report_suppressions || !suppressions_out <> "" then begin
    let body = Lint.Engine.suppressions_to_json report in
    match !suppressions_out with
    | "" -> print_string body
    | file ->
      let oc = open_out file in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body)
  end;
  let body =
    if !json then Lint.Engine.report_to_json report
    else Fmt.str "%a" Lint.Engine.pp_report report
  in
  (match !out with
  (* When the suppression report already went to stdout, keep stdout a
     single JSON document. *)
  | "" -> if not !report_suppressions then print_string body
  | file ->
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
    (* Keep the verdict visible even when the report goes to a file. *)
    Fmt.pr "ntcu-lint: %d finding(s), %d baselined, report written to %s@."
      (List.length report.fresh) (List.length report.baselined) file);
  exit (Lint.Engine.exit_code ~strict_baseline:!strict_baseline report)
