module Rng = Ntcu_std.Rng

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let different_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check Alcotest.bool "diverged after unequal advances" true (va <> vb)

let split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let overlap = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr overlap
  done;
  check Alcotest.bool "split streams distinct" true (!overlap = 0)

let int_bounds =
  qtest "int stays in bounds" QCheck.(pair small_int (int_range 1 1000)) (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let int_rejects_nonpositive () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let float_bounds =
  qtest "float stays in bounds" QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, x) ->
      let rng = Rng.create seed in
      let v = Rng.float rng x in
      v >= 0. && v < x)

let int_roughly_uniform () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = samples / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d has %d, expected about %d" i c expected)
    buckets

let shuffle_is_permutation =
  qtest "shuffle permutes" QCheck.(pair small_int (list small_int)) (fun (seed, l) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let sample_distinct =
  qtest "sample_without_replacement distinct and in range"
    QCheck.(pair small_int (pair (int_range 0 50) (int_range 50 200)))
    (fun (seed, (k, n)) ->
      let rng = Rng.create seed in
      let s = Rng.sample_without_replacement rng k n in
      let sorted = List.sort_uniq compare (Array.to_list s) in
      List.length sorted = k && List.for_all (fun v -> v >= 0 && v < n) sorted)

let sample_full_range () =
  let rng = Rng.create 3 in
  let s = Rng.sample_without_replacement rng 20 20 in
  check Alcotest.(list int) "full sample is a permutation"
    (List.init 20 Fun.id)
    (List.sort compare (Array.to_list s))

let pick_member =
  qtest "pick returns a member"
    QCheck.(pair small_int (array_of_size (QCheck.Gen.int_range 1 20) small_int))
    (fun (seed, a) ->
      (* The shrinker may propose arrays below the generator's minimum. *)
      Array.length a = 0
      ||
      let rng = Rng.create seed in
      let v = Rng.pick rng a in
      Array.exists (fun x -> x = v) a)

let suites =
  [
    ( "std.rng",
      [
        Alcotest.test_case "determinism" `Quick determinism;
        Alcotest.test_case "seeds differ" `Quick different_seeds_differ;
        Alcotest.test_case "copy" `Quick copy_independent;
        Alcotest.test_case "split" `Quick split_independent;
        Alcotest.test_case "int rejects 0" `Quick int_rejects_nonpositive;
        Alcotest.test_case "uniformity" `Quick int_roughly_uniform;
        Alcotest.test_case "sample full range" `Quick sample_full_range;
        int_bounds;
        float_bounds;
        shuffle_is_permutation;
        sample_distinct;
        pick_member;
      ] );
  ]
