(* QCheck fuzzing of the sharded engine's cross-shard batch codec
   (Ntcu_scale.Wire). Three properties, each over random frame sequences in
   both a power-of-two and a non-power-of-two digit base:

   - round-trip: encode then decode reproduces every frame, in order, in the
     ring slot its delivery delta selects, with outbox headers rewritten to
     ring headers;
   - truncation: decoding any byte prefix either raises [Codec.Malformed] or
     yields exactly the frames whose bytes survived (a cut can only succeed
     on a frame boundary);
   - bit-flip: decoding a corrupted batch either succeeds or raises
     [Codec.Malformed] — never any other exception. The decoder is total. *)

module Params = Ntcu_id.Params
module Packed = Ntcu_id.Packed
module Codec = Ntcu_core.Codec
module Wire = Ntcu_scale.Wire
module Intbuf = Ntcu_scale.Intbuf
module G = QCheck.Gen

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let p_pow2 = Params.make ~b:4 ~d:6
let p_odd = Params.make ~b:3 ~d:5 (* non-power-of-two: digit patterns can be invalid *)

(* ---- generators: frames in outbox layout [nargs; kind; src; dst; delta; payload] ---- *)

let frame_gen (p : Params.t) =
  let lay = Packed.layout p in
  let id =
    G.map
      (fun digits -> Packed.to_int (Packed.make lay (Array.of_list digits)))
      (G.list_size (G.return p.d) (G.int_range 0 (p.b - 1)))
  in
  let cell =
    (* cell = [pos*2 + sbit; occupant], pos < d*b *)
    G.map2 (fun ps i -> [ ps; i ]) (G.int_range 0 ((p.d * p.b * 2) - 1)) id
  in
  let cells =
    G.(
      int_range 0 4 >>= fun n ->
      map (fun cs -> n :: List.concat cs) (list_size (return n) cell))
  in
  let level = G.int_range 0 (p.d - 1) in
  let digit = G.int_range 0 (p.b - 1) in
  let bit = G.int_range 0 1 in
  let payload =
    G.oneof
      [
        G.map (fun l -> (Wire.kind_cp_rst, [ l ])) level;
        G.map2 (fun l cs -> (Wire.kind_cp_rly, l :: cs)) level cells;
        G.return (Wire.kind_join_wait, []);
        G.map3 (fun s i cs -> (Wire.kind_join_wait_rly, s :: i :: cs)) bit id cells;
        G.map2 (fun l cs -> (Wire.kind_join_noti, l :: cs)) level cells;
        G.map2 (fun s cs -> (Wire.kind_join_noti_rly, s :: cs)) bit cells;
        G.return (Wire.kind_in_sys_noti, []);
        G.map3 (fun l dg s -> (Wire.kind_rv_ngh_noti, [ l; dg; s ])) level digit bit;
        G.map2 (fun l dg -> (Wire.kind_rv_fix, [ l; dg ])) level digit;
      ]
  in
  G.map2
    (fun (kind, pl) (src, dst, delta) ->
      (1 + List.length pl) :: kind :: src :: dst :: delta :: pl)
    payload
    (G.triple id id (G.int_range 1 Wire.max_latency))

let frames_gen p = G.list_size (G.int_range 0 12) (frame_gen p)

let print_frames fs = QCheck.Print.(list (list int)) fs
let arb_frames p = QCheck.make ~print:print_frames (frames_gen p)

(* ---- helpers ---- *)

let encode p frames =
  let c = Wire.ctx p in
  let out = Intbuf.create () in
  List.iter (fun f -> List.iter (Intbuf.push out) f) frames;
  let w = Buffer.create 256 in
  Wire.encode c out w;
  Buffer.contents w

(* The ring image of an outbox frame: drop [delta], rewrite the header to the
   ring convention (nargs = |payload|). *)
let ring_image = function
  | nargs :: kind :: src :: dst :: _delta :: payload ->
    assert (nargs = 1 + List.length payload);
    List.length payload :: kind :: src :: dst :: payload
  | _ -> assert false

let delta_of = function _ :: _ :: _ :: _ :: delta :: _ -> delta | _ -> assert false

let decode_rings p data =
  let rings = Array.init (Wire.max_latency + 1) (fun _ -> Intbuf.create ()) in
  let n = Wire.decode (Wire.ctx p) data ~select:(fun ~delta -> rings.(delta)) in
  (n, rings)

let ring_contents rings delta =
  let buf = rings.(delta) in
  List.init (Intbuf.length buf) (Intbuf.get buf)

(* ---- properties ---- *)

let roundtrip p frames =
  let n, rings = decode_rings p (encode p frames) in
  n = List.length frames
  && List.for_all
       (fun delta ->
         let expected =
           List.concat_map ring_image
             (List.filter (fun f -> delta_of f = delta) frames)
         in
         ring_contents rings delta = expected)
       [ 1; 2; 3 ]

let truncation p (frames, cut) =
  let data = encode p frames in
  if String.length data = 0 then true
  else begin
    let len = cut mod String.length data in
    let truncated = String.sub data 0 len in
    match decode_rings p truncated with
    | exception Codec.Malformed _ -> true (* a mid-frame cut must say so *)
    | n, rings ->
      (* A successful cut decoded an exact frame prefix. *)
      n <= List.length frames
      && List.for_all
           (fun delta ->
             let expected =
               List.concat_map ring_image
                 (List.filter (fun f -> delta_of f = delta)
                    (List.filteri (fun i _ -> i < n) frames))
             in
             ring_contents rings delta = expected)
           [ 1; 2; 3 ]
  end

let bitflip p (frames, at, bit) =
  let data = encode p frames in
  if String.length data = 0 then true
  else begin
    let i = at mod String.length data in
    let corrupted = Bytes.of_string data in
    Bytes.set corrupted i
      (Char.chr (Char.code (Bytes.get corrupted i) lxor (1 lsl (bit mod 8))));
    match decode_rings p (Bytes.to_string corrupted) with
    | (_ : int * Intbuf.t array) -> true
    | exception Codec.Malformed _ -> true
    (* anything else — Invalid_argument, Not_found, out-of-bounds — is a
       decoder totality bug and fails the property *)
  end

let with_cut p = QCheck.(pair (arb_frames p) (QCheck.make G.(int_range 0 10_000)))

let with_flip p =
  QCheck.(
    triple (arb_frames p)
      (QCheck.make G.(int_range 0 10_000))
      (QCheck.make G.(int_range 0 7)))

let suites =
  [
    ( "wire-fuzz",
      [
        qtest "round-trip (b=4)" (arb_frames p_pow2) (roundtrip p_pow2);
        qtest "round-trip (b=3)" (arb_frames p_odd) (roundtrip p_odd);
        qtest "truncation total (b=4)" (with_cut p_pow2) (truncation p_pow2);
        qtest "truncation total (b=3)" (with_cut p_odd) (truncation p_odd);
        qtest "bit-flip total (b=4)" (with_flip p_pow2) (bitflip p_pow2);
        qtest "bit-flip total (b=3)" (with_flip p_odd) (bitflip p_odd);
      ] );
  ]
