(* Backup neighbors (paper Section 2.1's "extra neighbors ... for fault
   tolerant routing") and routing resilience before any repair runs. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Table = Ntcu_table.Table
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Route = Ntcu_routing.Route
module Recovery = Ntcu_extensions.Recovery
module Experiment = Ntcu_harness.Experiment
module Rng = Ntcu_std.Rng

let check = Alcotest.check
let p = Params.make ~b:4 ~d:5
let id s = Id.of_string p s

(* ---- table-level backup semantics ---- *)

let backup_basics () =
  let t = Table.create p ~owner:(id "21233") in
  Table.set t ~level:0 ~digit:1 (id "03201") S;
  check Alcotest.bool "accepted" true (Table.add_backup t ~level:0 ~digit:1 (id "11111"));
  check Alcotest.bool "duplicate rejected" false
    (Table.add_backup t ~level:0 ~digit:1 (id "11111"));
  check Alcotest.bool "primary rejected" false
    (Table.add_backup t ~level:0 ~digit:1 (id "03201"));
  check Alcotest.bool "wrong suffix rejected" false
    (Table.add_backup t ~level:0 ~digit:1 (id "03200"));
  check Alcotest.bool "owner rejected" false
    (Table.add_backup t ~level:1 ~digit:3 (id "21233"));
  check Alcotest.int "one backup" 1 (List.length (Table.backups t ~level:0 ~digit:1))

let backup_capacity_enforced () =
  let t = Table.create p ~owner:(id "21233") in
  let cap = Table.backup_capacity t in
  let accepted = ref 0 in
  for i = 0 to cap + 2 do
    (* distinct ids ending in 1 *)
    let cand = Id.make p [| 1; i mod 4; (i / 4) mod 4; 2; 3 |] in
    if Table.add_backup t ~level:0 ~digit:1 cand then incr accepted
  done;
  check Alcotest.int "capacity respected" cap !accepted

let backup_promote_and_filter () =
  let t = Table.create p ~owner:(id "21233") in
  ignore (Table.add_backup t ~level:0 ~digit:1 (id "11111"));
  ignore (Table.add_backup t ~level:0 ~digit:1 (id "22221"));
  (match Table.promote_backup t ~level:0 ~digit:1 with
  | Some promoted ->
    check Alcotest.string "newest first" "22221" (Id.to_string promoted);
    check Alcotest.bool "now primary" true
      (Table.neighbor t ~level:0 ~digit:1 = Some (id "22221"))
  | None -> Alcotest.fail "expected promotion");
  Table.filter_backups t ~f:(fun b -> not (Id.equal b (id "11111")));
  check Alcotest.int "filtered out" 0 (List.length (Table.backups t ~level:0 ~digit:1));
  check Alcotest.bool "empty entry promotes nothing" true
    (Table.promote_backup t ~level:2 ~digit:0 = None)

let backup_remove_sweeps () =
  let t = Table.create p ~owner:(id "21233") in
  ignore (Table.add_backup t ~level:0 ~digit:1 (id "11111"));
  ignore (Table.add_backup t ~level:1 ~digit:1 (id "11113"));
  Table.remove_backup t (id "11111");
  check Alcotest.int "removed at (0,1)" 0 (List.length (Table.backups t ~level:0 ~digit:1));
  check Alcotest.int "other kept" 1 (List.length (Table.backups t ~level:1 ~digit:1))

(* ---- protocol harvests backups ---- *)

let joins_harvest_backups () =
  (* A dense, small ID space forces many occupied-entry encounters. *)
  let pp' = Params.make ~b:4 ~d:4 in
  let run = Experiment.concurrent_joins pp' ~seed:3 ~n:40 ~m:60 () in
  check Alcotest.int "consistent" 0 (List.length (Lazy.force run.violations));
  let total_backups =
    List.fold_left
      (fun acc node ->
        Table.fold (Node.table node) ~init:acc ~f:(fun acc ~level ~digit _ _ ->
            acc + List.length (Table.backups (Node.table node) ~level ~digit)))
      0 (Network.nodes run.net)
  in
  check Alcotest.bool "backups were harvested" true (total_backups > 50)

(* ---- resilient routing ---- *)

let resilient_route_beats_plain () =
  let pp' = Params.make ~b:4 ~d:4 in
  let run = Experiment.concurrent_joins pp' ~seed:5 ~n:40 ~m:60 () in
  check Alcotest.int "consistent" 0 (List.length (Lazy.force run.violations));
  let net = run.net in
  ignore (Recovery.fail_random net ~seed:7 ~fraction:0.25);
  (* No repair: measure routing success among live pairs right after the
     crashes. *)
  let alive x = Network.mem net x && not (Network.is_failed net x) in
  let lookup x = Option.map Node.table (Network.node net x) in
  let live = Array.of_list (Network.live_ids net) in
  let rng = Rng.create 11 in
  let plain_ok = ref 0 and resilient_ok = ref 0 and total = 200 in
  for _ = 1 to total do
    let src = Rng.pick rng live and dst = Rng.pick rng live in
    (match Route.route ~lookup ~src ~dst with
    | Ok path when List.for_all alive path -> incr plain_ok
    | Ok _ | Error _ -> ());
    match Route.route_resilient ~lookup ~alive ~src ~dst with
    | Ok path ->
      incr resilient_ok;
      (* The resilient path is a genuine route: alive throughout, ends at
         dst, and resolves a digit per hop. *)
      check Alcotest.bool "alive path" true (List.for_all alive path);
      let rec monotone = function
        | a :: (b :: _ as rest) -> Id.csuf_len b dst > Id.csuf_len a dst && monotone rest
        | [ _ ] | [] -> true
      in
      check Alcotest.bool "suffix monotone" true (monotone path)
    | Error _ -> ()
  done;
  check Alcotest.bool "resilient at least as good" true (!resilient_ok >= !plain_ok);
  check Alcotest.bool "resilience gain is real" true (!resilient_ok > !plain_ok)

let resilient_route_dead_destination () =
  let run = Experiment.concurrent_joins p ~seed:6 ~n:10 ~m:5 () in
  let net = run.net in
  let victim = List.hd run.joiners in
  Network.fail net victim;
  let alive x = Network.mem net x && not (Network.is_failed net x) in
  let lookup x = Option.map Node.table (Network.node net x) in
  match Route.route_resilient ~lookup ~alive ~src:(List.hd run.seeds) ~dst:victim with
  | Error (Route.Dead_end _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Route.pp_error e
  | Ok _ -> Alcotest.fail "routed to a dead destination"

let recovery_uses_backups () =
  let pp' = Params.make ~b:4 ~d:4 in
  let run = Experiment.concurrent_joins pp' ~seed:8 ~n:40 ~m:60 () in
  ignore (Recovery.fail_random run.net ~seed:9 ~fraction:0.2);
  let report = Recovery.repair run.net in
  check Alcotest.bool "promotions happened" true (report.repaired_backup > 0);
  check Alcotest.int "consistent" 0
    (List.length (Ntcu_table.Check.violations (Network.tables run.net)))

(* ---- reliability layer: ack/retransmit, suspicion, online repair ---- *)

let p6 = Params.make ~b:4 ~d:6

(* Seed-swept property: with the transport on, lossy joins still reach the
   Theorem-2 outcome; with it off, the same loss model wedges them (guarding
   against silently weakening the loss model). *)
let retransmit_survives_loss () =
  List.iter
    (fun loss ->
      List.iter
        (fun seed ->
          let f =
            Experiment.fault_injection ~loss ~crash_fraction:0. p6 ~seed ~n:40 ~m:20 ()
          in
          if not (f.run.all_in_system && Experiment.consistent f.run && f.stuck = 0) then
            Alcotest.failf "loss %.2f seed %d: %d stuck, %d violations" loss seed f.stuck
              (List.length (Lazy.force f.run.violations));
          check Alcotest.bool "losses actually drawn" true (f.lost > 0);
          check Alcotest.bool "retransmissions covered them" true
            (f.retransmissions >= f.lost))
        [ 1; 2; 3; 4; 5 ])
    [ 0.01; 0.05 ]

let no_retransmit_reproduces_wedge () =
  let stuck =
    List.fold_left
      (fun acc seed ->
        let f =
          Experiment.fault_injection ~reliable:false ~loss:0.05 ~crash_fraction:0. p6
            ~seed ~n:40 ~m:20 ()
        in
        acc + f.stuck)
      0 [ 1; 2; 3; 4; 5 ]
  in
  check Alcotest.bool "wedge reproduced without the transport" true (stuck > 0)

(* End-to-end acceptance: concurrent joins under loss AND a mid-join
   fail-stop crash of a non-gateway node still all reach in_system with a
   consistent surviving network, across seeds. *)
let crash_mid_join_recovers () =
  List.iter
    (fun seed ->
      let f =
        Experiment.fault_injection ~loss:0.02 ~crash_fraction:0.01 p6 ~seed ~n:60 ~m:8 ()
      in
      check Alcotest.int (Printf.sprintf "seed %d: one crash" seed) 1
        (List.length f.crashed);
      if not f.run.all_in_system then Alcotest.failf "seed %d: %d stuck" seed f.stuck;
      (match Lazy.force f.run.violations with
      | [] -> ()
      | v :: _ -> Alcotest.failf "seed %d: %a" seed Ntcu_table.Check.pp_violation v);
      check Alcotest.int "no stuck joiners" 0 f.stuck;
      check Alcotest.bool "repair engaged" true
        (match f.repair with Some r -> r.suspicions > 0 | None -> false))
    [ 1; 2; 3; 4; 5 ]

(* Identical seed => identical trace: timers, retransmits, suspicion and
   online repair must not perturb deterministic replay. *)
let fault_runs_are_deterministic () =
  let go () =
    Experiment.fault_injection ~record_trace:true ~loss:0.02 ~crash_fraction:0.01 p6
      ~seed:7 ~n:40 ~m:8 ()
  in
  let a = go () and b = go () in
  match (Network.trace a.run.net, Network.trace b.run.net) with
  | Some ta, Some tb ->
    check Alcotest.bool "trace nonempty" true (Ntcu_sim.Trace.length ta > 0);
    check Alcotest.bool "identical trace" true (Ntcu_sim.Trace.equal ta tb)
  | _ -> Alcotest.fail "trace missing"

let suites =
  [
    ( "resilience",
      [
        Alcotest.test_case "backup basics" `Quick backup_basics;
        Alcotest.test_case "backup capacity" `Quick backup_capacity_enforced;
        Alcotest.test_case "promote and filter" `Quick backup_promote_and_filter;
        Alcotest.test_case "remove sweeps" `Quick backup_remove_sweeps;
        Alcotest.test_case "joins harvest backups" `Quick joins_harvest_backups;
        Alcotest.test_case "resilient routing" `Quick resilient_route_beats_plain;
        Alcotest.test_case "dead destination" `Quick resilient_route_dead_destination;
        Alcotest.test_case "recovery promotes backups" `Quick recovery_uses_backups;
        Alcotest.test_case "retransmit survives loss" `Quick retransmit_survives_loss;
        Alcotest.test_case "no retransmit wedges" `Quick no_retransmit_reproduces_wedge;
        Alcotest.test_case "crash mid-join recovers" `Quick crash_mid_join_recovers;
        Alcotest.test_case "fault determinism" `Quick fault_runs_are_deterministic;
      ] );
  ]
