module Pqueue = Ntcu_std.Pqueue

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let empty_behaviour () =
  let q = Pqueue.create () in
  check Alcotest.bool "is_empty" true (Pqueue.is_empty q);
  check Alcotest.int "length" 0 (Pqueue.length q);
  check Alcotest.bool "pop none" true (Pqueue.pop q = None);
  check Alcotest.bool "peek none" true (Pqueue.peek q = None)

let ordering () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k (int_of_float k)) [ 5.; 1.; 3.; 2.; 4. ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let fifo_on_ties () =
  let q = Pqueue.create () in
  List.iteri (fun i label -> ignore i; Pqueue.push q 1.0 label) [ "a"; "b"; "c"; "d" ];
  Pqueue.push q 0.5 "first";
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "insertion order on equal keys"
    [ "first"; "a"; "b"; "c"; "d" ]
    (List.rev !order)

let peek_matches_pop () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k k) [ 9.; 2.; 7. ];
  (match (Pqueue.peek q, Pqueue.pop q) with
  | Some (pk, pv), Some (qk, qv) ->
    check (Alcotest.float 0.) "peek key" pk qk;
    check (Alcotest.float 0.) "peek value" pv qv
  | _ -> Alcotest.fail "expected entries");
  check Alcotest.int "length decremented" 2 (Pqueue.length q)

let clear_resets () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k ()) [ 1.; 2.; 3. ];
  Pqueue.clear q;
  check Alcotest.bool "empty after clear" true (Pqueue.is_empty q);
  Pqueue.push q 1. ();
  check Alcotest.int "usable after clear" 1 (Pqueue.length q)

let heap_sorts =
  qtest "pop yields sorted keys" QCheck.(list (float_bound_exclusive 1000.)) (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.push q k k) keys;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare keys)

let interleaved_operations =
  qtest "interleaved push/pop maintains order"
    QCheck.(list (pair bool (float_bound_exclusive 100.)))
    (fun operations ->
      let q = Pqueue.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_pop, key) ->
          if is_pop then begin
            match (Pqueue.pop q, !model) with
            | None, [] -> ()
            | Some (k, _), m ->
              let expected = List.fold_left min infinity m in
              if k <> expected then ok := false
              else begin
                (* remove one instance of the minimum *)
                let removed = ref false in
                model :=
                  List.filter
                    (fun v ->
                      if (not !removed) && v = expected then begin
                        removed := true;
                        false
                      end
                      else true)
                    m
              end
            | None, _ :: _ -> ok := false
          end
          else begin
            Pqueue.push q key key;
            model := key :: !model
          end)
        operations;
      !ok)

let suites =
  [
    ( "std.pqueue",
      [
        Alcotest.test_case "empty" `Quick empty_behaviour;
        Alcotest.test_case "ordering" `Quick ordering;
        Alcotest.test_case "fifo ties" `Quick fifo_on_ties;
        Alcotest.test_case "peek/pop" `Quick peek_matches_pop;
        Alcotest.test_case "clear" `Quick clear_resets;
        heap_sorts;
        interleaved_operations;
      ] );
  ]
