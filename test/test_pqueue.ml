module Pqueue = Ntcu_std.Pqueue

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let empty_behaviour () =
  let q = Pqueue.create () in
  check Alcotest.bool "is_empty" true (Pqueue.is_empty q);
  check Alcotest.int "length" 0 (Pqueue.length q);
  check Alcotest.bool "pop none" true (Pqueue.pop q = None);
  check Alcotest.bool "peek none" true (Pqueue.peek q = None)

let ordering () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k (int_of_float k)) [ 5.; 1.; 3.; 2.; 4. ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let fifo_on_ties () =
  let q = Pqueue.create () in
  List.iteri (fun i label -> ignore i; Pqueue.push q 1.0 label) [ "a"; "b"; "c"; "d" ];
  Pqueue.push q 0.5 "first";
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "insertion order on equal keys"
    [ "first"; "a"; "b"; "c"; "d" ]
    (List.rev !order)

let peek_matches_pop () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k k) [ 9.; 2.; 7. ];
  (match (Pqueue.peek q, Pqueue.pop q) with
  | Some (pk, pv), Some (qk, qv) ->
    check (Alcotest.float 0.) "peek key" pk qk;
    check (Alcotest.float 0.) "peek value" pv qv
  | _ -> Alcotest.fail "expected entries");
  check Alcotest.int "length decremented" 2 (Pqueue.length q)

let clear_resets () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k ()) [ 1.; 2.; 3. ];
  Pqueue.clear q;
  check Alcotest.bool "empty after clear" true (Pqueue.is_empty q);
  Pqueue.push q 1. ();
  check Alcotest.int "usable after clear" 1 (Pqueue.length q)

let remove_leaves_order_intact () =
  let q = Pqueue.create () in
  let handles = List.map (fun k -> (k, Pqueue.push_handle q (float_of_int k) k)) [ 5; 1; 3; 2; 4 ] in
  let h3 = List.assoc 3 handles in
  check Alcotest.bool "mem before" true (Pqueue.mem q h3);
  check (Alcotest.float 0.) "key" 3. (Pqueue.key h3);
  check Alcotest.bool "removed" true (Pqueue.remove q h3);
  check Alcotest.bool "mem after" false (Pqueue.mem q h3);
  check Alcotest.bool "second remove stale" false (Pqueue.remove q h3);
  let rec drain acc =
    match Pqueue.pop q with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
  in
  check Alcotest.(list int) "others unaffected" [ 1; 2; 4; 5 ] (drain [])

let decrease_key_reorders () =
  let q = Pqueue.create () in
  let _a = Pqueue.push_handle q 5. "a" in
  let b = Pqueue.push_handle q 8. "b" in
  Pqueue.decrease_key q b 1.;
  check (Alcotest.float 0.) "new key" 1. (Pqueue.key b);
  (match Pqueue.pop q with
  | Some (k, v) ->
    check (Alcotest.float 0.) "pops first" 1. k;
    check Alcotest.string "value" "b" v
  | None -> Alcotest.fail "empty");
  (* Decreasing onto a tie keeps the original insertion rank: "c" (pushed
     before "d") still precedes it after both land on the same key. *)
  Pqueue.clear q;
  let c = Pqueue.push_handle q 7. "c" in
  let _d = Pqueue.push_handle q 2. "d" in
  Pqueue.decrease_key q c 2.;
  check Alcotest.(list string) "tie keeps push order" [ "c"; "d" ]
    (let rec drain acc =
       match Pqueue.pop q with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
     in
     drain [])

let stale_handles_safe () =
  let q = Pqueue.create () in
  let h = Pqueue.push_handle q 1. () in
  ignore (Pqueue.pop q);
  check Alcotest.bool "stale after pop" false (Pqueue.mem q h);
  check Alcotest.bool "remove stale" false (Pqueue.remove q h);
  Alcotest.check_raises "decrease_key stale"
    (Invalid_argument "Pqueue.decrease_key: stale handle") (fun () ->
      Pqueue.decrease_key q h 0.);
  let h2 = Pqueue.push_handle q 2. () in
  Pqueue.clear q;
  check Alcotest.bool "stale after clear" false (Pqueue.mem q h2);
  let h3 = Pqueue.push_handle q 3. () in
  Alcotest.check_raises "decrease_key increase"
    (Invalid_argument "Pqueue.decrease_key: key increase") (fun () ->
      Pqueue.decrease_key q h3 4.)

let foreign_handles_rejected () =
  let qa = Pqueue.create () and qb = Pqueue.create () in
  let ha = Pqueue.push_handle qa 1. "a" in
  ignore (Pqueue.push_handle qb 2. "b");
  check Alcotest.bool "mem in owner" true (Pqueue.mem qa ha);
  check Alcotest.bool "mem in other queue" false (Pqueue.mem qb ha);
  Alcotest.check_raises "remove foreign"
    (Invalid_argument "Pqueue.remove: handle from another queue") (fun () ->
      ignore (Pqueue.remove qb ha));
  Alcotest.check_raises "decrease_key foreign"
    (Invalid_argument "Pqueue.decrease_key: handle from another queue") (fun () ->
      Pqueue.decrease_key qb ha 0.);
  (* Neither queue was corrupted by the rejected calls. *)
  check Alcotest.int "qa intact" 1 (Pqueue.length qa);
  check Alcotest.int "qb intact" 1 (Pqueue.length qb);
  check Alcotest.bool "qa still pops" true (Pqueue.pop qa = Some (1., "a"));
  check Alcotest.bool "qb still pops" true (Pqueue.pop qb = Some (2., "b"))

let heap_sorts =
  qtest "pop yields sorted keys" QCheck.(list (float_bound_exclusive 1000.)) (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.push q k k) keys;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare keys)

let interleaved_operations =
  qtest "interleaved push/pop maintains order"
    QCheck.(list (pair bool (float_bound_exclusive 100.)))
    (fun operations ->
      let q = Pqueue.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (is_pop, key) ->
          if is_pop then begin
            match (Pqueue.pop q, !model) with
            | None, [] -> ()
            | Some (k, _), m ->
              let expected = List.fold_left min infinity m in
              if k <> expected then ok := false
              else begin
                (* remove one instance of the minimum *)
                let removed = ref false in
                model :=
                  List.filter
                    (fun v ->
                      if (not !removed) && v = expected then begin
                        removed := true;
                        false
                      end
                      else true)
                    m
              end
            | None, _ :: _ -> ok := false
          end
          else begin
            Pqueue.push q key key;
            model := key :: !model
          end)
        operations;
      !ok)

(* of_list/add_list heapify must be observationally identical to pushing the
   same pairs one by one — including FIFO rank on equal keys. *)
let bulk_build_matches_pushes =
  qtest "of_list/add_list equal sequential pushes"
    QCheck.(
      pair
        (list (pair (float_bound_exclusive 10.) small_nat))
        (list (pair (float_bound_exclusive 10.) small_nat)))
    (fun (first, second) ->
      let bulk = Pqueue.of_list first in
      Pqueue.add_list bulk second;
      let slow = Pqueue.create () in
      List.iter (fun (k, v) -> Pqueue.push slow k v) first;
      List.iter (fun (k, v) -> Pqueue.push slow k v) second;
      let rec drain q acc =
        match Pqueue.pop q with
        | Some kv -> drain q (kv :: acc)
        | None -> List.rev acc
      in
      Pqueue.length bulk = List.length first + List.length second
      && drain bulk [] = drain slow [])

let suites =
  [
    ( "std.pqueue",
      [
        Alcotest.test_case "empty" `Quick empty_behaviour;
        Alcotest.test_case "ordering" `Quick ordering;
        Alcotest.test_case "fifo ties" `Quick fifo_on_ties;
        Alcotest.test_case "peek/pop" `Quick peek_matches_pop;
        Alcotest.test_case "clear" `Quick clear_resets;
        Alcotest.test_case "remove via handle" `Quick remove_leaves_order_intact;
        Alcotest.test_case "decrease_key" `Quick decrease_key_reorders;
        Alcotest.test_case "stale handles" `Quick stale_handles_safe;
        Alcotest.test_case "foreign handles" `Quick foreign_handles_rejected;
        heap_sorts;
        interleaved_operations;
        bulk_build_matches_pushes;
      ] );
  ]
