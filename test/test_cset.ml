module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Cset = Ntcu_cset.Cset
module Suffix_index = Ntcu_table.Suffix_index
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Experiment = Ntcu_harness.Experiment

let check = Alcotest.check

let p = Params.paper_example_fig2
let id s = Id.of_string p s
let v_fig2 = List.map id [ "72430"; "10353"; "62332"; "13141"; "31701" ]
let w_fig2 = List.map id [ "10261"; "47051"; "00261" ]

let noti_suffix_fig2 () =
  let idx = Suffix_index.of_ids v_fig2 in
  List.iter
    (fun x ->
      check (Alcotest.array Alcotest.int) "noti suffix is '1'" [| 1 |]
        (Cset.noti_suffix idx x))
    w_fig2

let noti_suffix_brute_force () =
  (* Cross-check against the definition: largest k with V_{x[k-1..0]} nonempty
     and V_{x[k..0]} empty. *)
  let rng = Ntcu_std.Rng.create 7 in
  let pp' = Params.make ~b:4 ~d:6 in
  let v = Ntcu_harness.Workload.distinct_ids rng pp' ~n:50 in
  let idx = Suffix_index.of_ids v in
  for _ = 1 to 100 do
    let x = Id.random rng pp' in
    let omega = Cset.noti_suffix idx x in
    let k = Array.length omega in
    let count len =
      List.length (List.filter (fun y -> Id.has_suffix y (Id.suffix x len)) v)
    in
    if k > 0 then check Alcotest.bool "V_omega nonempty" true (count k > 0);
    if k < 6 then check Alcotest.int "V_{x[k..0]} empty" 0 (count (k + 1))
  done

let noti_suffix_empty_when_no_match () =
  let pp' = Params.make ~b:4 ~d:4 in
  let v = [ Id.of_string pp' "1111" ] in
  let idx = Suffix_index.of_ids v in
  check (Alcotest.array Alcotest.int) "whole V" [||]
    (Cset.noti_suffix idx (Id.of_string pp' "2222"))

let template_fig2 () =
  let t = Cset.template p ~root:[| 1 |] ~w:w_fig2 in
  (* Children: C51 and C61 (paper Figure 2(b)). *)
  check Alcotest.int "two children" 2 (List.length t.Cset.children);
  let suffixes =
    List.map (fun c -> Fmt.str "%a" Id.pp_suffix c.Cset.suffix) t.Cset.children
  in
  check Alcotest.(list string) "child suffixes" [ "51"; "61" ] (List.sort compare suffixes);
  (* Depth: chain down to the full IDs. *)
  let rec depth t =
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.Cset.children
  in
  check Alcotest.int "depth to leaves" 5 (depth t);
  (* Leaf under C61 splits into 00261 and 10261. *)
  let c61 = List.find (fun c -> c.Cset.suffix = [| 1; 6 |]) t.Cset.children in
  check Alcotest.int "members of C61" 2 (Id.Set.cardinal c61.Cset.members)

let template_filters_nonmatching () =
  let t = Cset.template p ~root:[| 9 - 8 |] ~w:(List.map id [ "00000" ]) in
  check Alcotest.int "no children for foreign joiner" 0 (List.length t.Cset.children)

let run_fig2 seed =
  let net = Network.create ~latency:(Ntcu_sim.Latency.uniform ~seed ~lo:1. ~hi:80.) p in
  Network.seed_consistent net ~seed:(seed + 1) v_fig2;
  List.iter (fun x -> Network.start_join net ~id:x ~gateway:(List.hd v_fig2) ()) w_fig2;
  Network.run net;
  net

let realized_conditions_fig2 () =
  List.iter
    (fun seed ->
      let net = run_fig2 seed in
      check Alcotest.int "consistent" 0 (List.length (Network.check_consistent net));
      let lookup x = Option.map Node.table (Network.node net x) in
      let v_root = List.filter (fun x -> Id.has_suffix x [| 1 |]) v_fig2 in
      let template = Cset.template p ~root:[| 1 |] ~w:w_fig2 in
      let realized = Cset.realized ~lookup ~v_root ~root:[| 1 |] ~w:w_fig2 in
      (match Cset.check_condition1 ~template ~realized with
      | Ok () -> ()
      | Error e -> Alcotest.failf "condition 1 (seed %d): %s" seed e);
      (match Cset.check_condition2 ~lookup ~v_root ~realized with
      | Ok () -> ()
      | Error e -> Alcotest.failf "condition 2 (seed %d): %s" seed e);
      match Cset.check_condition3 ~lookup ~realized ~w:w_fig2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "condition 3 (seed %d): %s" seed e)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let union_covers_w () =
  let net = run_fig2 42 in
  let lookup x = Option.map Node.table (Network.node net x) in
  let v_root = List.filter (fun x -> Id.has_suffix x [| 1 |]) v_fig2 in
  let realized = Cset.realized ~lookup ~v_root ~root:[| 1 |] ~w:w_fig2 in
  let union = Cset.union_members realized in
  List.iter
    (fun x -> check Alcotest.bool "joiner in some C-set" true (Id.Set.mem x union))
    w_fig2

let condition_checkers_detect_damage () =
  let net = run_fig2 9 in
  let lookup x = Option.map Node.table (Network.node net x) in
  let v_root = List.filter (fun x -> Id.has_suffix x [| 1 |]) v_fig2 in
  let realized = Cset.realized ~lookup ~v_root ~root:[| 1 |] ~w:w_fig2 in
  (* Damage: erase the root members' (1, 6) entries, cutting C61 off. *)
  List.iter
    (fun u ->
      match lookup u with
      | Some table -> Ntcu_table.Table.clear table ~level:1 ~digit:6
      | None -> ())
    v_root;
  (match Cset.check_condition2 ~lookup ~v_root ~realized with
  | Ok () -> Alcotest.fail "condition 2 missed the damage"
  | Error _ -> ());
  let realized' = Cset.realized ~lookup ~v_root ~root:[| 1 |] ~w:w_fig2 in
  let template = Cset.template p ~root:[| 1 |] ~w:w_fig2 in
  match Cset.check_condition1 ~template ~realized:realized' with
  | Ok () -> Alcotest.fail "condition 1 missed the damage"
  | Error _ -> ()

let classify_timing_cases () =
  let open Cset in
  check Alcotest.bool "single" true (classify_timing [ (0., 1.) ] = Single);
  check Alcotest.bool "empty" true (classify_timing [] = Single);
  check Alcotest.bool "sequential" true
    (classify_timing [ (0., 1.); (2., 3.); (4., 5.) ] = Sequential);
  check Alcotest.bool "concurrent" true
    (classify_timing [ (0., 2.); (1., 3.); (2.5, 4.) ] = Concurrent);
  (* Two overlapping pairs separated by a gap: mixed. *)
  check Alcotest.bool "mixed" true
    (classify_timing [ (0., 2.); (1., 3.); (10., 12.); (11., 13.) ] = Mixed)

let dependence_cases () =
  let pp' = Params.make ~b:4 ~d:4 in
  let v = List.map (Id.of_string pp') [ "1201"; "2302"; "0033" ] in
  let idx = Suffix_index.of_ids v in
  let x = Id.of_string pp' "3301" (* noti suffix 01 *) in
  let y = Id.of_string pp' "2201" (* noti suffix 01: same set *) in
  let z = Id.of_string pp' "1102" (* noti suffix 02 *) in
  check Alcotest.bool "same noti set: dependent" true (Cset.dependent idx ~w:[ x; y; z ] x y);
  check Alcotest.bool "disjoint noti sets: independent" false
    (Cset.dependent idx ~w:[ x; y; z ] x z)

let dependence_via_container () =
  (* x and y have disjoint notification sets, but a third joiner u's
     notification set contains both (Definition 3.6, second bullet). *)
  let pp' = Params.make ~b:4 ~d:4 in
  let v = List.map (Id.of_string pp') [ "1211"; "2321" ] in
  (* V_1 = both; V_11 = {1211}; V_21 = {2321} *)
  let idx = Suffix_index.of_ids v in
  let x = Id.of_string pp' "0011" (* omega = 11 *) in
  let y = Id.of_string pp' "0021" (* omega = 21 *) in
  let u = Id.of_string pp' "0031" (* omega = 1 *) in
  check Alcotest.bool "independent alone" false (Cset.dependent idx ~w:[ x; y ] x y);
  check Alcotest.bool "dependent via container" true (Cset.dependent idx ~w:[ x; y; u ] x y)

let groups_partition () =
  let pp' = Params.make ~b:4 ~d:4 in
  let v = List.map (Id.of_string pp') [ "1201"; "2302" ] in
  let idx = Suffix_index.of_ids v in
  let w =
    List.map (Id.of_string pp') [ "3301"; "2201" (* group: suffix 01 *); "1102" (* suffix 02 *) ]
  in
  let groups = Cset.dependency_groups idx ~w in
  let sizes = List.sort compare (List.map List.length groups) in
  check Alcotest.(list int) "group sizes" [ 1; 2 ] sizes;
  let total = List.concat groups in
  check Alcotest.int "partition covers w" 3 (List.length total)

let pp_tree_renders () =
  let t = Cset.template p ~root:[| 1 |] ~w:w_fig2 in
  let s = Fmt.str "%a" Cset.pp_tree t in
  check Alcotest.bool "nonempty" true (String.length s > 10)

let conditions_hold_on_random_runs () =
  (* Dependent concurrent joins on a shared suffix; full C-set verification. *)
  let pp' = Params.make ~b:4 ~d:6 in
  List.iter
    (fun seed ->
      let run =
        Experiment.concurrent_joins pp' ~suffix:[| 2 |] ~seed ~n:15 ~m:12 ()
      in
      check Alcotest.int "consistent" 0 (List.length (Lazy.force run.violations));
      let idx = Suffix_index.of_ids run.seeds in
      let lookup x = Option.map Node.table (Network.node run.net x) in
      (* All joiners sharing suffix 2 whose noti set is exactly V_2. *)
      let groups = ref [] in
      List.iter
        (fun x ->
          let omega = Cset.noti_suffix idx x in
          let key = Fmt.str "%a" Id.pp_suffix omega in
          groups :=
            (match List.assoc_opt key !groups with
            | Some (o, l) -> (key, (o, x :: l)) :: List.remove_assoc key !groups
            | None -> (key, (omega, [ x ])) :: !groups))
        run.joiners;
      List.iter
        (fun (_, (omega, w)) ->
          let v_root = List.filter (fun v -> Id.has_suffix v omega) run.seeds in
          if v_root <> [] then begin
            let template = Cset.template pp' ~root:omega ~w in
            let realized = Cset.realized ~lookup ~v_root ~root:omega ~w in
            (match Cset.check_condition1 ~template ~realized with
            | Ok () -> ()
            | Error e -> Alcotest.failf "cond1 seed %d: %s" seed e);
            (match Cset.check_condition2 ~lookup ~v_root ~realized with
            | Ok () -> ()
            | Error e -> Alcotest.failf "cond2 seed %d: %s" seed e);
            match Cset.check_condition3 ~lookup ~realized ~w with
            | Ok () -> ()
            | Error e -> Alcotest.failf "cond3 seed %d: %s" seed e
          end)
        !groups)
    [ 100; 200; 300 ]

let suites =
  [
    ( "cset.structure",
      [
        Alcotest.test_case "noti suffix (Figure 2)" `Quick noti_suffix_fig2;
        Alcotest.test_case "noti suffix vs definition" `Quick noti_suffix_brute_force;
        Alcotest.test_case "noti suffix empty" `Quick noti_suffix_empty_when_no_match;
        Alcotest.test_case "template (Figure 2b)" `Quick template_fig2;
        Alcotest.test_case "template filtering" `Quick template_filters_nonmatching;
        Alcotest.test_case "pp" `Quick pp_tree_renders;
      ] );
    ( "cset.conditions",
      [
        Alcotest.test_case "conditions on Figure 2 runs" `Quick realized_conditions_fig2;
        Alcotest.test_case "union covers W" `Quick union_covers_w;
        Alcotest.test_case "checkers detect damage" `Quick condition_checkers_detect_damage;
        Alcotest.test_case "conditions on random runs" `Slow conditions_hold_on_random_runs;
      ] );
    ( "cset.classification",
      [
        Alcotest.test_case "timing" `Quick classify_timing_cases;
        Alcotest.test_case "dependence" `Quick dependence_cases;
        Alcotest.test_case "dependence via container" `Quick dependence_via_container;
        Alcotest.test_case "groups" `Quick groups_partition;
      ] );
  ]
