(* ntcu-lint rule tests: each fixture module in [lint_fixtures/] seeds known
   violations, tagged with a trailing [BAIT] marker comment on the offending
   line. The tests scan the fixture's .cmt and assert the finding set equals
   the marker set — exact lines, no over- or under-reporting — plus baseline
   suppression and [@ntcu.allow] behaviour. *)

module Finding = Ntcu_lint.Finding
module Classify = Ntcu_lint.Classify
module Baseline = Ntcu_lint.Baseline
module Engine = Ntcu_lint.Engine

let check = Alcotest.check

let contains_sub s sub =
  let slen = String.length sub and len = String.length s in
  let rec scan i =
    i + slen <= len && (String.equal (String.sub s i slen) sub || scan (i + 1))
  in
  scan 0

(* The suite runs from [_build/default/test]; the other candidates let the
   executable also be run from the repo root or [test/]. *)
let fixture_paths name =
  let cmt =
    Filename.concat "lint_fixtures/.ntcu_lint_fixtures.objs/byte"
      ("ntcu_lint_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")
  in
  let src = Filename.concat "lint_fixtures" (name ^ ".ml") in
  let roots = [ "."; "test"; "_build/default/test" ] in
  match
    List.find_opt (fun root -> Sys.file_exists (Filename.concat root cmt)) roots
  with
  | Some root -> (Filename.concat root cmt, Filename.concat root src)
  | None -> Alcotest.failf "fixture cmt not found: %s" cmt

let marker_lines src marker =
  let ic = open_in src in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | line -> go (lineno + 1) (if contains_sub line marker then lineno :: acc else acc)
        | exception End_of_file -> List.rev acc
      in
      go 1 [])

let cls ?(in_lib = false) ?(clock_allowed = false) ?(emitter = false) source =
  { Classify.source; in_lib; clock_allowed; emitter }

let scan ?in_lib ?clock_allowed ?emitter name =
  let cmt, src = fixture_paths name in
  let findings =
    Engine.lint_cmt ~classify:(fun source -> cls ?in_lib ?clock_allowed ?emitter source) cmt
  in
  (findings, src)

let lines_of findings = List.map (fun (f : Finding.t) -> f.line) findings

let check_matches_markers ~code ?(marker = "BAIT") findings src =
  List.iter
    (fun (f : Finding.t) ->
      check Alcotest.string (Printf.sprintf "code at line %d" f.line) code f.code)
    findings;
  check
    Alcotest.(list int)
    "finding lines = marker lines" (marker_lines src marker) (lines_of findings)

let d001 () =
  let findings, src = scan "fixture_d001" in
  check_matches_markers ~code:"D001" findings src;
  (* The option-typed site gets the Option.is_some/is_none hint. *)
  match marker_lines src "BAIT-OPTION" with
  | [ opt_line ] ->
    let f = List.find (fun (f : Finding.t) -> f.line = opt_line) findings in
    if not (contains_sub f.message "Option.is_some") then
      Alcotest.failf "option hint missing from: %s" f.message
  | other -> Alcotest.failf "expected 1 BAIT-OPTION marker, got %d" (List.length other)

let d002 () =
  let findings, src = scan "fixture_d002" in
  check_matches_markers ~code:"D002" findings src

let d003_fires () =
  let findings, src = scan "fixture_d003" in
  check_matches_markers ~code:"D003" findings src

let d003_allowlisted () =
  let findings, _ = scan ~clock_allowed:true "fixture_d003" in
  check Alcotest.int "no findings under the harness/bench allowlist" 0
    (List.length findings)

let d004_fires () =
  let findings, src = scan ~in_lib:true "fixture_d004" in
  check_matches_markers ~code:"D004" findings src

let d004_outside_lib () =
  let findings, _ = scan "fixture_d004" in
  check Alcotest.int "toplevel state outside lib/ is not flagged" 0 (List.length findings)

let d005_fires () =
  let findings, src = scan ~emitter:true "fixture_d005" in
  check_matches_markers ~code:"D005" findings src

let d005_non_emitter () =
  let findings, _ = scan "fixture_d005" in
  check Alcotest.int "float formatting outside emitters is not flagged" 0
    (List.length findings)

let clean_fixture () =
  let findings, _ = scan ~in_lib:true ~emitter:true "fixture_clean" in
  check Alcotest.int "clean fixture" 0 (List.length findings)

let whole_file_allow () =
  let findings, _ = scan ~in_lib:true "fixture_allow" in
  check Alcotest.int "floating [@@@ntcu.allow] suppresses the file" 0
    (List.length findings)

let baseline_suppression () =
  let findings, _ = scan "fixture_d003" in
  match findings with
  | first :: rest ->
    let b = Baseline.of_lines [ Baseline.line_of_finding first ] in
    let fresh, baselined = Baseline.partition b findings in
    check Alcotest.int "one baselined" 1 (List.length baselined);
    check Alcotest.int "rest fresh" (List.length rest) (List.length fresh);
    check Alcotest.bool "mem finds the entry" true (Baseline.mem b first);
    check Alcotest.int "no unused entries" 0 (List.length (Baseline.unused b findings));
    (* A stale line matching nothing is reported as unused, not as an error. *)
    let stale = Baseline.of_lines [ "D001 lib/nowhere.ml:1  # gone" ] in
    check Alcotest.int "stale entry is unused" 1
      (List.length (Baseline.unused stale findings))
  | [] -> Alcotest.fail "fixture_d003 produced no findings to baseline"

let exit_codes () =
  let findings, _ = scan "fixture_d003" in
  let report fresh =
    { Engine.fresh; baselined = []; unused_baseline = []; files_scanned = 1 }
  in
  check Alcotest.int "clean exits 0" 0 (Engine.exit_code (report []));
  check Alcotest.int "fresh findings exit 1" 1 (Engine.exit_code (report findings));
  let json = Engine.report_to_json (report findings) in
  check Alcotest.bool "json carries the schema tag" true (contains_sub json "ntcu-lint/1")

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "D001 polymorphic compare at abstract types" `Quick d001;
        Alcotest.test_case "D002 unordered Hashtbl iteration" `Quick d002;
        Alcotest.test_case "D003 wall clock / global Random" `Quick d003_fires;
        Alcotest.test_case "D003 harness/bench allowlist" `Quick d003_allowlisted;
        Alcotest.test_case "D004 toplevel mutable state" `Quick d004_fires;
        Alcotest.test_case "D004 scoped to lib/" `Quick d004_outside_lib;
        Alcotest.test_case "D005 lossy float formatting" `Quick d005_fires;
        Alcotest.test_case "D005 scoped to emitters" `Quick d005_non_emitter;
        Alcotest.test_case "clean fixture stays clean" `Quick clean_fixture;
        Alcotest.test_case "whole-file ntcu.allow" `Quick whole_file_allow;
        Alcotest.test_case "baseline suppression" `Quick baseline_suppression;
        Alcotest.test_case "exit codes and JSON schema" `Quick exit_codes;
      ] );
  ]
