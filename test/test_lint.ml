(* ntcu-lint rule tests: each fixture module in [lint_fixtures/] seeds known
   violations, tagged with a trailing [BAIT] marker comment on the offending
   line. The tests scan the fixture's .cmt and assert the finding set equals
   the marker set — exact lines, no over- or under-reporting — plus baseline
   suppression and [@ntcu.allow] behaviour. *)

module Finding = Ntcu_lint.Finding
module Classify = Ntcu_lint.Classify
module Baseline = Ntcu_lint.Baseline
module Engine = Ntcu_lint.Engine

let check = Alcotest.check

let contains_sub s sub =
  let slen = String.length sub and len = String.length s in
  let rec scan i =
    i + slen <= len && (String.equal (String.sub s i slen) sub || scan (i + 1))
  in
  scan 0

(* The suite runs from [_build/default/test]; the other candidates let the
   executable also be run from the repo root or [test/]. *)
let fixture_paths name =
  let cmt =
    Filename.concat "lint_fixtures/.ntcu_lint_fixtures.objs/byte"
      ("ntcu_lint_fixtures__" ^ String.capitalize_ascii name ^ ".cmt")
  in
  let src = Filename.concat "lint_fixtures" (name ^ ".ml") in
  let roots = [ "."; "test"; "_build/default/test" ] in
  match
    List.find_opt (fun root -> Sys.file_exists (Filename.concat root cmt)) roots
  with
  | Some root -> (Filename.concat root cmt, Filename.concat root src)
  | None -> Alcotest.failf "fixture cmt not found: %s" cmt

let marker_lines src marker =
  let ic = open_in src in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | line -> go (lineno + 1) (if contains_sub line marker then lineno :: acc else acc)
        | exception End_of_file -> List.rev acc
      in
      go 1 [])

let cls ?(in_lib = false) ?(in_test = false) ?(clock_allowed = false) ?(emitter = false)
    ?(codec = false) ?(dispatch = false) source =
  { Classify.source; in_lib; in_test; clock_allowed; emitter; codec; dispatch }

let scan ?in_lib ?clock_allowed ?emitter name =
  let cmt, src = fixture_paths name in
  let findings =
    Engine.lint_cmt ~classify:(fun source -> cls ?in_lib ?clock_allowed ?emitter source) cmt
  in
  (findings, src)

let lines_of findings = List.map (fun (f : Finding.t) -> f.line) findings

let check_matches_markers ~code ?(marker = "BAIT") findings src =
  List.iter
    (fun (f : Finding.t) ->
      check Alcotest.string (Printf.sprintf "code at line %d" f.line) code f.code)
    findings;
  check
    Alcotest.(list int)
    "finding lines = marker lines" (marker_lines src marker) (lines_of findings)

let d001 () =
  let findings, src = scan "fixture_d001" in
  check_matches_markers ~code:"D001" findings src;
  (* The option-typed site gets the Option.is_some/is_none hint. *)
  match marker_lines src "BAIT-OPTION" with
  | [ opt_line ] ->
    let f = List.find (fun (f : Finding.t) -> f.line = opt_line) findings in
    if not (contains_sub f.message "Option.is_some") then
      Alcotest.failf "option hint missing from: %s" f.message
  | other -> Alcotest.failf "expected 1 BAIT-OPTION marker, got %d" (List.length other)

let d002 () =
  let findings, src = scan "fixture_d002" in
  check_matches_markers ~code:"D002" findings src

let d003_fires () =
  let findings, src = scan "fixture_d003" in
  check_matches_markers ~code:"D003" findings src

let d003_allowlisted () =
  let findings, _ = scan ~clock_allowed:true "fixture_d003" in
  check Alcotest.int "no findings under the harness/bench allowlist" 0
    (List.length findings)

let d004_fires () =
  let findings, src = scan ~in_lib:true "fixture_d004" in
  check_matches_markers ~code:"D004" findings src

let d004_outside_lib () =
  let findings, _ = scan "fixture_d004" in
  check Alcotest.int "toplevel state outside lib/ is not flagged" 0 (List.length findings)

let d005_fires () =
  let findings, src = scan ~emitter:true "fixture_d005" in
  check_matches_markers ~code:"D005" findings src

let d005_non_emitter () =
  let findings, _ = scan "fixture_d005" in
  check Alcotest.int "float formatting outside emitters is not flagged" 0
    (List.length findings)

let clean_fixture () =
  let findings, _ = scan ~in_lib:true ~emitter:true "fixture_clean" in
  check Alcotest.int "clean fixture" 0 (List.length findings)

let whole_file_allow () =
  let findings, _ = scan ~in_lib:true "fixture_allow" in
  check Alcotest.int "floating [@@@ntcu.allow] suppresses the file" 0
    (List.length findings)

let baseline_suppression () =
  let findings, _ = scan "fixture_d003" in
  match findings with
  | first :: rest ->
    let b = Baseline.of_lines [ Baseline.line_of_finding first ] in
    let fresh, baselined = Baseline.partition b findings in
    check Alcotest.int "one baselined" 1 (List.length baselined);
    check Alcotest.int "rest fresh" (List.length rest) (List.length fresh);
    check Alcotest.bool "mem finds the entry" true (Baseline.mem b first);
    check Alcotest.int "no unused entries" 0 (List.length (Baseline.unused b findings));
    (* A stale line matching nothing is reported as unused, not as an error. *)
    let stale = Baseline.of_lines [ "D001 lib/nowhere.ml:1  # gone" ] in
    check Alcotest.int "stale entry is unused" 1
      (List.length (Baseline.unused stale findings))
  | [] -> Alcotest.fail "fixture_d003 produced no findings to baseline"

let exit_codes () =
  let findings, _ = scan "fixture_d003" in
  let report fresh =
    {
      Engine.fresh;
      baselined = [];
      unused_baseline = [];
      files_scanned = 1;
      allow_debt = [];
      baseline_total = 0;
    }
  in
  check Alcotest.int "clean exits 0" 0 (Engine.exit_code (report []));
  check Alcotest.int "fresh findings exit 1" 1 (Engine.exit_code (report findings));
  let json = Engine.report_to_json (report findings) in
  check Alcotest.bool "json carries the schema tag" true (contains_sub json "ntcu-lint/2")

(* ---- interprocedural families: call graph, P/T/C rules ------------------ *)

module Callgraph = Ntcu_lint.Callgraph

let load ?in_lib ?in_test ?clock_allowed ?emitter ?codec ?dispatch name =
  let cmt, src = fixture_paths name in
  match
    Engine.load_cmt
      ~classify:(fun source ->
        cls ?in_lib ?in_test ?clock_allowed ?emitter ?codec ?dispatch source)
      cmt
  with
  | Some u -> (u, src)
  | None -> Alcotest.failf "fixture cmt did not load: %s" name

let with_code code findings =
  List.filter (fun (f : Finding.t) -> String.equal f.code code) findings

let assert_traced findings =
  List.iter
    (fun (f : Finding.t) ->
      if List.is_empty f.trace then
        Alcotest.failf "finding %s %s:%d has an empty trace" f.code f.file f.line)
    findings

let graph_of name =
  let u, _ = load name in
  Callgraph.build [ (u.Engine.u_cls, u.u_name, u.u_str, u.u_uid_to_loc) ]

let reaches g ~from ~target =
  match Callgraph.find_qual g from with
  | [] -> Alcotest.failf "no def %s in graph" from
  | roots ->
    List.exists
      (fun (d : Callgraph.def) -> String.equal d.qual target)
      (Callgraph.reachable g ~roots)

let callgraph_functor () =
  let g = graph_of "fixture_cg" in
  check Alcotest.bool "functor body resolves through the application" true
    (reaches g ~from:"Fixture_cg.use_functor" ~target:"Impl_a.handle");
  check Alcotest.bool "functor param call reaches the argument's helper" true
    (reaches g ~from:"Fixture_cg.use_functor" ~target:"Impl_a.helper");
  check Alcotest.bool "no edge invents a path to the unpacked impl" false
    (reaches g ~from:"Fixture_cg.use_functor" ~target:"Impl_b.handle")

let callgraph_first_class () =
  let g = graph_of "fixture_cg" in
  check Alcotest.bool "packing def reaches the packed module's defs" true
    (reaches g ~from:"Fixture_cg.packed" ~target:"Impl_b.handle");
  check Alcotest.bool "call through an unpacked module hits the packed impl" true
    (reaches g ~from:"Fixture_cg.use_pack" ~target:"Impl_b.handle")

let one_bait ~code findings src =
  let hits = with_code code findings in
  check
    Alcotest.(list int)
    (code ^ " at the marker lines")
    (marker_lines src "BAIT") (lines_of hits);
  assert_traced hits;
  hits

let p001_bait () =
  let u, src = load ~dispatch:true "fixture_p001" in
  let f = one_bait ~code:"P001" (Engine.analyze [ u ]) src in
  match f with
  | [ f ] ->
    if not (contains_sub f.message "2 of 4") then
      Alcotest.failf "expected coverage count in: %s" f.message
  | other -> Alcotest.failf "expected exactly 1 P001, got %d" (List.length other)

let p001_clean () =
  let u, _ = load ~dispatch:true "fixture_p001_clean" in
  check Alcotest.int "total dispatch is clean" 0
    (List.length (with_code "P001" (Engine.analyze [ u ])))

let p001_scope () =
  (* Same bait outside a dispatch unit: out of scope, no finding. *)
  let u, _ = load "fixture_p001" in
  check Alcotest.int "P001 only applies to dispatch units" 0
    (List.length (with_code "P001" (Engine.analyze [ u ])))

let p002_constructor_bait () =
  let u, src = load ~codec:true "fixture_p002" in
  let f = one_bait ~code:"P002" (Engine.analyze [ u ]) src in
  match f with
  | [ f ] ->
    if not (contains_sub f.message "Stop") then
      Alcotest.failf "expected the missing constructor in: %s" f.message
  | other -> Alcotest.failf "expected exactly 1 P002, got %d" (List.length other)

let p002_kind_bait () =
  let u, src = load ~codec:true "fixture_p002_wire" in
  let f = one_bait ~code:"P002" (Engine.analyze [ u ]) src in
  match f with
  | [ f ] ->
    if not (contains_sub f.message "kind_pong") then
      Alcotest.failf "expected the orphaned kind in: %s" f.message
  | other -> Alcotest.failf "expected exactly 1 P002, got %d" (List.length other)

let p002_clean () =
  let u, _ = load ~codec:true "fixture_p002_clean" in
  check Alcotest.int "parity on both sides is clean" 0
    (List.length (with_code "P002" (Engine.analyze [ u ])))

let p003_bait () =
  let u, src = load "fixture_p003" in
  ignore (one_bait ~code:"P003" (Engine.analyze [ u ]) src)

let p003_clean () =
  let u, _ = load "fixture_p003_clean" in
  check Alcotest.int "unit with a reachable cancel is clean" 0
    (List.length (with_code "P003" (Engine.analyze [ u ])))

let taint_pair () =
  let source, src = load ~clock_allowed:true "fixture_taint_source" in
  let sink, sink_src = load ~emitter:true "fixture_taint_sink" in
  let findings = Engine.analyze [ source; sink ] in
  List.iter
    (fun (code, marker) ->
      match (with_code code findings, marker_lines src marker) with
      | [ f ], [ line ] ->
        check Alcotest.int (code ^ " at the source site") line f.line;
        assert_traced [ f ];
        (* The trace starts at the emitter and walks to the source. *)
        let first = List.hd f.trace in
        check Alcotest.string (code ^ " trace starts in the sink")
          (Filename.basename sink_src)
          (Filename.basename first.Finding.file)
      | fs, ms ->
        Alcotest.failf "%s: expected 1 finding / 1 marker, got %d / %d" code
          (List.length fs) (List.length ms))
    [ ("T002", "BAIT-T002"); ("T003", "BAIT-T003"); ("T005", "BAIT-T005") ]

let taint_clean () =
  let u, _ = load ~emitter:true "fixture_taint_clean" in
  let findings = Engine.analyze [ u ] in
  List.iter
    (fun code ->
      check Alcotest.int (code ^ " neutralized by the D-allow") 0
        (List.length (with_code code findings)))
    [ "T002"; "T003"; "T005"; "D002"; "D003"; "D005" ]

let c001_bait () =
  let u, src = load ~in_lib:true "fixture_c001" in
  ignore (one_bait ~code:"C001" (Engine.analyze [ u ]) src)

let c001_clean () =
  let u, _ = load ~in_lib:true "fixture_c001_clean" in
  check Alcotest.int "pure pool closure is clean" 0
    (List.length (with_code "C001" (Engine.analyze [ u ])))

let c002_bait () =
  let u, src = load ~in_lib:true "fixture_c002" in
  ignore (one_bait ~code:"C002" (Engine.analyze [ u ]) src)

let suppression_debt () =
  let u, _ = load ~in_lib:true "fixture_allow" in
  let stale = { Baseline.code = "D001"; file = "lib/gone.ml"; line = 3; note = "gone" } in
  let report =
    {
      Engine.fresh = [];
      baselined = [];
      unused_baseline = [ stale ];
      files_scanned = 1;
      allow_debt = [ (u.Engine.u_cls.Classify.source, u.u_regions) ];
      baseline_total = 1;
    }
  in
  let json = Engine.suppressions_to_json report in
  List.iter
    (fun frag ->
      if not (contains_sub json frag) then
        Alcotest.failf "suppression JSON lacks %S:\n%s" frag json)
    [ "ntcu-lint-suppressions/1"; "\"allow_regions\": 1"; "lib/gone.ml"; "stale_baseline" ];
  check Alcotest.int "stale entries pass without strict" 0 (Engine.exit_code report);
  check Alcotest.int "stale entries fail under strict" 2
    (Engine.exit_code ~strict_baseline:true report);
  check Alcotest.int "fresh findings dominate strictness" 1
    (Engine.exit_code ~strict_baseline:true
       {
         report with
         Engine.fresh =
           [ Finding.make ~code:"D001" ~file:"x.ml" ~loc:Location.none "msg" ];
       })

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "D001 polymorphic compare at abstract types" `Quick d001;
        Alcotest.test_case "D002 unordered Hashtbl iteration" `Quick d002;
        Alcotest.test_case "D003 wall clock / global Random" `Quick d003_fires;
        Alcotest.test_case "D003 harness/bench allowlist" `Quick d003_allowlisted;
        Alcotest.test_case "D004 toplevel mutable state" `Quick d004_fires;
        Alcotest.test_case "D004 scoped to lib/" `Quick d004_outside_lib;
        Alcotest.test_case "D005 lossy float formatting" `Quick d005_fires;
        Alcotest.test_case "D005 scoped to emitters" `Quick d005_non_emitter;
        Alcotest.test_case "clean fixture stays clean" `Quick clean_fixture;
        Alcotest.test_case "whole-file ntcu.allow" `Quick whole_file_allow;
        Alcotest.test_case "baseline suppression" `Quick baseline_suppression;
        Alcotest.test_case "exit codes and JSON schema" `Quick exit_codes;
      ] );
    ( "callgraph",
      [
        Alcotest.test_case "functor application edges" `Quick callgraph_functor;
        Alcotest.test_case "first-class module edges" `Quick callgraph_first_class;
      ] );
    ( "protocol",
      [
        Alcotest.test_case "P001 unreached dispatch arm" `Quick p001_bait;
        Alcotest.test_case "P001 total match is clean" `Quick p001_clean;
        Alcotest.test_case "P001 scoped to dispatch units" `Quick p001_scope;
        Alcotest.test_case "P002 missing decoder constructor" `Quick p002_constructor_bait;
        Alcotest.test_case "P002 orphaned wire kind constant" `Quick p002_kind_bait;
        Alcotest.test_case "P002 full parity is clean" `Quick p002_clean;
        Alcotest.test_case "P003 timer arm without cancel path" `Quick p003_bait;
        Alcotest.test_case "P003 reachable cancel is clean" `Quick p003_clean;
      ] );
    ( "taint",
      [
        Alcotest.test_case "T002/T003/T005 source-to-sink traces" `Quick taint_pair;
        Alcotest.test_case "allow on the source neutralizes taint" `Quick taint_clean;
      ] );
    ( "escape",
      [
        Alcotest.test_case "C001 mutable capture in pool closure" `Quick c001_bait;
        Alcotest.test_case "C001 pure closure is clean" `Quick c001_clean;
        Alcotest.test_case "C002 owner-guarded handle crosses domains" `Quick c002_bait;
      ] );
    ( "suppressions",
      [
        Alcotest.test_case "debt report and strict-baseline exit" `Quick suppression_debt;
      ] );
  ]
