(* The scale arena and sharded engine.

   Node_store is checked against a naive purely-functional model over random
   operation traces; the engine is checked for worker-count independence —
   the deterministic payload of a run must not depend on --jobs. *)

module Params = Ntcu_id.Params
module Packed = Ntcu_id.Packed
module Rng = Ntcu_std.Rng
module Node_store = Ntcu_scale.Node_store
module Scale = Ntcu_scale.Scale
module Scale_bench = Ntcu_harness.Scale_bench

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let p = Params.paper_sim_d8
let lay = Packed.layout p

(* ---- Node_store vs record model ---- *)

(* The model: live nodes as (packed id -> status, cells), cells as
   ((level, digit) -> occupant, sbit) maps. *)
module Imap = Map.Make (Int)
module Cmap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type mnode = { mstatus : int; mcells : (int * int) Cmap.t }
type model = mnode Imap.t

(* One trace step. Ids are drawn from a small pool so adds, removes and cell
   writes collide often; occupants are forced to carry the owner's required
   suffix so Node_store.set accepts them. *)
type op =
  | Add of int
  | Remove of int
  | Set of int * int * int * int * int (* owner, level, digit, occ-seed, sbit *)
  | Clear of int * int * int
  | SetState of int * int * int * int
  | FillSelf of int * int

let pool_size = 24

let op_gen =
  let open QCheck.Gen in
  let idx = int_bound (pool_size - 1) in
  frequency
    [
      (3, map (fun i -> Add i) idx);
      (1, map (fun i -> Remove i) idx);
      ( 4,
        map
          (fun (i, (l, (dg, (os, sb)))) -> Set (i, l, dg, os, sb))
          (pair idx
             (pair (int_bound (p.Params.d - 1))
                (pair (int_bound (p.Params.b - 1)) (pair int (int_bound 1))))) );
      ( 1,
        map
          (fun (i, (l, dg)) -> Clear (i, l, dg))
          (pair idx (pair (int_bound (p.Params.d - 1)) (int_bound (p.Params.b - 1)))) );
      ( 1,
        map
          (fun (i, (l, (dg, sb))) -> SetState (i, l, dg, sb))
          (pair idx
             (pair (int_bound (p.Params.d - 1))
                (pair (int_bound (p.Params.b - 1)) (int_bound 1)))) );
      (1, map (fun (i, sb) -> FillSelf (i, sb)) (pair idx (int_bound 1)));
    ]

let trace_gen = QCheck.Gen.(list_size (int_range 20 200) op_gen)

let arb_trace =
  QCheck.make
    ~print:(fun (seed, ops) -> Printf.sprintf "seed=%d, %d ops" seed (List.length ops))
    QCheck.Gen.(pair small_nat trace_gen)

(* The id pool: distinct random packed ids. *)
let make_pool seed =
  let rng = Rng.create (seed + 1) in
  let seen = Hashtbl.create 64 in
  let arr = Array.make pool_size (Packed.random rng lay) in
  let i = ref 0 in
  while !i < pool_size do
    let x = Packed.random rng lay in
    if not (Hashtbl.mem seen (x :> int)) then begin
      Hashtbl.add seen (x :> int) ();
      arr.(!i) <- x;
      incr i
    end
  done;
  arr

(* An occupant for (owner, level, digit): required low digits forced, the
   rest from the seed. *)
let occupant_for owner ~level ~digit seed =
  let digits = Array.init p.Params.d (fun i -> Packed.digit lay owner i) in
  digits.(level) <- digit;
  for i = level + 1 to p.Params.d - 1 do
    digits.(i) <- abs (seed + (31 * i)) mod p.Params.b
  done;
  Packed.make lay digits

let model_equiv (seed, ops) =
  let store = Node_store.create ~cap:8 p in
  let pool = make_pool seed in
  let model = ref Imap.empty in
  let apply op =
    match op with
    | Add i ->
      let x = pool.(i) in
      if Node_store.mem store x then (
        try
          ignore (Node_store.add store x : int);
          Alcotest.fail "duplicate add accepted"
        with Invalid_argument _ -> ())
      else begin
        ignore (Node_store.add store x : int);
        model :=
          Imap.add (x :> int)
            { mstatus = Node_store.status_copying; mcells = Cmap.empty }
            !model
      end
    | Remove i ->
      let x = pool.(i) in
      if Node_store.mem store x then begin
        Node_store.remove store x;
        model := Imap.remove (x :> int) !model
      end
      else (
        try
          Node_store.remove store x;
          Alcotest.fail "unknown remove accepted"
        with Invalid_argument _ -> ())
    | Set (i, level, digit, os, sb) -> (
      let x = pool.(i) in
      match Node_store.find store x with
      | None -> ()
      | Some slot ->
        let occ = occupant_for x ~level ~digit os in
        Node_store.set store slot ~level ~digit occ sb;
        let m = Imap.find (x :> int) !model in
        model :=
          Imap.add (x :> int)
            { m with mcells = Cmap.add (level, digit) ((occ :> int), sb) m.mcells }
            !model)
    | Clear (i, level, digit) -> (
      let x = pool.(i) in
      match Node_store.find store x with
      | None -> ()
      | Some slot ->
        Node_store.clear_cell store slot ~level ~digit;
        let m = Imap.find (x :> int) !model in
        model :=
          Imap.add (x :> int)
            { m with mcells = Cmap.remove (level, digit) m.mcells }
            !model)
    | SetState (i, level, digit, sb) -> (
      let x = pool.(i) in
      match Node_store.find store x with
      | None -> ()
      | Some slot ->
        let m = Imap.find (x :> int) !model in
        if Cmap.mem (level, digit) m.mcells then begin
          Node_store.set_state store slot ~level ~digit sb;
          let occ, _ = Cmap.find (level, digit) m.mcells in
          model :=
            Imap.add (x :> int)
              { m with mcells = Cmap.add (level, digit) (occ, sb) m.mcells }
              !model
        end)
    | FillSelf (i, sb) -> (
      let x = pool.(i) in
      match Node_store.find store x with
      | None -> ()
      | Some slot ->
        Node_store.fill_self store slot sb;
        let m = Imap.find (x :> int) !model in
        let cells = ref m.mcells in
        for level = 0 to p.Params.d - 1 do
          cells :=
            Cmap.add (level, Packed.digit lay x level) ((x :> int), sb) !cells
        done;
        model := Imap.add (x :> int) { m with mcells = !cells } !model)
  in
  List.iter apply ops;
  (* Full observational equality of the end states. *)
  Imap.cardinal !model = Node_store.live store
  && Imap.for_all
       (fun xi m ->
         let x = Packed.unsafe_of_int xi in
         match Node_store.find store x with
         | None -> false
         | Some slot ->
           Packed.equal (Node_store.id_of store slot) x
           && Node_store.status store slot = m.mstatus
           && Node_store.filled_count store slot = Cmap.cardinal m.mcells
           && List.for_all
                (fun level ->
                  List.for_all
                    (fun digit ->
                      let got = Node_store.cell store slot ~level ~digit in
                      match Cmap.find_opt (level, digit) m.mcells with
                      | None -> got = -1
                      | Some (occ, sb) ->
                        got = occ && Node_store.state store slot ~level ~digit = sb)
                    (List.init p.Params.b Fun.id))
                (List.init p.Params.d Fun.id))
       !model

let set_validates_suffix () =
  let store = Node_store.create p in
  let rng = Rng.create 7 in
  let x = Packed.random rng lay in
  let slot = Node_store.add store x in
  (* An occupant whose digit at level 2 is off by one lacks the required
     suffix for cell (2, digit). *)
  let digits = Array.init p.Params.d (Packed.digit lay x) in
  let wrong = (digits.(2) + 1) mod p.Params.b in
  digits.(2) <- wrong;
  let bad = Packed.make lay digits in
  try
    Node_store.set store slot ~level:2
      ~digit:((wrong + 1) mod p.Params.b)
      bad Node_store.state_s;
    Alcotest.fail "suffix-violating occupant accepted"
  with Invalid_argument _ -> ()

let reverse_lists () =
  let store = Node_store.create p in
  let rng = Rng.create 11 in
  let x = Packed.random rng lay in
  let a = Packed.random rng lay and b = Packed.random rng lay in
  let slot = Node_store.add store x in
  Node_store.add_reverse store slot ~storer:a ~level:0 ~digit:1;
  Node_store.add_reverse store slot ~storer:b ~level:1 ~digit:2;
  Node_store.add_reverse store slot ~storer:a ~level:3 ~digit:4;
  let got = ref [] in
  Node_store.iter_reverse store slot (fun s ~pos ->
      got := ((s :> int), pos) :: !got);
  (* Newest first, so accumulating restores insertion order. *)
  check
    Alcotest.(list (pair int int))
    "registrations in order"
    [
      ((a :> int), 1);
      ((b :> int), p.Params.b + 2);
      ((a :> int), (3 * p.Params.b) + 4);
    ]
    !got;
  Node_store.remove_reverse store slot a;
  let left = ref [] in
  Node_store.iter_reverse store slot (fun s ~pos -> left := ((s :> int), pos) :: !left);
  check Alcotest.(list (pair int int)) "a's registrations dropped"
    [ ((b :> int), p.Params.b + 2) ]
    !left

(* ---- engine determinism across worker counts ---- *)

let test_config =
  {
    Scale.params = p;
    n = 600;
    seeds = 64;
    seed = 5;
    shards = 8;
    inject_per_epoch = 64;
    max_epochs = 10_000;
  }

let jobs_independence () =
  let r1 = Scale_bench.measure ~jobs:1 test_config in
  let r4 = Scale_bench.measure ~jobs:4 test_config in
  check Alcotest.bool "jobs=1 ok" true (Scale_bench.ok r1);
  check Alcotest.bool "jobs=4 ok" true (Scale_bench.ok r4);
  check Alcotest.string "payload byte-identical"
    (Ntcu_harness.Report.Json.to_string (Scale_bench.payload_json r1))
    (Ntcu_harness.Report.Json.to_string (Scale_bench.payload_json r4))

let completes_and_checks () =
  let r = Scale_bench.measure ~jobs:2 test_config in
  let s = r.Scale_bench.summary in
  check Alcotest.int "population" test_config.Scale.n s.Scale.population;
  check Alcotest.int "every joiner injected"
    (test_config.Scale.n - test_config.Scale.seeds)
    s.Scale.injected;
  check Alcotest.int "no stuck joiners" 0 s.Scale.stuck;
  check Alcotest.int "no residual violations" 0 s.Scale.violations;
  check Alcotest.bool "events partitioned over shards" true
    (Array.fold_left ( + ) 0 s.Scale.shard_events = s.Scale.events)

let suites =
  [
    ( "scale",
      [
        qtest ~count:60 "Node_store agrees with the record model" arb_trace
          model_equiv;
        Alcotest.test_case "set validates suffix" `Quick set_validates_suffix;
        Alcotest.test_case "reverse-pointer lists" `Quick reverse_lists;
        Alcotest.test_case "payload independent of --jobs" `Quick jobs_independence;
        Alcotest.test_case "run completes consistent" `Quick completes_and_checks;
      ] );
  ]
