(* The protocol arena's guarantees: every production arm passes its own
   invariants on the shared workload, the report is byte-identical for any
   [jobs] value, an arm's numbers do not move when the opposing arms change
   (seed-stream isolation), and the naive-Chord arm is the designed
   differential — it alone fails under the same departures the others
   survive. *)

module Arena = Ntcu_harness.Arena
module Json = Ntcu_harness.Report.Json

let check = Alcotest.check

(* At smoke scale the multicast baseline survives the (mildly) staggered
   joins, so it can join the production arms in the pass assertions; at
   default scale its concurrency races show, which is why it is not a
   default arm. *)
let cfg =
  {
    Arena.smoke with
    Arena.seed = 1;
    arms = [ Arena.Paper; Arena.Chord; Arena.Baseline ];
  }

let json_string r = Json.to_string (Arena.to_json r)

let arm_result report arm =
  match
    List.find_opt (fun (r : Arena.arm_result) -> r.Arena.arm = arm) report.Arena.results
  with
  | Some r -> r
  | None -> Alcotest.failf "arm %s missing from report" (Arena.arm_name arm)

let all_arms_pass () =
  let report = Arena.run ~jobs:1 cfg in
  check Alcotest.bool "report ok" true (Arena.ok report);
  check Alcotest.int "one result per arm"
    (List.length cfg.Arena.arms)
    (List.length report.Arena.results);
  let paper = arm_result report Arena.Paper in
  let chord = arm_result report Arena.Chord in
  let baseline = arm_result report Arena.Baseline in
  (* Leave-capable arms end without the leavers; the join-only baseline
     keeps them. *)
  let full = cfg.Arena.n + cfg.Arena.m in
  check Alcotest.int "paper members" (full - cfg.Arena.leavers) paper.Arena.members;
  check Alcotest.int "chord members" (full - cfg.Arena.leavers) chord.Arena.members;
  check Alcotest.int "baseline members" full baseline.Arena.members;
  check Alcotest.int "paper leaves applied" cfg.Arena.leavers paper.Arena.leaves_applied;
  check Alcotest.int "baseline leaves applied" 0 baseline.Arena.leaves_applied;
  List.iter
    (fun (r : Arena.arm_result) ->
      check Alcotest.bool
        (Arena.arm_name r.Arena.arm ^ " lookups all ok")
        true
        (r.Arena.lookups_attempted > 0
        && r.Arena.lookups_ok = r.Arena.lookups_attempted);
      check Alcotest.bool
        (Arena.arm_name r.Arena.arm ^ " stretch sane")
        true
        (r.Arena.mean_stretch >= 1.0))
    report.Arena.results

let jobs_deterministic () =
  let naive_cfg = { cfg with Arena.arms = cfg.Arena.arms @ [ Arena.Chord_naive ] } in
  let serial = Arena.run ~jobs:1 naive_cfg in
  let fanned = Arena.run ~jobs:4 naive_cfg in
  check Alcotest.string "byte-identical JSON across jobs" (json_string serial)
    (json_string fanned)

(* An arm is a closed simulation: its result cannot depend on which opponents
   it is paired against. *)
let arm_isolation () =
  let solo = Arena.run ~jobs:1 { cfg with Arena.arms = [ Arena.Chord ] } in
  let full = Arena.run ~jobs:1 cfg in
  let strip report =
    Json.to_string
      (Arena.to_json { report with Arena.config = { cfg with Arena.arms = [] } })
  in
  let chord_only (report : Arena.report) =
    { report with Arena.results = [ arm_result report Arena.Chord ] }
  in
  check Alcotest.string "chord arm unchanged when opponents swap"
    (strip (chord_only solo))
    (strip (chord_only full))

(* The designed differential: under the same departures, naive Chord — no
   successor redundancy, no liveness checks, leaves as silent death — breaks
   its own ring invariants while the corrected arms stay clean. *)
let naive_differential () =
  let report =
    Arena.run ~jobs:1
      { cfg with Arena.arms = [ Arena.Chord; Arena.Chord_naive ] }
  in
  let chord = arm_result report Arena.Chord in
  let naive = arm_result report Arena.Chord_naive in
  check Alcotest.bool "correct chord passes" true (Arena.arm_ok chord);
  check Alcotest.bool "naive chord violates" false (Arena.arm_ok naive);
  check Alcotest.bool "report not ok" false (Arena.ok report)

let suites =
  [
    ( "arena",
      [
        Alcotest.test_case "all arms pass" `Quick all_arms_pass;
        Alcotest.test_case "jobs-count deterministic" `Quick jobs_deterministic;
        Alcotest.test_case "arm isolation" `Quick arm_isolation;
        Alcotest.test_case "naive differential" `Quick naive_differential;
      ] );
  ]
