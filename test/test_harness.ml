module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Workload = Ntcu_harness.Workload
module Experiment = Ntcu_harness.Experiment
module Report = Ntcu_harness.Report
module Rng = Ntcu_std.Rng

let check = Alcotest.check
let p = Params.make ~b:4 ~d:5

let distinct_ids_distinct () =
  let rng = Rng.create 1 in
  let ids = Workload.distinct_ids rng p ~n:200 in
  check Alcotest.int "count" 200 (List.length ids);
  check Alcotest.int "distinct" 200
    (List.length (List.sort_uniq Id.compare ids))

let distinct_ids_avoid () =
  let rng = Rng.create 2 in
  let first = Workload.distinct_ids rng p ~n:100 in
  let second = Workload.distinct_ids ~avoid:(Id.Set.of_list first) rng p ~n:100 in
  let overlap =
    List.filter (fun id -> List.exists (Id.equal id) first) second
  in
  check Alcotest.int "no overlap" 0 (List.length overlap)

let distinct_ids_suffix () =
  let rng = Rng.create 3 in
  let ids = Workload.distinct_ids ~suffix:[| 2; 1 |] rng p ~n:30 in
  List.iter
    (fun id -> check Alcotest.bool "suffix kept" true (Id.has_suffix id [| 2; 1 |]))
    ids

let distinct_ids_space_guard () =
  let rng = Rng.create 4 in
  let tiny = Params.make ~b:2 ~d:3 in
  try
    ignore (Workload.distinct_ids rng tiny ~n:20);
    Alcotest.fail "overfull population accepted"
  with Invalid_argument _ -> ()

let split_cases () =
  check
    (Alcotest.pair (Alcotest.list Alcotest.int) (Alcotest.list Alcotest.int))
    "basic" ([ 1; 2 ], [ 3 ]) (Workload.split 2 [ 1; 2; 3 ]);
  check
    (Alcotest.pair (Alcotest.list Alcotest.int) (Alcotest.list Alcotest.int))
    "short" ([ 1 ], []) (Workload.split 5 [ 1 ])

let cdf_points_cumulative () =
  let pts = Experiment.cdf_points [| 3; 1; 1; 2 |] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "cdf" [ (1, 0.5); (2, 0.75); (3, 1.0) ] pts

let join_run_reports () =
  let run = Experiment.concurrent_joins p ~seed:5 ~n:10 ~m:5 () in
  let s = Fmt.str "%a" Report.pp_join_run run in
  check Alcotest.bool "mentions consistency" true (String.length s > 40)

let fig15b_small_setup () =
  (* A miniature Figure 15(b): tiny topology, tiny network, full pipeline. *)
  let setup = { Experiment.d = 8; n = 60; m = 30 } in
  let run =
    Experiment.fig15b ~routers:Ntcu_topology.Transit_stub.default_config ~seed:6 setup
  in
  check Alcotest.bool "in system" true run.all_in_system;
  check Alcotest.int "consistent" 0 (List.length (Lazy.force run.violations));
  check Alcotest.int "measured all joiners" 30 (Array.length run.join_noti)

let paper_setups_shape () =
  check Alcotest.int "four curves" 4 (List.length Experiment.paper_setups);
  List.iter
    (fun s ->
      check Alcotest.bool "paper sizes" true
        (s.Experiment.m = 1000 && (s.n = 3096 || s.n = 7192) && (s.d = 8 || s.d = 40)))
    Experiment.paper_setups

(* Regression for the bench/validate exit-status fix: [Experiment.ok] is the
   full healthy-run predicate, and it must go false on a run that is
   individually "consistent-looking" but left joiners wedged — exactly the
   runs the bench previously reported with exit 0. *)
let ok_predicate () =
  let healthy = Experiment.concurrent_joins p ~seed:7 ~n:20 ~m:10 () in
  check Alcotest.bool "healthy run is ok" true (Experiment.ok healthy);
  check Alcotest.bool "ok implies consistent" true (Experiment.consistent healthy);
  (* 20% loss with the reliable transport disabled wedges joiners: the run
     must not count as ok even though completed nodes' tables may check out. *)
  let wedged =
    Experiment.fault_injection ~reliable:false ~loss:0.2 ~crash_fraction:0.
      (Params.make ~b:4 ~d:5) ~seed:8 ~n:30 ~m:15 ()
  in
  check Alcotest.bool "some joiners wedged" true (wedged.Experiment.stuck > 0);
  check Alcotest.bool "wedged run is not ok" false (Experiment.ok wedged.Experiment.run)

let report_table_renders () =
  let s =
    Fmt.str "%a" (Report.table ~header:[ "a"; "b" ]) [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  check Alcotest.bool "contains rows" true (String.length s > 10)

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "distinct ids" `Quick distinct_ids_distinct;
        Alcotest.test_case "avoid set" `Quick distinct_ids_avoid;
        Alcotest.test_case "suffix constraint" `Quick distinct_ids_suffix;
        Alcotest.test_case "space guard" `Quick distinct_ids_space_guard;
        Alcotest.test_case "split" `Quick split_cases;
        Alcotest.test_case "cdf points" `Quick cdf_points_cumulative;
        Alcotest.test_case "join-run report" `Quick join_run_reports;
        Alcotest.test_case "fig15b miniature" `Slow fig15b_small_setup;
        Alcotest.test_case "paper setups" `Quick paper_setups_shape;
        Alcotest.test_case "ok predicate" `Quick ok_predicate;
        Alcotest.test_case "report table" `Quick report_table_renders;
      ] );
  ]
