module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Message = Ntcu_core.Message
module Stats = Ntcu_core.Stats
module Experiment = Ntcu_harness.Experiment
module Rng = Ntcu_std.Rng

let check = Alcotest.check

let assert_good_run ?(expect_m = -1) (run : Experiment.join_run) =
  if expect_m >= 0 then check Alcotest.int "joiner count" expect_m (List.length run.joiners);
  check Alcotest.bool "all in_system (Theorem 2)" true run.all_in_system;
  check Alcotest.bool "quiescent" true run.quiescent;
  (if not (Experiment.consistent run) then
     match Lazy.force run.violations with
     | v :: rest ->
       Alcotest.failf "network inconsistent (%d violations), first: %a"
         (1 + List.length rest) Ntcu_table.Check.pp_violation v
     | [] -> Alcotest.fail "limit:1 probe and full scan disagree");
  let d = (Network.params run.net).d in
  Array.iter
    (fun c ->
      if c > d + 1 then Alcotest.failf "Theorem 3 violated: %d > d+1 = %d" c (d + 1))
    run.cp_wait

let single_join_into_singleton () =
  let p = Params.make ~b:4 ~d:5 in
  let net = Network.create p in
  let a = Id.of_string p "21233" and b = Id.of_string p "10010" in
  Network.add_seed_node net a;
  Network.start_join net ~id:b ~gateway:a ();
  Network.run net;
  check Alcotest.bool "in system" true (Network.all_in_system net);
  check Alcotest.int "consistent" 0 (List.length (Network.check_consistent net));
  check Alcotest.bool "reachable" true
    (Ntcu_table.Check.all_pairs_reachable (Network.tables net))

let single_join_records_period () =
  let p = Params.make ~b:4 ~d:5 in
  let net = Network.create p in
  let a = Id.of_string p "21233" and b = Id.of_string p "10010" in
  Network.add_seed_node net a;
  Network.start_join net ~at:5. ~id:b ~gateway:a ();
  Network.run net;
  let joiner = Network.node_exn net b in
  (match (Node.t_begin joiner, Node.t_end joiner) with
  | Some tb, Some te ->
    check Alcotest.bool "period ordered" true (tb < te);
    check (Alcotest.float 1e-9) "began at start time" 5. tb
  | _ -> Alcotest.fail "joining period not recorded");
  let seed = Network.node_exn net a in
  check Alcotest.bool "seed has no period" true (Node.t_begin seed = None)

let seed_network_is_consistent () =
  let p = Params.make ~b:8 ~d:5 in
  let rng = Rng.create 3 in
  let ids = Ntcu_harness.Workload.distinct_ids rng p ~n:200 in
  let net = Network.create p in
  Network.seed_consistent net ~seed:4 ids;
  check Alcotest.int "consistent" 0 (List.length (Network.check_consistent net));
  check Alcotest.bool "all in system" true (Network.all_in_system net)

let sequential_joins_consistent () =
  let run = Experiment.sequential_joins (Params.make ~b:4 ~d:6) ~seed:11 ~n:20 ~m:15 () in
  assert_good_run ~expect_m:15 run;
  (* Sequential joins must classify as sequential. *)
  let periods =
    List.map
      (fun id ->
        let node = Network.node_exn run.net id in
        match (Node.t_begin node, Node.t_end node) with
        | Some b, Some e -> (b, e)
        | _ -> Alcotest.fail "missing period")
      run.joiners
  in
  check Alcotest.bool "timing sequential" true
    (Ntcu_cset.Cset.classify_timing periods = Ntcu_cset.Cset.Sequential)

let concurrent_joins_consistent () =
  let run = Experiment.concurrent_joins (Params.make ~b:4 ~d:6) ~seed:21 ~n:30 ~m:40 () in
  assert_good_run ~expect_m:40 run

let dependent_concurrent_joins_consistent () =
  (* All joiners share a 2-digit suffix: one deep C-set tree. *)
  let run =
    Experiment.concurrent_joins
      (Params.make ~b:8 ~d:5)
      ~suffix:[| 3; 1 |] ~seed:31 ~n:40 ~m:30 ()
  in
  assert_good_run ~expect_m:30 run

let network_init_from_one_node () =
  let run = Experiment.network_init (Params.make ~b:4 ~d:6) ~seed:41 ~n:40 in
  assert_good_run run;
  check Alcotest.int "grew from one seed" 1 (List.length run.seeds);
  check Alcotest.int "size" 40 (Network.size run.net)

let paper_figure2_workload () =
  let p = Params.paper_example_fig2 in
  let v = List.map (Id.of_string p) [ "72430"; "10353"; "62332"; "13141"; "31701" ] in
  let w = List.map (Id.of_string p) [ "10261"; "47051"; "00261" ] in
  let net = Network.create ~latency:(Ntcu_sim.Latency.uniform ~seed:7 ~lo:1. ~hi:50.) p in
  Network.seed_consistent net ~seed:5 v;
  List.iter (fun id -> Network.start_join net ~id ~gateway:(List.hd v) ()) w;
  Network.run net;
  check Alcotest.bool "in system" true (Network.all_in_system net);
  check Alcotest.int "consistent" 0 (List.length (Network.check_consistent net))

let all_size_modes_consistent () =
  List.iter
    (fun size_mode ->
      let run =
        Experiment.concurrent_joins ~size_mode
          (Params.make ~b:8 ~d:5)
          ~suffix:[| 2 |] ~seed:51 ~n:25 ~m:25 ()
      in
      assert_good_run run)
    [ Message.Full; Message.Level_range; Message.Bit_vector ]

let size_modes_reduce_bytes () =
  let bytes_for mode =
    let run =
      Experiment.concurrent_joins ~size_mode:mode
        (Params.make ~b:16 ~d:8)
        ~seed:61 ~n:100 ~m:60 ()
    in
    assert_good_run run;
    Stats.bytes_sent (Network.global_stats run.net)
  in
  let full = bytes_for Message.Full in
  let level = bytes_for Message.Level_range in
  check Alcotest.bool "level-range cheaper than full" true (level < full);
  (* The bit vector adds d*b/8 bytes per JoinNotiMsg but prunes reply cells;
     it must never cost more than plain level-range by a large factor. *)
  let bv = bytes_for Message.Bit_vector in
  check Alcotest.bool "bit-vector within level-range ballpark" true
    (float_of_int bv < 1.2 *. float_of_int level)

let latency_models_do_not_matter_for_safety () =
  let p = Params.make ~b:4 ~d:6 in
  List.iter
    (fun latency ->
      let run = Experiment.concurrent_joins ~latency p ~seed:71 ~n:20 ~m:25 () in
      assert_good_run run)
    [
      Ntcu_sim.Latency.constant 1.0;
      Ntcu_sim.Latency.uniform ~seed:1 ~lo:0.1 ~hi:500.;
      Ntcu_sim.Latency.of_distance ~jitter:0.5 ~seed:2 (fun ~src ~dst ->
          float_of_int (1 + ((src * 7) + (dst * 13) mod 97)));
    ]

let reply_matching () =
  let run = Experiment.concurrent_joins (Params.make ~b:8 ~d:5) ~seed:81 ~n:30 ~m:30 () in
  assert_good_run run;
  let g = Network.global_stats run.net in
  let sent k = Stats.sent g k and received k = Stats.received g k in
  (* Reliable delivery: everything sent is received. *)
  List.iter
    (fun k -> check Alcotest.int (Message.kind_name k ^ " delivered") (sent k) (received k))
    [ Message.K_cp_rst; K_join_wait; K_join_noti; K_spe_noti; K_join_wait_rly ];
  (* One reply per request. *)
  check Alcotest.int "CpRly per CpRst" (sent K_cp_rst) (sent K_cp_rly);
  check Alcotest.int "JoinWaitRly per JoinWait" (sent K_join_wait) (sent K_join_wait_rly);
  check Alcotest.int "JoinNotiRly per JoinNoti" (sent K_join_noti) (sent K_join_noti_rly);
  check Alcotest.int "SpeNotiRly per SpeNoti origin" (sent K_spe_noti_rly)
    (min (sent K_spe_noti) (sent K_spe_noti_rly))

let determinism_across_runs () =
  let go () =
    let p = Params.make ~b:4 ~d:5 in
    let rng = Rng.create 5 in
    let seeds = Ntcu_harness.Workload.distinct_ids rng p ~n:10 in
    let joiners =
      Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:10
    in
    let net =
      Network.create ~record_trace:true
        ~latency:(Ntcu_sim.Latency.uniform ~seed:9 ~lo:1. ~hi:50.)
        p
    in
    Network.seed_consistent net ~seed:2 seeds;
    List.iter (fun id -> Network.start_join net ~id ~gateway:(List.hd seeds) ()) joiners;
    Network.run net;
    match Network.trace net with Some t -> t | None -> Alcotest.fail "no trace"
  in
  let a = go () and b = go () in
  check Alcotest.int "same event count" (Ntcu_sim.Trace.length a) (Ntcu_sim.Trace.length b);
  check Alcotest.bool "identical traces" true (Ntcu_sim.Trace.equal a b)

let joiner_state_drained () =
  let run = Experiment.concurrent_joins (Params.make ~b:4 ~d:6) ~seed:91 ~n:15 ~m:20 () in
  assert_good_run run;
  List.iter
    (fun id ->
      let node = Network.node_exn run.net id in
      check Alcotest.int "no pending replies" 0 (Node.pending_replies node);
      check Alcotest.int "no queued join waits" 0 (Node.queued_join_waits node);
      check Alcotest.bool "noti level sane" true
        (Node.noti_level node >= 0 && Node.noti_level node < 6))
    run.joiners

let start_join_validation () =
  let p = Params.make ~b:4 ~d:5 in
  let net = Network.create p in
  let a = Id.of_string p "21233" in
  Network.add_seed_node net a;
  (try
     Network.start_join net ~id:a ~gateway:a ();
     Alcotest.fail "duplicate id accepted"
   with Invalid_argument _ -> ());
  try
    Network.start_join net ~id:(Id.of_string p "00000") ~gateway:(Id.of_string p "11111") ();
    Alcotest.fail "unknown gateway accepted"
  with Invalid_argument _ -> ()

let self_send_forbidden () =
  let p = Params.make ~b:4 ~d:5 in
  let node = Node.create_joiner { Node.params = p; size_mode = Message.Full } (Id.of_string p "21233") in
  try
    ignore (Node.begin_join node ~now:0. ~gateway:(Id.of_string p "21233"));
    Alcotest.fail "self gateway accepted"
  with Invalid_argument _ -> ()

let stagger_modes_consistent () =
  (* Overlapping but not identical start times: mixed interleavings. *)
  let run =
    Experiment.concurrent_joins ~stagger:3.
      (Params.make ~b:4 ~d:6)
      ~seed:101 ~n:20 ~m:30 ()
  in
  assert_good_run run

let base_two_consistent () =
  let run = Experiment.concurrent_joins (Params.make ~b:2 ~d:10) ~seed:111 ~n:16 ~m:24 () in
  assert_good_run run

let two_twins_join () =
  (* Two nodes differing only in the top digit join an unrelated network:
     the deepest possible mutual dependency. *)
  let p = Params.make ~b:4 ~d:5 in
  let v = List.map (Id.of_string p) [ "00000"; "11111"; "22222" ] in
  let w = List.map (Id.of_string p) [ "13333"; "23333" ] in
  List.iter
    (fun seed ->
      let net =
        Network.create ~latency:(Ntcu_sim.Latency.uniform ~seed ~lo:1. ~hi:100.) p
      in
      Network.seed_consistent net ~seed:(seed + 1) v;
      List.iter (fun id -> Network.start_join net ~id ~gateway:(List.hd v) ()) w;
      Network.run net;
      check Alcotest.bool "in system" true (Network.all_in_system net);
      check Alcotest.int "consistent" 0 (List.length (Network.check_consistent net));
      (* They must have found each other. *)
      let t1 = Node.table (Network.node_exn net (List.hd w)) in
      let t2 = Node.table (Network.node_exn net (List.nth w 1)) in
      check Alcotest.bool "13333 knows 23333" true
        (Ntcu_table.Table.neighbor t1 ~level:4 ~digit:2 <> None);
      check Alcotest.bool "23333 knows 13333" true
        (Ntcu_table.Table.neighbor t2 ~level:4 ~digit:1 <> None))
    [ 1; 2; 3; 4; 5 ]

let random_scenarios =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"random concurrent-join scenarios stay consistent"
       QCheck.(
         quad (int_range 1 30) (int_range 1 25) small_int
           (pair (int_range 2 8) (int_range 3 8)))
       (fun (n, m, seed, (b, d)) ->
         let p = Params.make ~b ~d in
         (* keep populations inside small ID spaces *)
         let space = float_of_int b ** float_of_int d in
         let n = min n (int_of_float (space /. 4.)) in
         let m = min m (int_of_float (space /. 4.)) in
         let n = max n 1 and m = max m 1 in
         let run = Experiment.concurrent_joins p ~seed ~n ~m () in
         run.all_in_system && run.quiescent
         && Experiment.consistent run
         && Array.for_all (fun c -> c <= d + 1) run.cp_wait))

let suites =
  [
    ( "protocol.basic",
      [
        Alcotest.test_case "join into singleton" `Quick single_join_into_singleton;
        Alcotest.test_case "joining period" `Quick single_join_records_period;
        Alcotest.test_case "seeded network consistent" `Quick seed_network_is_consistent;
        Alcotest.test_case "start_join validation" `Quick start_join_validation;
        Alcotest.test_case "self gateway rejected" `Quick self_send_forbidden;
      ] );
    ( "protocol.joins",
      [
        Alcotest.test_case "sequential" `Quick sequential_joins_consistent;
        Alcotest.test_case "concurrent" `Quick concurrent_joins_consistent;
        Alcotest.test_case "dependent concurrent" `Quick dependent_concurrent_joins_consistent;
        Alcotest.test_case "network initialization" `Quick network_init_from_one_node;
        Alcotest.test_case "paper Figure 2 workload" `Quick paper_figure2_workload;
        Alcotest.test_case "staggered starts" `Quick stagger_modes_consistent;
        Alcotest.test_case "base 2" `Quick base_two_consistent;
        Alcotest.test_case "suffix twins" `Quick two_twins_join;
        random_scenarios;
      ] );
    ( "protocol.properties",
      [
        Alcotest.test_case "size modes consistent" `Quick all_size_modes_consistent;
        Alcotest.test_case "size modes reduce bytes" `Quick size_modes_reduce_bytes;
        Alcotest.test_case "latency independence" `Quick latency_models_do_not_matter_for_safety;
        Alcotest.test_case "reply matching" `Quick reply_matching;
        Alcotest.test_case "determinism" `Quick determinism_across_runs;
        Alcotest.test_case "joiner state drained" `Quick joiner_state_drained;
      ] );
  ]
