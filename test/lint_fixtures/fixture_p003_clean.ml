(* P003 clean variant: the unit that arms the timer can also cancel it. *)

module Engine = struct
  type t = unit
  type handle = int

  let schedule_cancellable (_ : t) ~delay:(_ : float) (_ : unit -> unit) : handle = 0
  let cancel (_ : t) (_ : handle) = ()
end

let arm eng = Engine.schedule_cancellable eng ~delay:1.0 (fun () -> ())
let disarm eng h = Engine.cancel eng h
