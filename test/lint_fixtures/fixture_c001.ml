(* C001 bait: a closure submitted to the Parallel pool reaches toplevel
   mutable state through a helper — worker domains would race on [shared]. *)

module Parallel = struct
  type t = unit

  let map (_ : t) f xs = List.map f xs
end

let shared : (int, int) Hashtbl.t = Hashtbl.create 16

let record x = Hashtbl.replace shared x x

let go pool xs = Parallel.map pool (fun x -> record x) xs (* BAIT *)
