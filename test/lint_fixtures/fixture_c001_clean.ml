(* C001 clean variant: the pool closure only touches pure helpers; the
   toplevel state exists but is never reachable from a submitted closure. *)

module Parallel = struct
  type t = unit

  let map (_ : t) f xs = List.map f xs
end

let shared : (int, int) Hashtbl.t = Hashtbl.create 16

let record x = Hashtbl.replace shared x x

let pure x = x + 1

let go pool xs = Parallel.map pool (fun x -> pure x) xs

let sequential x = record x
