(* Call-graph construction bait: functor application and first-class-module
   packing. Test_lint asserts that [use_functor] reaches [Impl_a.handle]
   through [F]'s parameter and that [use_pack] reaches [Impl_b.handle]
   through the packed module. *)

module type S = sig
  val handle : int -> int
end

module Impl_a = struct
  let helper x = x + 1
  let handle x = helper x
end

module Impl_b = struct
  let handle x = x * 2
end

module F (P : S) = struct
  let run x = P.handle x
end

module App = F (Impl_a)

let use_functor x = App.run x

let packed = (module Impl_b : S)

let use_pack x =
  let (module M : S) = packed in
  M.handle x
