(* Whole-file suppression: the floating attribute grandfathers every listed
   code below it, so none of the bait here may surface. *)

[@@@ntcu.allow "D001 D002"]

module Opaque : sig
  type t

  val v : t
end = struct
  type t = bool

  let v = true
end

let eq = Opaque.v = Opaque.v
let keys (tbl : (int, string) Hashtbl.t) = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
