(* T-rule clean variant: the same source shapes, each justified with the
   D-counterpart allow annotation — which neutralizes the taint source too. *)

let jitter () = (Random.float [@ntcu.allow "D003"]) 1.0

let sum tbl = (Hashtbl.fold [@ntcu.allow "D002"]) (fun _ v acc -> v +. acc) tbl 0.0

let render x = (string_of_float [@ntcu.allow "D005"]) x

let emit tbl = render (jitter () +. sum tbl)
