(* P002 frame-kind parity bait: the encoder references [kind_pong] but no
   decode* def does — pong frames are handled by an implicit fallthrough. *)

let kind_ping = 0
let kind_pong = 1 (* BAIT *)
let kind_count = 2

let encode kind v =
  if kind = kind_ping then v else if kind = kind_pong then v + 1 else 0

let decode kind v = if kind >= kind_count then 0 else if kind = kind_ping then v else v - 1
