(* P001 bait: a wildcard arm in a dispatch def over a message variant hides
   constructors — [Data] and [Stop] are silently dropped. *)

module Message = struct
  type t = Ping of int | Pong of int | Data of string | Stop
end

let log _ = ()

let handle (m : Message.t) =
  match m with
  | Message.Ping n -> log n
  | Message.Pong n -> log n
  | _ -> () (* BAIT *)
