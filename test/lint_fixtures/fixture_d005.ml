(* D005 bait: lossy float formatting, as it would appear in an emitter. %h is
   exact and must not be flagged. *)

let lossy x = Printf.sprintf "%f" x (* BAIT *)
let lossy_wide x = Printf.sprintf "%12.6f" x (* BAIT *)
let legacy x = string_of_float x (* BAIT *)
let exact x = Printf.sprintf "%h" x
let int_fmt n = Printf.sprintf "%d" n
