(* C002 bait: a pool closure reaches a toplevel owner-guarded handle — the
   worker domain would drive an engine owned by the submitting domain. *)

module Engine = struct
  type t = { mutable now : float }

  let create () = { now = 0.0 }
  let step e = e.now <- e.now +. 1.0
end

module Parallel = struct
  type t = unit

  let map (_ : t) f xs = List.map f xs
end

let engine = Engine.create ()

let tick () = Engine.step engine

let go pool xs = Parallel.map pool (fun _ -> tick ()) xs (* BAIT *)
