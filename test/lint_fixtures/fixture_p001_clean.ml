(* P001 clean variant: total dispatch, one arm per constructor. *)

module Message = struct
  type t = Ping of int | Pong of int | Data of string | Stop
end

let log _ = ()

let handle (m : Message.t) =
  match m with
  | Message.Ping n -> log n
  | Message.Pong n -> log n
  | Message.Data s -> log (String.length s)
  | Message.Stop -> ()
