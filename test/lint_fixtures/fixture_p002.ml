(* P002 constructor-parity bait: the encoder matches [Stop] but the decoder
   never constructs it — a [Stop] frame cannot round-trip. *)

module Message = struct
  type t = Ping of int | Pong of int | Stop
end

let encode (m : Message.t) =
  match m with
  | Message.Ping n -> n
  | Message.Pong n -> n + 1
  | Message.Stop -> 0 (* BAIT *)

let decode k v = if k = 0 then Message.Ping v else Message.Pong v
