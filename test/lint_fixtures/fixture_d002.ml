(* D002 bait: unordered Hashtbl iteration. The annotated site must be
   suppressed by [@ntcu.allow]. *)

let keys_unsorted (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] (* BAIT *)

let print_all (tbl : (int, string) Hashtbl.t) =
  Hashtbl.iter (fun _ v -> print_string v) tbl (* BAIT *)

let allowed (tbl : (int, string) Hashtbl.t) =
  (Hashtbl.iter [@ntcu.allow "D002"]) (fun _ _ -> ()) tbl

let sorted_keys (tbl : (int, string) Hashtbl.t) =
  List.sort Int.compare
    ((Hashtbl.fold [@ntcu.allow "D002"]) (fun k _ acc -> k :: acc) tbl [])
