(* No violations: every rule enabled at once must report nothing here. *)

let double x = x * 2
let greeting = "hello"
let pick = function Some x -> x | None -> 0
let exact x = Printf.sprintf "%h" x
let sorted_keys (tbl : (int, string) Hashtbl.t) =
  List.sort_uniq Int.compare (Hashtbl.to_seq_keys tbl |> List.of_seq)
let fresh_state () = (Hashtbl.create 8 : (int, int) Hashtbl.t)
