(* D001 bait: polymorphic comparison instantiated at an abstract type. Each
   tagged line must produce exactly one finding; untagged lines none. *)

module Opaque : sig
  type t

  val v : t
end = struct
  type t = int list

  let v = [ 1; 2; 3 ]
end

let eq_abstract = Opaque.v = Opaque.v (* BAIT *)
let ne_abstract = Opaque.v <> Opaque.v (* BAIT *)
let cmp_abstract = compare Opaque.v Opaque.v (* BAIT *)
let hash_abstract = Hashtbl.hash Opaque.v (* BAIT *)
let some_abstract = Some Opaque.v = None (* BAIT-OPTION *)
let eq_int = 1 = 2
let eq_pair = ("a", 1) = ("b", 2)
let eq_int_opt = Some 1 = Some 2
