(* P003 bait: the unit arms a cancellable timer but no path from any of its
   defs reaches [Engine.cancel] — the timer leaks past its owner's teardown. *)

module Engine = struct
  type t = unit
  type handle = int

  let schedule_cancellable (_ : t) ~delay:(_ : float) (_ : unit -> unit) : handle = 0
  let cancel (_ : t) (_ : handle) = ()
end

let arm eng =
  ignore (Engine.schedule_cancellable eng ~delay:1.0 (fun () -> ())) (* BAIT *)
