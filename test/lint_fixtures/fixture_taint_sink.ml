(* T-rule bait, sink side: an emitter def whose output depends on every
   nondeterminism source in Fixture_taint_source. *)

let emit tbl =
  Fixture_taint_source.render
    (Fixture_taint_source.jitter () +. Fixture_taint_source.sum tbl)
