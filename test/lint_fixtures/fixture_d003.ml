(* D003 bait: wall clock and ambient Random. Random.State through an explicit
   state is fine — determinism only needs the seed threaded. *)

let wall () = Sys.time () (* BAIT *)
let jitter () = Random.float 1.0 (* BAIT *)
let seeded (st : Random.State.t) = Random.State.float st 1.0
