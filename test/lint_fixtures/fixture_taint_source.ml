(* T-rule bait, source side: nondeterminism sources in a non-emitter unit.
   Harmless on their own (the test classifies this unit clock-allowed, so
   local D003 is out of scope) — but Fixture_taint_sink, classified as an
   emitter, calls every one of them. *)

let jitter () = Random.float 1.0 (* BAIT-T003 *)

let sum tbl = Hashtbl.fold (fun _ v acc -> v +. acc) tbl 0.0 (* BAIT-T002 *)

let render x = string_of_float x (* BAIT-T005 *)
