(* P002 clean variant: constructor and kind coverage agree on both sides. *)

module Message = struct
  type t = Ping of int | Pong of int
end

let encode (m : Message.t) =
  match m with Message.Ping n -> n | Message.Pong n -> n + 1

let decode k v = if k = 0 then Message.Ping v else Message.Pong v

let kind_ping = 0
let kind_pong = 1
let kind_count = 2

let encode_kind kind v =
  if kind = kind_ping then v else if kind = kind_pong then v + 1 else 0

let decode_kind kind v =
  if kind >= kind_count then 0
  else if kind = kind_ping then v
  else if kind = kind_pong then v - 1
  else 0
