(* D004 bait: toplevel mutable state in (nominally) library code. State
   created under a function is per-call and must not be flagged; a toplevel
   lazy is still shared, so it must be. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 16 (* BAIT *)
let counter = ref 0 (* BAIT *)
let scratch = lazy (Buffer.create 64) (* BAIT *)
let fresh () = ref 0

module Nested = struct
  let cache : (string, int) Hashtbl.t = Hashtbl.create 8 (* BAIT *)
end
