(* Tests for the continuous-churn engine (lib/churn): session-sampler
   properties, steady-state driver behavior, byte-identical artifacts across
   Parallel fan-out widths, and the Best_effort claim gating shared with the
   fault CLI. *)

module Rng = Ntcu_std.Rng
module Parallel = Ntcu_std.Parallel
module Params = Ntcu_id.Params
module Session = Ntcu_churn.Session
module Churn = Ntcu_churn.Churn
module Experiment = Ntcu_harness.Experiment
module Report = Ntcu_harness.Report

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---- Session samplers ---- *)

let arb_sampler_case =
  QCheck.(
    triple
      (oneofl ~print:Session.kind_name Session.all_kinds)
      (int_range 1 1_000_000) (int_range 0 1_000_000))

let draws dist seed k =
  let rng = Rng.create seed in
  List.init k (fun _ -> Session.sample dist rng)

let sampler_deterministic =
  qtest "sampler is a pure function of the seed" arb_sampler_case
    (fun (kind, mean_i, seed) ->
      let dist = Session.make kind ~mean:(float_of_int mean_i) in
      List.for_all2 Float.equal (draws dist seed 20) (draws dist seed 20))

let sampler_positive =
  qtest "samples are strictly positive and finite" arb_sampler_case
    (fun (kind, mean_i, seed) ->
      let dist = Session.make kind ~mean:(float_of_int mean_i) in
      List.for_all
        (fun x -> x > 0. && Float.is_finite x)
        (draws dist seed 50))

(* The seeded empirical mean must land near the analytic mean for every
   shape. 20k draws: the worst coefficient of variation here is Pareto at
   alpha = 2.5 (CV ~ 0.9), giving a standard error well under 1% — a 15%
   tolerance has enormous margin while still catching a mis-scaled
   inverse CDF. *)
let empirical_mean_tolerance () =
  let mean = 120_000. and n = 20_000 in
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let dist = Session.make kind ~mean in
          let rng = Rng.create seed in
          let sum = ref 0. in
          for _ = 1 to n do
            sum := !sum +. Session.sample dist rng
          done;
          let emp = !sum /. float_of_int n in
          let rel = Float.abs ((emp /. mean) -. 1.) in
          if rel > 0.15 then
            Alcotest.failf "%s seed %d: empirical mean %.0f vs %.0f (rel %.3f)"
              (Session.kind_name kind) seed emp mean rel)
        [ 1; 7; 42 ])
    Session.all_kinds

let analytic_mean_matches () =
  List.iter
    (fun kind ->
      let dist = Session.make kind ~mean:5_000. in
      check (Alcotest.float 1e-6) (Session.kind_name kind) 5_000. (Session.mean dist))
    Session.all_kinds

let make_rejects_nonpositive_mean () =
  List.iter
    (fun kind ->
      List.iter
        (fun mean ->
          try
            ignore (Session.make kind ~mean : Session.dist);
            Alcotest.failf "%s accepted mean %g" (Session.kind_name kind) mean
          with Invalid_argument _ -> ())
        [ 0.; -1. ])
    Session.all_kinds

let kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Session.kind_of_name (Session.kind_name k) with
      | Some k' when k' = k -> ()
      | Some _ | None ->
        Alcotest.failf "kind name %S does not round-trip" (Session.kind_name k))
    Session.all_kinds;
  check Alcotest.bool "exp alias" true
    (Session.kind_of_name "exp" = Some Session.Exponential);
  check Alcotest.bool "unknown rejected" true (Session.kind_of_name "zipf" = None)

(* ---- Steady-state driver ---- *)

(* A sub-smoke config so runtest stays fast: 40 nodes, one virtual minute. *)
let tiny =
  {
    Churn.smoke with
    n = 40;
    duration = 60_000.;
    half_life = 40_000.;
    sample_every = 10_000.;
    maintenance_every = 5_000.;
    lookups_per_sample = 8;
  }

let driver_tiny_run () =
  let r = Churn.run tiny in
  let s = r.Churn.summary in
  check Alcotest.int "series length = samples" (List.length r.Churn.series)
    s.Churn.samples;
  check Alcotest.bool "at least a handful of samples" true (s.Churn.samples >= 3);
  check Alcotest.bool "drained" true s.Churn.drained;
  check Alcotest.bool "final in_system" true s.Churn.final_in_system;
  check Alcotest.bool "population sustained (best-effort ok)" true
    (Churn.ok ~claim:Experiment.Best_effort r);
  (* Arrivals happened and sessions expired: this was an open system, not a
     static network with a sampler. *)
  check Alcotest.bool "arrivals occurred" true (s.Churn.joins_started > 0);
  check Alcotest.bool "departures occurred" true
    (s.Churn.leaves + s.Churn.crashes + s.Churn.aborted > 0)

let driver_deterministic () =
  let doc r = Report.Json.to_string (Churn.bench_json r) in
  let a = doc (Churn.run tiny) and b = doc (Churn.run tiny) in
  check Alcotest.string "same seed, same artifact" a b;
  let c = doc (Churn.run { tiny with seed = tiny.Churn.seed + 1 }) in
  check Alcotest.bool "different seed, different artifact" true (a <> c)

(* The acceptance property for the sweep: fanned out over 1 worker and over
   4, the whole BENCH document (series, summaries, sweep table) is
   byte-identical. *)
let sweep_jobs_byte_identical () =
  let artifact jobs =
    let pool = Parallel.create ~jobs in
    let sweep = Churn.sweep pool ~base:tiny ~points:2 in
    Parallel.shutdown pool;
    Report.Json.to_string (Churn.bench_json ~sweep (Churn.run tiny))
  in
  check Alcotest.string "jobs=1 vs jobs=4" (artifact 1) (artifact 4)

let sweep_halves_half_life () =
  let pool = Parallel.create ~jobs:1 in
  let w = Churn.sweep pool ~base:tiny ~points:2 in
  Parallel.shutdown pool;
  match w.Churn.points with
  | [ p0; p1 ] ->
    check (Alcotest.float 1e-9) "point 0 at base" tiny.Churn.half_life
      p0.Churn.p_half_life;
    check (Alcotest.float 1e-9) "point 1 halved" (tiny.Churn.half_life /. 2.)
      p1.Churn.p_half_life;
    check Alcotest.bool "seeds offset" true
      (p1.Churn.p_seed = tiny.Churn.seed + 97)
  | _ -> Alcotest.fail "expected 2 points"

(* ---- Best_effort claim gating (shared with `ntcu fault`) ---- *)

(* The canonical residual-hole fixture (Experiment.residual_hole): converges
   live and quiescent with exactly one Def-3.8 violation, so Strict rejects
   it and Best_effort accepts it. This pins the CLI exit-status contract of
   `ntcu fault`. *)
let best_effort_gates_residual_hole () =
  let f = Experiment.residual_hole () in
  check Alcotest.bool "live and quiescent" true
    (Experiment.ok ~claim:Experiment.Best_effort f.Experiment.run);
  check Alcotest.bool "not strictly consistent" false
    (Experiment.ok ~claim:Experiment.Strict f.Experiment.run);
  check Alcotest.bool "default claim is strict" false (Experiment.ok f.Experiment.run)

let suites =
  [
    ( "churn.session",
      [
        sampler_deterministic;
        sampler_positive;
        Alcotest.test_case "empirical mean within tolerance" `Quick
          empirical_mean_tolerance;
        Alcotest.test_case "analytic mean" `Quick analytic_mean_matches;
        Alcotest.test_case "rejects nonpositive mean" `Quick
          make_rejects_nonpositive_mean;
        Alcotest.test_case "kind names round-trip" `Quick kind_names_roundtrip;
      ] );
    ( "churn.driver",
      [
        Alcotest.test_case "tiny steady-state run" `Quick driver_tiny_run;
        Alcotest.test_case "deterministic artifact" `Quick driver_deterministic;
        Alcotest.test_case "sweep byte-identical across jobs" `Quick
          sweep_jobs_byte_identical;
        Alcotest.test_case "sweep halves half-life" `Quick sweep_halves_half_life;
        Alcotest.test_case "best-effort claim gates residual hole" `Quick
          best_effort_gates_residual_hole;
      ] );
  ]
