module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Leave = Ntcu_extensions.Leave
module Optimize = Ntcu_extensions.Optimize
module Experiment = Ntcu_harness.Experiment
module Rng = Ntcu_std.Rng

let check = Alcotest.check
let p = Params.make ~b:4 ~d:6

let build ~seed ~n ~m =
  let run = Experiment.concurrent_joins p ~seed ~n ~m () in
  check Alcotest.int "setup consistent" 0 (List.length (Lazy.force run.violations));
  run

let single_leave_preserves_consistency () =
  let run = build ~seed:1 ~n:20 ~m:10 in
  let victim = List.hd run.joiners in
  (match Leave.leave run.net victim with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "victim gone" false (Network.mem run.net victim);
  check Alcotest.int "still consistent" 0 (List.length (Network.check_consistent run.net))

let many_leaves_preserve_consistency () =
  let run = build ~seed:2 ~n:25 ~m:20 in
  let rng = Rng.create 7 in
  let all = Array.of_list (Network.ids run.net) in
  Rng.shuffle rng all;
  (* Remove half the network, one at a time, checking after each. *)
  let victims = Array.sub all 0 (Array.length all / 2) in
  Array.iter
    (fun victim ->
      (match Leave.leave run.net victim with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      match Network.check_consistent run.net with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "after leave of %a: %a" Id.pp victim Ntcu_table.Check.pp_violation v)
    victims;
  check Alcotest.int "size halved" (Array.length all - Array.length victims)
    (Network.size run.net)

let leave_down_to_one_node () =
  let run = build ~seed:3 ~n:5 ~m:5 in
  let ids = Network.ids run.net in
  let rec drain = function
    | [ _ ] | [] -> ()
    | victim :: rest ->
      (match Leave.leave run.net victim with Ok _ -> () | Error e -> Alcotest.fail e);
      check Alcotest.int "consistent" 0 (List.length (Network.check_consistent run.net));
      drain rest
  in
  drain ids;
  check Alcotest.int "one node left" 1 (Network.size run.net)

let leave_then_join_again () =
  let run = build ~seed:4 ~n:15 ~m:10 in
  let victim = List.hd run.joiners in
  (match Leave.leave run.net victim with Ok _ -> () | Error e -> Alcotest.fail e);
  (* The departed ID can join again through any survivor. *)
  let gateway = List.hd run.seeds in
  Network.start_join run.net ~id:victim ~gateway ();
  Network.run run.net;
  check Alcotest.bool "rejoined" true (Network.all_in_system run.net);
  check Alcotest.int "consistent after rejoin" 0
    (List.length (Network.check_consistent run.net))

let leave_validation () =
  let run = build ~seed:5 ~n:5 ~m:2 in
  (match Leave.leave run.net (Id.of_string p "333333") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown node left");
  (* leaving mid-join is refused *)
  let joiner = Id.of_string p "012301" in
  Network.start_join run.net ~id:joiner ~gateway:(List.hd run.seeds) ();
  match Leave.leave run.net joiner with
  | Error _ -> Network.run run.net
  | Ok _ -> Alcotest.fail "mid-join leave accepted"

(* The handoff contract from leave.mli: the leaver repairs exactly the nodes
   that stored it (its reverse neighbors), each vacated entry is either
   refilled with a suffix-correct substitute that gains the storer as a
   reverse neighbor, or legitimately emptied, and no table references the
   leaver afterwards. *)
let leave_hands_off_entries () =
  let run = build ~seed:11 ~n:25 ~m:15 in
  let net = run.net in
  (* Pick the most-stored node so the handoff actually has work to do. *)
  let victim, storers =
    List.fold_left
      (fun (best, best_rev) node ->
        let rev = Ntcu_table.Table.all_reverse (Node.table node) in
        if Id.Set.cardinal rev > Id.Set.cardinal best_rev then (Node.id node, rev)
        else (best, best_rev))
      (List.hd (Network.ids net), Id.Set.empty)
      (Network.nodes net)
  in
  check Alcotest.bool "victim is stored by someone" true (not (Id.Set.is_empty storers));
  (* Every (storer, level, digit) slot that holds the victim right now. *)
  let slots = ref [] in
  List.iter
    (fun node ->
      Ntcu_table.Table.iter (Node.table node) (fun ~level ~digit y _ ->
          if Id.equal y victim && not (Id.equal (Node.id node) victim) then
            slots := (Node.id node, level, digit) :: !slots))
    (Network.nodes net);
  let storing_nodes =
    List.sort_uniq Id.compare (List.map (fun (s, _, _) -> s) !slots)
  in
  (match Leave.leave net victim with
  | Ok repaired ->
    check Alcotest.int "repaired = nodes that stored the leaver"
      (List.length storing_nodes) repaired
  | Error e -> Alcotest.fail e);
  (* No dangling references to the leaver, anywhere. *)
  List.iter
    (fun node ->
      Ntcu_table.Table.iter (Node.table node) (fun ~level ~digit y _ ->
          if Id.equal y victim then
            Alcotest.failf "%a still stores the leaver at (%d,%d)" Id.pp
              (Node.id node) level digit))
    (Network.nodes net);
  (* Each vacated slot was handed a suffix-correct substitute (or certified
     empty — consistency, checked below, rules out a false negative), and the
     substitute's reverse set learned about the storer. *)
  List.iter
    (fun (storer, level, digit) ->
      match Network.node net storer with
      | None -> ()
      | Some snode -> (
        let table = Node.table snode in
        match Ntcu_table.Table.neighbor table ~level ~digit with
        | None -> ()
        | Some z ->
          check Alcotest.bool "substitute has the required suffix" true
            (Id.has_suffix z (Ntcu_table.Table.required_suffix table ~level ~digit));
          let znode = Option.get (Network.node net z) in
          check Alcotest.bool "substitute registered the storer" true
            (Id.Set.mem storer
               (Ntcu_table.Table.reverse_at (Node.table znode) ~level ~digit))))
    !slots;
  check Alcotest.int "consistent after handoff" 0
    (List.length (Network.check_consistent net))

let leave_many_wrapper () =
  let run = build ~seed:6 ~n:12 ~m:8 in
  let victims = Ntcu_harness.Workload.split 5 run.joiners |> fst in
  (match Leave.leave_many run.net victims with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "consistent" 0 (List.length (Network.check_consistent run.net))

(* --- optimization --- *)

(* Synthetic metric space: hosts on a line, distance = |a - b| by registration
   order hash. Deterministic and asymmetric-free. *)
let line_dist net =
  let ids = Array.of_list (Network.ids net) in
  let position = Id.Tbl.create 64 in
  Array.iteri (fun i id -> Id.Tbl.replace position id (float_of_int i)) ids;
  fun a b ->
    abs_float (Id.Tbl.find position a -. Id.Tbl.find position b)

let optimize_preserves_consistency () =
  let run = build ~seed:7 ~n:30 ~m:20 in
  let dist = line_dist run.net in
  let improved = Optimize.optimize run.net ~dist in
  check Alcotest.bool "some improvement happened" true (improved >= 0);
  check Alcotest.int "still consistent" 0 (List.length (Network.check_consistent run.net))

let optimize_reaches_fixpoint () =
  let run = build ~seed:8 ~n:30 ~m:20 in
  let dist = line_dist run.net in
  ignore (Optimize.optimize ~max_passes:20 run.net ~dist);
  check Alcotest.int "fixpoint: next pass does nothing" 0 (Optimize.pass run.net ~dist)

let optimize_reduces_stretch () =
  let run = build ~seed:9 ~n:40 ~m:30 in
  let dist = line_dist run.net in
  let before = Optimize.average_route_stretch run.net ~dist ~seed:3 ~samples:200 in
  let improved = Optimize.optimize run.net ~dist in
  let after = Optimize.average_route_stretch run.net ~dist ~seed:3 ~samples:200 in
  check Alcotest.bool "improvements found" true (improved > 0);
  if after > before +. 1e-9 then
    Alcotest.failf "stretch worsened: %.3f -> %.3f" before after

(* Swapping an entry for a closer neighbor must keep the RvNghNoti
   bookkeeping intact: after optimization every filled non-self entry is
   still mirrored in the occupant's reverse-neighbor set — the invariant the
   leave and repair layers navigate by. *)
let optimize_preserves_reverse_registration () =
  let run = build ~seed:12 ~n:30 ~m:20 in
  let dist = line_dist run.net in
  let improved = Optimize.optimize run.net ~dist in
  check Alcotest.bool "improvements found" true (improved > 0);
  List.iter
    (fun node ->
      let x = Node.id node in
      Ntcu_table.Table.iter (Node.table node) (fun ~level ~digit y _ ->
          if not (Id.equal x y) then
            let ynode = Option.get (Network.node run.net y) in
            if
              not
                (Id.Set.mem x
                   (Ntcu_table.Table.reverse_at (Node.table ynode) ~level ~digit))
            then
              Alcotest.failf "%a stores %a at (%d,%d) without reverse registration"
                Id.pp x Id.pp y level digit))
    (Network.nodes run.net);
  (* And the reverse sets still support a full leave afterwards. *)
  let victim = List.hd run.joiners in
  (match Leave.leave run.net victim with Ok _ -> () | Error e -> Alcotest.fail e);
  check Alcotest.int "leave after optimize stays consistent" 0
    (List.length (Network.check_consistent run.net))

let optimize_never_self () =
  let run = build ~seed:10 ~n:20 ~m:10 in
  let dist = line_dist run.net in
  ignore (Optimize.optimize run.net ~dist);
  (* Self entries must still be self (distance 0 could tempt a bad swap). *)
  List.iter
    (fun node ->
      let id = Node.id node in
      let table = Node.table node in
      for level = 0 to 5 do
        match Ntcu_table.Table.neighbor table ~level ~digit:(Id.digit id level) with
        | Some occupant -> check Alcotest.bool "self preserved" true (Id.equal occupant id)
        | None -> Alcotest.fail "self entry missing"
      done)
    (Network.nodes run.net)

let suites =
  [
    ( "extensions.leave",
      [
        Alcotest.test_case "single leave" `Quick single_leave_preserves_consistency;
        Alcotest.test_case "many leaves" `Quick many_leaves_preserve_consistency;
        Alcotest.test_case "drain to one" `Quick leave_down_to_one_node;
        Alcotest.test_case "leave then rejoin" `Quick leave_then_join_again;
        Alcotest.test_case "validation" `Quick leave_validation;
        Alcotest.test_case "hands off entries" `Quick leave_hands_off_entries;
        Alcotest.test_case "leave_many" `Quick leave_many_wrapper;
      ] );
    ( "extensions.optimize",
      [
        Alcotest.test_case "preserves consistency" `Quick optimize_preserves_consistency;
        Alcotest.test_case "fixpoint" `Quick optimize_reaches_fixpoint;
        Alcotest.test_case "reduces stretch" `Quick optimize_reduces_stretch;
        Alcotest.test_case "reverse registration kept" `Quick
          optimize_preserves_reverse_registration;
        Alcotest.test_case "self entries kept" `Quick optimize_never_self;
      ] );
  ]
