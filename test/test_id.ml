module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let p45 = Params.make ~b:4 ~d:5
let p16 = Params.make ~b:16 ~d:8

(* Generator for an identifier under params p. *)
let id_gen p =
  let open QCheck.Gen in
  map (fun seed -> Id.random (Rng.create seed) p) int

let arb_id p = QCheck.make ~print:Id.to_string (id_gen p)

let parse_print_example () =
  let id = Id.of_string p45 "21233" in
  check Alcotest.string "roundtrip" "21233" (Id.to_string id);
  check Alcotest.int "digit 0 is rightmost" 3 (Id.digit id 0);
  check Alcotest.int "digit 4 is leftmost" 2 (Id.digit id 4)

let of_string_validates () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Id.of_string: expected 5 characters, got 3") (fun () ->
      ignore (Id.of_string p45 "123"));
  (try
     ignore (Id.of_string p45 "91233");
     Alcotest.fail "digit out of base accepted"
   with Invalid_argument _ -> ())

let hex_parsing () =
  let p = Params.make ~b:16 ~d:4 in
  let id = Id.of_string p "beef" in
  check Alcotest.string "hex roundtrip" "beef" (Id.to_string id);
  check Alcotest.int "f = 15" 15 (Id.digit id 0);
  check Alcotest.int "b = 11" 11 (Id.digit id 3)

let make_validates () =
  (try
     ignore (Id.make p45 [| 0; 1; 2; 3 |]);
     Alcotest.fail "short digit array accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Id.make p45 [| 0; 1; 2; 3; 7 |]);
    Alcotest.fail "digit >= b accepted"
  with Invalid_argument _ -> ()

let csuf_examples () =
  let a = Id.of_string p45 "21233" and b = Id.of_string p45 "01233" in
  check Alcotest.int "csuf 1233" 4 (Id.csuf_len a b);
  let c = Id.of_string p45 "21230" in
  check Alcotest.int "csuf empty" 0 (Id.csuf_len a c);
  check Alcotest.int "csuf with self" 5 (Id.csuf_len a a)

let suffix_examples () =
  let a = Id.of_string p45 "21233" in
  check (Alcotest.array Alcotest.int) "suffix 3" [| 3; 3; 2 |] (Id.suffix a 3);
  check Alcotest.bool "has suffix" true (Id.has_suffix a [| 3; 3 |]);
  check Alcotest.bool "lacks suffix" false (Id.has_suffix a [| 2; 3 |])

let random_with_suffix_respects () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let id = Id.random_with_suffix rng p16 [| 7; 3; 1 |] in
    check Alcotest.bool "suffix present" true (Id.has_suffix id [| 7; 3; 1 |])
  done

let csuf_symmetric =
  qtest "csuf symmetric" QCheck.(pair (arb_id p45) (arb_id p45)) (fun (a, b) ->
      Id.csuf_len a b = Id.csuf_len b a)

let csuf_reflexive = qtest "csuf(x,x) = d" (arb_id p45) (fun a -> Id.csuf_len a a = 5)

let csuf_equal_iff_d =
  qtest "csuf = d iff equal" QCheck.(pair (arb_id p45) (arb_id p45)) (fun (a, b) ->
      Id.csuf_len a b = 5 = Id.equal a b)

let roundtrip_random =
  qtest "to_string/of_string roundtrip" (arb_id p16) (fun a ->
      Id.equal a (Id.of_string p16 (Id.to_string a)))

let csuf_triangle =
  qtest "csuf ultrametric: csuf(a,c) >= min(csuf(a,b), csuf(b,c))"
    QCheck.(triple (arb_id p45) (arb_id p45) (arb_id p45))
    (fun (a, b, c) -> Id.csuf_len a c >= min (Id.csuf_len a b) (Id.csuf_len b c))

let compare_total_order =
  qtest "compare consistent with textual order" QCheck.(pair (arb_id p16) (arb_id p16))
    (fun (a, b) ->
      let by_id = compare (Id.compare a b) 0 in
      let by_str = compare (compare (Id.to_string a) (Id.to_string b)) 0 in
      by_id = by_str)

let suffix_matches_csuf =
  qtest "has_suffix via csuf" QCheck.(pair (arb_id p45) (arb_id p45)) (fun (a, b) ->
      let k = Id.csuf_len a b in
      Id.has_suffix a (Id.suffix b k)
      && (k = 5 || not (Id.has_suffix a (Id.suffix b (k + 1)))))

let set_map_usable () =
  let rng = Rng.create 1 in
  let ids = List.init 100 (fun _ -> Id.random rng p16) in
  let set = Id.Set.of_list ids in
  List.iter (fun id -> check Alcotest.bool "set member" true (Id.Set.mem id set)) ids;
  let tbl = Id.Tbl.create 16 in
  List.iteri (fun i id -> Id.Tbl.replace tbl id i) ids;
  check Alcotest.bool "tbl lookups" true
    (List.for_all (fun id -> Id.Tbl.mem tbl id) ids)

let pp_suffix_renders () =
  check Alcotest.string "suffix text" "261" (Fmt.str "%a" Id.pp_suffix [| 1; 6; 2 |]);
  check Alcotest.string "empty suffix" "" (Fmt.str "%a" Id.pp_suffix [||])

let suites =
  [
    ( "id",
      [
        Alcotest.test_case "parse/print example" `Quick parse_print_example;
        Alcotest.test_case "of_string validates" `Quick of_string_validates;
        Alcotest.test_case "hex parsing" `Quick hex_parsing;
        Alcotest.test_case "make validates" `Quick make_validates;
        Alcotest.test_case "csuf examples" `Quick csuf_examples;
        Alcotest.test_case "suffix examples" `Quick suffix_examples;
        Alcotest.test_case "random_with_suffix" `Quick random_with_suffix_respects;
        Alcotest.test_case "sets and tables" `Quick set_map_usable;
        Alcotest.test_case "pp_suffix" `Quick pp_suffix_renders;
        csuf_symmetric;
        csuf_reflexive;
        csuf_equal_iff_d;
        roundtrip_random;
        csuf_triangle;
        compare_total_order;
        suffix_matches_csuf;
      ] );
  ]
