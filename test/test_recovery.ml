module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Recovery = Ntcu_extensions.Recovery
module Repair = Ntcu_extensions.Repair
module Leave_protocol = Ntcu_extensions.Leave_protocol
module Experiment = Ntcu_harness.Experiment

let check = Alcotest.check
let p = Params.make ~b:4 ~d:6

let build ~seed ~n ~m =
  let run = Experiment.concurrent_joins p ~seed ~n ~m () in
  check Alcotest.int "setup consistent" 0 (List.length (Lazy.force run.violations));
  run

(* Consistency of the surviving network only. *)
let survivors_consistent net =
  Ntcu_table.Check.violations (Network.tables net)

let fail_marks_node () =
  let run = build ~seed:1 ~n:10 ~m:5 in
  let victim = List.hd run.joiners in
  Network.fail run.net victim;
  check Alcotest.bool "failed" true (Network.is_failed run.net victim);
  check Alcotest.bool "still registered" true (Network.mem run.net victim);
  check Alcotest.int "live shrinks" 14 (List.length (Network.live_ids run.net));
  (try
     Network.fail run.net victim;
     Alcotest.fail "double fail accepted"
   with Invalid_argument _ -> ());
  (* Messages to a failed node are dropped, not delivered. *)
  Network.start_join run.net ~id:(Id.of_string p "333333") ~gateway:victim ();
  Network.run run.net;
  check Alcotest.bool "dropped counted" true (Network.messages_dropped run.net > 0)

let single_failure_repaired () =
  let run = build ~seed:2 ~n:20 ~m:10 in
  Network.fail run.net (List.hd run.joiners);
  check Alcotest.bool "broken before repair" false (survivors_consistent run.net = []);
  let report = Recovery.repair run.net in
  check Alcotest.int "consistent after repair" 0 (List.length (survivors_consistent run.net));
  check Alcotest.bool "scrubbed something" true (report.scrubbed > 0);
  check Alcotest.int "survivors" 29 report.survivors

let mass_failure_repaired () =
  List.iter
    (fun fraction ->
      let run = build ~seed:3 ~n:40 ~m:30 in
      let victims = Recovery.fail_random run.net ~seed:5 ~fraction in
      check Alcotest.bool "some victims" true (List.length victims > 0);
      let report = Recovery.repair run.net in
      (match survivors_consistent run.net with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "fraction %.2f: %a" fraction Ntcu_table.Check.pp_violation v);
      check Alcotest.bool "accounting adds up" true
        (report.scrubbed
        = report.repaired_backup + report.repaired_local + report.repaired_flood
          + report.emptied))
    [ 0.1; 0.3; 0.5 ]

let repair_is_idempotent () =
  let run = build ~seed:4 ~n:25 ~m:15 in
  ignore (Recovery.fail_random run.net ~seed:6 ~fraction:0.25);
  ignore (Recovery.repair run.net);
  let second = Recovery.repair run.net in
  check Alcotest.int "nothing to scrub" 0 second.scrubbed;
  check Alcotest.int "nothing repaired" 0 (second.repaired_local + second.repaired_flood)

let join_after_recovery () =
  let run = build ~seed:5 ~n:20 ~m:10 in
  ignore (Recovery.fail_random run.net ~seed:7 ~fraction:0.3);
  ignore (Recovery.repair run.net);
  (* The repaired network accepts new joins. *)
  let gateway = List.find (fun id -> not (Network.is_failed run.net id)) run.seeds in
  let fresh =
    Ntcu_harness.Workload.distinct_ids
      ~avoid:(Id.Set.of_list (Network.ids run.net))
      (Ntcu_std.Rng.create 9) p ~n:5
  in
  List.iter (fun id -> Network.start_join run.net ~id ~gateway ()) fresh;
  Network.run run.net;
  List.iter
    (fun id ->
      check Alcotest.bool "new joiner in system" true
        (Node.status (Network.node_exn run.net id) = Node.In_system))
    fresh;
  check Alcotest.int "consistent with new joiners" 0
    (List.length (survivors_consistent run.net))

let repair_find_live_tiers () =
  let run = build ~seed:6 ~n:30 ~m:10 in
  let node = Network.node_exn run.net (List.hd run.seeds) in
  let table = Node.table node in
  (* A suffix carried by a direct neighbor: local hit. *)
  let neighbor =
    match
      Ntcu_table.Table.fold table ~init:None ~f:(fun acc ~level:_ ~digit:_ n _ ->
          if acc = None && not (Id.equal n (Node.id node)) then Some n else acc)
    with
    | Some n -> n
    | None -> Alcotest.fail "no neighbor"
  in
  (match Repair.find_live run.net ~owner:table ~suffix:(Id.suffix neighbor 1) with
  | Repair.Found_local _ -> ()
  | other -> Alcotest.failf "expected local hit, got %a" Repair.pp_outcome other);
  (* A suffix carried by nobody: Not_found. *)
  let impossible = Array.make 6 3 in
  let all = Network.ids run.net in
  if not (List.exists (fun id -> Id.has_suffix id impossible) all) then begin
    match Repair.find_live run.net ~owner:table ~suffix:impossible with
    | Repair.Not_found _ -> ()
    | other -> Alcotest.failf "expected not-found, got %a" Repair.pp_outcome other
  end;
  (* Exclusion is honoured. *)
  match
    Repair.find_live ~exclude:(Id.equal neighbor) run.net ~owner:table
      ~suffix:(Id.suffix neighbor 6)
  with
  | Repair.Not_found _ -> ()
  | other -> Alcotest.failf "exclusion ignored: %a" Repair.pp_outcome other

let repair_requires_quiescence () =
  let run = build ~seed:20 ~n:10 ~m:5 in
  (* A scheduled join leaves events pending: the offline repair pass reads
     and rewrites every table, so running it mid-flight would race with
     in-transit messages. *)
  Network.start_join run.net ~id:(Id.of_string p "333333") ~gateway:(List.hd run.seeds) ();
  check Alcotest.bool "not quiescent" false (Network.is_quiescent run.net);
  (try
     ignore (Recovery.repair run.net);
     Alcotest.fail "repair accepted a busy network"
   with Invalid_argument _ -> ());
  (* Draining the network makes the same call legal again. *)
  Network.run run.net;
  ignore (Recovery.repair run.net);
  check Alcotest.int "consistent" 0 (List.length (survivors_consistent run.net))

(* --- message-level leave protocol --- *)

let leave_protocol_single () =
  let run = build ~seed:7 ~n:20 ~m:10 in
  let lp = Leave_protocol.create run.net in
  let victim = List.hd run.joiners in
  Leave_protocol.request_leave lp victim;
  Leave_protocol.run lp;
  let r = Leave_protocol.report lp in
  check Alcotest.int "departed" 1 r.departed;
  check Alcotest.bool "gone" false (Network.mem run.net victim);
  check Alcotest.bool "messages flowed" true (r.messages > 0);
  check Alcotest.int "consistent" 0 (List.length (survivors_consistent run.net))

let leave_protocol_concurrent () =
  List.iter
    (fun seed ->
      let run = build ~seed ~n:25 ~m:20 in
      let lp = Leave_protocol.create run.net in
      (* A third of the network leaves at once, including adjacent nodes. *)
      let victims = fst (Ntcu_harness.Workload.split 15 (Network.ids run.net)) in
      List.iter (fun id -> Leave_protocol.request_leave lp id) victims;
      Leave_protocol.run lp;
      let r = Leave_protocol.report lp in
      check Alcotest.int "all departed" 15 r.departed;
      match survivors_consistent run.net with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "seed %d: %a (%a)" seed Ntcu_table.Check.pp_violation v
          Leave_protocol.pp_report r)
    [ 11; 12; 13; 14; 15 ]

let leave_protocol_staggered () =
  let run = build ~seed:16 ~n:20 ~m:20 in
  let lp = Leave_protocol.create run.net in
  let victims = fst (Ntcu_harness.Workload.split 10 run.joiners) in
  let now = Ntcu_sim.Engine.now (Network.engine run.net) in
  List.iteri
    (fun i id -> Leave_protocol.request_leave lp ~at:(now +. (float_of_int i *. 2.)) id)
    victims;
  Leave_protocol.run lp;
  check Alcotest.int "all departed" 10 (Leave_protocol.report lp).departed;
  check Alcotest.int "consistent" 0 (List.length (survivors_consistent run.net))

let leave_protocol_ignores_bad_requests () =
  let run = build ~seed:17 ~n:8 ~m:4 in
  let lp = Leave_protocol.create run.net in
  (* Unknown node and double request: both harmless. *)
  Leave_protocol.request_leave lp (Id.of_string p "333333");
  let victim = List.hd run.joiners in
  Leave_protocol.request_leave lp victim;
  Leave_protocol.request_leave lp victim;
  Leave_protocol.run lp;
  check Alcotest.int "departed once" 1 (Leave_protocol.report lp).departed;
  check Alcotest.int "consistent" 0 (List.length (survivors_consistent run.net))

let leave_then_fail_then_recover () =
  (* Combined churn: leaves, then crashes, then recovery. *)
  let run = build ~seed:18 ~n:30 ~m:20 in
  let lp = Leave_protocol.create run.net in
  List.iter (fun id -> Leave_protocol.request_leave lp id)
    (fst (Ntcu_harness.Workload.split 8 run.joiners));
  Leave_protocol.run lp;
  ignore (Recovery.fail_random run.net ~seed:19 ~fraction:0.2);
  ignore (Recovery.repair run.net);
  check Alcotest.int "consistent after combined churn" 0
    (List.length (survivors_consistent run.net))

let suites =
  [
    ( "extensions.recovery",
      [
        Alcotest.test_case "fail semantics" `Quick fail_marks_node;
        Alcotest.test_case "single failure" `Quick single_failure_repaired;
        Alcotest.test_case "mass failure" `Quick mass_failure_repaired;
        Alcotest.test_case "idempotent" `Quick repair_is_idempotent;
        Alcotest.test_case "join after recovery" `Quick join_after_recovery;
        Alcotest.test_case "find_live tiers" `Quick repair_find_live_tiers;
        Alcotest.test_case "requires quiescence" `Quick repair_requires_quiescence;
      ] );
    ( "extensions.leave_protocol",
      [
        Alcotest.test_case "single leave" `Quick leave_protocol_single;
        Alcotest.test_case "concurrent leaves" `Quick leave_protocol_concurrent;
        Alcotest.test_case "staggered leaves" `Quick leave_protocol_staggered;
        Alcotest.test_case "bad requests" `Quick leave_protocol_ignores_bad_requests;
        Alcotest.test_case "leaves + failures" `Quick leave_then_fail_then_recover;
      ] );
  ]
