module Params = Ntcu_id.Params
module Experiment = Ntcu_harness.Experiment

let check = Alcotest.check
let p = Params.make ~b:4 ~d:6

let sequential_is_consistent () =
  let r = Experiment.baseline_run p ~seed:1 ~n:40 ~m:25 ~concurrent:false in
  check Alcotest.bool "done" true r.base_done;
  check Alcotest.int "consistent" 0 r.base_violations

let sequential_keeps_state_at_existing_nodes () =
  let r = Experiment.baseline_run p ~seed:2 ~n:40 ~m:25 ~concurrent:false in
  check Alcotest.bool "pending slots used" true (r.pending_slots > 0);
  check Alcotest.bool "peak pending positive" true (r.peak_pending >= 1)

let concurrent_dependent_joins_break_it () =
  (* The motivating failure: across seeds, concurrent joins into a small
     network leave inconsistencies often (joiners that never learn of each
     other). The paper's protocol never does — same workload shape is covered
     by test_protocol. *)
  let broken = ref 0 in
  for seed = 1 to 10 do
    let r = Experiment.baseline_run p ~seed ~n:10 ~m:30 ~concurrent:true in
    if r.base_violations > 0 then incr broken
  done;
  check Alcotest.bool "baseline breaks under concurrency" true (!broken >= 5)

let our_protocol_same_workload_is_consistent () =
  for seed = 1 to 10 do
    let run = Experiment.concurrent_joins p ~seed ~n:10 ~m:30 () in
    check Alcotest.int "ours consistent" 0 (List.length (Lazy.force run.violations))
  done

let our_protocol_has_no_state_at_existing_nodes () =
  (* Structural claim: seed nodes never hold join-process state. The node
     record exposes the queues; for seeds they must stay empty. *)
  let run = Experiment.concurrent_joins p ~seed:3 ~n:30 ~m:30 () in
  List.iter
    (fun id ->
      let node = Ntcu_core.Network.node_exn run.net id in
      check Alcotest.int "no pending replies at seeds" 0
        (Ntcu_core.Node.pending_replies node);
      check Alcotest.int "no queued join waits at seeds" 0
        (Ntcu_core.Node.queued_join_waits node))
    run.seeds

let message_counts_populated () =
  let r = Experiment.baseline_run p ~seed:4 ~n:20 ~m:10 ~concurrent:false in
  check Alcotest.bool "messages counted" true (r.base_messages > 0)

let suites =
  [
    ( "baseline.multicast",
      [
        Alcotest.test_case "sequential consistent" `Quick sequential_is_consistent;
        Alcotest.test_case "state at existing nodes" `Quick sequential_keeps_state_at_existing_nodes;
        Alcotest.test_case "concurrency breaks baseline" `Quick concurrent_dependent_joins_break_it;
        Alcotest.test_case "ours survives same workload" `Quick our_protocol_same_workload_is_consistent;
        Alcotest.test_case "ours: no state at existing nodes" `Quick
          our_protocol_has_no_state_at_existing_nodes;
        Alcotest.test_case "message counting" `Quick message_counts_populated;
      ] );
  ]
