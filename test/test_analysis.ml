module Params = Ntcu_id.Params
module Logmath = Ntcu_analysis.Logmath
module Join_cost = Ntcu_analysis.Join_cost
module Experiment = Ntcu_harness.Experiment

let check = Alcotest.check

let log_gamma_known_values () =
  let cases =
    [
      (1., 0.);
      (2., 0.);
      (3., log 2.);
      (4., log 6.);
      (5., log 24.);
      (0.5, 0.5 *. log Float.pi);
    ]
  in
  List.iter
    (fun (x, expected) ->
      check (Alcotest.float 1e-9) (Printf.sprintf "lgamma %g" x) expected
        (Logmath.log_gamma x))
    cases

let log_gamma_huge () =
  (* Stirling check at 1e10:
     lgamma(x) ~ (x - 1/2) ln x - x + (1/2) ln(2 pi) + 1/(12 x). *)
  let x = 1e10 in
  let stirling =
    ((x -. 0.5) *. log x) -. x +. (0.5 *. log (2. *. Float.pi)) +. (1. /. (12. *. x))
  in
  let got = Logmath.log_gamma x in
  check Alcotest.bool "relative error tiny" true
    (abs_float (got -. stirling) /. stirling < 1e-10)

let log_factorial_matches () =
  check (Alcotest.float 1e-9) "10!" (log 3628800.) (Logmath.log_factorial 10);
  check (Alcotest.float 1e-6) "cache boundary consistent"
    (Logmath.log_gamma 20001.) (Logmath.log_factorial 20000)

let log_binomial_small_exact () =
  let cases = [ ((10., 3), 120.); ((5., 0), 1.); ((5., 5), 1.); ((52., 5), 2598960.) ] in
  List.iter
    (fun ((n, k), expected) ->
      check (Alcotest.float 1e-6)
        (Printf.sprintf "C(%g,%d)" n k)
        (log expected) (Logmath.log_binomial n k))
    cases;
  check Alcotest.bool "k > n" true (Logmath.log_binomial 3. 5 = neg_infinity)

let log_binomial_huge_stable () =
  (* C(N, k) with N ~ 1e48: log C ~ k log N - log k! to excellent accuracy. *)
  let n = 1.5e48 and k = 1000 in
  let approx = (float_of_int k *. log n) -. Logmath.log_factorial k in
  let got = Logmath.log_binomial n k in
  check Alcotest.bool "stable at 1e48" true (abs_float (got -. approx) < 1e-6 *. abs_float approx)

let log_sum_basics () =
  check (Alcotest.float 1e-9) "log(1+1)" (log 2.) (Logmath.log_sum [ 0.; 0. ]);
  check (Alcotest.float 1e-9) "dominant term" 1000. (Logmath.log_sum [ 1000.; -1000. ]);
  check Alcotest.bool "empty" true (Logmath.log_sum [] = neg_infinity);
  let acc = Logmath.Accum.create () in
  List.iter (Logmath.Accum.add acc) [ log 1.; log 2.; log 3. ];
  check (Alcotest.float 1e-9) "accum" (log 6.) (Logmath.Accum.log_total acc)

let probabilities_sum_to_one () =
  List.iter
    (fun (b, d, n) ->
      let p = Params.make ~b ~d in
      let probs = Join_cost.level_probabilities p ~n in
      let total = Array.fold_left ( +. ) 0. probs in
      check (Alcotest.float 1e-9) (Printf.sprintf "b=%d d=%d n=%d" b d n) 1.0 total;
      Array.iter (fun x -> check Alcotest.bool "in [0,1]" true (x >= 0. && x <= 1.)) probs)
    [ (4, 5, 50); (16, 8, 3096); (16, 40, 7192); (2, 10, 100); (16, 8, 100000) ]

let matches_monte_carlo () =
  let p = Params.make ~b:4 ~d:5 in
  let exact = Join_cost.level_probabilities p ~n:50 in
  let mc = Join_cost.simulate_level_probabilities ~seed:9 ~samples:3000 p ~n:50 in
  Array.iteri
    (fun i e ->
      if abs_float (e -. mc.(i)) > 0.03 then
        Alcotest.failf "P_%d: exact %.4f vs mc %.4f" i e mc.(i))
    exact

let paper_bound_values () =
  (* Section 5.2: "the upper bounds by Theorem 5 are 8.001, 8.001, 6.986, and
     6.986, respectively" for (n, d) = (3096, 8), (3096, 40), (7192, 8),
     (7192, 40), all with m = 1000, b = 16. *)
  List.iter
    (fun (n, d, expected) ->
      let p = Params.make ~b:16 ~d in
      check (Alcotest.float 0.005)
        (Printf.sprintf "bound n=%d d=%d" n d)
        expected
        (Join_cost.theorem5_bound p ~n ~m:1000))
    [ (3096, 8, 8.001); (3096, 40, 8.001); (7192, 8, 6.986); (7192, 40, 6.986) ]

let bound_dominates_single_join () =
  List.iter
    (fun (b, d, n) ->
      let p = Params.make ~b ~d in
      let e = Join_cost.expected_join_noti p ~n in
      let bound = Join_cost.theorem5_bound p ~n ~m:1 in
      check Alcotest.bool "E(J) below bound" true (e <= bound))
    [ (16, 8, 3096); (4, 6, 100); (8, 5, 500) ]

let bound_monotone_in_m () =
  let p = Params.make ~b:16 ~d:8 in
  let b1 = Join_cost.theorem5_bound p ~n:3096 ~m:500 in
  let b2 = Join_cost.theorem5_bound p ~n:3096 ~m:1000 in
  check Alcotest.bool "more joiners, larger bound" true (b2 > b1)

let d_insensitive_beyond_reach () =
  (* With b = 16 and n ~ thousands, levels above ~4 are unreachable, so d = 8
     and d = 40 give the same distribution (the paper's curves coincide). *)
  let p8 = Params.make ~b:16 ~d:8 and p40 = Params.make ~b:16 ~d:40 in
  List.iter
    (fun n ->
      check (Alcotest.float 1e-3) (Printf.sprintf "n=%d" n)
        (Join_cost.theorem5_bound p8 ~n ~m:500)
        (Join_cost.theorem5_bound p40 ~n ~m:500))
    [ 1000; 3096; 10000 ]

let expected_matches_simulated_single_joins () =
  (* Theorem 4 validation: average J over many single joins approaches the
     closed form. *)
  let p = Params.make ~b:4 ~d:6 in
  let n = 60 in
  let expected = Join_cost.expected_join_noti p ~n in
  let total = ref 0 and runs = 40 in
  for seed = 1 to runs do
    let run = Experiment.concurrent_joins p ~seed:(1000 + seed) ~n ~m:1 () in
    (if not (Experiment.consistent run) then Alcotest.fail "inconsistent");
    total := !total + run.join_noti.(0)
  done;
  let avg = float_of_int !total /. float_of_int runs in
  if abs_float (avg -. expected) > 1.0 then
    Alcotest.failf "Theorem 4 mismatch: simulated %.3f vs expected %.3f" avg expected

let theorem3_bound_value () =
  check Alcotest.int "d+1" 9 (Join_cost.theorem3_bound (Params.make ~b:16 ~d:8))

let fig15a_series_shape () =
  let series = Experiment.fig15a_series ~b:16 ~d:8 ~m:500 ~ns:[ 10000; 50000; 100000 ] in
  check Alcotest.int "points" 3 (List.length series);
  List.iter
    (fun (_, bound) -> check Alcotest.bool "positive and small" true (bound > 1. && bound < 20.))
    series

let suites =
  [
    ( "analysis.logmath",
      [
        Alcotest.test_case "log_gamma known" `Quick log_gamma_known_values;
        Alcotest.test_case "log_gamma huge" `Quick log_gamma_huge;
        Alcotest.test_case "log_factorial" `Quick log_factorial_matches;
        Alcotest.test_case "log_binomial small" `Quick log_binomial_small_exact;
        Alcotest.test_case "log_binomial huge" `Quick log_binomial_huge_stable;
        Alcotest.test_case "log_sum" `Quick log_sum_basics;
      ] );
    ( "analysis.join_cost",
      [
        Alcotest.test_case "P_i sums to 1" `Quick probabilities_sum_to_one;
        Alcotest.test_case "P_i vs Monte Carlo" `Quick matches_monte_carlo;
        Alcotest.test_case "paper bound values" `Quick paper_bound_values;
        Alcotest.test_case "bound dominates E(J)" `Quick bound_dominates_single_join;
        Alcotest.test_case "bound monotone in m" `Quick bound_monotone_in_m;
        Alcotest.test_case "d-insensitivity" `Quick d_insensitive_beyond_reach;
        Alcotest.test_case "Theorem 4 vs simulation" `Slow expected_matches_simulated_single_joins;
        Alcotest.test_case "Theorem 3 value" `Quick theorem3_bound_value;
        Alcotest.test_case "Figure 15a series" `Quick fig15a_series_shape;
      ] );
  ]
