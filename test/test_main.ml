let () =
  Alcotest.run "ntcu"
    (List.concat
       [
         Test_rng.suites;
         Test_parallel.suites;
         Test_pqueue.suites;
         Test_stats.suites;
         Test_id.suites;
         Test_engine.suites;
         Test_topology.suites;
         Test_table.suites;
         Test_message.suites;
         Test_codec.suites;
         Test_node.suites;
         Test_protocol.suites;
         Test_cset.suites;
         Test_routing.suites;
         Test_analysis.suites;
         Test_baseline.suites;
         Test_extensions.suites;
         Test_recovery.suites;
         Test_dynamics.suites;
         Test_resilience.suites;
         Test_harness.suites;
         Test_properties.suites;
         Test_goldentrace.suites;
       ])
