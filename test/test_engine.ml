module Engine = Ntcu_sim.Engine
module Latency = Ntcu_sim.Latency
module Trace = Ntcu_sim.Trace

let check = Alcotest.check

let fires_in_time_order () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.schedule e ~delay:3. (fun () -> order := 3 :: !order);
  Engine.schedule e ~delay:1. (fun () -> order := 1 :: !order);
  Engine.schedule e ~delay:2. (fun () -> order := 2 :: !order);
  Engine.run e;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !order)

let ties_fire_in_schedule_order () =
  let e = Engine.create () in
  let order = ref [] in
  List.iter
    (fun i -> Engine.schedule e ~delay:1. (fun () -> order := i :: !order))
    [ 1; 2; 3; 4 ];
  Engine.run e;
  check Alcotest.(list int) "fifo on ties" [ 1; 2; 3; 4 ] (List.rev !order)

let clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:5. (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule e ~delay:2. (fun () ->
      seen := Engine.now e :: !seen;
      (* nested scheduling is relative to current time *)
      Engine.schedule e ~delay:1. (fun () -> seen := Engine.now e :: !seen));
  Engine.run e;
  check Alcotest.(list (float 1e-9)) "timestamps" [ 2.; 3.; 5. ] (List.rev !seen)

let rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1. (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.) (fun () -> ()));
  try
    Engine.schedule_at e ~time:0.5 (fun () -> ());
    Alcotest.fail "past schedule accepted"
  with Invalid_argument _ -> ()

let run_until_partial () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule e ~delay:t (fun () -> fired := t :: !fired))
    [ 1.; 2.; 3.; 4. ];
  Engine.run_until e ~time:2.5;
  check Alcotest.(list (float 1e-9)) "only early events" [ 1.; 2. ] (List.rev !fired);
  check Alcotest.int "pending remainder" 2 (Engine.pending e);
  check (Alcotest.float 1e-9) "clock at target" 2.5 (Engine.now e);
  Engine.run e;
  check Alcotest.int "all fired" 4 (List.length !fired)

let livelock_guard () =
  let e = Engine.create () in
  let rec reschedule () = Engine.schedule e ~delay:1. reschedule in
  reschedule ();
  try
    Engine.run ~max_events:1000 e;
    Alcotest.fail "livelock not detected"
  with Failure _ -> ()

let counts_events () =
  let e = Engine.create () in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1. (fun () -> ())
  done;
  Engine.run e;
  check Alcotest.int "processed" 10 (Engine.events_processed e)

let cancel_prevents_firing () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:1. (fun () -> fired := "a" :: !fired);
  let h = Engine.schedule_cancellable e ~delay:2. (fun () -> fired := "x" :: !fired) in
  Engine.schedule e ~delay:3. (fun () -> fired := "b" :: !fired);
  check Alcotest.bool "not yet cancelled" false (Engine.cancelled h);
  Engine.cancel e h;
  check Alcotest.bool "cancelled" true (Engine.cancelled h);
  (* Eager deletion: the event leaves the queue immediately... *)
  check Alcotest.int "still pending" 2 (Engine.pending e);
  check Alcotest.int "cancelled count" 1 (Engine.events_cancelled e);
  Engine.run e;
  (* ...and never fires nor counts as processed. *)
  check Alcotest.(list string) "only live events" [ "a"; "b" ] (List.rev !fired);
  check Alcotest.int "popped" 2 (Engine.events_processed e)

let cancel_after_fire_is_noop () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = Engine.schedule_cancellable e ~delay:1. (fun () -> incr count) in
  Engine.run e;
  check Alcotest.int "fired once" 1 !count;
  Engine.cancel e h;
  Engine.cancel e h;
  check Alcotest.bool "marked" true (Engine.cancelled h);
  Engine.run e;
  check Alcotest.int "never refires" 1 !count

let cancellable_rejects_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_cancellable: negative delay") (fun () ->
      ignore (Engine.schedule_cancellable e ~delay:(-1.) (fun () -> ())))

(* Cancellation must not perturb the firing order of the surviving events:
   two engines with the same schedule — one holding a cancelled timer between
   ties — observe identical order and timestamps. *)
let cancellation_preserves_determinism () =
  let run ~with_cancelled =
    let e = Engine.create () in
    let log = ref [] in
    let note tag () = log := (Engine.now e, tag) :: !log in
    Engine.schedule e ~delay:1. (note "a1");
    (if with_cancelled then
       let h = Engine.schedule_cancellable e ~delay:1. (note "dead") in
       Engine.cancel e h);
    Engine.schedule e ~delay:1. (note "a2");
    Engine.schedule e ~delay:2. (note "b");
    (* Cancel mid-run too: a timer revoked from inside an earlier event. *)
    let h2 = ref None in
    Engine.schedule e ~delay:1.5 (fun () ->
        match !h2 with Some h -> Engine.cancel e h | None -> ());
    h2 := Some (Engine.schedule_cancellable e ~delay:1.75 (note "dead2"));
    Engine.run e;
    List.rev !log
  in
  let plain = run ~with_cancelled:false in
  let with_cancelled = run ~with_cancelled:true in
  check
    Alcotest.(list (pair (float 1e-9) string))
    "same observable run" plain with_cancelled;
  (* And the run is reproducible wholesale. *)
  check
    Alcotest.(list (pair (float 1e-9) string))
    "replay identical" with_cancelled (run ~with_cancelled:true)

(* The timer-leak debug registry: tracks every cancellable handle, prunes
   handles that left the queue, and proves "no cancelled timer remains
   queued" when the engine drains. The churn driver runs with this on in its
   smoke config — hours of steady state multiply any cancel/index drift. *)
let debug_timer_leak_check () =
  let e = Engine.create () in
  Engine.set_debug_timers e true;
  check Alcotest.int "registry empty" 0 (Engine.debug_tracked_timers e);
  let fired = ref 0 in
  let h1 = Engine.schedule_cancellable e ~delay:1. (fun () -> incr fired) in
  let _h2 = Engine.schedule_cancellable e ~delay:2. (fun () -> incr fired) in
  check Alcotest.int "both tracked" 2 (Engine.debug_tracked_timers e);
  Engine.cancel e h1;
  (* Eager deletion removed the cancelled event; the check prunes its handle
     without complaint. *)
  Engine.assert_no_timer_leaks e;
  check Alcotest.int "cancelled handle pruned" 1 (Engine.debug_tracked_timers e);
  (* run drains the queue and re-checks automatically. *)
  Engine.run e;
  check Alcotest.int "only the live timer fired" 1 !fired;
  check Alcotest.int "registry drained" 0 (Engine.debug_tracked_timers e);
  (* Disabling clears the registry and makes the check a no-op. *)
  ignore (Engine.schedule_cancellable e ~delay:1. (fun () -> ()) : Engine.handle);
  Engine.set_debug_timers e false;
  check Alcotest.int "tracking off" 0 (Engine.debug_tracked_timers e);
  Engine.assert_no_timer_leaks e;
  Engine.run e

let latency_constant () =
  let l = Latency.constant 2.5 in
  check (Alcotest.float 1e-9) "constant" 2.5 (Latency.sample l ~src:0 ~dst:1)

let latency_uniform_range () =
  let l = Latency.uniform ~seed:1 ~lo:1. ~hi:5. in
  for _ = 1 to 100 do
    let v = Latency.sample l ~src:0 ~dst:1 in
    if v < 1. || v >= 5. then Alcotest.failf "uniform out of range: %f" v
  done

let latency_distance_jitter () =
  let l = Latency.of_distance ~jitter:0.1 ~seed:2 (fun ~src ~dst -> float_of_int (src + dst)) in
  for _ = 1 to 50 do
    let v = Latency.sample l ~src:3 ~dst:4 in
    if v < 7. || v > 7.7 +. 1e-9 then Alcotest.failf "jittered out of range: %f" v
  done

let latency_min_delay () =
  check Alcotest.bool "epsilon positive" true (Latency.min_delay > 0.);
  (* Zero-distance (co-located) endpoints still get a strictly positive
     delay, clamped to the epsilon — virtual time must always advance. *)
  let l = Latency.of_distance (fun ~src:_ ~dst:_ -> 0.) in
  check (Alcotest.float 0.) "clamped to epsilon" Latency.min_delay
    (Latency.sample l ~src:3 ~dst:3);
  let l' = Latency.of_distance ~jitter:0.5 ~seed:9 (fun ~src:_ ~dst:_ -> 0.) in
  for _ = 1 to 20 do
    check Alcotest.bool "jittered still >= epsilon" true
      (Latency.sample l' ~src:0 ~dst:1 >= Latency.min_delay)
  done

(* Same-host messages all arrive after the same epsilon, so their delivery
   order is the engine's FIFO tie-break — i.e. exactly the send order. *)
let same_host_delivery_order () =
  let l = Latency.of_distance (fun ~src:_ ~dst:_ -> 0.) in
  let e = Engine.create () in
  let order = ref [] in
  List.iter
    (fun tag ->
      let d = Latency.sample l ~src:1 ~dst:1 in
      Engine.schedule e ~delay:d (fun () -> order := tag :: !order))
    [ "m1"; "m2"; "m3"; "m4" ];
  Engine.run e;
  check Alcotest.(list string) "send order preserved" [ "m1"; "m2"; "m3"; "m4" ]
    (List.rev !order)

let latency_validation () =
  (try
     ignore (Latency.constant 0.);
     Alcotest.fail "zero latency accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Latency.uniform ~seed:0 ~lo:5. ~hi:1.);
    Alcotest.fail "inverted range accepted"
  with Invalid_argument _ -> ()

let trace_equality () =
  let a = Trace.create () and b = Trace.create () in
  Trace.record a 1. "x";
  Trace.record b 1. "x";
  check Alcotest.bool "equal traces" true (Trace.equal a b);
  Trace.record a 2. "y";
  check Alcotest.bool "diverged traces" false (Trace.equal a b);
  check Alcotest.int "length" 2 (Trace.length a);
  check Alcotest.bool "ordering" true (Trace.to_list a = [ (1., "x"); (2., "y") ])

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "time order" `Quick fires_in_time_order;
        Alcotest.test_case "fifo ties" `Quick ties_fire_in_schedule_order;
        Alcotest.test_case "clock" `Quick clock_advances;
        Alcotest.test_case "rejects past" `Quick rejects_past;
        Alcotest.test_case "run_until" `Quick run_until_partial;
        Alcotest.test_case "livelock guard" `Quick livelock_guard;
        Alcotest.test_case "event counting" `Quick counts_events;
        Alcotest.test_case "cancel prevents firing" `Quick cancel_prevents_firing;
        Alcotest.test_case "cancel after fire" `Quick cancel_after_fire_is_noop;
        Alcotest.test_case "cancel rejects negative" `Quick
          cancellable_rejects_negative_delay;
        Alcotest.test_case "cancel determinism" `Quick cancellation_preserves_determinism;
        Alcotest.test_case "debug timer-leak check" `Quick debug_timer_leak_check;
      ] );
    ( "sim.latency",
      [
        Alcotest.test_case "constant" `Quick latency_constant;
        Alcotest.test_case "uniform range" `Quick latency_uniform_range;
        Alcotest.test_case "distance jitter" `Quick latency_distance_jitter;
        Alcotest.test_case "min delay epsilon" `Quick latency_min_delay;
        Alcotest.test_case "same-host delivery order" `Quick same_host_delivery_order;
        Alcotest.test_case "validation" `Quick latency_validation;
        Alcotest.test_case "trace" `Quick trace_equality;
      ] );
  ]
