(* The exploration layer's own guarantees: trace serialization round-trips
   bit-identically (the foundation repro files stand on), episodes replay to
   identical digests, the report is a pure function of the settings, and an
   intentionally injected protocol bug is schedule-dependent — invisible to
   the unperturbed scheduler, caught by an adversary, shrunk to a minimal
   intervention list and replayed to the same violation. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Trace = Ntcu_sim.Trace
module Latency = Ntcu_sim.Latency
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Workload = Ntcu_harness.Workload
module Scheduler = Ntcu_explore.Scheduler
module Invariants = Ntcu_explore.Invariants
module Episode = Ntcu_explore.Episode
module Shrink = Ntcu_explore.Shrink
module Repro = Ntcu_explore.Repro
module Explore = Ntcu_explore.Explore

let check = Alcotest.check

(* ---- Trace round-trip (prerequisite for repro files) ---- *)

let traced_run ~seed =
  let p = Params.make ~b:4 ~d:4 in
  let rng = Rng.create seed in
  let seeds = Workload.distinct_ids rng p ~n:10 in
  let joiners = Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:5 in
  let net =
    Network.create ~record_trace:true
      ~latency:(Latency.uniform ~seed:(seed + 1) ~lo:1. ~hi:100.)
      p
  in
  Network.seed_consistent net ~seed:(seed + 2) seeds;
  List.iter
    (fun id -> Network.start_join net ~id ~gateway:(List.hd seeds) ())
    joiners;
  Network.run net;
  match Network.trace net with Some tr -> tr | None -> Alcotest.fail "no trace"

let trace_roundtrip () =
  List.iter
    (fun seed ->
      let tr = traced_run ~seed in
      check Alcotest.bool "trace nonempty" true (Trace.length tr > 0);
      let tr' = Trace.of_lines (Trace.to_lines tr) in
      check Alcotest.bool "of_lines (to_lines t) = t" true (Trace.equal tr tr');
      check Alcotest.string "digest survives" (Trace.digest tr) (Trace.digest tr');
      check Alcotest.bool "no divergence" true
        (Trace.first_divergence tr tr' = None))
    [ 1; 2; 3 ]

(* ---- Episodes: bit-identical reruns and replayable schedules ---- *)

let smoke_config scheduler =
  {
    Episode.scenario = Episode.Dependent;
    b = 4;
    d = 6;
    n = 12;
    m = 6;
    seed = 1;
    sched_seed = 14;
    scheduler;
    fault = None;
    chord_naive = false;
    midflight = true;
  }

let episode_rerun_identical () =
  let config = smoke_config (Scheduler.Targeted { probability = 0.25; stretch = 32. }) in
  let a = Episode.run config and b = Episode.run config in
  check Alcotest.string "same digest" a.Episode.digest b.Episode.digest;
  check Alcotest.int "same events" a.Episode.events b.Episode.events;
  check Alcotest.int "same interventions"
    (List.length a.Episode.interventions)
    (List.length b.Episode.interventions)

(* Replaying an adversarial run's recorded interventions as a Fixed schedule
   reproduces the run exactly — the property that makes a shrunk intervention
   list a faithful counterexample. *)
let fixed_replay_identical () =
  let config = smoke_config (Scheduler.Random_delay { scale = 16. }) in
  let live = Episode.run config in
  check Alcotest.bool "adversary intervened" true (live.Episode.interventions <> []);
  let replay =
    Episode.run
      { config with Episode.scheduler = Scheduler.Fixed live.Episode.interventions }
  in
  check Alcotest.string "replay digest" live.Episode.digest replay.Episode.digest;
  check Alcotest.int "replay events" live.Episode.events replay.Episode.events

(* A perturbed latency model is itself deterministic: the same stateful
   perturbation sampled twice over the same send sequence gives the same
   delays. *)
let perturbed_latency_deterministic () =
  let sample_all seed =
    let rng = Rng.create seed in
    let base = Latency.uniform ~seed:7 ~lo:1. ~hi:100. in
    let model =
      Latency.perturbed base ~f:(fun ~src:_ ~dst:_ d -> d *. (0.5 +. Rng.float rng 2.))
    in
    List.init 200 (fun i -> Latency.sample model ~src:(i mod 5) ~dst:(i mod 7))
  in
  check (Alcotest.list (Alcotest.float 0.)) "same delays" (sample_all 3) (sample_all 3);
  List.iter
    (fun d -> check Alcotest.bool "positive" true (d >= Latency.min_delay))
    (sample_all 4)

(* ---- The full hunt: clean protocol, determinism, injected bug ---- *)

let json_string r = Ntcu_harness.Report.Json.to_string (Explore.report_json r)

let clean_smoke_finds_nothing () =
  let report = Explore.run Explore.smoke_settings in
  (* 3 smoke scenarios (concurrent, dependent, chord) x 3 schedulers x budget 2 *)
  check Alcotest.int "episodes run" 18 report.Explore.episodes;
  check Alcotest.int "no violations on the real protocol" 0 report.Explore.failures

let report_deterministic_across_jobs () =
  let settings =
    { Explore.smoke_settings with Explore.fault = Some Node.Drop_queued_join_waits }
  in
  let serial = Explore.run { settings with Explore.jobs = 1 } in
  let fanned = Explore.run { settings with Explore.jobs = 2 } in
  check Alcotest.string "byte-identical report" (json_string serial) (json_string fanned)

(* The injected bug drops JoinWaitMsgs a T-node queued while single-threaded
   on another reply — a window only some interleavings open. The unperturbed
   scheduler never opens it at smoke scale; the adversaries do. Found, it
   must shrink and replay to the same violation. *)
let injected_fault_schedule_dependent () =
  let fault = Some Node.Drop_queued_join_waits in
  let nop =
    Explore.run
      {
        Explore.smoke_settings with
        Explore.fault;
        schedulers = [ Scheduler.Nop ];
      }
  in
  check Alcotest.int "invisible to the unperturbed schedule" 0 nop.Explore.failures;
  let report =
    Explore.run { Explore.smoke_settings with Explore.fault = fault }
  in
  check Alcotest.bool "caught by an adversary" true (report.Explore.failures > 0);
  let f =
    match
      List.find_opt (fun f -> f.Explore.shrunk <> None) report.Explore.found
    with
    | Some f -> f
    | None -> Alcotest.fail "no violation was shrunk"
  in
  let minimal, final, probes =
    match f.Explore.shrunk with Some s -> s | None -> assert false
  in
  check Alcotest.bool "shrunk to fewer interventions" true
    (List.length minimal <= List.length f.Explore.outcome.Episode.interventions);
  check Alcotest.bool "ddmin probed" true (probes > 0);
  (* The minimal schedule still yields the same violation category. *)
  let name (v : Invariants.violation) = v.Invariants.name in
  (match (f.Explore.outcome.Episode.violations, final.Episode.violations) with
  | v :: _, v' :: _ -> check Alcotest.string "same violation" (name v) (name v')
  | _ -> Alcotest.fail "violations lost in shrinking");
  check Alcotest.bool "replay reproduced" true f.Explore.replay_ok;
  (* And the repro file round-trips through its text form. *)
  match f.Explore.repro with
  | None -> Alcotest.fail "no repro built"
  | Some r -> (
    let s = Repro.to_string r in
    match Repro.of_string s with
    | Error e -> Alcotest.failf "repro parse: %s" e
    | Ok r' ->
      check Alcotest.string "repro text round-trips" s (Repro.to_string r');
      let replay = Repro.replay r' in
      check Alcotest.bool "parsed repro reproduces" true replay.Repro.reproduced)

(* ---- ddmin on a synthetic predicate: minimality and soundness ---- *)

let ddmin_synthetic () =
  (* Failure needs both 3 and 7: ddmin must isolate exactly that pair. *)
  let test cs = List.mem 3 cs && List.mem 7 cs in
  let minimal, probes = Shrink.ddmin ~test (List.init 10 Fun.id) in
  check (Alcotest.list Alcotest.int) "exact pair" [ 3; 7 ]
    (List.sort compare minimal);
  check Alcotest.bool "probes counted" true (probes > 1);
  (* Already-minimal input returns itself. *)
  let m2, _ = Shrink.ddmin ~test:(fun cs -> cs = [ 42 ]) [ 42 ] in
  check (Alcotest.list Alcotest.int) "singleton kept" [ 42 ] m2;
  (* A predicate true on the empty list shrinks to nothing. *)
  let m3, _ = Shrink.ddmin ~test:(fun _ -> true) [ 1; 2; 3 ] in
  check (Alcotest.list Alcotest.int) "empty suffices" [] m3

let suites =
  [
    ( "explore",
      [
        Alcotest.test_case "trace round-trip" `Quick trace_roundtrip;
        Alcotest.test_case "episode rerun identical" `Quick episode_rerun_identical;
        Alcotest.test_case "fixed replay identical" `Quick fixed_replay_identical;
        Alcotest.test_case "perturbed latency deterministic" `Quick
          perturbed_latency_deterministic;
        Alcotest.test_case "clean smoke finds nothing" `Quick clean_smoke_finds_nothing;
        Alcotest.test_case "report deterministic across jobs" `Quick
          report_deterministic_across_jobs;
        Alcotest.test_case "injected fault: caught, shrunk, replayed" `Quick
          injected_fault_schedule_dependent;
        Alcotest.test_case "ddmin synthetic" `Quick ddmin_synthetic;
      ] );
  ]
