(* Property suite for the object-location directory (lib/routing/directory):
   P1 root agreement, publish/locate/unpublish exactness, maintain as a
   restorative operation after membership changes, incremental-vs-full
   maintenance equivalence, and the LRU hop-pointer cache. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Directory = Ntcu_routing.Directory
module Experiment = Ntcu_harness.Experiment
module Workload = Ntcu_harness.Workload
module Leave = Ntcu_extensions.Leave
module Recovery = Ntcu_extensions.Recovery

let check = Alcotest.check

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let p = Params.make ~b:4 ~d:6

let make_net ~seed ~n ~m =
  let run = Experiment.concurrent_joins p ~seed ~n ~m () in
  Alcotest.(check int) "consistent" 0 (List.length (Lazy.force run.violations));
  run

(* Liveness-aware lookup, as the serving layer uses: departed and crashed
   hosts are invisible to the directory. *)
let live_lookup net id =
  if Network.is_failed net id then None
  else
    match Network.node net id with
    | Some node when Node.status_equal (Node.status node) Node.In_system ->
      Some (Node.table node)
    | Some _ | None -> None

let fresh_objects ?(k = 5) ~seed net =
  let rng = Rng.create seed in
  Workload.distinct_ids ~avoid:(Id.Set.of_list (Network.ids net)) rng p ~n:k

let arb_seed = QCheck.int_range 1 5_000

(* ---- P1: all members agree on every object's root ---- *)

let p1_root_agreement =
  qtest "P1: members agree on the root of every object" arb_seed (fun seed ->
      let run = make_net ~seed ~n:12 ~m:8 in
      let dir = Directory.create ~lookup:(live_lookup run.net) () in
      let ids = Network.ids run.net in
      List.for_all
        (fun obj ->
          match List.map (fun from -> Directory.root_of dir ~from obj) ids with
          | Ok first :: rest ->
            List.for_all (function Ok r -> Id.equal r first | Error _ -> false) rest
          | [] -> true
          | Error _ :: _ -> false)
        (fresh_objects ~seed:(seed + 1) run.net))

(* ---- publish-then-locate finds every storer, from every client ---- *)

let sorted_ids l = List.sort Id.compare l

let publish_or_fail dir ~storer obj =
  match Directory.publish dir ~storer obj with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "publish: %a" Ntcu_routing.Route.pp_error e

let locate_finds_all_storers =
  qtest "locate returns the complete storer set from any client" arb_seed
    (fun seed ->
      let run = make_net ~seed ~n:14 ~m:8 in
      let dir = Directory.create ~lookup:(live_lookup run.net) () in
      let ids = Array.of_list (Network.ids run.net) in
      let rng = Rng.create (seed + 2) in
      let obj = List.hd (fresh_objects ~k:1 ~seed:(seed + 3) run.net) in
      let storers =
        Rng.sample_without_replacement rng 3 (Array.length ids)
        |> Array.to_list
        |> List.map (fun i -> ids.(i))
        |> sorted_ids
      in
      List.iter (fun storer -> publish_or_fail dir ~storer obj) storers;
      check (Alcotest.list Alcotest.string) "storers view"
        (List.map Id.to_string storers)
        (List.map Id.to_string (Directory.storers dir obj));
      Array.for_all
        (fun client ->
          match Directory.locate dir ~client obj with
          | Ok r ->
            List.equal Id.equal storers (sorted_ids r.Directory.all_storers)
          | Error _ -> false)
        ids)

(* ---- unpublish removes exactly that storer's pointers ---- *)

let unpublish_is_exact =
  qtest "unpublish removes exactly the one storer's pointers" arb_seed
    (fun seed ->
      let run = make_net ~seed ~n:12 ~m:8 in
      let dir = Directory.create ~lookup:(live_lookup run.net) () in
      let ids = Array.of_list (Network.ids run.net) in
      let obj = List.hd (fresh_objects ~k:1 ~seed:(seed + 3) run.net) in
      let s1 = ids.(0) and s2 = ids.(Array.length ids - 1) in
      publish_or_fail dir ~storer:s1 obj;
      publish_or_fail dir ~storer:s2 obj;
      Directory.unpublish dir ~storer:s1 obj;
      (* Idempotent. *)
      Directory.unpublish dir ~storer:s1 obj;
      let no_pointer_to_s1 =
        Array.for_all
          (fun node ->
            List.for_all
              (fun (_, storers) -> not (List.exists (Id.equal s1) storers))
              (Directory.pointers_at dir node))
          ids
      in
      no_pointer_to_s1
      && List.equal Id.equal [ s2 ] (Directory.storers dir obj)
      && Array.for_all
           (fun client ->
             match Directory.locate dir ~client obj with
             | Ok r -> List.equal Id.equal [ s2 ] (sorted_ids r.Directory.all_storers)
             | Error _ -> false)
           ids)

(* ---- maintain restores service after leaves and crashes ---- *)

let maintain_restores_p1 () =
  List.iter
    (fun seed ->
      let run = make_net ~seed ~n:18 ~m:10 in
      let net = run.Experiment.net in
      let dir = Directory.create ~lookup:(live_lookup net) () in
      let ids = Array.of_list (Network.ids net) in
      let objs = fresh_objects ~k:6 ~seed:(seed + 1) net in
      let rng = Rng.create (seed + 2) in
      List.iter
        (fun obj -> publish_or_fail dir ~storer:(Rng.pick rng ids) obj)
        objs;
      (* A batch of graceful leaves, then a batch of crashes, then repair. *)
      let doomed =
        Rng.sample_without_replacement rng 2 (Array.length ids)
        |> Array.to_list
        |> List.map (fun i -> ids.(i))
      in
      (match Leave.leave_many net doomed with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let crashed = Recovery.fail_random net ~seed:(seed + 3) ~fraction:0.15 in
      let (_ : Recovery.report) = Recovery.repair net in
      let st = Directory.maintain dir in
      check Alcotest.int "no maintain errors" 0 st.Directory.errors;
      let gone = doomed @ crashed in
      let live =
        Array.to_list ids
        |> List.filter (fun id -> not (List.exists (Id.equal id) gone))
      in
      List.iter
        (fun obj ->
          let survivors = sorted_ids (Directory.storers dir obj) in
          (* P1 restored: every live member resolves the object to the same
             root and finds every surviving storer. *)
          List.iter
            (fun client ->
              match Directory.locate dir ~client obj with
              | Ok r ->
                check (Alcotest.list Alcotest.string)
                  (Fmt.str "client %a finds survivors of %a" Id.pp client Id.pp obj)
                  (List.map Id.to_string survivors)
                  (List.map Id.to_string (sorted_ids r.Directory.all_storers))
              | Error e ->
                Alcotest.failf "locate %a from %a: %a" Id.pp obj Id.pp client
                  Ntcu_routing.Route.pp_error e)
            live)
        objs)
    [ 11; 23 ]

(* ---- incremental maintain agrees with a full rebuild ---- *)

(* Canonical dump of every installed pointer as node/object/storer triples;
   two directories over the same membership must agree exactly. *)
let dump dir ids =
  List.concat_map
    (fun node ->
      List.concat_map
        (fun (obj, storers) ->
          List.map
            (fun s -> Fmt.str "%a/%a/%a" Id.pp node Id.pp obj Id.pp s)
            storers)
        (Directory.pointers_at dir node))
    ids
  |> List.sort String.compare

let incremental_agrees_with_full =
  qtest "incremental maintain = full rebuild on the same delta" arb_seed
    (fun seed ->
      let run = make_net ~seed ~n:16 ~m:8 in
      let net = run.Experiment.net in
      let dir_full = Directory.create ~lookup:(live_lookup net) () in
      let dir_inc = Directory.create ~lookup:(live_lookup net) () in
      let ids = Array.of_list (Network.ids net) in
      let objs = fresh_objects ~k:6 ~seed:(seed + 1) net in
      let rng = Rng.create (seed + 2) in
      List.iter
        (fun obj ->
          let storer = Rng.pick rng ids in
          publish_or_fail dir_full ~storer obj;
          publish_or_fail dir_inc ~storer obj)
        objs;
      (* One shared membership delta: a graceful leave plus a crash. *)
      let idx = Rng.sample_without_replacement rng 2 (Array.length ids) in
      (match Leave.leave net ids.(idx.(0)) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      Network.fail net ids.(idx.(1));
      let (_ : Recovery.report) = Recovery.repair net in
      let full = Directory.maintain dir_full in
      let inc = Directory.maintain ~incremental:true dir_inc in
      check Alcotest.int "error counts agree" full.Directory.errors
        inc.Directory.errors;
      let all = Array.to_list ids in
      dump dir_full all = dump dir_inc all
      && List.for_all
           (fun obj ->
             List.equal Id.equal
               (Directory.storers dir_full obj)
               (Directory.storers dir_inc obj))
           objs)

let incremental_cheaper_on_single_leave () =
  let seed = 42 in
  let run = make_net ~seed ~n:18 ~m:10 in
  let net = run.Experiment.net in
  let dir_full = Directory.create ~lookup:(live_lookup net) () in
  let dir_inc = Directory.create ~lookup:(live_lookup net) () in
  let ids = Array.of_list (Network.ids net) in
  let objs = fresh_objects ~k:10 ~seed:(seed + 1) net in
  let rng = Rng.create (seed + 2) in
  (* Storers all survive the leave, so the full rebuild republishes every
     publication while the incremental pass touches only invalidated trails. *)
  let survivors = Array.of_list (List.filteri (fun i _ -> i <> 3) (Array.to_list ids)) in
  List.iter
    (fun obj ->
      let storer = Rng.pick rng survivors in
      publish_or_fail dir_full ~storer obj;
      publish_or_fail dir_inc ~storer obj)
    objs;
  (match Leave.leave net ids.(3) with Ok _ -> () | Error e -> Alcotest.fail e);
  let full = Directory.maintain dir_full in
  let inc = Directory.maintain ~incremental:true dir_inc in
  check Alcotest.int "full republishes everything" 10 full.Directory.republished;
  check Alcotest.bool "incremental republishes strictly less" true
    (inc.Directory.republished < full.Directory.republished);
  check Alcotest.bool "incremental drops strictly fewer pointers" true
    (inc.Directory.dropped < full.Directory.dropped);
  check Alcotest.bool "incremental spends no more publish hops" true
    (inc.Directory.publish_hops <= full.Directory.publish_hops);
  check Alcotest.bool "untouched trails were revalidated, not rebuilt" true
    (inc.Directory.revalidated > 0);
  check Alcotest.int "neither run errored" 0
    (full.Directory.errors + inc.Directory.errors)

let incremental_noop_on_unchanged_network () =
  let run = make_net ~seed:9 ~n:14 ~m:8 in
  let dir = Directory.create ~lookup:(live_lookup run.net) () in
  let ids = Array.of_list (Network.ids run.net) in
  let objs = fresh_objects ~k:7 ~seed:10 run.net in
  let rng = Rng.create 11 in
  List.iter (fun obj -> publish_or_fail dir ~storer:(Rng.pick rng ids) obj) objs;
  let st = Directory.maintain ~incremental:true dir in
  check Alcotest.int "every trail revalidated" 7 st.Directory.revalidated;
  check Alcotest.int "nothing republished" 0 st.Directory.republished;
  check Alcotest.int "nothing dropped" 0 st.Directory.dropped;
  check Alcotest.int "no hops spent" 0 st.Directory.publish_hops;
  check Alcotest.int "no errors" 0 st.Directory.errors

(* ---- LRU hop-pointer cache ---- *)

let locate_or_fail dir ~client obj =
  match Directory.locate dir ~client obj with
  | Ok r -> r
  | Error e -> Alcotest.failf "locate: %a" Ntcu_routing.Route.pp_error e

let cache_serves_identical_results () =
  let run = make_net ~seed:13 ~n:14 ~m:8 in
  let dir = Directory.create ~cache:8 ~lookup:(live_lookup run.net) () in
  let ids = Array.of_list (Network.ids run.net) in
  let obj = List.hd (fresh_objects ~k:1 ~seed:14 run.net) in
  publish_or_fail dir ~storer:ids.(0) obj;
  publish_or_fail dir ~storer:ids.(1) obj;
  let cold = locate_or_fail dir ~client:ids.(2) obj in
  check Alcotest.bool "first locate misses" false cold.Directory.cached;
  let warm = locate_or_fail dir ~client:ids.(3) obj in
  check Alcotest.bool "second locate hits" true warm.Directory.cached;
  check Alcotest.int "cache hit is depth 0" 0 warm.Directory.first_depth;
  check (Alcotest.list Alcotest.string) "hit returns the same storer set"
    (List.map Id.to_string (sorted_ids cold.Directory.all_storers))
    (List.map Id.to_string (sorted_ids warm.Directory.all_storers));
  let st = Directory.cache_stats dir in
  check Alcotest.int "one hit" 1 st.Directory.hits;
  check Alcotest.int "one miss" 1 st.Directory.misses

let cache_evicts_at_capacity () =
  let run = make_net ~seed:15 ~n:14 ~m:8 in
  let dir = Directory.create ~cache:2 ~lookup:(live_lookup run.net) () in
  let ids = Array.of_list (Network.ids run.net) in
  let objs = fresh_objects ~k:5 ~seed:16 run.net in
  List.iter (fun obj -> publish_or_fail dir ~storer:ids.(0) obj) objs;
  List.iter (fun obj -> ignore (locate_or_fail dir ~client:ids.(1) obj)) objs;
  let st = Directory.cache_stats dir in
  check Alcotest.int "entries bounded by capacity" 2 st.Directory.entries;
  check Alcotest.bool "evictions happened" true (st.Directory.evictions > 0);
  check Alcotest.int "all cold locates missed" 5 st.Directory.misses

let cache_invalidated_by_publish () =
  let run = make_net ~seed:17 ~n:14 ~m:8 in
  let dir = Directory.create ~cache:8 ~lookup:(live_lookup run.net) () in
  let ids = Array.of_list (Network.ids run.net) in
  let obj = List.hd (fresh_objects ~k:1 ~seed:18 run.net) in
  publish_or_fail dir ~storer:ids.(0) obj;
  ignore (locate_or_fail dir ~client:ids.(1) obj);
  ignore (locate_or_fail dir ~client:ids.(2) obj);
  (* A new replica must be visible immediately — no stale cache line. *)
  publish_or_fail dir ~storer:ids.(4) obj;
  let r = locate_or_fail dir ~client:ids.(3) obj in
  check Alcotest.bool "post-publish locate is uncached" false r.Directory.cached;
  check Alcotest.bool "new storer visible" true
    (List.exists (Id.equal ids.(4)) r.Directory.all_storers);
  let st = Directory.cache_stats dir in
  check Alcotest.bool "invalidation counted" true (st.Directory.invalidations > 0)

let create_rejects_negative_capacity () =
  Alcotest.check_raises "negative cache"
    (Invalid_argument "Directory.create: cache capacity must be >= 0")
    (fun () ->
      ignore (Directory.create ~cache:(-1) ~lookup:(fun _ -> None) ()))

let suites =
  [
    ( "directory",
      [
        p1_root_agreement;
        locate_finds_all_storers;
        unpublish_is_exact;
        Alcotest.test_case "maintain restores P1 after leaves+crashes" `Quick
          maintain_restores_p1;
        incremental_agrees_with_full;
        Alcotest.test_case "incremental cheaper on single leave" `Quick
          incremental_cheaper_on_single_leave;
        Alcotest.test_case "incremental no-op on unchanged network" `Quick
          incremental_noop_on_unchanged_network;
        Alcotest.test_case "cache serves identical results" `Quick
          cache_serves_identical_results;
        Alcotest.test_case "cache evicts at capacity" `Quick cache_evicts_at_capacity;
        Alcotest.test_case "cache invalidated by publish" `Quick
          cache_invalidated_by_publish;
        Alcotest.test_case "create rejects negative capacity" `Quick
          create_rejects_negative_capacity;
      ] );
  ]
