module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Table = Ntcu_table.Table
module Message = Ntcu_core.Message
module Codec = Ntcu_core.Codec
module Rng = Ntcu_std.Rng

let check = Alcotest.check
let p = Params.make ~b:16 ~d:8

let sample_table rng ~cells =
  let owner = Id.random rng p in
  let t = Table.create p ~owner in
  Table.fill_self t S;
  let placed = ref 0 in
  while !placed < cells do
    let level = Rng.int rng p.Params.d in
    let digit = Rng.int rng p.Params.b in
    if Table.neighbor t ~level ~digit = None then begin
      let suffix = Table.required_suffix t ~level ~digit in
      let node = Id.random_with_suffix rng p suffix in
      if not (Id.equal node owner) then begin
        Table.set t ~level ~digit node (if Rng.bool rng then T else S);
        incr placed
      end
    end
  done;
  t

let sample_messages rng =
  let snap () = Table.Snapshot.of_table (sample_table rng ~cells:10) in
  let id () = Id.random rng p in
  [
    Message.Cp_rst { level = Rng.int rng p.Params.d };
    Cp_rly { table = snap () };
    Join_wait;
    Join_wait_rly { sign = Positive; occupant = id (); table = snap () };
    Join_wait_rly { sign = Negative; occupant = id (); table = snap () };
    Join_noti { table = snap (); noti_level = 2; filled = None };
    Join_noti
      {
        table = snap ();
        noti_level = 1;
        filled = Some [ (0, 3); (1, 15); (7, 0); (4, 9) ];
      };
    Join_noti_rly { sign = Positive; table = snap (); flag = true };
    Join_noti_rly { sign = Negative; table = snap (); flag = false };
    In_sys_noti;
    Spe_noti { origin = id (); subject = id () };
    Spe_noti_rly { origin = id (); subject = id () };
    Rv_ngh_noti { level = 3; digit = 14; recorded = T };
    Rv_ngh_noti_rly { level = 0; digit = 0; state = S };
  ]

(* Structural message equality via the pretty-printer plus snapshot cells. *)
let snapshot_to_list (s : Table.Snapshot.t) =
  let cells = ref [] in
  Table.Snapshot.iter s (fun c ->
      cells := (c.level, c.digit, Id.to_string c.node, c.state) :: !cells);
  (Id.to_string s.owner, List.rev !cells)

let message_repr (m : Message.t) =
  match m with
  | Cp_rly { table } -> ("cp_rly", [ snapshot_to_list table ], "")
  | Join_wait_rly { sign; occupant; table } ->
    ( "jw_rly",
      [ snapshot_to_list table ],
      Fmt.str "%b %s" (sign = Positive) (Id.to_string occupant) )
  | Join_noti { table; noti_level; filled } ->
    ( "jn",
      [ snapshot_to_list table ],
      Fmt.str "%d %a" noti_level
        Fmt.(option (list (pair int int)))
        (Option.map (List.sort compare) filled) )
  | Join_noti_rly { sign; table; flag } ->
    ("jn_rly", [ snapshot_to_list table ], Fmt.str "%b %b" (sign = Positive) flag)
  | other -> ("other", [], Fmt.str "%a" Message.pp other)

let roundtrip_all () =
  let rng = Rng.create 1 in
  List.iter
    (fun m ->
      let encoded = Codec.encode p m in
      match Codec.decode p encoded with
      | Ok m' ->
        if message_repr m <> message_repr m' then
          Alcotest.failf "roundtrip mismatch: %a vs %a" Message.pp m Message.pp m'
      | Error e -> Alcotest.failf "decode failed for %a: %s" Message.pp m e)
    (sample_messages rng)

let roundtrip_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"codec roundtrip on random snapshots"
       QCheck.(pair small_int (int_range 0 30))
       (fun (seed, cells) ->
         let rng = Rng.create seed in
         let snap = Table.Snapshot.of_table (sample_table rng ~cells) in
         let m = Message.Cp_rly { table = snap } in
         match Codec.decode p (Codec.encode p m) with
         | Ok m' -> message_repr m = message_repr m'
         | Error _ -> false))

let roundtrip_odd_base () =
  (* b = 5 needs 3 bits per digit: packing crosses byte boundaries. *)
  let p5 = Params.make ~b:5 ~d:7 in
  let rng = Rng.create 2 in
  for _ = 1 to 50 do
    let origin = Id.random rng p5 and subject = Id.random rng p5 in
    let m = Message.Spe_noti { origin; subject } in
    match Codec.decode p5 (Codec.encode p5 m) with
    | Ok (Message.Spe_noti { origin = o'; subject = s' }) ->
      check Alcotest.bool "origin" true (Id.equal origin o');
      check Alcotest.bool "subject" true (Id.equal subject s')
    | Ok other -> Alcotest.failf "wrong message: %a" Message.pp other
    | Error e -> Alcotest.fail e
  done

let size_matches_encoding () =
  let rng = Rng.create 3 in
  List.iter
    (fun m ->
      check Alcotest.int
        (Fmt.str "size of %a" Message.pp m)
        (String.length (Codec.encode p m))
        (Codec.encoded_size p m))
    (sample_messages rng)

let size_model_close_to_wire () =
  (* Message.size_bytes is the analytical model used for statistics; the real
     encoding must stay within the model (model includes headroom for
     transport headers). *)
  let rng = Rng.create 4 in
  List.iter
    (fun m ->
      let wire = Codec.encoded_size p m in
      let model = Message.size_bytes p m in
      if wire > model then
        Alcotest.failf "wire %d exceeds model %d for %a" wire model Message.pp m)
    (sample_messages rng)

let rejects_garbage () =
  (match Codec.decode p "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  (match Codec.decode p "\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad tag accepted");
  (* truncated snapshot *)
  let m = Message.Cp_rly { table = Table.Snapshot.of_table (sample_table (Rng.create 5) ~cells:5) } in
  let enc = Codec.encode p m in
  (match Codec.decode p (String.sub enc 0 (String.length enc - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation accepted");
  (* trailing garbage *)
  match Codec.decode p (enc ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

let rejects_out_of_range () =
  (* A Cp_rst whose level byte exceeds d. *)
  let bad = "\x00\x20" in
  match Codec.decode p bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range level accepted"

let fuzz_never_crashes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"decoder total on random bytes"
       QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
       (fun s ->
         match Codec.decode p s with Ok _ -> true | Error _ -> true))

let suites =
  [
    ( "core.codec",
      [
        Alcotest.test_case "roundtrip all kinds" `Quick roundtrip_all;
        Alcotest.test_case "odd base packing" `Quick roundtrip_odd_base;
        Alcotest.test_case "encoded_size" `Quick size_matches_encoding;
        Alcotest.test_case "wire within model" `Quick size_model_close_to_wire;
        Alcotest.test_case "rejects garbage" `Quick rejects_garbage;
        Alcotest.test_case "rejects out-of-range" `Quick rejects_out_of_range;
        roundtrip_property;
        fuzz_never_crashes;
      ] );
  ]
