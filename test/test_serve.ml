(* Tests for the serving layer (lib/serve) and the Zipf sampler
   (lib/churn/zipf): seeded determinism, empirical skew against the analytic
   head mass, static-run invariants, the cache ablation, and byte-identical
   bench artifacts across Parallel fan-out widths. *)

module Rng = Ntcu_std.Rng
module Parallel = Ntcu_std.Parallel
module Zipf = Ntcu_churn.Zipf
module Churn = Ntcu_churn.Churn
module Serve = Ntcu_serve.Serve
module Directory = Ntcu_routing.Directory
module Report = Ntcu_harness.Report

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---- Zipf sampler ---- *)

let arb_zipf_case =
  QCheck.(
    triple
      (float_range 0. 3.)
      (int_range 1 10_000) (int_range 0 1_000_000))

let draws z seed k =
  let rng = Rng.create seed in
  List.init k (fun _ -> Zipf.sample z rng)

let zipf_deterministic =
  qtest "zipf sampler is a pure function of the seed" arb_zipf_case
    (fun (s, n, seed) ->
      let z = Zipf.create ~s ~n in
      List.equal Int.equal (draws z seed 50) (draws z seed 50))

let zipf_in_range =
  qtest "zipf samples are ranks in [0, n)" arb_zipf_case (fun (s, n, seed) ->
      let z = Zipf.create ~s ~n in
      List.for_all (fun r -> 0 <= r && r < n) (draws z seed 50))

let zipf_rejects_bad_args () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be >= 1")
    (fun () -> ignore (Zipf.create ~s:1. ~n:0));
  Alcotest.check_raises "negative s"
    (Invalid_argument "Zipf.create: s must be finite and >= 0") (fun () ->
      ignore (Zipf.create ~s:(-0.5) ~n:10))

let head_mass_bounds () =
  let z = Zipf.create ~s:1.1 ~n:100 in
  check (Alcotest.float 1e-9) "k=0" 0. (Zipf.head_mass z ~k:0);
  check (Alcotest.float 1e-9) "k=n" 1. (Zipf.head_mass z ~k:100);
  check (Alcotest.float 1e-9) "k>n clamps" 1. (Zipf.head_mass z ~k:1_000);
  (* s = 0 is the uniform distribution. *)
  let u = Zipf.create ~s:0. ~n:1000 in
  check (Alcotest.float 1e-9) "uniform head mass" 0.1 (Zipf.head_mass u ~k:100)

(* The seeded empirical head mass must land near the analytic one. 20k
   draws: the binomial standard error at p ~ 0.4 is ~0.0035, so a 0.02
   tolerance is nearly 6 sigma while still catching a mis-normalized or
   mis-searched inverse CDF. *)
let zipf_empirical_skew () =
  let n = 1_000 and k = 10 and total = 20_000 in
  List.iter
    (fun s ->
      let z = Zipf.create ~s ~n in
      let rng = Rng.create 77 in
      let hits = ref 0 in
      for _ = 1 to total do
        if Zipf.sample z rng < k then incr hits
      done;
      let emp = float_of_int !hits /. float_of_int total in
      let analytic = Zipf.head_mass z ~k in
      if Float.abs (emp -. analytic) > 0.02 then
        Alcotest.failf "s=%.1f: empirical head mass %.4f vs analytic %.4f" s emp
          analytic)
    [ 0.8; 1.0; 1.2 ]

(* ---- Static serving ---- *)

(* Sub-smoke scale so runtest stays fast. *)
let tiny =
  {
    Serve.default with
    Serve.n = 30;
    objects = 120;
    replicas = 2;
    lookups = 600;
    cache = 64;
    serve_every = 10_000.;
    lookups_per_tick = 8;
  }

let tiny_churn =
  {
    Churn.smoke with
    n = 40;
    duration = 60_000.;
    half_life = 40_000.;
    sample_every = 10_000.;
    maintenance_every = 5_000.;
    lookups_per_sample = 8;
  }

let static_run_is_complete () =
  let s = Serve.run_static tiny in
  check Alcotest.int "every lookup complete" tiny.Serve.lookups s.Serve.s_complete;
  check Alcotest.bool "claim holds" true (Serve.static_ok s);
  let c = s.Serve.s_cache in
  check Alcotest.int "hits + misses = lookups" tiny.Serve.lookups
    (c.Directory.hits + c.Directory.misses);
  check Alcotest.bool "throughput positive" true (s.Serve.s_lookups_per_s > 0.)

let cache_ablation_reduces_depth () =
  let nocache = Serve.run_static { tiny with Serve.cache = 0 } in
  let cached = Serve.run_static tiny in
  check Alcotest.int "same completeness bar" nocache.Serve.s_complete
    cached.Serve.s_complete;
  check Alcotest.bool "cache lowers mean depth" true
    (Serve.cache_improves ~nocache ~cached);
  check Alcotest.bool "cache lowers mean latency" true
    (cached.Serve.s_latency_mean < nocache.Serve.s_latency_mean)

let invalid_config_rejected () =
  Alcotest.check_raises "replicas > n"
    (Invalid_argument "Serve: replicas must be in [1, n]") (fun () ->
      ignore (Serve.run_static { tiny with Serve.replicas = 31 }))

(* ---- Serving under churn ---- *)

let under_churn_sanity () =
  let r = Serve.under_churn tiny tiny_churn in
  check Alcotest.bool "ticks fired" true (List.length r.Serve.sc_ticks >= 3);
  check Alcotest.bool "lookups issued" true (r.Serve.sc_lookups > 0);
  check Alcotest.bool "resolution is a rate" true
    (0. <= r.Serve.sc_resolution && r.Serve.sc_resolution <= 1.);
  check Alcotest.bool "complete never beats resolved" true
    (r.Serve.sc_found <= r.Serve.sc_resolved);
  check Alcotest.int "maintenance never errors" 0 r.Serve.sc_maintain_errors;
  check Alcotest.bool "churn side healthy (best-effort)" true
    (Churn.ok ~claim:Ntcu_harness.Experiment.Best_effort r.Serve.sc_churn)

(* ---- Determinism across fan-out widths ---- *)

let artifact jobs =
  let pool = Parallel.create ~jobs in
  let abl, churn = Serve.run_all pool tiny tiny_churn in
  Parallel.shutdown pool;
  Report.Json.to_string (Serve.bench_json tiny abl churn)

let bench_jobs_byte_identical () =
  check Alcotest.string "jobs=1 vs jobs=4" (artifact 1) (artifact 4)

let suites =
  [
    ( "zipf",
      [
        zipf_deterministic;
        zipf_in_range;
        Alcotest.test_case "rejects bad args" `Quick zipf_rejects_bad_args;
        Alcotest.test_case "head-mass bounds" `Quick head_mass_bounds;
        Alcotest.test_case "empirical skew matches analytic" `Quick
          zipf_empirical_skew;
      ] );
    ( "serve",
      [
        Alcotest.test_case "static run is complete" `Quick static_run_is_complete;
        Alcotest.test_case "cache ablation reduces depth" `Quick
          cache_ablation_reduces_depth;
        Alcotest.test_case "invalid config rejected" `Quick invalid_config_rejected;
        Alcotest.test_case "under-churn sanity" `Quick under_churn_sanity;
        Alcotest.test_case "bench artifact byte-identical across jobs" `Quick
          bench_jobs_byte_identical;
      ] );
  ]
