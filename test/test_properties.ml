(* Seed-swept property tests over the subsystems the performance work
   touches: identifier suffix algebra, the wire codec, the indexed event
   queue, the lazy/clustered shortest-path cache, and end-to-end churn
   schedules. Every test draws its randomness from Ntcu_std.Rng with fixed
   seeds, so failures reproduce exactly. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Pqueue = Ntcu_std.Pqueue
module Table = Ntcu_table.Table
module Message = Ntcu_core.Message
module Codec = Ntcu_core.Codec
module Network = Ntcu_core.Network
module Graph = Ntcu_topology.Graph
module Transit_stub = Ntcu_topology.Transit_stub
module Distances = Ntcu_topology.Distances
module Experiment = Ntcu_harness.Experiment

let check = Alcotest.check
let seeds = [ 1; 2; 3; 4; 5 ]

(* ---- Id.csuf algebra ---- *)

(* Reference implementation: count matching digits from the right. *)
let naive_csuf_len x y =
  let d = Id.length x in
  let rec go i = if i < d && Id.digit x i = Id.digit y i then go (i + 1) else i in
  go 0

let csuf_properties () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      List.iter
        (fun (b, d) ->
          let p = Params.make ~b ~d in
          for _ = 1 to 100 do
            let x = Id.random rng p and y = Id.random rng p and z = Id.random rng p in
            let cxy = Id.csuf_len x y in
            check Alcotest.int "agrees with digit scan" (naive_csuf_len x y) cxy;
            check Alcotest.int "symmetric" (Id.csuf_len y x) cxy;
            check Alcotest.int "reflexive = d" d (Id.csuf_len x x);
            check Alcotest.bool "= d iff equal" (Id.equal x y) (cxy = d);
            (* Suffix matching is an ultrametric: the two smallest of the
               three pairwise values are equal, i.e. csuf(x,z) >= min of the
               other two. *)
            let cyz = Id.csuf_len y z and cxz = Id.csuf_len x z in
            check Alcotest.bool "ultrametric" true (cxz >= min cxy cyz);
            (* csuf is exactly what has_suffix/suffix promise. *)
            check Alcotest.bool "shares its csuf" true (Id.has_suffix x (Id.suffix y cxy));
            if cxy < d then
              check Alcotest.bool "csuf is maximal" false
                (Id.has_suffix x (Id.suffix y (cxy + 1)))
          done)
        [ (4, 4); (16, 8); (5, 7) ])
    seeds

(* ---- Codec: roundtrip, truncation, bit flips ---- *)

let codec_params = Params.make ~b:16 ~d:8

let sample_table rng ~cells =
  let p = codec_params in
  let owner = Id.random rng p in
  let t = Table.create p ~owner in
  Table.fill_self t S;
  let placed = ref 0 in
  let attempts = ref 0 in
  while !placed < cells && !attempts < 1000 do
    incr attempts;
    let level = Rng.int rng p.Params.d in
    let digit = Rng.int rng p.Params.b in
    if Table.neighbor t ~level ~digit = None then begin
      let suffix = Table.required_suffix t ~level ~digit in
      let node = Id.random_with_suffix rng p suffix in
      if not (Id.equal node owner) then begin
        Table.set t ~level ~digit node (if Rng.bool rng then T else S);
        incr placed
      end
    end
  done;
  t

let sample_messages rng =
  let p = codec_params in
  let snap cells = Table.Snapshot.of_table (sample_table rng ~cells) in
  let id () = Id.random rng p in
  [
    Message.Cp_rst { level = Rng.int rng p.Params.d };
    Cp_rly { table = snap (Rng.int rng 12) };
    Join_wait;
    Join_wait_rly { sign = Positive; occupant = id (); table = snap 3 };
    Join_noti { table = snap 5; noti_level = Rng.int rng p.Params.d; filled = None };
    Join_noti_rly { sign = Negative; table = snap 2; flag = Rng.bool rng };
    In_sys_noti;
    Spe_noti { origin = id (); subject = id () };
    Rv_ngh_noti { level = Rng.int rng p.Params.d; digit = Rng.int rng p.Params.b; recorded = T };
  ]

let context_roundtrip () =
  let ctx = Codec.context codec_params in
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      List.iter
        (fun m ->
          let enc = Codec.encode_ctx ctx m in
          check Alcotest.int "ctx size" (String.length enc) (Codec.encoded_size_ctx ctx m);
          check Alcotest.string "ctx encode = plain encode" (Codec.encode codec_params m) enc;
          match Codec.decode_ctx ctx enc with
          | Error e -> Alcotest.failf "ctx roundtrip failed for %a: %s" Message.pp m e
          | Ok m' ->
            check Alcotest.string "reencode identical" enc (Codec.encode_ctx ctx m'))
        (sample_messages rng))
    seeds

(* Every proper prefix of a valid encoding must be rejected: no message kind
   may decode successfully from truncated input. *)
let truncation_rejected () =
  let ctx = Codec.context codec_params in
  let rng = Rng.create 42 in
  List.iter
    (fun m ->
      let enc = Codec.encode_ctx ctx m in
      for len = 0 to String.length enc - 1 do
        match Codec.decode_ctx ctx (String.sub enc 0 len) with
        | Error _ -> ()
        | Ok m' ->
          Alcotest.failf "prefix %d/%d of %a decoded as %a" len (String.length enc)
            Message.pp m Message.pp m'
      done)
    (sample_messages rng)

(* Flipping any single bit must never crash the decoder, and anything that
   still decodes must be canonical: re-encoding it reproduces a stable byte
   string. (Some flips decode fine — e.g. flips in padding bits or into
   another valid value — so rejection is not required, totality is.) *)
let bit_flips_total () =
  let ctx = Codec.context codec_params in
  let rng = Rng.create 43 in
  List.iter
    (fun m ->
      let enc = Codec.encode_ctx ctx m in
      for bit = 0 to (8 * String.length enc) - 1 do
        let b = Bytes.of_string enc in
        let i = bit / 8 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
        match Codec.decode_ctx ctx (Bytes.to_string b) with
        | Error _ -> ()
        | Ok m' -> (
          let enc' = Codec.encode_ctx ctx m' in
          match Codec.decode_ctx ctx enc' with
          | Error e -> Alcotest.failf "re-decode of flipped %a failed: %s" Message.pp m' e
          | Ok m'' ->
            check Alcotest.string "canonical after flip" enc' (Codec.encode_ctx ctx m''))
      done)
    (sample_messages rng)

(* ---- Pqueue vs a sorted-list model ---- *)

(* The queue's contract: pop order is the total order on (key, insertion
   sequence), unaffected by removals and decrease_key of other elements.
   Model every element as (key, seq, id) and replay random interleavings of
   push / pop / remove / decrease_key / clear against the model. *)
let pqueue_model seed =
  let rng = Rng.create seed in
  let q = Pqueue.create () in
  let model : (float * int * int) list ref = ref [] in
  let handles : (int, int Pqueue.handle) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let next_seq = ref 0 in
  let model_min () =
    List.fold_left
      (fun acc e ->
        match acc with
        | None -> Some e
        | Some best -> if e < best then Some e else Some best)
      None !model
  in
  let pop_and_compare () =
    match (Pqueue.pop q, model_min ()) with
    | None, None -> ()
    | Some (k, v), Some ((mk, _, mid) as m) ->
      check (Alcotest.float 0.) "pop key" mk k;
      check Alcotest.int "pop value" mid v;
      model := List.filter (fun e -> e <> m) !model
    | Some (k, v), None -> Alcotest.failf "queue popped (%f, %d), model empty" k v
    | None, Some (mk, _, _) -> Alcotest.failf "queue empty, model has %f" mk
  in
  for _ = 1 to 400 do
    check Alcotest.int "length" (List.length !model) (Pqueue.length q);
    let roll = Rng.int rng 100 in
    if roll < 45 then begin
      (* Coarse keys force frequent ties; the seq component must break them. *)
      let key = float_of_int (Rng.int rng 10) in
      let id = !next_id and seq = !next_seq in
      incr next_id;
      incr next_seq;
      Hashtbl.replace handles id (Pqueue.push_handle q key id);
      model := (key, seq, id) :: !model
    end
    else if roll < 65 then pop_and_compare ()
    else if roll < 80 then begin
      (* Remove a random id, possibly one that already left the queue. *)
      if !next_id > 0 then begin
        let id = Rng.int rng !next_id in
        match Hashtbl.find_opt handles id with
        | None -> ()
        | Some h ->
          let in_model = List.exists (fun (_, _, i) -> i = id) !model in
          check Alcotest.bool "mem agrees" in_model (Pqueue.mem q h);
          check Alcotest.bool "remove result" in_model (Pqueue.remove q h);
          check Alcotest.bool "stale after remove" false (Pqueue.mem q h);
          model := List.filter (fun (_, _, i) -> i <> id) !model
      end
    end
    else if roll < 93 then begin
      if !next_id > 0 then begin
        let id = Rng.int rng !next_id in
        match Hashtbl.find_opt handles id with
        | None -> ()
        | Some h -> (
          match List.find_opt (fun (_, _, i) -> i = id) !model with
          | Some ((k, seq, _) as e) ->
            let k' = k -. float_of_int (Rng.int rng 5) in
            Pqueue.decrease_key q h k';
            check (Alcotest.float 0.) "handle key" k' (Pqueue.key h);
            model := (k', seq, id) :: List.filter (fun x -> x <> e) !model
          | None ->
            (* Stale handle: decrease_key must raise, not corrupt. *)
            check Alcotest.bool "stale raises" true
              (try
                 Pqueue.decrease_key q h 0.;
                 false
               with Invalid_argument _ -> true))
      end
    end
    else begin
      Pqueue.clear q;
      (* membership check per handle; visit order cannot affect the verdict *)
      (Hashtbl.iter [@ntcu.allow "D002"])
        (fun _ h -> check Alcotest.bool "stale after clear" false (Pqueue.mem q h))
        handles;
      model := [];
      next_seq := 0
    end
  done;
  (* Drain: the survivors must come out in exact (key, seq) order. *)
  while !model <> [] || not (Pqueue.is_empty q) do
    pop_and_compare ()
  done

let pqueue_vs_model () = List.iter pqueue_model seeds

(* ---- Distances: lazy and clustered modes vs full Dijkstra ---- *)

(* Exactness is bitwise: both modes must return floats identical to the
   textbook full-graph Dijkstra, not merely close (the simulation's
   determinism depends on it). *)
let distances_exact () =
  List.iter
    (fun seed ->
      let topo = Transit_stub.generate ~seed Transit_stub.default_config in
      let g = Transit_stub.graph topo in
      let nv = Graph.n_vertices g in
      let plain = Distances.create g in
      let clustered = Transit_stub.distances topo in
      let rng = Rng.create (seed * 7 + 1) in
      for _ = 1 to 40 do
        let src = Rng.int rng nv in
        (* Queries are symmetric and internally run from the smaller index,
           so the bitwise reference is Dijkstra from that same source. *)
        let reference = Graph.dijkstra g src in
        for _ = 1 to 15 do
          let v = src + Rng.int rng (nv - src) in
          let expected = reference.(v) in
          (* float 0. is exact equality in Alcotest. *)
          check (Alcotest.float 0.) "plain = dijkstra" expected
            (Distances.distance plain src v);
          check (Alcotest.float 0.) "plain symmetric" expected
            (Distances.distance plain v src);
          check (Alcotest.float 0.) "clustered = dijkstra" expected
            (Distances.distance clustered src v);
          check (Alcotest.float 0.) "clustered symmetric" expected
            (Distances.distance clustered v src)
        done
      done)
    seeds

(* The LRU cap bounds live state without affecting answers, and eviction
   really happens under source-heavy workloads. *)
let distances_lru () =
  let topo = Transit_stub.generate ~seed:11 Transit_stub.default_config in
  let g = Transit_stub.graph topo in
  let nv = Graph.n_vertices g in
  let cap = 4 in
  let d = Distances.create ~cache_sources:cap g in
  let rng = Rng.create 12 in
  for _ = 1 to 300 do
    let u = Rng.int rng nv and v = Rng.int rng nv in
    let expected = (Graph.dijkstra g (min u v)).(max u v) in
    check (Alcotest.float 0.) "exact under eviction" expected (Distances.distance d u v);
    check Alcotest.bool "cache bounded" true (Distances.cached_sources d <= cap)
  done;
  let s = Distances.stats d in
  check Alcotest.bool "evictions occurred" true (s.Distances.evictions > 0);
  check Alcotest.bool "hit rate sane" true
    (let r = Distances.hit_rate d in
     r >= 0. && r <= 1.)

(* ---- Check.violations early exit vs the unlimited scan ---- *)

(* The [~limit] fast path (PR 3) must agree with the full scan on the only
   question its callers ask — "is the network consistent?" — over tables
   damaged in both directions: cleared entries (false negatives) and
   suffix-correct occupants that are not network nodes (dangling). *)
let limit_agrees_with_full_scan =
  let p = Params.make ~b:4 ~d:4 in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"Check.violations ~limit:1 agrees on is-empty"
       QCheck.(pair (int_range 0 10_000) (int_range 0 12))
       (fun (seed, damage) ->
         let rng = Rng.create seed in
         let net =
           Network.create ~latency:(Ntcu_sim.Latency.constant 1.) p
         in
         Network.seed_consistent net ~seed:(seed + 1)
           (Ntcu_harness.Workload.distinct_ids rng p ~n:15);
         let tables = Array.of_list (Network.tables net) in
         let owners = Array.map Table.owner tables in
         for _ = 1 to damage do
           let t = tables.(Rng.int rng (Array.length tables)) in
           let level = Rng.int rng 4 and digit = Rng.int rng 4 in
           if Rng.bool rng then Table.clear t ~level ~digit
           else begin
             (* A suffix-correct stranger: dangling unless it happens to
                collide with a real node (then it is a repair, also fine —
                the property only compares the two scans). *)
             let suffix = Table.required_suffix t ~level ~digit in
             let stranger = Id.random_with_suffix rng p suffix in
             if not (Array.exists (Id.equal stranger) owners) || Rng.bool rng then
               Table.set t ~level ~digit stranger T
           end
         done;
         let tables = Array.to_list tables in
         let fast = Ntcu_table.Check.violations ~limit:1 tables in
         let full = Ntcu_table.Check.violations ~limit:max_int tables in
         (fast = []) = (full = [])
         && List.length fast <= 1
         && (full = [] || List.mem (List.hd fast) full)))

(* ---- Churn oracle: random join/fail and join/leave schedules ---- *)

let churn_params = Params.make ~b:4 ~d:4

(* Random staggered joins under loss, with non-gateway seeds crashing inside
   the join window; the reliability transport plus online repair must end in
   a consistent, fully-joined network. *)
let churn_join_fail seed =
  let p = churn_params in
  let n = 40 and m = 10 in
  let rng = Rng.create seed in
  let seeds_ids = Ntcu_harness.Workload.distinct_ids rng p ~n in
  let joiners =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds_ids) rng p ~n:m
  in
  let net =
    Network.create
      ~latency:(Ntcu_sim.Latency.uniform ~seed:(seed + 1) ~lo:1. ~hi:100.)
      ~loss:(Rng.float rng 0.04, seed + 2)
      ~reliability:{ Network.default_reliability with rto = 250.; seed = seed + 3 }
      p
  in
  let repair = Ntcu_extensions.Online_repair.attach net in
  Network.seed_consistent net ~seed:(seed + 4) seeds_ids;
  let gateways = Array.of_list seeds_ids in
  let used = ref Id.Set.empty in
  List.iter
    (fun id ->
      let gw = Rng.pick rng gateways in
      used := Id.Set.add gw !used;
      Network.start_join net ~at:(Rng.float rng 50.) ~id ~gateway:gw ())
    joiners;
  (* A joiner whose gateway dies before answering has no live contact at all,
     which no protocol can survive, so victims avoid used gateways. *)
  let victims =
    List.filter (fun id -> not (Id.Set.mem id !used)) seeds_ids
    |> List.filteri (fun i _ -> i < 2)
  in
  List.iter
    (fun id ->
      Ntcu_sim.Engine.schedule_at (Network.engine net) ~time:(50. +. Rng.float rng 150.)
        (fun () -> Network.fail net id))
    victims;
  Network.run net;
  Experiment.detect_failures net ~crashed:victims;
  check Alcotest.int "no stuck joiners" 0 (List.length (Network.stuck_joiners net));
  check Alcotest.bool "all in system" true (Network.all_in_system net);
  check Alcotest.int "zero violations" 0 (List.length (Network.check_consistent net));
  ignore (Ntcu_extensions.Online_repair.report repair);
  (* Quiescence: a recovery sweep over the survivors finds nothing dangling
     left behind by the crashes (repair is idempotent, so run it twice and
     require the second pass to be a no-op). *)
  ignore (Ntcu_extensions.Recovery.repair net);
  let second = Ntcu_extensions.Recovery.repair net in
  check Alcotest.int "recovery quiescent" 0 second.Ntcu_extensions.Recovery.scrubbed;
  check Alcotest.int "still zero violations" 0 (List.length (Network.check_consistent net))

(* Random staggered joins followed by epoch-separated voluntary leaves (the
   theorems' churn regime): consistency must hold after every epoch. *)
let churn_join_leave seed =
  let p = churn_params in
  let n = 40 and m = 10 in
  let rng = Rng.create (seed + 100) in
  let seeds_ids = Ntcu_harness.Workload.distinct_ids rng p ~n in
  let joiners =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds_ids) rng p ~n:m
  in
  let net =
    Network.create ~latency:(Ntcu_sim.Latency.uniform ~seed:(seed + 1) ~lo:1. ~hi:100.) p
  in
  Network.seed_consistent net ~seed:(seed + 2) seeds_ids;
  let gateways = Array.of_list seeds_ids in
  List.iter
    (fun id ->
      Network.start_join net ~at:(Rng.float rng 50.) ~id ~gateway:(Rng.pick rng gateways) ())
    joiners;
  Network.run net;
  check Alcotest.bool "joins consistent" true (Network.check_consistent net = []);
  let lp = Ntcu_extensions.Leave_protocol.create net in
  let victims = Array.of_list (Network.ids net) in
  Rng.shuffle rng victims;
  Array.iteri
    (fun i id -> if i < 6 then Ntcu_extensions.Leave_protocol.request_leave lp id)
    victims;
  Ntcu_extensions.Leave_protocol.run lp;
  check Alcotest.bool "leaves consistent" true
    (Ntcu_table.Check.violations (Network.tables net) = []);
  let second = Ntcu_extensions.Recovery.repair net in
  check Alcotest.int "nothing to repair" 0 second.Ntcu_extensions.Recovery.scrubbed

let churn_oracle () =
  List.iter
    (fun seed ->
      churn_join_fail seed;
      churn_join_leave seed)
    [ 1; 2; 3 ]

let suites =
  [
    ( "properties",
      [
        Alcotest.test_case "id csuf algebra" `Quick csuf_properties;
        Alcotest.test_case "codec context roundtrip" `Quick context_roundtrip;
        Alcotest.test_case "codec rejects truncation" `Quick truncation_rejected;
        Alcotest.test_case "codec total under bit flips" `Quick bit_flips_total;
        Alcotest.test_case "pqueue matches model" `Quick pqueue_vs_model;
        Alcotest.test_case "distances exact" `Quick distances_exact;
        Alcotest.test_case "distances lru" `Quick distances_lru;
        limit_agrees_with_full_scan;
        Alcotest.test_case "churn oracle" `Quick churn_oracle;
      ] );
  ]
