module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Table = Ntcu_table.Table
module Check = Ntcu_table.Check
module Suffix_index = Ntcu_table.Suffix_index

let check = Alcotest.check
let p = Params.make ~b:4 ~d:5
let id s = Id.of_string p s

let set_get () =
  let t = Table.create p ~owner:(id "21233") in
  check Alcotest.int "initially empty" 0 (Table.filled_count t);
  Table.set t ~level:0 ~digit:1 (id "03201") T;
  (match Table.get t ~level:0 ~digit:1 with
  | Some (n, Table.T) -> check Alcotest.string "stored" "03201" (Id.to_string n)
  | _ -> Alcotest.fail "entry missing");
  check Alcotest.int "filled" 1 (Table.filled_count t);
  Table.clear t ~level:0 ~digit:1;
  check Alcotest.int "cleared" 0 (Table.filled_count t);
  check Alcotest.bool "empty again" true (Table.get t ~level:0 ~digit:1 = None)

let set_validates_suffix () =
  let t = Table.create p ~owner:(id "21233") in
  (* (2, 1)-entry requires suffix 133; 03201 does not end with 133. *)
  try
    Table.set t ~level:2 ~digit:1 (id "03201") S;
    Alcotest.fail "wrong suffix accepted"
  with Invalid_argument _ -> ()

let required_suffix_examples () =
  let t = Table.create p ~owner:(id "21233") in
  check (Alcotest.array Alcotest.int) "(0,1)" [| 1 |] (Table.required_suffix t ~level:0 ~digit:1);
  check (Alcotest.array Alcotest.int) "(2,0)" [| 3; 3; 0 |]
    (Table.required_suffix t ~level:2 ~digit:0);
  (* digit index 0 is rightmost: suffix (2,0) means 0 then 33 => textual "033" *)
  check Alcotest.string "text form" "033"
    (Fmt.str "%a" Id.pp_suffix (Table.required_suffix t ~level:2 ~digit:0))

let set_state_transitions () =
  let t = Table.create p ~owner:(id "21233") in
  Table.set t ~level:0 ~digit:1 (id "03201") T;
  Table.set_state t ~level:0 ~digit:1 S;
  (match Table.get t ~level:0 ~digit:1 with
  | Some (_, Table.S) -> ()
  | _ -> Alcotest.fail "state not updated");
  Alcotest.check_raises "empty entry" (Invalid_argument "Table.set_state: empty entry")
    (fun () -> Table.set_state t ~level:3 ~digit:0 S)

let fill_self_diagonal () =
  let owner = id "21233" in
  let t = Table.create p ~owner in
  Table.fill_self t S;
  for level = 0 to 4 do
    match Table.get t ~level ~digit:(Id.digit owner level) with
    | Some (n, Table.S) -> check Alcotest.bool "self" true (Id.equal n owner)
    | _ -> Alcotest.fail "self entry missing"
  done;
  check Alcotest.int "exactly d entries" 5 (Table.filled_count t)

let out_of_range_rejected () =
  let t = Table.create p ~owner:(id "21233") in
  (try
     ignore (Table.get t ~level:5 ~digit:0);
     Alcotest.fail "bad level accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Table.get t ~level:0 ~digit:4);
    Alcotest.fail "bad digit accepted"
  with Invalid_argument _ -> ()

let iter_order_and_fold () =
  let t = Table.create p ~owner:(id "21233") in
  Table.set t ~level:0 ~digit:0 (id "13120") T;
  Table.set t ~level:1 ~digit:0 (id "20103") S;
  Table.set t ~level:0 ~digit:2 (id "00002") T;
  let visited = ref [] in
  Table.iter t (fun ~level ~digit _ _ -> visited := (level, digit) :: !visited);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "level-major order"
    [ (0, 0); (0, 2); (1, 0) ]
    (List.rev !visited);
  let count = Table.fold t ~init:0 ~f:(fun acc ~level:_ ~digit:_ _ _ -> acc + 1) in
  check Alcotest.int "fold counts" 3 count

let reverse_sets () =
  let t = Table.create p ~owner:(id "21233") in
  Table.add_reverse t ~level:1 ~digit:2 (id "00023");
  Table.add_reverse t ~level:1 ~digit:2 (id "00023");
  Table.add_reverse t ~level:0 ~digit:3 (id "13120");
  check Alcotest.int "dedup" 1 (Id.Set.cardinal (Table.reverse_at t ~level:1 ~digit:2));
  check Alcotest.int "union" 2 (Id.Set.cardinal (Table.all_reverse t));
  Table.remove_reverse t (id "00023");
  check Alcotest.int "removed everywhere" 1 (Id.Set.cardinal (Table.all_reverse t))

let snapshot_roundtrip () =
  let t = Table.create p ~owner:(id "21233") in
  Table.fill_self t S;
  Table.set t ~level:0 ~digit:1 (id "03201") T;
  let snap = Table.Snapshot.of_table t in
  check Alcotest.int "cell count" 6 (Table.Snapshot.cell_count snap);
  (match Table.Snapshot.find snap ~level:0 ~digit:1 with
  | Some cell -> check Alcotest.string "cell node" "03201" (Id.to_string cell.node)
  | None -> Alcotest.fail "cell missing");
  let low = Table.Snapshot.of_table_levels t ~lo:0 ~hi:0 in
  check Alcotest.int "level filter" 2 (Table.Snapshot.cell_count low);
  let filtered = Table.Snapshot.filter snap ~f:(fun c -> c.level > 0) in
  check Alcotest.int "predicate filter" 4 (Table.Snapshot.cell_count filtered)

let known_nodes_collects () =
  let t = Table.create p ~owner:(id "21233") in
  Table.fill_self t S;
  Table.set t ~level:0 ~digit:1 (id "03201") T;
  let known = Table.known_nodes t in
  check Alcotest.int "distinct nodes" 2 (Id.Set.cardinal known)

(* --- suffix index --- *)

let suffix_index_queries () =
  let ids = List.map id [ "21233"; "01233"; "13120" ] in
  let idx = Suffix_index.of_ids ids in
  check Alcotest.bool "suffix 3" true (Suffix_index.mem idx [| 3 |]);
  check Alcotest.bool "suffix 33" true (Suffix_index.mem idx [| 3; 3 |]);
  check Alcotest.bool "missing" false (Suffix_index.mem idx [| 1; 1 |]);
  check Alcotest.int "members of 1233" 2 (Suffix_index.count idx [| 3; 3; 2; 1 |]);
  check Alcotest.int "empty suffix = all" 3 (List.length (Suffix_index.members idx [||]));
  match Suffix_index.witness idx [| 0 |] with
  | Some w -> check Alcotest.string "witness ends with 0" "13120" (Id.to_string w)
  | None -> Alcotest.fail "witness missing"

(* --- consistency checker --- *)

(* A hand-built consistent 3-node network over b=2, d=2: 00, 01, 10. *)
let tiny = Params.make ~b:2 ~d:2
let tid s = Id.of_string tiny s

let build_tiny_consistent () =
  let t00 = Table.create tiny ~owner:(tid "00") in
  let t01 = Table.create tiny ~owner:(tid "01") in
  let t10 = Table.create tiny ~owner:(tid "10") in
  Table.fill_self t00 S;
  Table.fill_self t01 S;
  Table.fill_self t10 S;
  (* 00: needs (0,1)->x1 (01), (1,1)->x10 *)
  Table.set t00 ~level:0 ~digit:1 (tid "01") S;
  Table.set t00 ~level:1 ~digit:1 (tid "10") S;
  (* 01: needs (0,0)->x0 (00 or 10) *)
  Table.set t01 ~level:0 ~digit:0 (tid "00") S;
  (* 10: needs (0,1)->01, (1,0)->00 *)
  Table.set t10 ~level:0 ~digit:1 (tid "01") S;
  Table.set t10 ~level:1 ~digit:0 (tid "00") S;
  [ t00; t01; t10 ]

let checker_accepts_consistent () =
  let tables = build_tiny_consistent () in
  check Alcotest.int "no violations" 0 (List.length (Check.violations tables));
  check Alcotest.bool "is_consistent" true (Check.is_consistent tables)

let checker_detects_false_negative () =
  let tables = build_tiny_consistent () in
  let t00 = List.hd tables in
  Table.clear t00 ~level:0 ~digit:1;
  let violations = Check.violations tables in
  check Alcotest.bool "found" true
    (List.exists (function Check.False_negative _ -> true | _ -> false) violations)

let checker_detects_dangling () =
  let tables = build_tiny_consistent () in
  let t00 = List.hd tables in
  (* 11 has the required suffix for 00's (0,1)-entry but is not a network
     member. *)
  Table.set t00 ~level:0 ~digit:1 (tid "11") S;
  let violations = Check.violations tables in
  check Alcotest.bool "found dangling" true
    (List.exists (function Check.Dangling _ -> true | _ -> false) violations)

let checker_limit () =
  let tables = build_tiny_consistent () in
  List.iter (fun t -> Table.clear t ~level:0 ~digit:1) tables;
  let violations = Check.violations ~limit:1 tables in
  check Alcotest.int "limited" 1 (List.length violations)

let reachability_on_consistent () =
  let tables = build_tiny_consistent () in
  check Alcotest.bool "all pairs reachable" true (Check.all_pairs_reachable tables);
  let by_id =
    List.fold_left (fun acc t -> Id.Map.add (Table.owner t) t acc) Id.Map.empty tables
  in
  let lookup i = Id.Map.find_opt i by_id in
  match Check.next_hop_path ~lookup (tid "00") (tid "10") with
  | Some path ->
    check Alcotest.(list string) "path" [ "00"; "10" ] (List.map Id.to_string path)
  | None -> Alcotest.fail "no path"

let reachability_detects_break () =
  let tables = build_tiny_consistent () in
  let t00 = List.hd tables in
  Table.clear t00 ~level:1 ~digit:1;
  check Alcotest.bool "broken" false (Check.all_pairs_reachable tables)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let pp_table_renders () =
  let t = Table.create p ~owner:(id "21233") in
  Table.fill_self t S;
  let s = Fmt.str "%a" Table.pp t in
  check Alcotest.bool "mentions owner" true (contains ~needle:"21233" s);
  check Alcotest.bool "mentions levels" true (contains ~needle:"lvl4" s)

let suites =
  [
    ( "table",
      [
        Alcotest.test_case "set/get/clear" `Quick set_get;
        Alcotest.test_case "suffix validation" `Quick set_validates_suffix;
        Alcotest.test_case "required suffix" `Quick required_suffix_examples;
        Alcotest.test_case "state transitions" `Quick set_state_transitions;
        Alcotest.test_case "fill_self" `Quick fill_self_diagonal;
        Alcotest.test_case "range checks" `Quick out_of_range_rejected;
        Alcotest.test_case "iter/fold" `Quick iter_order_and_fold;
        Alcotest.test_case "reverse sets" `Quick reverse_sets;
        Alcotest.test_case "snapshots" `Quick snapshot_roundtrip;
        Alcotest.test_case "known nodes" `Quick known_nodes_collects;
        Alcotest.test_case "pp" `Quick pp_table_renders;
      ] );
    ( "table.suffix_index",
      [ Alcotest.test_case "queries" `Quick suffix_index_queries ] );
    ( "table.check",
      [
        Alcotest.test_case "accepts consistent" `Quick checker_accepts_consistent;
        Alcotest.test_case "false negative" `Quick checker_detects_false_negative;
        Alcotest.test_case "dangling" `Quick checker_detects_dangling;
        Alcotest.test_case "limit" `Quick checker_limit;
        Alcotest.test_case "reachability" `Quick reachability_on_consistent;
        Alcotest.test_case "reachability break" `Quick reachability_detects_break;
      ] );
  ]
