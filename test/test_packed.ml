(* Properties of the packed identifier representation: every observable
   behaviour must agree with the array-backed Id on packable spaces. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Packed = Ntcu_id.Packed
module Rng = Ntcu_std.Rng

let check = Alcotest.check

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Packable spaces of several shapes: power-of-two and odd bases, full and
   shallow depths, including the paper's simulated space. *)
let spaces =
  [
    Params.make ~b:2 ~d:62;
    Params.make ~b:4 ~d:31;
    Params.make ~b:16 ~d:8;
    Params.make ~b:16 ~d:15;
    Params.make ~b:10 ~d:4;
    Params.make ~b:7 ~d:6;
  ]

(* (params, digits) for a random id in a random packable space. *)
let digits_gen =
  let open QCheck.Gen in
  let* p = oneofl spaces in
  let* digits = array_size (return p.Params.d) (int_bound (p.Params.b - 1)) in
  return (p, digits)

let arb_digits =
  QCheck.make
    ~print:(fun (p, digits) ->
      Printf.sprintf "b=%d d=%d [%s]" p.Params.b p.Params.d
        (String.concat ";" (Array.to_list (Array.map string_of_int digits))))
    digits_gen

let packable_gate () =
  check Alcotest.bool "paper_sim_d8 packable" true
    (Packed.packable Params.paper_sim_d8);
  check Alcotest.bool "paper_sim_d40 not packable" false
    (Packed.packable Params.paper_sim_d40);
  Alcotest.check_raises "layout refuses unpackable"
    (Invalid_argument "Packed.layout: 40 digits of base 16 exceed 62 bits")
    (fun () -> ignore (Packed.layout Params.paper_sim_d40))

let suites =
  [
    ( "packed",
      [
        Alcotest.test_case "packable gate" `Quick packable_gate;
        qtest "make/digit round-trip vs Id" arb_digits (fun (p, digits) ->
            let lay = Packed.layout p in
            let x = Packed.make lay digits in
            let id = Id.make p digits in
            Array.to_list digits
            = List.init p.Params.d (Packed.digit lay x)
            && Array.to_list digits = List.init p.Params.d (Id.digit id));
        qtest "of_id/to_id round-trip" arb_digits (fun (p, digits) ->
            let lay = Packed.layout p in
            let id = Id.make p digits in
            let x = Packed.of_id lay id in
            Id.equal id (Packed.to_id lay x)
            && Packed.equal x (Packed.of_id lay (Packed.to_id lay x)));
        qtest "of_string/to_string round-trip vs Id" arb_digits
          (fun (p, digits) ->
            let lay = Packed.layout p in
            let x = Packed.make lay digits in
            let s = Packed.to_string lay x in
            s = Id.to_string (Id.make p digits)
            && Packed.equal x (Packed.of_string lay s));
        qtest "of_int validates stored values" arb_digits (fun (p, digits) ->
            let lay = Packed.layout p in
            let x = Packed.make lay digits in
            Packed.equal x (Packed.of_int lay (Packed.to_int x)));
        qtest "equal/compare/hash agree with Id"
          (QCheck.pair arb_digits arb_digits)
          (fun ((p1, d1), (p2, d2)) ->
            QCheck.assume (p1 == p2);
            let p = p1 in
            let lay = Packed.layout p in
            let x = Packed.make lay d1 and y = Packed.make lay d2 in
            let ix = Id.make p d1 and iy = Id.make p d2 in
            Packed.equal x y = Id.equal ix iy
            && compare (Packed.compare x y) 0 = compare (Id.compare ix iy) 0
            && Packed.hash lay x = Id.hash ix
            && Packed.hash lay y = Id.hash iy);
        qtest "csuf_len agrees with Id"
          (QCheck.pair arb_digits arb_digits)
          (fun ((p1, d1), (p2, d2)) ->
            QCheck.assume (p1 == p2);
            let lay = Packed.layout p1 in
            Packed.csuf_len lay (Packed.make lay d1) (Packed.make lay d2)
            = Id.csuf_len (Id.make p1 d1) (Id.make p1 d2));
        qtest "random draws in lockstep with Id.random"
          QCheck.(pair (oneofl spaces) small_nat)
          (fun (p, seed) ->
            let lay = Packed.layout p in
            let r1 = Rng.create seed and r2 = Rng.create seed in
            let x = Packed.random r1 lay in
            let id = Id.random r2 p in
            Id.equal id (Packed.to_id lay x)
            (* and the generators were consumed identically: the next draw
               from each agrees too *)
            && Id.equal (Id.random r2 p) (Packed.to_id lay (Packed.random r1 lay)));
        qtest "random_with_suffix in lockstep with Id"
          QCheck.(pair arb_digits small_nat)
          (fun ((p, digits), seed) ->
            let lay = Packed.layout p in
            let suf = Array.sub digits 0 (min 3 p.Params.d) in
            let r1 = Rng.create seed and r2 = Rng.create seed in
            let x = Packed.random_with_suffix r1 lay suf in
            let id = Id.random_with_suffix r2 p suf in
            Id.equal id (Packed.to_id lay x) && Packed.has_suffix lay x suf);
        qtest "suffix_value collides exactly on shared suffixes"
          (QCheck.pair arb_digits arb_digits)
          (fun ((p1, d1), (p2, d2)) ->
            QCheck.assume (p1 == p2);
            let lay = Packed.layout p1 in
            let x = Packed.make lay d1 and y = Packed.make lay d2 in
            let common = Packed.csuf_len lay x y in
            List.for_all
              (fun k ->
                Packed.suffix lay x k = Id.suffix (Id.make p1 d1) k
                && (Packed.suffix_value lay x k = Packed.suffix_value lay y k)
                   = (common >= k))
              (List.init (p1.Params.d + 1) Fun.id));
      ] );
  ]
