module Graph = Ntcu_topology.Graph
module Transit_stub = Ntcu_topology.Transit_stub
module Distances = Ntcu_topology.Distances
module Endhosts = Ntcu_topology.Endhosts

let check = Alcotest.check

let graph_basics () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.;
  Graph.add_edge g 1 2 2.;
  check Alcotest.int "vertices" 4 (Graph.n_vertices g);
  check Alcotest.int "edges" 2 (Graph.n_edges g);
  check Alcotest.int "degree" 2 (Graph.degree g 1);
  check Alcotest.bool "disconnected (vertex 3)" false (Graph.is_connected g);
  Graph.add_edge g 2 3 1.;
  check Alcotest.bool "connected" true (Graph.is_connected g)

let graph_validation () =
  let g = Graph.create 3 in
  (try
     Graph.add_edge g 0 0 1.;
     Alcotest.fail "self-loop accepted"
   with Invalid_argument _ -> ());
  (try
     Graph.add_edge g 0 5 1.;
     Alcotest.fail "bad endpoint accepted"
   with Invalid_argument _ -> ());
  try
    Graph.add_edge g 0 1 0.;
    Alcotest.fail "zero weight accepted"
  with Invalid_argument _ -> ()

let dijkstra_line () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.;
  Graph.add_edge g 1 2 2.;
  Graph.add_edge g 2 3 3.;
  Graph.add_edge g 0 3 10.;
  let d = Graph.dijkstra g 0 in
  check (Alcotest.float 1e-9) "d(0,0)" 0. d.(0);
  check (Alcotest.float 1e-9) "d(0,2)" 3. d.(2);
  check (Alcotest.float 1e-9) "shortcut beats direct" 6. d.(3)

let dijkstra_unreachable () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.;
  let d = Graph.dijkstra g 0 in
  check Alcotest.bool "unreachable is infinite" true (d.(2) = infinity)

let transit_stub_shape () =
  let c = Transit_stub.default_config in
  let t = Transit_stub.generate ~seed:3 c in
  let g = Transit_stub.graph t in
  check Alcotest.int "router count" (Transit_stub.router_count c) (Graph.n_vertices g);
  check Alcotest.bool "connected" true (Graph.is_connected g);
  check Alcotest.int "transit routers"
    (c.transit_domains * c.transit_routers_per_domain)
    (Array.length (Transit_stub.transit_routers t));
  Array.iter
    (fun r -> check Alcotest.bool "flagged transit" true (Transit_stub.is_transit t r))
    (Transit_stub.transit_routers t);
  Array.iter
    (fun r -> check Alcotest.bool "flagged stub" false (Transit_stub.is_transit t r))
    (Transit_stub.stub_routers t)

let transit_stub_deterministic () =
  let c = Transit_stub.default_config in
  let a = Transit_stub.generate ~seed:9 c and b = Transit_stub.generate ~seed:9 c in
  let da = Graph.dijkstra (Transit_stub.graph a) 0 in
  let db = Graph.dijkstra (Transit_stub.graph b) 0 in
  check (Alcotest.array (Alcotest.float 1e-12)) "same distances" da db

let scaled_config_size () =
  check Alcotest.int "scaled router count" 2048
    (Transit_stub.router_count Transit_stub.scaled_config);
  check Alcotest.int "paper router count" 8320
    (Transit_stub.router_count Transit_stub.paper_config)

let distances_symmetric_cached () =
  let t = Transit_stub.generate ~seed:4 Transit_stub.default_config in
  let d = Distances.create (Transit_stub.graph t) in
  let pairs = [ (0, 17); (3, 44); (12, 80) ] in
  List.iter
    (fun (u, v) ->
      check (Alcotest.float 1e-9) "symmetric" (Distances.distance d u v)
        (Distances.distance d v u))
    pairs;
  check Alcotest.bool "cache bounded by sources" true (Distances.cached_sources d <= 3);
  check (Alcotest.float 1e-9) "self distance" 0. (Distances.distance d 5 5)

let endhosts_distances () =
  let t = Transit_stub.generate ~seed:4 Transit_stub.default_config in
  let hosts = Endhosts.attach ~seed:7 t ~n:20 in
  check Alcotest.int "host count" 20 (Endhosts.count hosts);
  for a = 0 to 4 do
    for b = 0 to 4 do
      let dab = Endhosts.distance hosts a b and dba = Endhosts.distance hosts b a in
      check (Alcotest.float 1e-9) "symmetric" dab dba;
      if a = b then check (Alcotest.float 1e-9) "self" 0. dab
      else check Alcotest.bool "positive" true (dab > 0.)
    done
  done

let endhosts_attach_to_stubs () =
  let t = Transit_stub.generate ~seed:4 Transit_stub.default_config in
  let hosts = Endhosts.attach ~seed:7 t ~n:50 in
  for h = 0 to 49 do
    check Alcotest.bool "attached to stub router" false
      (Transit_stub.is_transit t (Endhosts.router_of hosts h))
  done

let endhosts_latency_positive () =
  let t = Transit_stub.generate ~seed:4 Transit_stub.default_config in
  let hosts = Endhosts.attach ~seed:7 t ~n:10 in
  let l = Endhosts.latency ~jitter:0.1 ~seed:2 hosts in
  for _ = 1 to 50 do
    check Alcotest.bool "positive latency" true
      (Ntcu_sim.Latency.sample l ~src:1 ~dst:7 > 0.)
  done

let triangle_inequality_sampled () =
  let t = Transit_stub.generate ~seed:12 Transit_stub.default_config in
  let d = Distances.create (Transit_stub.graph t) in
  let rng = Ntcu_std.Rng.create 3 in
  let n = Graph.n_vertices (Transit_stub.graph t) in
  for _ = 1 to 100 do
    let a = Ntcu_std.Rng.int rng n
    and b = Ntcu_std.Rng.int rng n
    and c = Ntcu_std.Rng.int rng n in
    let ab = Distances.distance d a b
    and bc = Distances.distance d b c
    and ac = Distances.distance d a c in
    if ac > ab +. bc +. 1e-6 then
      Alcotest.failf "triangle violated: d(%d,%d)=%f > %f" a c ac (ab +. bc)
  done

let suites =
  [
    ( "topology",
      [
        Alcotest.test_case "graph basics" `Quick graph_basics;
        Alcotest.test_case "graph validation" `Quick graph_validation;
        Alcotest.test_case "dijkstra" `Quick dijkstra_line;
        Alcotest.test_case "dijkstra unreachable" `Quick dijkstra_unreachable;
        Alcotest.test_case "transit-stub shape" `Quick transit_stub_shape;
        Alcotest.test_case "generator determinism" `Quick transit_stub_deterministic;
        Alcotest.test_case "config sizes" `Quick scaled_config_size;
        Alcotest.test_case "distances" `Quick distances_symmetric_cached;
        Alcotest.test_case "endhost distances" `Quick endhosts_distances;
        Alcotest.test_case "endhosts on stubs" `Quick endhosts_attach_to_stubs;
        Alcotest.test_case "latency model" `Quick endhosts_latency_positive;
        Alcotest.test_case "triangle inequality" `Quick triangle_inequality_sampled;
      ] );
  ]
