(* Golden-trace regression test.

   The event-queue, shortest-path and codec optimizations all promise
   byte-identical simulation behaviour. This test pins that promise to a
   committed fixture: a full delivery trace (exact hex-float timestamps) of a
   small Figure-15(b)-style run. Any change to event ordering, latency
   sampling or message contents shows up as a divergence here, with the first
   differing event printed.

   To regenerate after an intentional behaviour change:

     NTCU_GOLDEN_OUT=$PWD/test/golden_trace.expected \
       dune exec test/test_main.exe -- test goldentrace
*)

module Trace = Ntcu_sim.Trace
module Network = Ntcu_core.Network
module Experiment = Ntcu_harness.Experiment

let fixture_file = "golden_trace.expected"

(* Read at module load, before the test framework runs, so the relative path
   resolves in dune's sandbox (the fixture is a declared test dependency). *)
let fixture_lines =
  try
    let ic = open_in fixture_file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        Some (List.rev !lines))
  with Sys_error _ -> None

let golden_setup = { Experiment.d = 8; n = 60; m = 20 }

let golden_trace () =
  let run =
    Experiment.fig15b ~routers:Ntcu_topology.Transit_stub.default_config
      ~record_trace:true ~seed:7 golden_setup
  in
  match Network.trace run.net with
  | None -> Alcotest.fail "trace recording was not enabled"
  | Some tr -> tr

let digest_of_lines lines = Digest.to_hex (Digest.string (String.concat "\n" lines))

let reproduces_fixture () =
  let tr = golden_trace () in
  let lines = Trace.to_lines tr in
  (match Sys.getenv_opt "NTCU_GOLDEN_OUT" with
  | Some path ->
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    Printf.printf "regenerated %s (%d events, digest %s)\n" path (List.length lines)
      (Trace.digest tr)
  | None -> ());
  match fixture_lines with
  | None ->
    (* Deliberately a failure, not a skip: CI greps for this test having run
       and a silently missing fixture must not pass. *)
    Alcotest.failf "fixture %s missing; regenerate with NTCU_GOLDEN_OUT" fixture_file
  | Some expected ->
    let rec first_diff i a b =
      match (a, b) with
      | [], [] -> None
      | x :: a', y :: b' ->
        if String.equal x y then first_diff (i + 1) a' b' else Some (i, Some x, Some y)
      | x :: _, [] -> Some (i, Some x, None)
      | [], y :: _ -> Some (i, None, Some y)
    in
    (match first_diff 0 expected lines with
    | None -> ()
    | Some (i, e, g) ->
      let show = function Some l -> l | None -> "<trace ended>" in
      Alcotest.failf
        "trace diverged at event %d:\n  expected: %s\n  got:      %s\n(%d expected \
         events, %d got)"
        i (show e) (show g) (List.length expected) (List.length lines));
    Alcotest.check Alcotest.string "digest" (digest_of_lines expected) (Trace.digest tr)

(* The same seed must reproduce the trace within a process too — digest and
   divergence reporting are exercised directly. *)
let rerun_identical () =
  let a = golden_trace () and b = golden_trace () in
  Alcotest.check Alcotest.string "same digest" (Trace.digest a) (Trace.digest b);
  Alcotest.check Alcotest.bool "no divergence" true (Trace.first_divergence a b = None)

let divergence_reporting () =
  let a = Trace.create () and b = Trace.create () in
  Trace.record a 1. "x";
  Trace.record b 1. "x";
  Alcotest.check Alcotest.bool "equal" true (Trace.first_divergence a b = None);
  Trace.record a 2. "y";
  Trace.record b 2. "z";
  (match Trace.first_divergence a b with
  | Some (1, Some la, Some lb) ->
    Alcotest.check Alcotest.bool "lines differ" true (la <> lb)
  | other ->
    Alcotest.failf "unexpected divergence: %s"
      (match other with None -> "none" | Some (i, _, _) -> string_of_int i));
  Trace.record a 3. "tail";
  match Trace.first_divergence b a with
  | Some (1, _, _) -> ()
  | _ -> Alcotest.fail "divergence index changed by extra tail"

let suites =
  [
    ( "goldentrace",
      [
        Alcotest.test_case "reproduces fixture" `Quick reproduces_fixture;
        Alcotest.test_case "rerun identical" `Quick rerun_identical;
        Alcotest.test_case "divergence reporting" `Quick divergence_reporting;
      ] );
  ]
