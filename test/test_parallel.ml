(* The Parallel domain pool: ordered fan-out of independent simulation runs.

   Covers the pool's contract (results in submission order under adversarial
   per-task delays, exception propagation with a reusable pool), the
   owner-domain guards that make accidental sharing of Engine/Distances an
   error instead of silent corruption, and the headline guarantee: a small
   fig15b sweep and a fault-injection grid emit byte-identical Report.Json
   payloads at --jobs 1 and --jobs 4. *)

module Parallel = Ntcu_std.Parallel
module Experiment = Ntcu_harness.Experiment
module Params = Ntcu_id.Params
module J = Ntcu_harness.Report.Json

let check = Alcotest.check

(* Busy-work the compiler cannot elide, used to give early-submitted tasks
   adversarially *longer* runtimes so completion order inverts submission
   order on a real multicore. *)
let spin n =
  let acc = ref 0 in
  for k = 1 to n do
    acc := !acc + k
  done;
  ignore (Sys.opaque_identity !acc)

let ordered_under_adversarial_delays () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let inputs = List.init 16 Fun.id in
      let f i =
        spin ((16 - i) * 30_000);
        (i * 10) + 1
      in
      let got = Parallel.map pool f inputs in
      check Alcotest.(list int) "submission order" (List.map f inputs) got)

let exception_propagation_pool_reusable () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let boom i = if i = 3 then failwith "boom" else i * i in
      Alcotest.check_raises "original exception" (Failure "boom") (fun () ->
          ignore (Parallel.map pool boom (List.init 8 Fun.id)));
      (* The failed batch must leave the pool fully operational. *)
      let got = Parallel.map pool (fun i -> i + 1) (List.init 8 Fun.id) in
      check Alcotest.(list int) "pool reusable after failure" (List.init 8 (fun i -> i + 1)) got)

let serial_pool_runs_in_caller () =
  Parallel.with_pool ~jobs:1 (fun pool ->
      let self = Domain.self () in
      let domains = Parallel.map pool (fun _ -> Domain.self ()) (List.init 4 Fun.id) in
      check Alcotest.bool "jobs=1 never leaves the calling domain" true
        (List.for_all (fun d -> d = self) domains))

let raises_invalid_argument label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  | exception Invalid_argument _ -> ()

let engine_cross_domain_guard () =
  let engine = Ntcu_sim.Engine.create () in
  Ntcu_sim.Engine.schedule engine ~delay:1. (fun () -> ());
  let d =
    Domain.spawn (fun () ->
        raises_invalid_argument "schedule" (fun () ->
            Ntcu_sim.Engine.schedule engine ~delay:2. (fun () -> ()));
        raises_invalid_argument "step" (fun () -> Ntcu_sim.Engine.step engine);
        true)
  in
  check Alcotest.bool "foreign domain rejected" true (Domain.join d);
  (* The creating domain is unaffected. *)
  Ntcu_sim.Engine.run engine;
  check Alcotest.int "own domain still runs" 1 (Ntcu_sim.Engine.events_processed engine)

let distances_cross_domain_guard () =
  let g = Ntcu_topology.Graph.create 3 in
  Ntcu_topology.Graph.add_edge g 0 1 1.5;
  Ntcu_topology.Graph.add_edge g 1 2 2.5;
  let dist = Ntcu_topology.Distances.create g in
  check (Alcotest.float 1e-9) "own domain queries" 4.
    (Ntcu_topology.Distances.distance dist 0 2);
  let d =
    Domain.spawn (fun () ->
        raises_invalid_argument "distance" (fun () ->
            Ntcu_topology.Distances.distance dist 0 2);
        true)
  in
  check Alcotest.bool "foreign domain rejected" true (Domain.join d);
  (* Read-only diagnostics stay callable from anywhere. *)
  let d = Domain.spawn (fun () -> (Ntcu_topology.Distances.stats dist).queries) in
  check Alcotest.int "stats readable cross-domain" 1 (Domain.join d)

(* ---- determinism: jobs 1 vs jobs 4 must emit byte-identical payloads ----

   Mirrors the bench harness wiring: independent seeded runs fanned out with
   Parallel.map, deterministic result fields serialized with Report.Json.
   Wall/CPU-time fields are exactly what the guarantee excludes, so they are
   not part of the payload. *)

let join_run_payload (setup : Experiment.fig15b_setup) (run : Experiment.join_run) =
  J.Obj
    [
      ("d", J.Int setup.d);
      ("n", J.Int setup.n);
      ("m", J.Int setup.m);
      ("events", J.Int run.events);
      ("join_noti", J.List (Array.to_list (Array.map (fun v -> J.Int v) run.join_noti)));
      ("cp_wait", J.List (Array.to_list (Array.map (fun v -> J.Int v) run.cp_wait)));
      ("consistent", J.Bool (Experiment.consistent run));
      ("all_in_system", J.Bool run.all_in_system);
      ("quiescent", J.Bool run.quiescent);
    ]

let fig15b_payload ~jobs =
  let routers = Ntcu_topology.Transit_stub.default_config in
  let setups =
    [ { Experiment.d = 8; n = 120; m = 30 }; { Experiment.d = 8; n = 150; m = 40 } ]
  in
  Parallel.with_pool ~jobs (fun pool ->
      let runs =
        Parallel.map pool
          (fun (i, setup) -> (setup, Experiment.fig15b ~routers ~seed:(100 + i) setup))
          (List.mapi (fun i setup -> (i, setup)) setups)
      in
      J.to_string (J.List (List.map (fun (setup, run) -> join_run_payload setup run) runs)))

let fault_payload ~jobs =
  let p = Params.make ~b:16 ~d:8 in
  let losses = [ 0.02 ] and crashes = [ 0.0; 0.02 ] in
  let grid = List.concat_map (fun l -> List.map (fun c -> (l, c)) crashes) losses in
  Parallel.with_pool ~jobs (fun pool ->
      let cells =
        Parallel.map pool
          (fun (loss, crash_fraction) ->
            Experiment.fault_injection ~loss ~crash_fraction p ~seed:91 ~n:60 ~m:8 ())
          grid
      in
      let cell_payload (f : Experiment.fault_run) =
        J.Obj
          [
            ("crashed", J.Int (List.length f.crashed));
            ("stuck", J.Int f.stuck);
            ("retransmissions", J.Int f.retransmissions);
            ("timeouts", J.Int f.timeouts);
            ("failovers", J.Int f.failovers);
            ("duplicates", J.Int f.duplicates);
            ("lost", J.Int f.lost);
            ("acks_lost", J.Int f.acks_lost);
            ("events", J.Int f.run.events);
            ("consistent", J.Bool (Experiment.consistent f.run));
            ("all_in_system", J.Bool f.run.all_in_system);
          ]
      in
      J.to_string (J.List (List.map cell_payload cells)))

let fig15b_deterministic_across_jobs () =
  let serial = fig15b_payload ~jobs:1 in
  let parallel = fig15b_payload ~jobs:4 in
  check Alcotest.string "fig15b payload byte-identical" serial parallel

let fault_grid_deterministic_across_jobs () =
  let serial = fault_payload ~jobs:1 in
  let parallel = fault_payload ~jobs:4 in
  check Alcotest.string "fault-grid payload byte-identical" serial parallel

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "ordered under adversarial delays" `Quick
          ordered_under_adversarial_delays;
        Alcotest.test_case "exception propagation, pool reusable" `Quick
          exception_propagation_pool_reusable;
        Alcotest.test_case "jobs=1 stays in calling domain" `Quick serial_pool_runs_in_caller;
        Alcotest.test_case "engine cross-domain guard" `Quick engine_cross_domain_guard;
        Alcotest.test_case "distances cross-domain guard" `Quick
          distances_cross_domain_guard;
        Alcotest.test_case "fig15b deterministic across jobs" `Slow
          fig15b_deterministic_across_jobs;
        Alcotest.test_case "fault grid deterministic across jobs" `Slow
          fault_grid_deterministic_across_jobs;
      ] );
  ]
