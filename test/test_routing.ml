module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Route = Ntcu_routing.Route
module Directory = Ntcu_routing.Directory
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Experiment = Ntcu_harness.Experiment
module Rng = Ntcu_std.Rng

let check = Alcotest.check

let make_net ~seed ~n ~m =
  let run = Experiment.concurrent_joins (Params.make ~b:4 ~d:6) ~seed ~n ~m () in
  Alcotest.(check int) "consistent" 0 (List.length (Lazy.force run.violations));
  run

let lookup_of run x = Option.map Node.table (Network.node run.Experiment.net x)

let routes_reach_everyone () =
  let run = make_net ~seed:5 ~n:20 ~m:20 in
  let lookup = lookup_of run in
  let ids = Network.ids run.net in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          match Route.route ~lookup ~src ~dst with
          | Ok path ->
            (match path with
            | first :: _ -> check Alcotest.bool "starts at src" true (Id.equal first src)
            | [] -> Alcotest.fail "empty path");
            let last = List.nth path (List.length path - 1) in
            check Alcotest.bool "ends at dst" true (Id.equal last dst)
          | Error e -> Alcotest.failf "route %a -> %a: %a" Id.pp src Id.pp dst Route.pp_error e)
        ids)
    (match ids with a :: b :: c :: _ -> [ a; b; c ] | l -> l)

let hops_bounded_and_monotone () =
  let run = make_net ~seed:6 ~n:30 ~m:20 in
  let lookup = lookup_of run in
  let ids = Array.of_list (Network.ids run.net) in
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let src = Rng.pick rng ids and dst = Rng.pick rng ids in
    match Route.route ~lookup ~src ~dst with
    | Ok path ->
      check Alcotest.bool "hop bound d" true (Route.hop_count path <= 6);
      (* Each hop strictly extends the common suffix with the target. *)
      let rec monotone = function
        | a :: (b :: _ as rest) ->
          Id.csuf_len b dst > Id.csuf_len a dst && monotone rest
        | [ _ ] | [] -> true
      in
      check Alcotest.bool "suffix grows per hop" true (monotone path)
    | Error e -> Alcotest.failf "route failed: %a" Route.pp_error e
  done

let self_route_is_trivial () =
  let run = make_net ~seed:7 ~n:5 ~m:5 in
  let lookup = lookup_of run in
  let x = List.hd (Network.ids run.net) in
  match Route.route ~lookup ~src:x ~dst:x with
  | Ok [ only ] -> check Alcotest.bool "self" true (Id.equal only x)
  | Ok _ -> Alcotest.fail "expected singleton path"
  | Error e -> Alcotest.failf "self route: %a" Route.pp_error e

let dead_end_detected () =
  let p = Params.make ~b:4 ~d:4 in
  let a = Id.of_string p "0000" and b = Id.of_string p "1111" in
  let ta = Ntcu_table.Table.create p ~owner:a in
  Ntcu_table.Table.fill_self ta S;
  let tables = [ (a, ta) ] in
  let lookup x = List.assoc_opt x (List.map (fun (i, t) -> (i, t)) tables) in
  match Route.route ~lookup ~src:a ~dst:b with
  | Error (Route.Dead_end _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Route.pp_error e
  | Ok _ -> Alcotest.fail "route through missing node"

let path_cost_sums () =
  let p = Params.make ~b:4 ~d:4 in
  let ids = List.map (Id.of_string p) [ "0000"; "0001"; "0011" ] in
  let dist _ _ = 2.5 in
  match ids with
  | [ a; b; c ] ->
    check (Alcotest.float 1e-9) "two hops" 5. (Route.path_cost ~dist [ a; b; c ]);
    check (Alcotest.float 1e-9) "no hop" 0. (Route.path_cost ~dist [ a ])
  | _ -> assert false

(* --- directory / object location --- *)

let directory_root_unique () =
  let run = make_net ~seed:8 ~n:25 ~m:15 in
  let lookup = lookup_of run in
  let dir = Directory.create ~lookup () in
  let ids = Array.of_list (Network.ids run.net) in
  let rng = Rng.create 11 in
  let p = Network.params run.net in
  for _ = 1 to 30 do
    let obj = Id.random rng p in
    let roots =
      List.map
        (fun from ->
          match Directory.root_of dir ~from obj with
          | Ok root -> Id.to_string root
          | Error e -> Alcotest.failf "root_of failed: %a" Route.pp_error e)
        (Array.to_list (Array.sub ids 0 8))
    in
    check Alcotest.int "all starts agree on the root (P1)" 1
      (List.length (List.sort_uniq compare roots))
  done

let publish_then_lookup () =
  let run = make_net ~seed:9 ~n:20 ~m:10 in
  let lookup = lookup_of run in
  let dir = Directory.create ~lookup () in
  let ids = Array.of_list (Network.ids run.net) in
  let rng = Rng.create 13 in
  let p = Network.params run.net in
  for _ = 1 to 20 do
    let obj = Id.random rng p in
    let storer = Rng.pick rng ids in
    (match Directory.publish dir ~storer obj with
    | Ok hops -> check Alcotest.bool "hop bound" true (hops <= 6)
    | Error e -> Alcotest.failf "publish: %a" Route.pp_error e);
    let client = Rng.pick rng ids in
    match Directory.lookup_object dir ~client obj with
    | Ok { storers; _ } ->
      check Alcotest.bool "storer found (P1)" true
        (List.exists (Id.equal storer) storers)
    | Error e -> Alcotest.failf "lookup: %a" Route.pp_error e
  done

let lookup_from_storer_is_local () =
  let run = make_net ~seed:10 ~n:20 ~m:10 in
  let lookup = lookup_of run in
  let dir = Directory.create ~lookup () in
  let p = Network.params run.net in
  let storer = List.hd (Network.ids run.net) in
  let obj = Id.random (Rng.create 1) p in
  (match Directory.publish dir ~storer obj with Ok _ -> () | Error _ -> Alcotest.fail "publish");
  match Directory.lookup_object dir ~client:storer obj with
  | Ok { hops; _ } ->
    check Alcotest.int "pointer at the first node" 1 (List.length hops)
  | Error e -> Alcotest.failf "lookup: %a" Route.pp_error e

let unpublished_reports_no_storers () =
  let run = make_net ~seed:12 ~n:10 ~m:5 in
  let lookup = lookup_of run in
  let dir = Directory.create ~lookup () in
  let p = Network.params run.net in
  let obj = Id.random (Rng.create 2) p in
  match Directory.lookup_object dir ~client:(List.hd (Network.ids run.net)) obj with
  | Ok { storers; _ } -> check Alcotest.(list string) "none" [] (List.map Id.to_string storers)
  | Error e -> Alcotest.failf "lookup: %a" Route.pp_error e

let unpublish_removes () =
  let run = make_net ~seed:13 ~n:15 ~m:5 in
  let lookup = lookup_of run in
  let dir = Directory.create ~lookup () in
  let p = Network.params run.net in
  let ids = Network.ids run.net in
  let storer = List.hd ids and client = List.nth ids 3 in
  let obj = Id.random (Rng.create 3) p in
  (match Directory.publish dir ~storer obj with Ok _ -> () | Error _ -> Alcotest.fail "publish");
  Directory.unpublish dir ~storer obj;
  match Directory.lookup_object dir ~client obj with
  | Ok { storers; _ } -> check Alcotest.int "gone" 0 (List.length storers)
  | Error e -> Alcotest.failf "lookup: %a" Route.pp_error e

let multiple_replicas_found () =
  let run = make_net ~seed:14 ~n:25 ~m:10 in
  let lookup = lookup_of run in
  let dir = Directory.create ~lookup () in
  let p = Network.params run.net in
  let ids = Array.of_list (Network.ids run.net) in
  let obj = Id.random (Rng.create 4) p in
  let s1 = ids.(0) and s2 = ids.(1) in
  (match Directory.publish dir ~storer:s1 obj with Ok _ -> () | Error _ -> Alcotest.fail "p1");
  (match Directory.publish dir ~storer:s2 obj with Ok _ -> () | Error _ -> Alcotest.fail "p2");
  (* The root holds pointers to both replicas. *)
  match Directory.root_of dir ~from:ids.(2) obj with
  | Ok root ->
    let at_root = Directory.pointers_at dir root in
    (match List.find_opt (fun (o, _) -> Id.equal o obj) at_root with
    | Some (_, storers) -> check Alcotest.int "both replicas at root" 2 (List.length storers)
    | None -> Alcotest.fail "no pointer at root")
  | Error e -> Alcotest.failf "root: %a" Route.pp_error e

let suites =
  [
    ( "routing.route",
      [
        Alcotest.test_case "reaches everyone" `Quick routes_reach_everyone;
        Alcotest.test_case "hops bounded, suffix monotone" `Quick hops_bounded_and_monotone;
        Alcotest.test_case "self route" `Quick self_route_is_trivial;
        Alcotest.test_case "dead end" `Quick dead_end_detected;
        Alcotest.test_case "path cost" `Quick path_cost_sums;
      ] );
    ( "routing.directory",
      [
        Alcotest.test_case "root unique (P1)" `Quick directory_root_unique;
        Alcotest.test_case "publish/lookup (P1)" `Quick publish_then_lookup;
        Alcotest.test_case "local lookup short (P2)" `Quick lookup_from_storer_is_local;
        Alcotest.test_case "unpublished object" `Quick unpublished_reports_no_storers;
        Alcotest.test_case "unpublish" `Quick unpublish_removes;
        Alcotest.test_case "replicas" `Quick multiple_replicas_found;
      ] );
  ]
