module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Table = Ntcu_table.Table
module Message = Ntcu_core.Message
module Stats = Ntcu_core.Stats

let check = Alcotest.check
let p = Params.make ~b:4 ~d:5
let id s = Id.of_string p s

let sample_snapshot () =
  let t = Table.create p ~owner:(id "21233") in
  Table.fill_self t S;
  Table.Snapshot.of_table t

let kinds_are_distinct () =
  let kinds =
    [
      Message.K_cp_rst;
      K_cp_rly;
      K_join_wait;
      K_join_wait_rly;
      K_join_noti;
      K_join_noti_rly;
      K_in_sys_noti;
      K_spe_noti;
      K_spe_noti_rly;
      K_rv_ngh_noti;
      K_rv_ngh_noti_rly;
    ]
  in
  check Alcotest.int "count" Message.kind_count (List.length kinds);
  let indices = List.map Message.kind_index kinds in
  check Alcotest.int "distinct indices" Message.kind_count
    (List.length (List.sort_uniq compare indices));
  let names = List.map Message.kind_name kinds in
  check Alcotest.int "distinct names" Message.kind_count
    (List.length (List.sort_uniq compare names))

let kind_of_message () =
  let snap = sample_snapshot () in
  check Alcotest.bool "cp_rst" true (Message.kind (Cp_rst { level = 0 }) = K_cp_rst);
  check Alcotest.bool "join_noti" true
    (Message.kind (Join_noti { table = snap; noti_level = 0; filled = None }) = K_join_noti);
  check Alcotest.bool "rv_ngh" true
    (Message.kind (Rv_ngh_noti { level = 0; digit = 1; recorded = T }) = K_rv_ngh_noti)

let id_bytes_packing () =
  (* b=4 -> 2 bits per digit; 5 digits -> 10 bits -> 2 bytes. *)
  check Alcotest.int "packed id" 2 (Message.id_bytes p);
  (* b=16, d=8 -> 32 bits -> 4 bytes. *)
  check Alcotest.int "hex id" 4 (Message.id_bytes (Params.make ~b:16 ~d:8));
  (* b=16, d=40 -> 160 bits -> 20 bytes (SHA-1 size, as in the paper). *)
  check Alcotest.int "sha1 id" 20 (Message.id_bytes (Params.make ~b:16 ~d:40))

let size_scales_with_cells () =
  let snap = sample_snapshot () in
  let small = Message.size_bytes p (Cp_rly { table = snap }) in
  let empty =
    Message.size_bytes p
      (Cp_rly { table = Table.Snapshot.filter snap ~f:(fun _ -> false) })
  in
  check Alcotest.bool "more cells cost more" true (small > empty);
  check Alcotest.int "delta is cells * cell_bytes" (5 * Message.cell_bytes p)
    (small - empty)

let small_messages_are_small () =
  let join_wait = Message.size_bytes p Message.Join_wait in
  let in_sys = Message.size_bytes p Message.In_sys_noti in
  let big = Message.size_bytes p (Cp_rly { table = sample_snapshot () }) in
  check Alcotest.bool "join_wait small" true (join_wait < big);
  check Alcotest.bool "in_sys small" true (in_sys < big)

let bit_vector_accounted () =
  let snap = sample_snapshot () in
  let without =
    Message.size_bytes p (Join_noti { table = snap; noti_level = 0; filled = None })
  in
  let with_bv =
    Message.size_bytes p (Join_noti { table = snap; noti_level = 0; filled = Some [] })
  in
  (* d*b = 20 bits -> 3 bytes. *)
  check Alcotest.int "bit vector bytes" 3 (with_bv - without)

let stats_record_and_add () =
  let s = Stats.create () in
  let record_sent m = Stats.record_sent s m ~bytes:(Message.size_bytes p m) in
  record_sent (Cp_rst { level = 0 });
  record_sent Message.Join_wait;
  record_sent (Join_noti { table = sample_snapshot (); noti_level = 0; filled = None });
  Stats.record_received s Message.In_sys_noti
    ~bytes:(Message.size_bytes p Message.In_sys_noti);
  check Alcotest.int "cp+wait" 2 (Stats.copy_and_wait_sent s);
  check Alcotest.int "join noti" 1 (Stats.join_noti_sent s);
  check Alcotest.int "total sent" 3 (Stats.total_sent s);
  check Alcotest.int "total received" 1 (Stats.total_received s);
  check Alcotest.bool "bytes counted" true (Stats.bytes_sent s > 0);
  let doubled = Stats.add s s in
  check Alcotest.int "add" 6 (Stats.total_sent doubled);
  check Alcotest.int "add bytes" (2 * Stats.bytes_sent s) (Stats.bytes_sent doubled)

let pp_smoke () =
  let messages =
    [
      Message.Cp_rst { level = 1 };
      Cp_rly { table = sample_snapshot () };
      Join_wait;
      In_sys_noti;
      Spe_noti { origin = id "21233"; subject = id "01233" };
    ]
  in
  List.iter
    (fun m -> check Alcotest.bool "renders" true (String.length (Fmt.str "%a" Message.pp m) > 0))
    messages

let suites =
  [
    ( "core.message",
      [
        Alcotest.test_case "kinds distinct" `Quick kinds_are_distinct;
        Alcotest.test_case "kind dispatch" `Quick kind_of_message;
        Alcotest.test_case "id byte packing" `Quick id_bytes_packing;
        Alcotest.test_case "size scales with cells" `Quick size_scales_with_cells;
        Alcotest.test_case "small messages" `Quick small_messages_are_small;
        Alcotest.test_case "bit vector size" `Quick bit_vector_accounted;
        Alcotest.test_case "stats" `Quick stats_record_and_add;
        Alcotest.test_case "pp" `Quick pp_smoke;
      ] );
  ]
