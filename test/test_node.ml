(* White-box tests of the protocol handlers, message by message, against the
   pseudo-code of Figures 5-14. These drive a Node.t directly, without the
   simulator, asserting the exact replies each figure prescribes. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Table = Ntcu_table.Table
module Snapshot = Table.Snapshot
module Message = Ntcu_core.Message
module Node = Ntcu_core.Node

let check = Alcotest.check
let p = Params.make ~b:4 ~d:5
let id s = Id.of_string p s
let config = { Node.params = p; size_mode = Message.Full }
let cfg_mode m = { Node.params = p; size_mode = m }

let msgs_to dst actions =
  List.filter_map
    (fun { Node.dst = d; msg } -> if Id.equal d dst then Some msg else None)
    actions


(* A seed node with one extra neighbor installed. *)
let seed_with ?(extra = []) idstr =
  let node = Node.create_seed config (id idstr) in
  List.iter
    (fun (level, digit, other) -> Table.set (Node.table node) ~level ~digit (id other) S)
    extra;
  node

let snapshot_of_strings owner cells =
  let t = Table.create p ~owner:(id owner) in
  List.iter (fun (level, digit, node, state) -> Table.set t ~level ~digit (id node) state) cells;
  Snapshot.of_table t

(* ---- Figure 5: copying ---- *)

let begin_join_sends_cp_rst () =
  let joiner = Node.create_joiner config (id "10010") in
  let actions = Node.begin_join joiner ~now:0. ~gateway:(id "21233") in
  (match actions with
  | [ { Node.dst; msg = Message.Cp_rst { level = 0 } } ] ->
    check Alcotest.bool "to gateway" true (Id.equal dst (id "21233"))
  | _ -> Alcotest.fail "expected exactly one CpRst(0)");
  check Alcotest.bool "status still copying" true (Node.status joiner = Node.Copying)

let copy_walk_advances_level () =
  (* Gateway's table has a level-0 neighbor matching the joiner's digit 0,
     in state S: the walk must continue to it with CpRst(1). *)
  let joiner = Node.create_joiner config (id "10010") in
  ignore (Node.begin_join joiner ~now:0. ~gateway:(id "21233"));
  let snap =
    snapshot_of_strings "21233" [ (0, 0, "13120", S); (0, 3, "21233", S) ]
  in
  let actions = Node.handle joiner ~now:1. ~src:(id "21233") (Message.Cp_rly { table = snap }) in
  let cp_rsts =
    List.filter_map
      (fun { Node.dst; msg } ->
        match msg with Message.Cp_rst { level } -> Some (dst, level) | _ -> None)
      actions
  in
  (match cp_rsts with
  | [ (dst, 1) ] -> check Alcotest.bool "to the level-0 match" true (Id.equal dst (id "13120"))
  | _ -> Alcotest.fail "expected CpRst(1) to 13120");
  check Alcotest.bool "still copying" true (Node.status joiner = Node.Copying);
  (* The level-0 row was copied. *)
  check Alcotest.bool "copied (0,3)" true
    (Table.neighbor (Node.table joiner) ~level:0 ~digit:3 = Some (id "21233"))

let copy_stops_on_missing_and_sends_join_wait () =
  (* Gateway has no level-0 neighbor with the joiner's digit: JoinWait goes
     back to the gateway itself (the paper's former case). *)
  let joiner = Node.create_joiner config (id "10010") in
  ignore (Node.begin_join joiner ~now:0. ~gateway:(id "21233"));
  let snap = snapshot_of_strings "21233" [ (0, 3, "21233", S) ] in
  let actions = Node.handle joiner ~now:1. ~src:(id "21233") (Message.Cp_rly { table = snap }) in
  check Alcotest.bool "waiting" true (Node.status joiner = Node.Waiting);
  (* Copying also emits RvNghNoti for the copied entries; the JoinWait must
     be among the gateway-bound messages. *)
  (if not (List.exists (( = ) Message.Join_wait) (msgs_to (id "21233") actions)) then
     Alcotest.fail "expected JoinWait to the gateway");
  (* Self entries installed at every level with state T. *)
  for level = 0 to 4 do
    match Table.get (Node.table joiner) ~level ~digit:(Id.digit (id "10010") level) with
    | Some (n, Table.T) -> check Alcotest.bool "self" true (Id.equal n (id "10010"))
    | _ -> Alcotest.fail "self entry wrong"
  done

let copy_stops_on_t_state () =
  (* The next-hop cell is a T-node: JoinWait goes to that T-node (the
     latter case of Figure 5). *)
  let joiner = Node.create_joiner config (id "10010") in
  ignore (Node.begin_join joiner ~now:0. ~gateway:(id "21233"));
  let snap = snapshot_of_strings "21233" [ (0, 0, "13120", T) ] in
  let actions = Node.handle joiner ~now:1. ~src:(id "21233") (Message.Cp_rly { table = snap }) in
  check Alcotest.bool "waiting" true (Node.status joiner = Node.Waiting);
  if not (List.exists (( = ) Message.Join_wait) (msgs_to (id "13120") actions)) then
    Alcotest.fail "expected JoinWait to the T-node"

(* ---- Figure 6: JoinWaitMsg ---- *)

let join_wait_positive_fills () =
  let node = seed_with "21233" in
  let joiner = id "10010" in
  let actions = Node.handle node ~now:0. ~src:joiner Message.Join_wait in
  (match msgs_to joiner actions with
  | [ Message.Join_wait_rly { sign = Positive; occupant; _ } ] ->
    check Alcotest.bool "occupant is joiner" true (Id.equal occupant joiner)
  | [ Message.Join_wait_rly { sign = Positive; _ }; Message.Rv_ngh_noti _ ]
  | [ Message.Rv_ngh_noti _; Message.Join_wait_rly { sign = Positive; _ } ] -> ()
  | _ -> Alcotest.fail "expected positive JoinWaitRly");
  (* Entry (0, 0) now holds the joiner, state T. *)
  match Table.get (Node.table node) ~level:0 ~digit:0 with
  | Some (n, Table.T) -> check Alcotest.bool "stored" true (Id.equal n joiner)
  | _ -> Alcotest.fail "entry not filled"

let join_wait_negative_names_occupant () =
  let node = seed_with ~extra:[ (0, 0, "13120") ] "21233" in
  let joiner = id "10010" in
  let actions = Node.handle node ~now:0. ~src:joiner Message.Join_wait in
  match msgs_to joiner actions with
  | [ Message.Join_wait_rly { sign = Negative; occupant; _ } ] ->
    check Alcotest.bool "names occupant" true (Id.equal occupant (id "13120"))
  | _ -> Alcotest.fail "expected negative JoinWaitRly"

let join_wait_queued_at_t_node () =
  let node = Node.create_joiner config (id "21233") in
  (* Force the node into notifying state indirectly is complex; copying
     status suffices: not in_system means queueing. *)
  let actions = Node.handle node ~now:0. ~src:(id "10010") Message.Join_wait in
  check Alcotest.int "no reply yet" 0 (List.length actions);
  check Alcotest.int "queued" 1 (Node.queued_join_waits node)

(* ---- Figure 7: JoinWaitRlyMsg ---- *)

let waiting_joiner () =
  (* A joiner standing in Waiting with JoinWait sent to 21233. *)
  let joiner = Node.create_joiner config (id "10010") in
  ignore (Node.begin_join joiner ~now:0. ~gateway:(id "21233"));
  let snap = snapshot_of_strings "21233" [ (0, 3, "21233", S) ] in
  ignore (Node.handle joiner ~now:1. ~src:(id "21233") (Message.Cp_rly { table = snap }));
  assert (Node.status joiner = Node.Waiting);
  joiner

let positive_reply_starts_notifying () =
  let joiner = waiting_joiner () in
  let reply =
    Message.Join_wait_rly
      {
        sign = Positive;
        occupant = id "10010";
        table = snapshot_of_strings "21233" [ (0, 3, "21233", S); (0, 0, "10010", T) ];
      }
  in
  let actions = Node.handle joiner ~now:2. ~src:(id "21233") reply in
  (* No node with csuf >= 0 other than the replier itself in its table, so
     the joiner switches immediately: InSysNoti to reverse neighbors is
     possible; status must be In_system. *)
  ignore actions;
  check Alcotest.bool "in system" true (Node.status joiner = Node.In_system);
  check Alcotest.int "noti level csuf(10010,21233)=0" 0 (Node.noti_level joiner)

let negative_reply_chains_join_wait () =
  let joiner = waiting_joiner () in
  let reply =
    Message.Join_wait_rly
      {
        sign = Negative;
        occupant = id "13120";
        table = snapshot_of_strings "21233" [ (0, 0, "13120", S) ];
      }
  in
  let actions = Node.handle joiner ~now:2. ~src:(id "21233") reply in
  check Alcotest.bool "still waiting" true (Node.status joiner = Node.Waiting);
  match msgs_to (id "13120") actions with
  | [ Message.Join_wait ] | [ Message.Join_wait; Message.Rv_ngh_noti _ ]
  | [ Message.Rv_ngh_noti _; Message.Join_wait ] -> ()
  | l ->
    Alcotest.failf "expected JoinWait to occupant, got %a"
      Fmt.(list ~sep:comma Message.pp) l

let positive_reply_notifies_peers () =
  (* The replier's table names another node sharing >= noti_level digits:
     the joiner must send it a JoinNoti. *)
  let joiner = waiting_joiner () in
  let reply =
    Message.Join_wait_rly
      {
        sign = Positive;
        occupant = id "10010";
        table = snapshot_of_strings "21233" [ (0, 0, "23100", S) ];
      }
  in
  let actions = Node.handle joiner ~now:2. ~src:(id "21233") reply in
  check Alcotest.bool "notifying" true (Node.status joiner = Node.Notifying);
  match msgs_to (id "23100") actions with
  | [ Message.Join_noti _ ] | [ Message.Join_noti _; Message.Rv_ngh_noti _ ]
  | [ Message.Rv_ngh_noti _; Message.Join_noti _ ] -> ()
  | l ->
    Alcotest.failf "expected JoinNoti to 23100, got %a" Fmt.(list ~sep:comma Message.pp) l

(* ---- Figure 9: JoinNotiMsg ---- *)

let join_noti_fills_and_flags () =
  let node = seed_with "21233" in
  (* Sender 10010 whose snapshot does NOT name us at (0, 3): f must be set
     since we are an S-node. *)
  let snap = snapshot_of_strings "10010" [ (0, 0, "10010", T) ] in
  let actions =
    Node.handle node ~now:0. ~src:(id "10010")
      (Message.Join_noti { table = snap; noti_level = 0; filled = None })
  in
  let reply =
    List.find_map
      (fun { Node.msg; _ } ->
        match msg with
        | Message.Join_noti_rly { sign; flag; _ } -> Some (sign, flag)
        | _ -> None)
      actions
  in
  match reply with
  | Some (sign, flag) ->
    check Alcotest.bool "positive (we stored it)" true (sign = Message.Positive);
    check Alcotest.bool "flag set" true flag
  | None -> Alcotest.fail "no JoinNotiRly"

let join_noti_no_flag_when_named () =
  let node = seed_with "21233" in
  let snap = snapshot_of_strings "10010" [ (0, 3, "21233", S) ] in
  let actions =
    Node.handle node ~now:0. ~src:(id "10010")
      (Message.Join_noti { table = snap; noti_level = 0; filled = None })
  in
  match
    List.find_map
      (fun { Node.msg; _ } ->
        match msg with
        | Message.Join_noti_rly { flag; _ } -> Some flag
        | _ -> None)
      actions
  with
  | Some flag -> check Alcotest.bool "flag clear" false flag
  | None -> Alcotest.fail "no JoinNotiRly"

let join_noti_negative_when_occupied () =
  let node = seed_with ~extra:[ (0, 0, "13120") ] "21233" in
  let snap = snapshot_of_strings "10010" [] in
  let actions =
    Node.handle node ~now:0. ~src:(id "10010")
      (Message.Join_noti { table = snap; noti_level = 0; filled = None })
  in
  match
    List.find_map
      (fun { Node.msg; _ } ->
        match msg with
        | Message.Join_noti_rly { sign; _ } -> Some sign
        | _ -> None)
      actions
  with
  | Some sign -> check Alcotest.bool "negative" true (sign = Message.Negative)
  | None -> Alcotest.fail "no JoinNotiRly"

(* ---- Figure 11: SpeNotiMsg ---- *)

let spe_noti_stores_or_forwards () =
  (* Empty entry: store subject with state S and reply to the origin. *)
  let node = seed_with "21233" in
  let actions =
    Node.handle node ~now:0. ~src:(id "31313")
      (Message.Spe_noti { origin = id "31313"; subject = id "10010" })
  in
  (match msgs_to (id "31313") actions with
  | [ Message.Spe_noti_rly { subject; _ } ] ->
    check Alcotest.bool "subject echoed" true (Id.equal subject (id "10010"))
  | _ -> Alcotest.fail "expected SpeNotiRly to origin");
  (match Table.get (Node.table node) ~level:0 ~digit:0 with
  | Some (n, Table.S) -> check Alcotest.bool "stored S" true (Id.equal n (id "10010"))
  | _ -> Alcotest.fail "subject not stored with S");
  (* Occupied with a different node: forward to the occupant. *)
  let node2 = seed_with ~extra:[ (0, 0, "13120") ] "21233" in
  let actions2 =
    Node.handle node2 ~now:0. ~src:(id "31313")
      (Message.Spe_noti { origin = id "31313"; subject = id "10010" })
  in
  match msgs_to (id "13120") actions2 with
  | [ Message.Spe_noti { subject; _ } ] ->
    check Alcotest.bool "forwarded subject" true (Id.equal subject (id "10010"))
  | _ -> Alcotest.fail "expected forwarded SpeNoti"

(* ---- Figure 14 and RvNgh handling ---- *)

let in_sys_noti_upgrades_state () =
  let node = seed_with "21233" in
  Table.set (Node.table node) ~level:0 ~digit:0 (id "10010") T;
  ignore (Node.handle node ~now:0. ~src:(id "10010") Message.In_sys_noti);
  (match Table.get (Node.table node) ~level:0 ~digit:0 with
  | Some (_, Table.S) -> ()
  | _ -> Alcotest.fail "state not upgraded");
  (* A stale InSysNoti from a node we do not store is ignored. *)
  ignore (Node.handle node ~now:0. ~src:(id "33333") Message.In_sys_noti)

let rv_ngh_noti_registers_and_corrects () =
  let node = seed_with "21233" in
  (* Sender recorded us as T, but we are in_system: correction expected. *)
  let actions =
    Node.handle node ~now:0. ~src:(id "10010")
      (Message.Rv_ngh_noti { level = 0; digit = 3; recorded = T })
  in
  (match msgs_to (id "10010") actions with
  | [ Message.Rv_ngh_noti_rly { state = Table.S; _ } ] -> ()
  | _ -> Alcotest.fail "expected S correction");
  check Alcotest.bool "registered reverse" true
    (Id.Set.mem (id "10010") (Table.all_reverse (Node.table node)));
  (* Consistent recording draws no reply. *)
  let actions2 =
    Node.handle node ~now:0. ~src:(id "13120")
      (Message.Rv_ngh_noti { level = 0; digit = 3; recorded = S })
  in
  check Alcotest.int "no reply" 0 (List.length actions2)

(* ---- Size modes at handler level ---- *)

let cp_rly_respects_size_mode () =
  let full_node = seed_with ~extra:[ (0, 0, "13120"); (1, 0, "20203") ] "21233" in
  let actions = Node.handle full_node ~now:0. ~src:(id "10010") (Message.Cp_rst { level = 0 }) in
  let count_cells = function
    | [ Message.Cp_rly { table } ] -> Snapshot.cell_count table
    | _ -> Alcotest.fail "expected CpRly"
  in
  let full_cells = count_cells (msgs_to (id "10010") actions) in
  let reduced = seed_with ~extra:[ (0, 0, "13120"); (1, 0, "20203") ] "21233" in
  let reduced =
    (* rebuild under Level_range config *)
    let n = Node.create_seed (cfg_mode Message.Level_range) (id "21233") in
    Table.set (Node.table n) ~level:0 ~digit:0 (id "13120") S;
    Table.set (Node.table n) ~level:1 ~digit:0 (id "20203") S;
    ignore reduced;
    n
  in
  let actions' = Node.handle reduced ~now:0. ~src:(id "10010") (Message.Cp_rst { level = 0 }) in
  let reduced_cells = count_cells (msgs_to (id "10010") actions') in
  check Alcotest.bool "level-limited reply smaller" true (reduced_cells < full_cells)

let suites =
  [
    ( "protocol.handlers",
      [
        Alcotest.test_case "Fig5: begin_join" `Quick begin_join_sends_cp_rst;
        Alcotest.test_case "Fig5: walk advances" `Quick copy_walk_advances_level;
        Alcotest.test_case "Fig5: stop on missing" `Quick copy_stops_on_missing_and_sends_join_wait;
        Alcotest.test_case "Fig5: stop on T state" `Quick copy_stops_on_t_state;
        Alcotest.test_case "Fig6: positive fill" `Quick join_wait_positive_fills;
        Alcotest.test_case "Fig6: negative occupant" `Quick join_wait_negative_names_occupant;
        Alcotest.test_case "Fig6: queue at T-node" `Quick join_wait_queued_at_t_node;
        Alcotest.test_case "Fig7: positive -> notifying" `Quick positive_reply_starts_notifying;
        Alcotest.test_case "Fig7: negative chains" `Quick negative_reply_chains_join_wait;
        Alcotest.test_case "Fig7/8: notify peers" `Quick positive_reply_notifies_peers;
        Alcotest.test_case "Fig9: fill and flag" `Quick join_noti_fills_and_flags;
        Alcotest.test_case "Fig9: no flag when named" `Quick join_noti_no_flag_when_named;
        Alcotest.test_case "Fig9: negative when occupied" `Quick join_noti_negative_when_occupied;
        Alcotest.test_case "Fig11: store or forward" `Quick spe_noti_stores_or_forwards;
        Alcotest.test_case "Fig14: state upgrade" `Quick in_sys_noti_upgrades_state;
        Alcotest.test_case "RvNgh: register and correct" `Quick rv_ngh_noti_registers_and_corrects;
        Alcotest.test_case "size mode in CpRly" `Quick cp_rly_respects_size_mode;
      ] );
  ]
