module Stats = Ntcu_std.Stats

let check = Alcotest.check
let feq = Alcotest.float 1e-9
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let mean_simple () = check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let mean_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty data") (fun () ->
      ignore (Stats.mean [||]))

let variance_known () =
  (* Sample variance of [2;4;4;4;5;5;7;9] with n-1 denominator: 32/7. *)
  check feq "variance" (32. /. 7.) (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let variance_singleton () = check feq "variance of one" 0. (Stats.variance [| 42. |])

let percentile_endpoints () =
  let data = [| 5.; 1.; 3. |] in
  check feq "p0" 1. (Stats.percentile data 0.);
  check feq "p100" 5. (Stats.percentile data 100.);
  check feq "p50" 3. (Stats.percentile data 50.)

let percentile_interpolates () =
  check feq "p25 of 1..5" 2. (Stats.percentile [| 1.; 2.; 3.; 4.; 5. |] 25.)

let cdf_basic () =
  let c = Stats.cdf [| 1.; 1.; 2.; 5. |] in
  check (Alcotest.array feq) "xs" [| 1.; 2.; 5. |] c.Stats.xs;
  check (Alcotest.array feq) "ps" [| 0.5; 0.75; 1.0 |] c.Stats.ps

let cdf_at_queries () =
  let c = Stats.cdf [| 1.; 1.; 2.; 5. |] in
  check feq "below" 0. (Stats.cdf_at c 0.5);
  check feq "at 1" 0.5 (Stats.cdf_at c 1.);
  check feq "between" 0.75 (Stats.cdf_at c 3.);
  check feq "above" 1.0 (Stats.cdf_at c 100.)

let histogram_counts () =
  let h = Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  check Alcotest.int "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  check Alcotest.int "total count" 4 total

let mean_bounds =
  qtest "mean between min and max"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 100.))
    (fun data ->
      let m = Stats.mean data in
      let lo, hi = Stats.min_max data in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let cdf_monotone =
  qtest "cdf is monotone and ends at 1"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 100.))
    (fun data ->
      let c = Stats.cdf data in
      let n = Array.length c.Stats.ps in
      let monotone = ref true in
      for i = 0 to n - 2 do
        if c.Stats.ps.(i) > c.Stats.ps.(i + 1) then monotone := false;
        if c.Stats.xs.(i) >= c.Stats.xs.(i + 1) then monotone := false
      done;
      !monotone && abs_float (c.Stats.ps.(n - 1) -. 1.0) < 1e-9)

let suites =
  [
    ( "std.stats",
      [
        Alcotest.test_case "mean" `Quick mean_simple;
        Alcotest.test_case "mean empty" `Quick mean_empty_rejected;
        Alcotest.test_case "variance" `Quick variance_known;
        Alcotest.test_case "variance singleton" `Quick variance_singleton;
        Alcotest.test_case "percentile endpoints" `Quick percentile_endpoints;
        Alcotest.test_case "percentile interpolation" `Quick percentile_interpolates;
        Alcotest.test_case "cdf" `Quick cdf_basic;
        Alcotest.test_case "cdf_at" `Quick cdf_at_queries;
        Alcotest.test_case "histogram" `Quick histogram_counts;
        mean_bounds;
        cdf_monotone;
      ] );
  ]
