(* The Chord arm of the protocol arena: corrected stabilization (Zave's
   protocol) restores the ring invariants under join/leave interleavings and
   answers lookups correctly; the naive variant's classic stabilize bug is
   schedule-dependent — invisible to the unperturbed scheduler, caught by the
   targeted adversary through the explore pipeline, shrunk and replayed —
   mirroring the injected-fault pattern of test_explore. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Latency = Ntcu_sim.Latency
module Workload = Ntcu_harness.Workload
module Chord = Ntcu_chord.Chord
module Scheduler = Ntcu_explore.Scheduler
module Episode = Ntcu_explore.Episode
module Shrink = Ntcu_explore.Shrink
module Repro = Ntcu_explore.Repro

let check = Alcotest.check

let p = Params.make ~b:4 ~d:6

let pp_violations vs =
  String.concat ", "
    (List.map (fun (v : Ntcu_protocol.Protocol.violation) -> v.name) vs)

let assert_clean what t =
  match Chord.check t with
  | [] -> ()
  | vs -> Alcotest.failf "%s: violations [%s]" what (pp_violations vs)

let make_net ~seed ~n ~m =
  let rng = Rng.create seed in
  let seeds = Workload.distinct_ids rng p ~n in
  let joiners = Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:m in
  let latency = Latency.uniform ~seed:(seed + 1) ~lo:5. ~hi:40. in
  let t = Chord.create ~latency (Chord.default_config p) in
  Chord.seed_ring t seeds;
  (t, seeds, joiners)

(* A freshly seeded ring already satisfies every invariant and keeps them
   through its bounded stabilization rounds. *)
let seeded_ring_stable () =
  let t, seeds, _ = make_net ~seed:3 ~n:16 ~m:0 in
  Chord.run t;
  assert_clean "seeded ring" t;
  check Alcotest.bool "ring consistent" true (Chord.ring_consistent t);
  check Alcotest.int "all seeds members" (List.length seeds)
    (List.length (Chord.members t))

(* Concurrent joins through arbitrary gateways converge: every joiner becomes
   a member and stabilization rebuilds exact successor lists, predecessors
   and the single ring cycle. *)
let joins_converge () =
  List.iter
    (fun seed ->
      let t, seeds, joiners = make_net ~seed ~n:12 ~m:6 in
      let rng = Rng.create (seed + 9) in
      let gws = Array.of_list seeds in
      List.iter
        (fun id -> Chord.start_join t ~at:0. ~id ~gateway:(Rng.pick rng gws) ())
        joiners;
      Chord.run t;
      assert_clean (Printf.sprintf "joins seed=%d" seed) t;
      check Alcotest.int "member count" (12 + 6) (List.length (Chord.members t)))
    [ 1; 2; 3; 4; 5 ]

(* Joins and graceful leaves interleaved mid-stabilization: the handoff plus
   rectify restore the ring, and the leavers are gone. *)
let join_leave_interleaving () =
  List.iter
    (fun seed ->
      let t, seeds, joiners = make_net ~seed ~n:12 ~m:5 in
      let rng = Rng.create (seed + 9) in
      (* Gateways come from the first half of the seeds; leavers from the
         second half, so no joiner's gateway departs mid-ask. *)
      let gws = Array.of_list (List.filteri (fun i _ -> i < 6) seeds) in
      let leavers = List.filteri (fun i _ -> i >= 9) seeds in
      List.iteri
        (fun i id ->
          Chord.start_join t
            ~at:(float_of_int (i * 120))
            ~id ~gateway:(Rng.pick rng gws) ())
        joiners;
      List.iteri
        (fun i id -> Chord.leave t ~at:(300. +. (float_of_int i *. 250.)) id)
        leavers;
      Chord.run t;
      assert_clean (Printf.sprintf "join/leave seed=%d" seed) t;
      check Alcotest.int "member count"
        (12 + 5 - List.length leavers)
        (List.length (Chord.members t));
      List.iter
        (fun id ->
          check Alcotest.bool "leaver gone" false (Chord.is_member t id))
        leavers)
    [ 1; 2; 3 ]

(* Greedy finger routing over the converged state reaches every member. *)
let lookups_correct () =
  let t, seeds, joiners = make_net ~seed:7 ~n:12 ~m:4 in
  List.iter
    (fun id -> Chord.start_join t ~at:0. ~id ~gateway:(List.hd seeds) ())
    joiners;
  Chord.run t;
  assert_clean "pre-lookup" t;
  let members = Chord.members t in
  let targets = List.filteri (fun i _ -> i mod 3 = 0) members in
  List.iter
    (fun src ->
      List.iter
        (fun target ->
          match Chord.lookup t ~src ~target with
          | Some path ->
            check Alcotest.bool "path ends at target" true
              (Id.equal (List.nth path (List.length path - 1)) target)
          | None -> Alcotest.failf "lookup failed")
        targets)
    (List.filteri (fun i _ -> i mod 4 = 0) members)

(* Absent failures, even the naive protocol is correct — the bug needs a
   crash window, not just concurrency. *)
let naive_clean_without_failures () =
  let rng = Rng.create 11 in
  let seeds = Workload.distinct_ids rng p ~n:12 in
  let joiners = Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:5 in
  let t =
    Chord.create
      ~latency:(Latency.uniform ~seed:12 ~lo:5. ~hi:40.)
      { (Chord.default_config p) with Chord.naive = true }
  in
  Chord.seed_ring t seeds;
  List.iter
    (fun id -> Chord.start_join t ~at:0. ~id ~gateway:(List.hd seeds) ())
    joiners;
  Chord.run t;
  assert_clean "naive, no failures" t

(* ---- The differential, through the explore pipeline ---- *)

let chord_episode ~naive scheduler =
  {
    Episode.scenario = Episode.Chord;
    b = 4;
    d = 6;
    n = 12;
    m = 6;
    seed = 1;
    sched_seed = 14;
    scheduler;
    fault = None;
    chord_naive = naive;
    midflight = false;
  }

let targeted = Scheduler.Targeted { probability = 0.25; stretch = 32. }

(* The schedule dependence itself: under the same seeds, the unperturbed
   schedule never completes a join before the crash (all victims die
   mid-join, harmlessly, in both modes), while the targeted adversary rushes
   a victim into the ring — which only the naive protocol fails to survive. *)
let naive_schedule_dependent () =
  let nop_naive = Episode.run (chord_episode ~naive:true Scheduler.Nop) in
  check Alcotest.int "nop misses the naive bug" 0
    (List.length nop_naive.Episode.violations);
  let hit = Episode.run (chord_episode ~naive:true targeted) in
  check Alcotest.bool "targeted catches the naive bug" true
    (hit.Episode.violations <> []);
  let correct = Episode.run (chord_episode ~naive:false targeted) in
  check (Alcotest.list Alcotest.string) "correct mode survives the same schedule"
    []
    (List.map
       (fun (v : Ntcu_explore.Invariants.violation) -> v.Ntcu_explore.Invariants.name)
       correct.Episode.violations)

(* Found, the violation must shrink to a small intervention list, replay
   bit-identically, and round-trip through the repro file format with the
   naive flag intact. *)
let naive_shrinks_and_replays () =
  let config = chord_episode ~naive:true targeted in
  let outcome = Episode.run config in
  check Alcotest.bool "violations present" true (outcome.Episode.violations <> []);
  (match Shrink.shrink_outcome outcome with
  | None -> Alcotest.fail "shrink found nothing"
  | Some (minimal, final, probes) ->
    check Alcotest.bool "ddmin probed" true (probes > 0);
    check Alcotest.bool "no larger than original" true
      (List.length minimal <= List.length outcome.Episode.interventions);
    check Alcotest.bool "minimal schedule still violates" true
      (final.Episode.violations <> []);
    let violation =
      match final.Episode.violations with v :: _ -> v | [] -> assert false
    in
    let r =
      {
        Repro.config =
          { final.Episode.config with Episode.scheduler = Scheduler.Fixed minimal };
        found_by = Scheduler.kind_name config.Episode.scheduler;
        violation;
        digest = final.Episode.digest;
      }
    in
    let s = Repro.to_string r in
    (match Repro.of_string s with
    | Error e -> Alcotest.failf "repro parse: %s" e
    | Ok r' ->
      check Alcotest.string "repro text round-trips" s (Repro.to_string r');
      check Alcotest.bool "parsed repro keeps naive flag" true
        r'.Repro.config.Episode.chord_naive;
      let replay = Repro.replay r' in
      check Alcotest.bool "replay reproduces" true replay.Repro.reproduced));
  (* Same config, same outcome: the episode is a pure function. *)
  let again = Episode.run config in
  check Alcotest.string "rerun digest identical" outcome.Episode.digest
    again.Episode.digest

let suites =
  [
    ( "chord",
      [
        Alcotest.test_case "seeded ring stable" `Quick seeded_ring_stable;
        Alcotest.test_case "joins converge" `Quick joins_converge;
        Alcotest.test_case "join/leave interleaving" `Quick join_leave_interleaving;
        Alcotest.test_case "lookups correct" `Quick lookups_correct;
        Alcotest.test_case "naive clean without failures" `Quick
          naive_clean_without_failures;
        Alcotest.test_case "naive bug is schedule-dependent" `Quick
          naive_schedule_dependent;
        Alcotest.test_case "naive violation shrinks and replays" `Quick
          naive_shrinks_and_replays;
      ] );
  ]
