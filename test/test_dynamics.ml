(* Dynamic-membership behaviours across layers: directory maintenance after
   churn, the paper's reliability assumption probed with a lossy network,
   mid-run monotonicity of reachability, and mixed join/leave churn. *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Directory = Ntcu_routing.Directory
module Experiment = Ntcu_harness.Experiment
module Rng = Ntcu_std.Rng

let check = Alcotest.check
let p = Params.make ~b:4 ~d:6

let build ~seed ~n ~m =
  let run = Experiment.concurrent_joins p ~seed ~n ~m () in
  check Alcotest.int "setup consistent" 0 (List.length (Lazy.force run.violations));
  run

let lookup_of net x = Option.map Node.table (Network.node net x)

(* ---- directory maintenance ---- *)

let maintenance_after_joins () =
  let run = build ~seed:1 ~n:30 ~m:10 in
  let net = run.net in
  let dir = Directory.create ~lookup:(lookup_of net) () in
  let rng = Rng.create 3 in
  let ids = Array.of_list (Network.ids net) in
  let objects = List.init 15 (fun _ -> Id.random rng p) in
  let storers =
    List.map
      (fun obj ->
        let storer = Rng.pick rng ids in
        (match Directory.publish dir ~storer obj with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "publish: %a" Ntcu_routing.Route.pp_error e);
        (obj, storer))
      objects
  in
  (* Grow the network: roots may move, old trails go stale. *)
  let fresh =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list (Network.ids net)) rng p
      ~n:20
  in
  List.iter (fun id -> Network.start_join net ~id ~gateway:ids.(0) ()) fresh;
  Network.run net;
  check Alcotest.int "still consistent" 0 (List.length (Network.check_consistent net));
  let st = Directory.maintain dir in
  check Alcotest.int "all objects republished" 15 st.Directory.republished;
  check Alcotest.int "no republish errors" 0 st.Directory.errors;
  (* Every object is findable from every new node (P1 restored). *)
  List.iter
    (fun (obj, storer) ->
      List.iter
        (fun client ->
          match Directory.lookup_object dir ~client obj with
          | Ok { storers; _ } ->
            check Alcotest.bool "found after maintain" true
              (List.exists (Id.equal storer) storers)
          | Error e -> Alcotest.failf "lookup: %a" Ntcu_routing.Route.pp_error e)
        (Ntcu_harness.Workload.split 5 fresh |> fst))
    storers

let maintenance_after_leaves () =
  let run = build ~seed:2 ~n:25 ~m:15 in
  let net = run.net in
  let dir = Directory.create ~lookup:(lookup_of net) () in
  let rng = Rng.create 5 in
  let obj = Id.random rng p in
  let survivor_storer = List.hd run.seeds in
  let doomed_storer = List.hd run.joiners in
  (match Directory.publish dir ~storer:survivor_storer obj with Ok _ -> () | Error _ -> Alcotest.fail "p1");
  (match Directory.publish dir ~storer:doomed_storer obj with Ok _ -> () | Error _ -> Alcotest.fail "p2");
  let doomed_only = Id.random rng p in
  (match Directory.publish dir ~storer:doomed_storer doomed_only with Ok _ -> () | Error _ -> Alcotest.fail "p3");
  (match Ntcu_extensions.Leave.leave net doomed_storer with Ok _ -> () | Error e -> Alcotest.fail e);
  let st = Directory.maintain dir in
  check Alcotest.int "one object survives" 1 st.Directory.republished;
  check Alcotest.int "no republish errors" 0 st.Directory.errors;
  let client = List.nth run.seeds 3 in
  (match Directory.lookup_object dir ~client obj with
  | Ok { storers; _ } ->
    check Alcotest.(list string) "only the survivor" [ Id.to_string survivor_storer ]
      (List.map Id.to_string storers)
  | Error e -> Alcotest.failf "lookup: %a" Ntcu_routing.Route.pp_error e);
  match Directory.lookup_object dir ~client doomed_only with
  | Ok { storers; _ } -> check Alcotest.int "dead object gone" 0 (List.length storers)
  | Error e -> Alcotest.failf "lookup: %a" Ntcu_routing.Route.pp_error e

let published_objects_lists () =
  let run = build ~seed:3 ~n:10 ~m:5 in
  let dir = Directory.create ~lookup:(lookup_of run.net) () in
  check Alcotest.int "empty" 0 (List.length (Directory.published_objects dir));
  let obj = Id.random (Rng.create 6) p in
  (match Directory.publish dir ~storer:(List.hd run.seeds) obj with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "publish");
  check Alcotest.int "one" 1 (List.length (Directory.published_objects dir))

(* ---- reliable-delivery assumption (iii) ---- *)

let lossless_by_default () =
  let run = build ~seed:4 ~n:15 ~m:10 in
  check Alcotest.int "no losses" 0 (Network.messages_lost run.net);
  check Alcotest.int "no stuck joiners" 0 (List.length (Network.stuck_joiners run.net))

let losses_wedge_joins () =
  (* 20% loss: joins wedge rather than corrupt. The simulation still
     quiesces; completed state is whatever it is, but the point the paper's
     assumption (iii) makes is liveness, not safety. *)
  let rng = Rng.create 7 in
  let seeds = Ntcu_harness.Workload.distinct_ids rng p ~n:15 in
  let joiners =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:15
  in
  let net = Network.create ~loss:(0.2, 99) p in
  Network.seed_consistent net ~seed:8 seeds;
  List.iter (fun id -> Network.start_join net ~id ~gateway:(List.hd seeds) ()) joiners;
  Network.run net;
  check Alcotest.bool "quiescent" true (Network.is_quiescent net);
  check Alcotest.bool "messages were lost" true (Network.messages_lost net > 0);
  check Alcotest.bool "some joiner wedged (liveness needs assumption iii)" true
    (Network.stuck_joiners net <> [])

let zero_loss_is_none () =
  let net = Network.create ~loss:(0., 1) p in
  let a = Id.of_string p "000000" and b = Id.of_string p "111111" in
  Network.add_seed_node net a;
  Network.start_join net ~id:b ~gateway:a ();
  Network.run net;
  check Alcotest.bool "all joined" true (Network.all_in_system net);
  check Alcotest.int "no losses" 0 (Network.messages_lost net)

(* ---- monotone reachability during a run ---- *)

let reachability_is_monotone_mid_run () =
  (* The protocol is designed to "expand the network monotonically and
     preserve reachability of existing nodes so that once a set of nodes can
     reach each other, they always can thereafter" (Section 3.1). Sample the
     run at intervals and check exactly that. *)
  let rng = Rng.create 9 in
  let seeds = Ntcu_harness.Workload.distinct_ids rng p ~n:8 in
  let joiners =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:12
  in
  let net =
    Network.create ~latency:(Ntcu_sim.Latency.uniform ~seed:10 ~lo:1. ~hi:200.) p
  in
  Network.seed_consistent net ~seed:11 seeds;
  List.iter (fun id -> Network.start_join net ~id ~gateway:(List.hd seeds) ()) joiners;
  let lookup = lookup_of net in
  let reachable x y =
    Ntcu_table.Check.next_hop_path ~lookup x y <> None
  in
  let engine = Network.engine net in
  let previously = ref [] in
  let time = ref 0. in
  while not (Network.is_quiescent net) do
    time := !time +. 50.;
    Ntcu_sim.Engine.run_until engine ~time:!time;
    (* Previously-reachable pairs must stay reachable. *)
    List.iter
      (fun (x, y) ->
        if not (reachable x y) then
          Alcotest.failf "reachability lost: %a -> %a at t=%g" Id.pp x Id.pp y !time)
      !previously;
    (* Extend the watch list with pairs of in_system nodes reachable now. *)
    let in_system =
      List.filter (fun id -> Node.status (Network.node_exn net id) = Node.In_system)
        (Network.ids net)
    in
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            if (not (Id.equal x y)) && reachable x y then
              previously := (x, y) :: !previously)
          in_system)
      in_system
  done;
  check Alcotest.bool "watched pairs accumulated" true (List.length !previously > 0);
  check Alcotest.bool "final consistency" true (Network.check_consistent net = [])

(* ---- mixed join/leave churn (assumption (iv) boundary) ---- *)

let mixed_join_leave_epochs_are_safe () =
  (* Alternating quiescent epochs of joins and leaves (the regime the paper's
     theorem covers) never break consistency. *)
  let run = build ~seed:12 ~n:20 ~m:10 in
  let net = run.net in
  let rng = Rng.create 13 in
  for _epoch = 1 to 3 do
    let fresh =
      Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list (Network.ids net)) rng p
        ~n:8
    in
    let gateways = Array.of_list (Network.live_ids net) in
    List.iter (fun id -> Network.start_join net ~id ~gateway:(Rng.pick rng gateways) ()) fresh;
    Network.run net;
    check Alcotest.int "consistent after joins" 0
      (List.length (Network.check_consistent net));
    let lp = Ntcu_extensions.Leave_protocol.create net in
    let victims = Array.of_list (Network.live_ids net) in
    Rng.shuffle rng victims;
    Array.iter
      (fun id -> Ntcu_extensions.Leave_protocol.request_leave lp id)
      (Array.sub victims 0 6);
    Ntcu_extensions.Leave_protocol.run lp;
    check Alcotest.int "consistent after leaves" 0
      (List.length (Network.check_consistent net))
  done

let suites =
  [
    ( "routing.maintenance",
      [
        Alcotest.test_case "after joins" `Quick maintenance_after_joins;
        Alcotest.test_case "after leaves" `Quick maintenance_after_leaves;
        Alcotest.test_case "published objects" `Quick published_objects_lists;
      ] );
    ( "protocol.assumptions",
      [
        Alcotest.test_case "lossless by default" `Quick lossless_by_default;
        Alcotest.test_case "loss wedges joins" `Quick losses_wedge_joins;
        Alcotest.test_case "zero loss" `Quick zero_loss_is_none;
        Alcotest.test_case "monotone reachability" `Slow reachability_is_monotone_mid_run;
        Alcotest.test_case "epoch churn safe" `Quick mixed_join_leave_epochs_are_safe;
      ] );
  ]
