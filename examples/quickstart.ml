(* Quickstart: build a small hypercube-routing network with the join
   protocol, inspect a neighbor table (Figure 1 style), and route a message.

   Run with: dune exec examples/quickstart.exe *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node

let () =
  (* IDs are 5 digits of base 4, as in the paper's Figure 1. *)
  let p = Params.paper_example_fig1 in

  (* Start from a single node and let everyone else join through it —
     network initialization per Section 6.1. *)
  let net = Network.create ~latency:(Ntcu_sim.Latency.uniform ~seed:1 ~lo:5. ~hi:60.) p in
  let first = Id.of_string p "21233" in
  Network.add_seed_node net first;

  let rng = Ntcu_std.Rng.create 7 in
  let others =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.singleton first) rng p ~n:15
  in
  (* All 15 nodes join concurrently, each bootstrapping from the first node. *)
  List.iter (fun id -> Network.start_join net ~id ~gateway:first ()) others;
  Network.run net;

  Format.printf "network of %d nodes built by %d concurrent joins@."
    (Network.size net) (List.length others);
  Format.printf "every node in_system: %b@." (Network.all_in_system net);
  Format.printf "consistent (Definition 3.8): %b@.@."
    (Network.check_consistent net = []);

  (* Show the first node's neighbor table, like the paper's Figure 1. *)
  Format.printf "%a@." Ntcu_table.Table.pp (Node.table (Network.node_exn net first));

  (* Route a message between two arbitrary nodes (Section 2.2). *)
  let src = List.nth others 3 and dst = List.nth others 11 in
  let lookup id = Option.map Node.table (Network.node net id) in
  match Ntcu_routing.Route.route ~lookup ~src ~dst with
  | Ok path ->
    Format.printf "route %a -> %a (%d hops): %a@." Id.pp src Id.pp dst
      (Ntcu_routing.Route.hop_count path)
      Fmt.(list ~sep:(any " -> ") Id.pp)
      path
  | Error e -> Format.printf "routing failed: %a@." Ntcu_routing.Route.pp_error e
