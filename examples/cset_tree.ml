(* The paper's running example (Section 3.3, Figure 2): nodes 10261, 47051
   and 00261 join a 5-node consistent network with b = 8, d = 5. Their
   notification sets all equal V_1, so they fall into one C-set tree rooted at
   V_1. This example runs the joins, prints the tree template C(V, W) and the
   realized tree cset(V, W), and verifies the three consistency conditions of
   Section 3.3.

   Run with: dune exec examples/cset_tree.exe *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Cset = Ntcu_cset.Cset

let () =
  let p = Params.paper_example_fig2 in
  let v = List.map (Id.of_string p) [ "72430"; "10353"; "62332"; "13141"; "31701" ] in
  let w = List.map (Id.of_string p) [ "10261"; "47051"; "00261" ] in

  let net = Network.create ~latency:(Ntcu_sim.Latency.uniform ~seed:3 ~lo:1. ~hi:40.) p in
  Network.seed_consistent net ~seed:5 v;
  List.iter (fun x -> Network.start_join net ~id:x ~gateway:(List.hd v) ()) w;
  Network.run net;
  Format.printf "joins complete; consistent: %b@.@." (Network.check_consistent net = []);

  (* Notification sets (Definition 3.4). *)
  let v_index = Ntcu_table.Suffix_index.of_ids v in
  List.iter
    (fun x ->
      Format.printf "notification set of %a: V_%a@." Id.pp x Id.pp_suffix
        (Cset.noti_suffix v_index x))
    w;

  let root = Cset.noti_suffix v_index (List.hd w) in
  let v_root = List.filter (fun x -> Id.has_suffix x root) v in
  let lookup x = Option.map Node.table (Network.node net x) in

  Format.printf "@.tree template C(V, W) (paper Figure 2(b)):@.%a@." Cset.pp_tree
    (Cset.template p ~root ~w);
  let realized = Cset.realized ~lookup ~v_root ~root ~w in
  Format.printf "realized tree cset(V, W) (one realization of Figure 2(c)):@.%a@."
    Cset.pp_tree realized;

  let report name = function
    | Ok () -> Format.printf "%s: satisfied@." name
    | Error e -> Format.printf "%s: VIOLATED (%s)@." name e
  in
  report "condition (1) — structure matches, no empty C-set"
    (Cset.check_condition1 ~template:(Cset.template p ~root ~w) ~realized);
  report "condition (2) — V_1 members point into each child C-set"
    (Cset.check_condition2 ~lookup ~v_root ~realized);
  report "condition (3) — joiners cover their sibling C-sets"
    (Cset.check_condition3 ~lookup ~realized ~w);

  (* Join classification (Definitions 3.2-3.6). *)
  let periods =
    List.map
      (fun x ->
        let node = Network.node_exn net x in
        match (Node.t_begin node, Node.t_end node) with
        | Some b, Some e -> (b, e)
        | _ -> assert false)
      w
  in
  Format.printf "@.joins were %a; dependency groups: %d@." Cset.pp_timing
    (Cset.classify_timing periods)
    (List.length (Cset.dependency_groups v_index ~w))
