(* Churn at the paper's simulation scale: m nodes join an n-node consistent
   network concurrently over a transit-stub topology, exactly the setup of
   Figure 15(b). Prints liveness, consistency, Theorem-3 conformance, and the
   JoinNotiMsg distribution against the Theorem-5 bound; then removes a batch
   of nodes with the leave extension and re-verifies consistency.

   Run with:
     dune exec examples/concurrent_joins.exe                (n=1000 m=300 d=8)
     dune exec examples/concurrent_joins.exe -- 3096 1000 8 (paper setup)  *)

module Params = Ntcu_id.Params
module Experiment = Ntcu_harness.Experiment
module Report = Ntcu_harness.Report

let () =
  let n, m, d =
    match Sys.argv with
    | [| _; n; m; d |] -> (int_of_string n, int_of_string m, int_of_string d)
    | _ -> (1000, 300, 8)
  in
  let setup = { Experiment.d; n; m } in
  Format.printf "joining %d nodes concurrently into a consistent %d-node network (b=16, d=%d)@."
    m n d;
  let run =
    Experiment.fig15b ~routers:Ntcu_topology.Transit_stub.scaled_config ~seed:1 setup
  in
  Format.printf "%a@." Report.pp_join_run run;

  let p = Params.make ~b:16 ~d in
  Format.printf "Theorem-5 bound on E(J): %.3f@."
    (Ntcu_analysis.Join_cost.theorem5_bound p ~n ~m);
  Format.printf "CDF of JoinNotiMsg per joiner:@.%a@."
    (Report.pp_cdf ~label:(Printf.sprintf "n=%d m=%d d=%d" n m d))
    (Experiment.cdf_points run.join_noti);

  (* Now shrink the network: 10% of the joiners leave again. *)
  let leavers = fst (Ntcu_harness.Workload.split (m / 10) run.joiners) in
  (match Ntcu_extensions.Leave.leave_many run.net leavers with
  | Ok repaired ->
    Format.printf "%d nodes left; %d tables repaired; consistent afterwards: %b@."
      (List.length leavers) repaired
      (Ntcu_core.Network.check_consistent run.net = [])
  | Error e -> Format.printf "leave failed: %s@." e)
