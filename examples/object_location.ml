(* Replicated-object location over the routing infrastructure (the paper's
   background, Section 2, and PRR's directory semantics): publish objects
   from several storers, look them up from random clients, and measure hops
   and stretch over a transit-stub topology. Demonstrates properties P1
   (deterministic location) and P2 (queries tend to find nearby copies).

   Run with: dune exec examples/object_location.exe *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Directory = Ntcu_routing.Directory
module Rng = Ntcu_std.Rng

let () =
  let p = Params.make ~b:16 ~d:8 in
  let n = 200 and m = 100 in

  (* Build the network (seeded V plus concurrent joins) over a topology. *)
  let topo =
    Ntcu_topology.Transit_stub.generate ~seed:2 Ntcu_topology.Transit_stub.default_config
  in
  let hosts = Ntcu_topology.Endhosts.attach ~seed:3 topo ~n:(n + m) in
  let rng = Rng.create 4 in
  let seeds = Ntcu_harness.Workload.distinct_ids rng p ~n in
  let joiners =
    Ntcu_harness.Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:m
  in
  let net = Network.create ~latency:(Ntcu_topology.Endhosts.latency ~seed:5 hosts) p in
  Network.seed_consistent net ~seed:6 seeds;
  List.iter (fun id -> Network.start_join net ~id ~gateway:(List.hd seeds) ()) joiners;
  Network.run net;
  assert (Network.check_consistent net = []);
  Format.printf "routing substrate: %d nodes, consistent@." (Network.size net);

  let ids = Array.of_list (Network.ids net) in
  let host_index = Id.Tbl.create 512 in
  List.iteri (fun i id -> Id.Tbl.replace host_index id i) (Network.ids net);
  let dist a b =
    Ntcu_topology.Endhosts.distance hosts (Id.Tbl.find host_index a)
      (Id.Tbl.find host_index b)
  in
  let lookup id = Option.map Node.table (Network.node net id) in
  let dir = Directory.create ~lookup () in

  (* Publish 50 objects, three replicas each. *)
  let objects = List.init 50 (fun _ -> Id.random rng p) in
  List.iter
    (fun obj ->
      for _ = 1 to 3 do
        match Directory.publish dir ~storer:(Rng.pick rng ids) obj with
        | Ok _ -> ()
        | Error e -> Format.printf "publish failed: %a@." Ntcu_routing.Route.pp_error e
      done)
    objects;
  Format.printf "published %d objects x 3 replicas@." (List.length objects);

  (* Look every object up from random clients; collect hops and stretch. *)
  let hops = ref [] and stretches = ref [] and missed = ref 0 in
  List.iter
    (fun obj ->
      for _ = 1 to 5 do
        let client = Rng.pick rng ids in
        match Directory.lookup_object dir ~client obj with
        | Ok { storers = []; _ } -> incr missed
        | Ok { storers; pointer_node; hops = path } ->
          hops := float_of_int (List.length path - 1) :: !hops;
          (* Stretch: distance travelled (walk to the pointer, then on to the
             replica the pointer selects — the one nearest the pointer node)
             over the direct distance to the globally nearest replica. *)
          let walk = Ntcu_routing.Route.path_cost ~dist path in
          let to_replica =
            List.fold_left (fun acc s -> min acc (dist pointer_node s)) infinity storers
          in
          let direct =
            List.fold_left (fun acc s -> min acc (dist client s)) infinity storers
          in
          if direct > 0. then stretches := ((walk +. to_replica) /. direct) :: !stretches
        | Error e -> Format.printf "lookup failed: %a@." Ntcu_routing.Route.pp_error e
      done)
    objects;
  let hops = Array.of_list !hops and stretches = Array.of_list !stretches in
  Format.printf "lookups: %d, not found: %d (must be 0 for P1)@." (Array.length hops)
    !missed;
  Format.printf "pointer found after: mean %.2f hops, p95 %.0f hops@."
    (Ntcu_std.Stats.mean hops)
    (Ntcu_std.Stats.percentile hops 95.);
  Format.printf "access stretch: mean %.2f, median %.2f@."
    (Ntcu_std.Stats.mean stretches)
    (Ntcu_std.Stats.median stretches);

  (* Directory load (P3): pointers are spread across nodes. *)
  let loads =
    Array.map (fun id -> float_of_int (List.length (Directory.pointers_at dir id))) ids
  in
  Format.printf "directory load per node: mean %.2f pointers, max %.0f@."
    (Ntcu_std.Stats.mean loads)
    (snd (Ntcu_std.Stats.min_max loads))
