(* Dynamic membership (property P4) end to end: run several epochs of churn —
   concurrent joins, concurrent message-level leaves, fail-stop crashes with
   recovery, and a proximity-optimization pass — verifying consistency
   (Definition 3.8) after every epoch.

   Run with: dune exec examples/churn.exe *)

module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Rng = Ntcu_std.Rng

let verify net label =
  match Network.check_consistent net with
  | [] ->
    Format.printf "  %-28s consistent (%d live nodes)@." label
      (List.length (Network.live_ids net))
  | v :: _ ->
    Format.printf "  %-28s INCONSISTENT: %a@." label Ntcu_table.Check.pp_violation v;
    exit 1

let () =
  let p = Params.make ~b:16 ~d:8 in
  let rng = Rng.create 2024 in
  let run = Ntcu_harness.Experiment.concurrent_joins p ~seed:7 ~n:400 ~m:100 () in
  let net = run.net in
  verify net "initial build (500 nodes)";

  for epoch = 1 to 4 do
    Format.printf "epoch %d:@." epoch;

    (* 1. A wave of concurrent joins through random live gateways. *)
    let avoid = Id.Set.of_list (Network.ids net) in
    let joiners = Ntcu_harness.Workload.distinct_ids ~avoid rng p ~n:60 in
    let gateways = Array.of_list (Network.live_ids net) in
    List.iter
      (fun id -> Network.start_join net ~id ~gateway:(Rng.pick rng gateways) ())
      joiners;
    Network.run net;
    verify net "after 60 concurrent joins";

    (* 2. A wave of concurrent leaves. *)
    let lp = Ntcu_extensions.Leave_protocol.create net in
    let candidates = Array.of_list (Network.live_ids net) in
    Rng.shuffle rng candidates;
    let leavers = Array.to_list (Array.sub candidates 0 40) in
    List.iter (fun id -> Ntcu_extensions.Leave_protocol.request_leave lp id) leavers;
    Ntcu_extensions.Leave_protocol.run lp;
    verify net "after 40 concurrent leaves";

    (* 3. Crashes plus recovery. *)
    let victims =
      Ntcu_extensions.Recovery.fail_random net ~seed:(epoch * 31) ~fraction:0.08
    in
    let report = Ntcu_extensions.Recovery.repair net in
    Format.printf "  %d crashed; %a@." (List.length victims)
      Ntcu_extensions.Recovery.pp_report report;
    verify net "after crash recovery";

    (* 4. Keep tables tight: one optimization pass on a synthetic metric. *)
    let ids = Array.of_list (Network.live_ids net) in
    let position = Id.Tbl.create 512 in
    Array.iteri (fun i id -> Id.Tbl.replace position id (float_of_int i)) ids;
    let dist a b =
      match (Id.Tbl.find_opt position a, Id.Tbl.find_opt position b) with
      | Some x, Some y -> abs_float (x -. y)
      | _ -> 1e9
    in
    let improved = Ntcu_extensions.Optimize.pass net ~dist in
    Format.printf "  optimization pass improved %d entries@." improved;
    verify net "after optimization"
  done;
  Format.printf "@.churn complete: %d live nodes, %d messages delivered, all epochs consistent@."
    (List.length (Network.live_ids net))
    (Network.messages_delivered net)
