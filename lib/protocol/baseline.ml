module Id = Ntcu_id.Id
module Mj = Ntcu_baseline.Multicast_join
module Route = Ntcu_routing.Route

let name = "baseline"
let supports_leave = false

type t = Mj.t

let create ?latency ?record_trace (cfg : Protocol.config) =
  (* The baseline predates the trace/hook instrumentation; the arena only
     needs its costs and final tables, so both knobs are inert. *)
  ignore record_trace;
  Mj.create ?latency cfg.params

let engine = Mj.engine
let trace (_ : t) = None
let set_delay_hook (_ : t) (_ : Protocol.delay_hook option) = ()
let seed_network t ~seed ids = Mj.seed_consistent t ~seed ids
let start_join t ~at ~id ~gateway = Mj.start_join t ~at ~id ~gateway ()

let leave (_ : t) ~at:_ (_ : Id.t) =
  invalid_arg "Protocol.Baseline: leave unsupported (join-only comparator)"

let run ?max_events t = Mj.run ?max_events t
let members t = List.sort Id.compare (Mj.members t)
let in_system t id = List.exists (Id.equal id) (Mj.members t)
let consistent t = List.is_empty (Ntcu_table.Check.violations ~limit:1 (Mj.tables t))

let check t =
  let liveness =
    if Mj.all_done t then []
    else [ { Protocol.name = "liveness"; detail = "some joiner never completed" } ]
  in
  let consistency =
    match Ntcu_table.Check.violations ~limit:3 (Mj.tables t) with
    | [] -> []
    | v :: _ as vs ->
      [
        {
          Protocol.name = "consistency";
          detail =
            Fmt.str "%d Def-3.8 violation(s) (first: %a)" (List.length vs)
              Ntcu_table.Check.pp_violation v;
        };
      ]
  in
  liveness @ consistency

let lookup t ~src ~target =
  match Route.route ~lookup:(Mj.table t) ~src ~dst:target with
  | Ok path -> Some path
  | Error _ -> None

let traffic t =
  let c = Mj.message_counts t in
  let join = c.copies + c.announces + c.acks + c.infos in
  { Protocol.join; maintain = 0; total = join }
