(** The multicast-join baseline behind the {!Protocol.S} interface.

    Join-only ([supports_leave = false]): the baseline has no departure or
    repair story, which is part of what the arena comparison surfaces. The
    adapter routes lookups with the same suffix-routing walk as the paper
    protocol, over the baseline's final tables. *)

include Protocol.S
