(** The pluggable-protocol interface the arena and explore layers drive.

    A protocol is a deterministic discrete-event simulation of an overlay
    maintenance algorithm: the paper's neighbor-table protocol
    ({!Paper}), Chord ring maintenance ([Ntcu_chord.Chord.protocol]), or the
    multicast-join baseline ({!Baseline}). All implementations share one
    driving contract — seed a consistent network, inject joins and graceful
    leaves at virtual times, drain the engine, then answer structural
    queries (membership, invariant checks, state-walk lookups, traffic
    accounting) — so a comparator can run two protocols on identical
    topologies, churn schedules and seeds and diff the results.

    Implementations must be deterministic: same config, latency model and
    call sequence, byte-identical behaviour — that is what makes arena
    artifacts reproducible at any [--jobs] width. *)

type config = {
  params : Ntcu_id.Params.t;  (** Identifier-space parameters. *)
  seed : int;  (** All protocol-internal randomness derives from this. *)
  maintain_every : float;
      (** Period of one maintenance round (virtual ms). Protocols that are
          reactive rather than periodic (the paper's join protocol) ignore
          it. *)
  rounds : int;
      (** Bounded number of maintenance rounds after the last workload
          event; periodic protocols quiesce once they are spent. *)
}

type violation = { name : string; detail : string }
(** An invariant breach, in the same shape as
    [Ntcu_explore.Invariants.violation]: [name] is a stable category
    (protocols prefix theirs, e.g. ["chord-ring"]), [detail] the first
    offence. *)

val pp_violation : violation Fmt.t

type traffic = { join : int; maintain : int; total : int }
(** Message counts by class. [join] is traffic attributable to join
    handshakes, [maintain] everything else (stabilization, repair, finger
    fixing, leave handoff). [total >= join + maintain] — classes a protocol
    cannot attribute stay in [total] only. *)

type delay_hook =
  critical:bool ->
  src:Ntcu_id.Id.t ->
  dst:Ntcu_id.Id.t ->
  seq:int ->
  float ->
  float
(** Adversarial delay rewriting, protocol-agnostic: the protocol samples its
    latency model, then passes the delay through the hook together with the
    frame's deterministic sequence number and whether the frame is
    ordering-critical for the protocol's own correctness argument. Mirrors
    [Ntcu_core.Network.set_delay_hook] without depending on its wire type. *)

module type S = sig
  val name : string
  (** Stable protocol identifier (["paper"], ["chord"], ["chord-naive"],
      ["baseline"]). *)

  val supports_leave : bool
  (** Whether {!leave} is implemented. Drivers must not schedule leaves
      against a protocol that does not support them. *)

  type t

  val create : ?latency:Ntcu_sim.Latency.t -> ?record_trace:bool -> config -> t

  val engine : t -> Ntcu_sim.Engine.t
  (** The protocol's event engine; drivers use it for [run_until]-style
      sampling between workload events. *)

  val trace : t -> Ntcu_sim.Trace.t option
  (** Delivery trace when created with [~record_trace:true] — digest it for
      replay identity. *)

  val set_delay_hook : t -> delay_hook option -> unit

  val seed_network : t -> seed:int -> Ntcu_id.Id.t list -> unit
  (** Install the initial members with mutually consistent state, as if they
      had joined long ago. *)

  val start_join : t -> at:float -> id:Ntcu_id.Id.t -> gateway:Ntcu_id.Id.t -> unit

  val leave : t -> at:float -> Ntcu_id.Id.t -> unit
  (** Schedule a graceful departure.
      @raise Invalid_argument when [not supports_leave]. *)

  val run : ?max_events:int -> t -> unit
  (** Drain the engine (bounded maintenance guarantees termination). *)

  val members : t -> Ntcu_id.Id.t list
  (** Live, fully-joined members, sorted by [Id.compare]. *)

  val in_system : t -> Ntcu_id.Id.t -> bool

  val consistent : t -> bool
  (** Cheap invariant probe for consistency-window sampling: [true] iff a
      first scan finds no violation. *)

  val check : t -> violation list
  (** Full invariant sweep at quiescence; at most one violation per
      category, most fundamental first. *)

  val lookup : t -> src:Ntcu_id.Id.t -> target:Ntcu_id.Id.t -> Ntcu_id.Id.t list option
  (** Route [src -> target] over the protocol's final state (a synchronous
      state walk, not messages): the full node path, both endpoints
      inclusive, or [None] on a dead end. Success means the path ends at
      [target]. *)

  val traffic : t -> traffic
end
