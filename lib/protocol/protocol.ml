type config = {
  params : Ntcu_id.Params.t;
  seed : int;
  maintain_every : float;
  rounds : int;
}

type violation = { name : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.name v.detail

type traffic = { join : int; maintain : int; total : int }

type delay_hook =
  critical:bool ->
  src:Ntcu_id.Id.t ->
  dst:Ntcu_id.Id.t ->
  seq:int ->
  float ->
  float

module type S = sig
  val name : string
  val supports_leave : bool

  type t

  val create : ?latency:Ntcu_sim.Latency.t -> ?record_trace:bool -> config -> t
  val engine : t -> Ntcu_sim.Engine.t
  val trace : t -> Ntcu_sim.Trace.t option
  val set_delay_hook : t -> delay_hook option -> unit
  val seed_network : t -> seed:int -> Ntcu_id.Id.t list -> unit
  val start_join : t -> at:float -> id:Ntcu_id.Id.t -> gateway:Ntcu_id.Id.t -> unit
  val leave : t -> at:float -> Ntcu_id.Id.t -> unit
  val run : ?max_events:int -> t -> unit
  val members : t -> Ntcu_id.Id.t list
  val in_system : t -> Ntcu_id.Id.t -> bool
  val consistent : t -> bool
  val check : t -> violation list
  val lookup : t -> src:Ntcu_id.Id.t -> target:Ntcu_id.Id.t -> Ntcu_id.Id.t list option
  val traffic : t -> traffic
end
