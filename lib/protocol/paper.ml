module Id = Ntcu_id.Id
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Message = Ntcu_core.Message
module Stats = Ntcu_core.Stats
module Route = Ntcu_routing.Route
module Leave_protocol = Ntcu_extensions.Leave_protocol

let name = "paper"
let supports_leave = true

type t = { net : Network.t; leaves : Leave_protocol.t; mutable leavers : int }

let create ?latency ?record_trace (cfg : Protocol.config) =
  let net = Network.create ?latency ?record_trace cfg.params in
  (* Leave handoff messages ride the same engine; a seeded uniform model
     keeps them deterministic without coupling to the join-path latency. *)
  let leaves =
    Leave_protocol.create
      ~latency:(Ntcu_sim.Latency.uniform ~seed:cfg.seed ~lo:1. ~hi:10.)
      net
  in
  { net; leaves; leavers = 0 }

let engine t = Network.engine t.net
let trace t = Network.trace t.net

let set_delay_hook t hook =
  Network.set_delay_hook t.net
    (Option.map
       (fun h ~wire ~src ~dst ~seq delay ->
         let critical =
           match wire with
           | Network.Protocol m -> Message.ordering_critical m
           | Network.Ack -> false
         in
         h ~critical ~src ~dst ~seq delay)
       hook)

let seed_network t ~seed ids = Network.seed_consistent t.net ~seed ids

let start_join t ~at ~id ~gateway = Network.start_join t.net ~at ~id ~gateway ()

let leave t ~at id =
  t.leavers <- t.leavers + 1;
  Leave_protocol.request_leave t.leaves ~at id

let run ?max_events t = Network.run ?max_events t.net

let alive_in_system t id =
  match Network.node t.net id with
  | Some nd ->
    (not (Network.is_failed t.net id)) && Node.status_equal (Node.status nd) Node.In_system
  | None -> false

let members t =
  List.sort Id.compare (List.filter (alive_in_system t) (Network.live_ids t.net))

let in_system = alive_in_system

let consistent t = List.is_empty (Network.check_consistent ~limit:1 t.net)

let check t =
  let stuck = Network.stuck_joiners t.net in
  let liveness =
    match stuck with
    | [] -> []
    | nd :: _ ->
      [
        {
          Protocol.name = "liveness";
          detail =
            Fmt.str "%d joiner(s) never reached in_system (first: %a)" (List.length stuck)
              Id.pp (Node.id nd);
        };
      ]
  in
  let consistency =
    match Network.check_consistent ~limit:3 t.net with
    | [] -> []
    | v :: _ as vs ->
      [
        {
          Protocol.name = "consistency";
          detail =
            Fmt.str "%d Def-3.8 violation(s) (first: %a)" (List.length vs)
              Ntcu_table.Check.pp_violation v;
        };
      ]
  in
  liveness @ consistency

let lookup t ~src ~target =
  let table_of id =
    match Network.node t.net id with
    | Some nd when not (Network.is_failed t.net id) -> Some (Node.table nd)
    | Some _ | None -> None
  in
  match Route.route ~lookup:table_of ~src ~dst:target with
  | Ok path -> Some path
  | Error _ -> None

let join_kinds =
  [
    Message.K_cp_rst;
    Message.K_cp_rly;
    Message.K_join_wait;
    Message.K_join_wait_rly;
    Message.K_join_noti;
    Message.K_join_noti_rly;
    Message.K_in_sys_noti;
  ]

let traffic t =
  let stats = Network.global_stats t.net in
  let join = List.fold_left (fun acc k -> acc + Stats.sent stats k) 0 join_kinds in
  let leave_msgs = if t.leavers = 0 then 0 else (Leave_protocol.report t.leaves).messages in
  let total = Stats.total_sent stats + leave_msgs in
  { Protocol.join; maintain = total - join; total }
