(** The paper's neighbor-table protocol behind the {!Protocol.S} interface.

    A thin adapter over {!Ntcu_core.Network} (join protocol, consistency
    checks, suffix routing) plus {!Ntcu_extensions.Leave_protocol} for
    graceful departures. The protocol is reactive — joins and leaves drive
    all traffic — so the [maintain_every]/[rounds] knobs of
    {!Protocol.config} are ignored. *)

include Protocol.S
