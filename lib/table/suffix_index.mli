(** Index of every suffix carried by a set of identifiers.

    Supports the suffix-set queries that pervade the paper ("is
    [V_{omega}] empty?") in O(1) per query. *)

type t

val of_ids : ?params:Ntcu_id.Params.t -> Ntcu_id.Id.t list -> t
(** Build the index. When [params] is supplied and the space is
    {!Ntcu_id.Packed.packable}, suffixes are keyed as packed ints (per-length
    tables) instead of structurally hashed arrays — same query results,
    constant-time hashing. *)

val mem : t -> int array -> bool
(** Does any indexed identifier end with the suffix? (The empty suffix is in
    every nonempty index.) *)

val witness : t -> int array -> Ntcu_id.Id.t option
(** Some identifier ending with the suffix, if any. *)

val members : t -> int array -> Ntcu_id.Id.t list
(** All identifiers ending with the suffix — the paper's suffix set
    [V_{omega}]. For the empty suffix this is every indexed identifier. *)

val count : t -> int array -> int
