module Id = Ntcu_id.Id

type violation =
  | False_negative of { node : Id.t; level : int; digit : int; witness : Id.t }
  | Dangling of { node : Id.t; level : int; digit : int; stored : Id.t }
  | Wrong_suffix of { node : Id.t; level : int; digit : int; stored : Id.t }

let pp_violation ppf = function
  | False_negative { node; level; digit; witness } ->
    Fmt.pf ppf "false negative: (%d,%d)-entry of %a is empty but %a matches" level digit
      Id.pp node Id.pp witness
  | Dangling { node; level; digit; stored } ->
    Fmt.pf ppf "dangling: (%d,%d)-entry of %a stores %a, not a network node" level digit
      Id.pp node Id.pp stored
  | Wrong_suffix { node; level; digit; stored } ->
    Fmt.pf ppf "wrong suffix: (%d,%d)-entry of %a stores %a" level digit Id.pp node Id.pp
      stored

(* Map from suffix (int array, index 0 = rightmost) to a witness node carrying
   it. Structural hashing of small int arrays is well distributed. *)
let suffix_witnesses tables =
  let witnesses : (int array, Id.t) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun table ->
      let id = Table.owner table in
      for len = 1 to Id.length id do
        let suffix = Id.suffix id len in
        if not (Hashtbl.mem witnesses suffix) then Hashtbl.add witnesses suffix id
      done)
    tables;
  witnesses

(* General path: suffix arrays as structural hash keys, membership via
   Id.Set. Reaching [limit] aborts the remaining scan (via [Exit]), so a
   [~limit:1] yes/no probe of an inconsistent network stops at the first
   offending entry instead of walking every table. *)
let scan_violations_general ~add tables =
  let witnesses = suffix_witnesses tables in
  let members =
    List.fold_left (fun acc t -> Id.Set.add (Table.owner t) acc) Id.Set.empty tables
  in
  List.iter
    (fun table ->
      let p = Table.params table in
      let node = Table.owner table in
      for level = 0 to p.d - 1 do
        for digit = 0 to p.b - 1 do
          let suffix = Table.required_suffix table ~level ~digit in
          match Table.neighbor table ~level ~digit with
          | None -> begin
            match Hashtbl.find_opt witnesses suffix with
            | Some witness -> add (False_negative { node; level; digit; witness })
            | None -> ()
          end
          | Some stored ->
            if not (Id.Set.mem stored members) then
              add (Dangling { node; level; digit; stored })
            else if not (Id.has_suffix stored suffix) then
              add (Wrong_suffix { node; level; digit; stored })
        done
      done)
    tables

(* Packed fast path, taken when the id space fits tagged ints: witnesses live
   in per-length int-keyed tables, membership is an int-keyed table, and the
   required-suffix / wrong-suffix logic is shift-and-mask arithmetic on packed
   values — no per-entry array allocation or structural hashing. Witness
   choice (first table in list order carrying the suffix) and scan order match
   the general path exactly, so both paths report identical violation lists. *)
let scan_violations_packed l ~add tables =
  let module Packed = Ntcu_id.Packed in
  let d = (Packed.params l).Ntcu_id.Params.d in
  let witnesses : (int, Id.t) Hashtbl.t array =
    Array.init (d + 1) (fun _ -> Hashtbl.create 64)
  in
  let members : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let packed = List.map (fun t -> (t, Packed.of_id l (Table.owner t))) tables in
  List.iter
    (fun (table, x) ->
      let id = Table.owner table in
      for len = 1 to d do
        let key = Packed.suffix_value l x len in
        if not (Hashtbl.mem witnesses.(len) key) then Hashtbl.add witnesses.(len) key id
      done;
      Hashtbl.replace members (x :> int) ())
    packed;
  let bits = Packed.bits l in
  List.iter
    (fun (table, x) ->
      let p = Table.params table in
      let node = Table.owner table in
      for level = 0 to p.d - 1 do
        let low = Packed.suffix_value l x level in
        for digit = 0 to p.b - 1 do
          (* Required suffix of the (level, digit) entry, packed: the owner's
             low [level] digits with [digit] prepended on the left. *)
          let required = low lor (digit lsl (level * bits)) in
          match Table.neighbor table ~level ~digit with
          | None -> begin
            match Hashtbl.find_opt witnesses.(level + 1) required with
            | Some witness -> add (False_negative { node; level; digit; witness })
            | None -> ()
          end
          | Some stored ->
            let sx = Packed.of_id l stored in
            if not (Hashtbl.mem members (sx :> int)) then
              add (Dangling { node; level; digit; stored })
            else if Packed.suffix_value l sx (level + 1) <> required then
              add (Wrong_suffix { node; level; digit; stored })
        done
      done)
    packed

let scan_violations ~limit tables =
  let found = ref [] in
  let count = ref 0 in
  let add v =
    found := v :: !found;
    incr count;
    if !count >= limit then raise Exit
  in
  (try
     match tables with
     | [] -> ()
     | t0 :: _ when Ntcu_id.Packed.packable (Table.params t0) ->
       scan_violations_packed (Ntcu_id.Packed.layout (Table.params t0)) ~add tables
     | _ -> scan_violations_general ~add tables
   with Exit -> ());
  List.rev !found

let violations ?(limit = 100) tables =
  if limit <= 0 then [] else scan_violations ~limit tables

let is_consistent tables = List.is_empty (violations ~limit:1 tables)

let next_hop_path ~lookup x y =
  let d = Id.length y in
  let rec go current hop acc =
    if Id.equal current y then Some (List.rev (y :: acc))
    else if hop >= d then None
    else begin
      match lookup current with
      | None -> None
      | Some table -> begin
        match Table.neighbor table ~level:hop ~digit:(Id.digit y hop) with
        | None -> None
        | Some next ->
          (* Staying put (self-entry) is a legal zero-cost hop. *)
          let acc = if Id.equal next current then acc else current :: acc in
          go next (hop + 1) acc
      end
    end
  in
  go x 0 []

let all_pairs_reachable tables =
  let by_id =
    List.fold_left (fun acc t -> Id.Map.add (Table.owner t) t acc) Id.Map.empty tables
  in
  let lookup id = Id.Map.find_opt id by_id in
  List.for_all
    (fun tx ->
      List.for_all
        (fun ty ->
          let x = Table.owner tx and y = Table.owner ty in
          Id.equal x y || Option.is_some (next_hop_path ~lookup x y))
        tables)
    tables
