module Id = Ntcu_id.Id
module Packed = Ntcu_id.Packed

(* Two keying strategies behind one interface. The general path hashes the
   suffix array structurally. When the parameter space is packable and the
   caller supplies it, suffixes are keyed as packed ints in per-length
   tables — int hashing instead of array hashing on every build step and
   query, which is the difference between O(len) hash work and O(1) at the
   million-entry scale. Both paths store members in the same (reverse
   insertion) order, so query results are identical. *)
type keying =
  | By_array of (int array, Id.t list ref) Hashtbl.t
  | By_packed of Packed.layout * (int, Id.t list ref) Hashtbl.t array
      (* index = suffix length, 1 .. d *)

type t = {
  keying : keying;
  all : Id.t list; (* indexed ids, for the empty suffix *)
}

let of_ids ?params ids =
  let keying =
    match params with
    | Some p when Packed.packable p ->
        let l = Packed.layout p in
        let tables = Array.init (p.Ntcu_id.Params.d + 1) (fun _ -> Hashtbl.create 64) in
        List.iter
          (fun id ->
            let x = Packed.of_id l id in
            for len = 1 to Id.length id do
              let key = Packed.suffix_value l x len in
              match Hashtbl.find_opt tables.(len) key with
              | Some r -> r := id :: !r
              | None -> Hashtbl.add tables.(len) key (ref [ id ])
            done)
          ids;
        By_packed (l, tables)
    | Some _ | None ->
        let by_suffix = Hashtbl.create 1024 in
        List.iter
          (fun id ->
            for len = 1 to Id.length id do
              let suffix = Id.suffix id len in
              match Hashtbl.find_opt by_suffix suffix with
              | Some r -> r := id :: !r
              | None -> Hashtbl.add by_suffix suffix (ref [ id ])
            done)
          ids;
        By_array by_suffix
  in
  { keying; all = ids }

(* Fold an array-form suffix into its packed value. Returns [None] when the
   suffix cannot name any indexed id (too long, or a digit outside the
   packed range), which the callers below report as "no members". *)
let packed_key l suffix =
  let len = Array.length suffix in
  if len > (Packed.params l).Ntcu_id.Params.d then None
  else begin
    let bits = Packed.bits l in
    let mask = (1 lsl bits) - 1 in
    let v = ref 0 in
    let ok = ref true in
    for i = 0 to len - 1 do
      if suffix.(i) < 0 || suffix.(i) > mask then ok := false
      else v := !v lor (suffix.(i) lsl (i * bits))
    done;
    if !ok then Some !v else None
  end

let members t suffix =
  let len = Array.length suffix in
  if len = 0 then t.all
  else begin
    match t.keying with
    | By_array by_suffix -> begin
        match Hashtbl.find_opt by_suffix suffix with Some r -> !r | None -> []
      end
    | By_packed (l, tables) ->
        if len >= Array.length tables then []
        else begin
          match packed_key l suffix with
          | None -> []
          | Some key -> begin
              match Hashtbl.find_opt tables.(len) key with Some r -> !r | None -> []
            end
        end
  end

let mem t suffix = not (List.is_empty (members t suffix))

let witness t suffix = match members t suffix with [] -> None | id :: _ -> Some id

let count t suffix = List.length (members t suffix)
