module Id = Ntcu_id.Id

type t = {
  by_suffix : (int array, Id.t list ref) Hashtbl.t;
  all : Id.t list; (* indexed ids, for the empty suffix *)
}

let of_ids ids =
  let by_suffix = Hashtbl.create 1024 in
  List.iter
    (fun id ->
      for len = 1 to Id.length id do
        let suffix = Id.suffix id len in
        match Hashtbl.find_opt by_suffix suffix with
        | Some l -> l := id :: !l
        | None -> Hashtbl.add by_suffix suffix (ref [ id ])
      done)
    ids;
  { by_suffix; all = ids }

let members t suffix =
  if Array.length suffix = 0 then t.all
  else begin
    match Hashtbl.find_opt t.by_suffix suffix with
    | Some l -> !l
    | None -> []
  end

let mem t suffix = not (List.is_empty (members t suffix))

let witness t suffix = match members t suffix with [] -> None | id :: _ -> Some id

let count t suffix = List.length (members t suffix)
