(** Consistency checking (paper, Definition 3.8) and reachability
    (Definition 3.7, Lemma 3.1).

    A network [<V, N(V)>] is consistent iff every table entry is (a) filled
    whenever some node carries the entry's required suffix — false-negative
    freedom — and (b) empty whenever no such node exists — false-positive
    freedom. *)

type violation =
  | False_negative of {
      node : Ntcu_id.Id.t;
      level : int;
      digit : int;
      witness : Ntcu_id.Id.t;
          (** A network node carrying the required suffix while the entry is
              empty. *)
    }
  | Dangling of {
      node : Ntcu_id.Id.t;
      level : int;
      digit : int;
      stored : Ntcu_id.Id.t;  (** Entry occupant that is not a network node. *)
    }
  | Wrong_suffix of {
      node : Ntcu_id.Id.t;
      level : int;
      digit : int;
      stored : Ntcu_id.Id.t;
    }

val pp_violation : violation Fmt.t

val violations : ?limit:int -> Table.t list -> violation list
(** All violations over the network formed by the given tables (their owners
    are the node set [V]), up to [limit] (default 100). Empty iff the network
    is consistent. *)

val is_consistent : Table.t list -> bool

val next_hop_path :
  lookup:(Ntcu_id.Id.t -> Table.t option) ->
  Ntcu_id.Id.t ->
  Ntcu_id.Id.t ->
  Ntcu_id.Id.t list option
(** [next_hop_path ~lookup x y] follows primary neighbors per Definition 3.7:
    hop [i] moves to the current node's [(i, y\[i\])]-neighbor. Returns the
    node sequence from [x] to [y] inclusive, or [None] if a needed entry is
    empty or a table is missing. The sequence has at most [d + 1] nodes. *)

val all_pairs_reachable : Table.t list -> bool
(** True iff every ordered pair of owners is connected by a next-hop path.
    Quadratic — intended for tests on small networks. *)
