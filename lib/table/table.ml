module Id = Ntcu_id.Id
module Params = Ntcu_id.Params

type nstate = T | S

let nstate_equal a b = match (a, b) with T, T | S, S -> true | (T | S), _ -> false

let pp_nstate ppf = function
  | T -> Fmt.string ppf "T"
  | S -> Fmt.string ppf "S"

type slot = { node : Id.t; mutable state : nstate }

type t = {
  params : Params.t;
  owner : Id.t;
  slots : slot option array; (* index = level * b + digit *)
  reverse : Id.Set.t array; (* same indexing *)
  backup : Id.t list array; (* same indexing; newest first *)
  backup_capacity : int;
  mutable filled : int;
}

let create (params : Params.t) ~owner =
  if Id.length owner <> params.d then invalid_arg "Table.create: owner ID length mismatch";
  let size = params.d * params.b in
  {
    params;
    owner;
    slots = Array.make size None;
    reverse = Array.make size Id.Set.empty;
    backup = Array.make size [];
    backup_capacity = 3;
    filled = 0;
  }

let params t = t.params
let owner t = t.owner

let index t ~level ~digit =
  if level < 0 || level >= t.params.d then
    invalid_arg (Printf.sprintf "Table: level %d out of range" level);
  if digit < 0 || digit >= t.params.b then
    invalid_arg (Printf.sprintf "Table: digit %d out of range" digit);
  (level * t.params.b) + digit

let get t ~level ~digit =
  match t.slots.(index t ~level ~digit) with
  | None -> None
  | Some { node; state } -> Some (node, state)

let neighbor t ~level ~digit =
  match t.slots.(index t ~level ~digit) with
  | None -> None
  | Some { node; _ } -> Some node

let required_suffix t ~level ~digit =
  ignore (index t ~level ~digit);
  Array.init (level + 1) (fun i -> if i = level then digit else Id.digit t.owner i)

let set t ~level ~digit node state =
  let i = index t ~level ~digit in
  let suffix = required_suffix t ~level ~digit in
  if not (Id.has_suffix node suffix) then
    invalid_arg
      (Fmt.str "Table.set: node %a lacks required suffix %a for (%d,%d)-entry of %a"
         Id.pp node Id.pp_suffix suffix level digit Id.pp t.owner);
  if Option.is_none t.slots.(i) then t.filled <- t.filled + 1;
  t.slots.(i) <- Some { node; state }

let clear t ~level ~digit =
  let i = index t ~level ~digit in
  if Option.is_some t.slots.(i) then t.filled <- t.filled - 1;
  t.slots.(i) <- None

let set_state t ~level ~digit state =
  match t.slots.(index t ~level ~digit) with
  | None -> invalid_arg "Table.set_state: empty entry"
  | Some slot -> slot.state <- state

let fill_self t state =
  for level = 0 to t.params.d - 1 do
    set t ~level ~digit:(Id.digit t.owner level) t.owner state
  done

let iter t f =
  for level = 0 to t.params.d - 1 do
    for digit = 0 to t.params.b - 1 do
      match t.slots.((level * t.params.b) + digit) with
      | None -> ()
      | Some { node; state } -> f ~level ~digit node state
    done
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun ~level ~digit node state -> acc := f !acc ~level ~digit node state);
  !acc

let filled_count t = t.filled

let known_nodes t =
  fold t ~init:Id.Set.empty ~f:(fun acc ~level:_ ~digit:_ node _ -> Id.Set.add node acc)

let backup_capacity t = t.backup_capacity

let add_backup t ~level ~digit id =
  let i = index t ~level ~digit in
  let suffix = required_suffix t ~level ~digit in
  let is_primary =
    match t.slots.(i) with Some { node; _ } -> Id.equal node id | None -> false
  in
  if
    Id.equal id t.owner || is_primary
    || List.exists (Id.equal id) t.backup.(i)
    || (not (Id.has_suffix id suffix))
    || List.length t.backup.(i) >= t.backup_capacity
  then false
  else begin
    t.backup.(i) <- id :: t.backup.(i);
    true
  end

let backups t ~level ~digit = t.backup.(index t ~level ~digit)

let remove_backup t id =
  Array.iteri
    (fun i l -> t.backup.(i) <- List.filter (fun b -> not (Id.equal b id)) l)
    t.backup

let filter_backups t ~f =
  Array.iteri (fun i l -> t.backup.(i) <- List.filter f l) t.backup

let promote_backup t ~level ~digit =
  let i = index t ~level ~digit in
  match t.backup.(i) with
  | [] -> None
  | chosen :: rest ->
    t.backup.(i) <- rest;
    set t ~level ~digit chosen S;
    Some chosen

let add_reverse t ~level ~digit id =
  let i = index t ~level ~digit in
  t.reverse.(i) <- Id.Set.add id t.reverse.(i)

let remove_reverse t id =
  Array.iteri (fun i set -> t.reverse.(i) <- Id.Set.remove id set) t.reverse

let reverse_at t ~level ~digit = t.reverse.(index t ~level ~digit)

let all_reverse t = Array.fold_left Id.Set.union Id.Set.empty t.reverse

module Snapshot = struct
  type cell = { level : int; digit : int; node : Id.t; state : nstate }

  type t = { owner : Id.t; cells : cell list; count : int }

  let of_table_levels table ~lo ~hi =
    let cells = ref [] and count = ref 0 in
    iter table (fun ~level ~digit node state ->
        if level >= lo && level <= hi then begin
          cells := { level; digit; node; state } :: !cells;
          incr count
        end);
    { owner = table.owner; cells = List.rev !cells; count = !count }

  let of_table table = of_table_levels table ~lo:0 ~hi:(table.params.d - 1)

  let of_cells ~owner cells = { owner; cells; count = List.length cells }

  let cell_count t = t.count

  let iter t f = List.iter f t.cells

  let find t ~level ~digit =
    List.find_opt (fun c -> c.level = level && c.digit = digit) t.cells

  let filter t ~f =
    let cells = List.filter f t.cells in
    { t with cells; count = List.length cells }
end

let pp ppf t =
  let d = t.params.d and b = t.params.b in
  let cell_width = d + 2 in
  Fmt.pf ppf "Neighbor table of node %a %a@." Id.pp t.owner Params.pp t.params;
  Fmt.pf ppf "      ";
  for level = d - 1 downto 0 do
    Fmt.pf ppf "%*s" cell_width (Printf.sprintf "lvl%d" level)
  done;
  Fmt.pf ppf "@.";
  for digit = 0 to b - 1 do
    Fmt.pf ppf "j=%-3d " digit;
    for level = d - 1 downto 0 do
      match get t ~level ~digit with
      | None -> Fmt.pf ppf "%*s" cell_width "."
      | Some (node, T) -> Fmt.pf ppf "%*s" cell_width (Id.to_string node ^ "*")
      | Some (node, S) -> Fmt.pf ppf "%*s" cell_width (Id.to_string node)
    done;
    Fmt.pf ppf "@."
  done
