(** Neighbor tables (paper, Section 2.1).

    A table has [d] levels of [b] entries. The [(i, j)]-entry of node [x]'s
    table holds a node whose ID shares a common suffix of [i] digits with
    [x.ID] and whose [i]th digit is [j]. Only primary neighbors are stored
    (the paper relaxes optimality and keeps one neighbor per entry). Each
    entry also carries the neighbor's believed status: [S] ("in system") or
    [T] (still joining); and the table tracks reverse neighbors — the nodes
    known to store the owner in their own tables. *)

type nstate = T | S

val nstate_equal : nstate -> nstate -> bool
val pp_nstate : nstate Fmt.t

type t

val create : Ntcu_id.Params.t -> owner:Ntcu_id.Id.t -> t
(** An empty table. No self-entries are filled; see {!fill_self}. *)

val params : t -> Ntcu_id.Params.t
val owner : t -> Ntcu_id.Id.t

val get : t -> level:int -> digit:int -> (Ntcu_id.Id.t * nstate) option
(** The [(level, digit)]-entry, or [None] when empty.
    @raise Invalid_argument if out of range. *)

val neighbor : t -> level:int -> digit:int -> Ntcu_id.Id.t option

val set : t -> level:int -> digit:int -> Ntcu_id.Id.t -> nstate -> unit
(** Unconditional write (the protocol layer decides when writes are legal).
    @raise Invalid_argument if the node's ID does not have the suffix required
    by the entry, which would corrupt routing. *)

val clear : t -> level:int -> digit:int -> unit
(** Empty the entry (used by the leave protocol). *)

val set_state : t -> level:int -> digit:int -> nstate -> unit
(** Update the state of a filled entry.
    @raise Invalid_argument if the entry is empty. *)

val fill_self : t -> nstate -> unit
(** Set entry [(i, owner[i])] to the owner at every level [i], with the given
    state — the paper's convention that a node is its own primary
    [(i, x\[i\])]-neighbor. *)

val required_suffix : t -> level:int -> digit:int -> int array
(** The suffix (length [level + 1], index 0 = rightmost) that any occupant of
    the entry must have: [digit . owner[level-1 .. 0]]. *)

val iter : t -> (level:int -> digit:int -> Ntcu_id.Id.t -> nstate -> unit) -> unit
(** Visit every filled entry, by increasing level then digit. *)

val fold : t -> init:'a -> f:('a -> level:int -> digit:int -> Ntcu_id.Id.t -> nstate -> 'a) -> 'a

val filled_count : t -> int

val known_nodes : t -> Ntcu_id.Id.Set.t
(** All distinct nodes appearing in the table (including the owner if
    self-filled). *)

(** {1 Backup neighbors}

    The paper stores one primary neighbor per entry but notes (Section 2.1)
    that "a subset of these nodes … may be stored in the entry", the extras
    serving object location or fault-tolerant routing. Backups are additional
    nodes with the entry's required suffix, harvested opportunistically; they
    are invisible to the consistency checker (which judges primaries) and are
    used by resilient routing when the primary is unreachable. *)

val backup_capacity : t -> int

val add_backup : t -> level:int -> digit:int -> Ntcu_id.Id.t -> bool
(** Record an extra holder of the entry's suffix. No-ops (returning [false])
    when the node is the owner, the current primary, already a backup, lacks
    the suffix, or the entry is at capacity. *)

val backups : t -> level:int -> digit:int -> Ntcu_id.Id.t list
(** Most recently added first. *)

val remove_backup : t -> Ntcu_id.Id.t -> unit
(** Drop a node from every backup list (departures). *)

val filter_backups : t -> f:(Ntcu_id.Id.t -> bool) -> unit
(** Keep only backups satisfying [f] (bulk scrubbing after failures). *)

val promote_backup : t -> level:int -> digit:int -> Ntcu_id.Id.t option
(** Pop the first backup into the primary slot (with state [S]) and return
    it; [None] when there is no backup. Used to heal an entry whose primary
    died. *)

(** {1 Reverse neighbors} *)

val add_reverse : t -> level:int -> digit:int -> Ntcu_id.Id.t -> unit
val remove_reverse : t -> Ntcu_id.Id.t -> unit
(** Remove the node from every reverse set. *)

val reverse_at : t -> level:int -> digit:int -> Ntcu_id.Id.Set.t
val all_reverse : t -> Ntcu_id.Id.Set.t

(** {1 Snapshots}

    Immutable sparse copies of a table, embedded in protocol messages (the
    paper's [x.table] message fields). *)

module Snapshot : sig
  type table := t

  type cell = { level : int; digit : int; node : Ntcu_id.Id.t; state : nstate }

  type t = private { owner : Ntcu_id.Id.t; cells : cell list; count : int }
  (** [cells] lists the filled entries, by increasing level then digit;
      [count] caches its length so wire-size accounting is O(1). *)

  val of_table : table -> t

  val of_table_levels : table -> lo:int -> hi:int -> t
  (** Only levels in [\[lo, hi\]] — the Section 6.2 level-range reduction. *)

  val of_cells : owner:Ntcu_id.Id.t -> cell list -> t
  (** Rebuild a snapshot from its parts (wire decoding). The cell list is
      taken as is. *)

  val cell_count : t -> int

  val iter : t -> (cell -> unit) -> unit

  val find : t -> level:int -> digit:int -> cell option
  (** The cell at a position, if present. *)

  val filter : t -> f:(cell -> bool) -> t
  (** Keep only cells satisfying [f] (used by the Section 6.2 bit-vector
      reply reduction). *)
end

val pp : t Fmt.t
(** Figure-1-style grid: one row per digit, one column per level (highest
    level leftmost), each cell showing the primary neighbor (suffixed [*] when
    its state is [T]) or blank. *)
