let table ~header ppf rows =
  let all = header :: rows in
  let columns = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make columns 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  let print_row row =
    List.iteri (fun i cell -> Fmt.pf ppf "%-*s  " widths.(i) cell) row;
    Fmt.pf ppf "@."
  in
  print_row header;
  print_row (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter print_row rows

(* Rounded %f conversions below are fine: these printers are human-readable
   console output. Anything machine-consumed goes through [Json.float_repr],
   which round-trips every float. *)
let[@ntcu.allow "D005"] pp_join_run ppf (run : Experiment.join_run) =
  let j = Ntcu_std.Stats.of_ints run.join_noti in
  let cw = Ntcu_std.Stats.of_ints run.cp_wait in
  let d = (Ntcu_core.Network.params run.net).d in
  Fmt.pf ppf
    "|V| = %d, |W| = %d: %s, %s, %d messages, %.2fs cpu@.\
     JoinNotiMsg per joiner: mean %.3f, median %.1f, p99 %.1f, max %.0f@.\
     CpRst+JoinWait per joiner: mean %.3f, max %.0f (Theorem 3 bound d+1 = %d)@."
    (List.length run.seeds) (List.length run.joiners)
    (if run.all_in_system && run.quiescent then "all in_system" else "LIVENESS FAILURE")
    (if Experiment.consistent run then "consistent"
     else Printf.sprintf "%d VIOLATIONS" (List.length (Lazy.force run.violations)))
    run.events run.elapsed_cpu (Ntcu_std.Stats.mean j) (Ntcu_std.Stats.median j)
    (Ntcu_std.Stats.percentile j 99.)
    (snd (Ntcu_std.Stats.min_max j))
    (Ntcu_std.Stats.mean cw)
    (snd (Ntcu_std.Stats.min_max cw))
    (d + 1)

let pp_fault_run ppf (f : Experiment.fault_run) =
  let g = Ntcu_core.Network.global_stats f.run.net in
  Fmt.pf ppf
    "%a  crashed %d, stuck %d; transport: %d first sends, %d total sends, %d lost, %d \
     ack losses, %d retransmissions, %d timeouts, %d failovers, %d duplicates \
     suppressed@."
    pp_join_run f.run (List.length f.crashed) f.stuck
    (Ntcu_core.Stats.first_sends g)
    (Ntcu_core.Stats.total_sends g)
    f.lost f.acks_lost f.retransmissions f.timeouts f.failovers f.duplicates;
  match f.repair with
  | Some r -> Fmt.pf ppf "online repair: %a@." Ntcu_extensions.Online_repair.pp_report r
  | None -> ()

let[@ntcu.allow "D005"] pp_fig15a_curve ~label ppf points =
  Fmt.pf ppf "# %s@." label;
  List.iter (fun (n, bound) -> Fmt.pf ppf "%8d  %.3f@." n bound) points

let[@ntcu.allow "D005"] pp_cdf ~label ppf points =
  Fmt.pf ppf "# %s@." label;
  List.iter (fun (v, frac) -> Fmt.pf ppf "%6d  %.4f@." v frac) points

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* %.17g round-trips every float; JSON has no NaN/infinity, so map those to
     null rather than emit unparseable output. *)
  let float_repr f =
    match Float.classify_float f with
    | FP_nan | FP_infinite -> "null"
    | _ ->
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

  let rec pp ppf = function
    | Null -> Fmt.string ppf "null"
    | Bool b -> Fmt.string ppf (if b then "true" else "false")
    | Int i -> Fmt.pf ppf "%d" i
    | Float f -> Fmt.string ppf (float_repr f)
    | String s -> Fmt.pf ppf "\"%s\"" (escape s)
    | List items ->
      Fmt.pf ppf "@[<hv 2>[@,%a@;<0 -2>]@]"
        (Fmt.list ~sep:(Fmt.any ",@,") pp)
        items
    | Obj fields ->
      Fmt.pf ppf "@[<hv 2>{@,%a@;<0 -2>}@]"
        (Fmt.list ~sep:(Fmt.any ",@,") (fun ppf (k, v) ->
             Fmt.pf ppf "@[<h>\"%s\": %a@]" (escape k) pp v))
        fields

  let to_string t = Fmt.str "%a" pp t

  let to_file path t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t ^ "\n"))
end

let[@ntcu.allow "D005"] pp_avg_vs_bound ppf rows =
  table
    ~header:[ "setup"; "measured avg J"; "Theorem-5 bound"; "paper avg J" ]
    ppf
    (List.map
       (fun (label, avg, bound, paper) ->
         [ label; Printf.sprintf "%.3f" avg; Printf.sprintf "%.3f" bound; Printf.sprintf "%.3f" paper ])
       rows)
