module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Parallel = Ntcu_std.Parallel
module Engine = Ntcu_sim.Engine
module Endhosts = Ntcu_topology.Endhosts
module Transit_stub = Ntcu_topology.Transit_stub
module Route = Ntcu_routing.Route
module Protocol = Ntcu_protocol.Protocol
module Json = Report.Json

type arm = Paper | Chord | Chord_naive | Baseline

let arm_name = function
  | Paper -> "paper"
  | Chord -> "chord"
  | Chord_naive -> "chord-naive"
  | Baseline -> "baseline"

let arm_of_name = function
  | "paper" -> Some Paper
  | "chord" -> Some Chord
  | "chord-naive" -> Some Chord_naive
  | "baseline" -> Some Baseline
  | _ -> None

let protocol_of_arm = function
  | Paper -> (module Ntcu_protocol.Paper : Protocol.S)
  | Baseline -> (module Ntcu_protocol.Baseline : Protocol.S)
  | Chord -> Ntcu_chord.Chord.protocol ()
  | Chord_naive -> Ntcu_chord.Chord.protocol ~naive:true ()

type config = {
  b : int;
  d : int;
  n : int;
  m : int;
  leavers : int;
  lookups : int;
  seed : int;
  maintain_every : float;
  rounds : int;
  arms : arm list;
}

let default =
  {
    b = 4;
    d = 6;
    n = 32;
    m = 12;
    leavers = 4;
    lookups = 64;
    seed = 1;
    maintain_every = 500.;
    rounds = 16;
    arms = [ Paper; Chord ];
  }

let smoke = { default with n = 16; m = 6; leavers = 2; lookups = 32 }

(* Workload timeline: staggered joins, then a settle gap, then graceful
   leaves, all inside the bounded-maintenance horizon. The settle gap must
   outlast the slowest join at transit-stub latencies: a departure while a
   join is still in flight violates the paper protocol's assumption (iv) and
   would turn every arm's leave phase into a different experiment. *)
let join_spacing = 50.
let leave_settle = 3_000.
let leave_spacing = 200.
let sample_every = 250.

type workload = {
  params : Params.t;
  seeds : Id.t list;
  joins : (float * Id.t * Id.t) list; (* (time, joiner, gateway) *)
  leaves : (float * Id.t) list;
  pairs : (Id.t * Id.t) list; (* lookup (source, target) *)
}

(* Pure data, computed once and shared read-only by every arm: identical
   populations, gateways, departure schedules and lookup pairs are what make
   the comparison head-to-head. *)
let workload cfg =
  let params = Params.make ~b:cfg.b ~d:cfg.d in
  let rng = Rng.create cfg.seed in
  let seeds = Workload.distinct_ids rng params ~n:cfg.n in
  let joiners =
    Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng params ~n:cfg.m
  in
  let gateways = Array.of_list seeds in
  let used = ref Id.Set.empty in
  let joins =
    List.mapi
      (fun i id ->
        let gw = Rng.pick rng gateways in
        used := Id.Set.add gw !used;
        (join_spacing *. float_of_int i, id, gw))
      joiners
  in
  let leaves =
    (* Leavers are seeds no joiner uses as gateway — a departing gateway
       would violate the paper protocol's assumption (ii), turning the
       comparison into a different experiment. *)
    let candidates =
      Array.of_list (List.filter (fun id -> not (Id.Set.mem id !used)) seeds)
    in
    let lrng = Rng.create (cfg.seed + 5) in
    Rng.shuffle lrng candidates;
    let count = min cfg.leavers (Array.length candidates) in
    let t0 = (join_spacing *. float_of_int cfg.m) +. leave_settle in
    List.init count (fun i ->
        (t0 +. (leave_spacing *. float_of_int i), candidates.(i)))
  in
  let pairs =
    let gone = Id.Set.of_list (List.map snd leaves) in
    let survivors =
      Array.of_list
        (List.filter (fun id -> not (Id.Set.mem id gone)) seeds @ joiners)
    in
    let prng = Rng.create (cfg.seed + 7) in
    List.init cfg.lookups (fun _ ->
        let src = Rng.pick prng survivors in
        let rec pick () =
          let t = Rng.pick prng survivors in
          if Id.equal t src then pick () else t
        in
        (src, pick ()))
  in
  { params; seeds; joins; leaves; pairs }

type arm_result = {
  arm : arm;
  protocol : string;
  members : int;
  violations : Protocol.violation list;
  traffic : Protocol.traffic;
  consistency_window : float;
      (* last sample time (ms) at which the arm was inconsistent *)
  leaves_applied : int;
  lookups_attempted : int;
  lookups_ok : int;
  mean_stretch : float; (* nan when no lookup succeeded *)
}

let arm_ok r = List.is_empty r.violations

let run_arm cfg (w : workload) arm =
  let module P = (val protocol_of_arm arm) in
  (* Each arm builds its own topology instance from the same seeds:
     Transit_stub/Distances are single-domain, but the construction is
     deterministic, so every arm sees identical distances. *)
  let topo = Transit_stub.generate ~seed:(cfg.seed + 10) Transit_stub.default_config in
  let hosts = Endhosts.attach ~seed:(cfg.seed + 11) topo ~n:(cfg.n + cfg.m) in
  let latency = Endhosts.latency ~seed:(cfg.seed + 12) hosts in
  let t =
    P.create ~latency
      { Protocol.params = w.params; seed = cfg.seed; maintain_every = cfg.maintain_every;
        rounds = cfg.rounds }
  in
  P.seed_network t ~seed:(cfg.seed + 2) w.seeds;
  List.iter (fun (at, id, gateway) -> P.start_join t ~at ~id ~gateway) w.joins;
  let leaves_applied =
    if P.supports_leave then begin
      List.iter (fun (at, id) -> P.leave t ~at id) w.leaves;
      List.length w.leaves
    end
    else 0 (* join-only protocol: departures are not part of its story *)
  in
  (* Drain the run on a fixed virtual-time grid, probing consistency at each
     tick: the last inconsistent sample bounds the consistency window. The
     grid is virtual time, so the measurement is deterministic. *)
  let engine = P.engine t in
  let last_bad = ref 0. in
  let k = ref 0 in
  while Engine.pending engine > 0 do
    incr k;
    let time = sample_every *. float_of_int !k in
    Engine.run_until engine ~time;
    if not (P.consistent t) then last_bad := time
  done;
  P.run t;
  (* Host indices follow registration order: seeds first, joiners after, in
     workload order — the same convention every protocol adapter uses. *)
  let host =
    let tbl = Id.Tbl.create (cfg.n + cfg.m) in
    List.iteri (fun i id -> Id.Tbl.add tbl id i) w.seeds;
    List.iteri
      (fun i (_, id, _) -> Id.Tbl.add tbl id (cfg.n + i))
      w.joins;
    fun id -> Id.Tbl.find tbl id
  in
  let dist a b = Endhosts.distance hosts (host a) (host b) in
  let attempted = ref 0 and succeeded = ref 0 and stretch_sum = ref 0. in
  let stretches = ref 0 in
  List.iter
    (fun (src, target) ->
      if P.in_system t src && P.in_system t target then begin
        incr attempted;
        match P.lookup t ~src ~target with
        | None -> ()
        | Some path ->
          incr succeeded;
          let direct = dist src target in
          if direct > 0. then begin
            stretch_sum := !stretch_sum +. (Route.path_cost ~dist path /. direct);
            incr stretches
          end
      end)
    w.pairs;
  {
    arm;
    protocol = P.name;
    members = List.length (P.members t);
    violations = P.check t;
    traffic = P.traffic t;
    consistency_window = !last_bad;
    leaves_applied;
    lookups_attempted = !attempted;
    lookups_ok = !succeeded;
    mean_stretch =
      (if !stretches = 0 then Float.nan
       else !stretch_sum /. float_of_int !stretches);
  }

type report = { config : config; results : arm_result list }

let ok r = List.for_all arm_ok r.results

let run ?(jobs = 1) cfg =
  let w = workload cfg in
  let results =
    Parallel.with_pool ~jobs (fun pool ->
        Parallel.map pool (run_arm cfg w) cfg.arms)
  in
  { config = cfg; results }

let violation_json (v : Protocol.violation) =
  Json.Obj [ ("name", Json.String v.name); ("detail", Json.String v.detail) ]

let arm_json r =
  Json.Obj
    [
      ("arm", Json.String (arm_name r.arm));
      ("protocol", Json.String r.protocol);
      ("members", Json.Int r.members);
      ("ok", Json.Bool (arm_ok r));
      ("violations", Json.List (List.map violation_json r.violations));
      ( "traffic",
        Json.Obj
          [
            ("join", Json.Int r.traffic.join);
            ("maintain", Json.Int r.traffic.maintain);
            ("total", Json.Int r.traffic.total);
          ] );
      ("consistency_window_ms", Json.Float r.consistency_window);
      ("leaves_applied", Json.Int r.leaves_applied);
      ( "lookups",
        Json.Obj
          [
            ("attempted", Json.Int r.lookups_attempted);
            ("ok", Json.Int r.lookups_ok);
            ("mean_stretch", Json.Float r.mean_stretch);
          ] );
    ]

let to_json r =
  let c = r.config in
  Json.Obj
    [
      ("schema", Json.String "ntcu-bench-arena/1");
      ( "config",
        Json.Obj
          [
            ("b", Json.Int c.b);
            ("d", Json.Int c.d);
            ("n", Json.Int c.n);
            ("m", Json.Int c.m);
            ("leavers", Json.Int c.leavers);
            ("lookups", Json.Int c.lookups);
            ("seed", Json.Int c.seed);
            ("maintain_every_ms", Json.Float c.maintain_every);
            ("rounds", Json.Int c.rounds);
            ("arms", Json.List (List.map (fun a -> Json.String (arm_name a)) c.arms));
          ] );
      ("arms", Json.List (List.map arm_json r.results));
      ("ok", Json.Bool (ok r));
    ]

let write ~path r = Json.to_file path (to_json r)

let pp_report ppf r =
  let c = r.config in
  Fmt.pf ppf "arena: n=%d m=%d leavers=%d lookups=%d seed=%d (b=%d d=%d)@." c.n c.m
    c.leavers c.lookups c.seed c.b c.d;
  let rows =
    List.map
      (fun a ->
        [
          arm_name a.arm;
          string_of_int a.members;
          (if arm_ok a then "ok" else Fmt.str "%d violation(s)" (List.length a.violations));
          string_of_int a.traffic.join;
          string_of_int a.traffic.maintain;
          Fmt.str "%.0f" a.consistency_window;
          Fmt.str "%d/%d" a.lookups_ok a.lookups_attempted;
          (if Float.is_nan a.mean_stretch then "-" else Fmt.str "%.2f" a.mean_stretch);
        ])
      r.results
  in
  Report.table
    ~header:
      [ "arm"; "members"; "invariants"; "join msgs"; "maint msgs"; "window ms";
        "lookups"; "stretch" ]
    ppf rows;
  List.iter
    (fun a ->
      List.iter
        (fun v -> Fmt.pf ppf "  %s: %a@." (arm_name a.arm) Protocol.pp_violation v)
        a.violations)
    r.results
