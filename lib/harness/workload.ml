module Id = Ntcu_id.Id

let distinct_ids ?(suffix = [||]) ?(avoid = Id.Set.empty) rng (p : Ntcu_id.Params.t) ~n =
  if n < 0 then invalid_arg "Workload.distinct_ids: negative n";
  let free_digits = p.d - Array.length suffix in
  if free_digits < 0 then invalid_arg "Workload.distinct_ids: suffix longer than d";
  let space = float_of_int p.b ** float_of_int free_digits in
  if float_of_int (n + Id.Set.cardinal avoid) > space then
    invalid_arg "Workload.distinct_ids: population exceeds the constrained ID space";
  let seen = Hashtbl.create (2 * n) in
  Id.Set.iter (fun id -> Hashtbl.replace seen (Id.to_string id) ()) avoid;
  let out = ref [] in
  let produced = ref 0 in
  while !produced < n do
    let id = Id.random_with_suffix rng p suffix in
    let key = Id.to_string id in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := id :: !out;
      incr produced
    end
  done;
  List.rev !out

let split k l =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] l
