(** Protocol arena: head-to-head comparison of neighbor-table protocols on an
    identical workload.

    Every enabled {!arm} runs the same seeded transit-stub topology, the same
    staggered join schedule, the same graceful departures (where the protocol
    supports them) and the same lookup pairs, behind the
    {!Ntcu_protocol.Protocol.S} interface. The paired report records join and
    maintenance traffic, the consistency window (last virtual-time sample at
    which the arm's own consistency predicate was false), lookup success and
    mean latency stretch, and each protocol's own invariant verdicts.

    Arms are independent deterministic simulations (each builds its own
    topology instance from the shared seeds), so the report — and the JSON
    artifact — is byte-identical for any [jobs] value, and an arm's numbers
    do not change when the opposing arms are added or removed. *)

type arm =
  | Paper  (** The paper's join/leave/maintenance protocol. *)
  | Chord  (** Corrected Chord stabilization ({!Ntcu_chord.Chord}). *)
  | Chord_naive  (** Classic incorrect Chord stabilize. *)
  | Baseline  (** Multicast-join baseline (join-only). *)

val arm_name : arm -> string
(** ["paper"], ["chord"], ["chord-naive"] or ["baseline"]. *)

val arm_of_name : string -> arm option

type config = {
  b : int;
  d : int;
  n : int;  (** Initial members. *)
  m : int;  (** Joiners (staggered 50 ms apart). *)
  leavers : int;  (** Graceful departures among non-gateway seeds. *)
  lookups : int;  (** Lookup pairs evaluated after quiescence. *)
  seed : int;
  maintain_every : float;  (** Maintenance round period, virtual ms. *)
  rounds : int;  (** Bounded maintenance rounds per node. *)
  arms : arm list;
}

val default : config
(** n = 32, m = 12, 4 leavers, 64 lookups, b = 4, d = 6, seed 1, 500 ms
    maintenance, 16 rounds, arms [paper; chord] — the two protocols that
    claim correctness under this workload. The differential arms are opt-in:
    [chord-naive] breaks its ring under departures by design, and [baseline]
    (multicast join) races under concurrent joins at default scale — its
    documented weakness, already claimed by the bench [baseline] section. *)

val smoke : config
(** CI-sized: n = 16, m = 6, 2 leavers, 32 lookups. *)

type arm_result = {
  arm : arm;
  protocol : string;  (** The protocol module's own [name]. *)
  members : int;  (** Members at quiescence. *)
  violations : Ntcu_protocol.Protocol.violation list;
  traffic : Ntcu_protocol.Protocol.traffic;
  consistency_window : float;
      (** Last sample time (ms, 250 ms grid) at which the arm was
          inconsistent by its own predicate; [0.] if never. *)
  leaves_applied : int;  (** [0] for join-only protocols. *)
  lookups_attempted : int;  (** Pairs with both endpoints in-system. *)
  lookups_ok : int;
  mean_stretch : float;
      (** Mean (path cost / direct host distance) over successful lookups;
          [nan] when none succeeded. *)
}

val arm_ok : arm_result -> bool
(** No invariant violations. *)

type report = { config : config; results : arm_result list }

val ok : report -> bool
(** Every arm passed its own invariants. *)

val run : ?jobs:int -> config -> report
(** Execute all arms (fanned over a {!Ntcu_std.Parallel} pool); the report is
    independent of [jobs]. *)

val to_json : report -> Report.Json.t
(** Schema ["ntcu-bench-arena/1"]; contains no timing or host-dependent
    fields. *)

val write : path:string -> report -> unit

val pp_report : report Fmt.t
(** Plain-text paired table plus any invariant violations. *)
