(** Experiment drivers for the paper's evaluation (Section 5.2, Figure 15)
    and for the comparison and ablation benches. *)

type join_run = {
  net : Ntcu_core.Network.t;
  seeds : Ntcu_id.Id.t list;  (** The initial consistent network [V]. *)
  joiners : Ntcu_id.Id.t list;  (** The joining set [W]. *)
  join_noti : int array;  (** Per joiner: # [JoinNotiMsg] sent ([J]). *)
  cp_wait : int array;  (** Per joiner: # [CpRstMsg + JoinWaitMsg] sent. *)
  consistent : bool;
      (** Definition 3.8 yes/no, probed with [Check.violations ~limit:1] (the
          scan aborts at the first violation). *)
  violations : Ntcu_table.Check.violation list Lazy.t;
      (** The full violation list, computed on demand: only forced by
          consumers that report details of an inconsistent network. Force it
          from one domain at a time. *)
  all_in_system : bool;
  quiescent : bool;
  events : int;  (** Messages delivered. *)
  elapsed_cpu : float;  (** Host CPU seconds for the run. *)
}

val consistent : join_run -> bool

(** What a run is allowed to promise. [Strict] is the paper's regime
    (assumptions (i)–(iv) hold): liveness, quiescence {e and} Def-3.8
    consistency are claimed. [Best_effort] is the fault/churn regime:
    crash-over-join repair can legitimately leave a residual hole (e.g.
    [ntcu fault -n 24 -m 10 -b 4 -d 6 --seed 196 --crash 0.05] converges
    live and quiescent with exactly one), so consistency is reported but not
    claimed — only liveness and quiescence gate the exit status. *)
type claim = Strict | Best_effort

val ok : ?claim:claim -> join_run -> bool
(** [all_in_system && quiescent && (claim = Best_effort || consistent)] — the
    healthy-run predicate (default [Strict]). Bench sections and CLI commands
    gate their exit status on this so a regression fails CI instead of just
    printing "NO"; fault and churn modes pass [~claim:Best_effort]. *)

val concurrent_joins :
  ?latency:Ntcu_sim.Latency.t ->
  ?size_mode:Ntcu_core.Message.size_mode ->
  ?suffix:int array ->
  ?stagger:float ->
  Ntcu_id.Params.t ->
  seed:int ->
  n:int ->
  m:int ->
  unit ->
  join_run
(** Build a consistent network of [n] random nodes, then start [m] joins.
    All joins start at time 0 (the paper's setup) unless [stagger > 0.], in
    which case join [i] starts at [i *. stagger]. [suffix] constrains joiner
    IDs to share a suffix — a maximally dependent C-set workload. Gateways
    are random members of [V]. Deterministic in [seed]. *)

val sequential_joins :
  ?latency:Ntcu_sim.Latency.t ->
  ?size_mode:Ntcu_core.Message.size_mode ->
  Ntcu_id.Params.t ->
  seed:int ->
  n:int ->
  m:int ->
  unit ->
  join_run
(** Same, but each join runs to quiescence before the next begins. *)

val network_init :
  ?latency:Ntcu_sim.Latency.t ->
  Ntcu_id.Params.t ->
  seed:int ->
  n:int ->
  join_run
(** Section 6.1: start from one node and build an [n]-node network purely by
    (sequential) joins. The "seeds" list contains the single initial node. *)

(** {1 Figure 15(b): simulated join cost over a transit-stub topology} *)

type fig15b_setup = {
  d : int;
  n : int;  (** Initial consistent network size. *)
  m : int;  (** Concurrent joiners. *)
}

val paper_setups : fig15b_setup list
(** The four curves of Figure 15(b): (3096, 1000) and (7192, 1000), each with
    d = 8 and d = 40 (b = 16). *)

val fig15b :
  ?routers:Ntcu_topology.Transit_stub.config ->
  ?size_mode:Ntcu_core.Message.size_mode ->
  ?record_trace:bool ->
  seed:int ->
  fig15b_setup ->
  join_run
(** Run one Figure 15(b) setup: generate a transit-stub router topology
    (default {!Ntcu_topology.Transit_stub.scaled_config}), attach [n + m]
    end-hosts, use shortest-path latencies, start all joins at time 0. With
    [record_trace] (default false) every delivery is recorded; read it back
    via [Ntcu_core.Network.trace run.net] (golden-trace regression). *)

val fig15b_instrumented :
  ?routers:Ntcu_topology.Transit_stub.config ->
  ?size_mode:Ntcu_core.Message.size_mode ->
  ?record_trace:bool ->
  seed:int ->
  fig15b_setup ->
  join_run * Ntcu_topology.Endhosts.t
(** Like {!fig15b} but also returns the end-host attachment, whose
    [Ntcu_topology.Endhosts.distances] exposes the shortest-path cache
    statistics (hit rate, evictions) for the perf bench. *)

val cdf_points : int array -> (int * float) list
(** [(value, cumulative fraction <= value)] for each distinct value. *)

(** {1 Figure 15(a): the Theorem 5 bound} *)

val fig15a_series :
  b:int -> d:int -> m:int -> ns:int list -> (int * float) list
(** [(n, bound)] points for one curve. *)

(** {1 Fault injection}

    The paper assumes reliable delivery (iii) and no failures during joins
    (iv). This driver violates both — every message is subject to the loss
    model, and a fraction of non-gateway seed nodes fail-stop mid-join — and
    measures whether the reliability layer (ack/retransmit transport +
    failure suspicion + online repair) restores the Theorem 2 outcome. *)

val detect_failures : Ntcu_core.Network.t -> crashed:Ntcu_id.Id.t list -> unit
(** Eventual failure detection, standing in for a deployment's periodic
    liveness probes: while some crashed node is still referenced by a live
    table and not yet suspected, send it one probe through the reliable
    transport and run the network to quiescence — the retry budget drives
    the usual suspicion -> scrub -> online-repair path. Requires the network
    to have been created with a reliability config. *)

type fault_run = {
  run : join_run;
  crashed : Ntcu_id.Id.t list;  (** The fail-stopped nodes. *)
  stuck : int;  (** Joiners short of [in_system] at quiescence. *)
  retransmissions : int;
  timeouts : int;
  failovers : int;
  duplicates : int;  (** Duplicate copies suppressed at receivers. *)
  lost : int;  (** Protocol-message copies lost in transit. *)
  acks_lost : int;
  repair : Ntcu_extensions.Online_repair.report option;
      (** [None] when [reliable] was [false]. *)
}

val fault_injection :
  ?latency:Ntcu_sim.Latency.t ->
  ?size_mode:Ntcu_core.Message.size_mode ->
  ?record_trace:bool ->
  ?reliable:bool ->
  ?reliability:Ntcu_core.Network.reliability ->
  ?loss:float ->
  ?crash_fraction:float ->
  ?crash_at:float ->
  Ntcu_id.Params.t ->
  seed:int ->
  n:int ->
  m:int ->
  unit ->
  fault_run
(** Like {!concurrent_joins} (all joins at time 0, random gateways), but with
    [loss] (default 2%) applied to every message and, when
    [crash_fraction > 0], [max 1 (crash_fraction * n)] seed nodes that no
    joiner uses as gateway fail-stopping at time [crash_at] (default 150).
    [reliable] (default [true]) enables the ack/retransmit transport and
    attaches {!Ntcu_extensions.Online_repair}; with [reliable:false] the run
    reproduces the undefended wedge. Deterministic in [seed]. *)

val residual_hole : unit -> fault_run
(** The canonical residual-hole fixture:
    [fault_injection ~loss:0.02 ~crash_fraction:0.05 (b=4, d=6) ~seed:196
    ~n:24 ~m:10] — converges live and quiescent with exactly one Def-3.8
    violation, so {!ok} rejects it under [Strict] and accepts it under
    [Best_effort]. The regression fixture behind the best-effort exit-status
    contract of [ntcu fault] and the churn engine. *)

(** {1 Baseline comparison} *)

type baseline_result = {
  base_consistent : bool;
  base_violations : int;
  base_done : bool;
  peak_pending : int;
  pending_slots : int;
  base_messages : int;
}

val baseline_run :
  ?latency:Ntcu_sim.Latency.t ->
  Ntcu_id.Params.t ->
  seed:int ->
  n:int ->
  m:int ->
  concurrent:bool ->
  baseline_result
(** Run the multicast-join baseline on the same workload shape. *)
