(** Workload generation: node populations for experiments. *)

val distinct_ids :
  ?suffix:int array ->
  ?avoid:Ntcu_id.Id.Set.t ->
  Ntcu_std.Rng.t ->
  Ntcu_id.Params.t ->
  n:int ->
  Ntcu_id.Id.t list
(** [n] distinct random identifiers, optionally all ending with [suffix]
    (adversarial dependent-join workloads) and avoiding a given set.
    @raise Invalid_argument if the constrained ID space is too small. *)

val split : int -> 'a list -> 'a list * 'a list
(** [split k l] is [(first k elements, rest)]. *)
