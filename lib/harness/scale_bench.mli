(** Measurement harness for the sharded scale engine.

    Wraps {!Ntcu_scale.Scale.run} with host-side instrumentation (wall
    clock, GC peak) and a record-backed memory control, and renders the
    [BENCH_scale.json] artifact. The artifact separates the {e payload} — a
    deterministic function of the configuration, byte-identical for every
    [--jobs] value — from the {e host} section (timings, GC, per-process
    measurements), so CI can compare payloads across worker counts while
    keeping honest machine-dependent numbers alongside. *)

module Scale = Ntcu_scale.Scale

type run = {
  config : Scale.config;
  jobs : int;
  summary : Scale.summary;
  wall_s : float;  (** host-side wall-clock seconds *)
  top_heap_words : int;  (** GC peak over the run *)
}

val default_config : ?seed:int -> n:int -> unit -> Scale.config
(** The paper's simulated space ([b = 16], [d = 8]) with
    [min n 1024] seeds, 64 shards and 512 injections per epoch. *)

val smoke_config : Scale.config
(** CI-sized: 2000 nodes over 16 shards. *)

val measure : jobs:int -> Scale.config -> run

val bytes_per_node : Scale.summary -> float
(** Deterministic arena footprint: [8 * store_words / population]. *)

val events_per_s : run -> float

val control_bytes_per_node : ?n:int -> ?seed:int -> Ntcu_id.Params.t -> float
(** Live-heap bytes per node of a record-backed consistent network
    ({!Ntcu_core.Network.seed_consistent}) of [n] (default 10_000) nodes,
    measured by major-GC live-word deltas. Host-side: the comparison point
    for the arena's [bytes_per_node]. *)

val ok : run -> bool
(** Every joiner injected and completed, zero residual violations, and the
    epoch loop quiesced before the safety bound. *)

val payload_json : run -> Report.Json.t
(** The deterministic section only — identical for every [jobs]. *)

val bench_json : ?control_bytes_per_node:float -> run list -> Report.Json.t
(** The full [ntcu-bench-scale/1] artifact. *)

val pp_run : run Fmt.t
