module Scale = Ntcu_scale.Scale
module Json = Report.Json

type run = {
  config : Scale.config;
  jobs : int;
  summary : Scale.summary;
  wall_s : float;
  top_heap_words : int;
}

let default_config ?(seed = 1) ~n () =
  {
    Scale.params = Ntcu_id.Params.paper_sim_d8;
    n;
    seeds = min n 1024;
    seed;
    shards = 64;
    inject_per_epoch = 512;
    max_epochs = 1_000_000;
  }

let smoke_config =
  { (default_config ~n:2000 ()) with Scale.seeds = 128; shards = 16 }

let measure ~jobs config =
  let t0 = Unix.gettimeofday () in
  let summary = Scale.run ~jobs config in
  let wall_s = Unix.gettimeofday () -. t0 in
  { config; jobs; summary; wall_s; top_heap_words = (Gc.quick_stat ()).top_heap_words }

let bytes_per_node (s : Scale.summary) =
  8. *. float_of_int s.store_words /. float_of_int s.population

let events_per_s r =
  if r.wall_s > 0. then float_of_int r.summary.events /. r.wall_s else 0.

let control_bytes_per_node ?(n = 10_000) ?(seed = 1) params =
  let rng = Ntcu_std.Rng.create seed in
  let ids = ref [] in
  let seen = Hashtbl.create (2 * n) in
  while Hashtbl.length seen < n do
    let id = Ntcu_id.Id.random rng params in
    let key = Ntcu_id.Id.to_string id in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      ids := id :: !ids
    end
  done;
  Gc.full_major ();
  let before = (Gc.stat ()).live_words in
  let net = Ntcu_core.Network.create params in
  Ntcu_core.Network.seed_consistent net ~seed !ids;
  Gc.full_major ();
  let after = (Gc.stat ()).live_words in
  let net = Sys.opaque_identity net in
  ignore (Ntcu_core.Network.size net : int);
  8. *. float_of_int (after - before) /. float_of_int n

let ok r =
  let s = r.summary in
  s.injected = s.population - s.seed_count
  && s.stuck = 0 && s.violations = 0
  && s.epochs < r.config.Scale.max_epochs

(* ---- JSON ---- *)

let config_json (c : Scale.config) =
  Json.Obj
    [
      ("b", Json.Int c.params.b);
      ("d", Json.Int c.params.d);
      ("n", Json.Int c.n);
      ("seeds", Json.Int c.seeds);
      ("seed", Json.Int c.seed);
      ("shards", Json.Int c.shards);
      ("inject_per_epoch", Json.Int c.inject_per_epoch);
      ("max_epochs", Json.Int c.max_epochs);
    ]

let payload_json r =
  let s = r.summary in
  Json.Obj
    [
      ("config", config_json r.config);
      ("epochs", Json.Int s.epochs);
      ("injected", Json.Int s.injected);
      ("events", Json.Int s.events);
      ( "kind_counts",
        Json.Obj (List.map (fun (k, c) -> (k, Json.Int c)) s.kind_counts) );
      ("cross_batches", Json.Int s.cross_batches);
      ("cross_bytes", Json.Int s.cross_bytes);
      ("redirects", Json.Int s.redirects);
      ("deferrals", Json.Int s.deferrals);
      ("stuck", Json.Int s.stuck);
      ("stabilize_fills", Json.Int s.stabilize_fills);
      ("violations", Json.Int s.violations);
      ("store_words", Json.Int s.store_words);
      ("bytes_per_node", Json.Float (bytes_per_node s));
      ( "shard_events",
        Json.List (Array.to_list (Array.map (fun e -> Json.Int e) s.shard_events)) );
    ]

let host_json r =
  Json.Obj
    [
      ("jobs", Json.Int r.jobs);
      ("wall_s", Json.Float r.wall_s);
      ("events_per_s", Json.Float (events_per_s r));
      ("top_heap_words", Json.Int r.top_heap_words);
    ]

let run_json r = Json.Obj [ ("payload", payload_json r); ("host", host_json r) ]

let bench_json ?control_bytes_per_node runs =
  Json.Obj
    ([
       ("schema", Json.String "ntcu-bench-scale/1");
       ("runs", Json.List (List.map run_json runs));
     ]
    @
    match control_bytes_per_node with
    | None -> []
    | Some c ->
      [ ("control", Json.Obj [ ("record_bytes_per_node", Json.Float c) ]) ])

(* ---- plain text ---- *)

let shard_imbalance (s : Scale.summary) =
  let n = Array.length s.shard_events in
  if n = 0 || s.events = 0 then 1.
  else
    let mx = Array.fold_left max 0 s.shard_events in
    let mean = float_of_int s.events /. float_of_int n in
    if mean > 0. then float_of_int mx /. mean else 1.

let pp_run ppf r =
  let s = r.summary in
  Fmt.pf ppf
    "@[<v>scale run: n=%d seeds=%d shards=%d jobs=%d@,\
     epochs %d, events %d (%.0f/s), cross %d batches / %d bytes@,\
     redirects %d, deferrals %d, stuck %d, stabilize fills %d, violations %d@,\
     arena %.1f bytes/node (%d words), shard imbalance %.2fx, wall %.2fs@]"
    s.population s.seed_count s.shard_count r.jobs s.epochs s.events (events_per_s r)
    s.cross_batches s.cross_bytes s.redirects s.deferrals s.stuck s.stabilize_fills
    s.violations (bytes_per_node s) s.store_words (shard_imbalance s) r.wall_s
