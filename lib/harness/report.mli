(** Paper-style rendering of experiment results. *)

val pp_join_run : Experiment.join_run Fmt.t
(** One-paragraph summary: size, liveness, consistency, message stats. *)

val pp_fault_run : Experiment.fault_run Fmt.t
(** {!pp_join_run} plus crash/transport/online-repair counters. *)

val pp_fig15a_curve :
  label:string -> (int * float) list Fmt.t
(** A Figure 15(a) data series, one "[n] [bound]" row per point. *)

val pp_cdf : label:string -> (int * float) list Fmt.t
(** A Figure 15(b) CDF series, one "[J] [fraction]" row per point. *)

val pp_avg_vs_bound :
  (string * float * float * float) list Fmt.t
(** Rows of (setup label, measured average, Theorem-5 bound, paper's measured
    average) — the Section 5.2 in-text comparison. *)

val table : header:string list -> string list list Fmt.t
(** Aligned plain-text table. *)
