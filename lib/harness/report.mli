(** Paper-style rendering of experiment results. *)

val pp_join_run : Experiment.join_run Fmt.t
(** One-paragraph summary: size, liveness, consistency, message stats. *)

val pp_fault_run : Experiment.fault_run Fmt.t
(** {!pp_join_run} plus crash/transport/online-repair counters. *)

val pp_fig15a_curve :
  label:string -> (int * float) list Fmt.t
(** A Figure 15(a) data series, one "[n] [bound]" row per point. *)

val pp_cdf : label:string -> (int * float) list Fmt.t
(** A Figure 15(b) CDF series, one "[J] [fraction]" row per point. *)

val pp_avg_vs_bound :
  (string * float * float * float) list Fmt.t
(** Rows of (setup label, measured average, Theorem-5 bound, paper's measured
    average) — the Section 5.2 in-text comparison. *)

val table : header:string list -> string list list Fmt.t
(** Aligned plain-text table. *)

(** Minimal JSON emitter for machine-readable bench artifacts
    ([BENCH_perf.json] and friends). Emission only — the repo never parses
    JSON — so a hand-rolled printer keeps the dependency set unchanged.
    Floats are rendered with [%.17g] (lossless round-trip); NaN and
    infinities become [null]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val to_file : string -> t -> unit
end
