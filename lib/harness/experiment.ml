module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Stats = Ntcu_core.Stats
module Rng = Ntcu_std.Rng
module Engine = Ntcu_sim.Engine

type join_run = {
  net : Network.t;
  seeds : Id.t list;
  joiners : Id.t list;
  join_noti : int array;
  cp_wait : int array;
  consistent : bool;
  violations : Ntcu_table.Check.violation list Lazy.t;
  all_in_system : bool;
  quiescent : bool;
  events : int;
  elapsed_cpu : float;
}

let consistent run = run.consistent

type claim = Strict | Best_effort

(* Strict is the paper's regime (assumptions (i)-(iv) hold): liveness,
   quiescence and Def-3.8 consistency are all guaranteed, so all three are
   claimed. Best_effort is the fault/churn regime: crash-over-join repair is
   explicitly best-effort (a crashed node's in-flight state can leave a
   residual hole no survivor can fill), so consistency is reported but not
   claimed — e.g. `ntcu fault -n 24 -m 10 -b 4 -d 6 --seed 196 --crash 0.05`
   converges live and quiescent with exactly one such hole. Liveness and
   quiescence stay claimed: the reliability layer defends them even under
   loss and crashes. *)
let ok ?(claim = Strict) run =
  run.all_in_system && run.quiescent
  && match claim with Strict -> run.consistent | Best_effort -> true

let finish ~t0 net seeds joiners =
  let stats_of id = Node.stats (Network.node_exn net id) in
  {
    net;
    seeds;
    joiners;
    join_noti = Array.of_list (List.map (fun id -> Stats.join_noti_sent (stats_of id)) joiners);
    cp_wait =
      Array.of_list (List.map (fun id -> Stats.copy_and_wait_sent (stats_of id)) joiners);
    (* The eval path only needs yes/no, so probe with [~limit:1] (first
       violation aborts the scan); the full list is recomputed lazily by the
       rare consumer that reports violation details. *)
    consistent = List.is_empty (Network.check_consistent ~limit:1 net);
    violations = lazy (Network.check_consistent net);
    all_in_system = Network.all_in_system net;
    quiescent = Network.is_quiescent net;
    events = Network.messages_delivered net;
    elapsed_cpu = Sys.time () -. t0;
  }

let default_latency seed = Ntcu_sim.Latency.uniform ~seed ~lo:1. ~hi:100.

let make_population p ~seed ~n ~m ~suffix =
  let rng = Rng.create seed in
  let seeds = Workload.distinct_ids rng p ~n in
  let joiners =
    Workload.distinct_ids ~suffix ~avoid:(Id.Set.of_list seeds) rng p ~n:m
  in
  (rng, seeds, joiners)

let concurrent_joins ?latency ?size_mode ?(suffix = [||]) ?(stagger = 0.) p ~seed ~n ~m () =
  let t0 = Sys.time () in
  let rng, seeds, joiners = make_population p ~seed ~n ~m ~suffix in
  let latency = match latency with Some l -> l | None -> default_latency (seed + 1) in
  let net = Network.create ~latency ?size_mode p in
  Network.seed_consistent net ~seed:(seed + 2) seeds;
  let gateways = Array.of_list seeds in
  Network.start_joins net
    (List.mapi
       (fun i id -> (float_of_int i *. stagger, id, Rng.pick rng gateways))
       joiners);
  Network.run net;
  finish ~t0 net seeds joiners

let sequential_joins ?latency ?size_mode p ~seed ~n ~m () =
  let t0 = Sys.time () in
  let rng, seeds, joiners = make_population p ~seed ~n ~m ~suffix:[||] in
  let latency = match latency with Some l -> l | None -> default_latency (seed + 1) in
  let net = Network.create ~latency ?size_mode p in
  Network.seed_consistent net ~seed:(seed + 2) seeds;
  let gateways = Array.of_list seeds in
  List.iter
    (fun id ->
      Network.start_join net ~id ~gateway:(Rng.pick rng gateways) ();
      Network.run net)
    joiners;
  finish ~t0 net seeds joiners

let network_init ?latency p ~seed ~n =
  if n < 1 then invalid_arg "Experiment.network_init: n must be >= 1";
  let t0 = Sys.time () in
  let rng = Rng.create seed in
  let ids = Workload.distinct_ids rng p ~n in
  let latency = match latency with Some l -> l | None -> default_latency (seed + 1) in
  let net = Network.create ~latency p in
  let first, joiners = match ids with f :: r -> (f, r) | [] -> assert false in
  Network.add_seed_node net first;
  (* Each joiner is given a random already-present node, as the paper's
     network-initialization section prescribes ("each is given x to begin
     with" in the simplest form; any known member works). *)
  let present = ref [| first |] in
  List.iter
    (fun id ->
      Network.start_join net ~id ~gateway:(Rng.pick rng !present) ();
      Network.run net;
      present := Array.append !present [| id |])
    joiners;
  finish ~t0 net [ first ] joiners

type fig15b_setup = { d : int; n : int; m : int }

let paper_setups =
  [
    { d = 8; n = 3096; m = 1000 };
    { d = 40; n = 3096; m = 1000 };
    { d = 8; n = 7192; m = 1000 };
    { d = 40; n = 7192; m = 1000 };
  ]

let fig15b_instrumented ?(routers = Ntcu_topology.Transit_stub.scaled_config) ?size_mode
    ?(record_trace = false) ~seed setup =
  let t0 = Sys.time () in
  let p = Params.make ~b:16 ~d:setup.d in
  let rng, seeds, joiners = make_population p ~seed ~n:setup.n ~m:setup.m ~suffix:[||] in
  let topo = Ntcu_topology.Transit_stub.generate ~seed:(seed + 10) routers in
  let hosts =
    Ntcu_topology.Endhosts.attach ~seed:(seed + 11) topo ~n:(setup.n + setup.m)
  in
  let latency = Ntcu_topology.Endhosts.latency ~seed:(seed + 12) hosts in
  let net = Network.create ~latency ?size_mode ~record_trace p in
  (* Hosts are indexed in registration order: seeds first, then joiners. *)
  Network.seed_consistent net ~seed:(seed + 2) seeds;
  let gateways = Array.of_list seeds in
  Network.start_joins net (List.map (fun id -> (0., id, Rng.pick rng gateways)) joiners);
  Network.run net;
  (finish ~t0 net seeds joiners, hosts)

let fig15b ?routers ?size_mode ?record_trace ~seed setup =
  fst (fig15b_instrumented ?routers ?size_mode ?record_trace ~seed setup)

let cdf_points counts =
  let sorted = Array.copy counts in
  Array.sort compare sorted;
  let total = float_of_int (Array.length sorted) in
  let points = ref [] in
  Array.iteri
    (fun i v ->
      if i = Array.length sorted - 1 || sorted.(i + 1) <> v then
        points := (v, float_of_int (i + 1) /. total) :: !points)
    sorted;
  List.rev !points

let fig15a_series ~b ~d ~m ~ns =
  let p = Params.make ~b ~d in
  List.map (fun n -> (n, Ntcu_analysis.Join_cost.theorem5_bound p ~n ~m)) ns

(* Eventual failure detection. Suspicion is traffic-driven, so a victim that
   no protocol message happened to target after the crash is never noticed
   and its pre-crash table entries survive as dangling references. Stand in
   for the periodic liveness probes a deployment would run: any crashed node
   still referenced by a live table gets one probe through the reliable
   transport, whose retry budget then drives the normal suspicion -> scrub ->
   online-repair path. Iterate because a repair refill can itself name a
   not-yet-detected victim. *)
let detect_failures net ~crashed =
  let module Table = Ntcu_table.Table in
  let probe_round () =
    List.fold_left
      (fun progress victim ->
        if Network.is_suspected net victim then progress
        else begin
          let reference =
            List.fold_left
              (fun acc holder ->
                if Option.is_some acc || Id.equal holder victim then acc
                else
                  let table = Node.table (Network.node_exn net holder) in
                  Table.fold table ~init:None ~f:(fun acc ~level ~digit n state ->
                      if Option.is_none acc && Id.equal n victim then
                        Some (holder, level, digit, state)
                      else acc))
              None (Network.live_ids net)
          in
          match reference with
          | None -> progress (* unreferenced: nothing dangles, nothing to do *)
          | Some (holder, level, digit, state) ->
            Network.inject net ~src:holder
              [
                {
                  Node.dst = victim;
                  msg = Ntcu_core.Message.Rv_ngh_noti { level; digit; recorded = state };
                };
              ];
            true
        end)
      false crashed
  in
  while probe_round () do
    Network.run net
  done

type fault_run = {
  run : join_run;
  crashed : Id.t list;
  stuck : int;
  retransmissions : int;
  timeouts : int;
  failovers : int;
  duplicates : int;
  lost : int;
  acks_lost : int;
  repair : Ntcu_extensions.Online_repair.report option;
}

let fault_injection ?latency ?size_mode ?(record_trace = false) ?(reliable = true)
    ?reliability ?(loss = 0.02) ?(crash_fraction = 0.) ?(crash_at = 150.) p ~seed ~n ~m ()
    =
  let t0 = Sys.time () in
  let rng, seeds, joiners = make_population p ~seed ~n ~m ~suffix:[||] in
  let latency = match latency with Some l -> l | None -> default_latency (seed + 1) in
  let reliability =
    if not reliable then None
    else
      Some
        (match reliability with
        | Some r -> r
        | None ->
          (* The default latency draws up to 100 ms per hop, so the initial
             timeout must clear a full round trip. *)
          { Network.default_reliability with rto = 250.; seed = seed + 4 })
  in
  let net =
    Network.create ~latency ?size_mode ~record_trace ~loss:(loss, seed + 3) ?reliability p
  in
  let repair =
    if reliable then Some (Ntcu_extensions.Online_repair.attach net) else None
  in
  Network.seed_consistent net ~seed:(seed + 2) seeds;
  let gateways = Array.of_list seeds in
  let used_gateways = ref Id.Set.empty in
  List.iter
    (fun id ->
      let gw = Rng.pick rng gateways in
      used_gateways := Id.Set.add gw !used_gateways;
      Network.start_join net ~at:0. ~id ~gateway:gw ())
    joiners;
  (* Crash victims are drawn from the seeds no joiner uses as gateway: a dead
     gateway before the first reply leaves the joiner with no live contact at
     all, which even a perfect protocol cannot survive (assumption (ii)). *)
  let crashed =
    if crash_fraction <= 0. then []
    else begin
      let candidates =
        Array.of_list (List.filter (fun id -> not (Id.Set.mem id !used_gateways)) seeds)
      in
      let crash_rng = Rng.create (seed + 5) in
      Rng.shuffle crash_rng candidates;
      let count = max 1 (int_of_float (crash_fraction *. float_of_int n)) in
      let count = min count (Array.length candidates) in
      let victims = Array.to_list (Array.sub candidates 0 count) in
      Engine.schedule_at (Network.engine net) ~time:crash_at (fun () ->
          List.iter (fun id -> Network.fail net id) victims);
      victims
    end
  in
  Network.run net;
  if reliable then detect_failures net ~crashed;
  let run = finish ~t0 net seeds joiners in
  let g = Network.global_stats net in
  {
    run;
    crashed;
    stuck = List.length (Network.stuck_joiners net);
    retransmissions = Stats.retransmissions g;
    timeouts = Stats.timeouts_fired g;
    failovers = Stats.failovers g;
    duplicates = Stats.duplicates_suppressed g;
    lost = Network.messages_lost net;
    acks_lost = Network.acks_lost net;
    repair = Option.map Ntcu_extensions.Online_repair.report repair;
  }

(* The canonical residual-hole run. Seed 196 at these sizes is the smallest
   known workload where crash-over-join repair converges live and quiescent
   yet leaves exactly one Def-3.8 hole (no live node carries the needed
   suffix), which is why the fault/churn exit status gates on Best_effort
   rather than Strict. Tests, docs and the CLI comment all reference this one
   fixture instead of restating the magic numbers. *)
let residual_hole () =
  fault_injection ~loss:0.02 ~crash_fraction:0.05
    (Ntcu_id.Params.make ~b:4 ~d:6)
    ~seed:196 ~n:24 ~m:10 ()

type baseline_result = {
  base_consistent : bool;
  base_violations : int;
  base_done : bool;
  peak_pending : int;
  pending_slots : int;
  base_messages : int;
}

let baseline_run ?latency p ~seed ~n ~m ~concurrent =
  let module B = Ntcu_baseline.Multicast_join in
  let rng, seeds, joiners = make_population p ~seed ~n ~m ~suffix:[||] in
  let latency = match latency with Some l -> l | None -> default_latency (seed + 1) in
  let t = B.create ~latency p in
  B.seed_consistent t ~seed:(seed + 2) seeds;
  let gateways = Array.of_list seeds in
  List.iteri
    (fun i id ->
      let at = if concurrent then 0. else float_of_int i *. 1e6 in
      B.start_join t ~at ~id ~gateway:(Rng.pick rng gateways) ())
    joiners;
  B.run t;
  let violations = B.check_consistent t in
  let counts = B.message_counts t in
  {
    base_consistent = List.is_empty violations;
    base_violations = List.length violations;
    base_done = B.all_done t;
    peak_pending = B.peak_pending_at_existing t;
    pending_slots = B.total_pending_slots t;
    base_messages = counts.copies + counts.announces + counts.acks + counts.infos;
  }
