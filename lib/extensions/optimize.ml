module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Rng = Ntcu_std.Rng

(* Candidate substitutes for x's (level, digit)-entry: nodes with the entry's
   required suffix found in the tables of x's current neighbors (one-hop
   local sampling, as in Castro et al.). *)
let candidates net table ~level ~digit =
  let suffix = Table.required_suffix table ~level ~digit in
  let owner = Table.owner table in
  let found = ref Id.Set.empty in
  let scan_table other_table =
    Table.iter other_table (fun ~level:_ ~digit:_ node _ ->
        if (not (Id.equal node owner)) && Id.has_suffix node suffix then
          found := Id.Set.add node !found)
  in
  Id.Set.iter
    (fun neighbor ->
      if not (Id.equal neighbor owner) then begin
        match Network.node net neighbor with
        | Some n -> scan_table (Node.table n)
        | None -> ()
      end)
    (Table.known_nodes table);
  !found

let pass net ~dist =
  if not (Network.is_quiescent net) then invalid_arg "Optimize.pass: network not quiescent";
  let improved = ref 0 in
  List.iter
    (fun node ->
      let table = Node.table node in
      let owner = Node.id node in
      let p = Table.params table in
      for level = 0 to p.d - 1 do
        for digit = 0 to p.b - 1 do
          match Table.neighbor table ~level ~digit with
          | Some current when not (Id.equal current owner) ->
            let best = ref current in
            let best_dist = ref (dist owner current) in
            Id.Set.iter
              (fun cand ->
                if Network.mem net cand then begin
                  let cd = dist owner cand in
                  if cd < !best_dist then begin
                    best := cand;
                    best_dist := cd
                  end
                end)
              (candidates net table ~level ~digit);
            if not (Id.equal !best current) then begin
              Table.set table ~level ~digit !best S;
              (match Network.node net !best with
              | Some bnode -> Table.add_reverse (Node.table bnode) ~level ~digit owner
              | None -> ());
              incr improved
            end
          | Some _ | None -> ()
        done
      done)
    (Network.nodes net);
  !improved

let optimize ?(max_passes = 10) net ~dist =
  let total = ref 0 in
  let continue = ref true in
  let passes = ref 0 in
  while !continue && !passes < max_passes do
    let n = pass net ~dist in
    total := !total + n;
    incr passes;
    if n = 0 then continue := false
  done;
  !total

let average_route_stretch net ~dist ~seed ~samples =
  let rng = Rng.create seed in
  let ids = Array.of_list (Network.ids net) in
  if Array.length ids < 2 then invalid_arg "Optimize.average_route_stretch: too few nodes";
  let lookup id = Option.map Node.table (Network.node net id) in
  let total = ref 0. in
  let counted = ref 0 in
  let attempts = ref 0 in
  while !counted < samples && !attempts < 100 * samples do
    incr attempts;
    let a = Rng.pick rng ids and b = Rng.pick rng ids in
    if not (Id.equal a b) then begin
      let direct = dist a b in
      if direct > 0. then begin
        match Ntcu_routing.Route.route ~lookup ~src:a ~dst:b with
        | Ok path ->
          let cost = Ntcu_routing.Route.path_cost ~dist path in
          total := !total +. (cost /. direct);
          incr counted
        | Error _ -> ()
      end
    end
  done;
  if !counted = 0 then invalid_arg "Optimize.average_route_stretch: no measurable pairs";
  !total /. float_of_int !counted
