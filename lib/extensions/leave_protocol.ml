module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Engine = Ntcu_sim.Engine
module Latency = Ntcu_sim.Latency

type report = {
  departed : int;
  messages : int;
  installed : int;
  fallback_local : int;
  fallback_flood : int;
  emptied : int;
}

let pp_report ppf r =
  Fmt.pf ppf
    "%d departed with %d messages; repairs: %d installed, %d local fallback, %d flood \
     fallback, %d emptied"
    r.departed r.messages r.installed r.fallback_local r.fallback_flood r.emptied

type leaving_state = { mutable awaiting : int }

type t = {
  net : Network.t;
  latency : Latency.t;
  leaving : leaving_state Id.Tbl.t;
  mutable departed : int;
  mutable messages : int;
  mutable installed : int;
  mutable fallback_local : int;
  mutable fallback_flood : int;
  mutable emptied : int;
}

let create ?latency net =
  let latency =
    match latency with
    | Some l -> l
    | None -> Latency.uniform ~seed:0 ~lo:1. ~hi:10.
  in
  {
    net;
    latency;
    leaving = Id.Tbl.create 16;
    departed = 0;
    messages = 0;
    installed = 0;
    fallback_local = 0;
    fallback_flood = 0;
    emptied = 0;
  }

let report t =
  {
    departed = t.departed;
    messages = t.messages;
    installed = t.installed;
    fallback_local = t.fallback_local;
    fallback_flood = t.fallback_flood;
    emptied = t.emptied;
  }

let engine t = Network.engine t.net

let send t f =
  t.messages <- t.messages + 1;
  let delay = Latency.sample t.latency ~src:0 ~dst:0 in
  Engine.schedule (engine t) ~delay:(if delay <= 0. then 1e-6 else delay) f

let usable t id =
  Network.mem t.net id
  && (not (Network.is_failed t.net id))
  && not (Id.Tbl.mem t.leaving id)

(* Deepest-shared replacement for entries that require a node sharing
   [>= level + 1] digits with the leaver, skipping unusable candidates. *)
let replacement_vector t table ~owner =
  let p = Table.params table in
  Array.init p.d (fun level ->
      let found = ref None in
      (try
         for l = p.d - 1 downto level + 1 do
           for digit = 0 to p.b - 1 do
             match Table.neighbor table ~level:l ~digit with
             | Some y when (not (Id.equal y owner)) && usable t y ->
               found := Some y;
               raise Exit
             | Some _ | None -> ()
           done
         done
       with Exit -> ());
      !found)

let depart t x =
  (match Network.node t.net x with
  | Some _ -> Network.remove t.net x
  | None -> ());
  Id.Tbl.remove t.leaving x;
  t.departed <- t.departed + 1

(* v repairs its entries that hold the leaver x, preferring x's replacement
   vector, falling back to its own search. *)
let repair_at t ~v ~leaver ~replacements =
  match Network.node t.net v with
  | None -> ()
  | Some vnode ->
    let tv = Node.table vnode in
    let p = Table.params tv in
    for level = 0 to p.d - 1 do
      for digit = 0 to p.b - 1 do
        match Table.neighbor tv ~level ~digit with
        | Some occupant when Id.equal occupant leaver ->
          let install r =
            Table.set tv ~level ~digit r S;
            match Network.node t.net r with
            | Some rnode -> Table.add_reverse (Node.table rnode) ~level ~digit v
            | None -> ()
          in
          let from_vector =
            match replacements.(level) with
            | Some r when usable t r -> Some r
            | Some _ | None -> None
          in
          (match from_vector with
          | Some r ->
            t.installed <- t.installed + 1;
            install r
          | None -> begin
            Table.clear tv ~level ~digit;
            let suffix = Table.required_suffix tv ~level ~digit in
            (* Leaving nodes (including the leaver, still registered until
               its acknowledgements arrive) are not valid candidates. *)
            let exclude cand = Id.Tbl.mem t.leaving cand in
            match Repair.find_live ~exclude t.net ~owner:tv ~suffix with
            | Repair.Found_local { candidate; _ } ->
              t.fallback_local <- t.fallback_local + 1;
              install candidate
            | Repair.Found_flood { candidate; _ } ->
              t.fallback_flood <- t.fallback_flood + 1;
              install candidate
            | Repair.Not_found _ -> t.emptied <- t.emptied + 1
          end)
        | Some _ | None -> ()
      done
    done;
    Table.remove_reverse tv leaver;
    Table.remove_backup tv leaver

let rec fire_leave t x =
  match Network.node t.net x with
  | None -> ()
  | Some node ->
    if
      Network.is_failed t.net x
      || not (Node.status_equal (Node.status node) Node.In_system)
    then ()
    else if Id.Tbl.mem t.leaving x then ()
    else begin
      let table = Node.table node in
      let state = { awaiting = 0 } in
      Id.Tbl.replace t.leaving x state;
      let replacements = replacement_vector t table ~owner:x in
      let targets =
        Id.Set.filter
          (fun v ->
            (not (Id.equal v x))
            && Network.mem t.net v
            && not (Network.is_failed t.net v))
          (Table.all_reverse table)
      in
      state.awaiting <- Id.Set.cardinal targets;
      if state.awaiting = 0 then depart t x
      else
        Id.Set.iter
          (fun v ->
            send t (fun () ->
                (* LeaveMsg delivery at v. Even if v is itself leaving it
                   must repair and acknowledge: its table may be copied by
                   others until it departs. *)
                repair_at t ~v ~leaver:x ~replacements;
                send t (fun () -> ack_leave t x)))
          targets
    end

and ack_leave t x =
  match Id.Tbl.find_opt t.leaving x with
  | None -> ()
  | Some state ->
    state.awaiting <- state.awaiting - 1;
    if state.awaiting <= 0 then depart t x

let request_leave t ?at x =
  let time = match at with Some time -> time | None -> Engine.now (engine t) in
  Engine.schedule_at (engine t) ~time (fun () -> fire_leave t x)

let run t = Network.run t.net
