(** Replacement-candidate search for table repair.

    When an entry's occupant is gone (failed, or departed in a race), the
    entry's owner must find another live node carrying the entry's required
    suffix. The search escalates:

    + {b one-hop}: scan the tables of the owner's live neighbors and reverse
      neighbors (pure local information);
    + {b two-hop}: extend the scan to those nodes' neighbors;
    + {b suffix flood}: query the whole live membership — the expensive
      last resort a deployment would implement as a scoped multicast within
      the suffix set, modeled here by a global scan and counted separately.

    Every consulted table is counted so experiments can report the cost of
    each escalation tier. *)

type outcome =
  | Found_local of { candidate : Ntcu_id.Id.t; tables_consulted : int; hops : int }
  | Found_flood of { candidate : Ntcu_id.Id.t; tables_consulted : int }
  | Not_found of { tables_consulted : int }
      (** No live node carries the suffix: the entry must stay empty. *)

val find_live :
  ?exclude:(Ntcu_id.Id.t -> bool) ->
  Ntcu_core.Network.t ->
  owner:Ntcu_table.Table.t ->
  suffix:int array ->
  outcome
(** Search for a live node (other than the owner, and not [exclude]d — e.g.
    nodes known to be leaving) whose ID ends with [suffix]. *)

val pp_outcome : outcome Fmt.t
