module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Engine = Ntcu_sim.Engine

type report = {
  suspicions : int;
  scrubbed : int;
  promoted : int;
  refilled_local : int;
  refilled_flood : int;
  emptied : int;
  tables_consulted : int;
}

let pp_report ppf r =
  Fmt.pf ppf
    "%d suspicions: %d entries scrubbed; refills: %d backup, %d local, %d flood, %d left \
     empty; %d tables consulted"
    r.suspicions r.scrubbed r.promoted r.refilled_local r.refilled_flood r.emptied
    r.tables_consulted

type t = {
  net : Network.t;
  seen : unit Id.Tbl.t;
  mutable suspicions : int;
  mutable scrubbed : int;
  mutable promoted : int;
  mutable refilled_local : int;
  mutable refilled_flood : int;
  mutable emptied : int;
  mutable tables_consulted : int;
}

let report t =
  {
    suspicions = t.suspicions;
    scrubbed = t.scrubbed;
    promoted = t.promoted;
    refilled_local = t.refilled_local;
    refilled_flood = t.refilled_flood;
    emptied = t.emptied;
    tables_consulted = t.tables_consulted;
  }

(* Positions in [node]'s table occupied by [suspect]. *)
let holes_of node suspect =
  let table = Node.table node in
  Table.fold table ~init:[] ~f:(fun acc ~level ~digit n _ ->
      if Id.equal n suspect then (level, digit) :: acc else acc)

let on_suspicion t ~reporter:_ ~suspect =
  if not (Id.Tbl.mem t.seen suspect) then begin
    Id.Tbl.replace t.seen suspect ();
    t.suspicions <- t.suspicions + 1;
    let now = Engine.now (Network.engine t.net) in
    let survivors =
      List.filter (fun n -> not (Id.equal (Node.id n) suspect)) (Network.nodes t.net)
    in
    (* Phase 1: every live node learns of the suspicion — it scrubs the
       suspect (promoting backups into the holes), and any joiner whose
       progress depended on it fails over. The modeled dissemination stands
       in for a gossip/broadcast a deployment would use; the failover
       messages themselves go through the network as usual. *)
    let holes =
      List.concat_map
        (fun node ->
          let holes = holes_of node suspect in
          t.scrubbed <- t.scrubbed + List.length holes;
          let acts = Node.on_suspect node ~now ~peer:suspect ~failed:None in
          Network.inject t.net ~src:(Node.id node) acts;
          List.map (fun pos -> (node, pos)) holes)
        survivors
    in
    (* Phase 2: refill holes the backups could not cover, escalating through
       the candidate-search tiers. The reverse registration rides on an
       injected RvNghNotiMsg, so a refill with a node that is itself dead
       self-heals via a fresh suspicion cycle. *)
    let exclude id = Network.is_suspected t.net id in
    List.iter
      (fun (node, (level, digit)) ->
        let table = Node.table node in
        match Table.neighbor table ~level ~digit with
        | Some _ -> t.promoted <- t.promoted + 1
        | None -> (
          let suffix = Table.required_suffix table ~level ~digit in
          let fill candidate =
            Table.set table ~level ~digit candidate S;
            Network.inject t.net ~src:(Node.id node)
              [
                {
                  Node.dst = candidate;
                  msg = Ntcu_core.Message.Rv_ngh_noti { level; digit; recorded = S };
                };
              ]
          in
          match Repair.find_live ~exclude t.net ~owner:table ~suffix with
          | Repair.Found_local { candidate; tables_consulted = c; _ } ->
            t.refilled_local <- t.refilled_local + 1;
            t.tables_consulted <- t.tables_consulted + c;
            fill candidate
          | Repair.Found_flood { candidate; tables_consulted = c } ->
            t.refilled_flood <- t.refilled_flood + 1;
            t.tables_consulted <- t.tables_consulted + c;
            fill candidate
          | Repair.Not_found { tables_consulted = c } ->
            t.emptied <- t.emptied + 1;
            t.tables_consulted <- t.tables_consulted + c))
      holes
  end

let attach net =
  let t =
    {
      net;
      seen = Id.Tbl.create 16;
      suspicions = 0;
      scrubbed = 0;
      promoted = 0;
      refilled_local = 0;
      refilled_flood = 0;
      emptied = 0;
      tables_consulted = 0;
    }
  in
  Network.set_suspicion_handler net (fun ~reporter ~suspect ->
      on_suspicion t ~reporter ~suspect);
  t
