module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node

type report = {
  survivors : int;
  probes : int;
  scrubbed : int;
  repaired_backup : int;
  repaired_local : int;
  repaired_flood : int;
  emptied : int;
  tables_consulted : int;
}

let pp_report ppf r =
  Fmt.pf ppf
    "survivors %d: %d probes, %d entries scrubbed; refills: %d backup, %d local, %d \
     flood, %d left empty; %d tables consulted"
    r.survivors r.probes r.scrubbed r.repaired_backup r.repaired_local r.repaired_flood
    r.emptied r.tables_consulted

let dead net id = (not (Network.mem net id)) || Network.is_failed net id

let repair net =
  if not (Network.is_quiescent net) then invalid_arg "Recovery.repair: network not quiescent";
  let survivors = Network.nodes net in
  let probes = ref 0 in
  let scrubbed = ref 0 in
  let repaired_backup = ref 0 in
  let repaired_local = ref 0 in
  let repaired_flood = ref 0 in
  let emptied = ref 0 in
  let tables_consulted = ref 0 in
  (* Phase 1: probe and scrub. Collect the holes before refilling so that the
     refill phase sees fully-scrubbed tables everywhere (a refill must never
     hand out a dead candidate). *)
  let holes = ref [] in
  List.iter
    (fun node ->
      let table = Node.table node in
      let owner = Node.id node in
      let p = Table.params table in
      for level = 0 to p.d - 1 do
        for digit = 0 to p.b - 1 do
          match Table.neighbor table ~level ~digit with
          | Some occupant when not (Id.equal occupant owner) ->
            incr probes;
            if dead net occupant then begin
              incr scrubbed;
              Table.clear table ~level ~digit;
              holes := (node, level, digit) :: !holes
            end
          | Some _ | None -> ()
        done
      done;
      (* Scrub reverse sets and backup lists of dead members. *)
      Id.Set.iter
        (fun rv -> if dead net rv then Table.remove_reverse table rv)
        (Table.all_reverse table);
      Table.filter_backups table ~f:(fun b -> not (dead net b)))
    survivors;
  (* Phase 2: refill each hole — promote a (scrubbed, hence live) backup if
     one exists, else escalate through the candidate search. *)
  List.iter
    (fun (node, level, digit) ->
      let table = Node.table node in
      match Table.promote_backup table ~level ~digit with
      | Some promoted ->
        incr repaired_backup;
        (match Network.node net promoted with
        | Some pnode -> Table.add_reverse (Node.table pnode) ~level ~digit (Node.id node)
        | None -> ())
      | None ->
      let suffix = Table.required_suffix table ~level ~digit in
      match Repair.find_live net ~owner:table ~suffix with
      | Repair.Found_local { candidate; tables_consulted = c; _ } ->
        incr repaired_local;
        tables_consulted := !tables_consulted + c;
        Table.set table ~level ~digit candidate S;
        (match Network.node net candidate with
        | Some cnode -> Table.add_reverse (Node.table cnode) ~level ~digit (Node.id node)
        | None -> ())
      | Repair.Found_flood { candidate; tables_consulted = c } ->
        incr repaired_flood;
        tables_consulted := !tables_consulted + c;
        Table.set table ~level ~digit candidate S;
        (match Network.node net candidate with
        | Some cnode -> Table.add_reverse (Node.table cnode) ~level ~digit (Node.id node)
        | None -> ())
      | Repair.Not_found { tables_consulted = c } ->
        incr emptied;
        tables_consulted := !tables_consulted + c)
    !holes;
  {
    survivors = List.length survivors;
    probes = !probes;
    scrubbed = !scrubbed;
    repaired_backup = !repaired_backup;
    repaired_local = !repaired_local;
    repaired_flood = !repaired_flood;
    emptied = !emptied;
    tables_consulted = !tables_consulted;
  }

let fail_random net ~seed ~fraction =
  if fraction < 0. || fraction >= 1. then invalid_arg "Recovery.fail_random: bad fraction";
  let rng = Ntcu_std.Rng.create seed in
  let live = Array.of_list (Network.live_ids net) in
  Ntcu_std.Rng.shuffle rng live;
  let count = int_of_float (fraction *. float_of_int (Array.length live)) in
  let victims = Array.to_list (Array.sub live 0 count) in
  List.iter (fun id -> Network.fail net id) victims;
  victims
