(** Consistency-preserving node departure.

    The paper defers leave/failure-recovery protocols to future work but
    observes that the C-set foundation supports designing them. This module
    implements the natural voluntary-leave protocol the paper's structure
    suggests:

    a leaving node [x] serves a {e replacement} to every node that stores it.
    If [v] stores [x] at its [(i, x\[i\])]-entry, any node sharing at least
    [i + 1] digits with [x] is a valid substitute, and by consistency of [x]'s
    own table such a node exists iff [x] has a non-self neighbor at some level
    [>= i + 1]. So [x] can always either hand over a correct replacement or
    certify that the entry must become empty — no search is needed. Reverse
    neighbor sets (maintained by the join protocol's RvNghNotiMsg traffic)
    identify exactly the nodes to repair.

    Executed atomically between protocol rounds (the network must be
    quiescent; concurrent leave/join interleavings are future work here too,
    as in the paper). The returned count models the LeaveMsg notifications
    [x] would send. *)

val leave : Ntcu_core.Network.t -> Ntcu_id.Id.t -> (int, string) result
(** [leave net x] repairs every table that references [x], removes [x] from
    the network, and returns the number of repaired nodes. Errors if [x] is
    unknown, still joining, or the network is not quiescent. *)

val leave_many : Ntcu_core.Network.t -> Ntcu_id.Id.t list -> (int, string) result
(** Sequential leaves; stops at the first error. *)
