(** Online, per-suspicion table repair.

    {!Recovery.repair} is an offline pass: it requires a quiescent network
    and fixes everything at once. This module performs the same scrub/refill
    work {e while the simulation runs}, driven by the reliable transport's
    failure suspicion ({!Ntcu_core.Network.set_suspicion_handler}): the first
    time any sender exhausts its retry budget against a peer, the suspicion
    is disseminated to every live node — each scrubs the suspect and fails
    over via {!Ntcu_core.Node.on_suspect} — and entries the suspect occupied
    are refilled through backup promotion or the {!Repair.find_live} tiers.

    Refills register reverse neighbors with an injected [RvNghNotiMsg]
    rather than by direct table writes, so refilling with a node that is
    itself dead (but not yet suspected) self-heals through a fresh suspicion
    cycle. *)

type t

val attach : Ntcu_core.Network.t -> t
(** Register the repair hook on the network's suspicion handler. The network
    should have been created with [~reliability]; without it no suspicion
    ever fires and the hook stays dormant. *)

type report = {
  suspicions : int;  (** distinct suspects processed *)
  scrubbed : int;  (** table entries that held a suspect *)
  promoted : int;  (** holes covered by backup promotion *)
  refilled_local : int;  (** holes refilled from 1–2-hop candidate search *)
  refilled_flood : int;  (** holes refilled by the suffix-flood last resort *)
  emptied : int;  (** holes no live node could fill *)
  tables_consulted : int;  (** candidate-search cost *)
}

val report : t -> report
val pp_report : report Fmt.t
