(** Message-passing leave protocol with support for concurrent leaves.

    Unlike {!Leave} (which executes one departure atomically between protocol
    rounds), this module runs departures through the discrete-event engine:
    the leaving node sends a LeaveMsg carrying a per-level replacement vector
    to each of its reverse neighbors, waits for their acknowledgements, and
    only then departs. Multiple nodes may be leaving at once.

    Races are resolved by two rules, both enforced at single events of the
    simulation (modeling a confirmation handshake with the candidate):

    + a leaver never lists a node that is itself leaving (or dead) as a
      replacement;
    + a repairing node installs a received replacement only if it is still
      present and not leaving; otherwise it falls back to
      {!Repair.find_live}.

    Together with reverse-neighbor registration at install time, this
    guarantees that when a replacement later leaves, the nodes now pointing
    at it are among its reverse neighbors and get repaired in turn — so any
    set of concurrent leaves ends in a consistent surviving network. *)

type report = {
  departed : int;
  messages : int;  (** LeaveMsg + acknowledgements. *)
  installed : int;  (** Entries repaired with the leaver's replacement. *)
  fallback_local : int;  (** Entries repaired via 1–2-hop search. *)
  fallback_flood : int;  (** Entries repaired via the suffix flood. *)
  emptied : int;  (** Entries with no live holder left. *)
}

val pp_report : report Fmt.t

type t

val create : ?latency:Ntcu_sim.Latency.t -> Ntcu_core.Network.t -> t
(** The latency model is sampled with abstract endpoints (use constant or
    uniform models here). Default: uniform 1–10 ms, seed 0. *)

val request_leave : t -> ?at:float -> Ntcu_id.Id.t -> unit
(** Schedule a departure. The node must exist and be [in_system] when the
    request fires (otherwise the request is dropped). *)

val run : t -> unit
(** Drive the engine to quiescence and return once all requested departures
    completed. *)

val report : t -> report
