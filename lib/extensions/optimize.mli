(** Neighbor-table proximity optimization.

    The paper deliberately relaxes PRR's optimal (nearest-neighbor) tables and
    defers optimization protocols to future work, pointing at Hildrum et al.
    and Castro et al. for techniques. This extension implements the standard
    local sampling pass those papers use: each node re-examines every filled
    entry, collects candidate substitutes with the entry's required suffix
    from its current neighbors' tables (local information only), and swaps in
    the closest candidate under the given distance function.

    Repeated passes converge towards nearer tables and reduce route stretch
    (property P2); they never break consistency, because a substitution keeps
    the required suffix by construction. *)

val pass :
  Ntcu_core.Network.t -> dist:(Ntcu_id.Id.t -> Ntcu_id.Id.t -> float) -> int
(** One optimization pass over every node; returns the number of entries
    improved. The network must be quiescent. *)

val optimize :
  ?max_passes:int ->
  Ntcu_core.Network.t ->
  dist:(Ntcu_id.Id.t -> Ntcu_id.Id.t -> float) ->
  int
(** Run passes until a fixpoint (or [max_passes], default 10); returns the
    total improvements. *)

val average_route_stretch :
  Ntcu_core.Network.t ->
  dist:(Ntcu_id.Id.t -> Ntcu_id.Id.t -> float) ->
  seed:int ->
  samples:int ->
  float
(** Mean stretch (routed distance / direct distance) over random node pairs;
    pairs at distance 0 are skipped. *)
