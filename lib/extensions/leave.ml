module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node

(* Replacement for entries requiring a node that shares [>= level + 1] digits
   with [x]: any non-self occupant of x's table at such a level. Scanning from
   the deepest level makes the replacement share as many digits as possible. *)
let replacement_for table ~owner ~level =
  let p = Table.params table in
  let found = ref None in
  (try
     for l = p.d - 1 downto level + 1 do
       for digit = 0 to p.b - 1 do
         match Table.neighbor table ~level:l ~digit with
         | Some y when not (Id.equal y owner) ->
           found := Some y;
           raise Exit
         | Some _ | None -> ()
       done
     done
   with Exit -> ());
  !found

let leave net x =
  match Network.node net x with
  | None -> Error (Fmt.str "leave: unknown node %a" Id.pp x)
  | Some node ->
    if not (Node.status_equal (Node.status node) Node.In_system) then
      Error (Fmt.str "leave: node %a is still joining" Id.pp x)
    else if not (Network.is_quiescent net) then Error "leave: network is not quiescent"
    else begin
      let tx = Node.table node in
      let p = Table.params tx in
      (* Level-indexed replacements, computed once. *)
      let replacements =
        Array.init p.d (fun level -> replacement_for tx ~owner:x ~level)
      in
      let repaired = ref 0 in
      let repair v =
        if not (Id.equal v x) then begin
          match Network.node net v with
          | None -> ()
          | Some vnode ->
            let tv = Node.table vnode in
            let touched = ref false in
            for level = 0 to p.d - 1 do
              for digit = 0 to p.b - 1 do
                match Table.neighbor tv ~level ~digit with
                | Some occupant when Id.equal occupant x -> begin
                  touched := true;
                  match replacements.(level) with
                  | Some r ->
                    Table.set tv ~level ~digit r S;
                    (* The replacement gains v as a reverse neighbor, as a
                       RvNghNotiMsg would record. *)
                    (match Network.node net r with
                    | Some rnode -> Table.add_reverse (Node.table rnode) ~level ~digit v
                    | None -> ())
                  | None -> Table.clear tv ~level ~digit
                end
                | Some _ | None -> ()
              done
            done;
            Table.remove_reverse tv x;
            Table.remove_backup tv x;
            if !touched then incr repaired
        end
      in
      (* Reverse neighbors are the nodes that store x; also sweep the nodes x
         stores, to scrub x from their reverse sets. *)
      Id.Set.iter repair (Table.all_reverse tx);
      Id.Set.iter
        (fun y ->
          if not (Id.equal y x) then begin
            match Network.node net y with
            | Some ynode -> Table.remove_reverse (Node.table ynode) x
            | None -> ()
          end)
        (Table.known_nodes tx);
      Network.remove net x;
      Ok !repaired
    end

let leave_many net ids =
  let rec go total = function
    | [] -> Ok total
    | id :: rest -> begin
      match leave net id with
      | Ok n -> go (total + n) rest
      | Error _ as e -> e
    end
  in
  go 0 ids
