(** Failure recovery: re-establish consistency after fail-stop crashes.

    The paper assumes no node deletion during joins and defers failure
    recovery to future work; this module provides the natural recovery
    protocol over the same foundation. Each surviving node periodically
    probes its neighbors (modeled: one probe + one reply or timeout per
    filled entry); entries whose occupants are dead are scrubbed and then
    refilled through {!Repair.find_live} — local rings first, a scoped
    suffix flood as last resort. Reverse-neighbor sets are scrubbed too.

    Guarantees: after [repair], the surviving network satisfies
    Definition 3.8 — every suffix still carried by a survivor is reachable
    again, and no entry points at a dead node. (Unlike joins, this cannot be
    done with purely local information in the worst case, which is why the
    flood tier exists; the report shows how rarely it fires.) *)

type report = {
  survivors : int;
  probes : int;  (** Probe messages sent (one per filled entry). *)
  scrubbed : int;  (** Entries that pointed at dead nodes. *)
  repaired_backup : int;  (** Holes healed by promoting a live backup. *)
  repaired_local : int;  (** Holes refilled from 1–2-hop information. *)
  repaired_flood : int;  (** Holes refilled by the suffix-flood fallback. *)
  emptied : int;  (** Holes with no live holder (legitimately empty now). *)
  tables_consulted : int;
}

val pp_report : report Fmt.t

val repair : Ntcu_core.Network.t -> report
(** Run one full recovery round over every live node. The network must be
    quiescent. Idempotent: a second round finds nothing to do. *)

val fail_random :
  Ntcu_core.Network.t -> seed:int -> fraction:float -> Ntcu_id.Id.t list
(** Crash a random [fraction] of the live nodes (helper for experiments);
    returns the failed ids. *)
