module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node

type outcome =
  | Found_local of { candidate : Id.t; tables_consulted : int; hops : int }
  | Found_flood of { candidate : Id.t; tables_consulted : int }
  | Not_found of { tables_consulted : int }

let pp_outcome ppf = function
  | Found_local { candidate; tables_consulted; hops } ->
    Fmt.pf ppf "local hit %a (%d tables, %d hops)" Id.pp candidate tables_consulted hops
  | Found_flood { candidate; tables_consulted } ->
    Fmt.pf ppf "flood hit %a (%d tables)" Id.pp candidate tables_consulted
  | Not_found { tables_consulted } -> Fmt.pf ppf "no live holder (%d tables)" tables_consulted

let live_contacts net table =
  let owner = Table.owner table in
  Id.Set.filter
    (fun id ->
      (not (Id.equal id owner)) && Network.mem net id && not (Network.is_failed net id))
    (Id.Set.union (Table.known_nodes table) (Table.all_reverse table))

(* Scan one node's table for a live carrier of [suffix]; the scanned node
   itself also counts as a candidate. *)
let scan_one net ~exclude ~owner_id ~suffix id =
  let matches cand =
    (not (Id.equal cand owner_id))
    && (not (exclude cand))
    && Id.has_suffix cand suffix
    && Network.mem net cand
    && not (Network.is_failed net cand)
  in
  if matches id then Some id
  else begin
    match Network.node net id with
    | None -> None
    | Some node ->
      Table.fold (Node.table node) ~init:None ~f:(fun acc ~level:_ ~digit:_ cand _ ->
          match acc with Some _ -> acc | None -> if matches cand then Some cand else None)
  end

let find_live ?(exclude = fun _ -> false) net ~owner ~suffix =
  let owner_id = Table.owner owner in
  let consulted = ref 0 in
  let scan_set contacts =
    Id.Set.fold
      (fun id acc ->
        match acc with
        | Some _ -> acc
        | None ->
          incr consulted;
          scan_one net ~exclude ~owner_id ~suffix id)
      contacts None
  in
  let ring1 = live_contacts net owner in
  match scan_set ring1 with
  | Some candidate -> Found_local { candidate; tables_consulted = !consulted; hops = 1 }
  | None -> begin
    (* Two-hop ring: contacts of contacts, minus what we already scanned. *)
    let ring2 =
      Id.Set.fold
        (fun id acc ->
          match Network.node net id with
          | None -> acc
          | Some node -> Id.Set.union acc (live_contacts net (Node.table node)))
        ring1 Id.Set.empty
    in
    let ring2 = Id.Set.diff (Id.Set.remove owner_id ring2) ring1 in
    match scan_set ring2 with
    | Some candidate -> Found_local { candidate; tables_consulted = !consulted; hops = 2 }
    | None -> begin
      (* Suffix flood: global membership scan. *)
      let hit =
        List.find_opt
          (fun id ->
            (not (Id.equal id owner_id))
            && (not (exclude id))
            && Id.has_suffix id suffix)
          (Network.live_ids net)
      in
      incr consulted;
      match hit with
      | Some candidate -> Found_flood { candidate; tables_consulted = !consulted }
      | None -> Not_found { tables_consulted = !consulted }
    end
  end
