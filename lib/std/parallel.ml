(* A deliberately small domain pool: one shared FIFO of closures, workers
   blocked on a condition variable. Each [map] call owns its result slots and
   completion counter, so the pool itself carries no per-batch state and is
   reusable — including after a batch that raised. *)

type t = {
  jobs : int;
  mutex : Mutex.t; (* guards [queue] and [stopping] *)
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t; (* closures must not raise *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let env_jobs () =
  match Sys.getenv_opt "NTCU_JOBS" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Some n
    | Some 0 -> Some (Domain.recommended_domain_count ())
    | Some _ | None ->
      invalid_arg (Printf.sprintf "NTCU_JOBS=%s: expected a nonnegative integer" s))

let default_jobs () =
  match env_jobs () with Some n -> n | None -> Domain.recommended_domain_count ()

let resolve_jobs = function
  | Some n when n > 0 -> n
  | Some 0 -> Domain.recommended_domain_count ()
  | Some n -> invalid_arg (Printf.sprintf "jobs must be >= 0, got %d" n)
  | None -> ( match env_jobs () with Some n -> n | None -> 1)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopping *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.jobs = 1 -> List.map f xs
  | _ ->
    let tasks = Array.of_list xs in
    let n = Array.length tasks in
    let results = Array.make n None in
    (* Batch-local state, under its own lock so job bookkeeping never
       contends with queue operations. *)
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref n in
    let failure = ref None (* (submission index, exn, backtrace), least index *) in
    let job i () =
      let skip =
        Mutex.lock batch_mutex;
        let s = Option.is_some !failure in
        Mutex.unlock batch_mutex;
        s
      in
      let outcome =
        if skip then None
        else begin
          match f tasks.(i) with
          | v -> Some (Ok v)
          | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))
        end
      in
      Mutex.lock batch_mutex;
      (match outcome with
      | Some (Ok v) -> results.(i) <- Some v
      | Some (Error (e, bt)) -> begin
        match !failure with
        | Some (j, _, _) when j < i -> ()
        | Some _ | None -> failure := Some (i, e, bt)
      end
      | None -> ());
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock batch_mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (job i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    (match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
