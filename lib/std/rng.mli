(** Deterministic, splittable pseudo-random number generator.

    The generator is splitmix64 (Steele, Lea, Flood; JDK 8). Every experiment
    in this repository takes an explicit seed so that simulation runs, tests
    and benchmarks are reproducible bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. Requires [x > 0.]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a]. Requires [a] nonempty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] is a uniformly chosen element of [l]. Requires [l]
    nonempty. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers uniformly
    from [\[0, n)], in random order. Requires [0 <= k <= n]. *)
