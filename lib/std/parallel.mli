(** Fixed-size domain pool for fanning out independent simulation runs.

    The paper's evaluation is a grid of independent seeded runs (Figure
    15(b)'s four setups, the 300-run Theorem 4 estimator, the fault-injection
    loss x crash sweep). Each run owns its engine, RNG, network and stats, so
    the only coordination needed is an ordered [map]: thunks are fanned out
    to worker domains and the results are collected in {e submission order},
    which keeps every report and JSON artifact byte-identical to a serial
    run regardless of scheduling.

    Thunks must be self-contained: a simulation object ([Engine.t],
    [Distances.t]) created inside one thunk must not be touched by another
    domain — both modules carry an owner-domain guard that raises
    [Invalid_argument] on cross-domain mutation rather than corrupting
    silently. *)

type t

val default_jobs : unit -> int
(** The [NTCU_JOBS] environment variable if set to a positive integer
    ([0] means "auto"), otherwise [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int option -> int
(** Resolve a [--jobs] command-line value: [Some n] with [n >= 1] is [n],
    [Some 0] means "auto" ({!default_jobs} ignoring [NTCU_JOBS]), [None]
    falls back to [NTCU_JOBS] (same convention) and finally [1] — so a run
    that never mentions jobs is exactly today's serial run.
    @raise Invalid_argument on [Some n] with [n < 0]. *)

val create : jobs:int -> t
(** A pool of [jobs] workers. [jobs = 1] spawns no domains: every {!map}
    runs in the calling domain, preserving the exact serial execution path.
    [jobs > 1] spawns [jobs] worker domains that live until {!shutdown}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], fanning the
    applications out to the pool's workers, and returns the results in the
    order of [xs] (never in completion order). Must be called from the
    domain that created the pool, with at most one [map] in flight.

    If an application raises, the whole [map] raises that exception (with
    its backtrace) after every in-flight application has finished; among
    several raising applications the earliest by submission order that was
    observed wins, and applications not yet started when the first failure
    was recorded are skipped. The pool survives and can run further maps. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent. The pool must be idle. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)
