(** Small descriptive-statistics toolkit for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean. Requires a nonempty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for arrays of length
    [<= 1]. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Requires a nonempty array. *)

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics. Does not modify [data]. Requires nonempty. *)

val median : float array -> float

type cdf = { xs : float array; ps : float array }
(** Empirical CDF: [ps.(i)] is the fraction of samples [<= xs.(i)]; [xs] is
    strictly increasing and covers every distinct sample value. *)

val cdf : float array -> cdf
(** Empirical cumulative distribution of the samples. Requires nonempty. *)

val cdf_at : cdf -> float -> float
(** [cdf_at c x] is the fraction of samples [<= x]. *)

val histogram : ?bins:int -> float array -> (float * int) array
(** [histogram ~bins data] returns [(left_edge, count)] pairs over [bins]
    equal-width bins spanning the sample range. Requires nonempty. *)

val of_ints : int array -> float array
(** Convenience conversion. *)
