(** Minimum priority queue on float keys with an insertion-order tie-break.

    Used as the event queue of the discrete-event simulator: events scheduled
    at the same virtual time are delivered in scheduling order, which makes
    simulation runs deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest key; among equal keys, the
    one pushed first. [None] when empty. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
