(** Minimum priority queue on float keys with an insertion-order tie-break.

    Used as the event queue of the discrete-event simulator: events scheduled
    at the same virtual time are delivered in scheduling order, which makes
    simulation runs deterministic. The tie-break is total (every element gets
    a distinct sequence number), so the pop order is a pure function of the
    push sequence — it does not depend on the internal heap layout, nor on
    removals of other elements in between.

    Implemented as an indexed 4-ary heap: {!push_handle} returns a handle
    through which the element can later be {!remove}d or re-keyed with
    {!decrease_key} in logarithmic time, with no tombstones left behind. *)

type 'a t

type 'a handle
(** Names one pushed element. Becomes stale once the element leaves the
    queue (by {!pop}, {!remove} or {!clear}); operations on a stale handle
    are safe — {!remove} returns [false], {!mem} returns [false] and
    {!decrease_key} raises. A handle is tied to the queue that created it:
    {!mem} answers [false] for another queue's handle, while {!remove} and
    {!decrease_key} raise [Invalid_argument] rather than corrupt either
    queue. *)

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val push_handle : 'a t -> float -> 'a -> 'a handle
(** Like {!push}, but returns a handle for later {!remove}/{!decrease_key}. *)

val of_list : (float * 'a) list -> 'a t
(** [of_list items] builds a queue holding every [(key, value)] pair in O(n)
    (bottom-up heapify) instead of the O(n log n) of repeated pushes.
    Sequence numbers follow list order, so the result pops exactly like a
    fresh queue into which the pairs were {!push}ed left to right. *)

val add_list : 'a t -> (float * 'a) list -> unit
(** [add_list q items] inserts all pairs at once, heapifying in
    O(length q + n). Equivalent to {!push}ing them left to right — same pop
    order, and handles of already-queued elements stay valid. Preferable to
    repeated pushes when seeding a large event population. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest key; among equal keys, the
    one pushed first. [None] when empty. *)

val peek : 'a t -> (float * 'a) option

val remove : 'a t -> 'a handle -> bool
(** [remove q h] deletes the element named by [h] from the queue in
    O(log n). Returns [false] (and does nothing) if the element already left
    the queue. The relative order of all other elements is unaffected.
    @raise Invalid_argument if [h] was created by a different queue. *)

val mem : 'a t -> 'a handle -> bool
(** Whether the element named by the handle is still queued. *)

val key : 'a handle -> float
(** The handle's current key (meaningful while {!mem} holds). *)

val decrease_key : 'a t -> 'a handle -> float -> unit
(** [decrease_key q h k] lowers the element's key to [k], keeping its
    original insertion sequence number (so among equal keys it still ranks by
    original push order).
    @raise Invalid_argument if the handle is stale, was created by a
    different queue, or [k] is larger than the current key. *)

val clear : 'a t -> unit
