type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output function: one additive step plus two xor-shift-multiply
   rounds (constants from the reference implementation). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod n in
    if v - r > max_int - n + 1 then draw () else r
  in
  draw ()

let float t x =
  if x <= 0. then invalid_arg "Rng.float: bound must be positive";
  let v = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 random bits mapped to [0, 1). *)
  Int64.to_float v *. (1.0 /. 9007199254740992.0) *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if 3 * k >= n then begin
    (* Dense case: shuffle a full permutation and take a prefix. *)
    let a = Array.init n (fun i -> i) in
    shuffle t a;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: draw with rejection against a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
