(* Array-based 4-ary min-heap with an index back-pointer per entry, so that
   entries can be removed (timer cancellation) or re-keyed (decrease_key) in
   O(log n) without lazy-deletion tombstones accumulating in the queue.

   Each element carries a monotonically increasing sequence number so that
   equal keys pop in insertion order; the sequence number is a total
   tie-break, which makes the pop order independent of the heap's internal
   layout (and hence of its arity and of any removals in between). *)

type 'a entry = {
  mutable key : float;
  seq : int;
  value : 'a;
  mutable pos : int; (* slot in [heap]; -1 once popped or removed *)
  owner : 'a t; (* queue the entry was pushed to; guards cross-queue misuse *)
}

and 'a t = {
  mutable heap : 'a entry array; (* slots [0, size) are live *)
  mutable size : int;
  mutable next_seq : int;
}

type 'a handle = 'a entry

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* Extend the backing array, using [fill] (the entry about to be pushed) as
   the dummy for unused slots so no unsafe placeholder value is needed. *)
let grow q fill =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nh = Array.make ncap fill in
  Array.blit q.heap 0 nh 0 cap;
  q.heap <- nh

let set q i e =
  q.heap.(i) <- e;
  e.pos <- i

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if less q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      set q i q.heap.(parent);
      set q parent tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let first = (4 * i) + 1 in
  if first < q.size then begin
    let smallest = ref i in
    let last = min (first + 3) (q.size - 1) in
    for c = first to last do
      if less q.heap.(c) q.heap.(!smallest) then smallest := c
    done;
    if !smallest <> i then begin
      let tmp = q.heap.(i) in
      set q i q.heap.(!smallest);
      set q !smallest tmp;
      sift_down q !smallest
    end
  end

let push_handle q key value =
  let entry = { key; seq = q.next_seq; value; pos = q.size; owner = q } in
  if q.size = Array.length q.heap then grow q entry;
  q.heap.(q.size) <- entry;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1);
  entry

let push q key value = ignore (push_handle q key value)

(* Bulk insertion: append the entries in list order (so sequence numbers
   match what n pushes would have assigned — the pop order is the total
   (key, seq) order either way) and heapify bottom-up in O(size + n) instead
   of n O(log n) sifts. Existing entries keep their handles: they only move
   within the array, and [set] maintains their back-pointers. *)
let add_list q items =
  match items with
  | [] -> ()
  | (k0, v0) :: _ ->
      let n = List.length items in
      let total = q.size + n in
      if total > Array.length q.heap then begin
        let dummy = { key = k0; seq = 0; value = v0; pos = 0; owner = q } in
        let nh = Array.make (max 16 (max total (2 * Array.length q.heap))) dummy in
        Array.blit q.heap 0 nh 0 q.size;
        q.heap <- nh
      end;
      List.iteri
        (fun i (key, value) ->
          let pos = q.size + i in
          q.heap.(pos) <- { key; seq = q.next_seq + i; value; pos; owner = q })
        items;
      q.next_seq <- q.next_seq + n;
      q.size <- total;
      for i = (total - 2) / 4 downto 0 do
        sift_down q i
      done

let of_list items =
  let q = create () in
  add_list q items;
  q

let peek q = if q.size = 0 then None else Some (q.heap.(0).key, q.heap.(0).value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    top.pos <- -1;
    q.size <- q.size - 1;
    if q.size > 0 then begin
      set q 0 q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.key, top.value)
  end

let mem q h = h.owner == q && h.pos >= 0

let key h = h.key

let remove q h =
  if h.owner != q then invalid_arg "Pqueue.remove: handle from another queue";
  let i = h.pos in
  if i < 0 then false
  else begin
    h.pos <- -1;
    q.size <- q.size - 1;
    if i < q.size then begin
      set q i q.heap.(q.size);
      (* The relocated entry may violate the heap property in either
         direction relative to its new neighbourhood. *)
      sift_up q i;
      sift_down q i
    end;
    true
  end

let decrease_key q h key =
  if h.owner != q then invalid_arg "Pqueue.decrease_key: handle from another queue";
  if h.pos < 0 then invalid_arg "Pqueue.decrease_key: stale handle";
  if key > h.key then invalid_arg "Pqueue.decrease_key: key increase";
  h.key <- key;
  sift_up q h.pos

let clear q =
  for i = 0 to q.size - 1 do
    q.heap.(i).pos <- -1
  done;
  q.heap <- [||];
  q.size <- 0;
  q.next_seq <- 0
