(* Array-based binary min-heap. Each element carries a monotonically
   increasing sequence number so that equal keys pop in insertion order. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* slots [0, size) are live *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* Extend the backing array, using [fill] (the entry about to be pushed) as
   the dummy for unused slots so no unsafe placeholder value is needed. *)
let grow q fill =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nh = Array.make ncap fill in
  Array.blit q.heap 0 nh 0 cap;
  q.heap <- nh

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < q.size && less q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && less q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q key value =
  let entry = { key; seq = q.next_seq; value } in
  if q.size = Array.length q.heap then grow q entry;
  q.heap.(q.size) <- entry;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q = if q.size = 0 then None else Some (q.heap.(0).key, q.heap.(0).value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.key, top.value)
  end

let clear q =
  q.heap <- [||];
  q.size <- 0;
  q.next_seq <- 0
