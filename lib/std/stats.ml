let require_nonempty name data =
  if Array.length data = 0 then invalid_arg (name ^ ": empty data")

let mean data =
  require_nonempty "Stats.mean" data;
  Array.fold_left ( +. ) 0. data /. float_of_int (Array.length data)

let variance data =
  let n = Array.length data in
  if n <= 1 then 0.
  else begin
    let m = mean data in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. data in
    acc /. float_of_int (n - 1)
  end

let stddev data = sqrt (variance data)

let min_max data =
  require_nonempty "Stats.min_max" data;
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (data.(0), data.(0))
    data

let percentile data p =
  require_nonempty "Stats.percentile" data;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median data = percentile data 50.

type cdf = { xs : float array; ps : float array }

let cdf data =
  require_nonempty "Stats.cdf" data;
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length sorted in
  (* Collapse duplicate values, keeping the cumulative count at each. *)
  let xs = ref [] and ps = ref [] in
  let i = ref 0 in
  while !i < n do
    let v = sorted.(!i) in
    let j = ref !i in
    while !j < n && sorted.(!j) = v do
      incr j
    done;
    xs := v :: !xs;
    ps := (float_of_int !j /. float_of_int n) :: !ps;
    i := !j
  done;
  { xs = Array.of_list (List.rev !xs); ps = Array.of_list (List.rev !ps) }

let cdf_at c x =
  (* Largest index with xs.(i) <= x, by binary search. *)
  let n = Array.length c.xs in
  if n = 0 || x < c.xs.(0) then 0.
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if c.xs.(mid) <= x then lo := mid else hi := mid - 1
    done;
    c.ps.(!lo)
  end

let histogram ?(bins = 10) data =
  require_nonempty "Stats.histogram" data;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max data in
  let width = if hi = lo then 1. else (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    data;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let of_ints a = Array.map float_of_int a
