type t = { b : int; d : int }

let make ~b ~d =
  if b < 2 || b > 36 then invalid_arg "Params.make: base must be in [2, 36]";
  if d < 1 || d > 64 then invalid_arg "Params.make: digit count must be in [1, 64]";
  { b; d }

let id_space_size t = float_of_int t.b ** float_of_int t.d

let pp ppf t = Fmt.pf ppf "(b=%d, d=%d)" t.b t.d

let paper_example_fig1 = make ~b:4 ~d:5
let paper_example_fig2 = make ~b:8 ~d:5
let paper_sim_d8 = make ~b:16 ~d:8
let paper_sim_d40 = make ~b:16 ~d:40
