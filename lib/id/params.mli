(** Hypercube-routing namespace parameters.

    Every identifier is a string of [d] digits of base [b] (paper, Section 2).
    The paper's simulations use [b = 16] with [d = 8] or [d = 40]; the paper's
    running examples use [b = 4, d = 5] (Figure 1) and [b = 8, d = 5]
    (Figure 2). *)

type t = private { b : int; d : int }

val make : b:int -> d:int -> t
(** [make ~b ~d] validates [2 <= b <= 36] and [1 <= d <= 64].
    @raise Invalid_argument otherwise. *)

val id_space_size : t -> float
(** [b ^ d] as a float (the exact value may exceed [max_int]). *)

val pp : t Fmt.t

(** Presets used throughout the paper. *)

val paper_example_fig1 : t (* b = 4,  d = 5 *)
val paper_example_fig2 : t (* b = 8,  d = 5 *)
val paper_sim_d8 : t (* b = 16, d = 8 *)
val paper_sim_d40 : t (* b = 16, d = 40 *)
