(** Node and object identifiers.

    An identifier is a fixed-length string of [d] digits of base [b]. Following
    PRR and the paper, digits are counted from the right: [digit x 0] is the
    rightmost digit, written last in the textual form. Routing proceeds by
    suffix matching. *)

type t
(** Immutable identifier. *)

val make : Params.t -> int array -> t
(** [make p digits] builds an identifier from [digits], where [digits.(i)] is
    the [i]th digit counted from the right. The array is copied.
    @raise Invalid_argument if the length differs from [p.d] or any digit is
    outside [\[0, p.b)]. *)

val of_string : Params.t -> string -> t
(** [of_string p s] parses the textual form: [p.d] characters, most-significant
    digit first, alphabet [0-9] then [a-z] (case-insensitive). With
    [b = 8, d = 5], ["10261"] has rightmost digit [1].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Inverse of {!of_string} (lowercase alphabet). *)

val length : t -> int
(** Number of digits, i.e. [d]. *)

val digit : t -> int -> int
(** [digit x i] is the [i]th digit from the right, [0 <= i < length x]. *)

val csuf_len : t -> t -> int
(** [csuf_len x y] is the number of digits in the longest common suffix of the
    two identifiers — the paper's [|csuf(x, y)|]. Equals [length x] iff
    [equal x y]. *)

val suffix : t -> int -> int array
(** [suffix x k] is the rightmost [k] digits, index 0 = rightmost. *)

val has_suffix : t -> int array -> bool
(** [has_suffix x suf] tests whether [x] ends with [suf] (index 0 of [suf]
    being the rightmost digit). *)

val random : Ntcu_std.Rng.t -> Params.t -> t
(** Uniformly random identifier. *)

val random_with_suffix : Ntcu_std.Rng.t -> Params.t -> int array -> t
(** Uniformly random identifier constrained to end with the given suffix.
    Used to build adversarial dependent-join workloads.
    @raise Invalid_argument if the suffix is longer than [d] or has an
    out-of-range digit. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** Deterministic FNV-1a fold over the digit sequence — independent of the
    in-memory representation and in lockstep with {!Packed.hash}. *)
val hash : t -> int
val pp : t Fmt.t

val pp_suffix : int array Fmt.t
(** Prints a suffix most-significant digit first, e.g. [|1;6;2|] as ["261"]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
