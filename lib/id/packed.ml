(* Bit-packed identifiers: one id = one tagged OCaml [int].

   Digit [i] (0 = rightmost, as everywhere in this repo) occupies bits
   [i*bits .. (i+1)*bits - 1] where [bits = ceil(log2 b)]. Because the most
   significant digit lands in the highest bits, plain integer comparison of
   packed values coincides with [Id.compare] (most-significant-digit-first
   lexicographic order), and [x lxor y] exposes the common suffix as trailing
   zero digit groups.

   Only parameter spaces with [d * bits <= 62] are packable (the value must
   fit a non-negative tagged int); [Params.paper_sim_d8] (16^8 = 32 bits) is,
   [Params.paper_sim_d40] (160 bits) is not, so every consumer keeps the
   [int array] representation as the general path and treats this as an
   opt-in fast path gated on {!packable}. *)

type t = int

type layout = { params : Params.t; bits : int; mask : int }

let bits_per_digit b =
  if b < 2 then invalid_arg "Packed.bits_per_digit: base must be >= 2";
  let rec go n acc = if n >= b then acc else go (n * 2) (acc + 1) in
  go 1 0

let packable (p : Params.t) = p.d * bits_per_digit p.b <= 62

let layout (p : Params.t) =
  if not (packable p) then
    invalid_arg
      (Printf.sprintf "Packed.layout: %d digits of base %d exceed 62 bits" p.d p.b);
  let bits = bits_per_digit p.b in
  { params = p; bits; mask = (1 lsl bits) - 1 }

let params l = l.params
let bits l = l.bits
let id_bits l = l.params.Params.d * l.bits

let digit l x i = (x lsr (i * l.bits)) land l.mask

let of_id l id =
  let d = l.params.Params.d in
  let v = ref 0 in
  for i = d - 1 downto 0 do
    v := (!v lsl l.bits) lor Id.digit id i
  done;
  !v

let to_id l x = Id.make l.params (Array.init l.params.Params.d (digit l x))

let make l digits = of_id l (Id.make l.params digits)
let of_string l s = of_id l (Id.of_string l.params s)
let to_string l x = Id.to_string (to_id l x)

(* Range check plus a per-digit bound check: for non-power-of-two bases some
   bit patterns inside the range encode digits >= b. *)
let of_int l v =
  let d = l.params.Params.d and b = l.params.Params.b in
  if v < 0 || (id_bits l < 62 && v lsr id_bits l <> 0) then
    invalid_arg "Packed.of_int: value out of range";
  for i = 0 to d - 1 do
    if digit l v i >= b then invalid_arg "Packed.of_int: digit out of range"
  done;
  v

let unsafe_of_int v = v
let to_int x = x

let csuf_len l x y =
  let d = l.params.Params.d in
  if x = y then d
  else begin
    let diff = x lxor y in
    let rec go i = if (diff lsr (i * l.bits)) land l.mask = 0 then go (i + 1) else i in
    go 0
  end

let suffix_value l x k = x land ((1 lsl (k * l.bits)) - 1)

let suffix l x k =
  if k > l.params.Params.d then invalid_arg "Packed.suffix: longer than d";
  Array.init k (digit l x)

let has_suffix l x suf =
  let k = Array.length suf in
  k <= l.params.Params.d
  &&
  let rec go i = i >= k || (digit l x i = suf.(i) && go (i + 1)) in
  go 0

(* Same generator-consumption order as [Id.random] / [Id.random_with_suffix]
   so both representations draw identical ids from an equal-state [Rng.t]. *)
let random rng l =
  let d = l.params.Params.d and b = l.params.Params.b in
  let v = ref 0 in
  for i = 0 to d - 1 do
    v := !v lor (Ntcu_std.Rng.int rng b lsl (i * l.bits))
  done;
  !v

let random_with_suffix rng l suf =
  let d = l.params.Params.d and b = l.params.Params.b in
  let k = Array.length suf in
  if k > d then invalid_arg "Packed.random_with_suffix: suffix longer than d";
  Array.iter
    (fun v ->
      if v < 0 || v >= b then invalid_arg "Packed.random_with_suffix: digit out of range")
    suf;
  let v = ref 0 in
  for i = 0 to d - 1 do
    let dg = if i < k then suf.(i) else Ntcu_std.Rng.int rng b in
    v := !v lor (dg lsl (i * l.bits))
  done;
  !v

let equal (x : t) (y : t) = Int.equal (x :> int) (y :> int)
let compare (x : t) (y : t) = Int.compare x y

(* Must stay in lockstep with [Id.hash]: the same FNV-1a fold over the digit
   sequence, so the two representations agree as hash-table keys
   (checked by the QCheck agreement suite). *)
let hash l x =
  let d = l.params.Params.d in
  let h = ref 0x811c9dc5 in
  for i = 0 to d - 1 do
    h := (!h lxor digit l x i) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

let pp l ppf x = Fmt.string ppf (to_string l x)
