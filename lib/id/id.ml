(* An identifier is stored as its digit array, index 0 = rightmost digit.
   The array is never mutated after construction. *)

type t = int array

let digit_of_char c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'Z' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Id.of_string: bad digit character %C" c)

let char_of_digit v =
  if v < 10 then Char.chr (Char.code '0' + v) else Char.chr (Char.code 'a' + v - 10)

let validate (p : Params.t) digits =
  if Array.length digits <> p.d then
    invalid_arg
      (Printf.sprintf "Id.make: expected %d digits, got %d" p.d (Array.length digits));
  Array.iter
    (fun v ->
      if v < 0 || v >= p.b then
        invalid_arg (Printf.sprintf "Id.make: digit %d out of range for base %d" v p.b))
    digits

let make p digits =
  validate p digits;
  Array.copy digits

let of_string (p : Params.t) s =
  if String.length s <> p.d then
    invalid_arg
      (Printf.sprintf "Id.of_string: expected %d characters, got %d" p.d (String.length s));
  (* Character 0 of the string is the most significant digit, i.e. index d-1. *)
  let digits = Array.init p.d (fun i -> digit_of_char s.[p.d - 1 - i]) in
  validate p digits;
  digits

let to_string x =
  let d = Array.length x in
  String.init d (fun i -> char_of_digit x.(d - 1 - i))

let length = Array.length

let digit x i = x.(i)

let csuf_len x y =
  let d = Array.length x in
  let rec go i = if i < d && x.(i) = y.(i) then go (i + 1) else i in
  go 0

let suffix x k = Array.sub x 0 k

let has_suffix x suf =
  let k = Array.length suf in
  k <= Array.length x
  &&
  let rec go i = i >= k || (x.(i) = suf.(i) && go (i + 1)) in
  go 0

let random rng (p : Params.t) = Array.init p.d (fun _ -> Ntcu_std.Rng.int rng p.b)

let random_with_suffix rng (p : Params.t) suf =
  let k = Array.length suf in
  if k > p.d then invalid_arg "Id.random_with_suffix: suffix longer than d";
  Array.iter
    (fun v ->
      if v < 0 || v >= p.b then invalid_arg "Id.random_with_suffix: digit out of range")
    suf;
  Array.init p.d (fun i -> if i < k then suf.(i) else Ntcu_std.Rng.int rng p.b)

(* Monomorphic digit loop with a physical-equality fast path: identifiers are
   hash-table keys on the message delivery path, where the generic structural
   comparison shows up in profiles. *)
let equal (x : t) (y : t) =
  x == y
  ||
  let d = Array.length x in
  d = Array.length y
  &&
  let rec go i = i >= d || (x.(i) = y.(i) && go (i + 1)) in
  go 0

let compare (x : t) (y : t) =
  (* Most-significant-digit-first order, matching the textual order. *)
  let d = Array.length x in
  let rec go i =
    if i < 0 then 0
    else begin
      let c = Int.compare x.(i) y.(i) in
      if c <> 0 then c else go (i - 1)
    end
  in
  go (d - 1)

(* Deterministic FNV-1a fold over the digit sequence. [Packed.hash] replays
   the same fold over its shift/mask digits, so the two representations of an
   identifier agree as hash-table keys; the 30-bit mask keeps the fold inside
   the tagged-int range on every word size. *)
let hash (x : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length x - 1 do
    h := (!h lxor x.(i)) * 0x01000193 land 0x3FFFFFFF
  done;
  !h

let pp ppf x = Fmt.string ppf (to_string x)

let pp_suffix ppf suf =
  let k = Array.length suf in
  for i = k - 1 downto 0 do
    Fmt.char ppf (char_of_digit suf.(i))
  done

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
