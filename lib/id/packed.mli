(** Bit-packed identifiers: one id in one tagged [int].

    Digit [i] (0 = rightmost, as in {!Id}) occupies bits
    [i*bits .. (i+1)*bits - 1] with [bits = ceil(log2 b)], so integer order on
    packed values coincides with {!Id.compare} and common suffixes appear as
    shared low bits. Only spaces with [d * bits <= 62] are packable —
    [Params.paper_sim_d8] is, [Params.paper_sim_d40] is not — so callers gate
    fast paths on {!packable} and keep the [int array] form as the general
    representation. *)

type t = private int
(** A packed identifier. The coercion [(x :> int)] is free; it is how arena
    code stores ids in flat [int array] columns and wire frames. *)

type layout
(** Precomputed shift/mask data for one parameter space. Hot loops take the
    layout once instead of re-deriving widths per call. *)

val bits_per_digit : int -> int
(** [ceil(log2 b)] — bits needed for one digit of base [b]. This is the same
    width the wire codec packs per digit. *)

val packable : Params.t -> bool
(** Does [b^d] fit 62 bits, i.e. can every id of this space pack into one
    non-negative tagged int? *)

val layout : Params.t -> layout
(** @raise Invalid_argument if [not (packable p)]. *)

val params : layout -> Params.t
val bits : layout -> int

val id_bits : layout -> int
(** Total bits occupied by an id: [d * bits]. *)

val of_id : layout -> Id.t -> t
val to_id : layout -> t -> Id.t
(** Lossless conversions; [to_id l (of_id l x)] is [Id.equal] to [x]. *)

val make : layout -> int array -> t
(** As {!Id.make}: digit [i] of the array is the [i]th digit from the right.
    @raise Invalid_argument on wrong length or out-of-range digit. *)

val of_string : layout -> string -> t
val to_string : layout -> t -> string
(** Textual form, identical to {!Id.of_string} / {!Id.to_string}. *)

val of_int : layout -> int -> t
(** Re-enter the abstraction from a raw stored int, validating range and —
    for non-power-of-two bases — every digit. *)

val unsafe_of_int : int -> t
(** Trusted re-entry for arena columns that only ever store [(x :> int)] of
    valid packed ids. No validation. *)

val to_int : t -> int

val digit : layout -> t -> int -> int
(** [digit l x i] is the [i]th digit from the right: shift and mask. *)

val csuf_len : layout -> t -> t -> int
(** Longest common suffix length, the paper's [|csuf(x, y)|]: trailing zero
    digit groups of [x lxor y]. *)

val suffix_value : layout -> t -> int -> int
(** [suffix_value l x k] is the rightmost [k] digits as one packed int — the
    natural key for int-keyed suffix tables. *)

val suffix : layout -> t -> int -> int array
(** As {!Id.suffix}, for interop with array-suffix APIs. *)

val has_suffix : layout -> t -> int array -> bool

val random : Ntcu_std.Rng.t -> layout -> t
val random_with_suffix : Ntcu_std.Rng.t -> layout -> int array -> t
(** Draw identically-distributed ids to {!Id.random} /
    {!Id.random_with_suffix}, consuming the generator in the same order, so a
    packed and an array-form draw from equal-state generators yield the same
    identifier. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** [Int.compare] on packed values — agrees with {!Id.compare}. *)

val hash : layout -> t -> int
(** Digit-fold hash, in lockstep with {!Id.hash}: both representations of one
    identifier hash identically. *)

val pp : layout -> t Fmt.t
