let min_delay = 1e-6

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float; rng : Ntcu_std.Rng.t }
  | Distance of {
      distance : src:int -> dst:int -> float;
      jitter : float;
      rng : Ntcu_std.Rng.t;
    }
  | Perturbed of { base : t; f : src:int -> dst:int -> float -> float }

let constant delay =
  if delay <= 0. then invalid_arg "Latency.constant: delay must be positive";
  Constant delay

let uniform ~seed ~lo ~hi =
  if lo <= 0. || hi <= lo then invalid_arg "Latency.uniform: need 0 < lo < hi";
  Uniform { lo; hi; rng = Ntcu_std.Rng.create seed }

let of_distance ?(jitter = 0.) ?(seed = 0) distance =
  if jitter < 0. then invalid_arg "Latency.of_distance: negative jitter";
  Distance { distance; jitter; rng = Ntcu_std.Rng.create seed }

let perturbed base ~f = Perturbed { base; f }

let rec sample t ~src ~dst =
  match t with
  | Constant delay -> delay
  | Uniform { lo; hi; rng } -> lo +. Ntcu_std.Rng.float rng (hi -. lo)
  | Distance { distance; jitter; rng } ->
    let base = distance ~src ~dst in
    let base = if base <= 0. then min_delay else base in
    if jitter = 0. then base else base *. (1. +. Ntcu_std.Rng.float rng jitter)
  | Perturbed { base; f } ->
    let d = f ~src ~dst (sample base ~src ~dst) in
    if d <= 0. then min_delay else d
