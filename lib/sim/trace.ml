type t = { mutable events : (float * string) list; mutable count : int }

let create () = { events = []; count = 0 }

let record t time label =
  t.events <- (time, label) :: t.events;
  t.count <- t.count + 1

let length t = t.count

let to_list t = List.rev t.events

let equal a b = a.count = b.count && a.events = b.events

let pp ppf t =
  List.iter (fun (time, label) -> Fmt.pf ppf "%12.6f  %s@." time label) (to_list t)
