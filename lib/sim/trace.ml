type t = { mutable events : (float * string) list; mutable count : int }

let create () = { events = []; count = 0 }

let record t time label =
  t.events <- (time, label) :: t.events;
  t.count <- t.count + 1

let length t = t.count

let to_list t = List.rev t.events

let equal a b = a.count = b.count && a.events = b.events

(* Rounded display for humans only; replay/digest go through [to_lines]'s
   lossless %h encoding. *)
let[@ntcu.allow "D005"] pp ppf t =
  List.iter (fun (time, label) -> Fmt.pf ppf "%12.6f  %s@." time label) (to_list t)

(* %h prints the exact bit pattern of the timestamp (hex float), so two lines
   are equal iff the events are — byte-identical replay, not rounded. *)
let to_lines t = List.map (fun (time, label) -> Printf.sprintf "%h %s" time label) (to_list t)

let digest t = Digest.to_hex (Digest.string (String.concat "\n" (to_lines t)))

(* Inverse of [to_lines]. OCaml's float_of_string reads the %h hex-float form
   exactly, so parsing recovers the bit pattern [to_lines] wrote — the
   round-trip is lossless and [equal (of_lines (to_lines t)) t] holds. *)
let of_lines lines =
  let t = create () in
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | None -> invalid_arg (Printf.sprintf "Trace.of_lines: malformed line %S" line)
      | Some i ->
        let time =
          match float_of_string_opt (String.sub line 0 i) with
          | Some f -> f
          | None -> invalid_arg (Printf.sprintf "Trace.of_lines: bad timestamp in %S" line)
        in
        record t time (String.sub line (i + 1) (String.length line - i - 1)))
    lines;
  t

let first_divergence a b =
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la', y :: lb' ->
      if String.equal x y then go (i + 1) la' lb' else Some (i, Some x, Some y)
    | x :: _, [] -> Some (i, Some x, None)
    | [], y :: _ -> Some (i, None, Some y)
  in
  go 0 (to_lines a) (to_lines b)
