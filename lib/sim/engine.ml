type t = {
  mutable clock : float;
  queue : (unit -> unit) Ntcu_std.Pqueue.t;
  mutable processed : int;
  mutable cancelled_count : int;
  mutable observer : (unit -> unit) option;
  owner : Domain.id; (* creating domain; mutation from any other raises *)
}

let create () =
  {
    clock = 0.;
    queue = Ntcu_std.Pqueue.create ();
    processed = 0;
    cancelled_count = 0;
    observer = None;
    owner = Domain.self ();
  }

(* The engine is single-domain mutable state (clock, heap). A parallel
   experiment harness hands each run its own engine; this guard turns an
   accidental share into an immediate error instead of silent heap
   corruption. One domain-id read and compare per call — negligible next to
   the heap operation it protects. *)
let check_owner t op =
  (* Domain.id is a private int; compare through the coercion so no
     polymorphic compare touches the abstract type. *)
  if (Domain.self () :> int) <> (t.owner :> int) then
    invalid_arg ("Engine." ^ op ^ ": engine used from a domain other than its creator")

let now t = t.clock

let schedule_at t ~time f =
  check_owner t "schedule_at";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  Ntcu_std.Pqueue.push t.queue time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

type handle = {
  ph : (unit -> unit) Ntcu_std.Pqueue.handle;
  mutable cancelled : bool;
}

let schedule_cancellable t ~delay f =
  check_owner t "schedule_cancellable";
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let ph = Ntcu_std.Pqueue.push_handle t.queue (t.clock +. delay) f in
  { ph; cancelled = false }

let cancel t h =
  check_owner t "cancel";
  if not h.cancelled then begin
    h.cancelled <- true;
    if Ntcu_std.Pqueue.remove t.queue h.ph then
      t.cancelled_count <- t.cancelled_count + 1
  end

let cancelled h = h.cancelled

let pending t = Ntcu_std.Pqueue.length t.queue

let events_processed t = t.processed

let events_cancelled t = t.cancelled_count

let set_observer t obs =
  check_owner t "set_observer";
  t.observer <- obs

let step t =
  check_owner t "step";
  match Ntcu_std.Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.processed <- t.processed + 1;
    f ();
    (match t.observer with Some obs -> obs () | None -> ());
    true

let run ?(max_events = 100_000_000) t =
  let fired = ref 0 in
  while step t do
    incr fired;
    if !fired > max_events then
      failwith
        (Printf.sprintf "Engine.run: exceeded %d events; suspected livelock" max_events)
  done

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Ntcu_std.Pqueue.peek t.queue with
    | Some (next, _) when next <= time -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if time > t.clock then t.clock <- time
