type t = {
  mutable clock : float;
  queue : (unit -> unit) Ntcu_std.Pqueue.t;
  mutable processed : int;
}

let create () = { clock = 0.; queue = Ntcu_std.Pqueue.create (); processed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  Ntcu_std.Pqueue.push t.queue time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

type handle = { mutable cancelled : bool }

let schedule_cancellable t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let h = { cancelled = false } in
  schedule_at t ~time:(t.clock +. delay) (fun () -> if not h.cancelled then f ());
  h

let cancel _t h = h.cancelled <- true

let cancelled h = h.cancelled

let pending t = Ntcu_std.Pqueue.length t.queue

let events_processed t = t.processed

let step t =
  match Ntcu_std.Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.processed <- t.processed + 1;
    f ();
    true

let run ?(max_events = 100_000_000) t =
  let fired = ref 0 in
  while step t do
    incr fired;
    if !fired > max_events then
      failwith
        (Printf.sprintf "Engine.run: exceeded %d events; suspected livelock" max_events)
  done

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Ntcu_std.Pqueue.peek t.queue with
    | Some (next, _) when next <= time -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if time > t.clock then t.clock <- time
