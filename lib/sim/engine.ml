type handle = {
  ph : (unit -> unit) Ntcu_std.Pqueue.handle;
  mutable cancelled : bool;
}

type t = {
  mutable clock : float;
  queue : (unit -> unit) Ntcu_std.Pqueue.t;
  mutable processed : int;
  mutable cancelled_count : int;
  mutable observer : (unit -> unit) option;
  owner : Domain.id; (* creating domain; mutation from any other raises *)
  (* Debug-only timer registry: when [debug_timers] is on, every cancellable
     handle is tracked so {!assert_no_timer_leaks} can prove that cancellation
     really removed the event from the indexed pqueue. Off by default — a
     steady-state run creates one handle per reliable message and the
     registry would otherwise be pure overhead. *)
  mutable debug_timers : bool;
  mutable tracked : handle list;
}

let create () =
  {
    clock = 0.;
    queue = Ntcu_std.Pqueue.create ();
    processed = 0;
    cancelled_count = 0;
    observer = None;
    owner = Domain.self ();
    debug_timers = false;
    tracked = [];
  }

(* The engine is single-domain mutable state (clock, heap). A parallel
   experiment harness hands each run its own engine; this guard turns an
   accidental share into an immediate error instead of silent heap
   corruption. One domain-id read and compare per call — negligible next to
   the heap operation it protects. *)
let check_owner t op =
  (* Domain.id is a private int; compare through the coercion so no
     polymorphic compare touches the abstract type. *)
  if (Domain.self () :> int) <> (t.owner :> int) then
    invalid_arg ("Engine." ^ op ^ ": engine used from a domain other than its creator")

let now t = t.clock

let schedule_at t ~time f =
  check_owner t "schedule_at";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  Ntcu_std.Pqueue.push t.queue time f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let schedule_batch t events =
  check_owner t "schedule_batch";
  List.iter
    (fun (time, _) ->
      if time < t.clock then
        invalid_arg
          (Printf.sprintf "Engine.schedule_batch: time %g is before now %g" time t.clock))
    events;
  Ntcu_std.Pqueue.add_list t.queue events

(* Keep only handles whose element is still physically queued: a fired or
   properly-cancelled handle left the queue and needs no further watching,
   while a leaked cancellation (cancelled flag set, element still queued)
   stays tracked until {!assert_no_timer_leaks} reports it. *)
let prune_tracked t =
  t.tracked <- List.filter (fun h -> Ntcu_std.Pqueue.mem t.queue h.ph) t.tracked

let set_debug_timers t on =
  check_owner t "set_debug_timers";
  t.debug_timers <- on;
  if not on then t.tracked <- []

let assert_no_timer_leaks t =
  check_owner t "assert_no_timer_leaks";
  if t.debug_timers then begin
    List.iter
      (fun h ->
        if h.cancelled && Ntcu_std.Pqueue.mem t.queue h.ph then
          failwith "Engine.assert_no_timer_leaks: cancelled timer still queued")
      t.tracked;
    prune_tracked t
  end

let debug_tracked_timers t = List.length t.tracked

let schedule_cancellable t ~delay f =
  check_owner t "schedule_cancellable";
  if delay < 0. then invalid_arg "Engine.schedule_cancellable: negative delay";
  let ph = Ntcu_std.Pqueue.push_handle t.queue (t.clock +. delay) f in
  let h = { ph; cancelled = false } in
  if t.debug_timers then begin
    if List.length t.tracked > 4096 then prune_tracked t;
    t.tracked <- h :: t.tracked
  end;
  h

let cancel t h =
  check_owner t "cancel";
  if not h.cancelled then begin
    h.cancelled <- true;
    if Ntcu_std.Pqueue.remove t.queue h.ph then
      t.cancelled_count <- t.cancelled_count + 1
  end

let cancelled h = h.cancelled

let pending t = Ntcu_std.Pqueue.length t.queue

let events_processed t = t.processed

let events_cancelled t = t.cancelled_count

let set_observer t obs =
  check_owner t "set_observer";
  t.observer <- obs

let step t =
  check_owner t "step";
  match Ntcu_std.Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.processed <- t.processed + 1;
    f ();
    (match t.observer with Some obs -> obs () | None -> ());
    true

let run ?(max_events = 100_000_000) t =
  let fired = ref 0 in
  while step t do
    incr fired;
    if !fired > max_events then
      failwith
        (Printf.sprintf "Engine.run: exceeded %d events; suspected livelock" max_events)
  done;
  (* The queue just drained: if cancellation ever failed to remove an event,
     it would have either fired (wrong) or kept [pending] above zero (this
     loop would not have exited with it queued — unless the pqueue index and
     the heap disagree, which is exactly what the debug check detects). *)
  assert_no_timer_leaks t

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Ntcu_std.Pqueue.peek t.queue with
    | Some (next, _) when next <= time -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if time > t.clock then t.clock <- time
