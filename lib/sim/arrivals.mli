(** Recurring event sources on an {!Engine}.

    A source fires an action at stochastic intervals: after each firing it
    draws the next inter-arrival delay from its sampler and reschedules
    itself, until the sampler returns [None] or {!stop} cancels the pending
    timer. All randomness comes from the sampler's own seeded RNG, so a
    source is as deterministic as the engine it runs on.

    This is the churn driver's clockwork: Poisson join arrivals, periodic
    maintenance probes and time-series samplers are all instances. *)

type t

val start :
  Engine.t -> ?first:float -> next:(unit -> float option) -> (now:float -> unit) -> t
(** [start engine ~next action] draws the first delay from [next] and
    schedules the source. At each firing the following delay is drawn
    {e before} [action] runs, so the action's own RNG use cannot perturb the
    arrival process. [?first] overrides the delay to the first firing only.
    A [None] from [next] retires the source.
    @raise Invalid_argument if a sampled delay is negative. *)

val stop : t -> unit
(** Cancel the pending firing. Idempotent; the source never fires again. *)

val fired : t -> int
(** Number of times the action has run. *)

val active : t -> bool
(** True while a next firing is scheduled. *)

val poisson : rate:float -> Ntcu_std.Rng.t -> unit -> float option
(** Exponential inter-arrival sampler for a Poisson process with [rate]
    events per unit of virtual time.
    @raise Invalid_argument if [rate <= 0.]. *)

val every : float -> unit -> float option
(** Fixed-period sampler (periodic maintenance, time-series sampling).
    @raise Invalid_argument if the period is not positive. *)

val take : int -> (unit -> float option) -> unit -> float option
(** [take k next] passes through the first [k] draws of [next], then returns
    [None] — a source armed with it retires after at most [k + 1] firings
    ([?first] plus [k] sampled delays). Bounded workload drivers (a fixed
    number of serve ticks inside a churn window) are the intended use.
    @raise Invalid_argument if [k < 0]. *)
