type t = {
  engine : Engine.t;
  next : unit -> float option;
  action : now:float -> unit;
  mutable handle : Engine.handle option;
  mutable fired : int;
  mutable stopped : bool;
}

let rec arm t delay =
  t.handle <- Some (Engine.schedule_cancellable t.engine ~delay (fun () -> fire t))

and fire t =
  t.handle <- None;
  if not t.stopped then begin
    (* Draw the next delay before running the action: the arrival process is
       then a pure function of the sampler's RNG, whatever the action does. *)
    (match t.next () with Some delay -> arm t delay | None -> t.stopped <- true);
    t.fired <- t.fired + 1;
    t.action ~now:(Engine.now t.engine)
  end

let start engine ?first ~next action =
  let t = { engine; next; action; handle = None; fired = 0; stopped = false } in
  (match first with
  | Some delay -> arm t delay
  | None -> (
    match next () with Some delay -> arm t delay | None -> t.stopped <- true));
  t

let stop t =
  t.stopped <- true;
  match t.handle with
  | Some h ->
    Engine.cancel t.engine h;
    t.handle <- None
  | None -> ()

let fired t = t.fired

let active t = (not t.stopped) && Option.is_some t.handle

let poisson ~rate rng =
  if rate <= 0. then invalid_arg "Arrivals.poisson: rate must be positive";
  fun () ->
    (* Inverse CDF of Exp(rate); [Rng.float rng 1.] is in [0, 1), so
       [log1p (-. u)] is finite and the delay nonnegative. *)
    Some (-.Float.log1p (-.Ntcu_std.Rng.float rng 1.) /. rate)

let every period =
  if period <= 0. then invalid_arg "Arrivals.every: period must be positive";
  fun () -> Some period

let take k next =
  if k < 0 then invalid_arg "Arrivals.take: count must be nonnegative";
  let left = ref k in
  fun () ->
    if !left <= 0 then None
    else begin
      decr left;
      next ()
    end
