(** Message-latency models for the simulated network.

    Endpoints are identified by dense integer indices (end-host indices
    assigned by the harness). The consistency results do not depend on timing,
    but the latency model shapes the event interleavings that exercise the
    concurrent-join paths; the paper used shortest-path distances over GT-ITM
    transit-stub topologies. *)

type t

val min_delay : float
(** Smallest delay {!sample} will ever return ([1e-6] ms). Distance-based
    models clamp to it, so two co-located endpoints (distance [0.], no
    jitter) still exchange messages with strictly positive delay — virtual
    time always advances and same-host messages keep FIFO order via the
    engine's tie-break rather than a zero-delay shortcut. *)

val constant : float -> t
(** Every message takes the same time. The degenerate (most synchronous)
    interleaving. *)

val uniform : seed:int -> lo:float -> hi:float -> t
(** Independent uniform delay per message in [\[lo, hi)]. *)

val of_distance : ?jitter:float -> ?seed:int -> (src:int -> dst:int -> float) -> t
(** Delay given by a distance function (e.g. topology shortest paths), plus an
    optional multiplicative jitter: the delay is scaled by a factor uniform in
    [\[1, 1 +. jitter)]. [seed] defaults to [0]; [jitter] to [0.]. *)

val perturbed : t -> f:(src:int -> dst:int -> float -> float) -> t
(** [perturbed base ~f] samples [base] and passes the result through [f] —
    the delay-perturbation hook used by adversarial schedulers to stretch,
    shrink or permute message delays without touching the base model. A
    non-positive result is clamped to {!min_delay}, so perturbation can never
    stall virtual time. A stateful [f] (e.g. driven by a seeded RNG) is
    sampled in network send order, which is deterministic. *)

val sample : t -> src:int -> dst:int -> float
(** Draw the delay for one message from [src] to [dst]. Always [> 0.]. *)
