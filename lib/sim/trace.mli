(** Append-only event trace.

    Records [(virtual time, label)] pairs. Used by tests to assert that two
    runs with the same seed produce identical event sequences, and for ad-hoc
    debugging of protocol runs. *)

type t

val create : unit -> t

val record : t -> float -> string -> unit

val length : t -> int

val to_list : t -> (float * string) list
(** In recording order. *)

val equal : t -> t -> bool

val to_lines : t -> string list
(** One canonical line per event: the timestamp in [%h] (exact hexadecimal
    float, no rounding) followed by the label. Two traces have equal lines
    iff their events are bit-identical. *)

val digest : t -> string
(** Hex digest over {!to_lines} — a compact fingerprint for golden-trace
    regression fixtures. *)

val of_lines : string list -> t
(** Inverse of {!to_lines}: rebuild a trace from its canonical lines. The
    [%h] timestamps parse back to the identical bit pattern, so
    [equal (of_lines (to_lines t)) t] — the property that makes serialized
    schedules (repro files) replayable without drift.
    @raise Invalid_argument on a line without a parsable leading timestamp. *)

val first_divergence : t -> t -> (int * string option * string option) option
(** [first_divergence a b] is [None] when the traces agree, otherwise the
    0-based index of the first differing event with the canonical line from
    each side ([None] where one trace already ended). *)

val pp : t Fmt.t
(** One event per line. *)
