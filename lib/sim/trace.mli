(** Append-only event trace.

    Records [(virtual time, label)] pairs. Used by tests to assert that two
    runs with the same seed produce identical event sequences, and for ad-hoc
    debugging of protocol runs. *)

type t

val create : unit -> t

val record : t -> float -> string -> unit

val length : t -> int

val to_list : t -> (float * string) list
(** In recording order. *)

val equal : t -> t -> bool

val pp : t Fmt.t
(** One event per line. *)
