(** Deterministic discrete-event simulation engine.

    Events are thunks scheduled at a virtual time. Events with equal
    timestamps fire in scheduling order, so a run is a pure function of the
    initial schedule and the seeds used by the callers. This replaces the
    authors' (unpublished) event-driven simulator.

    An engine is single-domain mutable state. It remembers the domain that
    created it, and every mutating operation ([schedule*], [cancel], [step]
    and hence [run]/[run_until]) raises [Invalid_argument] when called from
    any other domain — parallel experiment harnesses ({!Ntcu_std.Parallel})
    must give each run its own engine. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. [0.] before any event has fired. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t +. delay].
    @raise Invalid_argument if [delay < 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute time [time].
    @raise Invalid_argument if [time] is in the past. *)

val schedule_batch : t -> (float * (unit -> unit)) list -> unit
(** [schedule_batch t events] schedules every [(time, thunk)] pair at once,
    equivalent to calling {!schedule_at} on them left to right but heapifying
    in O(pending + n) ({!Ntcu_std.Pqueue.add_list}). Use it to seed large
    event populations — e.g. tens of thousands of staggered joins — where
    per-event sifts would cost O(n log n).
    @raise Invalid_argument if any time is in the past (no event is then
    scheduled). *)

type handle
(** A cancellable timer (used by the retransmission layer). *)

val schedule_cancellable : t -> delay:float -> (unit -> unit) -> handle
(** Like {!schedule}, but the event can be revoked with {!cancel}. Deletion
    is eager: a cancelled event is removed from the queue immediately (it no
    longer counts towards {!pending} and is never popped). The queue's
    tie-break is a total order over scheduling time, so cancellation never
    perturbs the firing order or timestamps of the surviving events — which
    preserves deterministic replay.
    @raise Invalid_argument if [delay < 0.]. *)

val cancel : t -> handle -> unit
(** Revoke a timer. Idempotent; a no-op if the event already fired. *)

val cancelled : handle -> bool

val pending : t -> int
(** Number of events not yet fired. Cancelled timers are excluded: a network
    whose only outstanding events were cancelled is quiescent. *)

val events_processed : t -> int
(** Number of events fired so far. Cancelled timers never fire and are not
    counted. *)

val events_cancelled : t -> int
(** Number of timers that were cancelled while still queued (diagnostics for
    the retransmission layer). *)

(** {1 Timer-leak debugging}

    {!cancel} removes events from the indexed pqueue eagerly; if that removal
    ever went wrong (index drift between heap and handle), a steady-state run
    would multiply the leak by hours of virtual time — the queue would either
    fire a cancelled event or never drain. Behind this debug flag the engine
    tracks every cancellable handle and can prove the invariant "no cancelled
    timer remains queued". *)

val set_debug_timers : t -> bool -> unit
(** Enable (or disable, clearing the registry) cancellable-timer tracking.
    Off by default: tracking costs a registry entry per reliable message. *)

val assert_no_timer_leaks : t -> unit
(** No-op unless {!set_debug_timers} is on. Checks every tracked handle and
    prunes those that left the queue; also runs automatically when {!run}
    drains the queue.
    @raise Failure if a cancelled timer is still in the queue. *)

val debug_tracked_timers : t -> int
(** Number of handles currently tracked (test hook; [0] when tracking is
    off or after a drain-and-check pruned everything). *)

val set_observer : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook called after every fired event, with the clock
    already advanced to the event's timestamp. Invariant monitors attach here
    to watch a run mid-flight (e.g. the schedule-exploration harness checking
    per-step protocol invariants). The observer must not mutate the engine;
    scheduling new events from inside it would perturb the very schedule
    being observed. *)

val step : t -> bool
(** Fire the next event. Returns [false] when the queue is empty. *)

val run : ?max_events:int -> t -> unit
(** Fire events until the queue is empty.
    @raise Failure if more than [max_events] fire (default [100_000_000]),
    which indicates a protocol livelock rather than a long run. *)

val run_until : t -> time:float -> unit
(** Fire all events with timestamp [<= time], then set the clock to [time]. *)
