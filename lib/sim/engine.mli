(** Deterministic discrete-event simulation engine.

    Events are thunks scheduled at a virtual time. Events with equal
    timestamps fire in scheduling order, so a run is a pure function of the
    initial schedule and the seeds used by the callers. This replaces the
    authors' (unpublished) event-driven simulator. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. [0.] before any event has fired. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t +. delay].
    @raise Invalid_argument if [delay < 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** [schedule_at t ~time f] runs [f] at absolute time [time].
    @raise Invalid_argument if [time] is in the past. *)

type handle
(** A cancellable timer (used by the retransmission layer). *)

val schedule_cancellable : t -> delay:float -> (unit -> unit) -> handle
(** Like {!schedule}, but the event can be revoked with {!cancel}. Deletion
    is lazy: a cancelled event keeps its slot in the queue (so it still counts
    towards {!pending} and, when its time comes, is popped as a no-op) —
    cancellation therefore never perturbs the firing order of other events,
    which preserves deterministic replay.
    @raise Invalid_argument if [delay < 0.]. *)

val cancel : t -> handle -> unit
(** Revoke a timer. Idempotent; a no-op if the event already fired. *)

val cancelled : handle -> bool

val pending : t -> int
(** Number of events not yet fired (including lazily-cancelled timers that
    have not yet been popped). *)

val events_processed : t -> int

val step : t -> bool
(** Fire the next event. Returns [false] when the queue is empty. *)

val run : ?max_events:int -> t -> unit
(** Fire events until the queue is empty.
    @raise Failure if more than [max_events] fire (default [100_000_000]),
    which indicates a protocol livelock rather than a long run. *)

val run_until : t -> time:float -> unit
(** Fire all events with timestamp [<= time], then set the clock to [time]. *)
