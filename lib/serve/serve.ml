module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Stats = Ntcu_std.Stats
module Parallel = Ntcu_std.Parallel
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Directory = Ntcu_routing.Directory
module Route = Ntcu_routing.Route
module Zipf = Ntcu_churn.Zipf
module Churn = Ntcu_churn.Churn
module Workload = Ntcu_harness.Workload
module Json = Ntcu_harness.Report.Json
module Arrivals = Ntcu_sim.Arrivals
module Endhosts = Ntcu_topology.Endhosts
module Transit_stub = Ntcu_topology.Transit_stub

(* ---- Configuration ----------------------------------------------------- *)

type config = {
  b : int;
  d : int;
  n : int;
  objects : int;
  replicas : int;
  zipf_s : float;
  lookups : int;
  cache : int;
  incremental : bool;
  serve_every : float;
  lookups_per_tick : int;
  seed : int;
}

let default =
  {
    b = 16;
    d = 8;
    n = 500;
    objects = 10_000;
    replicas = 3;
    zipf_s = 1.0;
    lookups = 20_000;
    cache = 4_096;
    incremental = true;
    serve_every = 30_000.;
    lookups_per_tick = 64;
    seed = 1;
  }

let smoke =
  {
    default with
    n = 60;
    objects = 400;
    replicas = 2;
    lookups = 2_000;
    cache = 256;
    serve_every = 10_000.;
    lookups_per_tick = 16;
  }

let validate cfg =
  if cfg.n < 2 then invalid_arg "Serve: n must be >= 2";
  if cfg.objects < 1 then invalid_arg "Serve: objects must be >= 1";
  if cfg.replicas < 1 || cfg.replicas > cfg.n then
    invalid_arg "Serve: replicas must be in [1, n]";
  if cfg.lookups < 1 then invalid_arg "Serve: lookups must be >= 1";
  if cfg.cache < 0 then invalid_arg "Serve: cache must be >= 0";
  if cfg.serve_every <= 0. then invalid_arg "Serve: serve_every must be positive";
  if cfg.lookups_per_tick < 1 then invalid_arg "Serve: lookups_per_tick must be >= 1"

(* ---- Static serving run ------------------------------------------------ *)

type summary = {
  s_cache_capacity : int;
  s_members : int;
  s_published : int;  (* (object, replica) publications installed *)
  s_publish_hops : int;
  s_lookups : int;
  s_complete : int;  (* lookups that returned exactly the full replica set *)
  s_depth_mean : float;
  s_depth_max : int;
  s_stretch_mean : float;
  s_stretch_p99 : float;
  s_stretch_samples : int;
  s_latency_mean : float;
  s_latency_p50 : float;
  s_latency_p99 : float;
  s_lookups_per_s : float;
  s_load_mean : float;
  s_load_max : int;
  s_cache : Directory.cache_stats;
}

(* The serving latency of one lookup: walk the surrogate path to the first
   pointer, then fetch from the replica nearest that pointer node (the copy
   the pointer redirects to — PRR's access-cost model, as in
   examples/object_location.ml). On a cache hit the walk is local and the
   client fetches its nearest known copy directly. *)
let access_cost ~dist ~client (r : Directory.locate_result) =
  let prefix =
    if r.Directory.cached then [ client ]
    else List.filteri (fun i _ -> i <= r.Directory.first_depth) r.Directory.path
  in
  let walk = Route.path_cost ~dist prefix in
  let fetch =
    List.fold_left
      (fun acc s -> Float.min acc (dist r.Directory.first_node s))
      Float.infinity r.Directory.first_storers
  in
  if Float.is_finite fetch then walk +. fetch else walk

let run_static cfg =
  validate cfg;
  let p = Params.make ~b:cfg.b ~d:cfg.d in
  let rng = Rng.create cfg.seed in
  let members = Workload.distinct_ids rng p ~n:cfg.n in
  let net = Network.create p in
  Network.seed_consistent net ~seed:(cfg.seed + 1) members;
  let topo = Transit_stub.generate ~seed:(cfg.seed + 2) Transit_stub.default_config in
  let hosts = Endhosts.attach ~seed:(cfg.seed + 3) topo ~n:cfg.n in
  let host_index = Id.Tbl.create cfg.n in
  List.iteri (fun i id -> Id.Tbl.replace host_index id i) members;
  let dist a b =
    Endhosts.distance hosts (Id.Tbl.find host_index a) (Id.Tbl.find host_index b)
  in
  let lookup id = Option.map Node.table (Network.node net id) in
  let dir = Directory.create ~cache:cfg.cache ~lookup () in
  let objects =
    Array.of_list
      (Workload.distinct_ids ~avoid:(Id.Set.of_list members) rng p ~n:cfg.objects)
  in
  let member_arr = Array.of_list members in
  (* Replica placement: [replicas] distinct storers per object. *)
  let storer_rng = Rng.create (cfg.seed + 4) in
  let publish_hops = ref 0 in
  let published = ref 0 in
  let replica_sets =
    Array.map
      (fun obj ->
        let idx = Rng.sample_without_replacement storer_rng cfg.replicas cfg.n in
        let storers =
          List.sort Id.compare (List.map (fun i -> member_arr.(i)) (Array.to_list idx))
        in
        List.iter
          (fun storer ->
            match Directory.publish dir ~storer obj with
            | Ok h ->
              publish_hops := !publish_hops + h;
              incr published
            | Error e ->
              (* Cannot happen on a consistent network (P1). *)
              Fmt.invalid_arg "Serve: publish failed: %a" Route.pp_error e)
          storers;
        storers)
      objects
  in
  (* Zipf lookup traffic from random clients. *)
  let zipf = Zipf.create ~s:cfg.zipf_s ~n:cfg.objects in
  let lookup_rng = Rng.create (cfg.seed + 5) in
  let depths = Array.make cfg.lookups 0. in
  let latencies = Array.make cfg.lookups 0. in
  let stretches = ref [] in
  let complete = ref 0 in
  let depth_max = ref 0 in
  let clients_clock = Id.Tbl.create cfg.n in
  for i = 0 to cfg.lookups - 1 do
    let rank = Zipf.sample zipf lookup_rng in
    let obj = objects.(rank) in
    let client = Rng.pick lookup_rng member_arr in
    match Directory.locate dir ~client obj with
    | Error e -> Fmt.invalid_arg "Serve: lookup failed: %a" Route.pp_error e
    | Ok r ->
      let truth = replica_sets.(rank) in
      if List.equal Id.equal r.Directory.all_storers truth then incr complete;
      depths.(i) <- float_of_int r.Directory.first_depth;
      if r.Directory.first_depth > !depth_max then depth_max := r.Directory.first_depth;
      let cost = access_cost ~dist ~client r in
      latencies.(i) <- cost;
      let direct =
        List.fold_left (fun acc s -> Float.min acc (dist client s)) Float.infinity truth
      in
      if direct > 0. then stretches := (cost /. direct) :: !stretches;
      let sofar = try Id.Tbl.find clients_clock client with Not_found -> 0. in
      Id.Tbl.replace clients_clock client (sofar +. cost)
  done;
  (* Virtual throughput: clients issue their lookups serially and in parallel
     with each other, so the makespan is the busiest client's serial time.
     No wall clock is involved; the figure is a pure function of the seed. *)
  let makespan =
    (* Max over clients is order-independent. *)
    (Id.Tbl.fold [@ntcu.allow "D002"])
      (fun _client t acc -> Float.max t acc)
      clients_clock 0.
  in
  let lookups_per_s =
    if makespan > 0. then float_of_int cfg.lookups /. (makespan /. 1000.) else 0.
  in
  let loads =
    Array.map
      (fun id ->
        List.fold_left
          (fun acc (_obj, storers) -> acc + List.length storers)
          0 (Directory.pointers_at dir id))
      member_arr
  in
  let load_max = Array.fold_left max 0 loads in
  let stretch_arr = Array.of_list !stretches in
  {
    s_cache_capacity = cfg.cache;
    s_members = cfg.n;
    s_published = !published;
    s_publish_hops = !publish_hops;
    s_lookups = cfg.lookups;
    s_complete = !complete;
    s_depth_mean = Stats.mean depths;
    s_depth_max = !depth_max;
    s_stretch_mean = (if Array.length stretch_arr = 0 then 0. else Stats.mean stretch_arr);
    s_stretch_p99 =
      (if Array.length stretch_arr = 0 then 0. else Stats.percentile stretch_arr 99.);
    s_stretch_samples = Array.length stretch_arr;
    s_latency_mean = Stats.mean latencies;
    s_latency_p50 = Stats.percentile latencies 50.;
    s_latency_p99 = Stats.percentile latencies 99.;
    s_lookups_per_s = lookups_per_s;
    s_load_mean = Stats.mean (Stats.of_ints loads);
    s_load_max = load_max;
    s_cache = Directory.cache_stats dir;
  }

(* ---- Serving under churn ----------------------------------------------- *)

type tick = {
  tk_t : float;
  tk_members : int;
  tk_live_objects : int;  (* objects with at least one surviving replica *)
  tk_lookups : int;
  tk_resolved : int;  (* lookups that found at least one surviving replica *)
  tk_found : int;  (* lookups that found every surviving replica *)
  tk_skipped : int;  (* draws whose object had no surviving replica *)
  tk_rereplicated : int;
  tk_maintain : Directory.maintain_stats;
}

type churn_run = {
  sc_config : config;
  sc_churn : Churn.result;
  sc_ticks : tick list;
  sc_lookups : int;
  sc_resolved : int;
  sc_resolution : float;  (* found >= 1 surviving replica: lookup success *)
  sc_tail_resolution : float;  (* pooled over the second half of the ticks *)
  sc_found : int;
  sc_success : float;  (* found the complete surviving replica set *)
  sc_tail_success : float;
  sc_rereplicated : int;
  sc_republished : int;
  sc_dropped : int;
  sc_publish_hops : int;
  sc_revalidated : int;
  sc_maintain_errors : int;
  sc_lost_objects : int;  (* objects with no surviving replica at the end *)
  sc_cache : Directory.cache_stats;
}

let under_churn cfg (churn_cfg : Churn.config) =
  validate cfg;
  if churn_cfg.Churn.duration <= cfg.serve_every then
    invalid_arg "Serve: churn duration must exceed serve_every";
  let st = Churn.prepare churn_cfg in
  let net = Churn.net st in
  let engine = Network.engine net in
  let p = Params.make ~b:churn_cfg.Churn.b ~d:churn_cfg.Churn.d in
  (* Members are live, fully joined nodes; everyone else is invisible to the
     directory (departed hosts keep no reachable pointers). *)
  let lookup id =
    if Network.is_failed net id then None
    else
      match Network.node net id with
      | Some node when Node.status_equal (Node.status node) Node.In_system ->
        Some (Node.table node)
      | Some _ | None -> None
  in
  let members () = List.filter (fun id -> Option.is_some (lookup id)) (Network.live_ids net) in
  let dir = Directory.create ~cache:cfg.cache ~lookup () in
  let obj_rng = Rng.create (cfg.seed + 10) in
  let initial = Churn.initial st in
  let objects =
    Array.of_list
      (Workload.distinct_ids ~avoid:(Id.Set.of_list initial) obj_rng p ~n:cfg.objects)
  in
  (* Ground-truth replica map, pruned and re-replicated at every tick. *)
  let reps = Array.make (Array.length objects) [] in
  let serve_rng = Rng.create (cfg.seed + 11) in
  let initial_arr = Array.of_list initial in
  let n0 = Array.length initial_arr in
  Array.iteri
    (fun i obj ->
      let k = min cfg.replicas n0 in
      let idx = Rng.sample_without_replacement serve_rng k n0 in
      let storers =
        List.sort Id.compare (List.map (fun j -> initial_arr.(j)) (Array.to_list idx))
      in
      let ok =
        List.filter
          (fun storer ->
            match Directory.publish dir ~storer obj with Ok _ -> true | Error _ -> false)
          storers
      in
      reps.(i) <- ok)
    objects;
  let zipf = Zipf.create ~s:cfg.zipf_s ~n:cfg.objects in
  let ticks = ref [] in
  let rereplicate obj_i member_arr =
    (* Refill the replica set from live members; draws are bounded so a
       near-empty network cannot spin. *)
    let added = ref 0 in
    let missing = cfg.replicas - List.length reps.(obj_i) in
    let attempts = ref (8 * missing) in
    while List.length reps.(obj_i) < cfg.replicas && !attempts > 0 do
      decr attempts;
      let candidate = Rng.pick serve_rng member_arr in
      if not (List.exists (Id.equal candidate) reps.(obj_i)) then begin
        match Directory.publish dir ~storer:candidate objects.(obj_i) with
        | Ok _ ->
          reps.(obj_i) <- List.sort Id.compare (candidate :: reps.(obj_i));
          incr added
        | Error _ -> ()
      end
    done;
    !added
  in
  let tick ~now =
    let mstats = Directory.maintain ~incremental:cfg.incremental dir in
    let member_list = members () in
    let member_arr = Array.of_list member_list in
    let n_members = Array.length member_arr in
    let live_objects = ref 0 in
    let rereplicated = ref 0 in
    Array.iteri
      (fun i _obj ->
        let survivors = List.filter (fun s -> Option.is_some (lookup s)) reps.(i) in
        reps.(i) <- survivors;
        if n_members > cfg.replicas && List.length survivors < cfg.replicas then
          rereplicated := !rereplicated + rereplicate i member_arr;
        if not (List.is_empty reps.(i)) then incr live_objects)
      objects;
    let issued = ref 0 in
    let resolved = ref 0 in
    let found = ref 0 in
    let skipped = ref 0 in
    if n_members > 0 then
      for _ = 1 to cfg.lookups_per_tick do
        let rank = Zipf.sample zipf serve_rng in
        let survivors = reps.(rank) in
        if List.is_empty survivors then incr skipped
        else begin
          let client = Rng.pick serve_rng member_arr in
          incr issued;
          match Directory.locate dir ~client objects.(rank) with
          | Ok r ->
            let hit s = List.exists (Id.equal s) r.Directory.all_storers in
            if List.exists hit survivors then incr resolved;
            if List.for_all hit survivors then incr found
          | Error _ -> ()
        end
      done;
    ticks :=
      {
        tk_t = now;
        tk_members = n_members;
        tk_live_objects = !live_objects;
        tk_lookups = !issued;
        tk_resolved = !resolved;
        tk_found = !found;
        tk_skipped = !skipped;
        tk_rereplicated = !rereplicated;
        tk_maintain = mstats;
      }
      :: !ticks
  in
  (* Strictly inside the churn window: the k-th tick fires at k*serve_every,
     the last one below [duration] (the churn stop event must win at the
     boundary). *)
  let count =
    max 0 (int_of_float (Float.ceil (churn_cfg.Churn.duration /. cfg.serve_every)) - 1)
  in
  if count > 0 then
    ignore
      (Arrivals.start engine ~first:cfg.serve_every
         ~next:(Arrivals.take (count - 1) (Arrivals.every cfg.serve_every))
         (fun ~now -> tick ~now)
        : Arrivals.t);
  let churn_result = Churn.finish st in
  let ticks = List.rev !ticks in
  let n_ticks = List.length ticks in
  let pool_rate f ts =
    let issued = List.fold_left (fun acc tk -> acc + tk.tk_lookups) 0 ts in
    let hits = List.fold_left (fun acc tk -> acc + f tk) 0 ts in
    (issued, hits, if issued = 0 then 1. else float_of_int hits /. float_of_int issued)
  in
  let tail = List.filteri (fun i _ -> i >= n_ticks / 2) ticks in
  let issued, resolved, resolution = pool_rate (fun tk -> tk.tk_resolved) ticks in
  let _, _, tail_resolution = pool_rate (fun tk -> tk.tk_resolved) tail in
  let _, found, success = pool_rate (fun tk -> tk.tk_found) ticks in
  let _, _, tail_success = pool_rate (fun tk -> tk.tk_found) tail in
  let lost =
    Array.fold_left (fun acc survivors -> if List.is_empty survivors then acc + 1 else acc) 0 reps
  in
  let sum f = List.fold_left (fun acc tk -> acc + f tk) 0 ticks in
  {
    sc_config = cfg;
    sc_churn = churn_result;
    sc_ticks = ticks;
    sc_lookups = issued;
    sc_resolved = resolved;
    sc_resolution = resolution;
    sc_tail_resolution = tail_resolution;
    sc_found = found;
    sc_success = success;
    sc_tail_success = tail_success;
    sc_rereplicated = sum (fun tk -> tk.tk_rereplicated);
    sc_republished = sum (fun tk -> tk.tk_maintain.Directory.republished);
    sc_dropped = sum (fun tk -> tk.tk_maintain.Directory.dropped);
    sc_publish_hops = sum (fun tk -> tk.tk_maintain.Directory.publish_hops);
    sc_revalidated = sum (fun tk -> tk.tk_maintain.Directory.revalidated);
    sc_maintain_errors = sum (fun tk -> tk.tk_maintain.Directory.errors);
    sc_lost_objects = lost;
    sc_cache = Directory.cache_stats dir;
  }

(* ---- Whole-bench fan-out ----------------------------------------------- *)

type ablation = { nocache : summary; cached : summary }

type task_result = R_static of summary | R_churn of churn_run

let run_all pool cfg churn_cfg =
  let tasks = [ `Static { cfg with cache = 0 }; `Static cfg; `Churn (cfg, churn_cfg) ] in
  let results =
    Parallel.map pool
      (function
        | `Static c -> R_static (run_static c)
        | `Churn (c, cc) -> R_churn (under_churn c cc))
      tasks
  in
  match results with
  | [ R_static nocache; R_static cached; R_churn churn ] -> ({ nocache; cached }, churn)
  | _ -> assert false

(* ---- Claims ------------------------------------------------------------ *)

let static_ok s = s.s_lookups > 0 && s.s_complete = s.s_lookups

let cache_improves ~nocache ~cached =
  cached.s_depth_mean < nocache.s_depth_mean

let churn_ok r =
  r.sc_lookups > 0 && r.sc_tail_resolution >= 0.99
  && Churn.ok ~claim:Ntcu_harness.Experiment.Best_effort r.sc_churn

let ok ?(smoke = false) cfg (abl : ablation) churn =
  static_ok abl.nocache && static_ok abl.cached
  && (cfg.cache = 0 || cache_improves ~nocache:abl.nocache ~cached:abl.cached)
  (* The smoke churn config deliberately churns past its predicted repair
     tolerance (see Churn.smoke), so only the default scale claims the SLO;
     smoke still requires traffic and a healthy Best_effort churn side. *)
  && (if smoke then
        churn.sc_lookups > 0
        && Churn.ok ~claim:Ntcu_harness.Experiment.Best_effort churn.sc_churn
      else churn_ok churn)

(* ---- Reporting --------------------------------------------------------- *)

let config_json cfg =
  Json.Obj
    [
      ("b", Json.Int cfg.b);
      ("d", Json.Int cfg.d);
      ("n", Json.Int cfg.n);
      ("objects", Json.Int cfg.objects);
      ("replicas", Json.Int cfg.replicas);
      ("zipf_s", Json.Float cfg.zipf_s);
      ("lookups", Json.Int cfg.lookups);
      ("cache", Json.Int cfg.cache);
      ("incremental", Json.Bool cfg.incremental);
      ("serve_every", Json.Float cfg.serve_every);
      ("lookups_per_tick", Json.Int cfg.lookups_per_tick);
      ("seed", Json.Int cfg.seed);
    ]

let cache_stats_json (c : Directory.cache_stats) =
  Json.Obj
    [
      ("hits", Json.Int c.Directory.hits);
      ("misses", Json.Int c.Directory.misses);
      ("evictions", Json.Int c.Directory.evictions);
      ("invalidations", Json.Int c.Directory.invalidations);
      ("entries", Json.Int c.Directory.entries);
      ("capacity", Json.Int c.Directory.capacity);
    ]

let summary_json s =
  Json.Obj
    [
      ("cache_capacity", Json.Int s.s_cache_capacity);
      ("members", Json.Int s.s_members);
      ("published", Json.Int s.s_published);
      ("publish_hops", Json.Int s.s_publish_hops);
      ("lookups", Json.Int s.s_lookups);
      ("complete", Json.Int s.s_complete);
      ("depth_mean", Json.Float s.s_depth_mean);
      ("depth_max", Json.Int s.s_depth_max);
      ("stretch_mean", Json.Float s.s_stretch_mean);
      ("stretch_p99", Json.Float s.s_stretch_p99);
      ("stretch_samples", Json.Int s.s_stretch_samples);
      ("latency_mean_ms", Json.Float s.s_latency_mean);
      ("latency_p50_ms", Json.Float s.s_latency_p50);
      ("latency_p99_ms", Json.Float s.s_latency_p99);
      ("lookups_per_s", Json.Float s.s_lookups_per_s);
      ("load_mean", Json.Float s.s_load_mean);
      ("load_max", Json.Int s.s_load_max);
      ("cache", cache_stats_json s.s_cache);
    ]

let maintain_json (m : Directory.maintain_stats) =
  Json.Obj
    [
      ("objects", Json.Int m.Directory.objects);
      ("republished", Json.Int m.Directory.republished);
      ("dropped", Json.Int m.Directory.dropped);
      ("publish_hops", Json.Int m.Directory.publish_hops);
      ("revalidated", Json.Int m.Directory.revalidated);
      ("errors", Json.Int m.Directory.errors);
    ]

let tick_json tk =
  Json.Obj
    [
      ("t", Json.Float tk.tk_t);
      ("members", Json.Int tk.tk_members);
      ("live_objects", Json.Int tk.tk_live_objects);
      ("lookups", Json.Int tk.tk_lookups);
      ("resolved", Json.Int tk.tk_resolved);
      ("found", Json.Int tk.tk_found);
      ("skipped", Json.Int tk.tk_skipped);
      ("rereplicated", Json.Int tk.tk_rereplicated);
      ("maintain", maintain_json tk.tk_maintain);
    ]

let churn_run_json r =
  Json.Obj
    [
      ("churn_config", Churn.config_json r.sc_churn.Churn.config);
      ("series", Json.List (List.map tick_json r.sc_ticks));
      ( "summary",
        Json.Obj
          [
            ("ticks", Json.Int (List.length r.sc_ticks));
            ("lookups", Json.Int r.sc_lookups);
            ("resolved", Json.Int r.sc_resolved);
            ("resolution", Json.Float r.sc_resolution);
            ("tail_resolution", Json.Float r.sc_tail_resolution);
            ("found", Json.Int r.sc_found);
            ("success", Json.Float r.sc_success);
            ("tail_success", Json.Float r.sc_tail_success);
            ("rereplicated", Json.Int r.sc_rereplicated);
            ("republished", Json.Int r.sc_republished);
            ("dropped", Json.Int r.sc_dropped);
            ("publish_hops", Json.Int r.sc_publish_hops);
            ("revalidated", Json.Int r.sc_revalidated);
            ("maintain_errors", Json.Int r.sc_maintain_errors);
            ("lost_objects", Json.Int r.sc_lost_objects);
            ("cache", cache_stats_json r.sc_cache);
            ("churn", Churn.summary_json r.sc_churn.Churn.summary);
          ] );
    ]

let bench_json cfg (abl : ablation) churn =
  Json.Obj
    [
      ("schema", Json.String "ntcu-bench-serve/1");
      ("config", config_json cfg);
      ( "static",
        Json.Obj
          [ ("nocache", summary_json abl.nocache); ("cache", summary_json abl.cached) ] );
      ("churn", churn_run_json churn);
    ]

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>members %d, %d publications (%d hops)@,\
     lookups %d: complete %d, depth mean %.2f max %d@,\
     latency ms: mean %.1f p50 %.1f p99 %.1f; stretch mean %.2f p99 %.2f@,\
     throughput %.0f lookups/s (virtual); load mean %.1f max %d@,\
     cache: capacity %d, %d hits / %d misses, %d evictions@]"
    s.s_members s.s_published s.s_publish_hops s.s_lookups s.s_complete s.s_depth_mean
    s.s_depth_max s.s_latency_mean s.s_latency_p50 s.s_latency_p99 s.s_stretch_mean
    s.s_stretch_p99 s.s_lookups_per_s s.s_load_mean s.s_load_max s.s_cache_capacity
    s.s_cache.Directory.hits s.s_cache.Directory.misses s.s_cache.Directory.evictions

let pp_churn_run ppf r =
  Fmt.pf ppf
    "@[<v>%d ticks, %d lookups: resolved %.4f (tail %.4f), complete %.4f (tail %.4f)@,\
     maintenance: %d republished, %d revalidated, %d dropped, %d hops, %d errors@,\
     re-replications %d; lost objects %d@]"
    (List.length r.sc_ticks) r.sc_lookups r.sc_resolution r.sc_tail_resolution r.sc_success
    r.sc_tail_success r.sc_republished r.sc_revalidated r.sc_dropped r.sc_publish_hops
    r.sc_maintain_errors r.sc_rereplicated r.sc_lost_objects
