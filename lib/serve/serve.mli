(** Heavy-traffic object-location serving.

    The directory layer ({!Ntcu_routing.Directory}) reproduces PRR's
    publish/lookup semantics; this driver exercises it the way a deployment
    would: populate a network with many objects whose popularity follows a
    Zipf law ({!Ntcu_churn.Zipf}), drive sustained lookup traffic from every
    live node, and measure what the DHT-serving literature measures (ReCord,
    the generalized-hypercubes study — PAPERS.md): lookup throughput,
    pointer-hit depth (P2), stretch against the direct metric distance,
    per-node directory load (P3) and tail latency percentiles.

    Two tunable directory optimizations are ablated: the LRU hop-pointer
    cache on the query path and incremental [maintain] (both off by default
    at the {!Ntcu_routing.Directory} API, toggled from {!config}).

    Runs come in two modes: a {e static} run over a consistent network built
    directly ({!run_static}) and a {e churn-composed} run ({!under_churn})
    that installs a periodic serve tick on the {!Ntcu_churn.Churn} engine —
    maintain the directory, re-replicate under-replicated objects, then
    issue Zipf lookups — while the open system churns underneath.

    Everything is deterministic in [config.seed]; {!run_all} fans the
    ablation and the churn run out over {!Ntcu_std.Parallel}, so the bench
    artifact is byte-identical at any [--jobs] width. *)

type config = {
  b : int;
  d : int;
  n : int;  (** Static-run network size. *)
  objects : int;
  replicas : int;  (** Storers per object. *)
  zipf_s : float;  (** Popularity exponent; 0 = uniform. *)
  lookups : int;  (** Static-run total lookups. *)
  cache : int;  (** LRU hop-pointer cache capacity; 0 disables. *)
  incremental : bool;  (** Incremental directory maintenance under churn. *)
  serve_every : float;  (** Churn mode: virtual ms between serve ticks. *)
  lookups_per_tick : int;
  seed : int;
}

val default : config
(** 500 nodes, 10k objects x 3 replicas, [s = 1] Zipf, 20k lookups, 4096-entry
    cache, incremental maintenance, 30 s serve ticks of 64 lookups. *)

val smoke : config
(** CI scale: 60 nodes, 400 objects x 2 replicas, 2k lookups, 256-entry
    cache, 10 s serve ticks of 16 lookups. *)

(** {1 Static serving} *)

type summary = {
  s_cache_capacity : int;
  s_members : int;
  s_published : int;  (** (object, replica) publications installed. *)
  s_publish_hops : int;
  s_lookups : int;
  s_complete : int;
      (** Lookups whose {!Ntcu_routing.Directory.locate} union equalled the
          full replica set — the correctness count, [= s_lookups] on a
          consistent network whatever the cache does. *)
  s_depth_mean : float;  (** Mean pointer-hit depth (P2); cache hits are 0. *)
  s_depth_max : int;
  s_stretch_mean : float;
      (** Access cost (walk to the first pointer + fetch from the replica it
          redirects to) over the direct distance to the nearest replica;
          samples with zero direct distance are excluded. *)
  s_stretch_p99 : float;
  s_stretch_samples : int;
  s_latency_mean : float;  (** Access cost, virtual ms. *)
  s_latency_p50 : float;
  s_latency_p99 : float;
  s_lookups_per_s : float;
      (** Virtual throughput: total lookups over the busiest client's serial
          access time (clients run in parallel). No wall clock involved. *)
  s_load_mean : float;  (** Pointer entries per member (P3). *)
  s_load_max : int;
  s_cache : Ntcu_routing.Directory.cache_stats;
}

val run_static : config -> summary
(** Build a consistent [n]-node network directly
    ({!Ntcu_core.Network.seed_consistent}) over a transit-stub topology,
    publish [objects x replicas], then issue [lookups] Zipf-popular lookups
    from uniform random clients.
    @raise Invalid_argument on a malformed config, or if a publish or lookup
    fails — impossible on the consistent network this builds. *)

(** {1 Serving under churn} *)

type tick = {
  tk_t : float;  (** Virtual ms. *)
  tk_members : int;
  tk_live_objects : int;  (** Objects with >= 1 surviving replica. *)
  tk_lookups : int;  (** Lookups issued (skipped draws excluded). *)
  tk_resolved : int;  (** Lookups that found at least one surviving replica. *)
  tk_found : int;  (** Lookups that found every surviving replica. *)
  tk_skipped : int;  (** Draws whose object had no surviving replica. *)
  tk_rereplicated : int;  (** Replacement replicas published. *)
  tk_maintain : Ntcu_routing.Directory.maintain_stats;
}

type churn_run = {
  sc_config : config;
  sc_churn : Ntcu_churn.Churn.result;
  sc_ticks : tick list;
  sc_lookups : int;
  sc_resolved : int;
  sc_resolution : float;
      (** Fraction of lookups that found at least one surviving replica — the
          lookup-success metric of the DHT-serving literature. *)
  sc_tail_resolution : float;  (** Pooled over the second half of the ticks. *)
  sc_found : int;
  sc_success : float;
      (** Stricter completeness rate: the fraction whose {!locate} union
          covered {e every} surviving replica. Transient P1 disagreements
          while neighbor tables are mid-repair lower this without making
          the object unlocatable. *)
  sc_tail_success : float;
  sc_rereplicated : int;
  sc_republished : int;
  sc_dropped : int;
  sc_publish_hops : int;
  sc_revalidated : int;
  sc_maintain_errors : int;
  sc_lost_objects : int;  (** Objects with no surviving replica at the end. *)
  sc_cache : Ntcu_routing.Directory.cache_stats;
}

val under_churn : config -> Ntcu_churn.Churn.config -> churn_run
(** Compose the serving workload with the steady-state churn driver: prepare
    the churn run, publish [objects] from the initial members, then fire a
    serve tick every [serve_every] virtual ms strictly inside the churn
    window. Each tick runs directory maintenance (incremental or full, per
    {!config.incremental}), prunes departed storers from the ground-truth
    replica map, re-replicates under-replicated objects onto live members,
    and issues [lookups_per_tick] Zipf lookups; a lookup {e resolves} when it
    finds at least one surviving replica and is {e complete} when it finds
    every one. The ticks draw from their own RNGs
    and inject no messages, so the churn side of the run is byte-identical
    to an unserved run of the same seed.
    @raise Invalid_argument on a malformed config or if the churn window is
    shorter than [serve_every]. *)

(** {1 Fan-out, claims, reporting} *)

type ablation = { nocache : summary; cached : summary }

val run_all : Ntcu_std.Parallel.t -> config -> Ntcu_churn.Churn.config -> ablation * churn_run
(** The full bench: the static run with the cache off and on, plus the
    churn-composed run, fanned out over the pool in submission order
    (byte-identical results at any pool width). The [nocache] arm is
    [{cfg with cache = 0}]. *)

val static_ok : summary -> bool
(** Every lookup found the complete replica set. *)

val cache_improves : nocache:summary -> cached:summary -> bool
(** The cached arm's mean pointer-hit depth is strictly lower. *)

val churn_ok : churn_run -> bool
(** Tail lookup resolution >= 0.99 and the churn side held its Best_effort
    claim ({!Ntcu_churn.Churn.ok}). *)

val ok : ?smoke:bool -> config -> ablation -> churn_run -> bool
(** All of the above (cache improvement only required when [cache > 0]);
    the CLI's exit status and the bench claims. With [~smoke:true] the
    churn-side SLO is waived — the smoke churn config deliberately churns
    past its predicted repair tolerance, mirroring the churn-steady bench —
    though the churn run must still issue traffic and hold its Best_effort
    churn claim. *)

val config_json : config -> Ntcu_harness.Report.Json.t
val summary_json : summary -> Ntcu_harness.Report.Json.t
val churn_run_json : churn_run -> Ntcu_harness.Report.Json.t

val bench_json : config -> ablation -> churn_run -> Ntcu_harness.Report.Json.t
(** The [BENCH_serve.json] document, schema ["ntcu-bench-serve/1"]:
    [{schema; config; static = {nocache; cache}; churn}]. Deliberately
    contains no wall-clock or job-count fields, so serial and parallel runs
    emit byte-identical artifacts. *)

val pp_summary : summary Fmt.t
val pp_churn_run : churn_run Fmt.t
