module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Snapshot = Table.Snapshot
module Engine = Ntcu_sim.Engine
module Latency = Ntcu_sim.Latency
module Rng = Ntcu_std.Rng

type upstream = Up_node of Id.t | Up_joiner

type pending = { joiner : Id.t; upstream : upstream; mutable awaiting : int }

type bnode = {
  id : Id.t;
  table : Table.t;
  seed : bool;
  mutable pending : pending list;
  mutable peak_pending : int;
  mutable completed : bool; (* joiners: B_done received *)
  mutable copy_level : int;
  mutable copy_from : Id.t option;
}

type msg =
  | B_cp_rst of { level : int }
  | B_cp_rly of { table : Snapshot.t }
  | B_join_rst
  | B_announce of { joiner : Id.t; level : int }
  | B_ack of { joiner : Id.t }
  | B_info of { about : Id.t }
  | B_done

type message_counts = { copies : int; announces : int; acks : int; infos : int }

type t = {
  params : Ntcu_id.Params.t;
  engine : Engine.t;
  latency : Latency.t;
  nodes : bnode Id.Tbl.t;
  host_of : int Id.Tbl.t;
  mutable next_host : int;
  mutable order : Id.t list;
  mutable counts : message_counts;
  mutable pending_slots : int;
}

let create ?latency params =
  let latency = match latency with Some l -> l | None -> Latency.constant 1.0 in
  {
    params;
    engine = Engine.create ();
    latency;
    nodes = Id.Tbl.create 256;
    host_of = Id.Tbl.create 256;
    next_host = 0;
    order = [];
    counts = { copies = 0; announces = 0; acks = 0; infos = 0 };
    pending_slots = 0;
  }

let register t node =
  if Id.Tbl.mem t.nodes node.id then invalid_arg "Multicast_join: duplicate node";
  Id.Tbl.add t.nodes node.id node;
  Id.Tbl.add t.host_of node.id t.next_host;
  t.next_host <- t.next_host + 1;
  t.order <- node.id :: t.order

let find t id =
  match Id.Tbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Multicast_join: unknown node %a" Id.pp id)

let make_node t ~seed id =
  let node =
    {
      id;
      table = Table.create t.params ~owner:id;
      seed;
      pending = [];
      peak_pending = 0;
      completed = false;
      copy_level = 0;
      copy_from = None;
    }
  in
  if seed then Table.fill_self node.table S;
  node

let count_msg t msg =
  let c = t.counts in
  t.counts <-
    (match msg with
    | B_cp_rst _ | B_cp_rly _ -> { c with copies = c.copies + 1 }
    | B_join_rst | B_announce _ -> { c with announces = c.announces + 1 }
    | B_ack _ | B_done -> { c with acks = c.acks + 1 }
    | B_info _ -> { c with infos = c.infos + 1 })

let rec send t ~src ~dst msg =
  count_msg t msg;
  let hsrc = Id.Tbl.find t.host_of src and hdst = Id.Tbl.find t.host_of dst in
  let delay = Latency.sample t.latency ~src:hsrc ~dst:hdst in
  let delay = if delay <= 0. then 1e-6 else delay in
  Engine.schedule t.engine ~delay (fun () -> deliver t ~src ~dst msg)

(* Forward targets of the suffix-set multicast from [u] at [level]: the heads
   of each disjoint one-digit suffix extension, recursing through u's own
   digit locally (u covers its own sub-class itself). *)
and multicast_targets t u level =
  let p = t.params in
  let rec go level acc =
    if level >= p.d then acc
    else begin
      let acc = ref acc in
      for j = 0 to p.b - 1 do
        if j <> Id.digit u.id level then begin
          match Table.neighbor u.table ~level ~digit:j with
          | Some v when not (Id.equal v u.id) -> acc := (v, level + 1) :: !acc
          | Some _ | None -> ()
        end
      done;
      go (level + 1) !acc
    end
  in
  go level []

(* [u] handles the announcement of [joiner] for the suffix class at [level]:
   record the joiner where it belongs, tell the joiner about [u], fan out,
   and hold a pending entry until the subtree acknowledges. *)
and handle_announce t u ~joiner ~level ~upstream =
  let k = Id.csuf_len u.id joiner in
  let digit = Id.digit joiner k in
  (if Option.is_none (Table.neighbor u.table ~level:k ~digit) then
     Table.set u.table ~level:k ~digit joiner S);
  send t ~src:u.id ~dst:joiner (B_info { about = u.id });
  (* The entry just filled may alias the joiner into our own fan-out rows;
     never announce the joiner to itself. *)
  let targets =
    List.filter (fun (v, _) -> not (Id.equal v joiner)) (multicast_targets t u level)
  in
  if List.is_empty targets then ack_upstream t u ~joiner ~upstream
  else begin
    let entry = { joiner; upstream; awaiting = List.length targets } in
    u.pending <- entry :: u.pending;
    if u.seed then begin
      t.pending_slots <- t.pending_slots + 1;
      let live = List.length u.pending in
      if live > u.peak_pending then u.peak_pending <- live
    end;
    List.iter
      (fun (v, lvl) -> send t ~src:u.id ~dst:v (B_announce { joiner; level = lvl }))
      targets
  end

and ack_upstream t u ~joiner ~upstream =
  match upstream with
  | Up_node requester -> send t ~src:u.id ~dst:requester (B_ack { joiner })
  | Up_joiner -> send t ~src:u.id ~dst:joiner B_done

and handle_ack t u ~joiner =
  match List.find_opt (fun p -> Id.equal p.joiner joiner) u.pending with
  | None -> () (* stale ack; ignore *)
  | Some entry ->
    entry.awaiting <- entry.awaiting - 1;
    if entry.awaiting <= 0 then begin
      u.pending <- List.filter (fun p -> not (Id.equal p.joiner joiner)) u.pending;
      ack_upstream t u ~joiner ~upstream:entry.upstream
    end

and finish_copying t x ~surrogate =
  Table.fill_self x.table S;
  x.copy_from <- None;
  send t ~src:x.id ~dst:surrogate B_join_rst

and handle_cp_rly t x snapshot =
  let level = x.copy_level in
  Snapshot.iter snapshot (fun (c : Snapshot.cell) ->
      if c.level = level && not (Id.equal c.node x.id) then
        Table.set x.table ~level ~digit:c.digit c.node S);
  let own_digit = Id.digit x.id level in
  match Snapshot.find snapshot ~level ~digit:own_digit with
  | Some { node = next; _ } when not (Id.equal next x.id) ->
    x.copy_level <- level + 1;
    let from = x.copy_from in
    x.copy_from <- Some next;
    ignore from;
    send t ~src:x.id ~dst:next (B_cp_rst { level = level + 1 })
  | Some _ | None -> finish_copying t x ~surrogate:snapshot.owner

and deliver t ~src ~dst msg =
  let u = find t dst in
  match msg with
  | B_cp_rst { level = _ } ->
    send t ~src:dst ~dst:src (B_cp_rly { table = Snapshot.of_table u.table })
  | B_cp_rly { table } -> handle_cp_rly t u table
  | B_join_rst ->
    let level = Id.csuf_len u.id src in
    handle_announce t u ~joiner:src ~level ~upstream:Up_joiner
  | B_announce { joiner; level } ->
    handle_announce t u ~joiner ~level ~upstream:(Up_node src)
  | B_ack { joiner } -> handle_ack t u ~joiner
  | B_info { about } ->
    let k = Id.csuf_len u.id about in
    let digit = Id.digit about k in
    if Option.is_none (Table.neighbor u.table ~level:k ~digit) then
      Table.set u.table ~level:k ~digit about S
  | B_done -> u.completed <- true

let seed_consistent t ~seed ids =
  if List.is_empty ids then invalid_arg "Multicast_join.seed_consistent: empty node list";
  let rng = Rng.create seed in
  List.iter (fun id -> register t (make_node t ~seed:true id)) ids;
  let index = Ntcu_table.Suffix_index.of_ids ~params:t.params ids in
  List.iter
    (fun id ->
      let node = find t id in
      for level = 0 to t.params.d - 1 do
        for digit = 0 to t.params.b - 1 do
          if digit <> Id.digit id level then begin
            let suffix = Table.required_suffix node.table ~level ~digit in
            match Ntcu_table.Suffix_index.members index suffix with
            | [] -> ()
            | members ->
              let chosen = Rng.pick rng (Array.of_list members) in
              Table.set node.table ~level ~digit chosen S
          end
        done
      done)
    ids

let start_join t ?at ~id ~gateway () =
  let joiner = make_node t ~seed:false id in
  register t joiner;
  ignore (find t gateway);
  let time = match at with Some time -> time | None -> Engine.now t.engine in
  Engine.schedule_at t.engine ~time (fun () ->
      joiner.copy_level <- 0;
      joiner.copy_from <- Some gateway;
      send t ~src:id ~dst:gateway (B_cp_rst { level = 0 }))

let run ?max_events t = Engine.run ?max_events t.engine

let all_nodes t = List.rev_map (fun id -> find t id) t.order

let tables t = List.map (fun n -> n.table) (all_nodes t)

let check_consistent t = Ntcu_table.Check.violations (tables t)

let all_done t = List.for_all (fun n -> n.seed || n.completed) (all_nodes t)

let table t id = Option.map (fun n -> n.table) (Id.Tbl.find_opt t.nodes id)

let members t =
  List.filter_map
    (fun n -> if n.seed || n.completed then Some n.id else None)
    (all_nodes t)

let engine t = t.engine

let message_counts t = t.counts

let peak_pending_at_existing t =
  List.fold_left (fun acc n -> if n.seed then max acc n.peak_pending else acc) 0 (all_nodes t)

let total_pending_slots t = t.pending_slots
