(** Baseline comparator: a multicast-based join in the style of Tapestry /
    Hildrum et al. (paper, Section 1 and [5]).

    The joining node copies its table along a walk to its {e surrogate} (the
    node sharing the longest suffix), which then announces the joiner by a
    multicast over the notification set: each intermediate node forwards the
    announcement to the nodes extending the current suffix by one digit,
    keeps the joiner in a {e pending list} until all downstream
    acknowledgements arrive, and only then acknowledges upstream.

    This reproduces the design the paper argues against: "this approach has
    the disadvantage of requiring many existing nodes to store and process
    extra states as well as send and receive messages on behalf of joining
    nodes". The simplified baseline is correct for sequential joins; under
    concurrent {e dependent} joins it can and does produce inconsistent
    tables (no mutual discovery), which is exactly the failure mode the
    paper's protocol exists to prevent — the comparison bench measures both
    the state footprint and this inconsistency rate. *)

type t

type message_counts = {
  copies : int;  (** Table-copy requests and replies. *)
  announces : int;
  acks : int;
  infos : int;  (** Contacted node -> joiner notifications. *)
}

val create : ?latency:Ntcu_sim.Latency.t -> Ntcu_id.Params.t -> t

val seed_consistent : t -> seed:int -> Ntcu_id.Id.t list -> unit
(** Same seeding as [Ntcu_core.Network.seed_consistent]. *)

val start_join : t -> ?at:float -> id:Ntcu_id.Id.t -> gateway:Ntcu_id.Id.t -> unit -> unit

val run : ?max_events:int -> t -> unit

val tables : t -> Ntcu_table.Table.t list
val check_consistent : t -> Ntcu_table.Check.violation list
val all_done : t -> bool
(** Every joiner has completed (received its join-done signal). *)

val table : t -> Ntcu_id.Id.t -> Ntcu_table.Table.t option
(** The neighbor table of one node, for state-walk routing over the final
    network ([None] for unknown ids). *)

val members : t -> Ntcu_id.Id.t list
(** Seeds plus completed joiners, in registration order — the baseline's
    notion of in-system membership (it has no failure model). *)

val engine : t -> Ntcu_sim.Engine.t

val message_counts : t -> message_counts

val peak_pending_at_existing : t -> int
(** Maximum number of simultaneously pending joiner entries held by any
    pre-existing node — the extra join state the paper's protocol avoids. *)

val total_pending_slots : t -> int
(** Total pending-list insertions at existing nodes over the run. *)
