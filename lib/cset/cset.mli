(** C-set trees — the paper's conceptual foundation (Sections 3.3 and 5.1).

    When a set [W] of nodes with a common notification set [V_omega] joins,
    the queries from old nodes to new ones flow through chains of C-sets:
    [C_{l1.omega}] is the set of new nodes stored as [(k, l1)]-neighbors by
    members of [V_omega], [C_{l2 l1.omega}] the set stored by members of
    [C_{l1.omega}], and so on. The paper's consistency proof is an induction
    over this tree. C-set trees are "not implemented in any node"; we
    materialize them after a run to *verify* the conditions the proof
    requires. *)

type tree = {
  suffix : int array;  (** Associated suffix, index 0 = rightmost digit. *)
  members : Ntcu_id.Id.Set.t;
      (** For the template: [W_{suffix}], the joiners carrying the suffix.
          For a realized tree: the C-set contents per Definition 5.1. *)
  children : tree list;  (** Ordered by extending digit. *)
}

val noti_suffix : Ntcu_table.Suffix_index.t -> Ntcu_id.Id.t -> int array
(** [noti_suffix v_index x] is the suffix [omega] such that the notification
    set of [x] regarding [V] is [V_omega] (Definition 3.4): the longest prefix
    [x\[k-1..0\]] carried by some member of [V] while [x\[k..0\]] is carried
    by none. The empty array means the notification set is all of [V]. *)

val template : Ntcu_id.Params.t -> root:int array -> w:Ntcu_id.Id.t list -> tree
(** The tree template [C(V, W)] of Definition 3.9 for the joiners [w] whose
    notification suffix is [root]. Only members of [w] actually carrying
    [root] participate. *)

val realized :
  lookup:(Ntcu_id.Id.t -> Ntcu_table.Table.t option) ->
  v_root:Ntcu_id.Id.t list ->
  root:int array ->
  w:Ntcu_id.Id.t list ->
  tree
(** The realized tree [cset(V, W)] of Definition 5.1, read off the final
    neighbor tables: [v_root] must be the members of [V_{root}]. *)

val same_structure : tree -> tree -> bool
(** Equality of suffix structure, ignoring members. *)

val no_empty_cset : tree -> bool
(** No C-set below the root is empty (condition (1), second half). *)

val union_members : tree -> Ntcu_id.Id.Set.t
(** Union of all C-sets below (and including) the root. *)

(** {1 The three consistency conditions of Section 3.3} *)

val check_condition1 : template:tree -> realized:tree -> (unit, string) result
(** [cset(V,W)] has the same structure as [C(V,W)] and no empty C-set. *)

val check_condition2 :
  lookup:(Ntcu_id.Id.t -> Ntcu_table.Table.t option) ->
  v_root:Ntcu_id.Id.t list ->
  realized:tree ->
  (unit, string) result
(** Every member of [V_root] stores, for each child C-set, some node with
    that C-set's suffix. *)

val check_condition3 :
  lookup:(Ntcu_id.Id.t -> Ntcu_table.Table.t option) ->
  realized:tree ->
  w:Ntcu_id.Id.t list ->
  (unit, string) result
(** For every joiner [x], walking from the leaf C-set whose suffix is [x.ID]
    up to the root, [x] stores a node with the suffix of every sibling
    C-set. *)

val pp_tree : tree Fmt.t
(** ASCII rendering in the style of Figure 2. *)

(** {1 Join classification (Definitions 3.2–3.6, Lemma 5.5)} *)

type timing = Single | Sequential | Concurrent | Mixed

val pp_timing : timing Fmt.t

val classify_timing : (float * float) list -> timing
(** Classify joining periods [(t_begin, t_end)]: [Sequential] when no two
    periods overlap; [Concurrent] when every period overlaps another and the
    union of periods has no gap; [Mixed] otherwise. *)

val dependent :
  Ntcu_table.Suffix_index.t -> w:Ntcu_id.Id.t list -> Ntcu_id.Id.t -> Ntcu_id.Id.t -> bool
(** Definition 3.6 for a pair of joiners: their notification sets intersect,
    or some joiner's notification set contains both. (Notification sets are
    suffix sets, so intersection/containment reduce to the suffix-of
    relation.) *)

val dependency_groups :
  Ntcu_table.Suffix_index.t -> w:Ntcu_id.Id.t list -> Ntcu_id.Id.t list list
(** Partition the joiners as in the proof of Lemma 5.5: joins within a group
    are (transitively) dependent, joins across groups are independent. *)
