module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Suffix_index = Ntcu_table.Suffix_index

type tree = { suffix : int array; members : Id.Set.t; children : tree list }

(* suffix = x[len-1 .. 0]; extend to the left with digit l. *)
let extend suffix l =
  let len = Array.length suffix in
  Array.init (len + 1) (fun i -> if i = len then l else suffix.(i))

let is_suffix_of shorter longer =
  let ls = Array.length shorter in
  ls <= Array.length longer
  &&
  let rec go i = i >= ls || (shorter.(i) = longer.(i) && go (i + 1)) in
  go 0

let noti_suffix v_index x =
  let d = Id.length x in
  let rec longest len =
    if len >= d then len
    else if Suffix_index.mem v_index (Id.suffix x (len + 1)) then longest (len + 1)
    else len
  in
  Id.suffix x (longest 0)

let template (p : Ntcu_id.Params.t) ~root ~w =
  let w = List.filter (fun x -> Id.has_suffix x root) w in
  let rec build suffix members =
    let children =
      if Array.length suffix >= p.d then []
      else
        List.filter_map
          (fun l ->
            let ext = extend suffix l in
            let sub = List.filter (fun x -> Id.has_suffix x ext) members in
            if List.is_empty sub then None else Some (build ext sub))
          (List.init p.b Fun.id)
    in
    { suffix; members = Id.Set.of_list members; children }
  in
  build root w

let realized ~lookup ~v_root ~root ~w =
  let w = List.filter (fun x -> Id.has_suffix x root) w in
  (* C_{l . suffix} = members of W_{l . suffix} stored as (|suffix|, l)-
     neighbors by at least one member of the parent set. *)
  let stored_by parents ~level ~digit candidates =
    (* [u] may be [x] itself: a node's self-entries automatically fill it into
       descendant C-sets whose suffix is a suffix of its ID (Section 3.3). *)
    List.filter
      (fun x ->
        List.exists
          (fun u ->
            match lookup u with
            | None -> false
            | Some table -> begin
              match Table.neighbor table ~level ~digit with
              | Some y -> Id.equal y x
              | None -> false
            end)
          parents)
      candidates
  in
  let d = match w with x :: _ -> Id.length x | [] -> Array.length root in
  (* The digit range depends on params; recover b from the tables. *)
  let b =
    match v_root @ w with
    | [] -> invalid_arg "Cset.realized: empty network"
    | id :: _ -> begin
      match lookup id with
      | Some table -> (Table.params table).b
      | None -> invalid_arg "Cset.realized: no table for root member"
    end
  in
  let rec build suffix parents w_here =
    let len = Array.length suffix in
    let children =
      if len >= d then []
      else
        List.filter_map
          (fun l ->
            let ext = extend suffix l in
            let w_ext = List.filter (fun x -> Id.has_suffix x ext) w_here in
            if List.is_empty w_ext then None
            else begin
              let members = stored_by parents ~level:len ~digit:l w_ext in
              Some (build ext members w_ext)
            end)
          (List.init b Fun.id)
    in
    { suffix; members = Id.Set.of_list parents; children }
  in
  let children =
    let len = Array.length root in
    if len >= d then []
    else
      List.filter_map
        (fun l ->
          let ext = extend root l in
          let w_ext = List.filter (fun x -> Id.has_suffix x ext) w in
          if List.is_empty w_ext then None
          else begin
            let members = stored_by v_root ~level:len ~digit:l w_ext in
            Some (build ext members w_ext)
          end)
        (List.init b Fun.id)
  in
  { suffix = root; members = Id.Set.of_list v_root; children }

let rec same_structure a b =
  a.suffix = b.suffix
  && List.length a.children = List.length b.children
  && List.for_all2 same_structure a.children b.children

let rec no_empty_cset_below t =
  List.for_all
    (fun c -> (not (Id.Set.is_empty c.members)) && no_empty_cset_below c)
    t.children

let no_empty_cset t = no_empty_cset_below t

let rec union_members t =
  List.fold_left
    (fun acc c -> Id.Set.union acc (union_members c))
    t.members t.children

let pp_suffix_or_eps ppf suffix =
  if Array.length suffix = 0 then Fmt.string ppf "(root)"
  else Id.pp_suffix ppf suffix

let check_condition1 ~template ~realized =
  if not (same_structure template realized) then
    Error "realized C-set tree structure differs from template"
  else if not (no_empty_cset realized) then Error "realized C-set tree has an empty C-set"
  else Ok ()

let check_condition2 ~lookup ~v_root ~realized =
  let level = Array.length realized.suffix in
  let problems = ref [] in
  List.iter
    (fun u ->
      match lookup u with
      | None -> problems := Fmt.str "no table for %a" Id.pp u :: !problems
      | Some table ->
        List.iter
          (fun child ->
            let digit = child.suffix.(level) in
            match Table.neighbor table ~level ~digit with
            | Some y when Id.Set.mem y child.members -> ()
            | Some y ->
              problems :=
                Fmt.str "%a stores %a at (%d,%d), not a member of C-set %a" Id.pp u Id.pp
                  y level digit pp_suffix_or_eps child.suffix
                :: !problems
            | None ->
              problems :=
                Fmt.str "%a has empty (%d,%d)-entry for C-set %a" Id.pp u level digit
                  pp_suffix_or_eps child.suffix
                :: !problems)
          realized.children)
    v_root;
  match !problems with [] -> Ok () | p :: _ -> Error p

(* Path of tree nodes from the root to the leaf whose suffix matches x. *)
let path_to_leaf tree x =
  let rec go node acc =
    match List.find_opt (fun c -> Id.has_suffix x c.suffix) node.children with
    | Some child -> go child (node :: acc)
    | None -> node :: acc
  in
  go tree [] (* leaf first *)

let check_condition3 ~lookup ~realized ~w =
  let problems = ref [] in
  List.iter
    (fun x ->
      match lookup x with
      | None -> problems := Fmt.str "no table for joiner %a" Id.pp x :: !problems
      | Some table ->
        let path = path_to_leaf realized x in
        (* For each node on the path (leaf upward), its siblings are the other
           children of the next node in [path] (its parent). *)
        let rec walk = function
          | child :: (parent :: _ as rest) ->
            List.iter
              (fun sibling ->
                if sibling.suffix <> child.suffix then begin
                  let level = Array.length sibling.suffix - 1 in
                  let digit = sibling.suffix.(level) in
                  match Table.neighbor table ~level ~digit with
                  | Some y when Id.has_suffix y sibling.suffix -> ()
                  | Some y ->
                    problems :=
                      Fmt.str "%a stores %a at (%d,%d); expected suffix %a" Id.pp x Id.pp
                        y level digit pp_suffix_or_eps sibling.suffix
                      :: !problems
                  | None ->
                    problems :=
                      Fmt.str "%a misses sibling C-set %a (empty (%d,%d)-entry)" Id.pp x
                        pp_suffix_or_eps sibling.suffix level digit
                      :: !problems
                end)
              parent.children;
            walk rest
          | [ _ ] | [] -> ()
        in
        walk path)
    w;
  match !problems with [] -> Ok () | p :: _ -> Error p

let pp_tree ppf tree =
  let rec go indent t =
    Fmt.pf ppf "%sC%a = {%a}@." indent pp_suffix_or_eps t.suffix
      Fmt.(list ~sep:(any ", ") Id.pp)
      (Id.Set.elements t.members);
    List.iter (go (indent ^ "  ")) t.children
  in
  Fmt.pf ppf "%a (root, members = {%a})@." pp_suffix_or_eps tree.suffix
    Fmt.(list ~sep:(any ", ") Id.pp)
    (Id.Set.elements tree.members);
  List.iter (go "  ") tree.children

type timing = Single | Sequential | Concurrent | Mixed

let pp_timing ppf t =
  Fmt.string ppf
    (match t with
    | Single -> "single"
    | Sequential -> "sequential"
    | Concurrent -> "concurrent"
    | Mixed -> "mixed")

let overlap (b1, e1) (b2, e2) = b1 <= e2 && b2 <= e1

let classify_timing periods =
  match periods with
  | [] | [ _ ] -> Single
  | _ ->
    let arr = Array.of_list periods in
    Array.sort (fun (b1, _) (b2, _) -> compare b1 b2) arr;
    let n = Array.length arr in
    let sequential = ref true in
    for i = 0 to n - 2 do
      let _, e = arr.(i) and b, _ = arr.(i + 1) in
      if b <= e then sequential := false
    done;
    if !sequential then Sequential
    else begin
      (* Concurrent: every period overlaps some other, and the union of the
         periods leaves no gap. *)
      let each_overlaps =
        Array.for_all
          (fun p ->
            Array.exists (fun q -> p != q && overlap p q) arr)
          arr
      in
      let no_gap = ref true in
      let cover = ref (snd arr.(0)) in
      for i = 1 to n - 1 do
        let b, e = arr.(i) in
        if b > !cover then no_gap := false;
        if e > !cover then cover := e
      done;
      if each_overlaps && !no_gap then Concurrent else Mixed
    end

let dependent v_index ~w x y =
  let wx = noti_suffix v_index x and wy = noti_suffix v_index y in
  is_suffix_of wx wy || is_suffix_of wy wx
  || List.exists
       (fun u ->
         let wu = noti_suffix v_index u in
         is_suffix_of wu wx && is_suffix_of wu wy)
       w

let dependency_groups v_index ~w =
  let arr = Array.of_list w in
  let n = Array.length arr in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); find parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if dependent v_index ~w arr.(i) arr.(j) then union i j
    done
  done;
  let groups = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find i in
    let l = try Hashtbl.find groups r with Not_found -> [] in
    Hashtbl.replace groups r (arr.(i) :: l)
  done;
  (* Emit groups in ascending root order: the group list's order is part of
     downstream reports, so make it defined rather than accidentally stable. *)
  let roots = List.sort_uniq Int.compare (List.init n find) in
  List.map (fun r -> List.rev (Hashtbl.find groups r)) roots
