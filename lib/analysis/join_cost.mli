(** Communication-cost analysis of the join protocol (paper, Section 5.2,
    Theorems 3–5).

    [J] denotes the number of [JoinNotiMsg] sent by one joining node. The
    distribution of the join's {e notification level} — the largest [i] such
    that some existing node shares the rightmost [i] digits while none shares
    [i+1] — drives everything: a join at level [i] notifies the roughly
    [n / b^i] nodes of its notification set. *)

val theorem3_bound : Ntcu_id.Params.t -> int
(** Upper bound on [CpRstMsg + JoinWaitMsg] per join: [d + 1]. *)

val level_probabilities : Ntcu_id.Params.t -> n:int -> float array
(** [P_i(n)] for [i = 0 .. d-1] (Theorem 4): the probability that a fresh
    joiner's notification level is [i], given [n] uniformly random distinct
    existing IDs. Sums to 1. *)

val expected_join_noti : Ntcu_id.Params.t -> n:int -> float
(** Theorem 4: exact expectation of [J] for a single join into a consistent
    network of [n] nodes: [sum_i (n / b^i) P_i(n) - 1]. *)

val theorem5_bound : Ntcu_id.Params.t -> n:int -> m:int -> float
(** Theorem 5: upper bound on [E(J)] when [m] nodes join concurrently:
    [sum_i ((n + m) / b^i) P_i(n)]. This is the quantity plotted in
    Figure 15(a). *)

val simulate_level_probabilities :
  seed:int -> samples:int -> Ntcu_id.Params.t -> n:int -> float array
(** Monte-Carlo estimate of {!level_probabilities} by drawing [samples]
    independent (network, joiner) pairs — used to validate the closed form. *)
