module Params = Ntcu_id.Params
module Id = Ntcu_id.Id

let theorem3_bound (p : Params.t) = p.d + 1

let powf b e = float_of_int b ** float_of_int e

(* P_i(n) for 1 <= i <= d-2: sum over k >= 1 of
     C(B, k) C(M, n-k) / C(T, n)
   with B = (b-1) b^{d-1-i} (IDs sharing exactly the last i digits),
   M = b^d - b^{d-i} (IDs not sharing the last i digits), T = b^d - 1.
   Terms are evaluated by a ratio recurrence from the k = 1 term, streamed
   through a log-sum-exp accumulator, with early exit once terms decay. *)
let middle_probability ~bigb ~bigm ~log_ctn ~n =
  if float_of_int (n - 1) > bigm then 0.
  else begin
    let acc = Logmath.Accum.create () in
    let kmax = if bigb < float_of_int n then int_of_float bigb else n in
    let log_term = ref (log bigb +. Logmath.log_binomial bigm (n - 1) -. log_ctn) in
    (try
       for k = 1 to kmax do
         Logmath.Accum.add acc !log_term;
         if k < kmax then begin
           let ratio =
             log (bigb -. float_of_int k)
             -. log (float_of_int (k + 1))
             +. log (float_of_int (n - k))
             -. log (bigm -. float_of_int n +. float_of_int k +. 1.)
           in
           log_term := !log_term +. ratio;
           (* Once past the mode and 60 nats below the peak, the tail is
              negligible at double precision. *)
           if ratio < 0. && !log_term < Logmath.Accum.log_total acc -. 60. then
             raise Exit
         end
       done
     with Exit -> ());
    exp (Logmath.Accum.log_total acc)
  end

let level_probabilities (p : Params.t) ~n =
  if n < 1 then invalid_arg "Join_cost.level_probabilities: n must be positive";
  let d = p.d and b = p.b in
  let total = powf b d -. 1. in
  if float_of_int n > total then
    invalid_arg "Join_cost.level_probabilities: n exceeds the ID space";
  let log_ctn = Logmath.log_binomial total n in
  let probs = Array.make d 0. in
  probs.(0) <- exp (Logmath.log_binomial (powf b d -. powf b (d - 1)) n -. log_ctn);
  for i = 1 to d - 2 do
    let bigb = float_of_int (b - 1) *. powf b (d - 1 - i) in
    let bigm = powf b d -. powf b (d - i) in
    probs.(i) <- middle_probability ~bigb ~bigm ~log_ctn ~n
  done;
  if d >= 2 then begin
    let partial = ref 0. in
    for j = 0 to d - 2 do
      partial := !partial +. probs.(j)
    done;
    probs.(d - 1) <- Float.max 0. (1. -. !partial)
  end;
  probs

let expected_join_noti (p : Params.t) ~n =
  let probs = level_probabilities p ~n in
  let sum = ref 0. in
  for i = 0 to p.d - 1 do
    sum := !sum +. (float_of_int n /. powf p.b i *. probs.(i))
  done;
  !sum -. 1.

let theorem5_bound (p : Params.t) ~n ~m =
  if m < 0 then invalid_arg "Join_cost.theorem5_bound: negative m";
  let probs = level_probabilities p ~n in
  let sum = ref 0. in
  for i = 0 to p.d - 1 do
    sum := !sum +. (float_of_int (n + m) /. powf p.b i *. probs.(i))
  done;
  !sum

let simulate_level_probabilities ~seed ~samples (p : Params.t) ~n =
  if samples < 1 then invalid_arg "Join_cost.simulate_level_probabilities";
  let rng = Ntcu_std.Rng.create seed in
  let counts = Array.make p.d 0 in
  for _ = 1 to samples do
    let x = Id.random rng p in
    let seen = Hashtbl.create (2 * n) in
    Hashtbl.add seen (Id.to_string x) ();
    let level = ref 0 in
    let drawn = ref 0 in
    while !drawn < n do
      let y = Id.random rng p in
      let key = Id.to_string y in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        incr drawn;
        let k = Id.csuf_len x y in
        if k > !level then level := k
      end
    done;
    counts.(!level) <- counts.(!level) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) counts
