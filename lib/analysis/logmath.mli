(** Log-domain special functions for the communication-cost analysis.

    Theorems 4 and 5 involve binomial coefficients over the whole ID space
    ([b^d] up to [16^40 ~ 1.5e48]), far beyond exact integer arithmetic, and
    ratios of such coefficients that cancel catastrophically in linear
    floating point. Everything here therefore works with logarithms, and
    [log_binomial] uses an explicit digit-by-digit sum rather than
    log-gamma differences whenever cancellation would occur. *)

val log_gamma : float -> float
(** Natural log of the Gamma function for positive arguments (Lanczos
    approximation; relative error below 1e-10 over the tested range). *)

val log_factorial : int -> float
(** [log n!], cached for small [n]. *)

val log_binomial : float -> int -> float
(** [log_binomial n k] = log C(n, k) for real [n >= k >= 0], computed as
    [sum_{j<k} log (n - j) - log k!] — stable even for [n ~ 1e48].
    [neg_infinity] when [k > n]. *)

val log_sum : float list -> float
(** log of the sum of exponentials, streaming and overflow-safe. *)

module Accum : sig
  (** Streaming log-sum-exp accumulator. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  (** Add a term given as its logarithm. *)

  val log_total : t -> float
  (** Logarithm of the running sum; [neg_infinity] when empty. *)
end
