(* Lanczos approximation (g = 7, 9 coefficients), standard double-precision
   coefficient set. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Logmath.log_gamma: non-positive argument"
  else if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let factorial_cache_size = 10_000

(* Built eagerly at module init: forcing a shared [lazy] concurrently from
   several domains is a race, and the analytic model may be evaluated inside
   parallel experiment thunks. The fill is ~10k flops, well under the cost
   of one simulation event. *)
let factorial_cache =
  let cache = Array.make factorial_cache_size 0. in
  for i = 2 to factorial_cache_size - 1 do
    cache.(i) <- cache.(i - 1) +. log (float_of_int i)
  done;
  cache

let log_factorial n =
  if n < 0 then invalid_arg "Logmath.log_factorial: negative argument";
  if n < factorial_cache_size then factorial_cache.(n)
  else log_gamma (float_of_int n +. 1.)

let log_binomial n k =
  if k < 0 then invalid_arg "Logmath.log_binomial: negative k";
  if float_of_int k > n then neg_infinity
  else begin
    let acc = ref 0. in
    for j = 0 to k - 1 do
      acc := !acc +. log (n -. float_of_int j)
    done;
    !acc -. log_factorial k
  end

module Accum = struct
  type t = { mutable maximum : float; mutable scaled_sum : float }

  let create () = { maximum = neg_infinity; scaled_sum = 0. }

  let add t lx =
    if lx = neg_infinity then ()
    else if lx <= t.maximum then t.scaled_sum <- t.scaled_sum +. exp (lx -. t.maximum)
    else begin
      t.scaled_sum <- (t.scaled_sum *. exp (t.maximum -. lx)) +. 1.;
      t.maximum <- lx
    end

  let log_total t = if t.maximum = neg_infinity then neg_infinity else t.maximum +. log t.scaled_sum
end

let log_sum terms =
  let acc = Accum.create () in
  List.iter (Accum.add acc) terms;
  Accum.log_total acc
