module Id = Ntcu_id.Id
module Table = Ntcu_table.Table

(* ---- LRU hop-pointer cache -------------------------------------------- *)

(* Entries carry the sorted union of storers along the object's root path.
   Recency is a unique monotonic stamp: eviction picks the stamp argmin, which
   is independent of hashtable iteration order. *)
type cache_entry = { ce_storers : Id.t list; mutable ce_stamp : int }

type cache = {
  c_capacity : int;
  c_entries : cache_entry Id.Tbl.t;
  mutable c_clock : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_evictions : int;
  mutable c_invalidations : int;
}

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  capacity : int;
}

type t = {
  lookup : Id.t -> Table.t option;
  (* node -> (object -> storers) *)
  pointers : (Id.t, Id.t list ref) Hashtbl.t Id.Tbl.t;
  (* object -> (storer, pointer trail storer..root).  Invariant: the pointer
     index holds exactly the entries of these trails, so removal never needs
     a global scan. *)
  trails : (Id.t * Id.t list) list ref Id.Tbl.t;
  cache : cache option;
}

let create ?(cache = 0) ~lookup () =
  if cache < 0 then invalid_arg "Directory.create: cache capacity must be >= 0";
  let cache =
    if cache = 0 then None
    else
      Some
        {
          c_capacity = cache;
          c_entries = Id.Tbl.create (min cache 1024);
          c_clock = 0;
          c_hits = 0;
          c_misses = 0;
          c_evictions = 0;
          c_invalidations = 0;
        }
  in
  { lookup; pointers = Id.Tbl.create 256; trails = Id.Tbl.create 256; cache }

let cache_stats t =
  match t.cache with
  | None ->
    { hits = 0; misses = 0; evictions = 0; invalidations = 0; entries = 0; capacity = 0 }
  | Some c ->
    {
      hits = c.c_hits;
      misses = c.c_misses;
      evictions = c.c_evictions;
      invalidations = c.c_invalidations;
      entries = Id.Tbl.length c.c_entries;
      capacity = c.c_capacity;
    }

let cache_invalidate t obj =
  match t.cache with
  | None -> ()
  | Some c ->
    if Id.Tbl.mem c.c_entries obj then begin
      Id.Tbl.remove c.c_entries obj;
      c.c_invalidations <- c.c_invalidations + 1
    end

let cache_clear t =
  match t.cache with
  | None -> ()
  | Some c ->
    c.c_invalidations <- c.c_invalidations + Id.Tbl.length c.c_entries;
    Id.Tbl.reset c.c_entries

let cache_find c obj =
  match Id.Tbl.find_opt c.c_entries obj with
  | Some e ->
    c.c_hits <- c.c_hits + 1;
    c.c_clock <- c.c_clock + 1;
    e.ce_stamp <- c.c_clock;
    Some e.ce_storers
  | None ->
    c.c_misses <- c.c_misses + 1;
    None

let cache_insert c obj storers =
  if Id.Tbl.length c.c_entries >= c.c_capacity && not (Id.Tbl.mem c.c_entries obj) then begin
    (* Stamps are unique, so the least-recently-used argmin is the same
       whatever order the fold visits entries in. *)
    let victim =
      (Id.Tbl.fold [@ntcu.allow "D002"])
        (fun o e acc ->
          match acc with
          | Some (_, best) when best <= e.ce_stamp -> acc
          | _ -> Some (o, e.ce_stamp))
        c.c_entries None
    in
    match victim with
    | Some (o, _) ->
      Id.Tbl.remove c.c_entries o;
      c.c_evictions <- c.c_evictions + 1
    | None -> ()
  end;
  c.c_clock <- c.c_clock + 1;
  Id.Tbl.replace c.c_entries obj { ce_storers = storers; ce_stamp = c.c_clock }

(* ---- Surrogate routing ------------------------------------------------ *)

(* Bindings of an object-keyed table in ascending Id order: Hashtbl iteration
   order is unspecified, so every consumer that sees a list gets it sorted. *)
let sorted_bindings tbl =
  (Hashtbl.fold [@ntcu.allow "D002"]) (fun obj v acc -> (obj, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Id.compare a b)

(* One surrogate-routing step from [table]'s owner towards [obj], resolving
   level [level]: try digit obj[level], then scan upwards (mod b) for the
   first filled entry naming a node that still resolves — under churn, table
   entries can dangle towards departed nodes until repair catches up, and the
   directory must route around them rather than die on them (on a consistent
   network every entry resolves and the scan is the plain PRR one). The
   always-live self-entry guarantees the scan terminates. *)
let surrogate_hop t table ~obj ~level =
  let p = Table.params table in
  let rec scan tried j =
    if tried >= p.b then None
    else begin
      match Table.neighbor table ~level ~digit:j with
      | Some n when Option.is_some (t.lookup n) -> Some n
      | Some _ | None -> scan (tried + 1) ((j + 1) mod p.b)
    end
  in
  scan 0 (Id.digit obj level)

let root_path t ~from obj =
  let rec go current level acc =
    match t.lookup current with
    | None -> Error (Route.Unknown_node current)
    | Some table ->
      let p = Table.params table in
      if level >= p.d then Ok (List.rev (current :: acc))
      else begin
        match surrogate_hop t table ~obj ~level with
        | None -> Error (Route.Dead_end { at = current; level })
        | Some next ->
          if Id.equal next current then go current (level + 1) acc
          else go next (level + 1) (current :: acc)
      end
  in
  go from 0 []

let root_of t ~from obj =
  match root_path t ~from obj with
  | Ok path -> begin
    match List.rev path with
    | root :: _ -> Ok root
    | [] -> assert false
  end
  | Error e -> Error e

(* ---- Pointer and trail bookkeeping ------------------------------------ *)

let node_pointers t node =
  match Id.Tbl.find_opt t.pointers node with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Id.Tbl.add t.pointers node tbl;
    tbl

let install_pointers t path obj storer =
  List.iter
    (fun node ->
      let tbl = node_pointers t node in
      match Hashtbl.find_opt tbl obj with
      | Some storers ->
        if not (List.exists (Id.equal storer) !storers) then storers := storer :: !storers
      | None -> Hashtbl.add tbl obj (ref [ storer ]))
    path

let remove_pointer t node obj storer =
  match Id.Tbl.find_opt t.pointers node with
  | None -> 0
  | Some tbl -> (
    match Hashtbl.find_opt tbl obj with
    | None -> 0
    | Some storers ->
      let before = List.length !storers in
      storers := List.filter (fun s -> not (Id.equal s storer)) !storers;
      let removed = before - List.length !storers in
      if List.is_empty !storers then Hashtbl.remove tbl obj;
      if Hashtbl.length tbl = 0 then Id.Tbl.remove t.pointers node;
      removed)

(* Drop the (obj, storer) trail and every pointer it installed; returns the
   number of pointer entries removed. *)
let drop_trail t obj storer =
  match Id.Tbl.find_opt t.trails obj with
  | None -> 0
  | Some r -> (
    match List.find_opt (fun (s, _) -> Id.equal s storer) !r with
    | None -> 0
    | Some (_, path) ->
      r := List.filter (fun (s, _) -> not (Id.equal s storer)) !r;
      if List.is_empty !r then Id.Tbl.remove t.trails obj;
      List.fold_left (fun acc node -> acc + remove_pointer t node obj storer) 0 path)

let set_trail t obj storer path =
  let r =
    match Id.Tbl.find_opt t.trails obj with
    | Some r -> r
    | None ->
      let r = ref [] in
      Id.Tbl.add t.trails obj r;
      r
  in
  r := (storer, path) :: List.filter (fun (s, _) -> not (Id.equal s storer)) !r

(* ---- Publish / unpublish ---------------------------------------------- *)

let publish t ~storer obj =
  match root_path t ~from:storer obj with
  | Error e -> Error e
  | Ok path ->
    ignore (drop_trail t obj storer : int);
    install_pointers t path obj storer;
    set_trail t obj storer path;
    cache_invalidate t obj;
    Ok (List.length path - 1)

let unpublish t ~storer obj =
  ignore (drop_trail t obj storer : int);
  cache_invalidate t obj

let storers t obj =
  match Id.Tbl.find_opt t.trails obj with
  | None -> []
  | Some r -> List.sort Id.compare (List.map fst !r)

(* ---- Queries ----------------------------------------------------------- *)

type lookup_result = {
  storers : Id.t list;
  pointer_node : Id.t;
  hops : Id.t list;
}

let pointers_for t node obj =
  match Id.Tbl.find_opt t.pointers node with
  | Some tbl -> Hashtbl.find_opt tbl obj
  | None -> None

let lookup_object t ~client obj =
  match root_path t ~from:client obj with
  | Error e -> Error e
  | Ok path ->
    let rec walk acc = function
      | node :: rest -> begin
        let acc = node :: acc in
        match pointers_for t node obj with
        | Some storers ->
          Some { storers = !storers; pointer_node = node; hops = List.rev acc }
        | None -> walk acc rest
      end
      | [] -> None
    in
    (match walk [] path with
    | Some result -> Ok result
    | None ->
      (* Reached the root without a pointer: the object is unpublished. *)
      let root = List.nth path (List.length path - 1) in
      Ok { storers = []; pointer_node = root; hops = path })

type locate_result = {
  all_storers : Id.t list;
  first_storers : Id.t list;
  first_node : Id.t;
  first_depth : int;
  path : Id.t list;
  cached : bool;
}

let locate t ~client obj =
  let hit = match t.cache with None -> None | Some c -> cache_find c obj in
  match hit with
  | Some storers ->
    Ok
      {
        all_storers = storers;
        first_storers = storers;
        first_node = client;
        first_depth = 0;
        path = [ client ];
        cached = true;
      }
  | None -> (
    match root_path t ~from:client obj with
    | Error e -> Error e
    | Ok path ->
      let first = ref None in
      let union = ref Id.Set.empty in
      List.iteri
        (fun i node ->
          match pointers_for t node obj with
          | Some storers ->
            union := List.fold_left (fun acc s -> Id.Set.add s acc) !union !storers;
            if Option.is_none !first then first := Some (node, !storers, i)
          | None -> ())
        path;
      let all = Id.Set.elements !union in
      let first_node, first_storers, first_depth =
        match !first with
        | Some (node, ss, depth) -> (node, ss, depth)
        | None ->
          let hops = List.length path - 1 in
          (List.nth path hops, [], hops)
      in
      (match t.cache with
      | Some c when not (List.is_empty all) -> cache_insert c obj all
      | _ -> ());
      Ok { all_storers = all; first_storers; first_node; first_depth; path; cached = false })

let pointers_at t node =
  match Id.Tbl.find_opt t.pointers node with
  | Some tbl -> List.map (fun (obj, storers) -> (obj, !storers)) (sorted_bindings tbl)
  | None -> []

let published_objects t =
  (Id.Tbl.fold [@ntcu.allow "D002"]) (fun obj _ acc -> obj :: acc) t.trails []
  |> List.sort Id.compare

(* ---- Maintenance ------------------------------------------------------- *)

type maintain_stats = {
  objects : int;
  republished : int;
  dropped : int;
  publish_hops : int;
  revalidated : int;
  errors : int;
  first_error : Route.error option;
}

(* Commutative sum over every pointer entry: order-independent. *)
let total_pointer_entries t =
  (Id.Tbl.fold [@ntcu.allow "D002"])
    (fun _node tbl acc ->
      (Hashtbl.fold [@ntcu.allow "D002"])
        (fun _obj storers acc -> acc + List.length !storers)
        tbl acc)
    t.pointers 0

(* Snapshot of the trail index in ascending (object, storer) Id order:
   republishing order decides the order storer lists are rebuilt in, which is
   visible through [pointers_at]/[lookup_object], so maintenance walks a
   sorted snapshot and is deterministic. *)
let sorted_trails t =
  (Id.Tbl.fold [@ntcu.allow "D002"]) (fun obj r acc -> (obj, !r) :: acc) t.trails []
  |> List.sort (fun (a, _) (b, _) -> Id.compare a b)
  |> List.map (fun (obj, ts) ->
         (obj, List.sort (fun (a, _) (b, _) -> Id.compare a b) ts))

let maintain_full t =
  let snapshot = sorted_trails t in
  let dropped = total_pointer_entries t in
  Id.Tbl.reset t.pointers;
  Id.Tbl.reset t.trails;
  cache_clear t;
  let republished = ref 0 in
  let hops = ref 0 in
  let errors = ref 0 in
  let first_error = ref None in
  List.iter
    (fun (obj, ts) ->
      let touched = ref false in
      List.iter
        (fun (storer, _old_trail) ->
          (* Departed storers have no table any more; their replicas are gone. *)
          if Option.is_some (t.lookup storer) then begin
            match publish t ~storer obj with
            | Ok h ->
              hops := !hops + h;
              touched := true
            | Error e ->
              incr errors;
              if Option.is_none !first_error then first_error := Some e
          end)
        ts;
      if !touched then incr republished)
    snapshot;
  {
    objects = List.length snapshot;
    republished = !republished;
    dropped;
    publish_hops = !hops;
    revalidated = 0;
    errors = !errors;
    first_error = !first_error;
  }

let maintain_incremental t =
  let snapshot = sorted_trails t in
  let republished = ref 0 in
  let dropped = ref 0 in
  let hops = ref 0 in
  let revalidated = ref 0 in
  let errors = ref 0 in
  let first_error = ref None in
  List.iter
    (fun (obj, ts) ->
      let touched = ref false in
      List.iter
        (fun (storer, trail) ->
          if Option.is_none (t.lookup storer) then begin
            (* The replica departed with its storer: retract its trail. *)
            dropped := !dropped + drop_trail t obj storer;
            cache_invalidate t obj
          end
          else begin
            match root_path t ~from:storer obj with
            | Ok path when List.equal Id.equal path trail ->
              (* The trail still lies on the current surrogate path (same
                 root, same hops): every pointer on it is exactly where a
                 query will look, so nothing moves. *)
              incr revalidated
            | Ok path ->
              dropped := !dropped + drop_trail t obj storer;
              install_pointers t path obj storer;
              set_trail t obj storer path;
              hops := !hops + List.length path - 1;
              cache_invalidate t obj;
              touched := true
            | Error e ->
              dropped := !dropped + drop_trail t obj storer;
              cache_invalidate t obj;
              incr errors;
              if Option.is_none !first_error then first_error := Some e
          end)
        ts;
      if !touched then incr republished)
    snapshot;
  {
    objects = List.length snapshot;
    republished = !republished;
    dropped = !dropped;
    publish_hops = !hops;
    revalidated = !revalidated;
    errors = !errors;
    first_error = !first_error;
  }

let maintain ?(incremental = false) t =
  if incremental then maintain_incremental t else maintain_full t
