module Id = Ntcu_id.Id
module Table = Ntcu_table.Table

type t = {
  lookup : Id.t -> Table.t option;
  (* node -> (object -> storers) *)
  pointers : (Id.t, Id.t list ref) Hashtbl.t Id.Tbl.t;
}

let create ~lookup = { lookup; pointers = Id.Tbl.create 256 }

(* Bindings of an object-keyed table in ascending Id order: Hashtbl iteration
   order is unspecified, so every consumer that sees a list gets it sorted. *)
let sorted_bindings tbl =
  (Hashtbl.fold [@ntcu.allow "D002"]) (fun obj v acc -> (obj, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Id.compare a b)

(* One surrogate-routing step from [table]'s owner towards [obj], resolving
   level [level]: try digit obj[level], then scan upwards (mod b) for the
   first filled entry. The self-entry guarantees the scan terminates. *)
let surrogate_hop table ~obj ~level =
  let p = Table.params table in
  let rec scan tried j =
    if tried >= p.b then None
    else begin
      match Table.neighbor table ~level ~digit:j with
      | Some n -> Some n
      | None -> scan (tried + 1) ((j + 1) mod p.b)
    end
  in
  scan 0 (Id.digit obj level)

let root_path t ~from obj =
  let rec go current level acc =
    match t.lookup current with
    | None -> Error (Route.Unknown_node current)
    | Some table ->
      let p = Table.params table in
      if level >= p.d then Ok (List.rev (current :: acc))
      else begin
        match surrogate_hop table ~obj ~level with
        | None -> Error (Route.Dead_end { at = current; level })
        | Some next ->
          if Id.equal next current then go current (level + 1) acc
          else go next (level + 1) (current :: acc)
      end
  in
  go from 0 []

let root_of t ~from obj =
  match root_path t ~from obj with
  | Ok path -> begin
    match List.rev path with
    | root :: _ -> Ok root
    | [] -> assert false
  end
  | Error e -> Error e

let node_pointers t node =
  match Id.Tbl.find_opt t.pointers node with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Id.Tbl.add t.pointers node tbl;
    tbl

let publish t ~storer obj =
  match root_path t ~from:storer obj with
  | Error e -> Error e
  | Ok path ->
    List.iter
      (fun node ->
        let tbl = node_pointers t node in
        match Hashtbl.find_opt tbl obj with
        | Some storers -> if not (List.exists (Id.equal storer) !storers) then storers := storer :: !storers
        | None -> Hashtbl.add tbl obj (ref [ storer ]))
      path;
    Ok (List.length path - 1)

let unpublish t ~storer obj =
  (* Per-node removal of one key; no node's update observes another's. *)
  (Id.Tbl.iter [@ntcu.allow "D002"])
    (fun _node tbl ->
      match Hashtbl.find_opt tbl obj with
      | Some storers ->
        storers := List.filter (fun s -> not (Id.equal s storer)) !storers;
        if List.is_empty !storers then Hashtbl.remove tbl obj
      | None -> ())
    t.pointers

type lookup_result = {
  storers : Id.t list;
  pointer_node : Id.t;
  hops : Id.t list;
}

let lookup_object t ~client obj =
  match root_path t ~from:client obj with
  | Error e -> Error e
  | Ok path ->
    let rec walk acc = function
      | node :: rest -> begin
        let acc = node :: acc in
        let found =
          match Id.Tbl.find_opt t.pointers node with
          | Some tbl -> Hashtbl.find_opt tbl obj
          | None -> None
        in
        match found with
        | Some storers ->
          Some { storers = !storers; pointer_node = node; hops = List.rev acc }
        | None -> walk acc rest
      end
      | [] -> None
    in
    (match walk [] path with
    | Some result -> Ok result
    | None ->
      (* Reached the root without a pointer: the object is unpublished. *)
      let root = List.nth path (List.length path - 1) in
      Ok { storers = []; pointer_node = root; hops = path })

let pointers_at t node =
  match Id.Tbl.find_opt t.pointers node with
  | Some tbl -> List.map (fun (obj, storers) -> (obj, !storers)) (sorted_bindings tbl)
  | None -> []

let collect_objects t =
  let objects = Hashtbl.create 64 in
  (* Commutative set union into an object-keyed table: the result does not
     depend on the order either loop visits bindings. *)
  (Id.Tbl.iter [@ntcu.allow "D002"])
    (fun _node tbl ->
      (Hashtbl.iter [@ntcu.allow "D002"])
        (fun obj storers ->
          let known = try Hashtbl.find objects obj with Not_found -> Id.Set.empty in
          Hashtbl.replace objects obj
            (List.fold_left (fun acc s -> Id.Set.add s acc) known !storers))
        tbl)
    t.pointers;
  objects

let published_objects t = List.map fst (sorted_bindings (collect_objects t))

let maintain t =
  (* Republishing order decides the order storer lists are rebuilt in, which
     is visible through [pointers_at]/[lookup_object]: walk objects in Id
     order so maintenance is deterministic. *)
  let objects = sorted_bindings (collect_objects t) in
  Id.Tbl.reset t.pointers;
  let republished = ref 0 in
  let first_error = ref None in
  List.iter
    (fun (obj, storers) ->
      let touched = ref false in
      Id.Set.iter
        (fun storer ->
          (* Departed storers have no table any more; their replicas are gone. *)
          if Option.is_some (t.lookup storer) then begin
            match publish t ~storer obj with
            | Ok _ -> touched := true
            | Error e -> if Option.is_none !first_error then first_error := Some e
          end)
        storers;
      if !touched then incr republished)
    objects;
  match !first_error with Some e -> Error e | None -> Ok !republished
