(** PRR-style replicated-object directory.

    Objects live in the same ID space as nodes. Each object has a unique
    {e root} node, found by surrogate routing: resolve the object's digits
    right-to-left; when the required entry is empty at some level, determinis-
    tically fall back to the next filled digit at that level. In a consistent
    network the digit choices depend only on which suffixes exist, so every
    start node reaches the same root (property P1).

    A node that stores a copy {e publishes} it by walking to the root and
    leaving a location pointer at every hop. A query walks towards the root
    and is redirected by the first pointer it meets — queries for nearby
    copies tend to hit a pointer early, which is how PRR bounds access cost
    (property P2). This layer reproduces the paper's background Section 2 and
    PRR's directory semantics; it is kept outside the join protocol.

    The directory keeps the {e trail} of every (object, storer) publication —
    the exact pointer path it installed — so retraction and incremental
    maintenance never need a global scan, and it optionally memoizes query
    results in a bounded LRU hop-pointer cache (see {!create}). *)

type t

val create : ?cache:int -> lookup:(Ntcu_id.Id.t -> Ntcu_table.Table.t option) -> unit -> t
(** [lookup] resolves node IDs to their (consistent) neighbor tables.
    [?cache] (default [0] = disabled) bounds the LRU hop-pointer cache used
    by {!locate}: a capacity of [k] keeps the [k] most recently queried
    objects' storer sets and answers repeat queries at depth 0. Entries are
    invalidated by {!publish}/{!unpublish}/{!maintain} of the same object, so
    a hit always returns what a full walk would.
    @raise Invalid_argument if [cache < 0]. *)

val root_path : t -> from:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (Ntcu_id.Id.t list, Route.error) result
(** Surrogate-routing path from a node to the object's root, both inclusive. *)

val root_of : t -> from:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (Ntcu_id.Id.t, Route.error) result

val publish : t -> storer:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (int, Route.error) result
(** [publish t ~storer obj] records that [storer] holds a copy of [obj] and
    installs location pointers along the path to the root, retracting any
    previous trail this storer had for the object first. Returns the number
    of pointer-installation hops. *)

val unpublish : t -> storer:Ntcu_id.Id.t -> Ntcu_id.Id.t -> unit
(** Remove exactly the storer's pointers for the object — the trail recorded
    by its last {!publish} (object deletion, PRR directory maintenance). *)

val storers : t -> Ntcu_id.Id.t -> Ntcu_id.Id.t list
(** Storers with a live trail for the object, ascending Id order. *)

type lookup_result = {
  storers : Ntcu_id.Id.t list;  (** Known copies, at the first pointer hit. *)
  pointer_node : Ntcu_id.Id.t;  (** Node whose pointer answered the query. *)
  hops : Ntcu_id.Id.t list;  (** Query path from the client to [pointer_node]. *)
}

val lookup_object : t -> client:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (lookup_result, Route.error) result
(** Walk towards the root until a pointer for the object is found.
    Returns an error carrying [Dead_end] semantics only on inconsistent
    tables; on a consistent network a published object is always found (P1),
    and an unpublished one cleanly reports no storers at the root. Does not
    consult the cache (PRR first-hit semantics, used by P2 measurements). *)

type locate_result = {
  all_storers : Ntcu_id.Id.t list;
      (** Union of every pointer met on the full walk to the root, ascending
          Id order. The root carries every trail, so on a maintained
          directory this is the complete surviving replica set. *)
  first_storers : Ntcu_id.Id.t list;
      (** Copies listed at the first pointer hit (equals [all_storers] on a
          cache hit; [[]] if the object is unpublished). *)
  first_node : Ntcu_id.Id.t;
      (** First pointer node ([client] on a cache hit; the root if no
          pointer was found). *)
  first_depth : int;  (** Hops from the client to [first_node]; 0 on a hit. *)
  path : Ntcu_id.Id.t list;  (** Full walked path ([[client]] on a hit). *)
  cached : bool;
}

val locate : t -> client:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (locate_result, Route.error) result
(** The serving query path: walk the whole surrogate path to the root,
    recording the first pointer hit (P2 depth) {e and} the union of all
    storers seen (completeness). When the directory was created with a cache,
    a hit short-circuits the walk at depth 0; misses populate the cache
    (objects with no storers are not cached). *)

val pointers_at : t -> Ntcu_id.Id.t -> (Ntcu_id.Id.t * Ntcu_id.Id.t list) list
(** [(object, storers)] pointers held at a node (directory load; P3). *)

val published_objects : t -> Ntcu_id.Id.t list
(** Objects with at least one trail, ascending Id order. *)

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;  (** Currently cached objects. *)
  capacity : int;  (** 0 when the cache is disabled. *)
}

val cache_stats : t -> cache_stats
(** Counters of the hop-pointer cache (all zero when disabled). *)

type maintain_stats = {
  objects : int;  (** Objects tracked when maintenance began. *)
  republished : int;  (** Objects with at least one trail rebuilt. *)
  dropped : int;  (** Pointer entries removed. *)
  publish_hops : int;  (** Pointer-installation hops walked republishing. *)
  revalidated : int;
      (** Trails found intact and left in place (incremental mode only). *)
  errors : int;  (** (object, storer) republications that failed. *)
  first_error : Route.error option;
}

val maintain : ?incremental:bool -> t -> maintain_stats
(** Directory maintenance after membership changes (PRR maintains its
    directory dynamically as nodes and objects come and go): object roots may
    have moved, old pointer trails may no longer lie on current query paths,
    and storers or pointer hosts may have departed.

    The default full rebuild drops every pointer and republishes every object
    from its surviving storers over the current tables. With
    [~incremental:true] each recorded trail is revalidated instead: trails of
    departed storers are retracted, trails whose surrogate path is unchanged
    are kept untouched ([revalidated]), and only invalidated trails are
    retracted and republished — strictly less work than the rebuild when most
    of the directory is unaffected by the membership delta, and the same
    resulting directory (asserted by the property suite).

    Queries issued after [maintain] find every surviving replica again (P1
    restored). Republication failures on still-inconsistent tables are
    counted in [errors] (first one kept in [first_error]); the rest of the
    pass still runs. *)
