(** PRR-style replicated-object directory.

    Objects live in the same ID space as nodes. Each object has a unique
    {e root} node, found by surrogate routing: resolve the object's digits
    right-to-left; when the required entry is empty at some level, determinis-
    tically fall back to the next filled digit at that level. In a consistent
    network the digit choices depend only on which suffixes exist, so every
    start node reaches the same root (property P1).

    A node that stores a copy {e publishes} it by walking to the root and
    leaving a location pointer at every hop. A query walks towards the root
    and is redirected by the first pointer it meets — queries for nearby
    copies tend to hit a pointer early, which is how PRR bounds access cost
    (property P2). This layer reproduces the paper's background Section 2 and
    PRR's directory semantics; it is kept outside the join protocol. *)

type t

val create : lookup:(Ntcu_id.Id.t -> Ntcu_table.Table.t option) -> t
(** [lookup] resolves node IDs to their (consistent) neighbor tables. *)

val root_path : t -> from:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (Ntcu_id.Id.t list, Route.error) result
(** Surrogate-routing path from a node to the object's root, both inclusive. *)

val root_of : t -> from:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (Ntcu_id.Id.t, Route.error) result

val publish : t -> storer:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (int, Route.error) result
(** [publish t ~storer obj] records that [storer] holds a copy of [obj] and
    installs location pointers along the path to the root. Returns the number
    of pointer-installation hops. *)

val unpublish : t -> storer:Ntcu_id.Id.t -> Ntcu_id.Id.t -> unit
(** Remove the storer's pointers for the object (object deletion, PRR
    Section on directory maintenance). *)

type lookup_result = {
  storers : Ntcu_id.Id.t list;  (** Known copies, at the first pointer hit. *)
  pointer_node : Ntcu_id.Id.t;  (** Node whose pointer answered the query. *)
  hops : Ntcu_id.Id.t list;  (** Query path from the client to [pointer_node]. *)
}

val lookup_object : t -> client:Ntcu_id.Id.t -> Ntcu_id.Id.t -> (lookup_result, Route.error) result
(** Walk towards the root until a pointer for the object is found.
    Returns an error carrying [Dead_end] semantics only on inconsistent
    tables; on a consistent network a published object is always found (P1),
    and an unpublished one cleanly reports no storers at the root. *)

val pointers_at : t -> Ntcu_id.Id.t -> (Ntcu_id.Id.t * Ntcu_id.Id.t list) list
(** [(object, storers)] pointers held at a node (directory load; P3). *)

val published_objects : t -> Ntcu_id.Id.t list
(** Objects with at least one pointer anywhere. *)

val maintain : t -> (int, Route.error) result
(** Directory maintenance after membership changes (PRR maintains its
    directory dynamically as nodes and objects come and go): object roots may
    have moved, old pointer trails may no longer lie on current query paths,
    and storers or pointer hosts may have departed. [maintain] rebuilds the
    directory: every pointer is dropped and every object is republished from
    its surviving storers over the current tables. Returns the number of
    objects republished. Queries issued after [maintain] find every surviving
    replica again (P1 restored). *)
