(** Hypercube suffix routing (paper, Section 2.2).

    A message from [x] to [y] follows primary neighbors, resolving one more
    suffix digit per hop: the level-[i] hop goes to the current node's
    [(i, y\[i\])]-neighbor. Since a node is its own [(i, x\[i\])]-neighbor,
    routing effectively starts at level [csuf(x, y)]. *)

type error =
  | Unknown_node of Ntcu_id.Id.t  (** No table for an intermediate node. *)
  | Dead_end of { at : Ntcu_id.Id.t; level : int }
      (** Required entry is empty — impossible in a consistent network when
          the destination exists. *)

val pp_error : error Fmt.t

val next_hop : Ntcu_table.Table.t -> dest:Ntcu_id.Id.t -> Ntcu_id.Id.t option
(** The first routing hop from this table's owner towards [dest]: the
    [(k, dest\[k\])]-neighbor, where [k = csuf(owner, dest)]. [None] if that
    entry is empty, [Some owner] never (self-hops are skipped). Returns
    [Some dest] when the owner is [dest]'s immediate predecessor — and [None]
    nowhere else if the network is consistent. If [dest] equals the owner, the
    result is [Some owner]. *)

val route :
  lookup:(Ntcu_id.Id.t -> Ntcu_table.Table.t option) ->
  src:Ntcu_id.Id.t ->
  dst:Ntcu_id.Id.t ->
  (Ntcu_id.Id.t list, error) result
(** The full node path from [src] to [dst], both inclusive, skipping self
    hops. At most [d - csuf(src, dst)] intermediate hops. *)

val route_resilient :
  lookup:(Ntcu_id.Id.t -> Ntcu_table.Table.t option) ->
  alive:(Ntcu_id.Id.t -> bool) ->
  src:Ntcu_id.Id.t ->
  dst:Ntcu_id.Id.t ->
  (Ntcu_id.Id.t list, error) result
(** Like {!route}, but when a hop's primary neighbor is not [alive], fall
    back to the entry's backup neighbors (paper, Section 2.1's extra
    neighbors "for fault tolerant routing"). Fails with [Dead_end] only when
    neither the primary nor any backup of a required entry is alive. *)

val hop_count : Ntcu_id.Id.t list -> int
(** Number of hops of a path as returned by {!route} ([length - 1], [0] for a
    self-path). *)

val path_cost : dist:(Ntcu_id.Id.t -> Ntcu_id.Id.t -> float) -> Ntcu_id.Id.t list -> float
(** Total distance along a path under a distance function (for stretch
    measurements). *)
