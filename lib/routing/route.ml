module Id = Ntcu_id.Id
module Table = Ntcu_table.Table

type error =
  | Unknown_node of Id.t
  | Dead_end of { at : Id.t; level : int }

let pp_error ppf = function
  | Unknown_node id -> Fmt.pf ppf "no table for node %a" Id.pp id
  | Dead_end { at; level } -> Fmt.pf ppf "dead end at %a, level %d" Id.pp at level

let next_hop table ~dest =
  let owner = Table.owner table in
  if Id.equal owner dest then Some owner
  else begin
    let k = Id.csuf_len owner dest in
    Table.neighbor table ~level:k ~digit:(Id.digit dest k)
  end

let route ~lookup ~src ~dst =
  let d = Id.length dst in
  let rec go current acc hops =
    if Id.equal current dst then Ok (List.rev (dst :: acc))
    else if hops > d then
      (* Cannot happen in a consistent network: each hop resolves a digit. *)
      Error (Dead_end { at = current; level = Id.csuf_len current dst })
    else begin
      match lookup current with
      | None -> Error (Unknown_node current)
      | Some table -> begin
        match next_hop table ~dest:dst with
        | None -> Error (Dead_end { at = current; level = Id.csuf_len current dst })
        | Some next ->
          if Id.equal next current then
            Error (Dead_end { at = current; level = Id.csuf_len current dst })
          else go next (current :: acc) (hops + 1)
      end
    end
  in
  go src [] 0

let route_resilient ~lookup ~alive ~src ~dst =
  let d = Id.length dst in
  let rec go current acc hops =
    if Id.equal current dst then Ok (List.rev (dst :: acc))
    else if hops > d then Error (Dead_end { at = current; level = Id.csuf_len current dst })
    else begin
      match lookup current with
      | None -> Error (Unknown_node current)
      | Some table ->
        let k = Id.csuf_len current dst in
        let digit = Id.digit dst k in
        let candidates =
          (match Table.neighbor table ~level:k ~digit with
          | Some primary -> [ primary ]
          | None -> [])
          @ Table.backups table ~level:k ~digit
        in
        (match List.find_opt alive candidates with
        | Some next -> go next (current :: acc) (hops + 1)
        | None -> Error (Dead_end { at = current; level = k }))
    end
  in
  if alive src then go src [] 0 else Error (Dead_end { at = src; level = 0 })

let hop_count path = max 0 (List.length path - 1)

let path_cost ~dist path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. dist a b) rest
    | [ _ ] | [] -> acc
  in
  go 0. path
