module Packed = Ntcu_id.Packed
module Rng = Ntcu_std.Rng
module Parallel = Ntcu_std.Parallel

(* Sharded epoch engine.

   Nodes are partitioned over [shards] arenas by the low bits of their packed
   id, and time advances in integer epochs. Each shard keeps a ring of
   [max_latency + 1] frame buffers: slot [e mod depth] holds the frames due at
   epoch [e]. Processing a frame may emit new frames — intra-shard emissions
   go straight into a future ring slot, cross-shard ones into a per-destination
   outbox that is wire-encoded at the end of the shard's turn and moved to the
   destination's pending queue at the epoch barrier (in ascending source-shard
   order, so delivery order is a function of the configuration alone).

   Latency is [1 + hash (src, dst) mod max_latency]: pure, so replaying the
   run — serially or with any worker count — reproduces every delivery. *)

type config = {
  params : Ntcu_id.Params.t;
  n : int;
  seeds : int;
  seed : int;
  shards : int;
  inject_per_epoch : int;
  max_epochs : int;
}

type summary = {
  population : int;
  seed_count : int;
  shard_count : int;
  epochs : int;
  injected : int;
  events : int;
  kind_counts : (string * int) list;
  cross_batches : int;
  cross_bytes : int;
  redirects : int;
  deferrals : int;
  stuck : int;
  stabilize_fills : int;
  violations : int;
  store_words : int;
  shard_events : int array;
}

let ring_depth = Wire.max_latency + 1

type shard = {
  store : Node_store.t;
  ring : Intbuf.t array; (* ring_depth slots of due frames *)
  ring_frames : int array; (* frame count per slot, for quiescence *)
  pending : (int * string) Queue.t; (* (send epoch, batch bytes) *)
  outbox : Intbuf.t array; (* per destination shard, this epoch *)
  outbuf : Buffer.t array; (* wire image of [outbox], moved at barrier *)
  (* per-slot protocol bookkeeping, grown alongside the store *)
  mutable copy_level : int array;
  mutable noti_pending : int array;
  mutable gateway : int array;
  (* counters *)
  mutable events : int;
  kinds : int array;
  mutable switched : int;
  mutable redirects : int;
  mutable deferrals : int;
  (* scratch reused across deliveries *)
  scratch_seen : (int, unit) Hashtbl.t;
  scratch : Intbuf.t;
}

type t = {
  cfg : config;
  ctx : Wire.ctx;
  lay : Packed.layout;
  d : int;
  b : int;
  bits : int;
  dmask : int;
  smask : int;
  shards : shard array;
  seeds_arr : int array;
  joiners : int array;
  mutable next_join : int;
  mutable injected : int;
  mutable cross_batches : int;
  mutable cross_bytes : int;
}

(* aux list kind in Node_store (kind 0 stays free for future bookkeeping) *)
let aux_qj = 1 (* JoinWaits deferred while the target was notifying *)

(* ---- deterministic mixing ---- *)

let mix2 a b =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca6b) in
  let h = h lxor (h lsr 16) in
  let h = h * 0xc2b2ae35 in
  (h lxor (h lsr 13)) land max_int

let latency src dst = 1 + (mix2 src dst mod Wire.max_latency)
let gateway_pick x n = mix2 x 0x27d4eb2f mod n

(* ---- frame emission ---- *)

(* Begin a frame from [src] (a node of shard [si]) to [dst]. Returns the
   buffer to push payload ints into plus the header index to patch; the two
   in-memory layouts (ring vs outbox, see {!Wire}) share the nargs formula
   [len - hdr - 4]. *)
let emit_begin t sh si ~epoch ~kind ~src ~dst =
  let dshard = dst land t.smask in
  if dshard = si then begin
    let slot = (epoch + latency src dst) mod ring_depth in
    let buf = sh.ring.(slot) in
    let hdr = Intbuf.length buf in
    Intbuf.push buf 0;
    Intbuf.push3 buf kind src dst;
    sh.ring_frames.(slot) <- sh.ring_frames.(slot) + 1;
    (buf, hdr)
  end
  else begin
    let buf = sh.outbox.(dshard) in
    let hdr = Intbuf.length buf in
    Intbuf.push buf 0;
    Intbuf.push3 buf kind src dst;
    Intbuf.push buf (latency src dst);
    (buf, hdr)
  end

let emit_end (buf, hdr) = Intbuf.set buf hdr (Intbuf.length buf - hdr - 4)

let emit0 t sh si ~epoch ~kind ~src ~dst =
  emit_end (emit_begin t sh si ~epoch ~kind ~src ~dst)

(* Append the filled cells of rows [0 .. maxlevel] as (pos*2+sbit, occupant)
   pairs, preceded by their count. *)
let push_cells_upto t buf store slot ~maxlevel =
  let cnt_pos = Intbuf.length buf in
  Intbuf.push buf 0;
  let c = ref 0 in
  for level = 0 to maxlevel do
    for digit = 0 to t.b - 1 do
      let occ = Node_store.cell store slot ~level ~digit in
      if occ <> -1 then begin
        let sbit = Node_store.state store slot ~level ~digit in
        Intbuf.push2 buf ((((level * t.b) + digit) lsl 1) lor sbit) occ;
        incr c
      end
    done
  done;
  Intbuf.set buf cnt_pos !c

let push_cells_of_row t buf store slot ~level =
  let cnt_pos = Intbuf.length buf in
  Intbuf.push buf 0;
  let c = ref 0 in
  for digit = 0 to t.b - 1 do
    let occ = Node_store.cell store slot ~level ~digit in
    if occ <> -1 then begin
      let sbit = Node_store.state store slot ~level ~digit in
      Intbuf.push2 buf ((((level * t.b) + digit) lsl 1) lor sbit) occ;
      incr c
    end
  done;
  Intbuf.set buf cnt_pos !c

let csuf t x y = Packed.csuf_len t.lay (Packed.unsafe_of_int x) (Packed.unsafe_of_int y)
let pdigit t x i = Packed.digit t.lay (Packed.unsafe_of_int x) i

(* ---- cell installation ---- *)

(* Install a batch of (pos*2+sbit, occupant) pairs into [xs]'s table,
   skipping the owner itself, already-filled entries and occupants that lack
   the entry's required suffix. Installing an occupant still believed joining
   (T) notifies it with RvNghNoti so it can flip us to S when it completes. *)
let install_cells t sh si ~epoch xs ~count buf a =
  let store = sh.store in
  let owner = (Node_store.id_of store xs :> int) in
  let p = ref a in
  for _ = 1 to count do
    let ps = Intbuf.get buf !p in
    let occ = Intbuf.get buf (!p + 1) in
    p := !p + 2;
    let posn = ps lsr 1 and sbit = ps land 1 in
    let level = posn / t.b and digit = posn mod t.b in
    if occ <> owner then begin
      let low_mask = (1 lsl (level * t.bits)) - 1 in
      if
        occ land low_mask = owner land low_mask
        && (occ lsr (level * t.bits)) land t.dmask = digit
        && Node_store.cell store xs ~level ~digit = -1
      then begin
        Node_store.set store xs ~level ~digit (Packed.unsafe_of_int occ) sbit;
        if sbit = Node_store.state_t then begin
          let f =
            emit_begin t sh si ~epoch ~kind:Wire.kind_rv_ngh_noti ~src:owner ~dst:occ
          in
          Intbuf.push3 (fst f) level digit sbit;
          emit_end f
        end
      end
    end
  done;
  !p

(* ---- join protocol ---- *)

(* Answer a JoinWait from joiner [x] at node [ys] — directly on delivery, or
   from the deferred queue when [ys] completes its own join. *)
let answer_join_wait t sh si ~epoch ys ~x =
  let store = sh.store in
  let y = (Node_store.id_of store ys :> int) in
  let st = Node_store.status store ys in
  if st = Node_store.status_in_system then begin
    let l = csuf t y x in
    let xd = pdigit t x l in
    let occ = Node_store.cell store ys ~level:l ~digit:xd in
    if occ <> -1 && occ <> x then begin
      (* the slot already holds a node sharing one more digit with [x]:
         redirect the joiner there *)
      sh.redirects <- sh.redirects + 1;
      let f = emit_begin t sh si ~epoch ~kind:Wire.kind_join_wait_rly ~src:y ~dst:x in
      Intbuf.push3 (fst f) 0 occ 0;
      emit_end f
    end
    else begin
      if occ = -1 then begin
        Node_store.set store ys ~level:l ~digit:xd (Packed.unsafe_of_int x)
          Node_store.state_t;
        let f = emit_begin t sh si ~epoch ~kind:Wire.kind_rv_ngh_noti ~src:y ~dst:x in
        Intbuf.push3 (fst f) l xd Node_store.state_t;
        emit_end f
      end;
      let f = emit_begin t sh si ~epoch ~kind:Wire.kind_join_wait_rly ~src:y ~dst:x in
      Intbuf.push2 (fst f) 1 y;
      push_cells_upto t (fst f) store ys ~maxlevel:l;
      emit_end f
    end
  end
  else if st = Node_store.status_notifying then begin
    (* about to complete: hold the joiner and answer at the switch *)
    sh.deferrals <- sh.deferrals + 1;
    Node_store.aux_push store ~kind:aux_qj ys x
  end
  else begin
    (* still copying or waiting ourselves: bounce the joiner to our gateway,
       which is in-system by construction *)
    let f = emit_begin t sh si ~epoch ~kind:Wire.kind_join_wait_rly ~src:y ~dst:x in
    Intbuf.push3 (fst f) 0 sh.gateway.(ys) 0;
    emit_end f
  end

(* Complete [xs]'s join: flip the self-diagonal to S, tell every node holding
   a T entry for us, and answer the JoinWaits deferred while notifying. *)
let switch_in_system t sh si ~epoch xs =
  let store = sh.store in
  Node_store.set_status store xs Node_store.status_in_system;
  sh.switched <- sh.switched + 1;
  let owner = Node_store.id_of store xs in
  let ow = (owner :> int) in
  for level = 0 to t.d - 1 do
    Node_store.set_state store xs ~level ~digit:(Packed.digit t.lay owner level)
      Node_store.state_s
  done;
  Hashtbl.reset sh.scratch_seen;
  Node_store.iter_reverse store xs (fun storer ~pos:_ ->
      let s = (storer :> int) in
      if not (Hashtbl.mem sh.scratch_seen s) then begin
        Hashtbl.add sh.scratch_seen s ();
        emit0 t sh si ~epoch ~kind:Wire.kind_in_sys_noti ~src:ow ~dst:s
      end);
  let deferred = ref [] in
  Node_store.aux_iter store ~kind:aux_qj xs (fun x -> deferred := x :: !deferred);
  Node_store.aux_clear store ~kind:aux_qj xs;
  List.iter (fun x -> answer_join_wait t sh si ~epoch xs ~x) !deferred

(* Start [xs]'s notify round: one JoinNoti per distinct table occupant, in
   cell-scan order. With nothing to notify the node completes immediately. *)
let begin_notify t sh si ~epoch xs =
  let store = sh.store in
  Node_store.set_status store xs Node_store.status_notifying;
  let owner = (Node_store.id_of store xs :> int) in
  Hashtbl.reset sh.scratch_seen;
  Intbuf.clear sh.scratch;
  for level = 0 to t.d - 1 do
    for digit = 0 to t.b - 1 do
      let occ = Node_store.cell store xs ~level ~digit in
      if occ <> -1 && occ <> owner && not (Hashtbl.mem sh.scratch_seen occ) then begin
        Hashtbl.add sh.scratch_seen occ ();
        Intbuf.push sh.scratch occ
      end
    done
  done;
  let cnt = Intbuf.length sh.scratch in
  sh.noti_pending.(xs) <- cnt;
  if cnt = 0 then switch_in_system t sh si ~epoch xs
  else
    for i = 0 to cnt - 1 do
      let tgt = Intbuf.get sh.scratch i in
      let f = emit_begin t sh si ~epoch ~kind:Wire.kind_join_noti ~src:owner ~dst:tgt in
      Intbuf.push2 (fst f) (csuf t owner tgt) 0;
      emit_end f
    done

(* ---- frame handlers (receiver side) ---- *)

let handle_cp_rst t sh si ~epoch gs ~src buf a =
  let level = Intbuf.get buf a in
  let g = (Node_store.id_of sh.store gs :> int) in
  let f = emit_begin t sh si ~epoch ~kind:Wire.kind_cp_rly ~src:g ~dst:src in
  Intbuf.push (fst f) level;
  push_cells_of_row t (fst f) sh.store gs ~level;
  emit_end f

let handle_cp_rly t sh si ~epoch xs ~src buf a =
  let store = sh.store in
  let level = Intbuf.get buf a in
  if
    Node_store.status store xs = Node_store.status_copying
    && sh.copy_level.(xs) = level
  then begin
    let count = Intbuf.get buf (a + 1) in
    let x = (Node_store.id_of store xs :> int) in
    let xd = pdigit t x level in
    (* the next hop is the replier's entry matching our own next digit *)
    let z = ref (-1) in
    let p = ref (a + 2) in
    for _ = 1 to count do
      if Intbuf.get buf !p lsr 1 = (level * t.b) + xd then z := Intbuf.get buf (!p + 1);
      p := !p + 2
    done;
    ignore (install_cells t sh si ~epoch xs ~count buf (a + 2) : int);
    if !z <> -1 && !z <> x && level + 1 < t.d then begin
      sh.copy_level.(xs) <- level + 1;
      let f = emit_begin t sh si ~epoch ~kind:Wire.kind_cp_rst ~src:x ~dst:!z in
      Intbuf.push (fst f) (level + 1);
      emit_end f
    end
    else begin
      let y = if !z <> -1 && !z <> x then !z else src in
      Node_store.set_status store xs Node_store.status_waiting;
      emit0 t sh si ~epoch ~kind:Wire.kind_join_wait ~src:x ~dst:y
    end
  end

let handle_join_wait_rly t sh si ~epoch xs ~src:_ buf a =
  let store = sh.store in
  if Node_store.status store xs = Node_store.status_waiting then begin
    let sign = Intbuf.get buf a in
    let occupant = Intbuf.get buf (a + 1) in
    if sign = 0 then begin
      let x = (Node_store.id_of store xs :> int) in
      emit0 t sh si ~epoch ~kind:Wire.kind_join_wait ~src:x ~dst:occupant
    end
    else begin
      let count = Intbuf.get buf (a + 2) in
      ignore (install_cells t sh si ~epoch xs ~count buf (a + 3) : int);
      begin_notify t sh si ~epoch xs
    end
  end

let handle_join_noti t sh si ~epoch ts ~src buf a =
  let store = sh.store in
  let _noti_level = Intbuf.get buf a in
  let tid = (Node_store.id_of store ts :> int) in
  let l = csuf t tid src in
  (* No notified-set bookkeeping: a joiner notifies each distinct target
     exactly once, and a re-delivery would find its cell already occupied —
     the occupancy test is the dedup. A membership list here would grow with
     a target's popularity and turn hot nodes quadratic. *)
  let xd = pdigit t src l in
  if Node_store.cell store ts ~level:l ~digit:xd = -1 then begin
    Node_store.set store ts ~level:l ~digit:xd (Packed.unsafe_of_int src)
      Node_store.state_t;
    let f = emit_begin t sh si ~epoch ~kind:Wire.kind_rv_ngh_noti ~src:tid ~dst:src in
    Intbuf.push3 (fst f) l xd Node_store.state_t;
    emit_end f
  end;
  let f = emit_begin t sh si ~epoch ~kind:Wire.kind_join_noti_rly ~src:tid ~dst:src in
  Intbuf.push (fst f) 1;
  push_cells_upto t (fst f) store ts ~maxlevel:l;
  emit_end f

let handle_join_noti_rly t sh si ~epoch xs ~src:_ buf a =
  let store = sh.store in
  if Node_store.status store xs = Node_store.status_notifying then begin
    let count = Intbuf.get buf (a + 1) in
    ignore (install_cells t sh si ~epoch xs ~count buf (a + 2) : int);
    sh.noti_pending.(xs) <- sh.noti_pending.(xs) - 1;
    if sh.noti_pending.(xs) = 0 then switch_in_system t sh si ~epoch xs
  end

let handle_in_sys_noti t sh ts ~src =
  let store = sh.store in
  let tid = (Node_store.id_of store ts :> int) in
  let l = csuf t tid src in
  for l' = 0 to l do
    let xd = pdigit t src l' in
    if Node_store.cell store ts ~level:l' ~digit:xd = src then
      Node_store.set_state store ts ~level:l' ~digit:xd Node_store.state_s
  done

let handle_rv_ngh_noti t sh si ~epoch os ~src buf a =
  let store = sh.store in
  let level = Intbuf.get buf a in
  let digit = Intbuf.get buf (a + 1) in
  let sbit = Intbuf.get buf (a + 2) in
  Node_store.add_reverse store os ~storer:(Packed.unsafe_of_int src) ~level ~digit;
  if
    sbit = Node_store.state_t
    && Node_store.status store os = Node_store.status_in_system
  then begin
    (* the storer believes we are still joining; correct it *)
    let o = (Node_store.id_of store os :> int) in
    let f = emit_begin t sh si ~epoch ~kind:Wire.kind_rv_fix ~src:o ~dst:src in
    Intbuf.push2 (fst f) level digit;
    emit_end f
  end

let handle_rv_fix sh ts ~src buf a =
  let store = sh.store in
  let level = Intbuf.get buf a in
  let digit = Intbuf.get buf (a + 1) in
  if Node_store.cell store ts ~level ~digit = src then
    Node_store.set_state store ts ~level ~digit Node_store.state_s

let process_frame t sh si ~epoch buf pos =
  let nargs = Intbuf.get buf pos in
  let kind = Intbuf.get buf (pos + 1) in
  let src = Intbuf.get buf (pos + 2) in
  let dst = Intbuf.get buf (pos + 3) in
  let a = pos + 4 in
  sh.events <- sh.events + 1;
  sh.kinds.(kind) <- sh.kinds.(kind) + 1;
  (match Node_store.find sh.store (Packed.unsafe_of_int dst) with
  | None -> () (* destination departed; drop, as the record engine does *)
  | Some ds ->
    if kind = Wire.kind_cp_rst then handle_cp_rst t sh si ~epoch ds ~src buf a
    else if kind = Wire.kind_cp_rly then handle_cp_rly t sh si ~epoch ds ~src buf a
    else if kind = Wire.kind_join_wait then answer_join_wait t sh si ~epoch ds ~x:src
    else if kind = Wire.kind_join_wait_rly then
      handle_join_wait_rly t sh si ~epoch ds ~src buf a
    else if kind = Wire.kind_join_noti then handle_join_noti t sh si ~epoch ds ~src buf a
    else if kind = Wire.kind_join_noti_rly then
      handle_join_noti_rly t sh si ~epoch ds ~src buf a
    else if kind = Wire.kind_in_sys_noti then handle_in_sys_noti t sh ds ~src
    else if kind = Wire.kind_rv_ngh_noti then
      handle_rv_ngh_noti t sh si ~epoch ds ~src buf a
    else handle_rv_fix sh ds ~src buf a);
  pos + 4 + nargs

(* ---- epoch execution ---- *)

(* One shard's turn at [epoch]: deliver last epoch's cross-shard batches into
   the ring, drain the due slot, wire-encode this epoch's outboxes. Touches
   only shard [si]'s state (plus its own outboxes), so shard turns run on any
   worker without synchronization. *)
let process_epoch t ~epoch si =
  let sh = t.shards.(si) in
  while not (Queue.is_empty sh.pending) do
    let es, data = Queue.pop sh.pending in
    ignore
      (Wire.decode t.ctx data ~select:(fun ~delta ->
           let slot = (es + delta) mod ring_depth in
           sh.ring_frames.(slot) <- sh.ring_frames.(slot) + 1;
           sh.ring.(slot))
        : int)
  done;
  let slot = epoch mod ring_depth in
  let buf = sh.ring.(slot) in
  let n = Intbuf.length buf in
  let pos = ref 0 in
  while !pos < n do
    pos := process_frame t sh si ~epoch buf !pos
  done;
  Intbuf.clear buf;
  sh.ring_frames.(slot) <- 0;
  for dst = 0 to Array.length t.shards - 1 do
    let ob = sh.outbox.(dst) in
    if not (Intbuf.is_empty ob) then begin
      Wire.encode t.ctx ob sh.outbuf.(dst);
      Intbuf.clear ob
    end
  done

let ensure_meta sh =
  let hi = Node_store.high_slot sh.store in
  if hi > Array.length sh.copy_level then begin
    let ncap = max hi (2 * Array.length sh.copy_level) in
    let gr a def =
      let n = Array.make ncap def in
      Array.blit a 0 n 0 (Array.length a);
      n
    in
    sh.copy_level <- gr sh.copy_level 0;
    sh.noti_pending <- gr sh.noti_pending 0;
    sh.gateway <- gr sh.gateway (-1)
  end

(* Start up to [inject_per_epoch] joiners: allocate the slot, self-fill, and
   hand the gateway a CpRst at level 0. Runs between epochs on the
   coordinator, so it may write any shard's ring. *)
let inject t ~epoch =
  let budget = ref t.cfg.inject_per_epoch in
  while !budget > 0 && t.next_join < Array.length t.joiners do
    let x = t.joiners.(t.next_join) in
    t.next_join <- t.next_join + 1;
    decr budget;
    t.injected <- t.injected + 1;
    let sh = t.shards.(x land t.smask) in
    let xs = Node_store.add sh.store (Packed.unsafe_of_int x) in
    Node_store.fill_self sh.store xs Node_store.state_t;
    ensure_meta sh;
    sh.copy_level.(xs) <- 0;
    sh.noti_pending.(xs) <- 0;
    let g = t.seeds_arr.(gateway_pick x (Array.length t.seeds_arr)) in
    sh.gateway.(xs) <- g;
    let gsh = t.shards.(g land t.smask) in
    let slot = (epoch + latency x g) mod ring_depth in
    let buf = gsh.ring.(slot) in
    let hdr = Intbuf.length buf in
    Intbuf.push buf 0;
    Intbuf.push3 buf Wire.kind_cp_rst x g;
    Intbuf.push buf 0;
    Intbuf.set buf hdr (Intbuf.length buf - hdr - 4);
    gsh.ring_frames.(slot) <- gsh.ring_frames.(slot) + 1
  done

let total_remaining t =
  Array.fold_left
    (fun acc sh ->
      acc
      + Array.fold_left ( + ) 0 sh.ring_frames
      + Queue.length sh.pending)
    0 t.shards

(* ---- witness index and stabilize ---- *)

(* Smallest id carrying each suffix, per suffix length — the serial oracle
   both the seed tables and the stabilize fill draw witnesses from. *)
let witness_index t ids =
  let sorted = Array.copy ids in
  Array.sort Int.compare sorted;
  let wit = Array.init (t.d + 1) (fun _ -> Hashtbl.create (Array.length ids)) in
  Array.iter
    (fun id ->
      for len = 1 to t.d do
        let key = Packed.suffix_value t.lay (Packed.unsafe_of_int id) len in
        if not (Hashtbl.mem wit.(len) key) then Hashtbl.add wit.(len) key id
      done)
    sorted;
  wit

(* Fill every empty entry that has a witness in [wit]; with [count_only] just
   count them (the post-stabilize violation scan). *)
let sweep_holes t wit ~count_only si =
  let sh = t.shards.(si) in
  let store = sh.store in
  let hits = ref 0 in
  for s = 0 to Node_store.high_slot store - 1 do
    if Node_store.status store s <> Node_store.status_free then begin
      let owner = (Node_store.id_of store s :> int) in
      for level = 0 to t.d - 1 do
        let low = owner land ((1 lsl (level * t.bits)) - 1) in
        for digit = 0 to t.b - 1 do
          if Node_store.cell store s ~level ~digit = -1 then begin
            let key = low lor (digit lsl (level * t.bits)) in
            match Hashtbl.find_opt wit.(level + 1) key with
            | Some w ->
              incr hits;
              if not count_only then
                Node_store.set store s ~level ~digit (Packed.unsafe_of_int w)
                  Node_store.state_s
            | None -> ()
          end
        done
      done
    end
  done;
  !hits

(* ---- setup and run ---- *)

let make_shard t_params ~shards:_ ~cap =
  {
    store = Node_store.create ~cap t_params;
    ring = Array.init ring_depth (fun _ -> Intbuf.create ());
    ring_frames = Array.make ring_depth 0;
    pending = Queue.create ();
    outbox = [||];
    outbuf = [||];
    copy_level = Array.make cap 0;
    noti_pending = Array.make cap 0;
    gateway = Array.make cap (-1);
    events = 0;
    kinds = Array.make Wire.kind_count 0;
    switched = 0;
    redirects = 0;
    deferrals = 0;
    scratch_seen = Hashtbl.create 64;
    scratch = Intbuf.create ();
  }

let validate (cfg : config) =
  if not (Packed.packable cfg.params) then
    invalid_arg "Scale.run: parameter space is not packable";
  if cfg.shards < 1 || cfg.shards land (cfg.shards - 1) <> 0 then
    invalid_arg "Scale.run: shard count must be a power of two";
  if cfg.seeds < 1 || cfg.seeds > cfg.n then
    invalid_arg "Scale.run: seeds must be within 1 .. n";
  if cfg.inject_per_epoch < 1 then invalid_arg "Scale.run: inject_per_epoch < 1";
  if cfg.max_epochs < 1 then invalid_arg "Scale.run: max_epochs < 1"

let run ?(jobs = 1) (cfg : config) =
  validate cfg;
  let lay = Packed.layout cfg.params in
  let d = cfg.params.d and b = cfg.params.b in
  (* distinct population, in a deterministic draw order *)
  let rng = Rng.create cfg.seed in
  let seen = Hashtbl.create (2 * cfg.n) in
  let all_ids =
    Array.init cfg.n (fun _ ->
        let rec draw () =
          let id = (Packed.random rng lay :> int) in
          if Hashtbl.mem seen id then draw ()
          else begin
            Hashtbl.add seen id ();
            id
          end
        in
        draw ())
  in
  let seeds_arr = Array.sub all_ids 0 cfg.seeds in
  let joiners = Array.sub all_ids cfg.seeds (cfg.n - cfg.seeds) in
  let per_shard_cap = max 16 (2 * (cfg.n / cfg.shards)) in
  let shards =
    Array.init cfg.shards (fun _ ->
        let sh = make_shard cfg.params ~shards:cfg.shards ~cap:per_shard_cap in
        {
          sh with
          outbox = Array.init cfg.shards (fun _ -> Intbuf.create ());
          outbuf = Array.init cfg.shards (fun _ -> Buffer.create 256);
        })
  in
  let t =
    {
      cfg;
      ctx = Wire.ctx cfg.params;
      lay;
      d;
      b;
      bits = Packed.bits lay;
      dmask = (1 lsl Packed.bits lay) - 1;
      smask = cfg.shards - 1;
      shards;
      seeds_arr;
      joiners;
      next_join = 0;
      injected = 0;
      cross_batches = 0;
      cross_bytes = 0;
    }
  in
  (* seeds form a witness-filled in-system network *)
  let seed_wit = witness_index t seeds_arr in
  Array.iter
    (fun sid ->
      let sh = t.shards.(sid land t.smask) in
      let store = sh.store in
      let xs = Node_store.add store (Packed.unsafe_of_int sid) in
      Node_store.set_status store xs Node_store.status_in_system;
      Node_store.fill_self store xs Node_store.state_s;
      ensure_meta sh;
      sh.gateway.(xs) <- sid;
      for level = 0 to d - 1 do
        let low = sid land ((1 lsl (level * t.bits)) - 1) in
        for digit = 0 to b - 1 do
          if Node_store.cell store xs ~level ~digit = -1 then begin
            let key = low lor (digit lsl (level * t.bits)) in
            match Hashtbl.find_opt seed_wit.(level + 1) key with
            | Some w ->
              Node_store.set store xs ~level ~digit (Packed.unsafe_of_int w)
                Node_store.state_s
            | None -> ()
          end
        done
      done)
    seeds_arr;
  let shard_ixs = List.init cfg.shards Fun.id in
  Parallel.with_pool ~jobs (fun pool ->
      (* epoch loop: inject, run every shard's turn, move batches *)
      let epoch = ref 0 in
      let live () = t.next_join < Array.length t.joiners || total_remaining t > 0 in
      while live () && !epoch < cfg.max_epochs do
        inject t ~epoch:!epoch;
        ignore
          (Parallel.map pool (fun si -> process_epoch t ~epoch:!epoch si) shard_ixs
            : unit list);
        Array.iter
          (fun sh_src ->
            Array.iteri
              (fun dsti buf ->
                if Buffer.length buf > 0 then begin
                  t.cross_batches <- t.cross_batches + 1;
                  t.cross_bytes <- t.cross_bytes + Buffer.length buf;
                  Queue.add (!epoch, Buffer.contents buf) t.shards.(dsti).pending;
                  Buffer.clear buf
                end)
              sh_src.outbuf)
          t.shards;
        incr epoch
      done;
      (* stabilize: force-complete stragglers, then fill residual holes from
         a whole-population witness index *)
      let stuck = ref 0 in
      Array.iter
        (fun sh ->
          let store = sh.store in
          for s = 0 to Node_store.high_slot store - 1 do
            let st = Node_store.status store s in
            if st <> Node_store.status_free && st <> Node_store.status_in_system
            then begin
              incr stuck;
              Node_store.set_status store s Node_store.status_in_system
            end
          done)
        t.shards;
      let wit = witness_index t all_ids in
      let fills =
        Parallel.map pool (fun si -> sweep_holes t wit ~count_only:false si) shard_ixs
      in
      let holes =
        Parallel.map pool (fun si -> sweep_holes t wit ~count_only:true si) shard_ixs
      in
      let sum = List.fold_left ( + ) 0 in
      let kinds = Array.make Wire.kind_count 0 in
      Array.iter
        (fun sh -> Array.iteri (fun k c -> kinds.(k) <- kinds.(k) + c) sh.kinds)
        t.shards;
      {
        population = cfg.n;
        seed_count = cfg.seeds;
        shard_count = cfg.shards;
        epochs = !epoch;
        injected = t.injected;
        events = Array.fold_left (fun acc sh -> acc + sh.events) 0 t.shards;
        kind_counts =
          List.init Wire.kind_count (fun k -> (Wire.kind_name k, kinds.(k)));
        cross_batches = t.cross_batches;
        cross_bytes = t.cross_bytes;
        redirects = Array.fold_left (fun acc sh -> acc + sh.redirects) 0 t.shards;
        deferrals = Array.fold_left (fun acc sh -> acc + sh.deferrals) 0 t.shards;
        stuck = !stuck;
        stabilize_fills = sum fills;
        violations = sum holes;
        store_words =
          Array.fold_left (fun acc sh -> acc + Node_store.words sh.store) 0 t.shards;
        shard_events = Array.map (fun sh -> sh.events) t.shards;
      })
