(** Struct-of-arrays arena for node hot state.

    Replaces the record-based per-node layout ([Node.t] + [Table.t] +
    [Id.Tbl] lookups) with flat columns over slot indices: packed ids, one
    status byte per node, one int per table cell (occupant packed id, [-1]
    empty) plus one believed-state bit, and a shared int pool carrying every
    per-node linked list (reverse pointers, join bookkeeping). One run of
    10^5–10^6 nodes then costs ~[d*b] words per node instead of a heap of
    boxed records, and lookups are int-keyed.

    Only packable parameter spaces ({!Ntcu_id.Packed.packable}) are
    supported. Slots are reused through a free stack ({!remove}/{!add}), so
    the arena sustains churn without growing. *)

type t

val create : ?cap:int -> Ntcu_id.Params.t -> t
(** @raise Invalid_argument if the space is not packable. *)

val layout : t -> Ntcu_id.Packed.layout
val params : t -> Ntcu_id.Params.t

val live : t -> int
(** Number of live nodes. *)

val capacity : t -> int
val high_slot : t -> int
(** Exclusive upper bound on slot indices ever handed out — the scan bound
    for whole-arena iteration (freed slots in the range have status
    {!status_free}). *)

val ensure_capacity : t -> int -> unit
(** Pre-grow all columns to at least the given slot capacity (amortized
    doubling otherwise). Growth must not race with readers; callers
    single-thread it (the sharded engine grows only between epochs). *)

(** {1 Statuses} *)

val status_free : int
val status_copying : int
val status_waiting : int
val status_notifying : int
val status_in_system : int

(** {1 Cell states (believed T/S of an occupant)} *)

val state_t : int
val state_s : int

(** {1 Slots} *)

val add : t -> Ntcu_id.Packed.t -> int
(** Allocate a slot (reusing a freed one if any) for the id, with status
    [status_copying] and an empty table. Returns the slot.
    @raise Invalid_argument if the id is already present. *)

val remove : t -> Ntcu_id.Packed.t -> unit
(** Free the node's slot and release its lists. Other nodes' cells that
    reference the departed id are {e not} scrubbed (same contract as
    [Network.remove]); the checker reports them as dangling.
    @raise Invalid_argument if unknown. *)

val find : t -> Ntcu_id.Packed.t -> int option
val mem : t -> Ntcu_id.Packed.t -> bool
val slot_exn : t -> Ntcu_id.Packed.t -> int
val id_of : t -> int -> Ntcu_id.Packed.t
val status : t -> int -> int
val set_status : t -> int -> int -> unit

(** {1 Table cells}

    [cell] returns the occupant as a raw packed value, [-1] when empty —
    the hot read path avoids option boxing. *)

val cell : t -> int -> level:int -> digit:int -> int
val state : t -> int -> level:int -> digit:int -> int
(** @raise Invalid_argument if the entry is empty or out of range. *)

val set : t -> int -> level:int -> digit:int -> Ntcu_id.Packed.t -> int -> unit
(** Fill (or overwrite) an entry, as [Table.set].
    @raise Invalid_argument if the id lacks the entry's required suffix. *)

val clear_cell : t -> int -> level:int -> digit:int -> unit

val set_state : t -> int -> level:int -> digit:int -> int -> unit
(** @raise Invalid_argument if the entry is empty. *)

val filled_count : t -> int -> int

val fill_self : t -> int -> int -> unit
(** [fill_self t slot st] sets entry [(i, owner[i])] to the owner at every
    level, as [Table.fill_self]. *)

(** {1 Reverse neighbors} *)

val add_reverse : t -> int -> storer:Ntcu_id.Packed.t -> level:int -> digit:int -> unit
val iter_reverse : t -> int -> (Ntcu_id.Packed.t -> pos:int -> unit) -> unit
(** Newest registration first; [pos] is [level * b + digit]. *)

val remove_reverse : t -> int -> Ntcu_id.Packed.t -> unit
(** Drop every registration by the given storer. *)

(** {1 Aux lists}

    Two pool-backed int lists per slot for protocol bookkeeping (the scale
    engine uses kind 1 for deferred join-waits; kind 0 is unclaimed). *)

val aux_push : t -> kind:int -> int -> int -> unit
val aux_mem : t -> kind:int -> int -> int -> bool
val aux_iter : t -> kind:int -> int -> (int -> unit) -> unit
val aux_clear : t -> kind:int -> int -> unit

(** {1 Accounting} *)

val words : t -> int
(** Deterministic structural memory size in words: exact for all columns,
    hashtable bindings estimated at 4 words each. *)
