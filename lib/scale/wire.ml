module Params = Ntcu_id.Params
module Packed = Ntcu_id.Packed
module Codec = Ntcu_core.Codec

(* Cross-shard delivery batches, in the repository's wire format.

   In-memory frames are flat int sequences in {!Intbuf} buffers:

   - outbox frame  (what a shard emits for another shard):
       [nargs; kind; src; dst; delta; payload...]   nargs = 1 + |payload|
   - ring frame    (what a shard processes, local or decoded):
       [nargs; kind; src; dst; payload...]          nargs = |payload|

   [delta] is the delivery-epoch offset (1 .. {!max_latency}); decoding
   places each frame in the destination ring slot [delta] epochs after the
   batch's send epoch, so the wire carries it while ring placement encodes
   it.

   On the wire a frame is: kind uvarint, src and dst as standard identifier
   images ({!Codec.put_raw_id} — the same bytes the message codec emits),
   delta uvarint, then a kind-specific payload of uvarints and ids (all the
   small fields are < 0x80, so they cost one byte each). Byte counts are
   therefore honest message-size accounting in the same model as
   {!Ntcu_core.Message.size_bytes}'s id packing. *)

let kind_cp_rst = 0
let kind_cp_rly = 1
let kind_join_wait = 2
let kind_join_wait_rly = 3
let kind_join_noti = 4
let kind_join_noti_rly = 5
let kind_in_sys_noti = 6
let kind_rv_ngh_noti = 7
let kind_rv_fix = 8

let kind_count = 9

let kind_name = function
  | 0 -> "cp_rst"
  | 1 -> "cp_rly"
  | 2 -> "join_wait"
  | 3 -> "join_wait_rly"
  | 4 -> "join_noti"
  | 5 -> "join_noti_rly"
  | 6 -> "in_sys_noti"
  | 7 -> "rv_ngh_noti"
  | 8 -> "rv_fix"
  | _ -> invalid_arg "Wire.kind_name"

let max_latency = 3
(** Largest delivery-epoch offset the latency model assigns; ring depth is
    [max_latency + 1]. *)

type ctx = {
  codec : Codec.context;
  lay : Packed.layout;
  d : int;
  b : int;
  pow2 : bool; (* power-of-two base: every masked digit pattern is valid *)
}

let ctx (p : Params.t) =
  if not (Packed.packable p) then invalid_arg "Wire.ctx: parameter space is not packable";
  {
    codec = Codec.context p;
    lay = Packed.layout p;
    d = p.d;
    b = p.b;
    pow2 = p.b land (p.b - 1) = 0;
  }

(* ---- encoding (outbox intbuf -> bytes) ---- *)

let put_cells c (buf : Intbuf.t) pos w ~count =
  Codec.put_uvarint w count;
  let p = ref pos in
  for _ = 1 to count do
    (* cell = pos*2+sbit uvarint, then the occupant id *)
    Codec.put_uvarint w (Intbuf.get buf !p);
    Codec.put_raw_id w c.codec (Intbuf.get buf (!p + 1));
    p := !p + 2
  done;
  !p

let encode c (out : Intbuf.t) (w : Buffer.t) =
  let pos = ref 0 in
  let n = Intbuf.length out in
  while !pos < n do
    let nargs = Intbuf.get out !pos in
    let kind = Intbuf.get out (!pos + 1) in
    let src = Intbuf.get out (!pos + 2) in
    let dst = Intbuf.get out (!pos + 3) in
    let delta = Intbuf.get out (!pos + 4) in
    let a = !pos + 5 in
    Codec.put_uvarint w kind;
    Codec.put_raw_id w c.codec src;
    Codec.put_raw_id w c.codec dst;
    Codec.put_uvarint w delta;
    (if kind = kind_cp_rst then Codec.put_uvarint w (Intbuf.get out a)
     else if kind = kind_cp_rly then begin
       Codec.put_uvarint w (Intbuf.get out a);
       let count = Intbuf.get out (a + 1) in
       ignore (put_cells c out (a + 2) w ~count)
     end
     else if kind = kind_join_wait || kind = kind_in_sys_noti then ()
     else if kind = kind_join_wait_rly then begin
       Codec.put_uvarint w (Intbuf.get out a);
       Codec.put_raw_id w c.codec (Intbuf.get out (a + 1));
       let count = Intbuf.get out (a + 2) in
       ignore (put_cells c out (a + 3) w ~count)
     end
     else if kind = kind_join_noti || kind = kind_join_noti_rly then begin
       Codec.put_uvarint w (Intbuf.get out a);
       let count = Intbuf.get out (a + 1) in
       ignore (put_cells c out (a + 2) w ~count)
     end
     else if kind = kind_rv_ngh_noti then begin
       Codec.put_uvarint w (Intbuf.get out a);
       Codec.put_uvarint w (Intbuf.get out (a + 1));
       Codec.put_uvarint w (Intbuf.get out (a + 2))
     end
     else if kind = kind_rv_fix then begin
       Codec.put_uvarint w (Intbuf.get out a);
       Codec.put_uvarint w (Intbuf.get out (a + 1))
     end
     else invalid_arg "Wire.encode: unknown frame kind");
    pos := !pos + 5 + (nargs - 1)
  done

(* ---- decoding (bytes -> ring intbufs) ---- *)

let malformed msg = raise (Codec.Malformed msg)

let get_id c r =
  let v = Codec.get_raw_id r c.codec in
  if not c.pow2 then (
    match Packed.of_int c.lay v with
    | (_ : Packed.t) -> ()
    | exception Invalid_argument _ -> malformed "identifier digit out of range");
  v

let get_cells c r (buf : Intbuf.t) =
  let count = Codec.get_uvarint r in
  if count > c.d * c.b then malformed "cell count exceeds table size";
  Intbuf.push buf count;
  for _ = 1 to count do
    let ps = Codec.get_uvarint r in
    if ps lsr 1 >= c.d * c.b then malformed "cell position out of range";
    Intbuf.push2 buf ps (get_id c r)
  done;
  count

let decode c (data : string) ~(select : delta:int -> Intbuf.t) =
  let r = Codec.reader data in
  let frames = ref 0 in
  while not (Codec.reader_at_end r) do
    let kind = Codec.get_uvarint r in
    if kind >= kind_count then malformed "unknown frame kind";
    let src = get_id c r in
    let dst = get_id c r in
    let delta = Codec.get_uvarint r in
    if delta < 1 || delta > max_latency then malformed "delivery delta out of range";
    let buf = select ~delta in
    (* header placeholder: patch nargs once the payload length is known *)
    let hdr = Intbuf.length buf in
    Intbuf.push buf 0;
    Intbuf.push3 buf kind src dst;
    (if kind = kind_cp_rst then begin
       let level = Codec.get_uvarint r in
       if level >= c.d then malformed "level out of range";
       Intbuf.push buf level
     end
     else if kind = kind_cp_rly then begin
       let level = Codec.get_uvarint r in
       if level >= c.d then malformed "level out of range";
       Intbuf.push buf level;
       ignore (get_cells c r buf)
     end
     else if kind = kind_join_wait || kind = kind_in_sys_noti then ()
     else if kind = kind_join_wait_rly then begin
       let sign = Codec.get_uvarint r in
       if sign > 1 then malformed "bad sign";
       Intbuf.push2 buf sign (get_id c r);
       ignore (get_cells c r buf)
     end
     else if kind = kind_join_noti then begin
       let noti_level = Codec.get_uvarint r in
       if noti_level >= c.d then malformed "noti_level out of range";
       Intbuf.push buf noti_level;
       ignore (get_cells c r buf)
     end
     else if kind = kind_join_noti_rly then begin
       let sign = Codec.get_uvarint r in
       if sign > 1 then malformed "bad sign";
       Intbuf.push buf sign;
       ignore (get_cells c r buf)
     end
     else if kind = kind_rv_ngh_noti then begin
       let level = Codec.get_uvarint r in
       let digit = Codec.get_uvarint r in
       let sbit = Codec.get_uvarint r in
       if level >= c.d || digit >= c.b || sbit > 1 then malformed "bad rv_ngh_noti";
       Intbuf.push3 buf level digit sbit
     end
     else if kind = kind_rv_fix then begin
       let level = Codec.get_uvarint r in
       let digit = Codec.get_uvarint r in
       if level >= c.d || digit >= c.b then malformed "bad rv_fix";
       Intbuf.push2 buf level digit
     end
     else malformed "unknown frame kind");
    Intbuf.set buf hdr (Intbuf.length buf - hdr - 4);
    incr frames
  done;
  !frames
