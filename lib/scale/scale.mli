(** Sharded join-and-stabilize engine for very large runs.

    One run holds the whole population in {!Node_store} arenas — one arena
    per logical shard, nodes assigned by id suffix region (low bits of the
    packed id) — and advances in integer {e epochs}. Within an epoch every
    shard processes its due message frames independently; frames addressed
    to another shard are batched through the wire codec ({!Wire}) and handed
    over at the epoch barrier. Message latency is a pure hash of (src, dst)
    in [1 .. Wire.max_latency] epochs, so the computation is a deterministic
    function of the configuration: running with [jobs = 4] produces the same
    summary, bit for bit, as [jobs = 1].

    The protocol is the paper's join in epoch form: a copy walk
    (CpRst/CpRly) up the shared-suffix levels, an attach handshake
    (JoinWait/JoinWaitRly) with deferral while the target is itself
    notifying and redirects toward longer-suffix occupants, a notify round
    (JoinNoti/JoinNotiRly) installing the joiner at its peers, an in-system
    fanout over reverse pointers, and reverse-pointer upkeep
    (RvNghNoti/RvFix). A final stabilize pass force-completes stragglers,
    fills residual holes from a serial witness index, and counts remaining
    violations (which must be zero). *)

type config = {
  params : Ntcu_id.Params.t;  (** must be packable *)
  n : int;  (** total population, seeds included *)
  seeds : int;  (** initially in-system nodes, witness-filled *)
  seed : int;  (** RNG seed for id generation *)
  shards : int;  (** logical shard count; power of two. Fixed regardless of
                     [jobs], so worker count never affects partitioning. *)
  inject_per_epoch : int;  (** joiners started per epoch *)
  max_epochs : int;  (** safety bound on the epoch loop *)
}

type summary = {
  population : int;
  seed_count : int;
  shard_count : int;
  epochs : int;  (** epochs executed before quiescence *)
  injected : int;  (** joiners started *)
  events : int;  (** message frames processed *)
  kind_counts : (string * int) list;  (** frames processed per message kind *)
  cross_batches : int;  (** nonempty shard-to-shard batches moved *)
  cross_bytes : int;  (** wire bytes of those batches *)
  redirects : int;  (** JoinWait redirects toward longer-suffix occupants *)
  deferrals : int;  (** JoinWaits queued behind a notifying target *)
  stuck : int;  (** nodes force-completed by stabilize *)
  stabilize_fills : int;  (** residual holes filled from the witness index *)
  violations : int;  (** holes with a live witness after stabilize *)
  store_words : int;  (** deterministic arena size, summed over shards *)
  shard_events : int array;  (** per-shard frame counts (load imbalance) *)
}

val run : ?jobs:int -> config -> summary
(** Execute the run. [jobs] sizes the worker pool ({!Ntcu_std.Parallel});
    it accelerates the run but never changes the summary.
    @raise Invalid_argument on an unpackable space, a non-power-of-two
    shard count, or [seeds] outside [1 .. n]. *)
