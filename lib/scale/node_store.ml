module Params = Ntcu_id.Params
module Packed = Ntcu_id.Packed

(* Struct-of-arrays arena for node hot state.

   The record-based simulator spends its memory on one [Node.t] record, one
   [Table.t] (a [slot option array] of pointers plus [Id.Set.t] reverse sets)
   and several [Id.Tbl] entries per node — every table cell is a boxed
   2-field record pointing at a boxed int array id. Here the same state is
   flat columns of a single arena:

   - [ids]: packed id per slot ([-1] = free slot);
   - [status]: one byte per slot;
   - [cells]: [d*b] ints per slot, the (level, digit) entry's occupant as a
     packed id or [-1];
   - [cstate]: one bit per cell, the occupant's believed T/S state;
   - [filled]: filled-cell count per slot;
   - a shared int-pair pool carrying all per-node linked lists (reverse
     pointers and the join-time bookkeeping queues), with one list head
     column per list kind.

   Per-node cost is dominated by [d*b] cell words — 8 bytes per entry versus
   the record layout's option-boxed pointer + slot record + shared id
   arrays — and everything is indexed by slot int, so the only remaining
   hashing is one int-keyed [slot_of] lookup per delivered message.

   Churn reuses slots through a free stack; [remove] releases the node's pool
   lists. Like [Network.remove], it does not scrub other nodes' cells that
   reference the departed id — the consistency checker reports those as
   dangling, matching the record semantics. *)

type t = {
  lay : Packed.layout;
  d : int;
  b : int;
  mutable cap : int; (* allocated slots *)
  mutable live : int;
  mutable high : int; (* slots ever handed out; scan bound for iteration *)
  mutable ids : int array;
  mutable status : Bytes.t;
  mutable cells : int array;
  mutable cstate : Bytes.t; (* bit per cell *)
  mutable filled : int array;
  mutable rev_head : int array;
  mutable aux_head : int array array; (* aux list kind -> per-slot head column *)
  slot_of : (int, int) Hashtbl.t;
  mutable free_stack : int array;
  mutable free_top : int;
  (* shared pool of (value, tag, next) triples for all linked lists *)
  mutable pool_val : int array;
  mutable pool_tag : int array;
  mutable pool_next : int array;
  mutable pool_free : int; (* head of pool free list, -1 = none *)
  mutable pool_used : int; (* high-water mark of pool slots handed out *)
}

let state_t = 0
let state_s = 1

(* Node statuses, one byte each. [free] marks an unallocated slot. *)
let status_free = 0
let status_copying = 1
let status_waiting = 2
let status_notifying = 3
let status_in_system = 4

let aux_kinds = 2 (* join bookkeeping: notified set, deferred join-waits *)

let create ?(cap = 1024) (p : Params.t) =
  if not (Packed.packable p) then
    invalid_arg "Node_store.create: parameter space is not packable";
  let cap = max cap 1 in
  let lay = Packed.layout p in
  {
    lay;
    d = p.d;
    b = p.b;
    cap;
    live = 0;
    high = 0;
    ids = Array.make cap (-1);
    status = Bytes.make cap (Char.chr status_free);
    cells = Array.make (cap * p.d * p.b) (-1);
    cstate = Bytes.make ((cap * p.d * p.b / 8) + 1) '\000';
    filled = Array.make cap 0;
    rev_head = Array.make cap (-1);
    aux_head = Array.init aux_kinds (fun _ -> Array.make cap (-1));
    slot_of = Hashtbl.create (2 * cap);
    free_stack = Array.make cap 0;
    free_top = 0;
    pool_val = Array.make cap 0;
    pool_tag = Array.make cap 0;
    pool_next = Array.make cap (-1);
    pool_free = -1;
    pool_used = 0;
  }

let layout t = t.lay
let params t = Packed.params t.lay
let live t = t.live
let capacity t = t.cap
let high_slot t = t.high

(* ---- growth ---- *)

let grow_slots t needed =
  let ncap = max needed (2 * t.cap) in
  let nids = Array.make ncap (-1) in
  Array.blit t.ids 0 nids 0 t.cap;
  t.ids <- nids;
  let nstatus = Bytes.make ncap (Char.chr status_free) in
  Bytes.blit t.status 0 nstatus 0 t.cap;
  t.status <- nstatus;
  let stride = t.d * t.b in
  let ncells = Array.make (ncap * stride) (-1) in
  Array.blit t.cells 0 ncells 0 (t.cap * stride);
  t.cells <- ncells;
  let ncstate = Bytes.make ((ncap * stride / 8) + 1) '\000' in
  Bytes.blit t.cstate 0 ncstate 0 (Bytes.length t.cstate) ;
  t.cstate <- ncstate;
  let copy_col col =
    let ncol = Array.make ncap (-1) in
    Array.blit col 0 ncol 0 t.cap;
    ncol
  in
  t.filled <-
    (let nf = Array.make ncap 0 in
     Array.blit t.filled 0 nf 0 t.cap;
     nf);
  t.rev_head <- copy_col t.rev_head;
  t.aux_head <- Array.map copy_col t.aux_head;
  let nfree = Array.make ncap 0 in
  Array.blit t.free_stack 0 nfree 0 t.free_top;
  t.free_stack <- nfree;
  t.cap <- ncap

let ensure_capacity t n = if n > t.cap then grow_slots t n

(* ---- pool (linked lists of (value, tag) pairs) ---- *)

let pool_alloc t v tag next =
  match t.pool_free with
  | -1 ->
    let i = t.pool_used in
    if i = Array.length t.pool_val then begin
      let ncap = 2 * Array.length t.pool_val in
      let gr a = let n = Array.make ncap 0 in Array.blit a 0 n 0 i; n in
      t.pool_val <- gr t.pool_val;
      t.pool_tag <- gr t.pool_tag;
      t.pool_next <- gr t.pool_next
    end;
    t.pool_used <- i + 1;
    t.pool_val.(i) <- v;
    t.pool_tag.(i) <- tag;
    t.pool_next.(i) <- next;
    i
  | i ->
    t.pool_free <- t.pool_next.(i);
    t.pool_val.(i) <- v;
    t.pool_tag.(i) <- tag;
    t.pool_next.(i) <- next;
    i

let pool_release_list t head =
  let i = ref head in
  while !i <> -1 do
    let next = t.pool_next.(!i) in
    t.pool_next.(!i) <- t.pool_free;
    t.pool_free <- !i;
    i := next
  done

(* ---- slots ---- *)

let find t pid = Hashtbl.find_opt t.slot_of (pid : Packed.t :> int)
let mem t pid = Hashtbl.mem t.slot_of (pid : Packed.t :> int)

let slot_exn t pid =
  match find t pid with
  | Some s -> s
  | None -> invalid_arg "Node_store: unknown node"

let id_of t slot = Packed.unsafe_of_int t.ids.(slot)

let add t pid =
  let key = (pid : Packed.t :> int) in
  if Hashtbl.mem t.slot_of key then invalid_arg "Node_store.add: id already present";
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free_stack.(t.free_top)
    end
    else begin
      if t.high = t.cap then grow_slots t (t.high + 1);
      let s = t.high in
      t.high <- t.high + 1;
      s
    end
  in
  t.ids.(slot) <- key;
  Bytes.set t.status slot (Char.chr status_copying);
  t.live <- t.live + 1;
  Hashtbl.replace t.slot_of key slot;
  slot

let cell_base t slot = slot * t.d * t.b

let clear_slot_cells t slot =
  let base = cell_base t slot in
  for i = base to base + (t.d * t.b) - 1 do
    t.cells.(i) <- -1
  done;
  t.filled.(slot) <- 0

let remove t pid =
  let key = (pid : Packed.t :> int) in
  match Hashtbl.find_opt t.slot_of key with
  | None -> invalid_arg "Node_store.remove: unknown node"
  | Some slot ->
    Hashtbl.remove t.slot_of key;
    t.ids.(slot) <- -1;
    Bytes.set t.status slot (Char.chr status_free);
    clear_slot_cells t slot;
    pool_release_list t t.rev_head.(slot);
    t.rev_head.(slot) <- -1;
    Array.iter
      (fun col ->
        pool_release_list t col.(slot);
        col.(slot) <- -1)
      t.aux_head;
    if t.free_top = Array.length t.free_stack then begin
      let nf = Array.make (2 * t.free_top) 0 in
      Array.blit t.free_stack 0 nf 0 t.free_top;
      t.free_stack <- nf
    end;
    t.free_stack.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1;
    t.live <- t.live - 1

let status t slot = Char.code (Bytes.get t.status slot)
let set_status t slot st = Bytes.set t.status slot (Char.chr st)

(* ---- cells ---- *)

let cell_index t slot ~level ~digit =
  if level < 0 || level >= t.d || digit < 0 || digit >= t.b then
    invalid_arg "Node_store: cell position out of range";
  cell_base t slot + (level * t.b) + digit

let cell t slot ~level ~digit = t.cells.(cell_index t slot ~level ~digit)

let cell_state t idx =
  Char.code (Bytes.get t.cstate (idx lsr 3)) lsr (idx land 7) land 1

let set_cell_state t idx st =
  let byte = Char.code (Bytes.get t.cstate (idx lsr 3)) in
  let bit = 1 lsl (idx land 7) in
  let byte = if st = state_s then byte lor bit else byte land lnot bit in
  Bytes.set t.cstate (idx lsr 3) (Char.chr byte)

let state t slot ~level ~digit =
  let idx = cell_index t slot ~level ~digit in
  if t.cells.(idx) = -1 then invalid_arg "Node_store.state: empty entry";
  cell_state t idx

(* The occupant of the (level, digit) entry must share the owner's low
   [level] digits and have [digit] at position [level] — same validation as
   [Table.set], expressed on packed values. *)
let required_ok t slot ~level ~digit pid =
  let key = (pid : Packed.t :> int) in
  let owner = t.ids.(slot) in
  let bits = Packed.bits t.lay in
  let low_mask = (1 lsl (level * bits)) - 1 in
  key land low_mask = owner land low_mask && (key lsr (level * bits)) land ((1 lsl bits) - 1) = digit

let set t slot ~level ~digit pid st =
  if not (required_ok t slot ~level ~digit pid) then
    invalid_arg "Node_store.set: node does not carry the entry's required suffix";
  let idx = cell_index t slot ~level ~digit in
  if t.cells.(idx) = -1 then t.filled.(slot) <- t.filled.(slot) + 1;
  t.cells.(idx) <- (pid : Packed.t :> int);
  set_cell_state t idx st

let clear_cell t slot ~level ~digit =
  let idx = cell_index t slot ~level ~digit in
  if t.cells.(idx) <> -1 then begin
    t.cells.(idx) <- -1;
    t.filled.(slot) <- t.filled.(slot) - 1
  end

let set_state t slot ~level ~digit st =
  let idx = cell_index t slot ~level ~digit in
  if t.cells.(idx) = -1 then invalid_arg "Node_store.set_state: empty entry";
  set_cell_state t idx st

let filled_count t slot = t.filled.(slot)

let fill_self t slot st =
  let owner = Packed.unsafe_of_int t.ids.(slot) in
  for level = 0 to t.d - 1 do
    set t slot ~level ~digit:(Packed.digit t.lay owner level) owner st
  done

(* ---- reverse neighbors ---- *)

(* One list entry per (storer, level, digit) registration, newest first —
   the flat analogue of [Table.add_reverse]. Duplicate registrations are the
   caller's concern (the protocol installs into an empty cell exactly once
   per position). *)
let add_reverse t slot ~storer ~level ~digit =
  let pos = (level * t.b) + digit in
  t.rev_head.(slot) <-
    pool_alloc t (storer : Packed.t :> int) pos t.rev_head.(slot)

let iter_reverse t slot f =
  let i = ref t.rev_head.(slot) in
  while !i <> -1 do
    f (Packed.unsafe_of_int t.pool_val.(!i)) ~pos:t.pool_tag.(!i);
    i := t.pool_next.(!i)
  done

let remove_reverse t slot pid =
  let key = (pid : Packed.t :> int) in
  let rec filter i =
    if i = -1 then -1
    else begin
      let next = filter t.pool_next.(i) in
      if t.pool_val.(i) = key then begin
        t.pool_next.(i) <- t.pool_free;
        t.pool_free <- i;
        next
      end
      else begin
        t.pool_next.(i) <- next;
        i
      end
    end
  in
  t.rev_head.(slot) <- filter t.rev_head.(slot)

(* ---- aux lists (join bookkeeping) ---- *)

let aux_push t ~kind slot v =
  let col = t.aux_head.(kind) in
  col.(slot) <- pool_alloc t v 0 col.(slot)

let aux_mem t ~kind slot v =
  let i = ref t.aux_head.(kind).(slot) in
  let found = ref false in
  while (not !found) && !i <> -1 do
    if t.pool_val.(!i) = v then found := true else i := t.pool_next.(!i)
  done;
  !found

let aux_iter t ~kind slot f =
  let i = ref t.aux_head.(kind).(slot) in
  while !i <> -1 do
    f t.pool_val.(!i);
    i := t.pool_next.(!i)
  done

let aux_clear t ~kind slot =
  pool_release_list t t.aux_head.(kind).(slot);
  t.aux_head.(kind).(slot) <- -1

(* ---- memory accounting ---- *)

(* Deterministic structural size in words: every column counted exactly, the
   int-keyed hashtable estimated at 4 words per live binding (bucket pointer
   amortized + 3-word bucket cell), which slightly undercounts its internal
   array slack. Host-side [Gc] measurements complement this in the bench. *)
let words t =
  let arr (a : int array) = Array.length a + 1 in
  let bytes (b : Bytes.t) = (Bytes.length b / 8) + 2 in
  arr t.ids + bytes t.status + arr t.cells + bytes t.cstate + arr t.filled
  + arr t.rev_head
  + Array.fold_left (fun acc col -> acc + arr col) 0 t.aux_head
  + arr t.free_stack + arr t.pool_val + arr t.pool_tag + arr t.pool_next
  + (4 * Hashtbl.length t.slot_of)
