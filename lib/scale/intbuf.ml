(* Growable int buffer — the workhorse of the sharded engine. Event frames,
   outboxes and scratch rows are all flat int sequences appended in place and
   cleared (not freed) between epochs, so the steady state allocates
   nothing. *)

type t = { mutable a : int array; mutable len : int }

let create ?(cap = 64) () = { a = Array.make (max 1 cap) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0

let grow t needed =
  let cap = max needed (2 * Array.length t.a) in
  let na = Array.make cap 0 in
  Array.blit t.a 0 na 0 t.len;
  t.a <- na

let push t v =
  if t.len = Array.length t.a then grow t (t.len + 1);
  t.a.(t.len) <- v;
  t.len <- t.len + 1

let push2 t v1 v2 =
  if t.len + 2 > Array.length t.a then grow t (t.len + 2);
  t.a.(t.len) <- v1;
  t.a.(t.len + 1) <- v2;
  t.len <- t.len + 2

let push3 t v1 v2 v3 =
  if t.len + 3 > Array.length t.a then grow t (t.len + 3);
  t.a.(t.len) <- v1;
  t.a.(t.len + 1) <- v2;
  t.a.(t.len + 2) <- v3;
  t.len <- t.len + 3

let get t i = t.a.(i)
let set t i v = t.a.(i) <- v

let words t = Array.length t.a + 3
