(** Chord ring maintenance as a deterministic discrete-event simulation.

    Nodes keep a successor list, a predecessor pointer and a finger table
    over the ring of integer keys [0 .. b^d - 1] (an identifier's key is the
    numeric value of its digits, so key order coincides with [Id.compare]).
    Periodic {e stabilization} rounds implement Zave's corrected protocol
    (arXiv:1502.06461): a node asks its first {e live} successor for its
    predecessor and successor list, adopts an in-interval predecessor only
    after a liveness check, refreshes its successor list through the live
    head, and notifies the head, whose {e rectify} replaces a dead or
    out-of-interval predecessor. Liveness checks consult the simulation's
    membership oracle — the model of the paper's perfect failure detector
    assumption.

    With [naive = true] the same machinery reproduces the classic incorrect
    stabilize of the original protocol, per Zave's analysis: successor lists
    degenerate to a single pointer, stabilize adopts the successor's
    predecessor {e without} a liveness check, notify never evicts a dead
    predecessor, and routing does not route around dead nodes. Under crash
    timing that only an adversarial schedule produces, the poison spreads and
    the ring invariant breaks permanently — the differential signal the
    explore layer hunts for.

    Maintenance is bounded ([rounds] stabilization rounds per node), so every
    run quiesces; all timers and message delays are deterministic in the
    config and latency model. *)

module Protocol := Ntcu_protocol.Protocol

type config = {
  params : Ntcu_id.Params.t;
  naive : bool;  (** Classic incorrect stabilize (see above). *)
  succ_len : int;  (** Successor-list length; forced to 1 by [naive]. *)
  stabilize_every : float;  (** Round period, virtual ms. *)
  rounds : int;  (** Stabilization rounds per node before it goes quiet. *)
  fingers_per_round : int;  (** Finger entries refreshed per round. *)
  join_retries : int;  (** Join-lookup retries before a joiner gives up. *)
}

val default_config : Ntcu_id.Params.t -> config
(** Correct mode, [succ_len = 4], 500 ms rounds, 16 of them, 2 fingers per
    round, 3 retries. *)

type t

val create : ?latency:Ntcu_sim.Latency.t -> ?record_trace:bool -> config -> t
(** @raise Invalid_argument if [b^d] does not fit an [int]. *)

val engine : t -> Ntcu_sim.Engine.t
val trace : t -> Ntcu_sim.Trace.t option

val set_delay_hook : t -> Protocol.delay_hook option -> unit
(** Same contract as [Ntcu_core.Network.set_delay_hook]: frames are numbered
    by [seq] in scheduling order; join lookups and notifies are the
    ordering-critical frames. *)

val seed_ring : t -> Ntcu_id.Id.t list -> unit
(** Install the initial members with exact successor lists, predecessors and
    fingers, as a long-stable ring would have them. Registration order (and
    hence latency-model host indices) follows the list. *)

val start_join : t -> ?at:float -> id:Ntcu_id.Id.t -> gateway:Ntcu_id.Id.t -> unit -> unit
val leave : t -> ?at:float -> Ntcu_id.Id.t -> unit
(** Graceful departure with handoff (correct mode); in naive mode the node
    simply stops — the original protocol has no leave handshake. *)

val crash : t -> Ntcu_id.Id.t -> unit
(** Immediate fail-stop, no messages. *)

val run : ?max_events:int -> t -> unit

val members : t -> Ntcu_id.Id.t list
(** Live fully-joined members, sorted by [Id.compare]. *)

val is_member : t -> Ntcu_id.Id.t -> bool

val ring_consistent : t -> bool
(** Cheap probe: every live member's first live successor is the next live
    member in key order. *)

val check : t -> Protocol.violation list
(** Ring-specific invariant sweep, one violation per category:
    ["chord-liveness"] (every live joiner became a member),
    ["chord-ring"] (valid first live successor),
    ["chord-succlist"] (successor lists live, duplicate-free and in ring
    order), ["chord-appendage"] (successor chains from every live node reach
    the one ring cycle, which covers all members — Zave's appendage-ring
    structure), ["chord-pred"] (predecessors live and exact). *)

val lookup : t -> src:Ntcu_id.Id.t -> target:Ntcu_id.Id.t -> Ntcu_id.Id.t list option
(** Greedy closest-preceding-finger walk over the final state; the path ends
    at [target] iff the lookup is correct. *)

val messages_delivered : t -> int
val traffic : t -> Protocol.traffic

val protocol : ?naive:bool -> unit -> (module Protocol.S)
(** The {!Protocol.S} view the arena drives. [Protocol.config]'s
    [maintain_every]/[rounds] map to the stabilization knobs. *)
