module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Engine = Ntcu_sim.Engine
module Latency = Ntcu_sim.Latency
module Trace = Ntcu_sim.Trace
module Protocol = Ntcu_protocol.Protocol

type config = {
  params : Params.t;
  naive : bool;
  succ_len : int;
  stabilize_every : float;
  rounds : int;
  fingers_per_round : int;
  join_retries : int;
}

let default_config params =
  {
    params;
    naive = false;
    succ_len = 4;
    stabilize_every = 500.;
    rounds = 16;
    fingers_per_round = 2;
    join_retries = 3;
  }

type status = Joining | Active | Dead

type cnode = {
  id : Id.t;
  key : int;
  host : int;
  mutable status : status;
  mutable succs : Id.t list; (* nearest first; correct mode keeps it live *)
  mutable pred : Id.t option;
  fingers : Id.t option array; (* [i] ~ successor of key + 2^i *)
  mutable next_finger : int;
  mutable gateway : Id.t option; (* join gateway, for bounded retries *)
  mutable retries_left : int;
}

type purpose = P_join | P_finger of int

type msg =
  | C_find_succ of { target : int; origin : Id.t; purpose : purpose; hops : int }
  | C_found of { owner : Id.t; purpose : purpose; hops : int }
  | C_get_state
  | C_state of { pred : Id.t option; succs : Id.t list }
  | C_notify
  | C_leave_pred of { succs : Id.t list } (* leaver -> predecessor: my list *)
  | C_leave_succ of { pred : Id.t option } (* leaver -> successor: my pred *)

let msg_label = function
  | C_find_succ { hops; _ } -> Printf.sprintf "find/%d" hops
  | C_found { hops; _ } -> Printf.sprintf "found/%d" hops
  | C_get_state -> "get_state"
  | C_state _ -> "state"
  | C_notify -> "notify"
  | C_leave_pred _ -> "leave_pred"
  | C_leave_succ _ -> "leave_succ"

(* Join lookups and notifies are where delivery order decides which candidate
   a node sees first — the frames a targeted adversary reorders. Periodic
   stabilization traffic is self-correcting and left alone, which keeps
   intervention lists sparse and shrinkable. *)
let critical_msg = function
  | C_find_succ { purpose = P_join; _ } | C_found { purpose = P_join; _ } | C_notify ->
    true
  | C_find_succ _ | C_found _ | C_get_state | C_state _ | C_leave_pred _ | C_leave_succ _
    ->
    false

type t = {
  params : Params.t;
  naive : bool;
  succ_len : int;
  stabilize_every : float;
  rounds : int;
  fingers_per_round : int;
  join_retries : int;
  space : int; (* b^d ring positions *)
  bits : int; (* finger-table size: ceil(log2 space) *)
  hop_limit : int;
  engine : Engine.t;
  latency : Latency.t;
  trace : Trace.t option;
  nodes : cnode Id.Tbl.t;
  mutable order : Id.t list; (* registration order, newest first *)
  mutable next_host : int;
  mutable hook : Protocol.delay_hook option;
  mutable seq : int;
  mutable delivered : int;
  mutable join_msgs : int;
  mutable maintain_msgs : int;
}

let key_space (p : Params.t) =
  let rec go i acc =
    if i = p.d then acc
    else if acc > max_int / p.b then invalid_arg "Chord: b^d does not fit an int"
    else go (i + 1) (acc * p.b)
  in
  go 0 1

let key_of (p : Params.t) id =
  let k = ref 0 in
  for i = p.d - 1 downto 0 do
    k := (!k * p.b) + Id.digit id i
  done;
  !k

let create ?latency ?(record_trace = false) (cfg : config) =
  let latency = match latency with Some l -> l | None -> Latency.constant 1.0 in
  let space = key_space cfg.params in
  let bits =
    let rec go b = if 1 lsl b >= space then b else go (b + 1) in
    go 1
  in
  {
    params = cfg.params;
    naive = cfg.naive;
    succ_len = (if cfg.naive then 1 else max 1 cfg.succ_len);
    stabilize_every = cfg.stabilize_every;
    rounds = cfg.rounds;
    fingers_per_round = cfg.fingers_per_round;
    join_retries = cfg.join_retries;
    space;
    bits;
    hop_limit = 8 * bits;
    engine = Engine.create ();
    latency;
    trace = (if record_trace then Some (Trace.create ()) else None);
    nodes = Id.Tbl.create 256;
    order = [];
    next_host = 0;
    hook = None;
    seq = 0;
    delivered = 0;
    join_msgs = 0;
    maintain_msgs = 0;
  }

let engine t = t.engine
let trace t = t.trace
let set_delay_hook t hook = t.hook <- hook

let find t id =
  match Id.Tbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Chord: unknown node %a" Id.pp id)

let key t id = (find t id).key

let alive t id =
  match Id.Tbl.find_opt t.nodes id with
  | Some n -> ( match n.status with Dead -> false | Joining | Active -> true)
  | None -> false

let is_active u = match u.status with Active -> true | Joining | Dead -> false

(* Ring intervals over keys in [0, space). [a = b] denotes the full circle
   (single-member ring), matching the usual Chord convention. *)
let between k a b = if a < b then a < k && k < b else if a > b then k > a || k < b else k <> a

let in_half_open k a b =
  if a < b then a < k && k <= b else if a > b then k > a || k <= b else true

(* First successor the node will actually use: the live head in correct mode;
   the raw head — dead or not — in naive mode (no liveness checking is one of
   the classic bugs). *)
let first_succ t u =
  if t.naive then (match u.succs with s :: _ -> Some s | [] -> None)
  else List.find_opt (fun s -> alive t s) u.succs

let register t node =
  if Id.Tbl.mem t.nodes node.id then invalid_arg "Chord: duplicate node";
  Id.Tbl.add t.nodes node.id node;
  t.order <- node.id :: t.order;
  t.next_host <- t.next_host + 1

let make_node t ~status id =
  {
    id;
    key = key_of t.params id;
    host = t.next_host;
    status;
    succs = [];
    pred = None;
    fingers = Array.make t.bits None;
    next_finger = 0;
    gateway = None;
    retries_left = 0;
  }

let count_msg t msg =
  match msg with
  | C_find_succ { purpose = P_join; _ } | C_found { purpose = P_join; _ } ->
    t.join_msgs <- t.join_msgs + 1
  | C_find_succ _ | C_found _ | C_get_state | C_state _ | C_notify | C_leave_pred _
  | C_leave_succ _ ->
    t.maintain_msgs <- t.maintain_msgs + 1

let rec send t ~src ~dst msg =
  count_msg t msg;
  let a = find t src and b = find t dst in
  let delay = Latency.sample t.latency ~src:a.host ~dst:b.host in
  let seq = t.seq in
  t.seq <- seq + 1;
  let delay =
    match t.hook with
    | None -> delay
    | Some h -> h ~critical:(critical_msg msg) ~src ~dst ~seq delay
  in
  let delay = if delay <= 0. then Latency.min_delay else delay in
  Engine.schedule t.engine ~delay (fun () -> deliver t ~src ~dst msg)

and deliver t ~src ~dst msg =
  t.delivered <- t.delivered + 1;
  (match t.trace with
  | Some tr ->
    Trace.record tr (Engine.now t.engine)
      (Fmt.str "%a>%a %s" Id.pp src Id.pp dst (msg_label msg))
  | None -> ());
  let v = find t dst in
  match v.status with
  | Dead -> () (* fail-stop: inbound frames vanish *)
  | Joining | Active -> (
    match msg with
    | C_find_succ { target; origin; purpose; hops } ->
      if is_active v then handle_find_succ t v ~target ~origin ~purpose ~hops
    | C_found { owner; purpose; hops } -> handle_found t v ~owner ~purpose ~hops
    | C_get_state -> send t ~src:dst ~dst:src (C_state { pred = v.pred; succs = v.succs })
    | C_state { pred; succs } -> if is_active v then handle_state t v ~from:src ~pred ~succs
    | C_notify -> handle_notify t v ~candidate:src
    | C_leave_pred { succs } -> handle_leave_pred t v ~leaver:src ~succs
    | C_leave_succ { pred } -> handle_leave_succ t v ~leaver:src ~pred)

(* Greedy routing: the finger (or successor) most closely preceding [target].
   Correct mode routes around dead entries; naive mode trusts its state. *)
and closest_preceding t u ~target =
  let ok id = if t.naive then Id.Tbl.mem t.nodes id else alive t id in
  let rec scan i =
    if i < 0 then None
    else
      match u.fingers.(i) with
      | Some f when ok f && between (key t f) u.key target -> Some f
      | Some _ | None -> scan (i - 1)
  in
  match scan (t.bits - 1) with
  | Some f -> Some f
  | None -> (
    match first_succ t u with
    | Some s when between (key t s) u.key target -> Some s
    | Some _ | None -> None)

and handle_find_succ t v ~target ~origin ~purpose ~hops =
  if hops <= t.hop_limit then
    match first_succ t v with
    | None -> () (* no successor to answer with: the lookup is lost *)
    | Some s ->
      if in_half_open target v.key (key t s) then
        send t ~src:v.id ~dst:origin (C_found { owner = s; purpose; hops })
      else begin
        match closest_preceding t v ~target with
        | Some next when not (Id.equal next v.id) ->
          send t ~src:v.id ~dst:next
            (C_find_succ { target; origin; purpose; hops = hops + 1 })
        | Some _ | None -> (
          (* Fall through the ring when no finger precedes the target. *)
          match first_succ t v with
          | Some s when not (Id.equal s v.id) && hops < t.hop_limit ->
            send t ~src:v.id ~dst:s
              (C_find_succ { target; origin; purpose; hops = hops + 1 })
          | Some _ | None -> ())
      end

and handle_found t x ~owner ~purpose ~hops =
  ignore hops;
  match purpose with
  | P_finger i -> if is_active x then x.fingers.(i) <- Some owner
  | P_join -> (
    match x.status with
    | Active | Dead -> () (* duplicate answer after a retry: already joined *)
    | Joining ->
      x.succs <- [ owner ];
      x.status <- Active;
      x.gateway <- None;
      send t ~src:x.id ~dst:owner C_notify;
      (* Zave: a member must hold a real successor list, not a lone pointer —
         fetch the head's list right away instead of waiting a full round.
         The naive variant keeps the lone pointer (the classic join). *)
      if not t.naive then send t ~src:x.id ~dst:owner C_get_state)

and handle_state t u ~from ~pred ~succs =
  let vkey = key t from in
  (if t.naive then begin
     (* Classic stabilize: adopt the successor's predecessor when it sits in
        the interval — no liveness check, single-pointer "list". *)
     match pred with
     | Some w when between (key t w) u.key vkey -> u.succs <- [ w ]
     | Some _ | None -> ()
   end
   else begin
     let adopted =
       match pred with
       | Some w when between (key t w) u.key vkey && alive t w -> [ w ]
       | Some _ | None -> []
     in
     (* Refresh the successor list through the live head, keeping entries in
        ring order and dropping the dead, the self and duplicates. *)
     let merged = adopted @ (from :: succs) in
     let seen = ref Id.Set.empty in
     let cleaned =
       List.filter
         (fun x ->
           alive t x
           && (not (Id.equal x u.id))
           &&
           if Id.Set.mem x !seen then false
           else begin
             seen := Id.Set.add x !seen;
             true
           end)
         merged
     in
     u.succs <- List.filteri (fun i _ -> i < t.succ_len) cleaned
   end);
  match first_succ t u with
  | Some s when not (Id.equal s u.id) -> send t ~src:u.id ~dst:s C_notify
  | Some _ | None -> ()

and handle_notify t v ~candidate =
  if t.naive then begin
    (* Classic notify: in-interval check only — a dead predecessor is never
       evicted, so its poison is permanent. *)
    match v.pred with
    | None -> v.pred <- Some candidate
    | Some w ->
      if between (key t candidate) (key t w) v.key then v.pred <- Some candidate
  end
  else if alive t candidate then begin
    (* Rectify: replace a missing, dead or out-of-interval predecessor. *)
    match v.pred with
    | None -> v.pred <- Some candidate
    | Some w ->
      if (not (alive t w)) || between (key t candidate) (key t w) v.key then
        v.pred <- Some candidate
  end

and handle_leave_pred t p ~leaver ~succs =
  if is_active p then begin
    let merged = p.succs @ succs in
    let seen = ref Id.Set.empty in
    let cleaned =
      List.filter
        (fun x ->
          (not (Id.equal x leaver))
          && alive t x
          && (not (Id.equal x p.id))
          &&
          if Id.Set.mem x !seen then false
          else begin
            seen := Id.Set.add x !seen;
            true
          end)
        merged
    in
    p.succs <- List.filteri (fun i _ -> i < t.succ_len) cleaned
  end

and handle_leave_succ t s ~leaver ~pred =
  match s.pred with
  | Some w when Id.equal w leaver -> (
    match pred with Some p when alive t p -> s.pred <- Some p | Some _ | None -> s.pred <- None)
  | Some _ | None -> ()

(* ---- periodic maintenance (bounded rounds) ---- *)

let stabilize t u =
  (if not t.naive then begin
     u.succs <- List.filter (alive t) u.succs;
     match (u.succs, u.pred) with
     | [], Some p when alive t p ->
       (* Emergency fallback: a fully dead list walks back through pred. *)
       u.succs <- [ p ]
     | _, _ -> ()
   end);
  match u.succs with
  | [] -> ()
  | s :: _ -> if not (Id.equal s u.id) then send t ~src:u.id ~dst:s C_get_state

let fix_fingers t u =
  for _ = 1 to t.fingers_per_round do
    let i = u.next_finger in
    u.next_finger <- (i + 1) mod t.bits;
    let target = (u.key + (1 lsl i)) mod t.space in
    handle_find_succ t u ~target ~origin:u.id ~purpose:(P_finger i) ~hops:0
  done

let schedule_rounds t u ~from =
  (* Deterministic per-node phase: registration order staggers rounds so the
     population does not stabilize in lockstep. *)
  let phase = float_of_int u.host *. 1e-3 in
  for r = 1 to t.rounds do
    Engine.schedule_at t.engine
      ~time:(from +. (float_of_int r *. t.stabilize_every) +. phase)
      (fun () ->
        if is_active u then begin
          stabilize t u;
          fix_fingers t u
        end)
  done

(* ---- workload entry points ---- *)

let sorted_by_key nodes = List.sort (fun a b -> compare a.key b.key) nodes

let seed_ring t ids =
  if List.is_empty ids then invalid_arg "Chord.seed_ring: empty member list";
  List.iter (fun id -> register t (make_node t ~status:Active id)) ids;
  let ring = Array.of_list (sorted_by_key (List.map (find t) ids)) in
  let n = Array.length ring in
  let succ_of_key k =
    (* First member at or clockwise after ring position [k]. *)
    let rec bsearch lo hi = if lo >= hi then lo else
        let mid = (lo + hi) / 2 in
        if ring.(mid).key < k then bsearch (mid + 1) hi else bsearch lo mid
    in
    let i = bsearch 0 n in
    ring.(i mod n)
  in
  Array.iteri
    (fun i u ->
      let succs = ref [] in
      for j = min (t.succ_len) (n - 1) downto 1 do
        succs := ring.((i + j) mod n).id :: !succs
      done;
      u.succs <- !succs;
      u.pred <- (if n > 1 then Some ring.((i + n - 1) mod n).id else None);
      for b = 0 to t.bits - 1 do
        let target = (u.key + (1 lsl b)) mod t.space in
        u.fingers.(b) <- Some (succ_of_key target).id
      done)
    ring;
  Array.iter (fun u -> schedule_rounds t u ~from:(Engine.now t.engine)) ring

let start_join t ?at ~id ~gateway () =
  let u = make_node t ~status:Joining id in
  register t u;
  ignore (find t gateway);
  u.gateway <- Some gateway;
  u.retries_left <- t.join_retries;
  let time = match at with Some time -> time | None -> Engine.now t.engine in
  let ask () =
    if (match u.status with Joining -> true | Active | Dead -> false) then
      match u.gateway with
      | Some gw when alive t gw ->
        send t ~src:u.id ~dst:gw
          (C_find_succ { target = u.key; origin = u.id; purpose = P_join; hops = 0 })
      | Some _ | None -> ()
  in
  Engine.schedule_at t.engine ~time ask;
  for r = 1 to t.join_retries do
    Engine.schedule_at t.engine ~time:(time +. (float_of_int r *. t.stabilize_every))
      (fun () ->
        if
          (match u.status with Joining -> true | Active | Dead -> false)
          && u.retries_left > 0
        then begin
          u.retries_left <- u.retries_left - 1;
          ask ()
        end)
  done;
  schedule_rounds t u ~from:time

let leave t ?at id =
  let u = find t id in
  let time = match at with Some time -> time | None -> Engine.now t.engine in
  Engine.schedule_at t.engine ~time (fun () ->
      if is_active u then begin
        (if not t.naive then begin
           (match u.pred with
           | Some p when alive t p && not (Id.equal p u.id) ->
             send t ~src:u.id ~dst:p (C_leave_pred { succs = u.succs })
           | Some _ | None -> ());
           match first_succ t u with
           | Some s when not (Id.equal s u.id) ->
             send t ~src:u.id ~dst:s (C_leave_succ { pred = u.pred })
           | Some _ | None -> ()
         end);
        u.status <- Dead
      end
      else u.status <- Dead)

let crash t id = (find t id).status <- Dead

let run ?max_events t = Engine.run ?max_events t.engine

(* ---- end-state queries ---- *)

let all_nodes t = List.rev_map (find t) t.order

let live_nodes t =
  List.filter (fun u -> match u.status with Dead -> false | _ -> true) (all_nodes t)

let actives t = sorted_by_key (List.filter is_active (live_nodes t))

let members t =
  List.sort Id.compare (List.map (fun u -> u.id) (actives t))

let is_member t id =
  match Id.Tbl.find_opt t.nodes id with Some u -> is_active u | None -> false

(* The live head of a node's successor list — monitor-side semantics, the
   same in both modes (monitors judge the state, not the protocol). *)
let first_live_succ t u = List.find_opt (alive t) u.succs

let ring_next ring i = ring.((i + 1) mod Array.length ring)

let ring_ok t =
  let ring = Array.of_list (actives t) in
  let n = Array.length ring in
  n = 0
  || (n = 1 && (match first_live_succ t ring.(0) with None -> true | Some s -> Id.equal s ring.(0).id))
  || begin
    let ok = ref (n > 1) in
    Array.iteri
      (fun i u ->
        match first_live_succ t u with
        | Some s when Id.equal s (ring_next ring i).id -> ()
        | Some _ | None -> ok := false)
      ring;
    !ok
  end

let ring_consistent = ring_ok

let check t =
  let violations = ref [] in
  let add name detail = violations := { Protocol.name; detail } :: !violations in
  (* chord-liveness: every live node finished joining. *)
  (match List.filter (fun u -> match u.status with Joining -> true | _ -> false) (live_nodes t) with
  | [] -> ()
  | stuck ->
    add "chord-liveness"
      (Fmt.str "%d joiner(s) never became members (first: %a)" (List.length stuck) Id.pp
         (List.hd stuck).id));
  let ring = Array.of_list (actives t) in
  let n = Array.length ring in
  if n > 0 then begin
    (* chord-ring: first live successor is the clockwise neighbor. *)
    (let offender = ref None in
     Array.iteri
       (fun i u ->
         if Option.is_none !offender then
           let expect = if n = 1 then u.id else (ring_next ring i).id in
           match first_live_succ t u with
           | None -> offender := Some (u, None, expect)
           | Some s when n = 1 && Id.equal s u.id -> ()
           | Some s when n > 1 && Id.equal s expect -> ()
           | Some s -> offender := Some (u, Some s, expect))
       ring;
     match !offender with
     | None -> ()
     | Some (u, None, _) ->
       add "chord-ring" (Fmt.str "%a has no live successor" Id.pp u.id)
     | Some (u, Some s, expect) ->
       add "chord-ring"
         (Fmt.str "%a's first live successor is %a, expected %a" Id.pp u.id Id.pp s Id.pp
            expect));
    (* chord-succlist: live entries duplicate-free, self-free, ring-ordered. *)
    (let offender = ref None in
     Array.iter
       (fun u ->
         if Option.is_none !offender then begin
           let live = List.filter (alive t) u.succs in
           let dist x = (key t x - u.key + t.space) mod t.space in
           let rec ordered last = function
             | [] -> true
             | x :: rest ->
               let dx = dist x in
               dx > last && ordered dx rest
           in
           if List.exists (Id.equal u.id) live then
             offender := Some (u, "contains itself")
           else if not (ordered 0 live) then
             offender := Some (u, "entries out of ring order or duplicated")
         end)
       ring;
     match !offender with
     | None -> ()
     | Some (u, why) -> add "chord-succlist" (Fmt.str "%a's successor list %s" Id.pp u.id why));
    (* chord-appendage: one cycle covering all members, reachable from every
       live node's successor chain. *)
    (let cycle = ref Id.Set.empty in
     let rec walk u steps =
       if steps > n then ()
       else if Id.Set.mem u.id !cycle then ()
       else begin
         cycle := Id.Set.add u.id !cycle;
         match first_live_succ t u with
         | Some s when is_member t s -> walk (find t s) (steps + 1)
         | Some _ | None -> ()
       end
     in
     walk ring.(0) 0;
     if Id.Set.cardinal !cycle <> n then
       add "chord-appendage"
         (Fmt.str "successor cycle covers %d of %d members" (Id.Set.cardinal !cycle) n)
     else begin
       let live = live_nodes t in
       let stranded =
         List.find_opt
           (fun u ->
             let rec reaches u steps =
               steps <= n + 1
               && (Id.Set.mem u.id !cycle
                  ||
                  match first_live_succ t u with
                  | Some s -> reaches (find t s) (steps + 1)
                  | None -> false)
             in
             not (reaches u 0))
           live
       in
       match stranded with
       | None -> ()
       | Some u ->
         add "chord-appendage"
           (Fmt.str "%a's successor chain never reaches the ring" Id.pp u.id)
     end);
    (* chord-pred: predecessors live and exact. *)
    if n > 1 then begin
      let offender = ref None in
      Array.iteri
        (fun i u ->
          if Option.is_none !offender then
            let expect = ring.((i + n - 1) mod n).id in
            match u.pred with
            | None -> offender := Some (u, "none", expect)
            | Some p when not (alive t p) -> offender := Some (u, Fmt.str "dead %a" Id.pp p, expect)
            | Some p when not (Id.equal p expect) ->
              offender := Some (u, Fmt.str "%a" Id.pp p, expect)
            | Some _ -> ())
        ring;
      match !offender with
      | None -> ()
      | Some (u, got, expect) ->
        add "chord-pred"
          (Fmt.str "%a's predecessor is %s, expected %a" Id.pp u.id got Id.pp expect)
    end
  end;
  List.rev !violations

let lookup t ~src ~target =
  let u = find t src and tgt = find t target in
  if not (is_active u) then None
  else if Id.equal src target then Some [ src ]
  else begin
    let rec walk v path steps =
      if steps > t.hop_limit then None
      else
        match List.find_opt (alive t) v.succs with
        | None -> None
        | Some s ->
          if in_half_open tgt.key v.key (key t s) then
            if Id.equal s target then Some (List.rev (target :: path)) else None
          else begin
            let next =
              match closest_preceding t v ~target:tgt.key with
              | Some f when alive t f -> Some f
              | Some _ | None -> if alive t s then Some s else None
            in
            match next with
            | Some w when not (Id.equal w v.id) ->
              walk (find t w) (w :: path) (steps + 1)
            | Some _ | None -> None
          end
    in
    walk u [ src ] 0
  end

let messages_delivered t = t.delivered

let traffic t =
  {
    Protocol.join = t.join_msgs;
    maintain = t.maintain_msgs;
    total = t.join_msgs + t.maintain_msgs;
  }

let protocol ?(naive = false) () : (module Protocol.S) =
  (module struct
    let name = if naive then "chord-naive" else "chord"
    let supports_leave = true

    type nonrec t = t

    let create ?latency ?record_trace (cfg : Protocol.config) =
      create ?latency ?record_trace
        ({
           (default_config cfg.params) with
           naive;
           stabilize_every = cfg.maintain_every;
           rounds = cfg.rounds;
         }
          : config)

    let engine = engine
    let trace = trace
    let set_delay_hook = set_delay_hook

    let seed_network t ~seed ids =
      ignore seed;
      seed_ring t ids

    let start_join t ~at ~id ~gateway = start_join t ~at ~id ~gateway ()
    let leave t ~at id = leave t ~at id
    let run = run
    let members = members
    let in_system = is_member
    let consistent = ring_consistent
    let check = check
    let lookup = lookup
    let traffic = traffic
  end)
