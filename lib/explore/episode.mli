(** One exploration episode: a seeded workload run under an adversarial
    scheduler, judged by the invariant monitors.

    Everything an episode does is a deterministic function of its {!config}
    — workload, latencies, crash set, scheduler decisions and checks all
    derive from the config's seeds — so an episode that violates an
    invariant can be re-run bit-identically from the config alone, which is
    what shrinking and repro replay rely on. *)

type scenario =
  | Concurrent  (** [m] independent joins into an [n]-node network, all at t=0. *)
  | Dependent
      (** Joiner IDs share a suffix — a maximally dependent C-set workload,
          the hardest case of the Section 5 proof. *)
  | Fault
      (** Message loss + mid-join crashes under the reliable transport and
          online repair (the PR-1 reliability stack); checks that the
          defended protocol still converges. *)
  | Churn
      (** A seconds-scale continuous-churn steady state ({!Ntcu_churn.Churn})
          under the adversarial scheduler: Poisson arrivals, graceful leaves
          and crashes all overlap while the scheduler perturbs delivery. [m]
          is ignored; the quiescent checks assert the defended claims only
          (liveness, reverse bookkeeping, transport accounting), since
          Definition 3.8 consistency is a measurement under crash churn. *)
  | Chord
      (** [m] joins into an [n]-member Chord ring ({!Ntcu_chord.Chord}), each
          through its key-predecessor seed (a two-frame join lookup), with
          half the joiners crashing at 45 ms — before any unperturbed join
          can complete (latency floor 25 ms per frame). Only a schedule that
          rushes critical join frames puts a victim into the ring before it
          dies; [chord_naive] then exhibits the classic stabilize bugs
          (ring-specific monitors from {!Ntcu_chord.Chord.check}), while
          corrected stabilization repairs the same schedule. *)

val scenario_name : scenario -> string
val scenario_of_name : string -> scenario option

val fault_name : Ntcu_core.Node.fault -> string
val fault_of_name : string -> Ntcu_core.Node.fault option

type config = {
  scenario : scenario;
  b : int;  (** Digit base of the ID space. *)
  d : int;  (** Number of digits. *)
  n : int;  (** Initial network size. *)
  m : int;  (** Joiners. *)
  seed : int;  (** Workload seed (population, latencies, gateways, crashes). *)
  sched_seed : int;  (** Scheduler seed. *)
  scheduler : Scheduler.kind;
  fault : Ntcu_core.Node.fault option;
      (** Test-only injected protocol bug ({!Ntcu_core.Node.fault}). *)
  chord_naive : bool;
      (** {!Chord} scenario only: run the classic incorrect stabilize instead
          of the corrected protocol. Ignored by the other scenarios. *)
  midflight : bool;
      (** Also run the mid-flight monitors during the run (join scenarios
          and {!Churn}; the {!Chord} monitors are quiescent-only). *)
}

val pp_config : config Fmt.t

type outcome = {
  config : config;
  violations : Invariants.violation list;
      (** Empty iff the episode passed. A mid-flight catch aborts the run
          and is the sole entry. *)
  interventions : Scheduler.intervention list;
      (** The schedule perturbations actually applied, in frame order. *)
  frames : int;  (** Wire frames scheduled (delay-hook consultations). *)
  events : int;  (** Messages delivered. *)
  digest : string;  (** {!Ntcu_sim.Trace.digest} of the delivery trace. *)
}

val run : config -> outcome
(** Execute the episode. Never raises on an invariant violation — failures
    are reported in [violations]. *)
