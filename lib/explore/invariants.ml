module Id = Ntcu_id.Id
module Table = Ntcu_table.Table
module Check = Ntcu_table.Check
module Suffix_index = Ntcu_table.Suffix_index
module Cset = Ntcu_cset.Cset
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Stats = Ntcu_core.Stats

type violation = { name : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.name v.detail

let signature v = v.name ^ ": " ^ v.detail

let liveness net =
  if Network.all_in_system net then []
  else
    let stuck = Network.stuck_joiners net in
    [
      {
        name = "liveness";
        detail =
          Fmt.str "%d joiner(s) short of in_system: %a" (List.length stuck)
            Fmt.(list ~sep:comma Id.pp)
            (List.map Node.id stuck);
      };
    ]

let consistency net =
  match Network.check_consistent ~limit:3 net with
  | [] -> []
  | first :: _ as vs ->
    [
      {
        name = "consistency";
        detail =
          Fmt.str "%d+ violation(s), first: %a" (List.length vs) Check.pp_violation
            first;
      };
    ]

(* The Section 3.3 C-set tree conditions, per notification-suffix group of
   joiners (the proof's induction unit; see test_cset.ml for the manual
   version of this walk). *)
let cset net ~seeds ~joiners =
  let p = Network.params net in
  let idx = Suffix_index.of_ids ~params:p seeds in
  let lookup x = Option.map Node.table (Network.node net x) in
  let groups = ref [] in
  List.iter
    (fun x ->
      let omega = Cset.noti_suffix idx x in
      let key = Fmt.str "%a" Id.pp_suffix omega in
      groups :=
        (match List.assoc_opt key !groups with
        | Some (o, l) -> (key, (o, x :: l)) :: List.remove_assoc key !groups
        | None -> (key, (omega, [ x ])) :: !groups))
    joiners;
  List.concat_map
    (fun (key, (omega, w)) ->
      let v_root = List.filter (fun v -> Id.has_suffix v omega) seeds in
      if List.is_empty v_root then []
      else begin
        let template = Cset.template p ~root:omega ~w in
        let realized = Cset.realized ~lookup ~v_root ~root:omega ~w in
        let fail cond e =
          [ { name = "cset"; detail = Fmt.str "group '%s' %s: %s" key cond e } ]
        in
        match Cset.check_condition1 ~template ~realized with
        | Error e -> fail "condition 1" e
        | Ok () -> (
          match Cset.check_condition2 ~lookup ~v_root ~realized with
          | Error e -> fail "condition 2" e
          | Ok () -> (
            match Cset.check_condition3 ~lookup ~realized ~w with
            | Error e -> fail "condition 3" e
            | Ok () -> []))
      end)
    (List.rev !groups)

(* Every non-self store emits a RvNghNotiMsg and its receiver registers the
   storer (Node.set_entry / on_rv_ngh_noti), so at quiescence each filled
   entry of a live node must be mirrored in the occupant's reverse set.
   Occupants that are not live nodes are the consistency check's business. *)
let reverse_symmetry net =
  let first = ref None in
  List.iter
    (fun n ->
      let x = Node.id n in
      Table.iter (Node.table n) (fun ~level ~digit y _state ->
          if !first = None && not (Id.equal x y) then
            match Network.node net y with
            | Some yn when not (Network.is_failed net y) ->
              if not (Id.Set.mem x (Table.reverse_at (Node.table yn) ~level ~digit))
              then
                first :=
                  Some
                    (Fmt.str "%a stores %a at (%d,%d) but is not a reverse neighbor"
                       Id.pp x Id.pp y level digit)
            | Some _ | None -> ()))
    (Network.nodes net);
  match !first with
  | None -> []
  | Some detail -> [ { name = "reverse"; detail } ]

(* With the reliable transport, every copy that reached a live receiver was
   acked exactly once, then either delivered or suppressed as a duplicate. *)
let reliability net =
  if not (Network.reliable net) then []
  else begin
    let acks = Network.acks_sent net in
    let delivered = Network.messages_delivered net in
    let duplicates = Stats.duplicates_suppressed (Network.global_stats net) in
    if acks = delivered + duplicates then []
    else
      [
        {
          name = "reliability";
          detail =
            Fmt.str "acks_sent %d <> delivered %d + duplicates %d" acks delivered
              duplicates;
        };
      ]
  end

let budget_violation net joiner =
  match Network.node net joiner with
  | None -> None
  | Some n ->
    let bound = Ntcu_analysis.Join_cost.theorem3_bound (Network.params net) in
    let sent = Stats.copy_and_wait_sent (Node.stats n) in
    if sent <= bound then None
    else
      Some
        {
          name = "budget";
          detail =
            Fmt.str "joiner %a sent %d CpRst+JoinWait > Theorem 3 bound %d" Id.pp
              joiner sent bound;
        }

let budget net ~joiners =
  match List.find_map (budget_violation net) joiners with
  | Some v -> [ v ]
  | None -> []

let quiescent ?(expect_budget = true) ?(expect_consistency = true) ~net ~seeds ~joiners
    () =
  liveness net
  @ (if expect_consistency then consistency net @ cset net ~seeds ~joiners else [])
  @ reverse_symmetry net @ reliability net
  @ if expect_budget then budget net ~joiners else []

let midflight ?(stride = 64) ?(expect_budget = true) ~net ~joiners () =
  let events = ref 0 in
  let found = ref None in
  fun () ->
    if Option.is_none !found then begin
      incr events;
      if !events mod stride = 0 then begin
        (if expect_budget then found := List.find_map (budget_violation net) joiners);
        if Option.is_none !found then
          found :=
            List.find_map
              (fun n ->
                if
                  Node.status_equal (Node.status n) Node.In_system
                  && Node.pending_replies n > 0
                then
                  Some
                    {
                      name = "liveness";
                      detail =
                        Fmt.str "in_system node %a holds %d pending replies" Id.pp
                          (Node.id n) (Node.pending_replies n);
                    }
                else None)
              (Network.nodes net)
      end
    end;
    !found
