(** Replayable counterexample files.

    A repro captures everything needed to re-execute a violating episode
    bit-identically: the episode config (with the minimized intervention
    list as a {!Scheduler.Fixed} schedule), the violation it must yield and
    the delivery-trace digest it must match. The format is line-based
    [key value] text — the repo emits JSON but never parses it, and a repro
    must be parsed back. *)

type t = {
  config : Episode.config;
      (** [config.scheduler] is [Fixed minimal] — the shrunk schedule. *)
  found_by : string;  (** Name of the scheduler that found the violation. *)
  violation : Invariants.violation;  (** What the episode must reproduce. *)
  digest : string;  (** Expected delivery-trace digest. *)
}

val to_string : t -> string
val of_string : string -> (t, string) result

val save : string -> t -> unit
(** Write to a file path. *)

val load : string -> (t, string) result
(** Read from a file path; [Error] on unreadable file or malformed content. *)

type replay_result = {
  repro : t;
  outcome : Episode.outcome;
  reproduced : bool;
      (** The replayed episode yielded a violation with the exact recorded
          signature {e and} the exact recorded trace digest. *)
}

val replay : t -> replay_result
