module Parallel = Ntcu_std.Parallel
module Json = Ntcu_harness.Report.Json

type settings = {
  base_seed : int;
  budget : int;
  scenarios : Episode.scenario list;
  schedulers : Scheduler.kind list;
  n : int;
  m : int;
  b : int;
  d : int;
  fault : Ntcu_core.Node.fault option;
  chord_naive : bool;
  midflight : bool;
  jobs : int;
  max_shrinks : int;
}

let default_settings =
  {
    base_seed = 1;
    budget = 8;
    scenarios =
      [
        Episode.Concurrent;
        Episode.Dependent;
        Episode.Fault;
        Episode.Churn;
        Episode.Chord;
      ];
    schedulers =
      [
        Scheduler.Random_delay { scale = 16. };
        Scheduler.Pct { bands = 4; invert = 0.05 };
        Scheduler.Targeted { probability = 0.25; stretch = 32. };
      ];
    n = 24;
    m = 10;
    b = 4;
    d = 6;
    fault = None;
    chord_naive = false;
    midflight = true;
    jobs = 1;
    max_shrinks = 3;
  }

let smoke_settings =
  {
    default_settings with
    budget = 2;
    scenarios = [ Episode.Concurrent; Episode.Dependent; Episode.Chord ];
    n = 12;
    m = 6;
  }

type found = {
  outcome : Episode.outcome;
  shrunk : (Scheduler.intervention list * Episode.outcome * int) option;
  repro : Repro.t option;
  replay_ok : bool;
}

type report = {
  settings : settings;
  episodes : int;
  failures : int;
  found : found list;
}

let configs settings =
  List.concat_map
    (fun scenario ->
      List.concat_map
        (fun scheduler ->
          List.init settings.budget (fun i ->
              (* Same workload seeds across schedulers — each adversary gets
                 a shot at the same population — but distinct scheduler
                 seeds so re-ordering choices differ. *)
              let seed = settings.base_seed + (97 * i) in
              {
                Episode.scenario;
                b = settings.b;
                d = settings.d;
                n = settings.n;
                m = settings.m;
                seed;
                sched_seed = seed + 13;
                scheduler;
                fault = settings.fault;
                chord_naive = settings.chord_naive;
                midflight = settings.midflight;
              }))
        settings.schedulers)
    settings.scenarios

let run settings =
  let configs = configs settings in
  let outcomes =
    Parallel.with_pool ~jobs:settings.jobs (fun pool ->
        Parallel.map pool Episode.run configs)
  in
  let failing =
    List.filter (fun (o : Episode.outcome) -> not (List.is_empty o.violations)) outcomes
  in
  (* Shrinking re-runs episodes serially; cap how many we minimize. *)
  let found =
    List.mapi
      (fun i (outcome : Episode.outcome) ->
        if i >= settings.max_shrinks then
          { outcome; shrunk = None; repro = None; replay_ok = false }
        else begin
          match Shrink.shrink_outcome outcome with
          | None -> { outcome; shrunk = None; repro = None; replay_ok = false }
          | Some (minimal, final, probes) ->
            let repro =
              match final.Episode.violations with
              | [] ->
                (* Cannot happen: ddmin's invariant keeps the test failing.
                   Degrade to unshrunk rather than crash the hunt. *)
                None
              | v :: _ ->
                Some
                  {
                    Repro.config =
                      {
                        final.Episode.config with
                        Episode.scheduler = Scheduler.Fixed minimal;
                      };
                    found_by = Scheduler.kind_name outcome.config.Episode.scheduler;
                    violation = v;
                    digest = final.Episode.digest;
                  }
            in
            let replay_ok =
              match repro with
              | None -> false
              | Some r -> (Repro.replay r).Repro.reproduced
            in
            { outcome; shrunk = Some (minimal, final, probes); repro; replay_ok }
        end)
      failing
  in
  {
    settings;
    episodes = List.length outcomes;
    failures = List.length failing;
    found;
  }

let violation_json (v : Invariants.violation) =
  Json.Obj [ ("name", Json.String v.name); ("detail", Json.String v.detail) ]

let intervention_json (i : Scheduler.intervention) =
  Json.Obj [ ("seq", Json.Int i.seq); ("factor", Json.Float i.factor) ]

let found_json f =
  let o = f.outcome in
  Json.Obj
    [
      ("scenario", Json.String (Episode.scenario_name o.config.Episode.scenario));
      ("scheduler", Json.String (Scheduler.kind_name o.config.Episode.scheduler));
      ("seed", Json.Int o.config.Episode.seed);
      ("sched_seed", Json.Int o.config.Episode.sched_seed);
      ("violations", Json.List (List.map violation_json o.violations));
      ("frames", Json.Int o.frames);
      ("events", Json.Int o.events);
      ("interventions", Json.Int (List.length o.interventions));
      ( "shrunk",
        match f.shrunk with
        | None -> Json.Null
        | Some (minimal, final, probes) ->
          Json.Obj
            [
              ("minimal", Json.List (List.map intervention_json minimal));
              ("probes", Json.Int probes);
              ("digest", Json.String final.Episode.digest);
              ("violations", Json.List (List.map violation_json final.Episode.violations));
            ] );
      ("replay_ok", Json.Bool f.replay_ok);
    ]

let report_json r =
  let s = r.settings in
  Json.Obj
    [
      ( "settings",
        Json.Obj
          [
            ("base_seed", Json.Int s.base_seed);
            ("budget", Json.Int s.budget);
            ( "scenarios",
              Json.List
                (List.map (fun x -> Json.String (Episode.scenario_name x)) s.scenarios) );
            ( "schedulers",
              Json.List
                (List.map (fun x -> Json.String (Scheduler.kind_name x)) s.schedulers) );
            ("n", Json.Int s.n);
            ("m", Json.Int s.m);
            ("b", Json.Int s.b);
            ("d", Json.Int s.d);
            ( "fault",
              match s.fault with
              | None -> Json.Null
              | Some f -> Json.String (Episode.fault_name f) );
            ("chord_naive", Json.Bool s.chord_naive);
            ("midflight", Json.Bool s.midflight);
          ] );
      ("episodes", Json.Int r.episodes);
      ("failures", Json.Int r.failures);
      ("found", Json.List (List.map found_json r.found));
    ]

let pp_report ppf r =
  Fmt.pf ppf "explored %d episodes: %d violation(s)@." r.episodes r.failures;
  List.iter
    (fun f ->
      let o = f.outcome in
      Fmt.pf ppf "  [%a]@." Episode.pp_config o.Episode.config;
      List.iter
        (fun v -> Fmt.pf ppf "    %a@." Invariants.pp_violation v)
        o.Episode.violations;
      match f.shrunk with
      | None -> Fmt.pf ppf "    (not shrunk: over --max-shrinks budget)@."
      | Some (minimal, _, probes) ->
        Fmt.pf ppf "    shrunk %d -> %d intervention(s) in %d probe(s); replay %s@."
          (List.length o.Episode.interventions)
          (List.length minimal) probes
          (if f.replay_ok then "ok" else "FAILED"))
    r.found
