module Rng = Ntcu_std.Rng
module Network = Ntcu_core.Network
module Message = Ntcu_core.Message

type intervention = { seq : int; factor : float }

let pp_intervention ppf i = Fmt.pf ppf "(%d x%h)" i.seq i.factor

type kind =
  | Nop
  | Random_delay of { scale : float }
  | Pct of { bands : int; invert : float }
  | Targeted of { probability : float; stretch : float }
  | Fixed of intervention list

let kind_name = function
  | Nop -> "nop"
  | Random_delay _ -> "random"
  | Pct _ -> "pct"
  | Targeted _ -> "targeted"
  | Fixed _ -> "fixed"

type t = {
  kind : kind;
  rng : Rng.t;
  fixed : (int, float) Hashtbl.t; (* only for Fixed *)
  mutable recorded : intervention list; (* newest first *)
  mutable frames : int;
}

let make ~seed kind =
  let fixed = Hashtbl.create 64 in
  (match kind with
  | Fixed interventions ->
    List.iter (fun i -> Hashtbl.replace fixed i.seq i.factor) interventions
  | Nop | Random_delay _ | Pct _ | Targeted _ -> ());
  { kind; rng = Rng.create seed; fixed; recorded = []; frames = 0 }

(* The RNG draws for a frame happen unconditionally (one fixed number per
   kind), so the stream consumed from [rng] is a function of the frame
   sequence alone: a shared prefix of two runs always sees identical
   factors, even if the runs diverge later. *)
let factor_of t ~critical ~seq =
  match t.kind with
  | Nop -> 1.0
  | Fixed _ -> (
    match Hashtbl.find_opt t.fixed seq with Some f -> f | None -> 1.0)
  | Random_delay { scale } ->
    (* log-uniform in [1/scale, scale] *)
    let u = Rng.float t.rng 1.0 in
    scale ** ((2. *. u) -. 1.)
  | Pct { bands; invert } ->
    let band = Rng.int t.rng (max 1 bands) in
    let u = Rng.float t.rng 1.0 in
    if u < invert then 1. /. 16. else Float.of_int (1 lsl band)
  | Targeted { probability; stretch } ->
    let u = Rng.float t.rng 1.0 in
    let coin = Rng.bool t.rng in
    if (not critical) || u >= probability then 1.0
    else if coin then stretch
    else 1. /. stretch

let generic_hook t ~critical ~src:_ ~dst:_ ~seq delay =
  t.frames <- t.frames + 1;
  let factor = factor_of t ~critical ~seq in
  if factor = 1.0 then delay
  else begin
    t.recorded <- { seq; factor } :: t.recorded;
    delay *. factor
  end

let hook t ~wire ~src ~dst ~seq delay =
  let critical =
    match wire with
    | Network.Protocol m -> Message.ordering_critical m
    | Network.Ack -> false
  in
  generic_hook t ~critical ~src ~dst ~seq delay

let recorded t = List.rev t.recorded

let frames_seen t = t.frames
