type t = {
  config : Episode.config;
  found_by : string;
  violation : Invariants.violation;
  digest : string;
}

let magic = "ntcu-explore-repro v1"

let interventions_of_config (c : Episode.config) =
  match c.scheduler with
  | Scheduler.Fixed is -> is
  | _ -> invalid_arg "Repro: config.scheduler must be Fixed"

let to_string t =
  let c = t.config in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "scenario %s" (Episode.scenario_name c.scenario);
  line "b %d" c.b;
  line "d %d" c.d;
  line "n %d" c.n;
  line "m %d" c.m;
  line "seed %d" c.seed;
  line "sched_seed %d" c.sched_seed;
  line "midflight %b" c.midflight;
  (match c.fault with
  | Some f -> line "fault %s" (Episode.fault_name f)
  | None -> ());
  if c.chord_naive then line "chord_naive true";
  line "found_by %s" t.found_by;
  line "violation %s" t.violation.Invariants.name;
  (* [String.escaped] keeps the line single-line and 7-bit clean. *)
  line "detail %s" (String.escaped t.violation.Invariants.detail);
  line "digest %s" t.digest;
  List.iter
    (* %h floats round-trip exactly through float_of_string. *)
    (fun (i : Scheduler.intervention) -> line "intervention %d %h" i.seq i.factor)
    (interventions_of_config c);
  Buffer.contents buf

let ( let* ) = Result.bind

let of_string s =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  let split line =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i -> (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
  in
  match lines with
  | [] -> Error "empty repro"
  | first :: rest when first = magic ->
    let field key =
      match List.find_opt (fun l -> fst (split l) = key) rest with
      | Some l -> Ok (snd (split l))
      | None -> Error (Printf.sprintf "repro: missing field %S" key)
    in
    let int_field key =
      let* v = field key in
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "repro: field %S is not an integer: %S" key v)
    in
    let* scenario_s = field "scenario" in
    let* scenario =
      match Episode.scenario_of_name scenario_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "repro: unknown scenario %S" scenario_s)
    in
    let* b = int_field "b" in
    let* d = int_field "d" in
    let* n = int_field "n" in
    let* m = int_field "m" in
    let* seed = int_field "seed" in
    let* sched_seed = int_field "sched_seed" in
    let* midflight_s = field "midflight" in
    let* midflight =
      match bool_of_string_opt midflight_s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "repro: bad midflight %S" midflight_s)
    in
    let* fault =
      match field "fault" with
      | Error _ -> Ok None
      | Ok name -> (
        match Episode.fault_of_name name with
        | Some f -> Ok (Some f)
        | None -> Error (Printf.sprintf "repro: unknown fault %S" name))
    in
    let* chord_naive =
      match field "chord_naive" with
      | Error _ -> Ok false
      | Ok v -> (
        match bool_of_string_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "repro: bad chord_naive %S" v))
    in
    let* found_by = field "found_by" in
    let* name = field "violation" in
    let* detail_escaped = field "detail" in
    let* detail =
      match Scanf.unescaped detail_escaped with
      | v -> Ok v
      | exception Scanf.Scan_failure _ ->
        Error (Printf.sprintf "repro: undecodable detail %S" detail_escaped)
    in
    let* digest = field "digest" in
    let* interventions =
      List.fold_left
        (fun acc line ->
          let* acc = acc in
          match split line with
          | "intervention", v -> (
            match String.split_on_char ' ' v with
            | [ seq_s; factor_s ] -> (
              match (int_of_string_opt seq_s, float_of_string_opt factor_s) with
              | Some seq, Some factor -> Ok ({ Scheduler.seq; factor } :: acc)
              | _ -> Error (Printf.sprintf "repro: bad intervention line %S" line))
            | _ -> Error (Printf.sprintf "repro: bad intervention line %S" line))
          | _ -> Ok acc)
        (Ok []) rest
    in
    let interventions = List.rev interventions in
    Ok
      {
        config =
          {
            Episode.scenario;
            b;
            d;
            n;
            m;
            seed;
            sched_seed;
            scheduler = Scheduler.Fixed interventions;
            fault;
            chord_naive;
            midflight;
          };
        found_by;
        violation = { Invariants.name; detail };
        digest;
      }
  | first :: _ -> Error (Printf.sprintf "repro: bad header %S" first)

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

type replay_result = { repro : t; outcome : Episode.outcome; reproduced : bool }

let replay t =
  let outcome = Episode.run t.config in
  let expected = Invariants.signature t.violation in
  let reproduced =
    outcome.Episode.digest = t.digest
    && List.exists
         (fun v -> Invariants.signature v = expected)
         outcome.Episode.violations
  in
  { repro = t; outcome; reproduced }
