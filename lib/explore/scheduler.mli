(** Adversarial schedulers for the exploration harness.

    The simulator delivers messages in sampled-latency order, so "schedule"
    here means the multiset of per-frame delays. A scheduler perturbs the
    sampled delay of selected frames by a multiplicative factor, via
    {!Ntcu_core.Network.set_delay_hook}; because the hook numbers frames
    deterministically ([seq]), every perturbation is an {!intervention}
    [(seq, factor)] that can be recorded, minimized by delta debugging, and
    replayed exactly with {!Fixed}. *)

type intervention = { seq : int; factor : float }

val pp_intervention : intervention Fmt.t

type kind =
  | Nop  (** No perturbation — the baseline schedule. *)
  | Random_delay of { scale : float }
      (** Every frame's delay is multiplied by a log-uniform factor in
          [\[1/scale, scale\]] — a blunt permuter of delivery order. *)
  | Pct of { bands : int; invert : float }
      (** PCT-style priority scheduler: each frame is assigned a random
          priority band [0 .. bands-1] and slowed by [2^band]; with
          probability [invert] a frame is instead rushed ([x1/16]) — the
          analogue of PCT's priority-change points. *)
  | Targeted of { probability : float; stretch : float }
      (** Reorders only protocol-critical frames
          ({!Ntcu_core.Message.ordering_critical}): each such frame is, with
          the given probability, either delayed by [stretch] or rushed by
          [1/stretch] (fair coin). Acks and copy-phase traffic are left
          alone, so interventions stay sparse and shrink well. *)
  | Fixed of intervention list
      (** Replay: frame [seq] gets the recorded factor, every other frame is
          untouched. This is the scheduler delta debugging probes with and
          repro files run under. *)

val kind_name : kind -> string
(** ["nop"], ["random"], ["pct"], ["targeted"] or ["fixed"]. *)

type t

val make : seed:int -> kind -> t
(** Instantiate a scheduler. [seed] drives all its random choices; the same
    [seed] and [kind] against the same deterministic run perturb identically.
    ([Nop] and [Fixed] ignore the seed.) *)

val hook :
  t ->
  wire:Ntcu_core.Network.wire ->
  src:Ntcu_id.Id.t ->
  dst:Ntcu_id.Id.t ->
  seq:int ->
  float ->
  float
(** The delay-rewriting function to install with
    [Network.set_delay_hook net (Some (Scheduler.hook t))]. *)

val generic_hook :
  t ->
  critical:bool ->
  src:Ntcu_id.Id.t ->
  dst:Ntcu_id.Id.t ->
  seq:int ->
  float ->
  float
(** Protocol-agnostic form of {!hook} for simulations that classify their own
    ordering-critical frames (e.g. {!Ntcu_chord.Chord.set_delay_hook} /
    {!Ntcu_protocol.Protocol.delay_hook}); {!hook} is this with [critical]
    derived from the wire message. Both share the scheduler's frame counter
    and RNG stream. *)

val recorded : t -> intervention list
(** Every intervention applied so far (factor <> 1), in [seq] order. Running
    the same episode again under [Fixed (recorded t)] reproduces the
    perturbed schedule exactly. *)

val frames_seen : t -> int
(** Number of frames the hook has been consulted for. *)
