(** The exploration driver: a budgeted, parallel hunt for schedule-dependent
    consistency violations.

    [run] fans a grid of seeded episodes (scenario x scheduler x seed) over
    a {!Ntcu_std.Parallel} domain pool, then — serially, in submission
    order — delta-debugs every violating episode to a minimal intervention
    list, builds a replayable {!Repro.t} and verifies the replay. The report
    is a pure function of the settings: same settings, same report,
    regardless of [jobs]. *)

type settings = {
  base_seed : int;
  budget : int;  (** Episodes per (scenario, scheduler) pair. *)
  scenarios : Episode.scenario list;
  schedulers : Scheduler.kind list;
  n : int;
  m : int;
  b : int;
  d : int;
  fault : Ntcu_core.Node.fault option;  (** Injected test-only protocol bug. *)
  chord_naive : bool;
      (** Run {!Episode.Chord} episodes with the classic incorrect stabilize
          (the differential bug hunt) instead of corrected stabilization. *)
  midflight : bool;
  jobs : int;
  max_shrinks : int;
      (** Shrink and replay at most this many violations (shrinking re-runs
          episodes many times); the rest are still reported as found. *)
}

val default_settings : settings
(** 8 episodes per pair, all five scenarios, all three adversarial
    schedulers, n = 24, m = 10, b = 4, d = 6, no fault, correct Chord,
    mid-flight on, serial, at most 3 shrinks. *)

val smoke_settings : settings
(** A CI-sized subset: 2 episodes per pair, [Concurrent], [Dependent] and
    [Chord] only, n = 12, m = 6. *)

type found = {
  outcome : Episode.outcome;  (** The original violating episode. *)
  shrunk : (Scheduler.intervention list * Episode.outcome * int) option;
      (** [(minimal interventions, outcome under them, ddmin probes)];
          [None] when the shrink budget was exhausted. *)
  repro : Repro.t option;  (** Replayable counterexample, when shrunk. *)
  replay_ok : bool;  (** The repro was replayed and reproduced exactly. *)
}

type report = {
  settings : settings;
  episodes : int;  (** Total episodes executed (excluding shrink probes). *)
  failures : int;  (** Episodes with at least one violation. *)
  found : found list;  (** One entry per failing episode, in grid order. *)
}

val run : settings -> report

val report_json : report -> Ntcu_harness.Report.Json.t
(** Machine-readable report. Contains no timing, so it is byte-identical
    across hosts and [--jobs] values. *)

val pp_report : report Fmt.t
(** Human-readable summary. *)
