module Id = Ntcu_id.Id
module Params = Ntcu_id.Params
module Rng = Ntcu_std.Rng
module Engine = Ntcu_sim.Engine
module Latency = Ntcu_sim.Latency
module Trace = Ntcu_sim.Trace
module Network = Ntcu_core.Network
module Node = Ntcu_core.Node
module Workload = Ntcu_harness.Workload
module Churn = Ntcu_churn.Churn
module Chord = Ntcu_chord.Chord

type scenario = Concurrent | Dependent | Fault | Churn | Chord

let scenario_name = function
  | Concurrent -> "concurrent"
  | Dependent -> "dependent"
  | Fault -> "fault"
  | Churn -> "churn"
  | Chord -> "chord"

let scenario_of_name = function
  | "concurrent" -> Some Concurrent
  | "dependent" -> Some Dependent
  | "fault" -> Some Fault
  | "churn" -> Some Churn
  | "chord" -> Some Chord
  | _ -> None

type config = {
  scenario : scenario;
  b : int;
  d : int;
  n : int;
  m : int;
  seed : int;
  sched_seed : int;
  scheduler : Scheduler.kind;
  fault : Node.fault option;
  chord_naive : bool;
  midflight : bool;
}

let fault_name = function
  | Node.Drop_queued_join_waits -> "drop-queued-join-waits"
  | Node.Forget_negative_forward -> "forget-negative-forward"

let fault_of_name = function
  | "drop-queued-join-waits" -> Some Node.Drop_queued_join_waits
  | "forget-negative-forward" -> Some Node.Forget_negative_forward
  | _ -> None

let pp_config ppf c =
  Fmt.pf ppf "%s b=%d d=%d n=%d m=%d seed=%d sched=%s/%d%a%s" (scenario_name c.scenario)
    c.b c.d c.n c.m c.seed
    (Scheduler.kind_name c.scheduler)
    c.sched_seed
    (Fmt.option (fun ppf f -> Fmt.pf ppf " fault=%s" (fault_name f)))
    c.fault
    (if c.chord_naive then " naive" else "")

type outcome = {
  config : config;
  violations : Invariants.violation list;
  interventions : Scheduler.intervention list;
  frames : int;
  events : int;
  digest : string;
}

exception Midflight of Invariants.violation

(* Constants of the Fault scenario, mirroring Experiment.fault_injection. *)
let loss_probability = 0.02
let crash_fraction = 0.05
let crash_at = 150.

(* Constants of the Churn scenario: a seconds-scale steady-state window with
   a half-life short enough that joins, leaves, crashes and repairs all
   overlap inside the adversary's horizon. *)
let churn_duration = 4_000.
let churn_half_life = 2_000.
let churn_sample_every = 1_000.
let churn_maintenance_every = 500.
let churn_lookups_per_sample = 4

(* Steady-state churn under an adversarial scheduler. The episode drives the
   continuous-churn engine instead of a join burst: [m] is ignored (arrivals
   are the engine's Poisson source) and the quiescent checks assert the
   defended claims only — liveness, reverse bookkeeping, transport
   accounting. Consistency and the health verdict are measurements in this
   regime (a hostile schedule can legitimately age holes), so gating on them
   would manufacture false findings. *)
let run_churn config =
  let ccfg =
    {
      Churn.smoke with
      b = config.b;
      d = config.d;
      n = config.n;
      duration = churn_duration;
      half_life = churn_half_life;
      loss = loss_probability;
      sample_every = churn_sample_every;
      maintenance_every = churn_maintenance_every;
      lookups_per_sample = churn_lookups_per_sample;
      seed = config.seed;
    }
  in
  let t = Churn.prepare ~record_trace:true ccfg in
  let net = Churn.net t in
  let seeds = Churn.initial t in
  let sched = Scheduler.make ~seed:config.sched_seed config.scheduler in
  Network.set_delay_hook net (Some (Scheduler.hook sched));
  if config.midflight then begin
    let monitor = Invariants.midflight ~expect_budget:false ~net ~joiners:[] () in
    Engine.set_observer (Network.engine net)
      (Some
         (fun () ->
           match monitor () with Some v -> raise (Midflight v) | None -> ()))
  end;
  let caught =
    try
      ignore (Churn.finish t : Churn.result);
      None
    with Midflight v -> Some v
  in
  let violations =
    match caught with
    | Some v -> [ v ]
    | None ->
      Invariants.quiescent ~expect_budget:false ~expect_consistency:false ~net ~seeds
        ~joiners:[] ()
  in
  let digest =
    match Network.trace net with Some tr -> Trace.digest tr | None -> assert false
  in
  {
    config;
    violations;
    interventions = Scheduler.recorded sched;
    frames = Scheduler.frames_seen sched;
    events = Network.messages_delivered net;
    digest;
  }

let run_join config =
  let p = Params.make ~b:config.b ~d:config.d in
  let rng = Rng.create config.seed in
  let seeds = Workload.distinct_ids rng p ~n:config.n in
  let suffix = match config.scenario with Dependent -> [| 2 |] | _ -> [||] in
  let joiners =
    Workload.distinct_ids ~suffix ~avoid:(Id.Set.of_list seeds) rng p ~n:config.m
  in
  let latency = Latency.uniform ~seed:(config.seed + 1) ~lo:1. ~hi:100. in
  let loss, reliability, repairable =
    match config.scenario with
    | Concurrent | Dependent | Churn | Chord -> (None, None, false)
    | Fault ->
      ( Some (loss_probability, config.seed + 3),
        Some
          {
            Network.default_reliability with
            rto = 250.;
            (* clears a full round trip of the 1-100ms latency draw *)
            seed = config.seed + 4;
          },
        true )
  in
  let net =
    Network.create ~latency ~record_trace:true ?loss ?reliability ?fault:config.fault p
  in
  let repair = if repairable then Some (Ntcu_extensions.Online_repair.attach net) else None
  in
  ignore repair;
  let sched = Scheduler.make ~seed:config.sched_seed config.scheduler in
  Network.set_delay_hook net (Some (Scheduler.hook sched));
  Network.seed_consistent net ~seed:(config.seed + 2) seeds;
  let gateways = Array.of_list seeds in
  let used_gateways = ref Id.Set.empty in
  List.iter
    (fun id ->
      let gw = Rng.pick rng gateways in
      used_gateways := Id.Set.add gw !used_gateways;
      Network.start_join net ~at:0. ~id ~gateway:gw ())
    joiners;
  let crashed =
    match config.scenario with
    | Concurrent | Dependent | Churn | Chord -> []
    | Fault ->
      (* Victims come from the seeds no joiner uses as gateway: a dead
         gateway violates assumption (ii), which even the defended protocol
         cannot survive. *)
      let candidates =
        Array.of_list (List.filter (fun id -> not (Id.Set.mem id !used_gateways)) seeds)
      in
      let crash_rng = Rng.create (config.seed + 5) in
      Rng.shuffle crash_rng candidates;
      let count = max 1 (int_of_float (crash_fraction *. float_of_int config.n)) in
      let count = min count (Array.length candidates) in
      let victims = Array.to_list (Array.sub candidates 0 count) in
      Engine.schedule_at (Network.engine net) ~time:crash_at (fun () ->
          List.iter (fun id -> Network.fail net id) victims);
      victims
  in
  let is_fault = match config.scenario with Fault -> true | _ -> false in
  let expect_budget = not is_fault in
  let expect_consistency = not is_fault in
  if config.midflight then begin
    let monitor = Invariants.midflight ~expect_budget ~net ~joiners () in
    Engine.set_observer (Network.engine net)
      (Some
         (fun () ->
           match monitor () with Some v -> raise (Midflight v) | None -> ()))
  end;
  let caught =
    try
      Network.run net;
      if not (List.is_empty crashed) then
        Ntcu_harness.Experiment.detect_failures net ~crashed;
      None
    with Midflight v -> Some v
  in
  let violations =
    match caught with
    | Some v -> [ v ]
    | None ->
      Invariants.quiescent ~expect_budget ~expect_consistency ~net ~seeds ~joiners ()
  in
  let digest =
    match Network.trace net with Some tr -> Trace.digest tr | None -> assert false
  in
  {
    config;
    violations;
    interventions = Scheduler.recorded sched;
    frames = Scheduler.frames_seen sched;
    events = Network.messages_delivered net;
    digest;
  }

(* Constants of the Chord scenario. Each joiner's gateway is its
   key-predecessor seed, so an unperturbed join lookup is exactly two frames
   — request and direct answer — and completes no earlier than 2 x 25 ms.
   The crash at 45 ms therefore kills every victim mid-join under the nop
   schedule, harmlessly. Only an adversary that rushes a critical join frame
   gets a victim into the ring — and out of it again — before the first
   stabilization round at 500 ms, which is the schedule-dependent window
   where naive Chord's missing liveness checks poison the ring permanently. *)
let chord_latency_lo = 25.
let chord_latency_hi = 60.
let chord_crash_at = 45.

let run_chord config =
  let p = Params.make ~b:config.b ~d:config.d in
  let rng = Rng.create config.seed in
  let seeds = Workload.distinct_ids rng p ~n:config.n in
  let joiners =
    Workload.distinct_ids ~avoid:(Id.Set.of_list seeds) rng p ~n:config.m
  in
  let latency =
    Latency.uniform ~seed:(config.seed + 1) ~lo:chord_latency_lo ~hi:chord_latency_hi
  in
  let ccfg = { (Chord.default_config p) with Chord.naive = config.chord_naive } in
  let t = Chord.create ~latency ~record_trace:true ccfg in
  let sched = Scheduler.make ~seed:config.sched_seed config.scheduler in
  Chord.set_delay_hook t (Some (Scheduler.generic_hook sched));
  Chord.seed_ring t seeds;
  (* Key order coincides with [Id.compare] (Chord keys are the numeric value
     of the digits), so the key-predecessor gateway is the largest seed below
     the joiner, wrapping to the largest seed overall. *)
  let gateways = Array.of_list (List.sort Id.compare seeds) in
  let gateway_of id =
    let below = ref None in
    Array.iter (fun s -> if Id.compare s id < 0 then below := Some s) gateways;
    match !below with Some s -> s | None -> gateways.(Array.length gateways - 1)
  in
  List.iter
    (fun id -> Chord.start_join t ~at:0. ~id ~gateway:(gateway_of id) ())
    joiners;
  (* Victims are joiners: mid-join crashes are the naive protocol's blind
     spot (gateways are seeds, so assumption (ii) stays intact). *)
  let victims =
    let candidates = Array.of_list joiners in
    let crash_rng = Rng.create (config.seed + 5) in
    Rng.shuffle crash_rng candidates;
    let count = min (max 1 (config.m / 2)) (Array.length candidates) in
    Array.to_list (Array.sub candidates 0 count)
  in
  Engine.schedule_at (Chord.engine t) ~time:chord_crash_at (fun () ->
      List.iter (fun id -> Chord.crash t id) victims);
  Chord.run t;
  let violations =
    List.map
      (fun (v : Ntcu_protocol.Protocol.violation) ->
        { Invariants.name = v.name; detail = v.detail })
      (Chord.check t)
  in
  let digest =
    match Chord.trace t with Some tr -> Trace.digest tr | None -> assert false
  in
  {
    config;
    violations;
    interventions = Scheduler.recorded sched;
    frames = Scheduler.frames_seen sched;
    events = Chord.messages_delivered t;
    digest;
  }

let run config =
  match config.scenario with
  | Churn -> run_churn config
  | Chord -> run_chord config
  | Concurrent | Dependent | Fault -> run_join config
