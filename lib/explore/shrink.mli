(** Delta debugging (Zeller & Hildebrandt's ddmin) over intervention lists.

    A violating episode records the full set of schedule perturbations that
    were applied; usually only a handful of them matter. {!ddmin} finds a
    1-minimal subset — removing any single chunk of the result makes the
    failure vanish — by repeatedly re-running the episode under
    {!Scheduler.Fixed} subsets. *)

val ddmin : test:('a list -> bool) -> 'a list -> 'a list * int
(** [ddmin ~test cs] assumes [test cs = true] ("the failure reproduces") and
    returns [(minimal, probes)] where [minimal] is a 1-minimal sublist of
    [cs] (order preserved) still satisfying [test], and [probes] counts the
    [test] invocations spent. [test \[\]] may be true, in which case the
    result is [\[\]] — the failure did not need any intervention. *)

val shrink_outcome :
  Episode.outcome -> (Scheduler.intervention list * Episode.outcome * int) option
(** Shrink a violating outcome to a minimal intervention list: re-runs the
    episode's config under [Fixed] subsets, counting a probe as a
    reproduction when it yields a violation with the same [name] as the
    original first violation. Returns [(minimal, outcome under minimal,
    probe count)], or [None] if the outcome had no violation. The returned
    outcome is the ground truth a repro file stores — deterministic, so
    replaying [Fixed minimal] reproduces it bit-identically. *)
