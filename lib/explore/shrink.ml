(* Zeller & Hildebrandt, "Simplifying and Isolating Failure-Inducing Input"
   (TSE 2002), algorithm ddmin — over schedule interventions instead of
   program input. *)

let split_chunks n l =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i = n then List.rev acc
    else begin
      let size = base + if i < extra then 1 else 0 in
      let rec take k xs taken =
        if k = 0 then (List.rev taken, xs)
        else
          match xs with
          | [] -> (List.rev taken, [])
          | x :: xs -> take (k - 1) xs (x :: taken)
      in
      let chunk, rest = take size rest [] in
      go (i + 1) rest (chunk :: acc)
    end
  in
  go 0 l []

let ddmin ~test cs =
  let probes = ref 0 in
  let test cs =
    incr probes;
    test cs
  in
  if test [] then ([], !probes)
  else begin
    let rec go cs n =
      if List.length cs <= 1 then cs
      else begin
        let chunks = split_chunks n cs in
        let try_subsets () =
          List.find_opt (fun chunk -> chunk <> [] && test chunk) chunks
        in
        let try_complements () =
          let rec loop i =
            if i >= List.length chunks then None
            else begin
              let complement =
                List.concat (List.filteri (fun j _ -> j <> i) chunks)
              in
              if complement <> [] && List.length complement < List.length cs
                 && test complement
              then Some complement
              else loop (i + 1)
            end
          in
          loop 0
        in
        match try_subsets () with
        | Some chunk -> go chunk 2
        | None -> (
          match try_complements () with
          | Some complement -> go complement (max (n - 1) 2)
          | None ->
            if n < List.length cs then go cs (min (2 * n) (List.length cs)) else cs)
      end
    in
    (* bind before pairing: tuple components evaluate right-to-left, which
       would read the probe counter before [go] runs *)
    let minimal = go cs 2 in
    (minimal, !probes)
  end

let reproduces ~config ~name interventions =
  let outcome =
    Episode.run { config with Episode.scheduler = Scheduler.Fixed interventions }
  in
  List.exists (fun (v : Invariants.violation) -> v.name = name) outcome.violations

let shrink_outcome (outcome : Episode.outcome) =
  match outcome.violations with
  | [] -> None
  | first :: _ ->
    let config = outcome.config in
    let name = first.Invariants.name in
    let minimal, probes =
      ddmin ~test:(reproduces ~config ~name) outcome.interventions
    in
    let final =
      Episode.run { config with Episode.scheduler = Scheduler.Fixed minimal }
    in
    Some (minimal, final, probes)
