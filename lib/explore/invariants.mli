(** Invariant monitors for exploration episodes.

    Two families: {!quiescent} checks run after the simulation drains and
    judge the end state against everything the paper proves (Theorem 2
    liveness, Definition 3.8 consistency, the Section 3.3 C-set tree
    conditions) plus repo-level bookkeeping (reverse-neighbor registration,
    reliable-transport accounting); {!midflight} checks are the subset that
    must hold at {e every} instant of a run — anything they catch is a bug
    even while joins are still in flight. *)

type violation = {
  name : string;
      (** Stable category: ["liveness"], ["consistency"], ["cset"],
          ["reverse"], ["reliability"] or ["budget"]. Delta debugging
          considers a probe a reproduction when it yields a violation with
          the same name. *)
  detail : string;  (** Human-readable specifics of the first offence. *)
}

val pp_violation : violation Fmt.t

val signature : violation -> string
(** ["name: detail"] — the exact-match identity used by repro replay. *)

val quiescent :
  ?expect_budget:bool ->
  ?expect_consistency:bool ->
  net:Ntcu_core.Network.t ->
  seeds:Ntcu_id.Id.t list ->
  joiners:Ntcu_id.Id.t list ->
  unit ->
  violation list
(** All end-state checks, most fundamental first:

    - ["liveness"]: every joiner reached [in_system] (Theorem 2).
    - ["consistency"]: [Check.violations] over the live tables is empty
      (Definition 3.8).
    - ["cset"]: for every notification-suffix group of joiners with a
      nonempty [V_root], the realized C-set tree satisfies conditions (1–3)
      of Section 3.3.
    - ["reverse"]: every filled entry [(l, j) -> y] of a live node [x] is
      mirrored by [x] in [y]'s reverse-neighbor set at [(l, j)] — the
      RvNghNotiMsg bookkeeping the repair layers depend on.
    - ["reliability"]: with the ack/retransmit transport on, every delivered
      or duplicate-suppressed copy was acked:
      [acks_sent = delivered + duplicates].
    - ["budget"]: per joiner, [CpRstMsg + JoinWaitMsg <= d + 1] (Theorem 3).

    [expect_budget] (default [true]) gates the budget check: failovers
    legally re-send [JoinWaitMsg] in lossy/crash episodes.
    [expect_consistency] (default [true]) gates the consistency and cset
    checks: when crashes overlap in-flight joins, the online-repair stack is
    best-effort — a refill can find only mid-join candidates and leave a
    hole (the bench's fault grid reports exactly this) — so crash episodes
    assert the defended claims (liveness, reverse bookkeeping, transport
    accounting) instead. *)

val midflight :
  ?stride:int ->
  ?expect_budget:bool ->
  net:Ntcu_core.Network.t ->
  joiners:Ntcu_id.Id.t list ->
  unit ->
  unit ->
  violation option
(** [midflight ~net ~joiners ()] is an engine observer body: call it after
    every delivered event ({!Ntcu_sim.Engine.set_observer}); every [stride]
    (default 64) events it checks the always-invariants — the Theorem 3
    budget (when [expect_budget]) and that no [in_system] node still holds
    pending replies — and returns the first violation found, after which it
    goes quiet. *)
