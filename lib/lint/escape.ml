(* C-rules: domain escape (interprocedural D004).

   Closures submitted to the [Ntcu_std.Parallel] pool run on worker domains.
   D004 flags toplevel mutable state in libraries locally; this pass makes
   the hazard interprocedural: starting from the argument expressions of
   every [Parallel.map] application, it follows the call graph and reports

   - C001: a reachable library def that creates toplevel mutable state
     ([ref]/[Hashtbl.create]/[Buffer.create] outside any function body) —
     the pool closure can mutate it from several domains at once;
   - C002: a reachable toplevel def holding an owner-guarded handle
     ([Engine.t], [Distances.t]) — those types carry an owner-domain guard
     that a worker-domain call path bypasses or trips at runtime.

   Roots are the call edges whose site falls inside a [Parallel.map]
   argument span, i.e. exactly what the submitted closures can invoke. *)

let ends_with ~suffix s =
  let n = String.length suffix in
  String.length s >= n && String.equal suffix (String.sub s (String.length s - n) n)

let pool_entry name = ends_with ~suffix:"Parallel.map" name

(* Owner-guarded handle types: created by one domain, asserted on use. *)
let handle_suffixes = [ "Engine.t"; "Distances.t" ]

let string_of_type ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

(* Only a def *holding* a handle escapes; an accessor returning one
   ([t -> Engine.t]) is flagged where its result is stored, not here. *)
let handle_type ty =
  match Types.get_desc ty with
  | Tarrow _ | Tpoly _ -> false
  | _ ->
    let s = Callgraph.dotted (string_of_type ty) in
    List.exists (fun suffix -> ends_with ~suffix s || String.equal suffix s) handle_suffixes

(* Mutable-state creation outside any function body, mirroring D004's scan. *)
let creates_mutable_toplevel (body : Typedtree.expression) =
  let found = ref false in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function _ -> ()
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when Rules.d004_creators (Path.name p) ->
      found := true;
      List.iter (fun (_, a) -> match a with Some a -> sub.expr sub a | None -> ()) args
    | _ -> default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  !found

type submission = { sub_loc : Location.t; sub_what : string; spans : (int * int) list }

let submissions_in (body : Typedtree.expression) =
  let acc = ref [] in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when pool_entry (Path.name p) ->
      let spans =
        List.filter_map
          (fun (_, a) ->
            match a with
            | Some (a : Typedtree.expression) ->
              Some
                ( a.exp_loc.Location.loc_start.Lexing.pos_cnum,
                  a.exp_loc.Location.loc_end.Lexing.pos_cnum )
            | None -> None)
          args
      in
      acc := { sub_loc = e.exp_loc; sub_what = Path.name p; spans } :: !acc
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  List.rev !acc

let check g =
  List.concat_map
    (fun (d : Callgraph.def) ->
      List.concat_map
        (fun sm ->
          let in_span (site : Location.t) =
            let ofs = site.loc_start.Lexing.pos_cnum in
            List.exists (fun (a, b) -> ofs >= a && ofs <= b) sm.spans
          in
          let roots =
            List.filter_map
              (fun (c : Callgraph.call) ->
                if in_span c.site then Callgraph.find g c.target else None)
              (Callgraph.calls_of g d)
          in
          if List.is_empty roots then []
          else begin
            let reach = Callgraph.reachable g ~roots in
            let flag code (r : Callgraph.def) detail =
              let dest (d' : Callgraph.def) = String.equal d'.uid r.uid in
              let hops =
                let rec first = function
                  | [] -> []
                  | root :: rest -> (
                    match Callgraph.trace g ~from:root ~dest with
                    | Some (steps, _) -> steps
                    | None -> first rest)
                in
                first roots
              in
              let trace =
                Finding.step ~file:d.cls.Classify.source ~loc:sm.sub_loc
                  (Printf.sprintf "closure submitted to %s here" sm.sub_what)
                :: hops
                @ [
                    Finding.step ~file:r.cls.Classify.source ~loc:r.loc
                      (Printf.sprintf "%s defined here" (Callgraph.full_name r));
                  ]
              in
              Finding.make ~trace ~code ~file:d.cls.Classify.source ~loc:sm.sub_loc
                detail
            in
            List.concat_map
              (fun (r : Callgraph.def) ->
                if not r.cls.Classify.in_lib then []
                else begin
                  let c001 =
                    if creates_mutable_toplevel r.body then
                      [
                        flag "C001" r
                          (Printf.sprintf
                             "closure submitted to %s reaches toplevel mutable state %s; worker domains can mutate it concurrently — pass state explicitly or guard with the owner domain"
                             sm.sub_what (Callgraph.full_name r));
                      ]
                    else []
                  in
                  let c002 =
                    if handle_type r.body.exp_type then
                      [
                        flag "C002" r
                          (Printf.sprintf
                             "closure submitted to %s reaches owner-guarded handle %s : %s; only the owner domain may drive it"
                             sm.sub_what (Callgraph.full_name r)
                             (Callgraph.dotted (string_of_type r.body.exp_type)));
                      ]
                    else []
                  in
                  c001 @ c002
                end)
              reach
          end)
        (submissions_in d.body))
    (Callgraph.defs g)
