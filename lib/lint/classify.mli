(** Scope classification of a source file.

    Rules are scoped: D003 has a wall-clock/Random allowlist (the measurement
    harness and the bench driver legitimately read host time), D004 only
    concerns library code reachable from the [Parallel] domain pool, and D005
    only concerns emitter modules whose float output is diffed byte-for-byte.
    The driver derives the classification from the repo-relative source path;
    tests construct records directly to exercise every rule on fixtures. *)

type t = {
  source : string;  (** Repo-relative source path as recorded in the .cmt. *)
  in_lib : bool;  (** Under [lib/]: D004 (toplevel mutable state) applies. *)
  clock_allowed : bool;
      (** Under [lib/harness/] or [bench/]: D003 (wall clock, global Random)
          is suppressed — these measure host performance by design. *)
  emitter : bool;
      (** Report/trace/codec/repro module: D005 (lossy float formatting)
          applies. *)
}

val of_source : string -> t
(** Classification used by the driver for real repo paths. *)
