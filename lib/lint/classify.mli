(** Scope classification of a source file.

    Rules are scoped: D003 has a wall-clock/Random allowlist (the measurement
    harness, the bench driver and the test suite legitimately read host
    time), D004 only concerns library code reachable from the [Parallel]
    domain pool, D005 only concerns emitter modules whose float output is
    diffed byte-for-byte, P001 only protocol state machines, and P002 only
    wire codec units. The driver derives the classification from the
    repo-relative source path; tests construct records directly to exercise
    every rule on fixtures. *)

type t = {
  source : string;  (** Repo-relative source path as recorded in the .cmt. *)
  in_lib : bool;  (** Under [lib/]: D004 (toplevel mutable state) applies. *)
  in_test : bool;  (** Under [test/]: scanned by CI but not protocol code. *)
  clock_allowed : bool;
      (** Under [lib/harness/], [bench/] or [test/]: D003 (wall clock, global
          Random) is suppressed — these measure host performance or drive
          property generators by design. Such sites remain T003 taint
          sources: ambient nondeterminism that {e reaches an emitter} is
          flagged interprocedurally even where the local rule is allowlisted. *)
  emitter : bool;
      (** Report/trace/codec/repro module: D005 (lossy float formatting)
          applies, and every def in the unit is a T-rule sink. *)
  codec : bool;
      (** Wire codec unit ([codec.ml], [wire.ml]): P002 encoder/decoder
          constructor-coverage parity applies. *)
  dispatch : bool;
      (** Protocol state machine (lib/core, lib/protocol, lib/chord,
          lib/baseline, lib/extensions, lib/scale): P001 wildcard-dispatch
          totality applies. *)
}

val of_source : string -> t
(** Classification used by the driver for real repo paths. *)
