type step = { file : string; line : int; col : int; note : string }

type t = {
  code : string;
  file : string;
  line : int;
  col : int;
  ofs : int;
  message : string;
  trace : step list;
}

let step ~file ~loc note =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    note;
  }

let make ?(trace = []) ~code ~file ~loc message =
  let p = loc.Location.loc_start in
  {
    code;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    ofs = p.Lexing.pos_cnum;
    message;
    trace;
  }

(* Identity of a finding is its anchor and message; the trace is evidence,
   not identity, so two routes to the same hazard collapse into one line and
   baseline entries keyed on code/file/line survive trace changes. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c else String.compare a.message b.message

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "%s:%d:%d: %s %s" t.file t.line t.col t.code t.message;
  List.iter
    (fun (s : step) -> Fmt.pf ppf "@.    via %s:%d:%d: %s" s.file s.line s.col s.note)
    t.trace

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let step_to_json (s : step) =
  Printf.sprintf {|{"file": "%s", "line": %d, "col": %d, "note": "%s"}|}
    (json_escape s.file) s.line s.col (json_escape s.note)

let to_json t =
  let trace =
    match t.trace with
    | [] -> ""
    | steps ->
      Printf.sprintf {|, "trace": [%s]|} (String.concat ", " (List.map step_to_json steps))
  in
  Printf.sprintf
    {|{"code": "%s", "file": "%s", "line": %d, "col": %d, "message": "%s"%s}|}
    (json_escape t.code) (json_escape t.file) t.line t.col (json_escape t.message) trace
