type region = { codes : string list; line : int; start_ofs : int; end_ofs : int }

let split_codes s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun c -> c <> "")

(* Attributes in the typedtree carry parsetree payloads. *)
let codes_of_payload : Parsetree.payload -> string list option = function
  | PStr [] -> Some [] (* [@ntcu.allow]: every code *)
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some (split_codes s)
  | _ -> None

let region_of_attr ~loc (attr : Parsetree.attribute) =
  if String.equal attr.attr_name.txt "ntcu.allow" then
    match codes_of_payload attr.attr_payload with
    | Some codes ->
      Some
        {
          codes;
          line = loc.Location.loc_start.Lexing.pos_lnum;
          start_ofs = loc.Location.loc_start.Lexing.pos_cnum;
          end_ofs = loc.Location.loc_end.Lexing.pos_cnum;
        }
    | None -> None
  else None

let whole_file = { codes = []; line = 1; start_ofs = 0; end_ofs = max_int }

let collect (str : Typedtree.structure) =
  let acc = ref [] in
  let add_attrs ~loc attrs =
    List.iter
      (fun attr ->
        match region_of_attr ~loc attr with Some r -> acc := r :: !acc | None -> ())
      attrs
  in
  let open Tast_iterator in
  let expr sub (e : Typedtree.expression) =
    add_attrs ~loc:e.exp_loc e.exp_attributes;
    default_iterator.expr sub e
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    add_attrs ~loc:vb.vb_loc vb.vb_attributes;
    default_iterator.value_binding sub vb
  in
  let module_binding sub (mb : Typedtree.module_binding) =
    add_attrs ~loc:mb.mb_loc mb.mb_attributes;
    default_iterator.module_binding sub mb
  in
  let structure_item sub (si : Typedtree.structure_item) =
    (match si.str_desc with
    | Tstr_attribute attr -> (
      (* Floating attribute: suppress for the whole file. *)
      match region_of_attr ~loc:si.str_loc attr with
      | Some r ->
        acc :=
          { r with start_ofs = whole_file.start_ofs; end_ofs = whole_file.end_ofs }
          :: !acc
      | None -> ())
    | _ -> ());
    default_iterator.structure_item sub si
  in
  let it = { default_iterator with expr; value_binding; module_binding; structure_item } in
  it.structure it str;
  List.rev !acc

let allows region code =
  match region.codes with [] -> true | codes -> List.exists (String.equal code) codes

let filter regions findings =
  List.filter
    (fun (f : Finding.t) ->
      not
        (List.exists
           (fun r -> f.ofs >= r.start_ofs && f.ofs <= r.end_ofs && allows r f.code)
           regions))
    findings
