type report = {
  fresh : Finding.t list;
  baselined : Finding.t list;
  unused_baseline : Baseline.entry list;
  files_scanned : int;
}

let build_root root =
  let candidate = Filename.concat (Filename.concat root "_build") "default" in
  if Sys.file_exists candidate && Sys.is_directory candidate then candidate else root

let ends_with ~suffix s =
  let n = String.length suffix in
  String.length s >= n && String.equal suffix (String.sub s (String.length s - n) n)

let find_cmts ~build_root ~dirs =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then begin
            (* .formatted holds ocamlformat shadow copies, not build output. *)
            if not (String.equal name ".formatted") then walk path
          end
          else if ends_with ~suffix:".cmt" name then acc := path :: !acc)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun d ->
      let path = Filename.concat build_root d in
      if Sys.file_exists path && Sys.is_directory path then walk path)
    dirs;
  List.sort String.compare !acc

let lint_cmt ?(classify = Classify.of_source) path =
  match Cmt_format.read_cmt path with
  | exception _ -> []
  | infos -> (
    match (infos.cmt_annots, infos.cmt_sourcefile) with
    | _, Some source when ends_with ~suffix:".ml-gen" source -> [] (* dune wrapper module *)
    | Implementation str, source ->
      let source = match source with Some s -> s | None -> path in
      Rules.run_all (classify source) str
    | _ -> [])

let run ?classify ?(dirs = [ "lib"; "bin"; "bench" ]) ~baseline ~root () =
  let build_root = build_root root in
  let cmts = find_cmts ~build_root ~dirs in
  let findings = List.concat_map (fun cmt -> lint_cmt ?classify cmt) cmts in
  let findings = List.sort_uniq Finding.compare findings in
  let fresh, baselined = Baseline.partition baseline findings in
  {
    fresh;
    baselined;
    unused_baseline = Baseline.unused baseline findings;
    files_scanned = List.length cmts;
  }

let is_empty = function [] -> true | _ :: _ -> false

let pp_report ppf r =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) r.fresh;
  if not (is_empty r.baselined) then
    Fmt.pf ppf "%d baselined finding%s suppressed@." (List.length r.baselined)
      (if List.length r.baselined = 1 then "" else "s");
  List.iter
    (fun (e : Baseline.entry) ->
      Fmt.pf ppf "warning: unused baseline entry %s %s:%d@." e.code e.file e.line)
    r.unused_baseline;
  if is_empty r.fresh then
    Fmt.pf ppf "ntcu-lint: clean (%d files scanned)@." r.files_scanned
  else
    Fmt.pf ppf "ntcu-lint: %d finding%s (%d files scanned)@." (List.length r.fresh)
      (if List.length r.fresh = 1 then "" else "s")
      r.files_scanned

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"ntcu-lint/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" r.files_scanned);
  let finding_list key fs =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" key);
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n    ";
        Buffer.add_string buf (Finding.to_json f))
      fs;
    if not (is_empty fs) then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "]"
  in
  finding_list "findings" r.fresh;
  Buffer.add_string buf ",\n";
  finding_list "baselined" r.baselined;
  Buffer.add_string buf ",\n  \"unused_baseline\": [";
  List.iteri
    (fun i (e : Baseline.entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"code\": \"%s\", \"file\": \"%s\", \"line\": %d}"
           (Finding.json_escape e.code) (Finding.json_escape e.file) e.line))
    r.unused_baseline;
  if not (is_empty r.unused_baseline) then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let exit_code r = if is_empty r.fresh then 0 else 1
