type unit_info = {
  u_cls : Classify.t;
  u_name : string;
  u_str : Typedtree.structure;
  u_uid_to_loc : Location.t Shape.Uid.Tbl.t;
  u_regions : Allow.region list;
}

type report = {
  fresh : Finding.t list;
  baselined : Finding.t list;
  unused_baseline : Baseline.entry list;
  files_scanned : int;
  allow_debt : (string * Allow.region list) list;
  baseline_total : int;
}

let build_root root =
  let candidate = Filename.concat (Filename.concat root "_build") "default" in
  if Sys.file_exists candidate && Sys.is_directory candidate then candidate else root

let ends_with ~suffix s =
  let n = String.length suffix in
  String.length s >= n && String.equal suffix (String.sub s (String.length s - n) n)

let find_cmts ~build_root ~dirs =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then begin
            (* .formatted holds ocamlformat shadow copies; lint_fixtures are
               the deliberately-buggy lint test inputs. Neither is repo code. *)
            if not (String.equal name ".formatted" || String.equal name "lint_fixtures")
            then walk path
          end
          else if ends_with ~suffix:".cmt" name then acc := path :: !acc)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun d ->
      let path = Filename.concat build_root d in
      if Sys.file_exists path && Sys.is_directory path then walk path)
    dirs;
  List.sort String.compare !acc

let load_cmt ?(classify = Classify.of_source) path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | infos -> (
    match (infos.cmt_annots, infos.cmt_sourcefile) with
    | _, Some source when ends_with ~suffix:".ml-gen" source ->
      None (* dune wrapper module *)
    | Implementation str, source ->
      let source = match source with Some s -> s | None -> path in
      Some
        {
          u_cls = classify source;
          u_name = infos.cmt_modname;
          u_str = str;
          u_uid_to_loc = infos.cmt_uid_to_loc;
          u_regions = Allow.collect str;
        }
    | _ -> None)

(* Phase 2: intraprocedural rules per unit, then the graph families over the
   whole summary. Interprocedural findings are allow-filtered against the
   regions of the unit they are located in (by source path), so a
   [[@ntcu.allow "T003"]] or ["P001"] at the site works exactly like the
   D-rules' suppression. *)
let analyze units =
  let intra = List.concat_map (fun u -> Rules.run_all u.u_cls u.u_str) units in
  let g =
    Callgraph.build
      (List.map (fun u -> (u.u_cls, u.u_name, u.u_str, u.u_uid_to_loc)) units)
  in
  let regions_by_unit = Hashtbl.create 32 and regions_by_file = Hashtbl.create 32 in
  List.iter
    (fun u ->
      Hashtbl.replace regions_by_unit u.u_name u.u_regions;
      Hashtbl.replace regions_by_file u.u_cls.Classify.source u.u_regions)
    units;
  let allow_regions unit_name =
    match Hashtbl.find_opt regions_by_unit unit_name with Some r -> r | None -> []
  in
  let inter = Proto.check g @ Taint.check g ~allow_regions @ Escape.check g in
  let inter =
    List.filter
      (fun (f : Finding.t) ->
        match Hashtbl.find_opt regions_by_file f.file with
        | None -> true
        | Some regions -> (
          match Allow.filter regions [ f ] with [] -> false | _ -> true))
      inter
  in
  Rules.dedupe_sorted (intra @ inter)

let lint_cmt ?classify path =
  match load_cmt ?classify path with
  | None -> []
  | Some u -> Rules.run_all u.u_cls u.u_str

let run ?classify ?(dirs = [ "lib"; "bin"; "bench" ]) ~baseline ~root () =
  let build_root = build_root root in
  let cmts = find_cmts ~build_root ~dirs in
  let units = List.filter_map (fun cmt -> load_cmt ?classify cmt) cmts in
  let findings = analyze units in
  let fresh, baselined = Baseline.partition baseline findings in
  let allow_debt =
    List.filter_map
      (fun u ->
        match u.u_regions with
        | [] -> None
        | regions -> Some (u.u_cls.Classify.source, regions))
      units
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    fresh;
    baselined;
    unused_baseline = Baseline.unused baseline findings;
    files_scanned = List.length units;
    allow_debt;
    baseline_total = List.length baselined + List.length (Baseline.unused baseline findings);
  }

let is_empty = function [] -> true | _ :: _ -> false

let pp_report ppf r =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) r.fresh;
  if not (is_empty r.baselined) then
    Fmt.pf ppf "%d baselined finding%s suppressed@." (List.length r.baselined)
      (if List.length r.baselined = 1 then "" else "s");
  List.iter
    (fun (e : Baseline.entry) ->
      Fmt.pf ppf "warning: unused baseline entry %s %s:%d@." e.code e.file e.line)
    r.unused_baseline;
  if is_empty r.fresh then
    Fmt.pf ppf "ntcu-lint: clean (%d files scanned)@." r.files_scanned
  else
    Fmt.pf ppf "ntcu-lint: %d finding%s (%d files scanned)@." (List.length r.fresh)
      (if List.length r.fresh = 1 then "" else "s")
      r.files_scanned

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"ntcu-lint/2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" r.files_scanned);
  let finding_list key fs =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" key);
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n    ";
        Buffer.add_string buf (Finding.to_json f))
      fs;
    if not (is_empty fs) then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "]"
  in
  finding_list "findings" r.fresh;
  Buffer.add_string buf ",\n";
  finding_list "baselined" r.baselined;
  Buffer.add_string buf ",\n  \"unused_baseline\": [";
  List.iteri
    (fun i (e : Baseline.entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"code\": \"%s\", \"file\": \"%s\", \"line\": %d}"
           (Finding.json_escape e.code) (Finding.json_escape e.file) e.line))
    r.unused_baseline;
  if not (is_empty r.unused_baseline) then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

(* Suppression-debt report: every [@ntcu.allow] region by file with its line
   and codes, per-code totals, and the stale baseline entries. *)
let suppressions_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"ntcu-lint-suppressions/1\",\n";
  let total =
    List.fold_left (fun n (_, regions) -> n + List.length regions) 0 r.allow_debt
  in
  Buffer.add_string buf (Printf.sprintf "  \"allow_regions\": %d,\n" total);
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (_, regions) ->
      List.iter
        (fun (reg : Allow.region) ->
          let keys = match reg.codes with [] -> [ "*" ] | codes -> codes in
          List.iter
            (fun c ->
              Hashtbl.replace counts c
                (1 + match Hashtbl.find_opt counts c with Some n -> n | None -> 0))
            keys)
        regions)
    r.allow_debt;
  let codes =
    (* key enumeration only; sorted on the next line *)
    List.sort String.compare
      ((Hashtbl.fold [@ntcu.allow "D002"]) (fun c _ acc -> c :: acc) counts [])
  in
  Buffer.add_string buf "  \"by_code\": {";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": %d" (Finding.json_escape c) (Hashtbl.find counts c)))
    codes;
  Buffer.add_string buf "},\n  \"files\": [";
  List.iteri
    (fun i (file, regions) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"file\": \"%s\", \"regions\": [" (Finding.json_escape file));
      List.iteri
        (fun j (reg : Allow.region) ->
          if j > 0 then Buffer.add_string buf ", ";
          let codes_json =
            String.concat ", "
              (List.map (fun c -> Printf.sprintf "\"%s\"" (Finding.json_escape c)) reg.codes)
          in
          Buffer.add_string buf
            (Printf.sprintf "{\"line\": %d, \"codes\": [%s]}" reg.line codes_json))
        regions;
      Buffer.add_string buf "]}")
    r.allow_debt;
  if not (is_empty r.allow_debt) then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"baseline_entries\": %d,\n  \"stale_baseline\": [" r.baseline_total);
  List.iteri
    (fun i (e : Baseline.entry) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"code\": \"%s\", \"file\": \"%s\", \"line\": %d}"
           (Finding.json_escape e.code) (Finding.json_escape e.file) e.line))
    r.unused_baseline;
  if not (is_empty r.unused_baseline) then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let exit_code ?(strict_baseline = false) r =
  if not (is_empty r.fresh) then 1
  else if strict_baseline && not (is_empty r.unused_baseline) then 2
  else 0
