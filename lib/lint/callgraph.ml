(* Cross-module call graph over the dune-produced .cmt set.

   Phase 1 of the analyzer (see Engine): every compilation unit contributes
   its module-level value definitions and the references inside their
   bodies. Resolution is uid-first: OCaml >= 5.1 stamps each module-level
   declaration with a Shape.Uid ([Item {comp_unit; id}]) recorded in the
   cmt's [cmt_uid_to_loc] table, and every [Texp_ident] carries the uid of
   the value it denotes — so a cross-module reference resolves exactly,
   through dune's module wrapping, without name guessing.

   Three mechanisms extend the graph beyond direct uid resolution:

   - Functor instantiation: a call through a functor parameter ([P.f] inside
     [F (P : S)]) has no definition uid. For every recorded application
     [module M = F (Arg)], such calls gain edges to [Arg]'s matching defs.
     The approximation is per-functor, not per-instance: with two
     applications F(A) and F(B), a body call [P.f] points at both A.f and
     B.f — a sound over-approximation for reachability rules.
   - First-class modules: [(module Impl : S)] ([Texp_pack]) adds edges from
     the packing def to every def of the packed module, and a later call
     through an unpacked module ([M.f] where the uid resolves into a scanned
     unit's signature rather than a def) falls back to the defs named [f] of
     every packed module — the dynamic-dispatch over-approximation for
     [Protocol.S]-style plugin registries.
   - Module aliases and applications: [module M = F (Arg)] calls [M.g]
     resolve into [F]'s body defs by name.

   Unresolved references (Stdlib, external libraries, functor params with no
   recorded application) are kept as [ext] records; rules pattern-match
   their path names ("Hashtbl.iter", "Engine.cancel", ...) the same way the
   intraprocedural rules do. *)

type def = {
  uid : string;  (* global key, e.g. "Ntcu_scale__Wire.12" *)
  name : string;
  qual : string;  (* module-path-qualified within the unit, e.g. "Wire.encode" *)
  unit_name : string;
  cls : Classify.t;
  loc : Location.t;
  body : Typedtree.expression;
}

type call = { target : string; site : Location.t }
type ext = { ext_name : string; ext_site : Location.t }

let def_ofs d = d.loc.Location.loc_start.Lexing.pos_cnum

let compare_def a b =
  let c = String.compare a.cls.Classify.source b.cls.Classify.source in
  if c <> 0 then c
  else
    let c = Int.compare (def_ofs a) (def_ofs b) in
    if c <> 0 then c else String.compare a.uid b.uid

(* ---- per-unit extraction ------------------------------------------------ *)

type raw_use = { u_uid : string option; u_path : Path.t; u_site : Location.t }

type raw_def = {
  r_def : def;
  r_stamp : string option;  (* Ident.unique_name of the binder, for Pident resolution *)
  r_functor : string option;  (* qual of the enclosing functor, if any *)
  r_uses : raw_use list;
  r_packs : (string * Location.t) list;  (* packed module path names *)
}

type functor_info = { f_qual : string; f_param : string option }

type unit_acc = {
  a_unit : string;
  mutable a_defs : raw_def list;
  mutable a_functors : functor_info list;
  (* module-binding qual -> `Apply (functor path name, arg path name)
     or `Alias (module path name) *)
  mutable a_mods : (string * [ `Apply of string * string | `Alias of string ]) list;
}

let uid_to_string uid = Format.asprintf "%a" Shape.Uid.print uid

let collect_uses (e : Typedtree.expression) =
  let uses = ref [] and packs = ref [] in
  let open Tast_iterator in
  let expr sub (e' : Typedtree.expression) =
    (match e'.exp_desc with
    | Texp_ident (path, _, vd) ->
      uses :=
        { u_uid = Some (uid_to_string vd.val_uid); u_path = path; u_site = e'.exp_loc }
        :: !uses
    | Texp_pack me -> (
      match me.mod_desc with
      | Tmod_ident (p, _) -> packs := (Path.name p, e'.exp_loc) :: !packs
      | Tmod_constraint ({ mod_desc = Tmod_ident (p, _); _ }, _, _, _) ->
        packs := (Path.name p, e'.exp_loc) :: !packs
      | _ -> ())
    | _ -> ());
    default_iterator.expr sub e'
  in
  let it = { default_iterator with expr } in
  it.expr it e;
  (List.rev !uses, List.rev !packs)

(* The use's uid belongs to the value the typechecker resolved, so the uid of
   a reference to [vd.val_uid] is authoritative; the path is kept for Pident
   fallback and for external-name matching. *)

let pattern_binders (p : Typedtree.pattern) =
  let acc = ref [] in
  let rec go (p : Typedtree.pattern) =
    match p.pat_desc with
    | Tpat_var (id, name) -> acc := (id, name.txt, name.loc) :: !acc
    | Tpat_alias (p', id, name) ->
      acc := (id, name.txt, name.loc) :: !acc;
      go p'
    | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps -> List.iter go ps
    | Tpat_record (fields, _) -> List.iter (fun (_, _, p') -> go p') fields
    | Tpat_or (a, b, _) ->
      go a;
      go b
    | Tpat_lazy p' | Tpat_variant (_, Some p', _) -> go p'
    | _ -> ()
  in
  go p;
  List.rev !acc

let scan_unit ~cls ~unit_name ~(uid_to_loc : Location.t Shape.Uid.Tbl.t)
    (str : Typedtree.structure) =
  let acc = { a_unit = unit_name; a_defs = []; a_functors = []; a_mods = [] } in
  (* uid by start offset of the declaration's name location *)
  let uid_at = Hashtbl.create 64 in
  (* keyed replace into a fresh table: one uid per name location, so the
     visit order of the source table cannot change the result *)
  (Shape.Uid.Tbl.iter [@ntcu.allow "D002"])
    (fun uid loc ->
      Hashtbl.replace uid_at loc.Location.loc_start.Lexing.pos_cnum (uid_to_string uid))
    uid_to_loc;
  let fresh = ref 0 in
  let add_def ?stamp ?enclosing_functor ~qual_prefix ~name ~name_loc ~loc body =
    let uid =
      match Hashtbl.find_opt uid_at name_loc.Location.loc_start.Lexing.pos_cnum with
      | Some u -> u
      | None ->
        incr fresh;
        Printf.sprintf "%s#%d.%d" unit_name name_loc.Location.loc_start.Lexing.pos_cnum
          !fresh
    in
    let qual = if qual_prefix = "" then name else qual_prefix ^ "." ^ name in
    let uses, packs = collect_uses body in
    acc.a_defs <-
      {
        r_def = { uid; name; qual; unit_name; cls; loc; body };
        r_stamp = stamp;
        r_functor = enclosing_functor;
        r_uses = uses;
        r_packs = packs;
      }
      :: acc.a_defs
  in
  let rec items ~qual_prefix ~enclosing_functor its =
    List.iter (fun it -> item ~qual_prefix ~enclosing_functor it) its
  and item ~qual_prefix ~enclosing_functor (si : Typedtree.structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match pattern_binders vb.vb_pat with
          | [] ->
            (* [let () = ...]: keep the body as an anonymous def so its
               references still participate in the graph. *)
            add_def ?enclosing_functor ~qual_prefix ~name:"_" ~name_loc:vb.vb_loc
              ~loc:vb.vb_loc vb.vb_expr
          | binders ->
            List.iter
              (fun (id, name, name_loc) ->
                add_def ~stamp:(Ident.unique_name id) ?enclosing_functor ~qual_prefix ~name
                  ~name_loc ~loc:name_loc vb.vb_expr)
              binders)
        vbs
    | Tstr_module mb -> module_binding ~qual_prefix ~enclosing_functor mb
    | Tstr_recmodule mbs ->
      List.iter (fun mb -> module_binding ~qual_prefix ~enclosing_functor mb) mbs
    | Tstr_include incl -> module_expr ~qual_prefix ~enclosing_functor incl.incl_mod
    | _ -> ()
  and module_binding ~qual_prefix ~enclosing_functor (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let qual = if qual_prefix = "" then name else qual_prefix ^ "." ^ name in
    named_module_expr ~qual ~enclosing_functor mb.mb_expr
  and named_module_expr ~qual ~enclosing_functor (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> items ~qual_prefix:qual ~enclosing_functor str.str_items
    | Tmod_constraint (me', _, _, _) -> named_module_expr ~qual ~enclosing_functor me'
    | Tmod_functor (param, body) ->
      let param_name =
        match param with
        | Named (_, { txt = Some n; _ }, _) -> Some n
        | Named (_, { txt = None; _ }, _) | Unit -> None
      in
      acc.a_functors <- { f_qual = qual; f_param = param_name } :: acc.a_functors;
      named_module_expr ~qual ~enclosing_functor:(Some qual) body
    | Tmod_apply (f, arg, _) -> (
      match (module_path f, module_path arg) with
      | Some fp, Some ap -> acc.a_mods <- (qual, `Apply (fp, ap)) :: acc.a_mods
      | _ -> ())
    | Tmod_ident (p, _) -> acc.a_mods <- (qual, `Alias (Path.name p)) :: acc.a_mods
    | _ -> ()
  and module_expr ~qual_prefix ~enclosing_functor (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> items ~qual_prefix ~enclosing_functor str.str_items
    | Tmod_constraint (me', _, _, _) -> module_expr ~qual_prefix ~enclosing_functor me'
    | _ -> ()
  and module_path (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> Some (Path.name p)
    | Tmod_constraint (me', _, _, _) -> module_path me'
    | _ -> None
  in
  items ~qual_prefix:"" ~enclosing_functor:None str.str_items;
  acc.a_defs <- List.rev acc.a_defs;
  acc.a_functors <- List.rev acc.a_functors;
  acc.a_mods <- List.rev acc.a_mods;
  acc

(* ---- the graph ---------------------------------------------------------- *)

type t = {
  by_uid : (string, def) Hashtbl.t;
  all_defs : def list;  (* sorted by compare_def *)
  calls : (string, call list) Hashtbl.t;
  exts : (string, ext list) Hashtbl.t;
}

let last_component s =
  match String.rindex_opt s '.' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* "Ntcu_scale__Wire" -> "Ntcu_scale.Wire": dune's wrapped-module alias. *)
let dotted_unit u =
  let buf = Buffer.create (String.length u) in
  let n = String.length u in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && u.[!i] = '_' && u.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf u.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let build units =
  let accs =
    List.map
      (fun (cls, unit_name, str, uid_to_loc) -> scan_unit ~cls ~unit_name ~uid_to_loc str)
      units
  in
  let by_uid = Hashtbl.create 512 in
  let by_stamp = Hashtbl.create 512 in
  (* module key -> defs directly inside that module *)
  let module_index = Hashtbl.create 128 in
  let scanned_units = Hashtbl.create 32 in
  let add_module_key key d =
    if not (String.equal key "") then
      Hashtbl.replace module_index key
        (d :: (match Hashtbl.find_opt module_index key with Some l -> l | None -> []))
  in
  List.iter
    (fun a ->
      Hashtbl.replace scanned_units a.a_unit ();
      List.iter
        (fun rd ->
          let d = rd.r_def in
          Hashtbl.replace by_uid d.uid d;
          (match rd.r_stamp with
          | Some s -> Hashtbl.replace by_stamp (a.a_unit, s) d.uid
          | None -> ());
          let mod_path =
            match String.rindex_opt d.qual '.' with
            | None -> ""
            | Some i -> String.sub d.qual 0 i
          in
          let unit_keys = [ a.a_unit; dotted_unit a.a_unit; last_component (dotted_unit a.a_unit) ] in
          List.iter
            (fun uk ->
              if mod_path = "" then add_module_key uk d
              else add_module_key (uk ^ "." ^ mod_path) d)
            unit_keys;
          if mod_path <> "" then begin
            add_module_key mod_path d;
            add_module_key (last_component mod_path) d
          end)
        a.a_defs)
    accs;
  let module_defs name =
    match Hashtbl.find_opt module_index name with
    | Some l -> l
    | None -> (
      match Hashtbl.find_opt module_index (last_component name) with
      | Some l -> l
      | None -> [])
  in
  (* functor qual (and aliases) -> info + body defs *)
  let functor_index = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun (fi : functor_info) ->
          let body =
            List.filter (fun rd -> rd.r_functor = Some fi.f_qual) a.a_defs
            |> List.map (fun rd -> rd.r_def)
          in
          List.iter
            (fun key -> Hashtbl.replace functor_index key (fi, body))
            [ a.a_unit ^ "." ^ fi.f_qual; dotted_unit a.a_unit ^ "." ^ fi.f_qual;
              fi.f_qual; last_component fi.f_qual ])
        a.a_functors)
    accs;
  (* applications: functor -> argument module names it was applied to *)
  let applications = Hashtbl.create 16 in
  (* module-binding qual (unit-qualified and bare) -> resolution *)
  let mod_bindings = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun (qual, res) ->
          (match res with
          | `Apply (fp, ap) -> (
            match Hashtbl.find_opt functor_index fp with
            | Some (fi, _) ->
              Hashtbl.replace applications fi.f_qual
                (ap
                :: (match Hashtbl.find_opt applications fi.f_qual with
                   | Some l -> l
                   | None -> []))
            | None -> ())
          | `Alias _ -> ());
          List.iter
            (fun key -> Hashtbl.replace mod_bindings key res)
            [ a.a_unit ^ "." ^ qual; qual ])
        a.a_mods)
    accs;
  (* packed modules, program-wide: the first-class dispatch fallback set *)
  let packed_modules = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun rd -> List.iter (fun (m, _) -> packed_modules := m :: !packed_modules) rd.r_packs)
        a.a_defs)
    accs;
  let packed_defs_named name =
    List.concat_map
      (fun m -> List.filter (fun d -> String.equal d.name name) (module_defs m))
      (List.sort_uniq String.compare !packed_modules)
  in
  (* ---- edge resolution ---- *)
  let calls = Hashtbl.create 512 and exts = Hashtbl.create 512 in
  let add_call src target site =
    Hashtbl.replace calls src
      ({ target; site }
      :: (match Hashtbl.find_opt calls src with Some l -> l | None -> []))
  in
  let add_ext src ext_name ext_site =
    Hashtbl.replace exts src
      ({ ext_name; ext_site }
      :: (match Hashtbl.find_opt exts src with Some l -> l | None -> []))
  in
  let resolve_use a (rd : raw_def) (u : raw_use) =
    let src = rd.r_def.uid in
    let resolved_by_uid =
      match u.u_uid with
      | Some us when Hashtbl.mem by_uid us ->
        add_call src us u.u_site;
        true
      | _ -> false
    in
    if not resolved_by_uid then begin
      let resolved_local =
        match u.u_path with
        | Path.Pident id -> (
          match Hashtbl.find_opt by_stamp (a.a_unit, Ident.unique_name id) with
          | Some uid ->
            add_call src uid u.u_site;
            true
          | None -> false)
        | _ -> false
      in
      if not resolved_local then begin
        let name = Path.name u.u_path in
        (* Calls through an applied-functor module: [module M = F(Arg)] then
           [M.g] resolves to F's body def g. *)
        let resolved_app =
          match u.u_path with
          | Path.Pdot (m, f) -> (
            let mname = Path.name m in
            let lookup =
              match Hashtbl.find_opt mod_bindings (a.a_unit ^ "." ^ mname) with
              | Some r -> Some r
              | None -> Hashtbl.find_opt mod_bindings mname
            in
            match lookup with
            | Some (`Apply (fp, _)) -> (
              match Hashtbl.find_opt functor_index fp with
              | Some (_, body) -> (
                match List.find_opt (fun d -> String.equal d.name f) body with
                | Some d ->
                  add_call src d.uid u.u_site;
                  true
                | None -> false)
              | None -> false)
            | Some (`Alias target) -> (
              match
                List.find_opt
                  (fun d -> String.equal d.name f)
                  (module_defs target)
              with
              | Some d ->
                add_call src d.uid u.u_site;
                true
              | None -> false)
            | None -> false)
          | _ -> false
        in
        (* A use through the enclosing functor's own parameter is handled by
           the per-application pass below; letting it hit the first-class
           fallback would link it to every packed module. *)
        let functor_param_use =
          match rd.r_functor with
          | Some fq -> (
            match
              List.find_opt
                (fun (fi : functor_info) -> String.equal fi.f_qual fq)
                a.a_functors
            with
            | Some { f_param = Some p; _ } ->
              let prefix = p ^ "." in
              String.length name > String.length prefix
              && String.equal (String.sub name 0 (String.length prefix)) prefix
            | _ -> false)
          | None -> false
        in
        if not resolved_app && not functor_param_use then begin
          (* First-class fallback: the uid points into a scanned unit (a
             signature item, e.g. Protocol.S's val) but is not a def — link
             to every packed implementation with a matching name. *)
          let in_scanned =
            match u.u_uid with
            | Some _ -> (
              match u.u_path with
              | Path.Pdot _ -> (
                match
                  List.find_opt
                    (fun acc' ->
                      match u.u_uid with
                      | Some us ->
                        String.length us > String.length acc'.a_unit
                        && String.sub us 0 (String.length acc'.a_unit) = acc'.a_unit
                        && us.[String.length acc'.a_unit] = '.'
                      | None -> false)
                    accs
                with
                | Some _ -> true
                | None -> false)
              | _ -> false)
            | None -> false
          in
          let fallback_targets =
            if in_scanned then packed_defs_named (last_component name) else []
          in
          if not (List.is_empty fallback_targets) then
            List.iter (fun d -> add_call src d.uid u.u_site) fallback_targets
          else add_ext src name u.u_site
        end
      end
    end
  in
  List.iter (fun a -> List.iter (fun rd -> List.iter (resolve_use a rd) rd.r_uses) a.a_defs) accs;
  (* Functor-parameter fallback: for F's body defs, [P.f] gains edges to the
     matching defs of every module F was applied to. *)
  List.iter
    (fun a ->
      List.iter
        (fun (fi : functor_info) ->
          match (fi.f_param, Hashtbl.find_opt applications fi.f_qual) with
          | Some p, Some args ->
            let prefix = p ^ "." in
            List.iter
              (fun rd ->
                if rd.r_functor = Some fi.f_qual then
                  List.iter
                    (fun (e : raw_use) ->
                      let name = Path.name e.u_path in
                      if
                        String.length name > String.length prefix
                        && String.sub name 0 (String.length prefix) = prefix
                        && not (Hashtbl.mem by_uid (Option.value ~default:"" e.u_uid))
                      then
                        let f = last_component name in
                        List.iter
                          (fun arg ->
                            List.iter
                              (fun d ->
                                if String.equal d.name f then
                                  add_call rd.r_def.uid d.uid e.u_site)
                              (module_defs arg))
                          (List.sort_uniq String.compare args))
                    rd.r_uses)
              a.a_defs
          | _ -> ())
        a.a_functors)
    accs;
  (* Pack edges: the packing def reaches everything the packed module defines. *)
  List.iter
    (fun a ->
      List.iter
        (fun rd ->
          List.iter
            (fun (m, site) ->
              List.iter (fun d -> add_call rd.r_def.uid d.uid site) (module_defs m))
            rd.r_packs)
        a.a_defs)
    accs;
  (* Deterministic adjacency: sort, dedupe. *)
  let sort_calls l =
    List.sort_uniq
      (fun a b ->
        let c = String.compare a.target b.target in
        if c <> 0 then c
        else
          Int.compare a.site.Location.loc_start.Lexing.pos_cnum
            b.site.Location.loc_start.Lexing.pos_cnum)
      l
  in
  (* per-key in-place normalization: the fold only enumerates keys, and each
     key's adjacency list is sorted independently *)
  let keys tbl = (Hashtbl.fold [@ntcu.allow "D002"]) (fun k _ acc -> k :: acc) tbl [] in
  List.iter (fun k -> Hashtbl.replace calls k (sort_calls (Hashtbl.find calls k))) (keys calls);
  List.iter
    (fun k ->
      Hashtbl.replace exts k
        (List.sort
           (fun a b ->
             let c =
               Int.compare a.ext_site.Location.loc_start.Lexing.pos_cnum
                 b.ext_site.Location.loc_start.Lexing.pos_cnum
             in
             if c <> 0 then c else String.compare a.ext_name b.ext_name)
           (Hashtbl.find exts k)))
    (keys exts);
  let all_defs =
    List.sort compare_def
      (List.concat_map (fun a -> List.map (fun rd -> rd.r_def) a.a_defs) accs)
  in
  { by_uid; all_defs; calls; exts }

(* ---- queries ------------------------------------------------------------ *)

let defs t = t.all_defs

let defs_in_unit t unit_name =
  List.filter (fun d -> String.equal d.unit_name unit_name) t.all_defs

let find t uid = Hashtbl.find_opt t.by_uid uid

let ends_with ~suffix s =
  let n = String.length suffix in
  String.length s >= n && String.equal suffix (String.sub s (String.length s - n) n)

let find_qual t q =
  List.filter
    (fun d ->
      let full = dotted_unit d.unit_name ^ "." ^ d.qual in
      String.equal d.qual q || ends_with ~suffix:("." ^ q) full)
    t.all_defs

let calls_of t d = match Hashtbl.find_opt t.calls d.uid with Some l -> l | None -> []
let exts_of t d = match Hashtbl.find_opt t.exts d.uid with Some l -> l | None -> []

let reachable t ~roots =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun d ->
      if not (Hashtbl.mem seen d.uid) then begin
        Hashtbl.replace seen d.uid ();
        Queue.push d queue
      end)
    roots;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let d = Queue.pop queue in
    out := d :: !out;
    List.iter
      (fun c ->
        if not (Hashtbl.mem seen c.target) then begin
          Hashtbl.replace seen c.target ();
          match find t c.target with Some d' -> Queue.push d' queue | None -> ()
        end)
      (calls_of t d)
  done;
  List.sort compare_def !out

let path t ~from ~dest =
  if dest from then Some ([], from)
  else begin
    let pred = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.replace pred from.uid None;
    Queue.push from queue;
    let found = ref None in
    while Option.is_none !found && not (Queue.is_empty queue) do
      let d = Queue.pop queue in
      List.iter
        (fun c ->
          if Option.is_none !found && not (Hashtbl.mem pred c.target) then begin
            match find t c.target with
            | Some d' ->
              Hashtbl.replace pred d'.uid (Some (d, c.site));
              if dest d' then found := Some d' else Queue.push d' queue
            | None -> ()
          end)
        (calls_of t d)
    done;
    match !found with
    | None -> None
    | Some target ->
      let rec unwind acc uid =
        match Hashtbl.find pred uid with
        | None -> acc
        | Some (d, site) -> unwind ((d, site) :: acc) d.uid
      in
      Some (unwind [] target.uid, target)
  end

let dotted = dotted_unit
let full_name d = dotted_unit d.unit_name ^ "." ^ d.qual

(* A readable per-hop trace: each step names the caller and what it calls
   next, so the final hop's text points at the step after it. *)
let trace t ~from ~dest =
  match path t ~from ~dest with
  | None -> None
  | Some (steps, target) ->
    let rec annotate = function
      | [] -> []
      | [ ((d : def), site) ] ->
        [
          Finding.step ~file:d.cls.Classify.source ~loc:site
            (Printf.sprintf "%s.%s calls %s.%s" d.unit_name d.qual target.unit_name
               target.qual);
        ]
      | ((d : def), site) :: (((d2 : def), _) :: _ as rest) ->
        Finding.step ~file:d.cls.Classify.source ~loc:site
          (Printf.sprintf "%s.%s calls %s.%s" d.unit_name d.qual d2.unit_name d2.qual)
        :: annotate rest
    in
    Some (annotate steps, target)
