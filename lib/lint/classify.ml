type t = {
  source : string;
  in_lib : bool;
  in_test : bool;
  clock_allowed : bool;
  emitter : bool;
  codec : bool;
  dispatch : bool;
}

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let basename s =
  match String.rindex_opt s '/' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* Modules whose output is diffed byte-for-byte (JSON reports, golden traces,
   wire codecs, repro files): lossy float formatting there can mask a real
   divergence behind identical rounded text. *)
let emitter_basenames = [ "report.ml"; "trace.ml"; "codec.ml"; "repro.ml" ]

(* Wire codec units: the P002 encoder/decoder constructor-coverage parity
   check applies. [codec.ml] frames Message.t; [wire.ml] frames the sharded
   engine's cross-shard batches via kind_* constants. *)
let codec_basenames = [ "codec.ml"; "wire.ml" ]

(* Directories holding protocol state machines: a wildcard arm in a match
   over a wire message type there silently drops message kinds (P001). *)
let dispatch_prefixes =
  [ "lib/core/"; "lib/protocol/"; "lib/chord/"; "lib/baseline/"; "lib/extensions/";
    "lib/scale/" ]

let of_source source =
  {
    source;
    in_lib = starts_with "lib/" source;
    in_test = starts_with "test/" source;
    clock_allowed =
      starts_with "lib/harness/" source || starts_with "bench/" source
      || starts_with "test/" source;
    emitter = List.mem (basename source) emitter_basenames;
    codec = List.mem (basename source) codec_basenames;
    dispatch = List.exists (fun p -> starts_with p source) dispatch_prefixes;
  }
