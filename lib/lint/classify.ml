type t = { source : string; in_lib : bool; clock_allowed : bool; emitter : bool }

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let basename s =
  match String.rindex_opt s '/' with
  | None -> s
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)

(* Modules whose output is diffed byte-for-byte (JSON reports, golden traces,
   wire codecs, repro files): lossy float formatting there can mask a real
   divergence behind identical rounded text. *)
let emitter_basenames = [ "report.ml"; "trace.ml"; "codec.ml"; "repro.ml" ]

let of_source source =
  {
    source;
    in_lib = starts_with "lib/" source;
    clock_allowed = starts_with "lib/harness/" source || starts_with "bench/" source;
    emitter = List.mem (basename source) emitter_basenames;
  }
