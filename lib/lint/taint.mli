(** T-rules: determinism taint — the interprocedural upgrade of D002/D003/D005.

    Sources (unordered [Hashtbl.iter]/[fold], wall clock / global [Random] /
    [Domain.self], lossy float formatting) located in any def reachable from
    an emitter def ({!Classify.t.emitter}) are reported with the
    emitter-to-source call chain as the finding's trace:

    - {b T002} unordered iteration whose order can leak into diffed output.
    - {b T003} ambient nondeterminism feeding an emitter — {e also} fires in
      [clock_allowed] scopes, where local D003 is out of scope by design.
    - {b T005} lossy float formatting on an emitter-reachable path outside
      the emitter unit itself.

    An [[@ntcu.allow]] region covering the source site for the T-code or its
    D-counterpart neutralizes the source. *)

val check : Callgraph.t -> allow_regions:(string -> Allow.region list) -> Finding.t list
(** [check g ~allow_regions] — [allow_regions unit_name] must return the
    [[@ntcu.allow]] regions of that compilation unit. Findings are located at
    the source site and carry a non-empty trace. *)
