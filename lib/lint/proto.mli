(** P-rules: protocol soundness over the call graph.

    - {b P001} a wildcard arm in a [handle*]/[dispatch*]/[on_*] def's match
      over a message variant ([...Message.t] or [msg]) inside a dispatch
      unit ({!Classify.t.dispatch}) that hides at least one constructor —
      silently dropped message kinds degrade table quality without failing.
    - {b P002} codec parity in codec units ({!Classify.t.codec}): a message
      constructor matched by the encoder but never built by the decoder (or
      vice versa), and — for integer-framed wire formats — a [kind_*]
      constant reachable from [encode*] defs but from no [decode*] def (or
      vice versa).
    - {b P003} a unit that arms cancellable timers
      ([Engine.schedule_cancellable]) with no reachable path to
      [Engine.cancel] from any of its defs — leaked timers fire after their
      owner's teardown.

    Every finding carries a non-empty trace anchored in the call graph. *)

val check : Callgraph.t -> Finding.t list
