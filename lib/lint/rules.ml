type rule = {
  code : string;
  title : string;
  check : Classify.t -> Typedtree.structure -> Finding.t list;
}

let finding ~code ~(cls : Classify.t) ~loc fmt =
  Printf.ksprintf (fun message -> Finding.make ~code ~file:cls.source ~loc message) fmt

let path_name p = Path.name p

let ends_with ~suffix s =
  let n = String.length suffix in
  String.length s >= n && String.equal suffix (String.sub s (String.length s - n) n)

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.equal prefix (String.sub s 0 n)

let string_of_type ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

(* Iterate expressions of a structure with the default deep traversal. *)
let iter_exprs str f =
  let open Tast_iterator in
  let expr sub e =
    f e;
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.structure it str

(* ---- D001: polymorphic compare at abstract types ------------------------ *)

(* Types on which the polymorphic operations are structurally meaningful and
   representation-stable: immediate/base types and containers thereof. A type
   variable means the surrounding code is itself generic — the hazard, if
   any, is at its instantiation site, not here. Everything else (abstract
   types, records, variants, functions, objects) is flagged. *)
let rec comparable_ty ty =
  match Types.get_desc ty with
  | Tvar _ | Tunivar _ -> true
  | Ttuple parts -> List.for_all comparable_ty parts
  | Tpoly (t, _) -> comparable_ty t
  | Tconstr (p, args, _) ->
    let base =
      List.exists (Path.same p)
        Predef.
          [
            path_int;
            path_char;
            path_string;
            path_bytes;
            path_bool;
            path_unit;
            path_float;
            path_nativeint;
            path_int32;
            path_int64;
            path_floatarray;
          ]
    in
    let container =
      List.exists (Path.same p) Predef.[ path_option; path_list; path_array ]
    in
    (base || container) && List.for_all comparable_ty args
  | _ -> false

let poly_ops = [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.Hashtbl.hash" ]

let rec first_arrow_arg ty =
  match Types.get_desc ty with
  | Tarrow (_, a, _, _) -> Some a
  | Tpoly (t, _) -> first_arrow_arg t
  | _ -> None

let head_is_option ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Path.same p Predef.path_option
  | _ -> false

let d001_check (cls : Classify.t) str =
  (* Polymorphic equality on concrete variants is idiomatic in unit-test
     assertions; the hazard D001 guards against — representation-dependent
     comparison inside the protocol — does not apply there. *)
  if cls.in_test then []
  else begin
  let acc = ref [] in
  iter_exprs str (fun e ->
      match e.Typedtree.exp_desc with
      | Texp_ident (path, _, _) when List.exists (String.equal (path_name path)) poly_ops
        -> (
        match first_arrow_arg e.exp_type with
        | Some arg when not (comparable_ty arg) ->
          let op =
            match String.rindex_opt (path_name path) '.' with
            | Some i ->
              let n = path_name path in
              String.sub n (i + 1) (String.length n - i - 1)
            | None -> path_name path
          in
          let hint =
            if head_is_option arg then
              "use Option.is_some/is_none or equal on the element type"
            else "use the type's dedicated equal/compare"
          in
          acc :=
            finding ~code:"D001" ~cls ~loc:e.exp_loc
              "polymorphic %s instantiated at %s; %s" op (string_of_type arg) hint
            :: !acc
        | _ -> ())
      | _ -> ());
  !acc
  end

(* ---- D002: unordered Hashtbl iteration ---------------------------------- *)

let d002_targets name =
  ends_with ~suffix:"Hashtbl.iter" name
  || ends_with ~suffix:"Hashtbl.fold" name
  || ends_with ~suffix:"Tbl.iter" name
  || ends_with ~suffix:"Tbl.fold" name

let d002_check (cls : Classify.t) str =
  let acc = ref [] in
  iter_exprs str (fun e ->
      match e.Typedtree.exp_desc with
      | Texp_ident (path, _, _) when d002_targets (path_name path) ->
        acc :=
          finding ~code:"D002" ~cls ~loc:e.exp_loc
            "unordered %s; iterate keys in sorted order, or annotate with [@ntcu.allow \"D002\"] if the consumer is order-insensitive"
            (path_name path)
          :: !acc
      | _ -> ());
  !acc

(* ---- D003: wall clock / global Random in protocol code ------------------ *)

let d003_clock = [ "Stdlib.Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.times" ]

let d003_target name =
  List.exists (String.equal name) d003_clock
  || starts_with ~prefix:"Stdlib.Random." name
     && not (starts_with ~prefix:"Stdlib.Random.State." name)

let d003_check (cls : Classify.t) str =
  if cls.clock_allowed then []
  else begin
    let acc = ref [] in
    iter_exprs str (fun e ->
        match e.Typedtree.exp_desc with
        | Texp_ident (path, _, _) when d003_target (path_name path) ->
          acc :=
            finding ~code:"D003" ~cls ~loc:e.exp_loc
              "%s in protocol code; thread an Ntcu_std.Rng.t / simulated clock instead (harness and bench are allowlisted)"
              (path_name path)
            :: !acc
        | _ -> ());
    !acc
  end

(* ---- D004: toplevel mutable state in domain-shared libraries ------------ *)

let d004_creators name =
  String.equal name "Stdlib.ref"
  || ends_with ~suffix:"Hashtbl.create" name
  || ends_with ~suffix:"Tbl.create" name
  || ends_with ~suffix:"Buffer.create" name

(* Scan an expression for mutable-state creation, stopping at function
   boundaries: state created inside a function body is per-call, not
   toplevel. [lazy] does NOT stop the scan — a toplevel lazy forced from two
   domains races (the Logmath factorial-cache lesson). *)
let d004_scan_expr ~cls acc (e : Typedtree.expression) =
  let open Tast_iterator in
  let expr sub e' =
    match e'.Typedtree.exp_desc with
    | Texp_function _ -> ()
    | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args)
      when d004_creators (path_name path) ->
      acc :=
        finding ~code:"D004" ~cls ~loc:e'.exp_loc
          "toplevel mutable state (%s) in a library shared across the domain pool; move it under a function or owner-domain guard, or annotate with a justification"
          (path_name path)
        :: !acc;
      List.iter (fun (_, a) -> match a with Some a -> sub.expr sub a | None -> ()) args
    | _ -> default_iterator.expr sub e'
  in
  let it = { default_iterator with expr } in
  it.expr it e

let rec d004_scan_items ~cls acc items =
  List.iter
    (fun (si : Typedtree.structure_item) ->
      match si.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) -> d004_scan_expr ~cls acc vb.vb_expr)
          vbs
      | Tstr_module mb -> d004_scan_module ~cls acc mb.mb_expr
      | Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) -> d004_scan_module ~cls acc mb.mb_expr)
          mbs
      | Tstr_include incl -> d004_scan_module ~cls acc incl.incl_mod
      | _ -> ())
    items

and d004_scan_module ~cls acc (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> d004_scan_items ~cls acc str.str_items
  | Tmod_constraint (me, _, _, _) -> d004_scan_module ~cls acc me
  | _ -> ()

let d004_check (cls : Classify.t) (str : Typedtree.structure) =
  if not cls.in_lib then []
  else begin
    let acc = ref [] in
    d004_scan_items ~cls acc str.Typedtree.str_items;
    !acc
  end

(* ---- D005: lossy float formatting in emitters --------------------------- *)

(* Format literals are elaborated by the typechecker into
   CamlinternalFormatBasics constructors carrying the literal's location, so
   a [%f] in a format string surfaces as a [Float_f] construct here. *)
let d005_float_convs = [ "Float_f"; "Float_F" ]

let d005_check (cls : Classify.t) str =
  if not cls.emitter then []
  else begin
    let acc = ref [] in
    iter_exprs str (fun e ->
        match e.Typedtree.exp_desc with
        | Texp_ident (path, _, _)
          when String.equal (path_name path) "Stdlib.string_of_float" ->
          acc :=
            finding ~code:"D005" ~cls ~loc:e.exp_loc
              "string_of_float is lossy; use %%h (exact) or Report.Json.float_repr (%%.17g)"
            :: !acc
        | Texp_construct (_, cd, _)
          when List.exists (String.equal cd.cstr_name) d005_float_convs
               && (match Types.get_desc cd.cstr_res with
                  | Tconstr (p, _, _) -> ends_with ~suffix:"float_kind_conv" (path_name p)
                  | _ -> false) ->
          acc :=
            finding ~code:"D005" ~cls ~loc:e.exp_loc
              "lossy float conversion %%f in an emitter; use %%h (exact) or %%.17g so equal text means equal floats"
            :: !acc
        | _ -> ());
    !acc
  end

(* ---- shared site predicates (reused by the interprocedural rules) ------- *)

let d005_site (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (path, _, _) -> String.equal (path_name path) "Stdlib.string_of_float"
  | Texp_construct (_, cd, _) ->
    List.exists (String.equal cd.cstr_name) d005_float_convs
    && (match Types.get_desc cd.cstr_res with
       | Tconstr (p, _, _) -> ends_with ~suffix:"float_kind_conv" (path_name p)
       | _ -> false)
  | _ -> false

(* ---- registry ----------------------------------------------------------- *)

let all =
  [
    {
      code = "D001";
      title = "polymorphic compare at abstract protocol type";
      check = d001_check;
    };
    { code = "D002"; title = "unordered Hashtbl iteration"; check = d002_check };
    {
      code = "D003";
      title = "wall clock or global Random in protocol code";
      check = d003_check;
    };
    {
      code = "D004";
      title = "toplevel mutable state shared across domains";
      check = d004_check;
    };
    { code = "D005"; title = "lossy float formatting in emitter"; check = d005_check };
  ]

let dedupe_sorted findings =
  let sorted = List.sort Finding.compare findings in
  let rec go = function
    | a :: (b :: _ as rest) -> if Finding.equal a b then go rest else a :: go rest
    | rest -> rest
  in
  go sorted

let run_all cls str =
  let raw = List.concat_map (fun r -> r.check cls str) all in
  let regions = Allow.collect str in
  dedupe_sorted (Allow.filter regions raw)
