(** Two-phase driver over the dune-produced .cmt set.

    Phase 1 (summary build): discover and load every .cmt under the target
    dirs into {!unit_info} summaries — classification, typed tree, uid table
    and [[@ntcu.allow]] regions. Phase 2 (rule evaluation): run the
    intraprocedural registry ({!Rules.all}) per unit, build the
    cross-module {!Callgraph.t} once, and evaluate the interprocedural
    families ({!Proto}, {!Taint}, {!Escape}) over it.

    The engine reads the typed trees dune already produced ([bin_annot] is
    forced on project-wide), so linting never re-typechecks: [dune build
    @lint] is build + a fast tree walk (phase 1) + one graph pass. *)

type unit_info = {
  u_cls : Classify.t;
  u_name : string;  (** Compilation unit name, e.g. ["Ntcu_scale__Wire"]. *)
  u_str : Typedtree.structure;
  u_uid_to_loc : Location.t Shape.Uid.Tbl.t;
  u_regions : Allow.region list;
}

type report = {
  fresh : Finding.t list;  (** Non-baselined findings — these fail the gate. *)
  baselined : Finding.t list;  (** Grandfathered by the baseline file. *)
  unused_baseline : Baseline.entry list;  (** Stale baseline lines. *)
  files_scanned : int;
  allow_debt : (string * Allow.region list) list;
      (** [[@ntcu.allow]] regions per source file, for the debt report. *)
  baseline_total : int;
}

val build_root : string -> string
(** [build_root root] is [root ^ "/_build/default"] when that exists, else
    [root] itself — so the engine works both from a source checkout and from
    inside a dune action whose cwd is already the build context root. *)

val find_cmts : build_root:string -> dirs:string list -> string list
(** All [.cmt] files under [dirs] (recursively, including dot-directories
    like [.ntcu_core.objs], excluding [.formatted] and the deliberately-buggy
    [lint_fixtures] tree), sorted. *)

val load_cmt : ?classify:(string -> Classify.t) -> string -> unit_info option
(** Phase-1 summary for one .cmt. Interfaces, packed modules, generated
    [.ml-gen] wrappers, and unreadable files yield [None]. *)

val analyze : unit_info list -> Finding.t list
(** Phase 2: intraprocedural rules per unit plus the P/T/C families over the
    shared call graph, allow-filtered (interprocedural findings against the
    regions of the file they are located in), deduped, sorted. *)

val lint_cmt : ?classify:(string -> Classify.t) -> string -> Finding.t list
(** Intraprocedural findings for one .cmt in isolation (allow-filtered,
    sorted) — the single-unit fast path used by tests. *)

val run :
  ?classify:(string -> Classify.t) ->
  ?dirs:string list ->
  baseline:Baseline.t ->
  root:string ->
  unit ->
  report
(** Lint every target under [root]; [dirs] defaults to
    [["lib"; "bin"; "bench"]]. *)

val pp_report : report Fmt.t
(** Human-readable report (findings with traces, baseline stats, verdict). *)

val report_to_json : report -> string
(** Stable JSON encoding, findings sorted; schema ["ntcu-lint/2"] (findings
    carry a ["trace"] array of [{file, line, col, note}] steps). *)

val suppressions_to_json : report -> string
(** Suppression-debt report, schema ["ntcu-lint-suppressions/1"]: allow
    regions per file and per code, baseline size, stale baseline entries. *)

val exit_code : ?strict_baseline:bool -> report -> int
(** 0 when [fresh] is empty; 1 otherwise; 2 when clean but
    [strict_baseline] and stale baseline entries exist. *)
