(** Driver: discover .cmt files under the dune build tree, run the rule
    registry on each, and fold the results into a report.

    The engine reads the typed trees dune already produced ([bin_annot] is
    forced on project-wide), so linting never re-typechecks: [dune build
    @lint] is build + a fast tree walk. *)

type report = {
  fresh : Finding.t list;  (** Non-baselined findings — these fail the gate. *)
  baselined : Finding.t list;  (** Grandfathered by the baseline file. *)
  unused_baseline : Baseline.entry list;  (** Stale baseline lines. *)
  files_scanned : int;
}

val build_root : string -> string
(** [build_root root] is [root ^ "/_build/default"] when that exists, else
    [root] itself — so the engine works both from a source checkout and from
    inside a dune action whose cwd is already the build context root. *)

val find_cmts : build_root:string -> dirs:string list -> string list
(** All [.cmt] files under [dirs] (recursively, including dot-directories
    like [.ntcu_core.objs], excluding [.formatted]), sorted. *)

val lint_cmt : ?classify:(string -> Classify.t) -> string -> Finding.t list
(** Findings for one .cmt (allow-filtered, sorted). Interfaces, packed
    modules, generated [.ml-gen] wrappers, and unreadable files yield []. *)

val run :
  ?classify:(string -> Classify.t) ->
  ?dirs:string list ->
  baseline:Baseline.t ->
  root:string ->
  unit ->
  report
(** Lint every target under [root]; [dirs] defaults to
    [["lib"; "bin"; "bench"]]. *)

val pp_report : report Fmt.t
(** Human-readable report (findings, baseline stats, verdict). *)

val report_to_json : report -> string
(** Stable JSON encoding, findings sorted; schema ["ntcu-lint/1"]. *)

val exit_code : report -> int
(** 0 when [fresh] is empty, 1 otherwise. *)
