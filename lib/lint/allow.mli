(** Per-site suppression via [[@ntcu.allow "D003"]] attributes.

    An attribute on an expression, value binding, or module binding suppresses
    the listed codes for every finding located inside that node. The payload
    is a string of whitespace- or comma-separated codes; an empty payload
    allows every code. A floating [[@@@ntcu.allow "..."]] structure item
    suppresses for the whole file. *)

type region = {
  codes : string list;  (** Allowed codes; [[]] means every code. *)
  start_ofs : int;
  end_ofs : int;
}

val collect : Typedtree.structure -> region list
(** All allow regions declared in the typed tree, in source order. *)

val filter : region list -> Finding.t list -> Finding.t list
(** Drop findings whose offset falls inside a region allowing their code. *)
