(** Per-site suppression via [[@ntcu.allow "D003"]] attributes.

    An attribute on an expression, value binding, or module binding suppresses
    the listed codes for every finding located inside that node. The payload
    is a string of whitespace- or comma-separated codes; an empty payload
    allows every code. A floating [[@@@ntcu.allow "..."]] structure item
    suppresses for the whole file.

    Taint rules treat a suppressed source site as justified: a
    [[@ntcu.allow "D002"]] on an unordered iteration also neutralizes it as a
    T002 source, so one visible annotation covers both the local and the
    interprocedural form of the hazard. *)

type region = {
  codes : string list;  (** Allowed codes; [[]] means every code. *)
  line : int;  (** 1-based start line of the annotated node (debt report). *)
  start_ofs : int;
  end_ofs : int;
}

val collect : Typedtree.structure -> region list
(** All allow regions declared in the typed tree, in source order. *)

val allows : region -> string -> bool
(** Whether a region suppresses the given rule code. *)

val filter : region list -> Finding.t list -> Finding.t list
(** Drop findings whose offset falls inside a region allowing their code. *)
