type entry = { code : string; file : string; line : int; note : string }
type t = entry list

let empty = []

let parse_line raw =
  let body, note =
    match String.index_opt raw '#' with
    | Some i ->
      let note = String.trim (String.sub raw (i + 1) (String.length raw - i - 1)) in
      (String.sub raw 0 i, note)
    | None -> (raw, "")
  in
  match String.split_on_char ' ' (String.trim body) |> List.filter (fun s -> s <> "") with
  | [] -> None
  | [ code; site ] -> (
    match String.rindex_opt site ':' with
    | None -> None
    | Some i -> (
      let file = String.sub site 0 i in
      match int_of_string_opt (String.sub site (i + 1) (String.length site - i - 1)) with
      | Some line -> Some { code; file; line; note }
      | None -> None))
  | _ -> None

let of_lines lines = List.filter_map parse_line lines

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        of_lines (go []))
  end

let matches e (f : Finding.t) =
  String.equal e.code f.code && String.equal e.file f.file && e.line = f.line

let mem t f = List.exists (fun e -> matches e f) t

let partition t findings = List.partition (fun f -> not (mem t f)) findings

let unused t findings = List.filter (fun e -> not (List.exists (matches e) findings)) t

let line_of_finding (f : Finding.t) = Printf.sprintf "%s %s:%d" f.code f.file f.line
