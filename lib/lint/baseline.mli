(** Checked-in baseline of grandfathered findings.

    A baseline entry is one line: [CODE file:line], optionally followed by a
    [#]-comment carrying the one-line justification. Blank lines and lines
    starting with [#] are ignored. A finding matches an entry when code, file,
    and line are all equal — so moving or fixing a site invalidates its entry,
    which the driver reports as unused (without failing). *)

type entry = { code : string; file : string; line : int; note : string }

type t

val empty : t
val of_lines : string list -> t
val load : string -> t
(** [load path] reads the baseline; a missing file yields {!empty}. *)

val mem : t -> Finding.t -> bool

val partition : t -> Finding.t list -> Finding.t list * Finding.t list
(** [partition t findings] is [(fresh, baselined)]. *)

val unused : t -> Finding.t list -> entry list
(** Entries matching no finding, in file order — stale grandfather lines. *)

val line_of_finding : Finding.t -> string
(** Render a finding as a baseline line (used by [--update-baseline]). *)
