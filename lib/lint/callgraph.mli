(** Cross-module call graph over the dune-produced .cmt set (phase 1).

    Definitions are the module-level values of every scanned unit, keyed by
    their {!Shape.Uid} (printed form, e.g. ["Ntcu_scale__Wire.12"]). Edges
    come from [Texp_ident] uid resolution, with three over-approximating
    extensions: functor-parameter calls resolve to every recorded
    application argument, first-class-module calls ([Texp_pack] /
    [Protocol.S] packing) resolve to every packed implementation with a
    matching name, and [module M = F (Arg)] / [module M = N] bindings
    resolve by name into the functor body or aliased module. References
    that resolve to nothing scanned (Stdlib, external libraries) are kept
    as {!ext} records for name-pattern matching by rules. *)

type def = {
  uid : string;
  name : string;  (** Unqualified binder name. *)
  qual : string;  (** Module-path-qualified within the unit, e.g. ["Wire.encode"]. *)
  unit_name : string;  (** Compilation unit, e.g. ["Ntcu_scale__Wire"]. *)
  cls : Classify.t;
  loc : Location.t;  (** Location of the binder name. *)
  body : Typedtree.expression;
}

type call = { target : string;  (** Callee def uid. *) site : Location.t }
type ext = { ext_name : string;  (** Dotted path, e.g. ["Stdlib.Hashtbl.iter"]. *) ext_site : Location.t }

type t

val build : (Classify.t * string * Typedtree.structure * Location.t Shape.Uid.Tbl.t) list -> t
(** [build units] scans [(classification, unit_name, structure, uid_to_loc)]
    tuples — one per .cmt — and resolves all edges. Deterministic: defs and
    adjacency lists are sorted by (source, offset, uid). *)

val defs : t -> def list
val defs_in_unit : t -> string -> def list
val find : t -> string -> def option

val find_qual : t -> string -> def list
(** Defs whose ["Unit.qual"] name ends with the given dotted suffix. *)

val calls_of : t -> def -> call list
val exts_of : t -> def -> ext list

val reachable : t -> roots:def list -> def list
(** Every def reachable from [roots] (inclusive), sorted. *)

val path : t -> from:def -> dest:(def -> bool) -> ((def * Location.t) list * def) option
(** Shortest call chain from [from] to a def satisfying [dest]. The list
    pairs each intermediate caller with its call site; the returned def is
    the destination. [Some ([], from)] when [from] itself satisfies [dest]. *)

val trace : t -> from:def -> dest:(def -> bool) -> (Finding.step list * def) option
(** Like {!path} but rendered as finding trace steps ("A.f calls B.g"). *)

val compare_def : def -> def -> int

val dotted : string -> string
(** ["Ntcu_scale__Wire"] -> ["Ntcu_scale.Wire"]: dune's wrapped-unit alias. *)

val full_name : def -> string
(** Dotted unit name joined with the qualified binder, e.g.
    ["Ntcu_sim.Engine.cancel"]. *)
