(* T-rules: determinism taint (interprocedural D002/D003/D005).

   A nondeterminism source — unordered Hashtbl iteration, ambient
   wall-clock/Random reads, Domain.self, lossy float formatting — is only a
   local style hazard until its value can reach diffed output. This pass
   flows sources through the call graph to the output sinks: every def of an
   emitter unit (Report/trace/codec/repro, {!Classify.t.emitter}). A source
   inside a def reachable from an emitter def gets a T-finding carrying the
   emitter-to-source call chain as its trace.

   Neutralization: an [[@ntcu.allow]] region covering the source site for
   either the T-code or the corresponding D-code justifies the source — one
   visible annotation covers both the local and interprocedural form. This
   matters for D003 in particular: [Classify.clock_allowed] scopes the local
   rule out of harness/bench/test code, but a clock read there that flows
   into an emitter is still flagged (T003) until annotated. *)

type source = {
  s_code : string;  (* T-code *)
  s_dcode : string;  (* neutralizing D-counterpart *)
  s_loc : Location.t;
  s_what : string;
}

let ends_with ~suffix s =
  let n = String.length suffix in
  String.length s >= n && String.equal suffix (String.sub s (String.length s - n) n)

let t003_extra name = ends_with ~suffix:"Domain.self" name

let d005_sites (body : Typedtree.expression) =
  let acc = ref [] in
  let open Tast_iterator in
  let expr sub e =
    if Rules.d005_site e then acc := e.Typedtree.exp_loc :: !acc;
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  List.rev !acc

let sources_of_def g (d : Callgraph.def) =
  let from_exts =
    List.filter_map
      (fun (e : Callgraph.ext) ->
        if Rules.d002_targets e.ext_name then
          Some { s_code = "T002"; s_dcode = "D002"; s_loc = e.ext_site; s_what = e.ext_name }
        else if Rules.d003_target e.ext_name || t003_extra e.ext_name then
          Some { s_code = "T003"; s_dcode = "D003"; s_loc = e.ext_site; s_what = e.ext_name }
        else None)
      (Callgraph.exts_of g d)
  in
  let from_floats =
    List.map
      (fun loc ->
        { s_code = "T005"; s_dcode = "D005"; s_loc = loc; s_what = "lossy float formatting" })
      (d005_sites d.body)
  in
  from_exts @ from_floats

let neutralized ~regions (s : source) =
  let ofs = s.s_loc.Location.loc_start.Lexing.pos_cnum in
  List.exists
    (fun (r : Allow.region) ->
      ofs >= r.start_ofs && ofs <= r.end_ofs
      && (Allow.allows r s.s_code || Allow.allows r s.s_dcode))
    regions

let message (s : source) ~(sink : Callgraph.def) =
  let sink_name = Callgraph.full_name sink in
  match s.s_code with
  | "T002" ->
    Printf.sprintf
      "unordered %s feeds emitter %s: iteration order can leak into diffed output (interprocedural D002); sort the keys or annotate the site"
      s.s_what sink_name
  | "T003" ->
    Printf.sprintf
      "ambient nondeterminism %s reaches emitter %s (interprocedural D003); thread an Rng/clock or annotate the site"
      s.s_what sink_name
  | _ ->
    Printf.sprintf
      "lossy float formatting reaches emitter %s (interprocedural D005); use %%h or %%.17g so equal text means equal floats"
      sink_name

let check g ~allow_regions =
  let emitters =
    List.filter (fun (d : Callgraph.def) -> d.cls.Classify.emitter) (Callgraph.defs g)
  in
  if List.is_empty emitters then []
  else begin
    let reach = Callgraph.reachable g ~roots:emitters in
    List.concat_map
      (fun (d : Callgraph.def) ->
        let regions = allow_regions d.unit_name in
        let srcs =
          List.filter (fun s -> not (neutralized ~regions s)) (sources_of_def g d)
        in
        List.filter_map
          (fun s ->
            let dest (d' : Callgraph.def) = String.equal d'.uid d.uid in
            let rec first = function
              | [] -> None
              | e :: rest -> (
                match Callgraph.trace g ~from:e ~dest with
                | Some (steps, _) -> Some (e, steps)
                | None -> first rest)
            in
            match first emitters with
            | None -> None
            | Some (sink, steps) ->
              let steps =
                match steps with
                | [] ->
                  [
                    Finding.step ~file:d.cls.Classify.source ~loc:d.loc
                      (Printf.sprintf "source is inside emitter def %s"
                         (Callgraph.full_name d));
                  ]
                | _ :: _ -> steps
              in
              let trace =
                steps
                @ [
                    Finding.step ~file:d.cls.Classify.source ~loc:s.s_loc
                      (Printf.sprintf "%s here" s.s_what);
                  ]
              in
              Some
                (Finding.make ~trace ~code:s.s_code ~file:d.cls.Classify.source
                   ~loc:s.s_loc (message s ~sink)))
          srcs)
      reach
  end
