(** C-rules: domain escape — the interprocedural upgrade of D004.

    Rooted at the argument spans of every [Parallel.map] application, the
    call graph is searched for library state a pool-worker closure can
    touch:

    - {b C001} reachable toplevel mutable state ([ref], [Hashtbl.create],
      [Buffer.create] outside any function body) — concurrent mutation from
      worker domains.
    - {b C002} reachable owner-guarded handle ([Engine.t], [Distances.t]) —
      worker-domain use bypasses (or trips) the owner-domain guard.

    Findings are located at the submission site and trace through the
    closure's call chain to the offending definition. Suppress with
    [[@ntcu.allow "C001"]] on the submission when the sharing is provably
    read-only. *)

val check : Callgraph.t -> Finding.t list
