(* P-rules: protocol soundness over the call graph.

   P001 — dispatch totality. A wildcard arm in a handler's match over a wire
   message type silently drops every constructor it hides: the protocol
   keeps running and the bug surfaces as a slow neighbor-table quality
   degradation, not a crash. Scope: defs named [handle*]/[dispatch*]/[on_*]
   in dispatch units ({!Classify.t.dispatch}), matches whose scrutinee type
   is a message variant ([...Message.t] or a [msg] type).

   P002 — codec parity, two forms, both scoped to codec units
   ({!Classify.t.codec}):
   (a) constructor parity: a message constructor matched by the encoder but
   never built by the decoder (or vice versa) cannot round-trip;
   (b) frame-kind parity: wire-format units dispatch on integer [kind_*]
   constants rather than constructors — a kind referenced on the encode
   side but unreachable from every [decode*] def means the decoder handles
   such frames implicitly or not at all.

   P003 — timer hygiene. A unit that arms cancellable timers
   ([Engine.schedule_cancellable]) but has no reachable path to
   [Engine.cancel] leaks its timers: they fire after the owner's teardown.

   All findings carry traces into the call graph. *)

let ends_with ~suffix s =
  let n = String.length suffix in
  String.length s >= n && String.equal suffix (String.sub s (String.length s - n) n)

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.equal prefix (String.sub s 0 n)

let string_of_type ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

let iter_exprs body f =
  let open Tast_iterator in
  let expr sub e =
    f e;
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr } in
  it.expr it body

(* ---- P001: wildcard dispatch arms --------------------------------------- *)

let dispatch_def_name n =
  starts_with ~prefix:"handle" n || starts_with ~prefix:"dispatch" n
  || starts_with ~prefix:"on_" n

let message_type ty =
  let s = Callgraph.dotted (string_of_type ty) in
  if
    ends_with ~suffix:"Message.t" s
    || ends_with ~suffix:".msg" s
    || String.equal s "msg"
  then Some s
  else None

type arm = Cstr of Types.constructor_description | Wild of Location.t | Other

let rec arms_of : type k. k Typedtree.general_pattern -> arm list =
 fun p ->
  match p.pat_desc with
  | Tpat_value v -> arms_of (v :> Typedtree.pattern)
  | Tpat_or (a, b, _) -> arms_of a @ arms_of b
  | Tpat_alias (p', _, _) -> arms_of p'
  | Tpat_construct (_, cd, _, _) -> [ Cstr cd ]
  | Tpat_any -> [ Wild p.pat_loc ]
  | Tpat_var (_, _) -> [ Wild p.pat_loc ]
  | _ -> [ Other ]

let p001 g =
  List.concat_map
    (fun (d : Callgraph.def) ->
      if not (d.cls.Classify.dispatch && dispatch_def_name d.name) then []
      else begin
        let acc = ref [] in
        iter_exprs d.body (fun e ->
            match e.Typedtree.exp_desc with
            | Texp_match (scrut, cases, _) -> (
              match message_type scrut.exp_type with
              | None -> ()
              | Some tyname ->
                let arms =
                  List.concat_map (fun c -> arms_of c.Typedtree.c_lhs) cases
                in
                let cstrs =
                  List.filter_map (function Cstr cd -> Some cd | _ -> None) arms
                in
                let wilds =
                  List.filter_map (function Wild l -> Some l | _ -> None) arms
                in
                (match (cstrs, wilds) with
                | cd0 :: _, wloc :: _ ->
                  let total = cd0.cstr_consts + cd0.cstr_nonconsts in
                  let covered =
                    List.sort_uniq String.compare
                      (List.map (fun cd -> cd.Types.cstr_name) cstrs)
                  in
                  if List.length covered < total then
                    let trace =
                      [
                        Finding.step ~file:d.cls.Classify.source ~loc:d.loc
                          (Printf.sprintf "dispatch implemented by %s"
                             (Callgraph.full_name d));
                        Finding.step ~file:d.cls.Classify.source ~loc:scrut.exp_loc
                          (Printf.sprintf "match over %s here" tyname);
                      ]
                    in
                    acc :=
                      Finding.make ~trace ~code:"P001" ~file:d.cls.Classify.source
                        ~loc:wloc
                        (Printf.sprintf
                           "wildcard arm in %s covers %d of %d constructors of %s; each message kind needs an explicit dispatch arm (or [@ntcu.allow \"P001\"] with a reason)"
                           d.qual (List.length covered) total tyname)
                      :: !acc
                | _ -> ()))
            | _ -> ());
        List.rev !acc
      end)
    (Callgraph.defs g)

(* ---- P002: encoder/decoder parity --------------------------------------- *)

type occurrence = { o_cd : Types.constructor_description; o_loc : Location.t; o_def : Callgraph.def }

let message_cstr (cd : Types.constructor_description) =
  match Types.get_desc cd.cstr_res with
  | Tconstr (p, _, _) ->
    let s = Callgraph.dotted (Path.name p) in
    ends_with ~suffix:"Message.t" s || ends_with ~suffix:".msg" s || String.equal s "msg"
  | _ -> false

let constructor_occurrences (d : Callgraph.def) =
  let pats = ref [] and exprs = ref [] in
  let open Tast_iterator in
  let record_pat : type k. k Typedtree.general_pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Tpat_construct (lid, cd, _, _) when message_cstr cd ->
      pats := { o_cd = cd; o_loc = lid.loc; o_def = d } :: !pats
    | _ -> ()
  in
  let pat sub p =
    record_pat p;
    default_iterator.pat sub p
  in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_construct (lid, cd, _) when message_cstr cd ->
      exprs := { o_cd = cd; o_loc = lid.loc; o_def = d } :: !exprs
    | _ -> ());
    default_iterator.expr sub e
  in
  let it = { default_iterator with pat; expr } in
  it.expr it d.body;
  (List.rev !pats, List.rev !exprs)

let p002_constructors g =
  let units =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (d : Callgraph.def) ->
           if d.cls.Classify.codec then Some d.unit_name else None)
         (Callgraph.defs g))
  in
  List.concat_map
    (fun u ->
      let defs = Callgraph.defs_in_unit g u in
      let pats, exprs =
        List.fold_left
          (fun (ps, es) d ->
            let p, e = constructor_occurrences d in
            (ps @ p, es @ e))
          ([], []) defs
      in
      if List.is_empty pats || List.is_empty exprs then []
      else begin
        let names occs =
          List.sort_uniq String.compare (List.map (fun o -> o.o_cd.Types.cstr_name) occs)
        in
        let pat_names = names pats and expr_names = names exprs in
        let report side_names other_names occs present_side absent_verb =
          List.concat_map
            (fun name ->
              if List.exists (String.equal name) other_names then []
              else
                match
                  List.find_opt (fun o -> String.equal o.o_cd.Types.cstr_name name) occs
                with
                | None -> []
                | Some o ->
                  let trace =
                    [
                      Finding.step ~file:o.o_def.cls.Classify.source ~loc:o.o_def.loc
                        (Printf.sprintf "in %s" (Callgraph.full_name o.o_def));
                      Finding.step ~file:o.o_def.cls.Classify.source ~loc:o.o_loc
                        (Printf.sprintf "constructor %s %s here" name present_side);
                    ]
                  in
                  [
                    Finding.make ~trace ~code:"P002" ~file:o.o_def.cls.Classify.source
                      ~loc:o.o_loc
                      (Printf.sprintf
                         "constructor %s is %s by the codec but never %s: it cannot round-trip"
                         name present_side absent_verb);
                  ])
            side_names
        in
        report pat_names expr_names pats "matched (encoded)" "constructed by the decoder"
        @ report expr_names pat_names exprs "constructed (decoded)" "matched by the encoder"
      end)
    units

let p002_kinds g =
  let units =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (d : Callgraph.def) ->
           if d.cls.Classify.codec then Some d.unit_name else None)
         (Callgraph.defs g))
  in
  List.concat_map
    (fun u ->
      let defs = Callgraph.defs_in_unit g u in
      let is_int_const (d : Callgraph.def) =
        match Types.get_desc d.body.Typedtree.exp_type with
        | Tconstr (p, _, _) -> Path.same p Predef.path_int
        | _ -> false
      in
      let kind_defs =
        List.filter
          (fun (d : Callgraph.def) ->
            starts_with ~prefix:"kind_" d.name
            && (not (ends_with ~suffix:"_count" d.name))
            && is_int_const d)
          defs
      in
      if List.is_empty kind_defs then []
      else begin
        let side prefix = List.filter (fun (d : Callgraph.def) -> starts_with ~prefix d.name) defs in
        let enc = side "encode" and dec = side "decode" in
        if List.is_empty enc || List.is_empty dec then []
        else begin
          let reach_uids roots =
            List.fold_left
              (fun s (d : Callgraph.def) -> d.uid :: s)
              []
              (Callgraph.reachable g ~roots)
          in
          let enc_reach = reach_uids enc and dec_reach = reach_uids dec in
          let mem uid l = List.exists (String.equal uid) l in
          let missing roots_present present_name absent_name present_reach absent_reach =
            List.concat_map
              (fun (k : Callgraph.def) ->
                if mem k.uid present_reach && not (mem k.uid absent_reach) then begin
                  let dest (d' : Callgraph.def) = String.equal d'.uid k.uid in
                  let hops =
                    let rec first = function
                      | [] -> []
                      | r :: rest -> (
                        match Callgraph.trace g ~from:r ~dest with
                        | Some (steps, _) -> steps
                        | None -> first rest)
                    in
                    first roots_present
                  in
                  let trace =
                    hops
                    @ [
                        Finding.step ~file:k.cls.Classify.source ~loc:k.loc
                          (Printf.sprintf "frame kind %s defined here" k.name);
                      ]
                  in
                  [
                    Finding.make ~trace ~code:"P002" ~file:k.cls.Classify.source ~loc:k.loc
                      (Printf.sprintf
                         "frame kind %s is referenced by the %s but unreachable from every %s def: such frames are handled implicitly or not at all"
                         k.name present_name absent_name);
                  ]
                end
                else [])
              kind_defs
          in
          missing enc "encoder" "decode*" enc_reach dec_reach
          @ missing dec "decoder" "encode*" dec_reach enc_reach
        end
      end)
    units

(* ---- P003: timer arm without reachable cancel --------------------------- *)

let arm_suffix = "Engine.schedule_cancellable"
let cancel_suffix = "Engine.cancel"

let refs_matching g (d : Callgraph.def) ~suffix =
  let from_exts =
    List.filter_map
      (fun (e : Callgraph.ext) ->
        if ends_with ~suffix (Callgraph.dotted e.ext_name) then Some e.ext_site else None)
      (Callgraph.exts_of g d)
  in
  let from_calls =
    List.filter_map
      (fun (c : Callgraph.call) ->
        match Callgraph.find g c.target with
        | Some t when ends_with ~suffix (Callgraph.dotted (Callgraph.full_name t)) ->
          Some c.site
        | _ -> None)
      (Callgraph.calls_of g d)
  in
  from_exts @ from_calls

let p003 g =
  let by_unit = Hashtbl.create 16 in
  List.iter
    (fun (d : Callgraph.def) ->
      let arms = refs_matching g d ~suffix:arm_suffix in
      if not (List.is_empty arms) then
        Hashtbl.replace by_unit d.unit_name
          ((d, arms)
          :: (match Hashtbl.find_opt by_unit d.unit_name with Some l -> l | None -> [])))
    (Callgraph.defs g);
  (* key enumeration only; the unit list is sorted before use *)
  let units = (Hashtbl.fold [@ntcu.allow "D002"]) (fun u _ acc -> u :: acc) by_unit [] in
  List.concat_map
    (fun u ->
      let defs = Callgraph.defs_in_unit g u in
      let reach = Callgraph.reachable g ~roots:defs in
      let cancel_reachable =
        List.exists
          (fun d -> not (List.is_empty (refs_matching g d ~suffix:cancel_suffix)))
          reach
      in
      if cancel_reachable then []
      else
        List.concat_map
          (fun ((d : Callgraph.def), arms) ->
            List.map
              (fun site ->
                let trace =
                  [
                    Finding.step ~file:d.cls.Classify.source ~loc:d.loc
                      (Printf.sprintf "def %s arms a cancellable timer"
                         (Callgraph.full_name d));
                    Finding.step ~file:d.cls.Classify.source ~loc:site "armed here";
                  ]
                in
                Finding.make ~trace ~code:"P003" ~file:d.cls.Classify.source ~loc:site
                  (Printf.sprintf
                     "timer armed via %s but no Engine.cancel is reachable from unit %s: leaked timers fire after their owner's teardown"
                     arm_suffix (Callgraph.dotted u)))
              arms)
          (match Hashtbl.find_opt by_unit u with Some l -> l | None -> []))
    (List.sort String.compare units)

let check g = p001 g @ p002_constructors g @ p002_kinds g @ p003 g
