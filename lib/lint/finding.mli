(** A single lint finding: a rule code anchored at a source location, plus an
    optional interprocedural trace (schema v2).

    Findings are value-comparable and totally ordered so that reports are
    deterministic regardless of the order in which rules or files run. The
    trace is evidence, not identity: {!compare} ignores it, so baseline
    entries keyed on [code file:line] survive trace changes. *)

type step = {
  file : string;
  line : int;
  col : int;
  note : string;  (** What this hop shows, e.g. ["Report.pp_run calls Stats.dump"]. *)
}

type t = {
  code : string;  (** Stable rule code, e.g. ["D001"] or ["T002"]. *)
  file : string;  (** Repo-relative source path, e.g. ["lib/core/node.ml"]. *)
  line : int;  (** 1-based line. *)
  col : int;  (** 0-based column of the offending expression. *)
  ofs : int;  (** Absolute character offset; used for [@ntcu.allow] scoping. *)
  message : string;
  trace : step list;
      (** Interprocedural evidence, source-to-sink or def-to-site, in hop
          order. Empty for the intraprocedural D-rules. *)
}

val step : file:string -> loc:Location.t -> string -> step
(** A trace step from a location's start position. *)

val make : ?trace:step list -> code:string -> file:string -> loc:Location.t -> string -> t
(** Build a finding from the location's start position. *)

val compare : t -> t -> int
(** Order by file, line, column, code, message. No polymorphic compare; the
    trace does not participate. *)

val equal : t -> t -> bool

val pp : t Fmt.t
(** Human form: [file:line:col: CODE message], one indented [via] line per
    trace step. *)

val to_json : t -> string
(** One finding as a JSON object (string fields escaped); a non-empty trace
    is emitted as a ["trace"] array of step objects. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal. *)
