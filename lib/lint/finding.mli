(** A single lint finding: a rule code anchored at a source location.

    Findings are value-comparable and totally ordered so that reports are
    deterministic regardless of the order in which rules or files run. *)

type t = {
  code : string;  (** Stable rule code, e.g. ["D001"]. *)
  file : string;  (** Repo-relative source path, e.g. ["lib/core/node.ml"]. *)
  line : int;  (** 1-based line. *)
  col : int;  (** 0-based column of the offending expression. *)
  ofs : int;  (** Absolute character offset; used for [@ntcu.allow] scoping. *)
  message : string;
}

val make : code:string -> file:string -> loc:Location.t -> string -> t
(** Build a finding from the location's start position. *)

val compare : t -> t -> int
(** Order by file, line, column, code, message. No polymorphic compare. *)

val equal : t -> t -> bool

val pp : t Fmt.t
(** Human form: [file:line:col: CODE message]. *)

val to_json : t -> string
(** One finding as a JSON object (string fields escaped). *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal. *)
