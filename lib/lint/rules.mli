(** The determinism & domain-safety rule set.

    Each rule has a stable code, a one-line title, and a checker over the
    typed tree of one compilation unit. Codes are append-only: a code is
    never reused for a different hazard, so baselines and [[@ntcu.allow]]
    annotations stay meaningful across versions.

    - {b D001} polymorphic [=]/[<>]/[compare]/[Hashtbl.hash] instantiated at
      an abstract protocol type (anything outside ints, strings, floats, and
      containers thereof) — polymorphic compare on abstract representations
      is representation-dependent and breaks when the representation changes.
    - {b D002} [Hashtbl.iter]/[Hashtbl.fold] (including [Id.Tbl] instances):
      unordered iteration whose order leaks into output is only accidentally
      stable. Sort the keys, or annotate sites that are provably
      order-insensitive.
    - {b D003} wall clock ([Sys.time], [Unix.gettimeofday], …) or the global
      [Random] state in protocol code; the harness/bench allowlist is
      expressed through {!Classify.t.clock_allowed}.
    - {b D004} toplevel mutable state ([ref], [Hashtbl.create],
      [Buffer.create]) in library code shared across the [Parallel] domain
      pool without an owner-domain guard.
    - {b D005} lossy float formatting ([%f], [string_of_float]) in emitter
      modules whose output must round-trip ({!Classify.t.emitter}). *)

type rule = {
  code : string;
  title : string;
  check : Classify.t -> Typedtree.structure -> Finding.t list;
}

val all : rule list
(** The registry, in code order. *)

val run_all : Classify.t -> Typedtree.structure -> Finding.t list
(** Run every rule, apply [[@ntcu.allow]] regions, dedupe and sort. *)

(** {2 Shared site predicates}

    The interprocedural rule families (Taint, Escape, Proto) reuse the exact
    site definitions of their intraprocedural counterparts, so D002/T002,
    D003/T003 and D005/T005 agree on what a nondeterminism source is. *)

val d002_targets : string -> bool
(** Dotted path name is an unordered [Hashtbl.iter]/[fold] (incl. [Tbl]). *)

val d003_target : string -> bool
(** Dotted path name is a wall-clock read or the global [Random] state. *)

val d004_creators : string -> bool
(** Dotted path name creates mutable state ([ref], [Hashtbl.create], ...). *)

val d005_site : Typedtree.expression -> bool
(** Expression is a lossy float-formatting site ([string_of_float], or the
    elaborated [%f]/[%F] format constructor). *)

val dedupe_sorted : Finding.t list -> Finding.t list
(** Sort by {!Finding.compare} and drop duplicates. *)
