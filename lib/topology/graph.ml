type t = {
  adjacency : (int * float) list array; (* adjacency.(u) = [(v, w); ...] *)
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  { adjacency = Array.make n []; edges = 0 }

let n_vertices t = Array.length t.adjacency

let n_edges t = t.edges

let add_edge t u v w =
  let n = n_vertices t in
  if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.add_edge: bad endpoint";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w <= 0. then invalid_arg "Graph.add_edge: non-positive weight";
  t.adjacency.(u) <- (v, w) :: t.adjacency.(u);
  t.adjacency.(v) <- (u, w) :: t.adjacency.(v);
  t.edges <- t.edges + 1

let neighbors t u = t.adjacency.(u)

let degree t u = List.length t.adjacency.(u)

let is_connected t =
  let n = n_vertices t in
  if n = 0 then false
  else begin
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let visited = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        List.iter
          (fun (v, _) ->
            if not seen.(v) then begin
              seen.(v) <- true;
              incr visited;
              stack := v :: !stack
            end)
          t.adjacency.(u)
    done;
    !visited = n
  end

let dijkstra t src =
  let n = n_vertices t in
  if src < 0 || src >= n then invalid_arg "Graph.dijkstra: bad source";
  let dist = Array.make n infinity in
  let queue = Ntcu_std.Pqueue.create () in
  dist.(src) <- 0.;
  Ntcu_std.Pqueue.push queue 0. src;
  let continue = ref true in
  while !continue do
    match Ntcu_std.Pqueue.pop queue with
    | None -> continue := false
    | Some (du, u) ->
      if du <= dist.(u) then
        List.iter
          (fun (v, w) ->
            let alt = du +. w in
            if alt < dist.(v) then begin
              dist.(v) <- alt;
              Ntcu_std.Pqueue.push queue alt v
            end)
          t.adjacency.(u)
  done;
  dist
