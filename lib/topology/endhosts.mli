(** End-hosts attached to a router topology.

    Following the paper's setup, end-hosts (the peer-to-peer nodes) are
    attached to randomly chosen stub routers with a short last-mile link. The
    host-to-host distance — last mile + router shortest path + last mile — is
    the message latency used by the simulator. *)

type t

val attach : seed:int -> Transit_stub.t -> n:int -> t
(** Attach [n] end-hosts to uniformly random stub routers, deterministic in
    [seed]. *)

val count : t -> int

val distances : t -> Distances.t
(** The underlying router-distance oracle (clustered, lazily computed); use
    {!Distances.stats} for cache diagnostics. *)

val router_of : t -> int -> int
(** Attachment router of a host index. *)

val distance : t -> int -> int -> float
(** Host-to-host one-way latency (milliseconds). [0.] for a host and itself. *)

val latency : ?jitter:float -> ?seed:int -> t -> Ntcu_sim.Latency.t
(** The latency model fed to the simulator. *)
