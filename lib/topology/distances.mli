(** Lazy shortest-path distances with bounded per-source caching.

    Replaces the eager Dijkstra-per-source cache (one [n]-float array per
    distinct source, kept forever) with:

    - {b Early termination}: a query [distance t u v] runs Dijkstra from
      [min u v] only until [max u v] is settled.
    - {b Resumable frontiers}: the partial heap and tentative distances are
      kept per source, so later queries from the same source continue where
      the previous one stopped; total work per source never exceeds one full
      Dijkstra run.
    - {b LRU cap}: at most [cache_sources] per-source states are retained;
      the least-recently-queried source is evicted when the cap is hit.
    - {b Clustered mode} ({!create_clustered}): for transit-stub topologies,
      per-source state is restricted to the source's own cluster plus the
      transit core — O(cluster + core) instead of O(n) — with per-target-
      cluster tails materialized on demand.

    All modes return floats {e bit-identical} to a full-graph
    [Graph.dijkstra]: Dijkstra's computed distance is the minimum over paths
    of the left-folded [+.] sum, early termination only stops after that
    minimum is final, and the clustered decomposition removes only path
    candidates that are pointwise dominated (float [+.] is monotone), so the
    minimum is unchanged. Simulation traces therefore cannot shift by even
    one ulp.

    A [t] is single-domain mutable state (frontiers, LRU stamps, counters):
    {!distance} raises [Invalid_argument] when called from a domain other
    than the one that created the [t]. Parallel experiment harnesses
    ({!Ntcu_std.Parallel}) must construct a per-run [t]; the read-only
    diagnostics ({!stats}, {!hit_rate}, {!cached_sources}) stay callable
    from anywhere. *)

type t

val create : ?cache_sources:int -> Graph.t -> t
(** Lazy resumable Dijkstra over an arbitrary graph. [cache_sources]
    (default 1024) bounds the number of retained per-source frontiers.
    @raise Invalid_argument if [cache_sources < 1]. *)

val create_clustered : ?cache_sources:int -> Graph.t -> cluster:int array -> t
(** [create_clustered graph ~cluster] uses the transit-stub decomposition.
    [cluster.(v)] is [v]'s stub-cluster id, or [-1] for transit (core)
    routers. Requires — and verifies — that no edge joins two distinct
    clusters and that each cluster is attached to the core by exactly one
    edge; otherwise the decomposition would be wrong and
    [Invalid_argument] is raised. *)

val distance : t -> int -> int -> float
(** Shortest-path distance between two routers; [infinity] if disconnected.
    Symmetry is exploited by always working from the smaller endpoint.
    @raise Invalid_argument when called from a domain other than the
    creator's (the cache is single-domain mutable state). *)

val cached_sources : t -> int
(** Number of per-source states currently retained (memory diagnostics). *)

type stats = {
  queries : int;  (** [distance] calls with [u <> v]. *)
  settled_hits : int;
      (** Queries answered from already-computed state, with no new Dijkstra
          work beyond a lookup. *)
  state_hits : int;  (** Queries that found per-source state cached. *)
  state_misses : int;  (** Queries that had to build per-source state. *)
  evictions : int;  (** Sources dropped by the LRU cap. *)
  pops : int;  (** Total heap pops across all Dijkstra work (cost proxy). *)
}

val stats : t -> stats

val hit_rate : t -> float
(** [settled_hits / queries]; [0.] before any query. *)
