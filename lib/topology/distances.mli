(** Shortest-path distances with per-source caching.

    Each distinct source triggers one Dijkstra run whose result is cached;
    symmetry of undirected graphs is exploited by always running from the
    smaller endpoint. *)

type t

val create : Graph.t -> t

val distance : t -> int -> int -> float
(** Shortest-path distance between two routers; [infinity] if disconnected. *)

val cached_sources : t -> int
(** Number of Dijkstra results currently cached (memory diagnostics). *)
