module Rng = Ntcu_std.Rng

type t = {
  distances : Distances.t;
  attach_router : int array;
  last_mile : float array;
}

let attach ~seed topo ~n =
  if n < 0 then invalid_arg "Endhosts.attach: negative host count";
  let rng = Rng.create seed in
  let stubs = Transit_stub.stub_routers topo in
  if Array.length stubs = 0 && n > 0 then
    invalid_arg "Endhosts.attach: topology has no stub routers";
  let attach_router = Array.init n (fun _ -> Rng.pick rng stubs) in
  let last_mile = Array.init n (fun _ -> 0.5 +. Rng.float rng 1.5) in
  { distances = Transit_stub.distances topo; attach_router; last_mile }

let count t = Array.length t.attach_router

let distances t = t.distances

let router_of t host = t.attach_router.(host)

let distance t a b =
  if a = b then 0.
  else
    t.last_mile.(a)
    +. Distances.distance t.distances t.attach_router.(a) t.attach_router.(b)
    +. t.last_mile.(b)

let latency ?(jitter = 0.05) ?(seed = 1) t =
  Ntcu_sim.Latency.of_distance ~jitter ~seed (fun ~src ~dst -> distance t src dst)
