type t = { graph : Graph.t; cache : (int, float array) Hashtbl.t }

let create graph = { graph; cache = Hashtbl.create 64 }

let from_source t src =
  match Hashtbl.find_opt t.cache src with
  | Some dist -> dist
  | None ->
    let dist = Graph.dijkstra t.graph src in
    Hashtbl.add t.cache src dist;
    dist

let distance t u v =
  if u = v then 0.
  else begin
    let src = min u v and dst = max u v in
    (from_source t src).(dst)
  end

let cached_sources t = Hashtbl.length t.cache
