module Pq = Ntcu_std.Pqueue

type stats = {
  queries : int;
  settled_hits : int;
  state_hits : int;
  state_misses : int;
  evictions : int;
  pops : int;
}

(* ---- plain mode: per-source resumable Dijkstra frontier ----

   Distances of settled vertices equal the eager [Graph.dijkstra] values
   exactly (same relaxation arithmetic, merely stopped early), so the lazy
   computation cannot perturb a simulation by even one ulp. *)
type frontier = {
  dist : float array; (* tentative, final once settled *)
  settled : Bytes.t;
  queue : int Pq.t;
  mutable exhausted : bool;
}

(* ---- clustered mode ----

   Transit-stub geometry, precomputed once: every stub cluster hangs off the
   transit core by exactly one gateway edge and clusters never touch each
   other, so a shortest path is [within-source-cluster] -> [core] ->
   [one gateway edge] -> [within-target-cluster]. Per-source state is then a
   Dijkstra over (own cluster + core) — a ~100-vertex graph instead of the
   full router graph — plus per-target-cluster "tails" materialized on
   demand by continuing the settled core distance through the target's
   gateway edge. All arrays are indexed by compact per-cluster positions, so
   a query is array reads, not hashtable probes. *)
type cgeo = {
  cluster : int array; (* cluster id per vertex; -1 = core (transit) *)
  core : int array; (* core slot -> vertex *)
  core_slot : int array; (* vertex -> core slot, -1 for stub vertices *)
  local : int array; (* vertex -> index within its cluster, -1 for core *)
  members : int array array; (* cluster -> vertices *)
  gw_core_slot : int array; (* cluster -> core slot of its transit router *)
  gw_stub_local : int array; (* cluster -> local index of its gateway vertex *)
  gw_weight : float array; (* cluster -> gateway edge weight *)
  core_adj : (int * float) list array; (* core slot -> core-slot edges *)
  cadj : (int * float) list array array; (* cluster -> local -> intra edges *)
}

(* Per-source distances, all exact full-graph values:
   [base.(k)] for core slot [k]; [base.(ncore + li)] for local index [li] in
   the source's own cluster; [tails.(c).(li)] for cluster [c] elsewhere. *)
type cstate = {
  sc : int; (* source's cluster; -1 if the source is a core vertex *)
  base : float array;
  tails : float array option array;
}

type mode =
  | Plain of (int, frontier) Hashtbl.t
  | Clustered of cgeo * (int, cstate) Hashtbl.t

type t = {
  graph : Graph.t;
  mode : mode;
  cache_sources : int;
  owner : Domain.id; (* creating domain; queries from any other raise *)
  last_use : (int, int) Hashtbl.t; (* source -> LRU stamp *)
  mutable tick : int;
  mutable queries : int;
  mutable settled_hits : int;
  mutable state_hits : int;
  mutable state_misses : int;
  mutable evictions : int;
  mutable pops : int;
}

let make_t graph mode cache_sources =
  if cache_sources < 1 then invalid_arg "Distances: cache_sources must be >= 1";
  {
    graph;
    mode;
    cache_sources;
    owner = Domain.self ();
    last_use = Hashtbl.create 64;
    tick = 0;
    queries = 0;
    settled_hits = 0;
    state_hits = 0;
    state_misses = 0;
    evictions = 0;
    pops = 0;
  }

let create ?(cache_sources = 1024) graph =
  make_t graph (Plain (Hashtbl.create 64)) cache_sources

(* Verify the transit-stub invariant — the decomposition is silently wrong
   without it — and precompute the cluster geometry in the same pass. *)
let geometry graph cluster =
  let n = Graph.n_vertices graph in
  if Array.length cluster <> n then
    invalid_arg "Distances.create_clustered: cluster array size mismatch";
  let n_clusters = Array.fold_left (fun acc c -> max acc (c + 1)) 0 cluster in
  let core = ref [] and ncore = ref 0 in
  let core_slot = Array.make n (-1) in
  let local = Array.make n (-1) in
  let members = Array.make n_clusters [] in
  let csize = Array.make n_clusters 0 in
  for v = n - 1 downto 0 do
    let c = cluster.(v) in
    if c < 0 then begin
      core := v :: !core;
      incr ncore
    end
    else members.(c) <- v :: members.(c)
  done;
  let core = Array.of_list !core in
  Array.iteri (fun k v -> core_slot.(v) <- k) core;
  let members =
    Array.mapi
      (fun c vs ->
        let a = Array.of_list vs in
        Array.iteri
          (fun li v ->
            local.(v) <- li;
            csize.(c) <- csize.(c) + 1)
          a;
        a)
      members
  in
  let gw_core_slot = Array.make n_clusters (-1) in
  let gw_stub_local = Array.make n_clusters (-1) in
  let gw_weight = Array.make n_clusters 0. in
  let core_adj = Array.make !ncore [] in
  let cadj = Array.map (fun m -> Array.make (Array.length m) []) members in
  for u = 0 to n - 1 do
    let cu = cluster.(u) in
    List.iter
      (fun (v, w) ->
        let cv = cluster.(v) in
        if cu >= 0 && cv >= 0 && cu <> cv then
          invalid_arg "Distances.create_clustered: edge between distinct clusters";
        if cu < 0 && cv < 0 then
          core_adj.(core_slot.(u)) <- (core_slot.(v), w) :: core_adj.(core_slot.(u));
        if cu >= 0 && cv >= 0 then
          cadj.(cu).(local.(u)) <- (local.(v), w) :: cadj.(cu).(local.(u));
        if cu >= 0 && cv < 0 then begin
          (* Gateway edge, seen once from its stub endpoint. *)
          if gw_stub_local.(cu) >= 0 then
            invalid_arg
              (Printf.sprintf
                 "Distances.create_clustered: cluster %d has several core links (need 1)"
                 cu);
          gw_core_slot.(cu) <- core_slot.(v);
          gw_stub_local.(cu) <- local.(u);
          gw_weight.(cu) <- w
        end)
      (Graph.neighbors graph u)
  done;
  Array.iteri
    (fun c gw ->
      if gw < 0 && Array.length members.(c) > 0 then
        invalid_arg
          (Printf.sprintf "Distances.create_clustered: cluster %d has no core link" c))
    gw_stub_local;
  {
    cluster;
    core;
    core_slot;
    local;
    members;
    gw_core_slot;
    gw_stub_local;
    gw_weight;
    core_adj;
    cadj;
  }

let create_clustered ?(cache_sources = 1024) graph ~cluster =
  make_t graph (Clustered (geometry graph cluster, Hashtbl.create 64)) cache_sources

(* ---- LRU bookkeeping (batched eviction amortizes the stamp scan) ---- *)

let touch t src =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.last_use src t.tick

let cached_sources t =
  match t.mode with
  | Plain states -> Hashtbl.length states
  | Clustered (_, states) -> Hashtbl.length states

let drop_source t src =
  (match t.mode with
  | Plain states -> Hashtbl.remove states src
  | Clustered (_, states) -> Hashtbl.remove states src);
  Hashtbl.remove t.last_use src

let ensure_capacity t =
  if cached_sources t >= t.cache_sources then begin
    let entries = Array.make (Hashtbl.length t.last_use) (0, 0) in
    let i = ref 0 in
    (* Iteration order is erased by the full sort on (stamp, src) below. *)
    (Hashtbl.iter [@ntcu.allow "D002"])
      (fun src stamp ->
        entries.(!i) <- (stamp, src);
        incr i)
      t.last_use;
    Array.sort compare entries;
    let k = max 1 (t.cache_sources / 4) in
    for j = 0 to min k (Array.length entries) - 1 do
      drop_source t (snd entries.(j));
      t.evictions <- t.evictions + 1
    done
  end

(* ---- plain mode ---- *)

let new_frontier t src =
  let n = Graph.n_vertices t.graph in
  let dist = Array.make n infinity in
  let queue = Pq.create () in
  dist.(src) <- 0.;
  Pq.push queue 0. src;
  { dist; settled = Bytes.make n '\000'; queue; exhausted = false }

let is_settled f v = Bytes.get f.settled v <> '\000'

(* Pop until [dst] is settled (its tentative distance is final) or the
   frontier is exhausted (remaining vertices unreachable). Resumable: the
   frontier keeps its heap across calls, so over the life of one source the
   total work never exceeds a single full Dijkstra run. *)
let advance_until t f dst =
  let continue = ref (not (is_settled f dst)) in
  while !continue do
    match Pq.pop f.queue with
    | None ->
      f.exhausted <- true;
      continue := false
    | Some (du, u) ->
      t.pops <- t.pops + 1;
      if not (is_settled f u) then begin
        Bytes.set f.settled u '\001';
        List.iter
          (fun (v, w) ->
            let alt = du +. w in
            if alt < f.dist.(v) then begin
              f.dist.(v) <- alt;
              Pq.push f.queue alt v
            end)
          (Graph.neighbors t.graph u);
        if u = dst then continue := false
      end
  done

let plain_distance t states src dst =
  let f =
    match Hashtbl.find_opt states src with
    | Some f ->
      t.state_hits <- t.state_hits + 1;
      f
    | None ->
      t.state_misses <- t.state_misses + 1;
      ensure_capacity t;
      let f = new_frontier t src in
      Hashtbl.add states src f;
      f
  in
  touch t src;
  if is_settled f dst || f.exhausted then t.settled_hits <- t.settled_hits + 1
  else advance_until t f dst;
  if is_settled f dst then f.dist.(dst) else infinity

(* ---- clustered mode ---- *)

(* Dijkstra over (own cluster + core) in mixed indexing: slots [0, ncore)
   are the core, [ncore, ncore + |cluster|) the source's cluster. Exact for
   every vertex in scope: a path detouring through a foreign cluster enters
   and leaves it by the same single gateway edge, so it is dominated
   (float [+.] of positive weights is monotone) and dropping it never
   changes the min. *)
let build_base t g src =
  let ncore = Array.length g.core in
  let sc = g.cluster.(src) in
  let csize = if sc < 0 then 0 else Array.length g.members.(sc) in
  let dist = Array.make (ncore + csize) infinity in
  let queue = Pq.create () in
  let start = if sc < 0 then g.core_slot.(src) else ncore + g.local.(src) in
  dist.(start) <- 0.;
  Pq.push queue 0. start;
  let relax du v w =
    let alt = du +. w in
    if alt < dist.(v) then begin
      dist.(v) <- alt;
      Pq.push queue alt v
    end
  in
  let continue = ref true in
  while !continue do
    match Pq.pop queue with
    | None -> continue := false
    | Some (du, u) ->
      t.pops <- t.pops + 1;
      if du <= dist.(u) then
        if u < ncore then begin
          List.iter (fun (v, w) -> relax du v w) g.core_adj.(u);
          if sc >= 0 && u = g.gw_core_slot.(sc) then
            relax du (ncore + g.gw_stub_local.(sc)) g.gw_weight.(sc)
        end
        else begin
          let li = u - ncore in
          List.iter (fun (lv, w) -> relax du (ncore + lv) w) g.cadj.(sc).(li);
          if li = g.gw_stub_local.(sc) then relax du g.gw_core_slot.(sc) g.gw_weight.(sc)
        end
  done;
  { sc; base = dist; tails = Array.make (Array.length g.members) None }

(* Continue the settled core distances into target cluster [tc]: a shortest
   path enters [tc] only through its single gateway edge, so seeding the
   gateway vertex with [base(transit router) +. gateway weight] and running
   Dijkstra within the cluster reproduces the full-graph folds exactly. *)
let build_tail t g base tc =
  let csize = Array.length g.members.(tc) in
  let dist = Array.make csize infinity in
  let d0 = base.(g.gw_core_slot.(tc)) +. g.gw_weight.(tc) in
  if d0 < infinity then begin
    let queue = Pq.create () in
    dist.(g.gw_stub_local.(tc)) <- d0;
    Pq.push queue d0 g.gw_stub_local.(tc);
    let adj = g.cadj.(tc) in
    let continue = ref true in
    while !continue do
      match Pq.pop queue with
      | None -> continue := false
      | Some (du, u) ->
        t.pops <- t.pops + 1;
        if du <= dist.(u) then
          List.iter
            (fun (v, w) ->
              let alt = du +. w in
              if alt < dist.(v) then begin
                dist.(v) <- alt;
                Pq.push queue alt v
              end)
            adj.(u)
    done
  end;
  dist

let clustered_distance t g states src dst =
  let s, had_state =
    match Hashtbl.find_opt states src with
    | Some s ->
      t.state_hits <- t.state_hits + 1;
      (s, true)
    | None ->
      t.state_misses <- t.state_misses + 1;
      ensure_capacity t;
      let s = build_base t g src in
      Hashtbl.add states src s;
      (s, false)
  in
  touch t src;
  let ncore = Array.length g.core in
  let tc = g.cluster.(dst) in
  if tc < 0 || tc = s.sc then begin
    (* A settled hit is a query answered with no fresh Dijkstra work. *)
    if had_state then t.settled_hits <- t.settled_hits + 1;
    if tc < 0 then s.base.(g.core_slot.(dst)) else s.base.(ncore + g.local.(dst))
  end
  else begin
    let tail =
      match s.tails.(tc) with
      | Some tail ->
        if had_state then t.settled_hits <- t.settled_hits + 1;
        tail
      | None ->
        let tail = build_tail t g s.base tc in
        s.tails.(tc) <- Some tail;
        tail
    in
    tail.(g.local.(dst))
  end

(* ---- public interface ---- *)

(* Even a "read" mutates the lazy frontiers, the LRU stamps and the
   counters, so cross-domain use would corrupt silently. Parallel harnesses
   must construct (or be handed) a per-run [t]. *)
let distance t u v =
  (* Domain.id is a private int; compare through the coercion (cf. Engine). *)
  if (Domain.self () :> int) <> (t.owner :> int) then
    invalid_arg "Distances.distance: queried from a domain other than its creator";
  if u = v then 0.
  else begin
    t.queries <- t.queries + 1;
    let src = min u v and dst = max u v in
    match t.mode with
    | Plain states -> plain_distance t states src dst
    | Clustered (g, states) -> clustered_distance t g states src dst
  end

let stats t =
  {
    queries = t.queries;
    settled_hits = t.settled_hits;
    state_hits = t.state_hits;
    state_misses = t.state_misses;
    evictions = t.evictions;
    pops = t.pops;
  }

let hit_rate t =
  if t.queries = 0 then 0. else float_of_int t.settled_hits /. float_of_int t.queries
