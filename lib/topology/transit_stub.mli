(** GT-ITM-style transit-stub topology generator.

    The paper's simulations use the GT-ITM package (Calvert, Doar, Zegura) to
    generate router topologies with 8320 routers, to which end-hosts are
    attached. GT-ITM is not available here, so this module generates graphs
    with the same three-level structure: transit domains of transit routers,
    with stub domains hanging off each transit router. Edge weights model
    one-way link latencies in milliseconds, with intra-stub links fastest and
    inter-domain links slowest. *)

type config = {
  transit_domains : int;
  transit_routers_per_domain : int;
  stubs_per_transit_router : int;
  routers_per_stub : int;
  extra_edge_prob_transit : float;
      (** Probability of each extra intra-transit-domain edge beyond the
          spanning tree. *)
  extra_edge_prob_stub : float;
  extra_interdomain_edges : int;
      (** Additional random transit-transit edges across domains, beyond the
          spanning tree over domains. *)
}

val default_config : config
(** A small topology (88 routers) for tests and examples. *)

val paper_config : config
(** 8320 routers, matching the paper's simulations: 4 transit domains x 8
    transit routers, 7 stubs per transit router x 37 routers. *)

val scaled_config : config
(** 2048 routers with the same shape; the default for benchmarks (quarter
    scale keeps the all-pairs distance cache small). *)

val router_count : config -> int

type t

val generate : seed:int -> config -> t
(** Deterministic in [seed]. The result is always connected. *)

val graph : t -> Graph.t

val transit_routers : t -> int array

val stub_routers : t -> int array
(** End-hosts attach to these. *)

val is_transit : t -> int -> bool

val cluster_assignment : t -> int array
(** Stub-cluster id per router ([-1] for transit routers). Each cluster is
    internally connected and attached to the transit core by exactly one
    gateway edge. Do not mutate. *)

val distances : ?cache_sources:int -> t -> Distances.t
(** A {!Distances.t} in clustered mode over this topology's graph, so
    per-source shortest-path state is O(cluster + core) instead of
    O(routers). *)

val pp_summary : t Fmt.t
