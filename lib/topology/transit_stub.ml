module Rng = Ntcu_std.Rng

type config = {
  transit_domains : int;
  transit_routers_per_domain : int;
  stubs_per_transit_router : int;
  routers_per_stub : int;
  extra_edge_prob_transit : float;
  extra_edge_prob_stub : float;
  extra_interdomain_edges : int;
}

let default_config =
  {
    transit_domains = 2;
    transit_routers_per_domain = 4;
    stubs_per_transit_router = 2;
    routers_per_stub = 5;
    extra_edge_prob_transit = 0.3;
    extra_edge_prob_stub = 0.2;
    extra_interdomain_edges = 1;
  }

let paper_config =
  {
    transit_domains = 4;
    transit_routers_per_domain = 8;
    stubs_per_transit_router = 7;
    routers_per_stub = 37;
    extra_edge_prob_transit = 0.3;
    extra_edge_prob_stub = 0.05;
    extra_interdomain_edges = 4;
  }

let scaled_config =
  {
    transit_domains = 4;
    transit_routers_per_domain = 8;
    stubs_per_transit_router = 7;
    routers_per_stub = 9;
    extra_edge_prob_transit = 0.3;
    extra_edge_prob_stub = 0.1;
    extra_interdomain_edges = 4;
  }

let router_count c =
  let transit = c.transit_domains * c.transit_routers_per_domain in
  transit + (transit * c.stubs_per_transit_router * c.routers_per_stub)

type t = {
  graph : Graph.t;
  transit_routers : int array;
  stub_routers : int array;
  transit_flags : bool array;
  cluster_of : int array; (* stub-cluster id per router; -1 for transit *)
}

(* Latency ranges (milliseconds) per link class, in the spirit of GT-ITM
   weight assignment: local links fast, wide-area links slow. *)
let intra_stub_weight rng = 1. +. Rng.float rng 4.
let stub_transit_weight rng = 10. +. Rng.float rng 10.
let intra_transit_weight rng = 20. +. Rng.float rng 30.
let inter_domain_weight rng = 50. +. Rng.float rng 50.

(* Wire up [vertices] as a random connected subgraph: random spanning tree
   (each vertex links to a uniformly chosen predecessor) plus extra random
   edges with probability [extra_prob] per unordered pair. *)
let connect_random rng graph vertices ~extra_prob ~weight =
  let k = Array.length vertices in
  for i = 1 to k - 1 do
    let j = Rng.int rng i in
    Graph.add_edge graph vertices.(i) vertices.(j) (weight rng)
  done;
  if extra_prob > 0. then
    for i = 0 to k - 1 do
      for j = i + 2 to k - 1 do
        (* i+2: pairs (i, i+1) may already be tree edges; skipping them merely
           biases which extra edges appear, never correctness. *)
        if Rng.float rng 1. < extra_prob then
          Graph.add_edge graph vertices.(i) vertices.(j) (weight rng)
      done
    done

let generate ~seed config =
  let rng = Rng.create seed in
  let c = config in
  if c.transit_domains < 1 || c.transit_routers_per_domain < 1 then
    invalid_arg "Transit_stub.generate: need at least one transit router";
  if c.stubs_per_transit_router < 0 || c.routers_per_stub < 1 then
    invalid_arg "Transit_stub.generate: bad stub shape";
  let total = router_count c in
  let graph = Graph.create total in
  let transit_flags = Array.make total false in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  (* Transit routers come first, then stub routers. *)
  let domains =
    Array.init c.transit_domains (fun _ ->
        Array.init c.transit_routers_per_domain (fun _ ->
            let v = fresh () in
            transit_flags.(v) <- true;
            v))
  in
  Array.iter
    (fun domain ->
      connect_random rng graph domain ~extra_prob:c.extra_edge_prob_transit
        ~weight:intra_transit_weight)
    domains;
  (* Spanning tree over domains, then extra inter-domain edges. *)
  for i = 1 to c.transit_domains - 1 do
    let j = Rng.int rng i in
    Graph.add_edge graph (Rng.pick rng domains.(i)) (Rng.pick rng domains.(j))
      (inter_domain_weight rng)
  done;
  for _ = 1 to c.extra_interdomain_edges do
    if c.transit_domains > 1 then begin
      let i = Rng.int rng c.transit_domains in
      let j = Rng.int rng c.transit_domains in
      if i <> j then
        Graph.add_edge graph (Rng.pick rng domains.(i)) (Rng.pick rng domains.(j))
          (inter_domain_weight rng)
    end
  done;
  (* Stub domains: a connected cluster per (transit router, stub index), tied
     to its transit router by one gateway edge. Each cluster gets a distinct
     id in [cluster_of] (transit routers keep -1), which is exactly the
     single-gateway clustering that [Distances.create_clustered] exploits. *)
  let stub_routers = ref [] in
  let cluster_of = Array.make total (-1) in
  let next_cluster = ref 0 in
  Array.iter
    (fun domain ->
      Array.iter
        (fun transit_router ->
          for _ = 1 to c.stubs_per_transit_router do
            let cid = !next_cluster in
            incr next_cluster;
            let stub =
              Array.init c.routers_per_stub (fun _ ->
                  let v = fresh () in
                  stub_routers := v :: !stub_routers;
                  cluster_of.(v) <- cid;
                  v)
            in
            connect_random rng graph stub ~extra_prob:c.extra_edge_prob_stub
              ~weight:intra_stub_weight;
            Graph.add_edge graph (Rng.pick rng stub) transit_router
              (stub_transit_weight rng)
          done)
        domain)
    domains;
  assert (!next = total);
  let t =
    {
      graph;
      transit_routers = Array.concat (Array.to_list domains);
      stub_routers = Array.of_list (List.rev !stub_routers);
      transit_flags;
      cluster_of;
    }
  in
  assert (Graph.is_connected graph);
  t

let graph t = t.graph

let transit_routers t = t.transit_routers

let stub_routers t = t.stub_routers

let is_transit t v = t.transit_flags.(v)

let cluster_assignment t = t.cluster_of

let distances ?cache_sources t =
  Distances.create_clustered ?cache_sources t.graph ~cluster:t.cluster_of

let pp_summary ppf t =
  Fmt.pf ppf "transit-stub topology: %d routers (%d transit, %d stub), %d links"
    (Graph.n_vertices t.graph)
    (Array.length t.transit_routers)
    (Array.length t.stub_routers)
    (Graph.n_edges t.graph)
