(** Undirected weighted graphs (router networks). *)

type t

val create : int -> t
(** [create n] is an edgeless graph over vertices [0 .. n-1]. *)

val n_vertices : t -> int

val n_edges : t -> int

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds an undirected edge of weight [w > 0]. Parallel
    edges are allowed (shortest-path uses the lighter one); self-loops are
    rejected.
    @raise Invalid_argument on bad endpoints, self-loop or non-positive
    weight. *)

val neighbors : t -> int -> (int * float) list
(** Adjacent vertices with edge weights. *)

val degree : t -> int -> int

val is_connected : t -> bool
(** True iff every vertex is reachable from vertex 0 (and the graph is
    nonempty). *)

val dijkstra : t -> int -> float array
(** [dijkstra g src] returns the array of shortest-path distances from [src];
    [infinity] for unreachable vertices. *)
