(** Continuous-churn steady-state driver.

    The paper proves join (and leave) correctness for a {e static} membership
    episode: a consistent network, a burst of joins, quiescence. This driver
    runs the protocol the way a deployment would experience it — an open
    system held near a target size [n] for hours of virtual time, with nodes
    arriving as a Poisson process and departing when their (exponential,
    Pareto or fixed) session time expires. Half of the departures are
    graceful ({!Ntcu_extensions.Leave_protocol}); the rest crash and must be
    discovered through the reliable transport's suspicion machinery plus a
    periodic maintenance probe, then repaired online
    ({!Ntcu_extensions.Online_repair}).

    The driver samples a time series (Definition 3.8 violations, repair
    debt, lookup success, suspicion false positives, per-node message rate)
    and, via {!sweep}, lowers the population half-life until the network
    stops keeping up — the measured churn tolerance, compared against the
    stochastic-analysis prediction that a maintenance interval [R] sustains
    half-lives down to [c * R * log2 n] (PAPERS.md, arXiv:1011.3182).

    Everything is deterministic in [config.seed]: arrivals, session times,
    identities, gateways, lookups. A sweep fanned out over
    {!Ntcu_std.Parallel} is byte-identical at any [--jobs] width. *)

type config = {
  b : int;
  d : int;
  n : int;  (** Target steady-state size (also the initial size). *)
  duration : float;  (** Steady-state window, virtual ms. *)
  half_life : float;
      (** Population half-life, virtual ms. The mean session time is
          [half_life / ln 2] and the arrival rate [n / mean] (M/G/infinity:
          the equilibrium population is [n]). *)
  dist : Session.kind;  (** Session-time distribution shape. *)
  crash_fraction : float;
      (** Fraction of departures that crash instead of leaving gracefully.
          Departures of nodes still mid-join always crash (a polite leave
          needs an installed table). *)
  loss : float;  (** Per-message loss probability. *)
  sample_every : float;  (** Time-series sampling period, virtual ms. *)
  maintenance_every : float;
      (** Period of the maintenance pass that probes dead-but-referenced
          nodes (driving suspicion -> scrub -> refill) and reaps
          unreferenced crashed registrations. *)
  lookups_per_sample : int;
      (** Random member-to-member {!Ntcu_routing.Route.route_resilient}
          lookups measured at each sample. *)
  seed : int;
  debug_timers : bool;
      (** Enable {!Ntcu_sim.Engine.set_debug_timers} leak checking. *)
}

val default : config
(** [n = 1000], [b = 16], [d = 8], 4 h of virtual time with a 1 h half-life,
    exponential sessions, half the departures crashing, 1% loss, 60 s
    samples, 30 s maintenance. *)

val smoke : config
(** A seconds-scale configuration for CI: [n = 60], 2 min of virtual time
    with a 1 min half-life, 10 s samples, 5 s maintenance. *)

val session_mean : config -> float
val arrival_rate : config -> float  (** Arrivals per virtual ms. *)

val detection_budget : config -> float
(** Worst-case virtual time for the reliable transport to suspect a dead
    peer once probed: the full (jitter-free) retry schedule
    [rto * (backoff^(max_retries+1) - 1) / (backoff - 1)]. *)

val repair_latency : config -> float
(** [maintenance_every + detection_budget c] — the [R] of the tolerance
    prediction: the worst-case lag between a crash and its scrub. *)

val predicted_half_life : config -> float
(** The stochastic-analysis tolerance scale [R * log2 n] (constant [c = 1]):
    below this half-life the repair process is predicted to lose the race
    against churn. A coarse yardstick, not a fitted bound. *)

(** {1 Time series} *)

type sample = {
  t : float;  (** Virtual ms. *)
  live : int;  (** Registered, not crashed. *)
  s_nodes : int;  (** Live and [In_system]. *)
  joining : int;  (** Live, join still in flight. *)
  entries : int;  (** Filled primary entries across S-node tables. *)
  violations : int;
      (** Definition 3.8 false negatives + wrong-suffix entries over the
          S-node subnetwork (capped at {!violation_cap}). *)
  transitional : int;  (** Dangling entries naming a live mid-join node. *)
  holes : int;  (** Dangling entries naming a departed node. *)
  debt : float;
      (** Repair debt, virtual ms: over every hole, the age of the departure
          it references — outstanding holes weighted by how long they have
          dangled. *)
  unscrubbed : int;  (** Distinct departed nodes still referenced. *)
  lookups : int;
  lookups_ok : int;
  window_msgs : int;  (** Protocol messages first-sent since last sample. *)
  window_bytes : int;
  window_retrans : int;
  suspected_live : int;  (** Suspicion false positives: live but suspected. *)
  joins_started : int;  (** Cumulative. *)
  joins_skipped : int;  (** Arrivals dropped for want of a live gateway. *)
  leaves : int;
  crashes : int;
  aborted : int;  (** Mid-join departures converted to crashes. *)
}

val violation_cap : int
(** Cap on violations collected per sample (keeps sampling affordable when a
    sweep point has collapsed). *)

type summary = {
  samples : int;
  end_time : float;  (** Virtual ms at final quiescence, drain included. *)
  mean_live : float;
  min_live : int;
  max_live : int;
  mean_joining : float;
  mean_violations : float;
  max_violations : int;
  mean_holes : float;
  max_holes : int;
  mean_debt : float;
  max_debt : float;
  lookup_success : float;  (** Pooled over every in-window sample. *)
  msgs_per_node_s : float;
      (** Mean over samples of (window msgs / live / window seconds). *)
  suspected_live_max : int;
  tail_mean_live : float;  (** Tail = second half of the sample series. *)
  tail_mean_joining : float;
  tail_lookup_success : float;
  tail_mean_violations : float;
  tail_mean_holes : float;
  tail_stale_fraction : float;
      (** Pooled tail (violations + holes) / entries. *)
  joins_started : int;
  joins_skipped : int;
  leaves : int;
  crashes : int;
  aborted : int;
  stuck_reaped : int;
      (** Joiners wedged at drain (dead gateway — assumption (ii)), failed
          and repaired away like crashes. *)
  departures_cancelled : int;  (** Sessions outliving the window. *)
  final_live : int;
  final_in_system : bool;
  final_violations : int;
  final_holes : int;
  final_consistent : bool;
  drained : bool;
  events : int;  (** Messages delivered over the whole run. *)
  leave_report : Ntcu_extensions.Leave_protocol.report;
  repair_report : Ntcu_extensions.Online_repair.report;
}

type result = { config : config; series : sample list; summary : summary }

(** {1 Running} *)

type t

val prepare : ?record_trace:bool -> config -> t
(** Build the initial consistent network and schedule the churn sources
    without running anything — so callers (the schedule-exploration episode)
    can install delay hooks or observers first. *)

val net : t -> Ntcu_core.Network.t
val initial : t -> Ntcu_id.Id.t list  (** The seeded members. *)

val finish : t -> result
(** Run the steady-state window, then stop the sources, cancel outstanding
    session timers, drain to quiescence, crash-and-repair any wedged
    joiners, probe remaining dead references to quiescence and reap crashed
    registrations. Call once. *)

val run : ?record_trace:bool -> config -> result
(** [finish (prepare config)]. *)

val health : config -> summary -> string list
(** Graceful-degradation criteria over the tail of the window; empty iff the
    network kept up. Stable reason tokens: ["size"] (tail mean live outside
    +/-25% of [n]), ["backlog"] (tail mean joining > 25% of [n]), ["lookup"]
    (tail lookup success < 90%), ["stale"] (tail stale fraction > 2%),
    ["liveness"] (did not drain to an all-[in_system] network). *)

val ok : ?claim:Ntcu_harness.Experiment.claim -> result -> bool
(** [Best_effort] (the churn regime's claim, see
    {!Ntcu_harness.Experiment.claim}): drained, final network all
    [in_system], nonempty, and tail mean size within the +/-25% band.
    [Strict] (default) additionally requires the final network to be
    Definition 3.8 consistent — under crash churn that is a measurement, not
    a guarantee. *)

(** {1 Half-life sweep} *)

type point = {
  p_half_life : float;
  p_seed : int;
  p_summary : summary;
  p_reasons : string list;  (** {!health}; empty iff the point held. *)
}

type sweep_result = {
  sweep_base : config;
  points : point list;  (** Descending half-life (halved at each point). *)
  tolerated : float option;
      (** Smallest half-life of the maximal healthy prefix. *)
  collapse : float option;  (** First half-life that failed. *)
  predicted : float;  (** {!predicted_half_life} of the base config. *)
}

val sweep : Ntcu_std.Parallel.t -> base:config -> points:int -> sweep_result
(** Run [points] independent steady-state runs, halving the half-life each
    time, fanned out over the pool in submission order (byte-identical
    results at any pool width). Point [i] uses seed [base.seed + 97 i].
    @raise Invalid_argument if [points < 1]. *)

(** {1 Reporting} *)

val config_json : config -> Ntcu_harness.Report.Json.t
val summary_json : summary -> Ntcu_harness.Report.Json.t
(** Building blocks for composed artifacts (the serving bench embeds the
    churn side of a serve-under-churn run without duplicating the schema). *)

val result_json : result -> Ntcu_harness.Report.Json.t
val sweep_json : sweep_result -> Ntcu_harness.Report.Json.t

val bench_json : ?sweep:sweep_result -> result -> Ntcu_harness.Report.Json.t
(** The [BENCH_churn.json] document, schema ["ntcu-bench-churn/1"]:
    [{schema; config; series; summary; sweep?}]. Deliberately contains no
    wall-clock or job-count fields, so serial and parallel runs emit
    byte-identical artifacts. *)

val pp_summary : summary Fmt.t
val pp_result : result Fmt.t
val pp_sweep : sweep_result Fmt.t
