type kind = Exponential | Pareto | Fixed

let kind_name = function
  | Exponential -> "exponential"
  | Pareto -> "pareto"
  | Fixed -> "fixed"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "exponential" | "exp" -> Some Exponential
  | "pareto" -> Some Pareto
  | "fixed" -> Some Fixed
  | _ -> None

let all_kinds = [ Exponential; Pareto; Fixed ]

type dist =
  | Exp of { mean : float }
  | Par of { alpha : float; xmin : float }
  | Fix of float

let default_alpha = 2.5

let make k ~mean =
  if mean <= 0. then invalid_arg "Session.make: mean must be positive";
  match k with
  | Exponential -> Exp { mean }
  | Pareto ->
    (* Pareto mean is alpha * xmin / (alpha - 1); solve for xmin. *)
    let alpha = default_alpha in
    Par { alpha; xmin = mean *. (alpha -. 1.) /. alpha }
  | Fixed -> Fix mean

let mean = function
  | Exp { mean } -> mean
  | Par { alpha; xmin } ->
    if alpha <= 1. then Float.infinity else alpha *. xmin /. (alpha -. 1.)
  | Fix m -> m

let kind = function Exp _ -> Exponential | Par _ -> Pareto | Fix _ -> Fixed

let sample dist rng =
  match dist with
  | Exp { mean } ->
    (* [u] is in [0, 1), so [log1p (-. u)] is finite and the draw positive
       (0 collapses to a zero-length session, which the driver treats as an
       immediate departure — still well-defined). *)
    let u = Ntcu_std.Rng.float rng 1. in
    -.mean *. Float.log1p (-.u)
  | Par { alpha; xmin } ->
    let u = Ntcu_std.Rng.float rng 1. in
    xmin /. ((1. -. u) ** (1. /. alpha))
  | Fix m -> m

let pp ppf = function
  | Exp { mean } -> Fmt.pf ppf "exponential(mean=%g)" mean
  | Par { alpha; xmin } -> Fmt.pf ppf "pareto(alpha=%g, xmin=%g)" alpha xmin
  | Fix m -> Fmt.pf ppf "fixed(%g)" m
