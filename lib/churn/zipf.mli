(** Zipf-distributed popularity ranks.

    The serving workload draws object popularity from a Zipf law:
    [P(rank = k) ∝ k^(-s)] over ranks [1..n], the standard model for
    measured P2P and web object popularity (the access-skew framing ReCord
    and the generalized-hypercubes study evaluate under, PAPERS.md). [s = 0]
    is uniform; [s = 1] the classic Zipf; larger [s] concentrates traffic on
    a smaller head.

    Like {!Session}, sampling is inverse-CDF over a seeded
    {!Ntcu_std.Rng.t} — here a binary search over the precomputed cumulative
    mass — so a stream of draws is a pure function of the seed. *)

type t

val create : s:float -> n:int -> t
(** Ranks [1..n] with exponent [s]. Precomputes the cumulative distribution
    ([O(n)] space, [O(log n)] per draw).
    @raise Invalid_argument if [n < 1] or [s] is negative or not finite. *)

val s : t -> float
val n : t -> int

val sample : t -> Ntcu_std.Rng.t -> int
(** One draw, returned as a {e 0-based} rank in [[0, n)]: rank 0 is the most
    popular object. *)

val head_mass : t -> k:int -> float
(** Analytic probability that a draw lands in the [k] most popular ranks:
    [Σ_{i<=k} i^(-s) / H_{n,s}]. [0.] for [k <= 0]; [1.] for [k >= n]. The
    empirical-skew tests compare seeded sample streams against this. *)

val pp : t Fmt.t
